// Command star-bench is the benchmark harness. Its default mode runs the
// paper-figure sweeps — cross-partition % on YCSB and TPC-C, STAR versus
// the Calvin/PB.OCC/distributed baselines — on the deterministic
// simulation runtime and writes a machine-readable BENCH_results.json
// (throughput, abort rate, replication bytes and messages per committed
// transaction, plus the delta-batching comparison), so successive PRs
// have a perf trajectory to beat. It can also regenerate any individual
// figure/table of the paper's evaluation (§7).
//
// Usage:
//
//	star-bench                         # full sweep → BENCH_results.json
//	star-bench -short -out B.json      # CI-scale sweep
//	star-bench -workloads ycsb -engines STAR,Calvin -cross 0,50,100
//	star-bench -experiment fig11a      # one paper figure to stdout
//	star-bench -experiment all
//	star-bench -list
//
// Paper-scale runs (12 workers/node, the default) take a few minutes per
// figure on one core; -short shrinks workers, data and measured time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"star/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "", "paper experiment id (see -list), 'all', or empty for the sweep")
	short := flag.Bool("short", false, "reduced scale for quick runs")
	seed := flag.Int64("seed", 42, "deterministic seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("out", "BENCH_results.json", "sweep results file")
	nodes := flag.Int("nodes", 4, "sweep cluster size")
	workloads := flag.String("workloads", "", "comma-separated sweep workloads (default: ycsb,tpcc)")
	engines := flag.String("engines", "", "comma-separated sweep engines (default: STAR,PB.OCC,Dist.OCC,Dist.S2PL,Calvin)")
	cross := flag.String("cross", "", "comma-separated cross-partition percentages (default: the Fig 11 x-axis)")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}
	opt := bench.Options{Out: os.Stdout, Short: *short, Seed: *seed}

	if *experiment == "" {
		cfg := bench.SweepConfig{
			Nodes:     *nodes,
			Workloads: bench.SplitList(*workloads),
			Engines:   bench.SplitList(*engines),
			CrossPcts: parseInts(*cross),
		}
		start := time.Now()
		res, err := bench.RunSweep(opt, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := bench.WriteResultsFile(*out, res); err != nil {
			fmt.Fprintln(os.Stderr, "write results:", err)
			os.Exit(1)
		}
		fmt.Printf("# sweep: %d points + %d batching runs → %s in %v\n",
			len(res.Results), len(res.Batching), *out, time.Since(start).Round(time.Millisecond))
		return
	}

	run := func(id string) {
		fn, ok := bench.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		fn(opt)
		fmt.Printf("# (%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *experiment == "all" {
		for _, id := range bench.Order {
			run(id)
		}
		return
	}
	run(*experiment)
}

func parseInts(s string) []int {
	var out []int
	for _, p := range bench.SplitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 100 {
			fmt.Fprintf(os.Stderr, "bad -cross value %q (want a percentage in 0..100)\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
