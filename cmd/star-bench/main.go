// Command star-bench regenerates the paper's evaluation tables and
// figures (§7) on the deterministic simulation runtime.
//
// Usage:
//
//	star-bench -list
//	star-bench -experiment fig11a
//	star-bench -experiment all -short
//
// Paper-scale runs (12 workers/node, the default) take a few minutes per
// figure on one core; -short shrinks workers, data and measured time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"star/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	short := flag.Bool("short", false, "reduced scale for quick runs")
	seed := flag.Int64("seed", 42, "deterministic seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}
	opt := bench.Options{Out: os.Stdout, Short: *short, Seed: *seed}
	run := func(id string) {
		fn, ok := bench.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		fn(opt)
		fmt.Printf("# (%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *experiment == "all" {
		for _, id := range bench.Order {
			run(id)
		}
		return
	}
	run(*experiment)
}
