package main

import (
	"encoding/json"
	"net"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"star/internal/core"
	"star/internal/rt"
	"star/internal/workload/tpcc"
)

// freePorts reserves n distinct loopback ports. The listeners close
// before the processes start, so a port could in principle be stolen in
// between — acceptable for a test that runs in seconds.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestStarNodeProcessesMatchSimnet is the acceptance check for the
// multi-process path: two actual star-node OS processes (N=2 on
// loopback) complete a TPC-C run whose committed-transaction count and
// post-fence replica checksums exactly match the in-process simnet run
// with the same seed.
func TestStarNodeProcessesMatchSimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short")
	}
	const (
		nodes, workers = 2, 2
		txns           = 40
		seed           = int64(7)
	)
	w := func() *tpcc.Workload {
		// Mirrors the star-node defaults for -districts/-customers/-items.
		return tpcc.New(tpcc.Config{
			Warehouses:           nodes * workers,
			Districts:            2,
			CustomersPerDistrict: 300,
			Items:                2000,
		})
	}

	// Reference result from the in-process simulated cluster.
	sim := rt.NewSim()
	simRun := core.StartScripted(core.Config{
		RT: sim, Nodes: nodes, WorkersPerNode: workers, Workload: w(), Seed: seed,
	}, core.Script{TxnsPerPartition: txns})
	sim.Run(sim.Now() + time.Hour)
	var want core.ScriptResult
	select {
	case want = <-simRun.Done():
	default:
		t.Fatal("simnet scripted run did not finish")
	}
	sim.Stop()
	if want.Err != "" || want.Committed == 0 {
		t.Fatalf("bad simnet reference: %+v", want)
	}

	bin := filepath.Join(t.TempDir(), "star-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addrs := freePorts(t, nodes)
	addrList := addrs[0] + "," + addrs[1]
	args := func(id string) []string {
		return []string{
			"-id", id, "-nodes", "2", "-workers", "2", "-txns", "40", "-seed", "7",
			"-addrs", addrList,
		}
	}
	node1 := exec.Command(bin, args("1")...)
	if err := node1.Start(); err != nil {
		t.Fatalf("start node 1: %v", err)
	}
	defer node1.Process.Kill()
	node0 := exec.Command(bin, args("0")...)
	out, err := node0.Output()
	if err != nil {
		t.Fatalf("node 0: %v (output %q)", err, out)
	}
	if err := node1.Wait(); err != nil {
		t.Fatalf("node 1 exited with error: %v", err)
	}

	var got core.ScriptResult
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("parse node 0 output %q: %v", out, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("star-node cluster diverged from simnet run:\n got %+v\nwant %+v", got, want)
	}
}
