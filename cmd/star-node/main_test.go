package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"star/internal/admin"
	"star/internal/client"
	"star/internal/core"
	"star/internal/faultnet"
	"star/internal/rt"
	"star/internal/tcpnet"
	"star/internal/transport"
	"star/internal/workload/tpcc"
	"star/internal/workload/ycsb"
)

// buildStarNode compiles the star-node binary into a temp dir.
func buildStarNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "star-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePorts reserves n distinct loopback ports. The listeners close
// before the processes start, so a port could in principle be stolen in
// between — acceptable for a test that runs in seconds.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// buildStarAdmin compiles the star-admin binary into a temp dir.
func buildStarAdmin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "star-admin")
	build := exec.Command("go", "build", "-o", bin, "star/cmd/star-admin")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build star-admin: %v\n%s", err, out)
	}
	return bin
}

// TestStarNodeProcessesMatchSimnet is the acceptance check for the
// multi-process path: two actual star-node OS processes (N=2 on
// loopback) complete a TPC-C run whose committed-transaction count and
// post-fence replica checksums exactly match the in-process simnet run
// with the same seed.
func TestStarNodeProcessesMatchSimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short")
	}
	const (
		nodes, workers = 2, 2
		txns           = 40
		seed           = int64(7)
	)
	w := func() *tpcc.Workload {
		// Mirrors the star-node defaults for -districts/-customers/-items.
		return tpcc.New(tpcc.Config{
			Warehouses:           nodes * workers,
			Districts:            2,
			CustomersPerDistrict: 300,
			Items:                2000,
		})
	}

	// Reference result from the in-process simulated cluster.
	sim := rt.NewSim()
	simRun := core.StartScripted(core.Config{
		RT: sim, Nodes: nodes, WorkersPerNode: workers, Workload: w(), Seed: seed,
	}, core.Script{TxnsPerPartition: txns})
	sim.Run(sim.Now() + time.Hour)
	var want core.ScriptResult
	select {
	case want = <-simRun.Done():
	default:
		t.Fatal("simnet scripted run did not finish")
	}
	sim.Stop()
	if want.Err != "" || want.Committed == 0 {
		t.Fatalf("bad simnet reference: %+v", want)
	}

	bin := buildStarNode(t)

	addrs := freePorts(t, nodes)
	addrList := addrs[0] + "," + addrs[1]
	args := func(id string) []string {
		return []string{
			"-id", id, "-nodes", "2", "-workers", "2", "-txns", "40", "-seed", "7",
			"-addrs", addrList,
		}
	}
	node1 := exec.Command(bin, args("1")...)
	if err := node1.Start(); err != nil {
		t.Fatalf("start node 1: %v", err)
	}
	defer node1.Process.Kill()
	node0 := exec.Command(bin, args("0")...)
	out, err := node0.Output()
	if err != nil {
		t.Fatalf("node 0: %v (output %q)", err, out)
	}
	if err := node1.Wait(); err != nil {
		t.Fatalf("node 1 exited with error: %v", err)
	}

	var got core.ScriptResult
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("parse node 0 output %q: %v", out, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("star-node cluster diverged from simnet run:\n got %+v\nwant %+v", got, want)
	}
}

// TestStarNodeKillRestartSnapshotCatchUp is the multi-process failure
// test the PR 3 follow-up asked for: a star-node OS process is killed
// mid-run, the surviving process's coordinator detects the failure,
// reverts the in-flight epoch and keeps committing; the victim is then
// restarted from scratch, rejoined via the snapshot catch-up protocol
// (msgStartRecovery / msgSnapshot over real TCP), and — after a
// cluster-wide freeze settles replication — its partition checksums
// must converge to the survivor's.
//
// Topology: this test process hosts node 0, the coordinator (endpoint
// 2) and an observation Probe (endpoint 3) on one listener; node 1 is a
// real star-node child process in -serve (time-driven) mode, running
// the full TPC-C mix.
func TestStarNodeKillRestartSnapshotCatchUp(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process failure test skipped in -short")
	}
	const (
		nodes, workers = 2, 2
		seed           = int64(3)
	)
	bin := buildStarNode(t)
	addrs := freePorts(t, nodes)
	addrList := addrs[0] + "," + addrs[1]

	wcfg := tpcc.Config{
		Warehouses:           nodes * workers,
		Districts:            2,
		CustomersPerDistrict: 300,
		Items:                2000,
	}
	wcfg.SetFullMix()
	w := tpcc.New(wcfg)

	// Endpoints: nodes 0/1, coordinator (2) and probe (3); everything but
	// node 1 lives in this process, on one listener.
	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	endpoints := []string{addrs[0], addrs[1], addrs[0], addrs[0]}
	r := rt.NewReal()
	netA, err := tcpnet.New(r, tcpnet.Config{
		Endpoints: endpoints,
		Local:     []int{0, 2, 3},
		Codec:     core.NewWireCodec(w),
		Listener:  ln,
	})
	if err != nil {
		t.Fatalf("tcpnet.New: %v", err)
	}
	defer netA.Close()

	// The restarted incarnation runs with a fresh seed: TPC-C's loader is
	// seed-independent (replicas stay byte-identical), but a same-seed
	// restart would regenerate the first life's history keys and collide
	// with the rows the snapshot catch-up restores — every such payment
	// would abort. A new process identity is what an operator would
	// deploy anyway.
	startChild := func(seed string) *exec.Cmd {
		cmd := exec.Command(bin,
			"-id", "1", "-nodes", "2", "-workers", "2", "-seed", seed,
			"-addrs", addrList, "-mix", "full",
			"-serve", "-probe", "-iteration", "2ms",
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start star-node child: %v", err)
		}
		return cmd
	}
	kill := func(cmd *exec.Cmd) {
		cmd.Process.Kill()
		cmd.Wait()
	}

	// Child first (its workers idle until the coordinator speaks), then
	// the engine hosting node 0 + the time-driven coordinator.
	child := startChild("3")
	defer func() { kill(child) }()
	time.Sleep(200 * time.Millisecond)
	eng := core.New(core.Config{
		RT:               r,
		Nodes:            nodes,
		WorkersPerNode:   workers,
		Workload:         w,
		Seed:             seed,
		Transport:        netA,
		LocalNodes:       []int{0},
		LocalCoordinator: true,
		Iteration:        2 * time.Millisecond,
		SnapshotReads:    true,
	})
	defer r.Stop()

	waitCommitsGrow := func(label string, timeout time.Duration) {
		t.Helper()
		base := eng.Stats().Committed
		deadline := time.Now().Add(timeout)
		for eng.Stats().Committed <= base {
			if time.Now().After(deadline) {
				t.Fatalf("%s: commits stalled at %d", label, base)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitCommitsGrow("healthy cluster", 15*time.Second)

	// Kill node 1 mid-run. The coordinator must detect the silence,
	// revert the in-flight epoch, re-master node 1's partitions onto the
	// full replica and keep committing.
	kill(child)
	time.Sleep(100 * time.Millisecond)
	waitCommitsGrow("after kill", 15*time.Second)

	// Restart the victim from scratch (fresh load state, empty counters)
	// and schedule its rejoin: the coordinator restores connectivity,
	// streams partition snapshots over TCP, and hands partitions back.
	child = startChild("1003")
	time.Sleep(200 * time.Millisecond)
	eng.RecoverNode(1)
	waitCommitsGrow("after rejoin", 15*time.Second)

	// Freeze the whole cluster (probe → both nodes), let fences settle
	// in-flight replication, then compare the restarted node's checksums
	// with the survivor's until they converge. A node whose phase report
	// arrives a moment too late can be spuriously re-failed by the view
	// service — its state then legitimately diverges until it rejoins —
	// so the loop re-issues the rejoin like an operator would (RecoverNode
	// is idempotent on an alive node).
	probe := core.NewProbe(netA, nodes+1, nodes)
	probe.Freeze(true)
	deadline := time.Now().Add(30 * time.Second)
	lastRecover := time.Now()
	for {
		time.Sleep(100 * time.Millisecond)
		cs, err := probe.Checksums(1, 3*time.Second)
		mismatch := -1
		if err == nil {
			if len(cs.Parts) == 0 {
				t.Fatal("restarted node reported no partitions")
			}
			for i, p := range cs.Parts {
				if eng.DB(0).PartitionChecksum(int(p)) != cs.Sums[i] {
					mismatch = int(p)
					break
				}
			}
			if mismatch == -1 {
				break // converged
			}
		}
		if time.Since(lastRecover) > 3*time.Second {
			eng.RecoverNode(1)
			lastRecover = time.Now()
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("probe checksums: %v", err)
			}
			for i, p := range cs.Parts {
				t.Logf("part %d: node1=%x node0=%x", p, cs.Sums[i], eng.DB(0).PartitionChecksum(int(p)))
			}
			t.Logf("stats: %+v", eng.Stats().Extra)
			t.Fatalf("partition %d never converged after snapshot catch-up", mismatch)
		}
	}
	if halted, reason := eng.Halted(); halted {
		t.Fatalf("cluster halted: %s", reason)
	}
}

// TestStarNodeFaultPlanConverges exercises the multi-process chaos path:
// both processes (this test hosting node 0 + coordinator + probe, and a
// real star-node child hosting node 1 started with -faults plan.json)
// inject the SAME self-terminating fault plan — Data-class drops,
// duplicates and reorders over real TCP. The cluster must keep
// committing through the fault window, and once the window closes the
// replicas must converge to identical partition checksums.
func TestStarNodeFaultPlanConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos test skipped in -short")
	}
	const (
		nodes, workers = 2, 2
		seed           = int64(11)
	)
	bin := buildStarNode(t)
	addrs := freePorts(t, nodes)
	addrList := addrs[0] + "," + addrs[1]

	// Self-terminating plan: the window closes by cluster epoch, with no
	// Heal() call anywhere — exactly how an unattended star-node run uses
	// -faults. Only the Data class carries per-frame faults (control and
	// replication streams assume reliable FIFO links; they are attacked
	// by whole-link partitions/crashes, covered by the kill/restart test
	// and the in-process soak).
	plan := faultnet.Plan{
		Seed: seed,
		Rules: []faultnet.Rule{{
			Src: faultnet.AnyNode, Dst: faultnet.AnyNode, Class: int(transport.Data),
			Drop: 0.05, Dup: 0.05, Reorder: 0.05, ReorderSpan: 3,
			Window: faultnet.Window{FromEpoch: 4, UntilEpoch: 40},
		}},
	}
	planPath := filepath.Join(t.TempDir(), "plan.json")
	if err := faultnet.SavePlan(planPath, plan); err != nil {
		t.Fatalf("save plan: %v", err)
	}

	wcfg := tpcc.Config{
		Warehouses:           nodes * workers,
		Districts:            2,
		CustomersPerDistrict: 300,
		Items:                2000,
	}
	wcfg.SetFullMix()
	w := tpcc.New(wcfg)

	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	endpoints := []string{addrs[0], addrs[1], addrs[0], addrs[0]}
	r := rt.NewReal()
	netA, err := tcpnet.New(r, tcpnet.Config{
		Endpoints: endpoints,
		Local:     []int{0, 2, 3},
		Codec:     core.NewWireCodec(w),
		Listener:  ln,
	})
	if err != nil {
		t.Fatalf("tcpnet.New: %v", err)
	}
	defer netA.Close()
	fn := faultnet.Wrap(r, netA, plan)

	child := exec.Command(bin,
		"-id", "1", "-nodes", "2", "-workers", "2", "-seed", "11",
		"-addrs", addrList, "-mix", "full",
		"-serve", "-probe", "-iteration", "2ms",
		"-faults", planPath,
	)
	if err := child.Start(); err != nil {
		t.Fatalf("start star-node child: %v", err)
	}
	defer func() { child.Process.Kill(); child.Wait() }()
	time.Sleep(200 * time.Millisecond)

	eng := core.New(core.Config{
		RT:               r,
		Nodes:            nodes,
		WorkersPerNode:   workers,
		Workload:         w,
		Seed:             seed,
		Transport:        fn,
		LocalNodes:       []int{0},
		LocalCoordinator: true,
		Iteration:        2 * time.Millisecond,
		SnapshotReads:    true,
	})
	defer r.Stop()

	waitCommitsGrow := func(label string, timeout time.Duration) {
		t.Helper()
		base := eng.Stats().Committed
		deadline := time.Now().Add(timeout)
		for eng.Stats().Committed <= base {
			if time.Now().After(deadline) {
				t.Fatalf("%s: commits stalled at %d", label, base)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitCommitsGrow("healthy cluster", 15*time.Second)

	// Ride out the fault window: the cluster must keep committing while
	// Data frames vanish, double up and arrive out of order.
	deadline := time.Now().Add(20 * time.Second)
	for fn.Epoch() < plan.Rules[0].Window.UntilEpoch {
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached epoch %d (at %d)", plan.Rules[0].Window.UntilEpoch, fn.Epoch())
		}
		if halted, reason := eng.Halted(); halted {
			t.Fatalf("cluster halted inside the fault window: %s", reason)
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitCommitsGrow("after fault window", 15*time.Second)

	// The plan must have fired on the child's side: deferred cross-
	// partition requests flow partial → full replica, so node 1 is where
	// the Data-class traffic originates. Its counters travel back over
	// the probe protocol. (This process's own fn sees near-zero Data
	// sends — node 0 executes deferred work locally — so its counters
	// are informational only.)
	probe := core.NewProbe(netA, nodes+1, nodes)
	childStats, err := probe.FaultStats(1, 5*time.Second)
	if err != nil {
		t.Fatalf("probe fault stats: %v", err)
	}
	var childTotal int64
	for _, v := range childStats {
		childTotal += v
	}
	if childTotal == 0 {
		t.Fatalf("child's -faults plan injected nothing: %v", childStats)
	}
	t.Logf("child injected: %v; node 0 side injected: %v", childStats, fn.Injected())

	// Freeze and require byte-identical partition checksums. A node that
	// lost a phase report to the faults may have been evicted — re-issue
	// the rejoin like an operator until it converges.
	probe.Freeze(true)
	deadline = time.Now().Add(30 * time.Second)
	lastRecover := time.Now()
	for {
		time.Sleep(100 * time.Millisecond)
		cs, err := probe.Checksums(1, 3*time.Second)
		mismatch := -1
		if err == nil {
			if len(cs.Parts) == 0 {
				t.Fatal("child reported no partitions")
			}
			for i, p := range cs.Parts {
				if eng.DB(0).PartitionChecksum(int(p)) != cs.Sums[i] {
					mismatch = int(p)
					break
				}
			}
			if mismatch == -1 {
				break // converged
			}
		}
		if time.Since(lastRecover) > 3*time.Second {
			eng.RecoverNode(1)
			lastRecover = time.Now()
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("probe checksums: %v", err)
			}
			t.Fatalf("partition %d never converged after the fault window", mismatch)
		}
	}
	if halted, reason := eng.Halted(); halted {
		t.Fatalf("cluster halted: %s", reason)
	}
}

// TestStarNodeScaleOutJoinDrain is the live elastic-membership
// acceptance run: a 3-member cluster (capacity 4) of real processes
// under TPC-C load admits the dark 4th slot through the star-admin CLI
// at an epoch fence, every member's partition checksums converge
// byte-identically, a star-client session stays available and learns
// the new front door from a topology refresh — and then node 1 is
// drained out through ANOTHER node's door, its process exits 0, and the
// survivors re-converge.
//
// Topology: this test process hosts node 0 and the coordinator
// (endpoint 4) on one listener; nodes 1-3 are star-node children, each
// with a client front door. All control traffic in this test flows
// through the unified admin envelope: the star-admin binary drives
// freeze / checksums / fault-stats / join / drain / rebalance /
// topology against the live doors.
func TestStarNodeScaleOutJoinDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short")
	}
	const (
		capacity, workers = 4, 2
		seed              = int64(13)
	)
	nodeBin := buildStarNode(t)
	adminBin := buildStarAdmin(t)

	ports := freePorts(t, capacity+3)
	addrs, doors := ports[:capacity], ports[capacity:] // doors for nodes 1..3
	addrList := strings.Join(addrs, ",")
	doorList := "," + strings.Join(doors, ",") // node 0 advertises no door

	// YCSB: its one wire-registered transaction doubles as the client
	// availability probe (star-client's session idiom).
	ycfg := ycsb.Config{Partitions: capacity * workers, RecordsPerPartition: 512}
	w := ycsb.New(ycfg)

	// Endpoints: nodes 0-3 plus the coordinator (4); node 0 and the
	// coordinator live in this process on one listener.
	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	endpoints := append(append([]string(nil), addrs...), addrs[0])
	r := rt.NewReal()
	netA, err := tcpnet.New(r, tcpnet.Config{
		Endpoints: endpoints,
		Local:     []int{0, capacity},
		Codec:     core.NewWireCodec(w),
		Listener:  ln,
	})
	if err != nil {
		t.Fatalf("tcpnet.New: %v", err)
	}
	defer netA.Close()

	startChild := func(id int) *exec.Cmd {
		cmd := exec.Command(nodeBin,
			"-id", strconv.Itoa(id), "-nodes", "4", "-workers", "2", "-seed", "13",
			"-addrs", addrList, "-workload", "ycsb", "-records", "512",
			"-serve", "-snapshot-reads", "-iteration", "2ms",
			"-members", "0,1,2",
			"-client", doors[id-1], "-clients", doorList,
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start star-node %d: %v", id, err)
		}
		return cmd
	}
	node1 := startChild(1)
	defer func() { node1.Process.Kill(); node1.Wait() }()
	node2 := startChild(2)
	defer func() { node2.Process.Kill(); node2.Wait() }()
	node3 := startChild(3) // dark slot: provisioned, not a member
	defer func() { node3.Process.Kill(); node3.Wait() }()
	time.Sleep(200 * time.Millisecond)

	eng := core.New(core.Config{
		RT:               r,
		Nodes:            capacity,
		FullReplicas:     1,
		WorkersPerNode:   workers,
		Workload:         w,
		Seed:             seed,
		Transport:        netA,
		LocalNodes:       []int{0},
		LocalCoordinator: true,
		Iteration:        2 * time.Millisecond,
		SnapshotReads:    true,
		Members:          []int{0, 1, 2},
		ClientAddrs:      append([]string{""}, doors...),
	})
	defer r.Stop()

	waitCommitsGrow := func(label string, timeout time.Duration) {
		t.Helper()
		base := eng.Stats().Committed
		deadline := time.Now().Add(timeout)
		for eng.Stats().Committed <= base {
			if time.Now().After(deadline) {
				t.Fatalf("%s: commits stalled at %d", label, base)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	adminTry := func(args ...string) (string, error) {
		out, err := exec.Command(adminBin, args...).CombinedOutput()
		return string(out), err
	}
	adminRun := func(args ...string) string {
		t.Helper()
		out, err := adminTry(args...)
		if err != nil {
			t.Fatalf("star-admin %v: %v\n%s", args, err, out)
		}
		return out
	}
	parseChecksums := func(out string) map[int]uint64 {
		sums := map[int]uint64{}
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			var p int
			var s uint64
			if _, err := fmt.Sscanf(line, "part %d sum %x", &p, &s); err == nil {
				sums[p] = s
			}
		}
		return sums
	}
	// waitChecksums freezes nothing itself: callers freeze first. Every
	// listed node's reported partitions must match node 0's copy (the
	// full replica holds everything, so it is the reference). A node
	// spuriously evicted mid-check is re-joined like an operator would.
	waitChecksums := func(label, door string, nodes []int) {
		t.Helper()
		deadline := time.Now().Add(45 * time.Second)
		lastRecover := time.Now()
		for {
			time.Sleep(100 * time.Millisecond)
			mismatch := ""
			for _, n := range nodes {
				out, err := adminTry("-addr", door, "-node", strconv.Itoa(n), "-timeout", "5s", "checksums")
				if err != nil {
					mismatch = fmt.Sprintf("node %d: %v (%s)", n, err, strings.TrimSpace(out))
					break
				}
				sums := parseChecksums(out)
				if len(sums) == 0 {
					mismatch = fmt.Sprintf("node %d reported no partitions", n)
					break
				}
				for p, s := range sums {
					if eng.DB(0).PartitionChecksum(p) != s {
						mismatch = fmt.Sprintf("node %d partition %d diverges", n, p)
						break
					}
				}
				if mismatch != "" {
					break
				}
			}
			if mismatch == "" {
				return
			}
			if time.Since(lastRecover) > 3*time.Second {
				for _, id := range eng.FailedNodes() {
					eng.RecoverNode(id)
				}
				lastRecover = time.Now()
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: checksums never converged: %s", label, mismatch)
			}
		}
	}
	waitCommitsGrow("healthy 3-member cluster", 15*time.Second)

	door2 := doors[1]
	out := adminRun("-addr", door2, "topology")
	if !strings.Contains(out, "version 1\n") || strings.Contains(out, "member 3 ") {
		t.Fatalf("boot topology wrong:\n%s", out)
	}

	// A client session riding the doors, before, through, and after the
	// membership changes.
	wc := ycsb.New(ycfg)
	clCodec := core.NewWireCodec(wc)
	clStart := time.Now()
	clCodec.SetClock(func() int64 { return int64(time.Since(clStart)) })
	cl, err := client.Dial(client.Config{
		Addrs: append([]string(nil), doors...),
		Codec: clCodec,
	})
	if err != nil {
		t.Fatalf("client dial: %v", err)
	}
	defer cl.Close()
	readAll := func(label string) {
		t.Helper()
		for p := 0; p < capacity*workers; p++ {
			if _, err := cl.DoRetry(wc.ReadTxn([]int{p}, []int{0}), 20); err != nil {
				t.Fatalf("%s: client read of partition %d: %v", label, p, err)
			}
		}
	}
	readAll("before join")

	// Join the dark slot through node 2's door: the coordinator fences,
	// streams partition snapshots to node 3 over TCP, and installs v2.
	out = adminRun("-addr", door2, "-node", "3", "-timeout", "90s", "join")
	if !strings.Contains(out, "member 3 ") {
		t.Fatalf("join did not report node 3 as a member:\n%s", out)
	}
	waitCommitsGrow("after join", 15*time.Second)

	// All four members byte-identical under a cluster-wide freeze.
	adminRun("-addr", door2, "freeze")
	waitChecksums("after join", door2, []int{1, 2, 3})
	adminRun("-addr", door2, "unfreeze")
	waitCommitsGrow("after unfreeze", 15*time.Second)

	// The client learns the joined member's door from a topology refresh.
	if err := cl.RefreshTopology(10 * time.Second); err != nil {
		t.Fatalf("client topology refresh: %v", err)
	}
	if eps := cl.Endpoints(); len(eps) != 3 {
		t.Fatalf("client endpoints after join = %v, want the 3 member doors", eps)
	}
	readAll("after join")

	// fault-stats must answer over the same envelope (empty: no -faults).
	adminRun("-addr", door2, "-node", "1", "fault-stats")

	// Drain node 1 through node 2's door — NOT its own, so the response
	// does not race its process exit. Its partitions migrate away at a
	// fence, v3 installs without it, and the process exits 0.
	out = adminRun("-addr", door2, "-node", "1", "-timeout", "90s", "drain")
	if strings.Contains(out, "member 1 ") {
		t.Fatalf("drain still reports node 1 as a member:\n%s", out)
	}
	exited := make(chan error, 1)
	go func() { exited <- node1.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("drained star-node exited with error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("drained star-node did not exit")
	}
	waitCommitsGrow("after drain", 15*time.Second)

	// Rebalance over the shrunk member set: the canonical layout is
	// already installed, so this is a pure fence-coordinated version bump.
	adminRun("-addr", door2, "-timeout", "90s", "rebalance")

	// Survivors re-converge; the client sheds the drained door.
	adminRun("-addr", door2, "freeze")
	waitChecksums("after drain", door2, []int{2, 3})
	adminRun("-addr", door2, "unfreeze")
	readAll("after drain")
	if err := cl.RefreshTopology(10 * time.Second); err != nil {
		t.Fatalf("client topology refresh after drain: %v", err)
	}
	eps := cl.Endpoints()
	if len(eps) != 2 || eps[0] != doors[1] || eps[1] != doors[2] {
		t.Fatalf("client endpoints after drain = %v, want [%s %s]", eps, doors[1], doors[2])
	}

	out = adminRun("-addr", door2, "topology")
	if strings.Contains(out, "member 1 ") || !strings.Contains(out, "member 3 ") {
		t.Fatalf("final topology wrong:\n%s", out)
	}
	if halted, reason := eng.Halted(); halted {
		t.Fatalf("cluster halted: %s", reason)
	}
}

// TestStarNodeObservabilityLiveCluster pins the observability plane on a
// live all-process cluster: the same node's committed counter must agree
// between the HTTP /metrics Prometheus scrape and the AdminStats wire
// envelope (sampled under a workload freeze so both paths see one stable
// state), the star-admin stat/top CLI must render the cluster-merged
// view, the coordinator's -trace file must be parseable ascending-epoch
// JSONL, out-of-range AdminStats targets must reject cleanly, and a
// process started WITHOUT -http must leave its reserved scrape port
// closed — no listener unless the flag is given.
func TestStarNodeObservabilityLiveCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short")
	}
	const (
		nodes, workers = 2, 2
	)
	nodeBin := buildStarNode(t)
	adminBin := buildStarAdmin(t)

	ports := freePorts(t, nodes+4)
	addrs, doors := ports[:nodes], ports[nodes:nodes+2]
	httpAddr, darkAddr := ports[nodes+2], ports[nodes+3]
	addrList := strings.Join(addrs, ",")
	doorList := strings.Join(doors, ",")
	tracePath := filepath.Join(t.TempDir(), "timeline.jsonl")

	ycfg := ycsb.Config{Partitions: nodes * workers, RecordsPerPartition: 512}

	// Every process shares one flag line, -trace included: only the
	// coordinator-hosting process (id 0) may create the file — node 1
	// getting the same flag must not truncate it. Node 0 additionally
	// serves -http; node 1 does not, and darkAddr is the port it would
	// have been given.
	startChild := func(id int, extra ...string) *exec.Cmd {
		args := []string{
			"-id", strconv.Itoa(id), "-nodes", "2", "-workers", "2", "-seed", "21",
			"-addrs", addrList, "-workload", "ycsb", "-records", "512",
			"-serve", "-snapshot-reads", "-iteration", "2ms",
			"-client", doors[id], "-clients", doorList,
			"-trace", tracePath,
		}
		args = append(args, extra...)
		cmd := exec.Command(nodeBin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start star-node %d: %v", id, err)
		}
		return cmd
	}
	node0 := startChild(0, "-http", httpAddr)
	defer func() { node0.Process.Kill(); node0.Wait() }()
	node1 := startChild(1)
	defer func() { node1.Process.Kill(); node1.Wait() }()

	// Admin through node 1's door: Stats(0) then exercises the internal
	// forwarding hop, not just the node-local answer.
	ac, err := admin.Dial(admin.Config{Addr: doors[1]})
	if err != nil {
		t.Fatalf("admin dial: %v", err)
	}
	defer ac.Close()

	committedOf := func(node int) int64 {
		t.Helper()
		s, err := ac.Stats(node)
		if err != nil {
			t.Fatalf("admin stats node %d: %v", node, err)
		}
		return s.Counters["committed"]
	}
	deadline := time.Now().Add(20 * time.Second)
	for committedOf(0)+committedOf(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cluster committed nothing")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A short client session so the front-door paths see real traffic too.
	wc := ycsb.New(ycfg)
	clCodec := core.NewWireCodec(wc)
	clStart := time.Now()
	clCodec.SetClock(func() int64 { return int64(time.Since(clStart)) })
	cl, err := client.Dial(client.Config{Addrs: append([]string(nil), doors...), Codec: clCodec})
	if err != nil {
		t.Fatalf("client dial: %v", err)
	}
	defer cl.Close()
	val := []byte("observed")
	for i := 0; i < 8; i++ {
		p := i % (nodes * workers)
		if _, err := cl.DoRetry(wc.WriteTxn([]int{p}, []int{i}, val), 20); err != nil {
			t.Fatalf("client write %d: %v", i, err)
		}
		if _, err := cl.DoRetry(wc.ReadTxn([]int{p}, []int{i}), 20); err != nil {
			t.Fatalf("client read %d: %v", i, err)
		}
	}

	// Freeze the workload and wait for the committed counters to go quiet:
	// the scrape paths below must all sample one stable state or the
	// cross-path equality would race the workload.
	if err := ac.Freeze(true); err != nil {
		t.Fatalf("freeze: %v", err)
	}
	stable := int64(-1)
	deadline = time.Now().Add(15 * time.Second)
	for {
		cur := committedOf(0) + committedOf(1)
		if cur == stable {
			break
		}
		stable = cur
		if time.Now().After(deadline) {
			t.Fatalf("committed never settled under freeze (at %d)", cur)
		}
		time.Sleep(300 * time.Millisecond)
	}

	s0, err := ac.Stats(0)
	if err != nil {
		t.Fatalf("admin stats node 0: %v", err)
	}
	s1, err := ac.Stats(1)
	if err != nil {
		t.Fatalf("admin stats node 1: %v", err)
	}
	if s0.Counters["committed"] == 0 {
		t.Fatal("node 0 snapshot reports zero commits")
	}

	// Path 2: the HTTP Prometheus scrape of the SAME node must agree with
	// the AdminStats envelope.
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape /metrics: status %d, read err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape content type %q", ct)
	}
	promVal := func(name string) int64 {
		t.Helper()
		for _, line := range strings.Split(string(body), "\n") {
			f := strings.Fields(line)
			if len(f) == 2 && f[0] == name {
				v, err := strconv.ParseInt(f[1], 10, 64)
				if err != nil {
					t.Fatalf("metric %s: bad value %q", name, f[1])
				}
				return v
			}
		}
		t.Fatalf("metric %s absent from scrape:\n%s", name, body)
		return 0
	}
	if got, want := promVal("star_committed"), s0.Counters["committed"]; got != want {
		t.Fatalf("/metrics committed %d != AdminStats committed %d", got, want)
	}
	if promVal("star_latency_count") == 0 {
		t.Fatal("latency histogram empty on a node that committed")
	}
	var partSum int64
	for _, line := range strings.Split(string(body), "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && strings.HasPrefix(f[0], `star_partition_commits{`) {
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				t.Fatalf("bad partition gauge line %q", line)
			}
			partSum += v
		}
	}
	// Snapshot-path reads commit without a partition home, so the gauges
	// bound the counter from below.
	if partSum == 0 || partSum > s0.Counters["committed"] {
		t.Fatalf("partition gauges sum %d inconsistent with committed %d", partSum, s0.Counters["committed"])
	}

	// Path 3: the star-admin CLI's cluster-merged view.
	out, err := exec.Command(adminBin, "-addr", doors[0], "stat").CombinedOutput()
	if err != nil {
		t.Fatalf("star-admin stat: %v\n%s", err, out)
	}
	wantLine := fmt.Sprintf("counter committed %d", s0.Counters["committed"]+s1.Counters["committed"])
	if !strings.Contains(string(out), wantLine+"\n") {
		t.Fatalf("star-admin stat merged view missing %q:\n%s", wantLine, out)
	}
	out, err = exec.Command(adminBin, "-addr", doors[0], "-interval", "300ms", "-iters", "1", "top").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "txn/s") {
		t.Fatalf("star-admin top: %v\n%s", err, out)
	}

	// Out-of-range AdminStats targets reject cleanly instead of hanging.
	if _, err := ac.Stats(nodes + 7); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range stats target not rejected: %v", err)
	}

	// The coordinator's timeline: complete lines (the file is still being
	// appended to) must parse as TraceEvents with ascending epochs.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if i := bytes.LastIndexByte(data, '\n'); i < 0 {
		t.Fatalf("trace file has no complete lines (%d bytes)", len(data))
	} else {
		data = data[:i]
	}
	var last uint64
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		var ev core.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %d does not parse: %v\n%s", i, err, line)
		}
		if ev.Epoch <= last {
			t.Fatalf("trace line %d: epoch %d not ascending (prev %d)", i, ev.Epoch, last)
		}
		last = ev.Epoch
	}
	t.Logf("observability: committed node0=%d node1=%d, %d trace epochs", s0.Counters["committed"], s1.Counters["committed"], len(lines))

	// No listener unless -http is given: node 1 never got the flag, and
	// the port reserved for it must refuse connections.
	if conn, err := net.DialTimeout("tcp", darkAddr, 500*time.Millisecond); err == nil {
		conn.Close()
		t.Fatalf("port %s is listening but no process was given -http", darkAddr)
	}
}
