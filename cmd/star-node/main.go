// Command star-node runs ONE node of a STAR cluster as its own OS
// process, connected to its peers over TCP (internal/tcpnet) with the
// internal/wire binary encoding — the multi-process counterpart of the
// in-process cluster the library API builds.
//
// Every process is started with the same cluster flags plus its own
// -id. Process 0 additionally hosts the phase coordinator, drives the
// scripted run, and prints the cluster result as JSON; the other
// processes exit silently when the coordinator halts the run.
//
// A 2-node TPC-C cluster on loopback:
//
//	star-node -id 0 -nodes 2 -addrs 127.0.0.1:7101,127.0.0.1:7102 &
//	star-node -id 1 -nodes 2 -addrs 127.0.0.1:7101,127.0.0.1:7102
//
// The run is scripted (-txns generator steps per partition, then one
// deterministic single-master drain): its committed count and
// per-partition checksums are a pure function of the flags and -seed,
// so the same flags on the in-process simnet cluster produce the exact
// same JSON — the equivalence cmd/star-node's integration test pins.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	stdnet "net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"star/internal/core"
	"star/internal/faultnet"
	"star/internal/metrics"
	"star/internal/rt"
	"star/internal/tcpnet"
	"star/internal/transport"
	"star/internal/workload"
	"star/internal/workload/tpcc"
	"star/internal/workload/ycsb"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this process's node id (process 0 also hosts the coordinator)")
		nodes     = flag.Int("nodes", 2, "cluster size f+k")
		full      = flag.Int("full", 1, "full replicas f")
		workers   = flag.Int("workers", 2, "worker threads per node (partitions = nodes*workers)")
		addrs     = flag.String("addrs", "", "comma-separated host:port per process, in id order (required)")
		wl        = flag.String("workload", "tpcc", "workload: tpcc or ycsb")
		mix       = flag.String("mix", "paper", "tpcc mix: paper (NewOrder+Payment) or full (adds Delivery+Stock-Level, 45/43/4/4)")
		cross     = flag.Int("cross", -1, "cross-partition percentage (-1 = workload default)")
		snapReads = flag.Bool("snapshot-reads", false, "serve read-only transactions from the local fence snapshot")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		txns      = flag.Int("txns", 200, "scripted generator steps per partition")
		serve     = flag.Bool("serve", false, "time-driven run instead of the scripted one: process the workload until killed or drained (failure-test mode)")
		iteration = flag.Duration("iteration", 10*time.Millisecond, "serve mode: phase-switch iteration time")
		members   = flag.String("members", "", "serve mode: comma-separated boot member ids (empty = all slots; -nodes is capacity, dark slots join later)")
		join      = flag.Bool("join", false, "serve mode: ask the coordinator to admit this dark slot at an epoch fence, retrying until membership is installed")
		clientAt  = flag.String("client", "", "serve mode: host:port to serve star-client connections on (the client front door; off when empty)")
		clients   = flag.String("clients", "", "serve mode: comma-separated per-slot front-door addresses, in id order (advertised via the admin topology API; empty entries allowed)")
		clientWin = flag.Int("client-window", core.DefaultClientWindow, "serve mode: per-connection in-flight request bound")
		httpAt    = flag.String("http", "", "serve mode: host:port for the observability endpoint (Prometheus text at /metrics, pprof at /debug/pprof/); no listener when empty")
		traceAt   = flag.String("trace", "", "serve mode: write the coordinator's per-epoch timeline (JSONL, core.TraceEvent) to this file; only the coordinator-hosting process (id 0) emits")
		probe     = flag.Bool("probe", false, "register an extra probe endpoint (id nodes+1, sharing process 0's address) for an external test/ops observer")
		faults    = flag.String("faults", "", "JSON fault plan (internal/faultnet) injected into this process's outbound traffic; start every process with the same plan file")
		districts = flag.Int("districts", 2, "tpcc: districts per warehouse")
		customers = flag.Int("customers", 300, "tpcc: customers per district")
		items     = flag.Int("items", 2000, "tpcc: catalogue size")
		records   = flag.Int("records", 2000, "ycsb: records per partition")
	)
	flag.Parse()

	addrList := strings.Split(*addrs, ",")
	if *addrs == "" || len(addrList) != *nodes {
		fmt.Fprintf(os.Stderr, "star-node: -addrs must list exactly -nodes addresses (got %d, want %d)\n",
			len(addrList), *nodes)
		os.Exit(2)
	}
	if *id < 0 || *id >= *nodes {
		fmt.Fprintf(os.Stderr, "star-node: -id %d out of range [0,%d)\n", *id, *nodes)
		os.Exit(2)
	}
	var memberList []int
	if *members != "" {
		if !*serve {
			fmt.Fprintln(os.Stderr, "star-node: -members requires -serve (scripted runs use every slot)")
			os.Exit(2)
		}
		for _, s := range strings.Split(*members, ",") {
			var m int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &m); err != nil || m < 0 || m >= *nodes {
				fmt.Fprintf(os.Stderr, "star-node: -members: bad id %q\n", s)
				os.Exit(2)
			}
			memberList = append(memberList, m)
		}
	}
	var clientAddrs []string
	if *clients != "" {
		clientAddrs = strings.Split(*clients, ",")
		if len(clientAddrs) != *nodes {
			fmt.Fprintf(os.Stderr, "star-node: -clients must list exactly -nodes addresses (got %d, want %d; empty entries allowed)\n",
				len(clientAddrs), *nodes)
			os.Exit(2)
		}
	}

	nparts := *nodes * *workers
	var w workload.Workload
	switch *wl {
	case "tpcc":
		cfg := tpcc.Config{
			Warehouses:           nparts,
			Districts:            *districts,
			CustomersPerDistrict: *customers,
			Items:                *items,
		}
		if *mix == "full" {
			cfg.SetFullMix()
		}
		if *cross >= 0 {
			cfg.SetCrossPct(*cross)
		}
		w = tpcc.New(cfg)
	case "ycsb":
		cfg := ycsb.Config{Partitions: nparts, RecordsPerPartition: *records}
		if *cross >= 0 {
			cfg.CrossPct = *cross
		}
		w = ycsb.New(cfg)
	default:
		fmt.Fprintf(os.Stderr, "star-node: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	// Endpoint map: node i lives at addrList[i]; the coordinator
	// endpoint (id = nodes) shares process 0's listener, and so does the
	// optional probe endpoint (id = nodes+1).
	endpoints := append(append([]string(nil), addrList...), addrList[0])
	if *probe {
		endpoints = append(endpoints, addrList[0])
	}
	local := []int{*id}
	if *id == 0 {
		local = append(local, *nodes) // coordinator endpoint
	}

	r := rt.NewReal()
	codec := core.NewWireCodec(w)
	if *serve {
		// Time-driven mode: re-base request generation stamps at the
		// transport boundary. Each process's runtime clock has its own
		// origin, so a raw GenAt crossing the wire would skew every
		// deferred request's latency sample by the inter-process start
		// delta. Scripted runs must NOT do this — their GenAt carries
		// the deterministic total-order stamp the master sorts by.
		codec.SetClock(func() int64 { return int64(r.Now()) })
	}
	nw, err := tcpnet.New(r, tcpnet.Config{
		Endpoints: endpoints,
		Local:     local,
		Codec:     codec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "star-node:", err)
		os.Exit(1)
	}
	defer nw.Close()

	// Optional deterministic fault injection: wrap the TCP transport with
	// the shared plan. Sends are faulted on the process hosting their
	// source endpoint, so identical plan files across processes yield one
	// coherent cluster-wide schedule. Plans for unattended runs must be
	// self-terminating (epoch-/count-bounded windows) — nothing calls
	// Heal() here.
	var tr transport.Transport = nw
	if *faults != "" {
		plan, err := faultnet.LoadPlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "star-node:", err)
			os.Exit(2)
		}
		tr = faultnet.Wrap(r, nw, plan)
	}

	cfg := core.Config{
		RT:               r,
		Nodes:            *nodes,
		FullReplicas:     *full,
		WorkersPerNode:   *workers,
		Workload:         w,
		Seed:             *seed,
		Transport:        tr,
		LocalNodes:       []int{*id},
		LocalCoordinator: *id == 0,
		SnapshotReads:    *snapReads,
		Members:          memberList,
		ClientAddrs:      clientAddrs,
	}

	if *serve {
		// Time-driven mode: run the node (and, on process 0, the
		// coordinator) until the process is killed — the target of the
		// multi-process kill/restart failure tests. Nothing is printed;
		// observers use the probe endpoint.
		cfg.Iteration = *iteration
		if *traceAt != "" && *id == 0 {
			// Only the coordinator-hosting process emits; gating the file on
			// id 0 lets every process share one flag line without the others
			// truncating the coordinator's output.
			tf, err := os.Create(*traceAt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "star-node: trace file:", err)
				os.Exit(1)
			}
			defer tf.Close()
			cfg.Trace = tf
		}
		eng := core.New(cfg)
		if *httpAt != "" {
			// Explicit mux, explicit listener: nothing is served unless the
			// flag is given, and the pprof handlers never land on the
			// DefaultServeMux.
			mux := http.NewServeMux()
			mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4")
				metrics.WritePrometheus(w, eng.StatsSnapshot())
			})
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			hln, err := stdnet.Listen("tcp", *httpAt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "star-node: http listener:", err)
				os.Exit(1)
			}
			go http.Serve(hln, mux)
		}
		if *clientAt != "" {
			ln, err := stdnet.Listen("tcp", *clientAt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "star-node: client listener:", err)
				os.Exit(1)
			}
			eng.ServeClients(*id, ln, codec, *clientWin)
		}
		if *join && !eng.Topology().IsMember(*id) {
			// Elastic scale-out: keep asking the coordinator to admit this
			// slot until the new topology version lands here. The request
			// rides the node's own transport endpoint; the coordinator's
			// snapshot catch-up and fence install do the rest.
			go func() {
				for !eng.Topology().IsMember(*id) {
					tr.Send(*id, *nodes, transport.Control,
						core.AdminReq{V: core.AdminProtoVersion, Op: core.AdminJoin, From: *id, Node: *id})
					time.Sleep(time.Second)
				}
			}()
		}
		// Run until killed — or until the cluster drains this node out of
		// the member set, which is the clean exit: give the front door a
		// beat to flush any in-flight admin response first.
		for drained := range eng.Drained() {
			if drained == *id {
				time.Sleep(time.Second)
				return
			}
		}
		return
	}

	run := core.StartScripted(cfg, core.Script{TxnsPerPartition: *txns})

	res := <-run.Done()
	r.Stop()
	if *id != 0 {
		return // node-only process: the coordinator prints the result
	}
	out, _ := json.Marshal(res)
	fmt.Println(string(out))
	if res.Err != "" {
		os.Exit(1)
	}
}
