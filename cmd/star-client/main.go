// Command star-client drives transactions against a live STAR cluster's
// client front door (star-node -serve -client <addr>) and prints a JSON
// summary of the session.
//
// The cluster flags (-nodes, -workers, -records, -cross) must match the
// serving cluster's: the wire codec is constructed from the workload
// configuration, and both sides must build it identically.
//
// A minimal session against a 2-process YCSB cluster:
//
//	star-node -id 0 -nodes 2 -workload ycsb -serve -snapshot-reads \
//	    -client 127.0.0.1:7200 -addrs 127.0.0.1:7101,127.0.0.1:7102 &
//	star-node -id 1 -nodes 2 -workload ycsb -serve -snapshot-reads \
//	    -addrs 127.0.0.1:7101,127.0.0.1:7102 &
//	star-client -addr 127.0.0.1:7200 -nodes 2 -workload ycsb -writes 10 -reads 10
//
// The session alternates like a real client: each write's response
// carries the fence epoch it committed in (the session freshness token),
// and each read ships the token back, so a replica may serve it from its
// epoch-fence snapshot only once that fence covers the session's own
// writes — read-your-own-writes without routing reads to the master.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"star/internal/client"
	"star/internal/core"
	"star/internal/metrics"
	"star/internal/workload/ycsb"
)

type summary struct {
	Writes    int    `json:"writes"`
	Reads     int    `json:"reads"`
	Busy      int    `json:"busy"`
	Aborted   int    `json:"aborted"`
	Errors    int    `json:"errors"`
	RowsRead  int64  `json:"rows_read"`
	Token     uint64 `json:"token"`
	ElapsedMS int64  `json:"elapsed_ms"`
	// Client-observed request latency (successful transactions, request
	// write to response read — group-commit wait included for writes).
	P50US int64 `json:"p50_us"`
	P99US int64 `json:"p99_us"`
}

func main() {
	var (
		addr    = flag.String("addr", "", "front door host:port, or a comma-separated failover list tried in order (required)")
		nodes   = flag.Int("nodes", 2, "cluster size (must match the serving cluster)")
		workers = flag.Int("workers", 2, "workers per node (partitions = nodes*workers; must match)")
		wl      = flag.String("workload", "ycsb", "workload (must match; star-client drives ycsb)")
		cross   = flag.Int("cross", -1, "cross-partition percentage (must match)")
		records = flag.Int("records", 2000, "ycsb records per partition (must match)")
		writes  = flag.Int("writes", 10, "write transactions to run")
		reads   = flag.Int("reads", 10, "read-only transactions to run")
		part    = flag.Int("part", 0, "home partition the session's rows live in")
		span    = flag.Int("span", 1, "partitions each transaction touches (footprint spreads from -part)")
		window  = flag.Int("window", 16, "client in-flight window")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		retries = flag.Int("retries", 8, "busy-shed retries per transaction")
	)
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "star-client: -addr is required")
		os.Exit(2)
	}
	if *wl != "ycsb" {
		fmt.Fprintf(os.Stderr, "star-client: unsupported workload %q (star-client drives ycsb sessions)\n", *wl)
		os.Exit(2)
	}
	nparts := *nodes * *workers
	if *part < 0 || *part >= nparts || *span < 1 || *span > nparts {
		fmt.Fprintf(os.Stderr, "star-client: -part/-span out of range for %d partitions\n", nparts)
		os.Exit(2)
	}
	ycfg := ycsb.Config{Partitions: nparts, RecordsPerPartition: *records}
	if *cross >= 0 {
		ycfg.CrossPct = *cross
	}
	w := ycsb.New(ycfg)

	codec := core.NewWireCodec(w)
	start := time.Now()
	// The serving cluster runs clocked (star-node -serve installs a
	// codec clock), so the client re-bases GenAt stamps the same way.
	codec.SetClock(func() int64 { return int64(time.Since(start)) })

	c, err := client.Dial(client.Config{
		Addrs:      strings.Split(*addr, ","),
		Codec:      codec,
		Window:     *window,
		ReqTimeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "star-client:", err)
		os.Exit(1)
	}
	defer c.Close()

	// The session's footprint: -span partitions starting at -part, one
	// row per partition, stepped through the keyspace per transaction.
	footprint := func(i int) (parts, rows []int) {
		for s := 0; s < *span; s++ {
			parts = append(parts, (*part+s)%nparts)
			rows = append(rows, i%*records)
		}
		return parts, rows
	}

	var sum summary
	lat := &metrics.Hist{}
	account := func(res client.Result, err error, isRead bool) {
		switch {
		case err == nil:
			if isRead {
				sum.Reads++
				sum.RowsRead += res.Reads
			} else {
				sum.Writes++
			}
		case errors.Is(err, client.ErrBusy):
			sum.Busy++
		case errors.Is(err, client.ErrAborted):
			sum.Aborted++
		default:
			sum.Errors++
			fmt.Fprintln(os.Stderr, "star-client:", err)
		}
	}

	n := *writes
	if *reads > n {
		n = *reads
	}
	val := make([]byte, 8)
	for i := 0; i < n; i++ {
		parts, rows := footprint(i)
		if i < *writes {
			copy(val, fmt.Sprintf("w%06d", i))
			t0 := time.Now()
			res, err := c.DoRetry(w.WriteTxn(parts, rows, val), *retries)
			if err == nil {
				lat.Observe(time.Since(t0))
			}
			account(res, err, false)
		}
		if i < *reads {
			t0 := time.Now()
			res, err := c.DoRetry(w.ReadTxn(parts, rows), *retries)
			if err == nil {
				lat.Observe(time.Since(t0))
			}
			account(res, err, true)
		}
	}

	sum.P50US = lat.Quantile(0.50).Microseconds()
	sum.P99US = lat.Quantile(0.99).Microseconds()
	sum.Token = c.Token()
	sum.ElapsedMS = time.Since(start).Milliseconds()
	out, _ := json.Marshal(sum)
	fmt.Println(string(out))
	if sum.Errors > 0 {
		os.Exit(1)
	}
}
