package main

import (
	"encoding/json"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildBin compiles one of this module's commands into a temp dir.
func buildBin(t *testing.T, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	build := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// freePorts reserves n distinct loopback ports (closed again before the
// processes start; a steal in between is acceptable for a seconds-long
// test).
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestStarClientLiveCluster is the end-to-end acceptance check for the
// client front door: a real 2-process star-node cluster (-serve
// -snapshot-reads) opens a client door on the REPLICA (node 1), and the
// star-client binary runs a session of interleaved writes and reads
// against it. Every write must commit (the response carrying its fence
// epoch as the session token), every read must complete with the full
// row count — reads ride the replica's snapshot when the token allows
// and are forwarded to the master when it does not, but either way the
// session sees its own writes. The printed summary is the contract.
func TestStarClientLiveCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short")
	}
	nodeBin := buildBin(t, "star/cmd/star-node", "star-node")
	clientBin := buildBin(t, "star/cmd/star-client", "star-client")

	addrs := freePorts(t, 3)
	addrList := addrs[0] + "," + addrs[1]
	doorAddr := addrs[2]

	nodeArgs := func(id string, extra ...string) []string {
		args := []string{
			"-id", id, "-nodes", "2", "-workers", "2", "-seed", "5",
			"-addrs", addrList, "-workload", "ycsb", "-records", "512",
			"-serve", "-snapshot-reads", "-iteration", "2ms",
		}
		return append(args, extra...)
	}
	start := func(args []string) *exec.Cmd {
		cmd := exec.Command(nodeBin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start star-node: %v", err)
		}
		return cmd
	}
	// The replica hosts the door: session-fresh reads are served from its
	// fence snapshot, writes are forwarded across the cluster transport
	// to the master on node 0.
	node1 := start(nodeArgs("1", "-client", doorAddr))
	defer func() { node1.Process.Kill(); node1.Wait() }()
	node0 := start(nodeArgs("0"))
	defer func() { node0.Process.Kill(); node0.Wait() }()

	const (
		writes, reads, span = 8, 8, 2
	)
	client := exec.Command(clientBin,
		"-addr", doorAddr, "-nodes", "2", "-workers", "2",
		"-workload", "ycsb", "-records", "512",
		"-writes", "8", "-reads", "8", "-span", "2",
		"-timeout", "20s",
	)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = client.Output()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		client.Process.Kill()
		t.Fatal("star-client did not finish in 60s")
	}
	if err != nil {
		t.Fatalf("star-client: %v (output %q)", err, out)
	}

	var sum struct {
		Writes   int    `json:"writes"`
		Reads    int    `json:"reads"`
		Busy     int    `json:"busy"`
		Aborted  int    `json:"aborted"`
		Errors   int    `json:"errors"`
		RowsRead int64  `json:"rows_read"`
		Token    uint64 `json:"token"`
	}
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatalf("parse summary %q: %v", out, err)
	}
	if sum.Writes != writes || sum.Reads != reads {
		t.Fatalf("session lost transactions: %+v, want %d writes / %d reads", sum, writes, reads)
	}
	if sum.Errors != 0 || sum.Aborted != 0 {
		t.Fatalf("session had failures: %+v", sum)
	}
	if sum.RowsRead != int64(reads*span) {
		t.Fatalf("rows_read = %d, want %d (every read must see its full footprint)", sum.RowsRead, reads*span)
	}
	// Every write returns its commit fence; a session that committed
	// anything holds a non-zero token (epoch fences start above 1).
	if sum.Token < 2 {
		t.Fatalf("session token = %d after %d commits, want ≥ 2", sum.Token, writes)
	}
}
