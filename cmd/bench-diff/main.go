// Command bench-diff is the benchmark-trajectory guardrail: it compares
// a fresh sweep (or a previously written results file) against the
// committed BENCH_results.json baseline and exits non-zero when any
// matched point's throughput regressed by more than the threshold.
//
// The fresh sweep reruns on the deterministic simulation runtime with
// the baseline's recorded seed and scale, so the comparison is stable
// across machines — a regression means the code changed the modelled
// behaviour, not that the CI host was slow.
//
// Usage:
//
//	bench-diff                                  # fresh short sweep vs BENCH_results.json
//	bench-diff -engines STAR -workloads ycsb    # subset (faster; compares the intersection)
//	bench-diff -current other.json              # compare two files, no fresh run
//	bench-diff -threshold 10                    # tighter regression bound
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"star/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_results.json", "committed baseline results file")
	current := flag.String("current", "", "results file to compare (empty: run a fresh sweep)")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent")
	engines := flag.String("engines", "", "comma-separated engines for the fresh sweep (default: all in the baseline)")
	workloads := flag.String("workloads", "", "comma-separated workloads for the fresh sweep")
	verbose := flag.Bool("v", false, "print every matched point, not just regressions")
	flag.Parse()

	base, err := bench.ReadResultsFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		os.Exit(2)
	}

	var cur bench.SweepResults
	if *current != "" {
		cur, err = bench.ReadResultsFile(*current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "current:", err)
			os.Exit(2)
		}
		// The subset flags narrow a file comparison too, not just the
		// fresh sweep.
		cur.Results = filterPoints(cur.Results, bench.SplitList(*workloads), bench.SplitList(*engines))
	} else {
		// Rerun at the baseline's recorded scale and seed; batching
		// comparison runs are not diffed, so skip them.
		opt := bench.Options{Out: os.Stderr, Short: base.Short, Seed: base.Seed}
		cfg := bench.SweepConfig{
			Nodes:        base.Nodes,
			Workloads:    bench.SplitList(*workloads),
			Engines:      bench.SplitList(*engines),
			CrossPcts:    base.CrossPcts,
			SkipBatching: true,
		}
		if cfg.Workloads == nil {
			cfg.Workloads = base.Workloads
		}
		if cfg.Engines == nil {
			cfg.Engines = base.Engines
		}
		start := time.Now()
		cur, err = bench.RunSweep(opt, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "# fresh sweep: %d points in %v\n",
			len(cur.Results), time.Since(start).Round(time.Millisecond))
	}

	deltas := bench.DiffResults(base, cur, *threshold)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "bench-diff: no matching points between baseline and current")
		os.Exit(2)
	}
	regs := bench.Regressions(deltas)
	for _, d := range deltas {
		if *verbose || d.Regressed {
			fmt.Println(bench.FormatDelta(d))
		}
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: %d of %d points regressed more than %.0f%%\n",
			len(regs), len(deltas), *threshold)
		os.Exit(1)
	}
	fmt.Printf("bench-diff: %d points within %.0f%% of baseline\n", len(deltas), *threshold)
}

// filterPoints keeps the points matching the requested workloads and
// engines (nil filter = keep all).
func filterPoints(pts []bench.SweepPoint, workloads, engines []string) []bench.SweepPoint {
	keep := func(list []string, v string) bool {
		if len(list) == 0 {
			return true
		}
		for _, x := range list {
			if x == v {
				return true
			}
		}
		return false
	}
	var out []bench.SweepPoint
	for _, p := range pts {
		if keep(workloads, p.Workload) && keep(engines, p.Engine) {
			out = append(out, p)
		}
	}
	return out
}
