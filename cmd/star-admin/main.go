// star-admin drives a live STAR cluster's unified control-plane API
// through any node's client front door (star-node -client): freezing
// the workload, reading per-node checksums and fault-injection
// counters, inspecting the installed topology, and changing membership
// at epoch fences (join / drain / rebalance).
//
// Usage:
//
//	star-admin -addr HOST:PORT freeze|unfreeze
//	star-admin -addr HOST:PORT -node N checksums
//	star-admin -addr HOST:PORT -node N fault-stats
//	star-admin -addr HOST:PORT -node N join
//	star-admin -addr HOST:PORT -node N drain
//	star-admin -addr HOST:PORT rebalance
//	star-admin -addr HOST:PORT topology
//	star-admin -addr HOST:PORT [-node N] stat
//	star-admin -addr HOST:PORT [-node N] [-interval D] [-iters N] top
//
// stat prints one metric-registry snapshot — the targeted node's, or
// (without -node) the cluster-merged aggregate of every member, all
// fetched through the single connected door. top re-samples every
// -interval and prints delta rates (txn/s, abort/s, epochs/s) plus the
// window's latency quantiles, like a tiny cluster-wide htop.
//
// Exit status 0 on success; the failure reason goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"star/internal/admin"
	"star/internal/metrics"
)

func main() {
	addr := flag.String("addr", "", "front-door address (host:port) of any cluster member")
	node := flag.Int("node", -1, "target slot id for node-scoped and membership verbs")
	opTimeout := flag.Duration("timeout", 30*time.Second, "per-operation timeout")
	dialDeadline := flag.Duration("dial-deadline", 15*time.Second, "overall connect deadline")
	interval := flag.Duration("interval", 2*time.Second, "top: sampling interval")
	iters := flag.Int("iters", 0, "top: number of refreshes (0 = until interrupted)")
	flag.Parse()

	verb := flag.Arg(0)
	if *addr == "" || verb == "" {
		fmt.Fprintln(os.Stderr, "usage: star-admin -addr HOST:PORT [-node N] freeze|unfreeze|checksums|fault-stats|join|drain|rebalance|topology|stat|top")
		os.Exit(2)
	}
	needNode := func() int {
		if *node < 0 {
			fatalf("%s: -node is required", verb)
		}
		return *node
	}

	c, err := admin.Dial(admin.Config{Addr: *addr, OpTimeout: *opTimeout, DialDeadline: *dialDeadline})
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()

	switch verb {
	case "freeze":
		check(c.Freeze(true))
		fmt.Println("frozen")
	case "unfreeze":
		check(c.Freeze(false))
		fmt.Println("unfrozen")
	case "checksums":
		cs, err := c.Checksums(needNode())
		check(err)
		for i, p := range cs.Parts {
			fmt.Printf("part %d sum %016x\n", p, cs.Sums[i])
		}
	case "fault-stats":
		stats, err := c.FaultStats(needNode())
		check(err)
		keys := make([]string, 0, len(stats))
		for k := range stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s %d\n", k, stats[k])
		}
	case "join":
		t, err := c.Join(needNode())
		check(err)
		printTopology(t)
	case "drain":
		t, err := c.Drain(needNode())
		check(err)
		printTopology(t)
	case "rebalance":
		t, err := c.Rebalance()
		check(err)
		printTopology(t)
	case "topology":
		t, err := c.Topology()
		check(err)
		printTopology(t)
	case "stat":
		s, err := clusterStats(c, *node)
		check(err)
		printSnapshot(s)
	case "top":
		runTop(c, *node, *interval, *iters)
	default:
		fatalf("unknown verb %q", verb)
	}
}

// clusterStats fetches one node's metric snapshot, or — when node < 0 —
// every member's through the single connected door (the door forwards
// node-targeted AdminStats internally) merged into the cluster view.
func clusterStats(c *admin.Client, node int) (metrics.Snapshot, error) {
	if node >= 0 {
		return c.Stats(node)
	}
	t, err := c.Topology()
	if err != nil {
		return metrics.Snapshot{}, err
	}
	var agg metrics.Snapshot
	for _, m := range t.Members {
		s, err := c.Stats(m)
		if err != nil {
			return metrics.Snapshot{}, err
		}
		agg.Merge(s)
	}
	return agg, nil
}

// printSnapshot renders a snapshot in sorted name order: scalars one per
// line, histograms as count + quantiles.
func printSnapshot(s metrics.Snapshot) {
	scalars := func(kind string, m map[string]int64) {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s %s %d\n", kind, n, m[n])
		}
	}
	scalars("counter", s.Counters)
	scalars("gauge", s.Gauges)
	names := make([]string, 0, len(s.Hists))
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		fmt.Printf("hist %s count %d mean %v p50 %v p99 %v max %v\n",
			n, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), time.Duration(h.Max))
	}
}

// runTop samples the cluster-merged (or node-targeted) snapshot every
// interval and prints per-window delta rates plus the window's latency
// quantiles.
func runTop(c *admin.Client, node int, interval time.Duration, iters int) {
	prev, err := clusterStats(c, node)
	check(err)
	for i := 0; iters <= 0 || i < iters; i++ {
		time.Sleep(interval)
		cur, err := clusterStats(c, node)
		check(err)
		rate := func(name string) float64 {
			return float64(cur.Counters[name]-prev.Counters[name]) / interval.Seconds()
		}
		lat := histDelta(cur.Hists["latency"], prev.Hists["latency"])
		var lag int64
		for name, v := range cur.Gauges {
			if strings.HasPrefix(name, "repl_lag{") {
				lag += v
			}
		}
		fmt.Printf("txn/s %8.0f  abort/s %6.0f  epoch/s %5.1f  p50 %-10v p99 %-10v shed/s %5.0f  repl_lag %d\n",
			rate("committed"), rate("aborted")+rate("user_aborts"), rate("epochs"),
			lat.Quantile(0.5), lat.Quantile(0.99),
			rate("shed_frontdoor")+rate("rejected"), lag)
		prev = cur
	}
}

// histDelta subtracts two cumulative snapshots of the same histogram,
// yielding the window's samples (Max stays the cumulative max — the
// buckets bound the window quantiles fine without it).
func histDelta(cur, prev metrics.HistSnapshot) metrics.HistSnapshot {
	d := metrics.HistSnapshot{
		Count: cur.Count - prev.Count,
		Sum:   cur.Sum - prev.Sum,
		Max:   cur.Max,
	}
	for b, n := range cur.Buckets {
		if delta := n - prev.Buckets[b]; delta > 0 {
			if d.Buckets == nil {
				d.Buckets = make(map[int]int64)
			}
			d.Buckets[b] = delta
		}
	}
	return d
}

func printTopology(t admin.Topology) {
	fmt.Printf("version %d\n", t.Version)
	for i, m := range t.Members {
		addr := ""
		if i < len(t.ClientAddrs) {
			addr = t.ClientAddrs[i]
		}
		fmt.Printf("member %d addr %s\n", m, addr)
	}
	fmt.Printf("masters %v\n", t.Masters)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "star-admin: "+format+"\n", args...)
	os.Exit(1)
}
