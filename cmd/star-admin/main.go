// star-admin drives a live STAR cluster's unified control-plane API
// through any node's client front door (star-node -client): freezing
// the workload, reading per-node checksums and fault-injection
// counters, inspecting the installed topology, and changing membership
// at epoch fences (join / drain / rebalance).
//
// Usage:
//
//	star-admin -addr HOST:PORT freeze|unfreeze
//	star-admin -addr HOST:PORT -node N checksums
//	star-admin -addr HOST:PORT -node N fault-stats
//	star-admin -addr HOST:PORT -node N join
//	star-admin -addr HOST:PORT -node N drain
//	star-admin -addr HOST:PORT rebalance
//	star-admin -addr HOST:PORT topology
//
// Exit status 0 on success; the failure reason goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"star/internal/admin"
)

func main() {
	addr := flag.String("addr", "", "front-door address (host:port) of any cluster member")
	node := flag.Int("node", -1, "target slot id for node-scoped and membership verbs")
	opTimeout := flag.Duration("timeout", 30*time.Second, "per-operation timeout")
	dialDeadline := flag.Duration("dial-deadline", 15*time.Second, "overall connect deadline")
	flag.Parse()

	verb := flag.Arg(0)
	if *addr == "" || verb == "" {
		fmt.Fprintln(os.Stderr, "usage: star-admin -addr HOST:PORT [-node N] freeze|unfreeze|checksums|fault-stats|join|drain|rebalance|topology")
		os.Exit(2)
	}
	needNode := func() int {
		if *node < 0 {
			fatalf("%s: -node is required", verb)
		}
		return *node
	}

	c, err := admin.Dial(admin.Config{Addr: *addr, OpTimeout: *opTimeout, DialDeadline: *dialDeadline})
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()

	switch verb {
	case "freeze":
		check(c.Freeze(true))
		fmt.Println("frozen")
	case "unfreeze":
		check(c.Freeze(false))
		fmt.Println("unfrozen")
	case "checksums":
		cs, err := c.Checksums(needNode())
		check(err)
		for i, p := range cs.Parts {
			fmt.Printf("part %d sum %016x\n", p, cs.Sums[i])
		}
	case "fault-stats":
		stats, err := c.FaultStats(needNode())
		check(err)
		keys := make([]string, 0, len(stats))
		for k := range stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s %d\n", k, stats[k])
		}
	case "join":
		t, err := c.Join(needNode())
		check(err)
		printTopology(t)
	case "drain":
		t, err := c.Drain(needNode())
		check(err)
		printTopology(t)
	case "rebalance":
		t, err := c.Rebalance()
		check(err)
		printTopology(t)
	case "topology":
		t, err := c.Topology()
		check(err)
		printTopology(t)
	default:
		fatalf("unknown verb %q", verb)
	}
}

func printTopology(t admin.Topology) {
	fmt.Printf("version %d\n", t.Version)
	for i, m := range t.Members {
		addr := ""
		if i < len(t.ClientAddrs) {
			addr = t.ClientAddrs[i]
		}
		fmt.Printf("member %d addr %s\n", m, addr)
	}
	fmt.Printf("masters %v\n", t.Masters)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "star-admin: "+format+"\n", args...)
	os.Exit(1)
}
