// Command star-model prints the paper's analytical model (§6.3):
// Figure 3 (speedup of asymmetric replication over a single node) and
// Figure 10 (improvement over partitioning-based and non-partitioned
// systems on four nodes).
package main

import (
	"os"

	"star/internal/bench"
)

func main() {
	opt := bench.Options{Out: os.Stdout}
	bench.Fig03(opt)
	bench.Fig10(opt)
}
