package baseline

import (
	"star/internal/lock"
	"star/internal/metrics"
	"star/internal/occ"
	"star/internal/replication"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
)

// Protocol selects the distributed concurrency control algorithm.
type Protocol uint8

const (
	// DistOCC: reads without locks, commit-time write locking and read
	// validation (NO_WAIT), as in §7.1.2.
	DistOCC Protocol = iota
	// DistS2PL: strict two-phase locking with NO_WAIT during execution.
	DistS2PL
)

func (p Protocol) String() string {
	if p == DistOCC {
		return "Dist. OCC"
	}
	return "Dist. S2PL"
}

// Dist is a partitioning-based distributed engine: every node masters a
// block of partitions and backs up another node's block; transactions
// coordinate across nodes with RPCs, committing via 2PC under
// synchronous replication or via epoch group commit under asynchronous
// replication (§6.2, §7.1.3).
type Dist struct {
	cfg    Config
	proto  Protocol
	net    transport.Transport
	nodes  []*bnode
	locks  []*lock.NoWait // per node (used by S2PL)
	ports  [][]*rpcPort
	ticker *epochTicker
	tids   []occ.TIDGen // per worker
	st     stats
}

// NewDist builds and starts a distributed cluster.
func NewDist(cfg Config, proto Protocol) *Dist {
	cfg = cfg.withDefaults()
	e := &Dist{cfg: cfg, proto: proto, st: stats{latency: &metrics.Hist{}}}
	installSpinWait(cfg.RT)
	e.net = simnet.New(cfg.RT, cfg.Net)
	for i := 0; i < cfg.Nodes; i++ {
		db := cfg.Workload.BuildDB(cfg.NumPartitions(), cfg.HoldsMask(i))
		cfg.Workload.Load(db)
		db.CommitEpoch()
		e.nodes = append(e.nodes, &bnode{id: i, db: db, tracker: replication.NewTracker(cfg.Nodes), net: e.net})
		e.locks = append(e.locks, lock.NewNoWait())
	}
	e.ticker = newEpochTicker(cfg, e.net, e.nodes, e.st.latency)
	e.tids = make([]occ.TIDGen, cfg.Nodes*cfg.WorkersPerNode)
	e.start()
	return e
}

// Stats snapshots the run.
func (e *Dist) Stats() metrics.Stats {
	name := e.proto.String()
	if e.cfg.SyncRepl {
		name += " (sync)"
	}
	return e.st.snapshot(name, e.cfg.RT, e.net)
}

// Freeze pauses workload generation so replication can settle (tests).
func (e *Dist) Freeze() { e.st.frozen.Store(true) }

// NodeDB exposes a node's database for consistency checks.
func (e *Dist) NodeDB(i int) *storage.DB { return e.nodes[i].db }

// Config returns the effective configuration.
func (e *Dist) Config() Config { return e.cfg }

// ---- wire payloads ----

type readPayload struct {
	Table storage.TableID
	Part  int
	Key   storage.Key
	Write bool // S2PL: lock mode
	Owner int  // S2PL: lock owner
}

type readReply struct {
	Row []byte
	TID uint64
	// Absent distinguishes "the row does not exist" (a successful read
	// the procedure can skip over — trimmed orders, delivered NEW-ORDER
	// rows) from a failed call (lock conflict / latched record), which
	// aborts the transaction.
	Absent bool
}

type lvPayload struct { // Dist. OCC lock+validate
	Reads  []txn.ReadEntry
	Writes []lock.Name
	Parts  []int32
}

type lvReply struct {
	MaxWriteTID uint64
}

type commitPayload struct {
	TID     uint64
	Entries []replication.Entry // ops or rows to install
	Owner   int                 // S2PL lock owner to release
	Release []lock.Name         // S2PL locks to release
	Sync    bool                // replicate to backup synchronously
}

type abortPayload struct {
	Writes  []lock.Name // OCC: record latches to drop
	Owner   int         // S2PL owner
	Release []lock.Name // S2PL locks
	Parts   []int32
}

// idxPayload asks a partition's master to resolve a secondary-index
// lookup; idxReply carries the matching primary keys, ascending.
type idxPayload struct {
	Table storage.TableID
	Part  int
	Index int
	Val   []byte
}

type idxReply struct {
	Keys []storage.Key
}

// pendingSync tracks a participant-side commit waiting for its backup's
// ack before releasing locks (2PC + synchronous replication).
type pendingSync struct {
	from   int
	worker int
	seq    uint64
	recs   []*storage.Record
	owner  int
	names  []lock.Name
}

func (e *Dist) start() {
	r := e.cfg.RT
	e.ports = make([][]*rpcPort, e.cfg.Nodes)
	for i := range e.ports {
		e.ports[i] = make([]*rpcPort, e.cfg.WorkersPerNode)
		for w := range e.ports[i] {
			e.ports[i][w] = newRPCPort(r)
		}
	}
	for i := 0; i < e.cfg.Nodes; i++ {
		i := i
		n := e.nodes[i]
		pending := map[uint64]*pendingSync{}
		var syncSeq uint64
		var handler func(m any)
		handler = func(m any) {
			switch msg := m.(type) {
			case *replication.Batch:
				r.Compute(e.cfg.Cost.MsgHandling)
				applyBatch(e.cfg, n, msg)
			case *rpcResp:
				if msg.Worker >= 0 {
					e.ports[i][msg.Worker].resp.Send(msg)
					return
				}
				// Backup ack for a pending synchronous commit.
				p := pending[msg.Seq]
				if p == nil {
					return
				}
				delete(pending, msg.Seq)
				for _, rec := range p.recs {
					rec.Unlock()
				}
				for _, nm := range p.names {
					e.locks[i].Unlock(nm, p.owner)
				}
				e.net.Send(i, p.from, transport.Data, &rpcResp{Worker: p.worker, Seq: p.seq, OK: true})
			case *rpcReq:
				r.Compute(e.cfg.Cost.MsgHandling)
				e.serve(i, msg, pending, &syncSeq)
			case msgTick:
				e.net.Send(i, e.cfg.tickerID(), transport.Control, msgTickDone{
					Node: i, Epoch: msg.Epoch, Sent: n.tracker.SentVector(),
				})
			case msgTickDrain:
				drainNode(e.cfg, n, e.net.Inbox(i), msg, e.st.latency)
			}
		}
		n.onDrainMsg = handler
		r.Go(procName("dist-router", i, 0), func() {
			in := e.net.Inbox(i)
			for {
				handler(in.Recv())
			}
		})
		for wi := 0; wi < e.cfg.WorkersPerNode; wi++ {
			wi := wi
			r.Go(procName("dist-worker", i, wi), func() { e.workerLoop(i, wi) })
		}
	}
	if !e.cfg.SyncRepl {
		r.Go("dist-ticker", e.ticker.loop)
	}
}

// serve handles one participant-side RPC on node i. The router must
// never block on another node, so synchronous commits park in `pending`
// until the backup's ack arrives.
func (e *Dist) serve(i int, m *rpcReq, pending map[uint64]*pendingSync, syncSeq *uint64) {
	n := e.nodes[i]
	reply := func(ok bool, payload []byte) {
		e.net.Send(i, m.From, transport.Data, &rpcResp{Worker: m.Worker, Seq: m.Seq, OK: ok, Payload: payload})
	}
	switch m.Kind {
	case rpcRead:
		rep, ok := e.doRead(i, mustDecode(decodeReadPayload(m.Payload)))
		if !ok {
			reply(false, nil)
			return
		}
		reply(true, rep.encode())

	case rpcLockRead:
		rep, ok := e.doLockRead(i, mustDecode(decodeReadPayload(m.Payload)))
		if !ok {
			reply(false, nil)
			return
		}
		reply(true, rep.encode())

	case rpcLockValidate:
		rep, ok := e.doLockValidate(i, mustDecode(decodeLVPayload(m.Payload)))
		if !ok {
			reply(false, nil)
			return
		}
		reply(true, rep.encode())

	case rpcPrepare: // 2PC prepare (S2PL: locks already held → yes vote)
		reply(true, nil)

	case rpcCommitWrites:
		if m.Worker == -1 {
			// We are the BACKUP applying a synchronously replicated batch.
			p := mustDecode(decodeCommitPayload(m.Payload))
			applyBatch(e.cfg, n, &replication.Batch{From: m.From, Entries: p.Entries})
			e.net.Send(i, m.From, transport.Data, &rpcResp{Worker: -1, Seq: m.Seq, OK: true})
			return
		}
		p := mustDecode(decodeCommitPayload(m.Payload))
		if !p.Sync || len(p.Entries) == 0 {
			e.doCommitAsync(i, p)
			reply(true, nil)
			return
		}
		// Synchronous: apply, forward rows to the backup, and defer the
		// reply (and S2PL lock release) until the backup acks.
		epoch := storage.TIDEpoch(p.TID)
		backup := e.cfg.BackupOf(int(p.Entries[0].Part))
		ents := make([]replication.Entry, 0, len(p.Entries))
		for idx := range p.Entries {
			en := &p.Entries[idx]
			rec := e.applyEntry(i, en, epoch, p.TID)
			row, _, _ := rec.ReadStable(nil)
			ents = append(ents, replication.Entry{Table: en.Table, Part: en.Part, Key: en.Key, TID: p.TID, Row: row})
		}
		if backup == i {
			for _, nm := range p.Release {
				e.locks[i].Unlock(nm, p.Owner)
			}
			reply(true, nil)
			return
		}
		*syncSeq++
		token := *syncSeq
		pending[token] = &pendingSync{from: m.From, worker: m.Worker, seq: m.Seq, owner: p.Owner, names: p.Release}
		n.tracker.AddSent(backup, int64(len(ents)))
		e.net.Send(i, backup, transport.Replication, &rpcReq{
			Kind: rpcCommitWrites, From: i, Worker: -1, Seq: token,
			Payload: (&commitPayload{TID: p.TID, Entries: ents}).encode(),
		})

	case rpcAbort:
		e.doAbort(i, mustDecode(decodeAbortPayload(m.Payload)))
		reply(true, nil)

	case rpcIndexLookup:
		p := mustDecode(decodeIdxPayload(m.Payload))
		keys := n.db.Table(p.Table).IndexLookup(p.Part, p.Index, p.Val, storage.IndexAllEpochs, nil)
		reply(true, (&idxReply{Keys: keys}).encode())
	}
}

func recIn(list []*storage.Record, r *storage.Record) bool {
	for _, x := range list {
		if x == r {
			return true
		}
	}
	return false
}

func (e *Dist) workerLoop(node, wi int) {
	r := e.cfg.RT
	gen := e.cfg.Workload.NewGen(workerSeed(e.cfg.Seed, node, wi))
	home := node*e.cfg.WorkersPerNode + wi
	for {
		if e.st.pause(r) {
			continue
		}
		req := txn.NewRequest(gen.Mixed(home), int64(r.Now()))
		if e.proto == DistOCC {
			e.runOCC(node, wi, req)
		} else {
			e.runS2PL(node, wi, req)
		}
	}
}
