package baseline

import (
	"sync"
	"time"

	"star/internal/lock"
	"star/internal/metrics"
	"star/internal/replication"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/workload"
)

// Calvin is the deterministic baseline (§7.3): a sequencer batches
// transaction inputs and replicates them to every node; per-node lock
// manager threads (Calvin-x uses x of them, leaving workers-x execution
// threads) grant locks in the global batch order; participants of a
// cross-partition transaction push their local reads to each other, so
// no commit protocol is needed.
type Calvin struct {
	cfg   Config
	net   transport.Transport
	nodes []*bnode
	st    stats

	batch int
}

// calvinTxn is one node's execution state for a batch transaction.
type calvinTxn struct {
	id     uint64
	req    *txn.Request
	det    *lock.DetTxn
	local  []txn.Access // accesses on partitions this node masters
	remote map[remoteKey][]byte
	// remoteIdx holds pushed secondary-index resolutions for partitions
	// other nodes master (the matched rows arrive in remote alongside).
	remoteIdx map[idxRef][]storage.Key
	// needed counts participant pushes still outstanding.
	needed  int
	pushed  bool
	counts  bool // this node reports commit/abort (lowest participant)
	genAt   int64
	batchNo uint64
	seq     uint64
}

type remoteKey struct {
	Table storage.TableID
	Part  int
	Key   storage.Key
}

// idxRef names one secondary-index lookup in a push.
type idxRef struct {
	Table storage.TableID
	Part  int
	Index int
	Val   string
}

// idxPush is one resolved lookup shipped with a participant's reads.
type idxPush struct {
	Ref  idxRef
	Keys []storage.Key
}

// ---- wire messages ----

type msgBatch struct {
	No   uint64
	Txns []*txn.Request
}

func (m msgBatch) Size() int {
	n := 24
	for _, r := range m.Txns {
		n += 48 + 16*len(r.Parts) // transaction input parameters
	}
	return n
}

type msgPush struct {
	TxnID uint64
	From  int
	Keys  []remoteKey
	Rows  [][]byte
	// Idx carries resolved secondary-index lookups for the pusher's
	// partitions (by-name accesses declared with Access.IndexVal); the
	// matched records' rows travel in Keys/Rows like ordinary reads.
	Idx []idxPush
}

func (m msgPush) Size() int {
	n := 24
	for _, r := range m.Rows {
		n += 28 + len(r)
	}
	for _, ip := range m.Idx {
		n += 24 + len(ip.Ref.Val) + 16*len(ip.Keys)
	}
	return n
}

type msgBatchDone struct {
	Node int
	No   uint64
}

func (msgBatchDone) Size() int { return 16 }

type lmAcquire struct {
	det   *lock.DetTxn
	names []lock.Name
	write []bool
}

type lmRelease struct {
	det   *lock.DetTxn
	names []lock.Name
}

// NewCalvin builds and starts the deterministic cluster.
func NewCalvin(cfg Config) *Calvin {
	cfg = cfg.withDefaults()
	if cfg.LockManagers >= cfg.WorkersPerNode {
		cfg.LockManagers = cfg.WorkersPerNode - 1
	}
	if cfg.LockManagers < 1 {
		cfg.LockManagers = 1
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 300 * cfg.WorkersPerNode
	}
	e := &Calvin{cfg: cfg, st: stats{latency: &metrics.Hist{}}}
	installSpinWait(cfg.RT)
	e.net = simnet.New(cfg.RT, cfg.Net)
	for i := 0; i < cfg.Nodes; i++ {
		// One replica group: each node holds only its mastered block.
		holds := make([]bool, cfg.NumPartitions())
		for p := range holds {
			holds[p] = cfg.MasterOf(p) == i
		}
		db := cfg.Workload.BuildDB(cfg.NumPartitions(), holds)
		cfg.Workload.Load(db)
		db.CommitEpoch()
		e.nodes = append(e.nodes, &bnode{id: i, db: db, tracker: replication.NewTracker(cfg.Nodes), net: e.net})
	}
	e.start()
	return e
}

// Stats snapshots the run.
func (e *Calvin) Stats() metrics.Stats {
	st := e.st.snapshot(e.Name(), e.cfg.RT, e.net)
	return st
}

// Freeze pauses batch generation after the current batch (tests).
func (e *Calvin) Freeze() { e.st.frozen.Store(true) }

// Name reports the Calvin-x configuration.
func (e *Calvin) Name() string {
	return "Calvin-" + string(rune('0'+e.cfg.LockManagers))
}

// NodeDB exposes a node's database.
func (e *Calvin) NodeDB(i int) *storage.DB { return e.nodes[i].db }

func (e *Calvin) start() {
	r := e.cfg.RT
	for i := 0; i < e.cfg.Nodes; i++ {
		e.startNode(i)
	}
	r.Go("calvin-sequencer", e.sequencerLoop)
}

// sequencerLoop emits input batches and replicates them to every node
// (§7.3: "it replicates inputs at the beginning of the batch"), sending
// the next batch when all nodes report completion (closed loop, matching
// the paper's run-to-saturation measurement).
func (e *Calvin) sequencerLoop() {
	r := e.cfg.RT
	in := e.net.Inbox(e.cfg.tickerID())
	gens := make([]workload.Gen, e.cfg.Nodes)
	for i := range gens {
		gens[i] = e.cfg.Workload.NewGen(workerSeed(e.cfg.Seed, i, 99))
	}
	for {
		if e.st.pause(r) {
			continue
		}
		e.batch++
		no := uint64(e.batch) + 1 // epochs start at 2
		var txns []*txn.Request
		now := int64(r.Now())
		for node := 0; node < e.cfg.Nodes; node++ {
			for k := 0; k < e.cfg.BatchSize; k++ {
				home := node*e.cfg.WorkersPerNode + k%e.cfg.WorkersPerNode
				req := txn.NewRequest(gens[node].Mixed(home), now)
				txns = append(txns, req)
			}
		}
		m := msgBatch{No: no, Txns: txns}
		for i := 0; i < e.cfg.Nodes; i++ {
			e.net.Send(e.cfg.tickerID(), i, transport.Replication, m)
		}
		done := 0
		for done < e.cfg.Nodes {
			v, ok := in.RecvTimeout(10 * time.Second)
			if !ok {
				break
			}
			if d, isDone := v.(msgBatchDone); isDone && d.No == no {
				done++
			}
		}
	}
}

type calvinNode struct {
	e      *Calvin
	id     int
	lms    []rt.Chan
	readyQ rt.Chan

	// mu guards the batch state below (router and workers touch it; on
	// the sim runtime it is uncontended).
	mu      sync.Mutex
	txns    map[uint64]*calvinTxn
	early   map[uint64][]msgPush // pushes that arrived before scheduling
	left    int
	batchNo uint64
}

func (e *Calvin) startNode(i int) {
	r := e.cfg.RT
	cn := &calvinNode{e: e, id: i, readyQ: r.NewChan(1 << 16),
		txns: map[uint64]*calvinTxn{}, early: map[uint64][]msgPush{}}
	for lm := 0; lm < e.cfg.LockManagers; lm++ {
		ch := r.NewChan(1 << 16)
		cn.lms = append(cn.lms, ch)
		shard := lock.NewDet()
		lm := lm
		r.Go(procName("calvin-lm", i, lm), func() {
			for {
				switch m := ch.Recv().(type) {
				case lmAcquire:
					r.Compute(time.Duration(len(m.names)) * 300 * time.Nanosecond)
					for k, nm := range m.names {
						shard.Acquire(nm, m.det, m.write[k])
					}
				case lmRelease:
					r.Compute(time.Duration(len(m.names)) * 150 * time.Nanosecond)
					for _, nm := range m.names {
						shard.Release(nm, m.det)
					}
				}
			}
		})
	}
	// Router: receives batches and pushes.
	r.Go(procName("calvin-router", i, 0), func() {
		in := e.net.Inbox(i)
		for {
			switch m := in.Recv().(type) {
			case msgBatch:
				r.Compute(e.cfg.Cost.MsgHandling)
				cn.schedule(m)
			case msgPush:
				r.Compute(e.cfg.Cost.MsgHandling)
				cn.deliverPush(m)
			}
		}
	})
	workers := e.cfg.WorkersPerNode - e.cfg.LockManagers
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		w := w
		r.Go(procName("calvin-worker", i, w), func() { cn.workerLoop(w) })
	}
}

// schedule assigns a batch's transactions to the lock-manager shards in
// deterministic order.
func (cn *calvinNode) schedule(m msgBatch) {
	e := cn.e
	// All writes of earlier batches are complete (the sequencer gates
	// each batch on every node's done report) and Calvin never reverts:
	// drop their revert bookkeeping so dirty/pending buckets stay at one
	// batch instead of accumulating for the whole run.
	e.nodes[cn.id].db.CommitEpochBefore(m.No)
	cn.mu.Lock()
	cn.batchNo = m.No
	cn.left = 0
	type pending struct {
		ct    *calvinTxn
		names [][]lock.Name
		write [][]bool
	}
	var toAcquire []pending
	for idx, req := range m.Txns {
		var local []txn.Access
		participants := map[int]bool{}
		minPart := -1
		for _, a := range req.Proc.Accesses() {
			owner := e.cfg.MasterOf(a.Part)
			participants[owner] = true
			if minPart == -1 || owner < minPart {
				minPart = owner
			}
			if owner == cn.id {
				local = append(local, a)
			}
		}
		if len(local) == 0 {
			continue
		}
		ct := &calvinTxn{
			id:        m.No<<20 | uint64(idx),
			req:       req,
			local:     local,
			remote:    map[remoteKey][]byte{},
			remoteIdx: map[idxRef][]storage.Key{},
			needed:    len(participants) - 1,
			counts:    minPart == cn.id,
			genAt:     req.GenAt,
			batchNo:   m.No,
			seq:       uint64(idx + 1),
		}
		cn.left++
		cn.txns[ct.id] = ct
		for _, pm := range cn.early[ct.id] {
			ct.absorb(pm)
			ct.needed--
		}
		delete(cn.early, ct.id)
		names := make([][]lock.Name, len(cn.lms))
		write := make([][]bool, len(cn.lms))
		for _, a := range local {
			nm := lock.Name{Table: a.Table, Key: a.Key}
			shard := int((a.Key.Lo*2654435761 + a.Key.Hi + uint64(a.Table)) % uint64(len(cn.lms)))
			names[shard] = append(names[shard], nm)
			write[shard] = append(write[shard], a.Write)
		}
		nlocks := 0
		for _, ns := range names {
			nlocks += len(ns)
		}
		ready := cn.readyQ
		ct.det = lock.NewDetTxn(ct.id, nlocks, func() { ready.Send(ct) })
		toAcquire = append(toAcquire, pending{ct: ct, names: names, write: write})
	}
	if cn.left == 0 {
		cn.mu.Unlock()
		e.net.Send(cn.id, e.cfg.tickerID(), transport.Control, msgBatchDone{Node: cn.id, No: m.No})
		return
	}
	cn.mu.Unlock()
	// Dispatch lock requests in batch order per shard.
	for _, p := range toAcquire {
		for shard := range cn.lms {
			if len(p.names[shard]) > 0 {
				cn.lms[shard].Send(lmAcquire{det: p.ct.det, names: p.names[shard], write: p.write[shard]})
			}
		}
	}
}

// absorb folds a participant's push into the transaction's remote state.
func (ct *calvinTxn) absorb(m msgPush) {
	for i, k := range m.Keys {
		ct.remote[k] = m.Rows[i]
	}
	for _, ip := range m.Idx {
		ct.remoteIdx[ip.Ref] = ip.Keys
	}
}

func (cn *calvinNode) deliverPush(m msgPush) {
	cn.mu.Lock()
	ct := cn.txns[m.TxnID]
	if ct == nil {
		// The push outran this node's copy of the batch: stash it.
		cn.early[m.TxnID] = append(cn.early[m.TxnID], m)
		cn.mu.Unlock()
		return
	}
	ct.absorb(m)
	ct.needed--
	resume := ct.needed <= 0 && ct.pushed
	cn.mu.Unlock()
	if resume {
		cn.readyQ.Send(ct) // resume: all remote inputs present
	}
}

// workerLoop executes lock-granted transactions. A transaction passes
// through the queue twice when it has remote participants: once to push
// local reads, then again when every remote push has arrived.
func (cn *calvinNode) workerLoop(_ int) {
	e := cn.e
	r := e.cfg.RT
	var set txn.RWSet
	for {
		ct := cn.readyQ.Recv().(*calvinTxn)
		if !ct.pushed {
			cn.pushReads(ct)
			cn.mu.Lock()
			ct.pushed = true
			wait := ct.needed > 0
			cn.mu.Unlock()
			if wait {
				continue // parked until deliverPush re-queues it
			}
		}
		set.Reset()
		ctx := &calvinCtx{cn: cn, ct: ct, set: &set}
		err := ct.req.Proc.Run(ctx)
		r.Compute(execCost(e.cfg, ctx))
		tid := storage.MakeTID(ct.batchNo, ct.seq)
		if err == nil {
			for _, en := range replication.OpEntries(&set, tid) {
				if e.cfg.MasterOf(int(en.Part)) == cn.id {
					e.applyCalvinEntry(cn.id, &en, ct.batchNo, tid)
				}
			}
		}
		cn.releaseLocks(ct)
		if ct.counts {
			if err == nil {
				e.st.committed.Inc()
				e.st.latency.Observe(time.Duration(int64(r.Now()) - ct.genAt))
			} else {
				e.st.userAborts.Inc()
			}
		}
		cn.mu.Lock()
		delete(cn.txns, ct.id)
		cn.left--
		finished := cn.left == 0
		no := cn.batchNo
		cn.mu.Unlock()
		if finished {
			e.net.Send(cn.id, e.cfg.tickerID(), transport.Control, msgBatchDone{Node: cn.id, No: no})
		}
	}
}

// pushReads broadcasts this node's read values to the other participants.
func (cn *calvinNode) pushReads(ct *calvinTxn) {
	e := cn.e
	participants := map[int]bool{}
	for _, a := range ct.req.Proc.Accesses() {
		participants[e.cfg.MasterOf(a.Part)] = true
	}
	if len(participants) <= 1 {
		return
	}
	var keys []remoteKey
	var rows [][]byte
	var idxPushes []idxPush
	pushRecord := func(t storage.TableID, part int, key storage.Key) {
		rec := cn.e.nodes[cn.id].db.Table(t).Get(part, key)
		if rec == nil {
			return
		}
		val, _, present := rec.ReadStable(nil)
		if !present {
			return
		}
		keys = append(keys, remoteKey{Table: t, Part: part, Key: key})
		rows = append(rows, append([]byte(nil), val...))
	}
	for _, a := range ct.local {
		if a.IndexVal != nil {
			// Index-prefetch access: resolve the lookup on this (owning)
			// node and ship the match list plus the matched rows, so
			// every participant runs the by-name resolution against the
			// same deterministic answer. An empty match list is pushed
			// too — remote participants must distinguish "no matches"
			// from "not resolved here".
			tbl := cn.e.nodes[cn.id].db.Table(a.Table)
			matches := tbl.IndexLookup(a.Part, a.Index, a.IndexVal, storage.IndexAllEpochs, nil)
			idxPushes = append(idxPushes, idxPush{
				Ref:  idxRef{Table: a.Table, Part: a.Part, Index: a.Index, Val: string(a.IndexVal)},
				Keys: matches,
			})
			for _, mk := range matches {
				pushRecord(a.Table, a.Part, mk)
			}
			continue
		}
		if a.LockOnly {
			continue
		}
		pushRecord(a.Table, a.Part, a.Key)
	}
	m := msgPush{TxnID: ct.id, From: cn.id, Keys: keys, Rows: rows, Idx: idxPushes}
	for p := range participants {
		if p != cn.id {
			e.net.Send(cn.id, p, transport.Data, m)
		}
	}
}

func (cn *calvinNode) releaseLocks(ct *calvinTxn) {
	names := make([][]lock.Name, len(cn.lms))
	for _, a := range ct.local {
		nm := lock.Name{Table: a.Table, Key: a.Key}
		shard := int((a.Key.Lo*2654435761 + a.Key.Hi + uint64(a.Table)) % uint64(len(cn.lms)))
		names[shard] = append(names[shard], nm)
	}
	for shard, ns := range names {
		if len(ns) > 0 {
			cn.lms[shard].Send(lmRelease{det: ct.det, names: ns})
		}
	}
}

func (e *Calvin) applyCalvinEntry(node int, en *replication.Entry, epoch, tid uint64) {
	n := e.nodes[node]
	tbl := n.db.Table(en.Table)
	part := tbl.Partition(int(en.Part))
	rec := part.GetOrCreate(en.Key, epoch)
	wasAbsent := storage.TIDAbsent(rec.TID())
	rec.Lock()
	if en.Absent && !en.IsOp() {
		var prior []byte
		if !wasAbsent && tbl.NumIndexes() > 0 {
			prior = append(prior, rec.ValueLocked()...)
		}
		if rec.DeleteLocked(epoch, tid) {
			part.MarkDirty(rec, epoch)
		}
		rec.UnlockWithTID(storage.TIDClean(tid) | storage.TIDAbsentBit)
		if !wasAbsent {
			tbl.NoteDeleted(int(en.Part), en.Key, prior, epoch)
		}
		return
	}
	var first bool
	if en.IsOp() {
		first, _ = rec.ApplyOpsLocked(tbl.Schema(), epoch, tid, en.Ops)
	} else {
		first = rec.WriteLocked(epoch, tid, en.Row)
	}
	if first {
		part.MarkDirty(rec, epoch)
	}
	var row []byte
	if wasAbsent && tbl.NumIndexes() > 0 {
		row = append(row, rec.ValueLocked()...)
	}
	rec.UnlockWithTID(storage.TIDClean(tid))
	if wasAbsent {
		tbl.NoteInserted(int(en.Part), en.Key, row, epoch)
	}
}

// calvinCtx reads local partitions directly and remote partitions from
// the pushed values; writes buffer as usual but only local ones apply.
type calvinCtx struct {
	cn     *calvinNode
	ct     *calvinTxn
	set    *txn.RWSet
	reads  int
	writes int
}

func (c *calvinCtx) counts() (int, int) { return c.reads, c.writes }

func (c *calvinCtx) Read(t storage.TableID, part int, key storage.Key) ([]byte, bool) {
	c.reads++
	e := c.cn.e
	tbl := e.nodes[c.cn.id].db.Table(t)
	if tbl.Replicated() || e.cfg.MasterOf(part) == c.cn.id {
		rec := tbl.Get(part, key)
		if rec == nil {
			return nil, false
		}
		val, _, present := rec.ReadStable(nil)
		return val, present
	}
	row, ok := c.ct.remote[remoteKey{Table: t, Part: part, Key: key}]
	return row, ok
}

func (c *calvinCtx) Write(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	c.writes++
	c.set.AddWrite(t, part, key, ops...)
}

func (c *calvinCtx) Insert(t storage.TableID, part int, key storage.Key, row []byte) {
	c.writes++
	c.set.AddInsert(t, part, key, row)
}

func (c *calvinCtx) Delete(t storage.TableID, part int, key storage.Key) {
	c.writes++
	c.set.AddDelete(t, part, key)
}

// LookupIndex resolves locally for partitions this node masters and from
// the pushed match lists otherwise (an undeclared remote lookup finds
// nothing and the procedure skips, like an unpushed remote read).
func (c *calvinCtx) LookupIndex(t storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key {
	c.reads++
	e := c.cn.e
	tbl := e.nodes[c.cn.id].db.Table(t)
	if tbl.Replicated() || e.cfg.MasterOf(part) == c.cn.id {
		return tbl.IndexLookup(part, idx, val, storage.IndexAllEpochs, dst)
	}
	return append(dst, c.ct.remoteIdx[idxRef{Table: t, Part: part, Index: idx, Val: string(val)}]...)
}
