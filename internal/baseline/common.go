// Package baseline implements the comparison systems of the paper's
// evaluation (§7.1.2): PB. OCC (primary/backup non-partitioned Silo),
// Dist. OCC (distributed OCC), Dist. S2PL (distributed strict 2PL with
// NO_WAIT), and Calvin (deterministic execution with Calvin-x lock
// managers) — each under synchronous replication or asynchronous
// replication + epoch-based group commit.
package baseline

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"star/internal/core"
	"star/internal/metrics"
	"star/internal/replication"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/workload"
)

// Config parameterises a baseline cluster.
type Config struct {
	RT             rt.Runtime
	Nodes          int
	WorkersPerNode int
	Workload       workload.Workload
	Net            simnet.Config

	// SyncRepl selects synchronous replication (with 2PC for the
	// distributed engines); otherwise asynchronous replication with an
	// epoch-based group commit every Epoch.
	SyncRepl bool
	// Epoch is the group-commit interval (paper default 10ms).
	Epoch time.Duration

	// LockManagers is Calvin-x's x (ignored by other engines).
	LockManagers int
	// BatchSize is Calvin's per-node sequencer batch (0 = auto).
	BatchSize int

	Cost       core.CostModel
	Seed       int64
	FlushEvery int
}

// installSpinWait mirrors core.installSpinWait for the baseline engines.
func installSpinWait(r rt.Runtime) {
	if _, isSim := r.(*rt.Sim); isSim {
		storage.SpinWait = func() { r.Sleep(200 * time.Nanosecond) }
	}
}

func (c Config) withDefaults() Config {
	if c.WorkersPerNode == 0 {
		c.WorkersPerNode = 4
	}
	if c.Epoch == 0 {
		c.Epoch = 10 * time.Millisecond
	}
	if c.Cost == (core.CostModel{}) {
		c.Cost = core.DefaultCosts()
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 16
	}
	if c.LockManagers == 0 {
		c.LockManagers = 2
	}
	if c.Net.Nodes == 0 {
		c.Net = simnet.Config{
			Nodes:     c.Nodes + 1, // +1 endpoint for the sequencer/ticker
			Latency:   50 * time.Microsecond,
			Jitter:    10 * time.Microsecond,
			Bandwidth: 600e6,
			Seed:      c.Seed,
		}
	}
	return c
}

// NumPartitions mirrors §7.1: partitions == total workers.
func (c Config) NumPartitions() int { return c.Nodes * c.WorkersPerNode }

// MasterOf maps partitions to nodes block-wise.
func (c Config) MasterOf(p int) int { return p / c.WorkersPerNode }

// BackupOf is the partition's replica node (replication factor 2,
// primary and secondary on different nodes, §7.1.3).
func (c Config) BackupOf(p int) int { return (c.MasterOf(p) + 1) % c.Nodes }

// HoldsMask returns the partitions node materialises (masters + backups).
func (c Config) HoldsMask(node int) []bool {
	mask := make([]bool, c.NumPartitions())
	for p := range mask {
		mask[p] = c.MasterOf(p) == node || c.BackupOf(p) == node
	}
	return mask
}

func (c Config) tickerID() int { return c.Nodes }

// stats is the shared metrics bundle.
type stats struct {
	committed  metrics.Counter
	aborted    metrics.Counter
	userAborts metrics.Counter
	latency    *metrics.Hist
	frozen     atomic.Bool
}

// pause sleeps briefly when the engine is frozen, returning true if the
// caller should skip generating work (tests quiesce engines this way).
func (s *stats) pause(r rt.Runtime) bool {
	if s.frozen.Load() {
		r.Sleep(time.Millisecond)
		return true
	}
	return false
}

func (s *stats) snapshot(name string, r rt.Runtime, net transport.Transport) metrics.Stats {
	return metrics.Stats{
		Engine:           name,
		Duration:         r.Now(),
		Committed:        s.committed.Load(),
		Aborted:          s.aborted.Load() + s.userAborts.Load(),
		Latency:          s.latency,
		ReplicationBytes: net.Bytes(transport.Replication),
		ReplicationMsgs:  net.Messages(transport.Replication),
		NetworkBytes:     net.TotalBytes(),
		Extra:            map[string]float64{"user_aborts": float64(s.userAborts.Load())},
	}
}

// bnode is the per-node state shared by the distributed baselines.
type bnode struct {
	id      int
	db      *storage.DB
	tracker *replication.Tracker
	net     transport.Transport
	// onDrainMsg handles engine-specific messages that arrive while the
	// node is blocked in a group-commit drain.
	onDrainMsg func(any)

	// mu guards pendingLat on the real runtime.
	mu         sync.Mutex
	pendingLat []int64
}

func (n *bnode) addPending(genAt int64) {
	n.mu.Lock()
	n.pendingLat = append(n.pendingLat, genAt)
	n.mu.Unlock()
}

func (n *bnode) release(now time.Duration, lat *metrics.Hist) {
	n.mu.Lock()
	pend := n.pendingLat
	n.pendingLat = nil
	n.mu.Unlock()
	for _, g := range pend {
		lat.Observe(time.Duration(int64(now) - g))
	}
}

// ---- common wire messages ----

type rpcKind uint8

const (
	rpcRead rpcKind = iota
	rpcLockRead
	rpcLockValidate
	rpcCommitWrites
	rpcAbort
	rpcPrepare
	rpcIndexLookup
)

// rpcReq is a generic engine RPC. Payload is the wire-encoded,
// kind-specific payload (see payloads.go) — no in-process pointers, so
// the message set is wire-encodable; Size derives from the actual
// encoded length.
type rpcReq struct {
	Kind    rpcKind
	From    int // node
	Worker  int
	Seq     uint64
	Payload []byte
}

func (m *rpcReq) Size() int { return 16 + len(m.Payload) }

type rpcResp struct {
	Worker  int
	Seq     uint64
	OK      bool
	Payload []byte
}

func (m *rpcResp) Size() int { return 16 + len(m.Payload) }

// mustDecode unwraps an RPC payload decode. The baselines run their
// RPCs in-process, so a malformed payload is a programming error, not
// input: fail loudly.
func mustDecode[T any](v T, err error) T {
	if err != nil {
		panic("baseline: decode rpc payload: " + err.Error())
	}
	return v
}

// tickMsgs drive the epoch-based group commit for async variants.
type msgTickDone struct {
	Node  int
	Epoch uint64
	Sent  []int64
}

func (m msgTickDone) Size() int { return 24 + 8*len(m.Sent) }

type msgTickDrain struct {
	Epoch    uint64
	Expected []int64
}

func (m msgTickDrain) Size() int { return 16 + 8*len(m.Expected) }

type msgTickAck struct {
	Node  int
	Epoch uint64
}

func (msgTickAck) Size() int { return 16 }

type msgTick struct{ Epoch uint64 }

func (msgTick) Size() int { return 16 }

// epochTicker runs the group-commit protocol for the async baselines: a
// fence every cfg.Epoch (drain replication streams, then release
// results), mirroring Silo's epoch design as the paper's baselines do.
type epochTicker struct {
	cfg   Config
	net   transport.Transport
	nodes []*bnode
	lat   *metrics.Hist
	// epochNow is read by workers to stamp TIDs.
	mu    sync.Mutex
	epoch uint64
}

func newEpochTicker(cfg Config, net transport.Transport, nodes []*bnode, lat *metrics.Hist) *epochTicker {
	return &epochTicker{cfg: cfg, net: net, nodes: nodes, lat: lat, epoch: 2}
}

func (t *epochTicker) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

func (t *epochTicker) bump() uint64 {
	t.mu.Lock()
	t.epoch++
	e := t.epoch
	t.mu.Unlock()
	return e
}

// loop drives ticks from the dedicated ticker endpoint. The node routers
// answer the fence messages (see nodeFence).
func (t *epochTicker) loop() {
	r := t.cfg.RT
	in := t.net.Inbox(t.cfg.tickerID())
	for {
		r.Sleep(t.cfg.Epoch)
		epoch := t.Epoch()
		for i := range t.nodes {
			t.net.Send(t.cfg.tickerID(), i, transport.Control, msgTick{Epoch: epoch})
		}
		// Gather sent vectors.
		done := map[int]msgTickDone{}
		deadline := r.Now() + 10*t.cfg.Epoch
		for len(done) < len(t.nodes) && r.Now() < deadline {
			m, ok := in.RecvTimeout(deadline - r.Now())
			if !ok {
				break
			}
			if d, isDone := m.(msgTickDone); isDone && d.Epoch == epoch {
				done[d.Node] = d
			}
		}
		// Drain phase.
		for i := range t.nodes {
			expected := make([]int64, len(t.nodes))
			for src, d := range done {
				expected[src] = d.Sent[i]
			}
			t.net.Send(t.cfg.tickerID(), i, transport.Control, msgTickDrain{Epoch: epoch, Expected: expected})
		}
		acks := 0
		deadline = r.Now() + 10*t.cfg.Epoch
		for acks < len(t.nodes) && r.Now() < deadline {
			m, ok := in.RecvTimeout(deadline - r.Now())
			if !ok {
				break
			}
			if a, isAck := m.(msgTickAck); isAck && a.Epoch == epoch {
				acks++
			}
		}
		t.bump()
	}
}

// rpcPort is a worker's private response channel registry entry.
type rpcPort struct {
	resp rt.Chan
	seq  uint64
}

func newRPCPort(r rt.Runtime) *rpcPort { return &rpcPort{resp: r.NewChan(16)} }

// call performs a blocking RPC from worker w on node src to node dst.
// Handling happens in the destination's router process.
func (p *rpcPort) call(net transport.Transport, src, dst, worker int, kind rpcKind, payload []byte) *rpcResp {
	p.seq++
	net.Send(src, dst, transport.Data, &rpcReq{
		Kind: kind, From: src, Worker: worker, Seq: p.seq, Payload: payload,
	})
	for {
		v, ok := p.resp.RecvTimeout(time.Second)
		if !ok {
			return &rpcResp{OK: false}
		}
		resp := v.(*rpcResp)
		if resp.Seq == p.seq {
			return resp
		}
	}
}

// workerSeed derives a deterministic per-worker seed.
func workerSeed(base int64, node, worker int) int64 {
	return base*1_000_003 + int64(node)*257 + int64(worker) + 1
}

func newRNG(base int64, node, worker int) *rand.Rand {
	return rand.New(rand.NewSource(workerSeed(base, node, worker) ^ 0x5eed))
}

func procName(kind string, node, worker int) string {
	return fmt.Sprintf("%s-%d-%d", kind, node, worker)
}

var _ = txn.ErrConflict
