package baseline

import (
	"fmt"

	"star/internal/lock"
	"star/internal/replication"
	"star/internal/storage"
	"star/internal/txn"
	"star/internal/wire"
)

// RPC payload codecs: rpcReq/rpcResp carry encoded bytes rather than
// in-process pointers, so the baseline message set is wire-encodable
// like the STAR engine's. Encoding happens at the call site, decoding
// in the serving router; the modelled Size of an RPC is derived from
// the actual encoded payload length.

func appendLockNames(b []byte, names []lock.Name) []byte {
	b = wire.AppendUvarint(b, uint64(len(names)))
	for _, nm := range names {
		b = append(b, byte(nm.Table))
		b = wire.AppendKey(b, nm.Key)
	}
	return b
}

func decodeLockNames(b []byte) ([]lock.Name, []byte, error) {
	n, b, err := wire.Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b))/17+1 {
		return nil, nil, fmt.Errorf("%w: %d lock names", wire.ErrCorrupt, n)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]lock.Name, n)
	for i := range out {
		if len(b) < 1 {
			return nil, nil, wire.ErrTruncated
		}
		out[i].Table = storage.TableID(b[0])
		if out[i].Key, b, err = wire.Key(b[1:]); err != nil {
			return nil, nil, err
		}
	}
	return out, b, nil
}

// ---- readPayload / readReply ----

func (p *readPayload) encode() []byte {
	b := make([]byte, 0, 32)
	b = append(b, byte(p.Table))
	b = wire.AppendVarint(b, int64(p.Part))
	b = wire.AppendKey(b, p.Key)
	b = wire.AppendBool(b, p.Write)
	return wire.AppendVarint(b, int64(p.Owner))
}

func decodeReadPayload(b []byte) (*readPayload, error) {
	p := &readPayload{}
	if len(b) < 1 {
		return nil, wire.ErrTruncated
	}
	p.Table = storage.TableID(b[0])
	x, b, err := wire.Varint(b[1:])
	if err != nil {
		return nil, err
	}
	p.Part = int(x)
	if p.Key, b, err = wire.Key(b); err != nil {
		return nil, err
	}
	if p.Write, b, err = wire.Bool(b); err != nil {
		return nil, err
	}
	if x, _, err = wire.Varint(b); err != nil {
		return nil, err
	}
	p.Owner = int(x)
	return p, nil
}

func (r *readReply) encode() []byte {
	b := make([]byte, 0, 17+len(r.Row))
	b = wire.AppendBytes(b, r.Row)
	b = wire.AppendU64(b, r.TID)
	return wire.AppendBool(b, r.Absent)
}

func decodeReadReply(b []byte) (*readReply, error) {
	r := &readReply{}
	var err error
	if r.Row, b, err = wire.Bytes(b); err != nil {
		return nil, err
	}
	if r.TID, b, err = wire.U64(b); err != nil {
		return nil, err
	}
	if r.Absent, _, err = wire.Bool(b); err != nil {
		return nil, err
	}
	return r, nil
}

// ---- lvPayload / lvReply (Dist. OCC lock+validate) ----

func (p *lvPayload) encode() []byte {
	b := make([]byte, 0, 16+25*(len(p.Reads)+len(p.Writes)))
	b = wire.AppendUvarint(b, uint64(len(p.Reads)))
	for i := range p.Reads {
		rd := &p.Reads[i]
		b = append(b, byte(rd.Table))
		b = wire.AppendVarint(b, int64(rd.Part))
		b = wire.AppendKey(b, rd.Key)
		b = wire.AppendU64(b, rd.TID)
	}
	b = appendLockNames(b, p.Writes)
	return wire.AppendI32s(b, p.Parts)
}

func decodeLVPayload(b []byte) (*lvPayload, error) {
	p := &lvPayload{}
	n, b, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b))/26+1 {
		return nil, fmt.Errorf("%w: %d validated reads", wire.ErrCorrupt, n)
	}
	p.Reads = make([]txn.ReadEntry, n)
	for i := range p.Reads {
		rd := &p.Reads[i]
		if len(b) < 1 {
			return nil, wire.ErrTruncated
		}
		rd.Table = storage.TableID(b[0])
		var x int64
		if x, b, err = wire.Varint(b[1:]); err != nil {
			return nil, err
		}
		rd.Part = int(x)
		if rd.Key, b, err = wire.Key(b); err != nil {
			return nil, err
		}
		if rd.TID, b, err = wire.U64(b); err != nil {
			return nil, err
		}
	}
	if p.Writes, b, err = decodeLockNames(b); err != nil {
		return nil, err
	}
	if p.Parts, _, err = wire.I32s(b); err != nil {
		return nil, err
	}
	return p, nil
}

func (r *lvReply) encode() []byte {
	return wire.AppendU64(make([]byte, 0, 8), r.MaxWriteTID)
}

func decodeLVReply(b []byte) (*lvReply, error) {
	tid, _, err := wire.U64(b)
	if err != nil {
		return nil, err
	}
	return &lvReply{MaxWriteTID: tid}, nil
}

// ---- commitPayload ----

func (p *commitPayload) encode() []byte {
	batch := replication.Batch{Entries: p.Entries}
	b := make([]byte, 0, 32+wire.BatchLen(&batch))
	b = wire.AppendU64(b, p.TID)
	b = wire.AppendUvarint(b, uint64(len(p.Entries)))
	for i := range p.Entries {
		b = wire.AppendEntry(b, &p.Entries[i])
	}
	b = wire.AppendVarint(b, int64(p.Owner))
	b = appendLockNames(b, p.Release)
	return wire.AppendBool(b, p.Sync)
}

func decodeCommitPayload(b []byte) (*commitPayload, error) {
	p := &commitPayload{}
	var err error
	if p.TID, b, err = wire.U64(b); err != nil {
		return nil, err
	}
	n, b, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b))/27+1 {
		return nil, fmt.Errorf("%w: %d commit entries", wire.ErrCorrupt, n)
	}
	if n > 0 {
		p.Entries = make([]replication.Entry, n)
		for i := range p.Entries {
			if p.Entries[i], b, err = wire.DecodeEntry(b); err != nil {
				return nil, err
			}
		}
	}
	var x int64
	if x, b, err = wire.Varint(b); err != nil {
		return nil, err
	}
	p.Owner = int(x)
	if p.Release, b, err = decodeLockNames(b); err != nil {
		return nil, err
	}
	if p.Sync, _, err = wire.Bool(b); err != nil {
		return nil, err
	}
	return p, nil
}

// ---- abortPayload ----

func (p *abortPayload) encode() []byte {
	b := make([]byte, 0, 16+17*(len(p.Writes)+len(p.Release)))
	b = appendLockNames(b, p.Writes)
	b = wire.AppendVarint(b, int64(p.Owner))
	b = appendLockNames(b, p.Release)
	return wire.AppendI32s(b, p.Parts)
}

func decodeAbortPayload(b []byte) (*abortPayload, error) {
	p := &abortPayload{}
	var err error
	if p.Writes, b, err = decodeLockNames(b); err != nil {
		return nil, err
	}
	var x int64
	if x, b, err = wire.Varint(b); err != nil {
		return nil, err
	}
	p.Owner = int(x)
	if p.Release, b, err = decodeLockNames(b); err != nil {
		return nil, err
	}
	if p.Parts, _, err = wire.I32s(b); err != nil {
		return nil, err
	}
	return p, nil
}

// ---- replication batch (PB. OCC synchronous replication) ----

func encodeBatchPayload(batch *replication.Batch) []byte {
	return wire.AppendBatch(make([]byte, 0, 16+wire.BatchLen(batch)), batch)
}

// ---- idxPayload / idxReply (secondary-index lookup RPC) ----

func (p *idxPayload) encode() []byte {
	b := make([]byte, 0, 16+len(p.Val))
	b = append(b, byte(p.Table))
	b = wire.AppendVarint(b, int64(p.Part))
	b = wire.AppendVarint(b, int64(p.Index))
	return wire.AppendBytes(b, p.Val)
}

func decodeIdxPayload(b []byte) (*idxPayload, error) {
	p := &idxPayload{}
	if len(b) < 1 {
		return nil, wire.ErrTruncated
	}
	p.Table = storage.TableID(b[0])
	x, b, err := wire.Varint(b[1:])
	if err != nil {
		return nil, err
	}
	p.Part = int(x)
	if x, b, err = wire.Varint(b); err != nil {
		return nil, err
	}
	p.Index = int(x)
	if p.Val, _, err = wire.Bytes(b); err != nil {
		return nil, err
	}
	return p, nil
}

func (r *idxReply) encode() []byte {
	b := make([]byte, 0, 8+17*len(r.Keys))
	b = wire.AppendUvarint(b, uint64(len(r.Keys)))
	for _, k := range r.Keys {
		b = wire.AppendKey(b, k)
	}
	return b
}

func decodeIdxReply(b []byte) (*idxReply, error) {
	n, b, err := wire.Uvarint(b)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b))/16+1 {
		return nil, fmt.Errorf("%w: %d index matches", wire.ErrCorrupt, n)
	}
	r := &idxReply{}
	if n > 0 {
		r.Keys = make([]storage.Key, n)
		for i := range r.Keys {
			if r.Keys[i], b, err = wire.Key(b); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}
