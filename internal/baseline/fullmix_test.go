package baseline

import (
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/storage"
	"star/internal/workload/tpcc"
)

// fullMixWL is the standard-weighted four-transaction TPC-C mix with a
// generous Delivery/Stock-Level share so short runs exercise them.
func fullMixWL(nparts int) *tpcc.Workload {
	cfg := tpcc.Config{
		Warehouses:           nparts,
		Districts:            2,
		CustomersPerDistrict: 60,
		Items:                300,
		DeliveryPct:          10,
		StockLevelPct:        10,
		CrossPctStockLevel:   30,
	}
	return tpcc.New(cfg)
}

// deliveredSomething reports whether any district's delivery cursor
// advanced past its initial value on db (i.e. a Delivery batch ran).
func deliveredSomething(t *testing.T, wl *tpcc.Workload, db *storage.DB, nparts int) bool {
	t.Helper()
	sch := wl.BuildDB(nparts, make([]bool, nparts)).Table(tpcc.TDistrict).Schema()
	for wid := 0; wid < nparts; wid++ {
		for did := 0; did < 2; did++ {
			rec := db.Table(tpcc.TDistrict).Get(wid, tpcc.DKey(wid, did))
			if rec == nil {
				continue
			}
			drow, _, present := rec.ReadStable(nil)
			if present && sch.GetUint64(drow, tpcc.DNextDelOID) > 1 {
				return true
			}
		}
	}
	return false
}

// TestPBOCCFullMix runs the standard mix on the primary/backup baseline
// and checks that Deliveries execute (cursors advance) and the backup
// stays byte-identical.
func TestPBOCCFullMix(t *testing.T) {
	s := rt.NewSim()
	wl := fullMixWL(4)
	cfg := baseCfg(s, 2, 2, wl)
	cfg.Workload = wl
	e := NewPBOCC(cfg)
	s.Run(50 * time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	if !deliveredSomething(t, wl, e.Primary(), 4) {
		t.Fatal("no Delivery batch ever advanced a district cursor")
	}
	for p := 0; p < 4; p++ {
		checkPair(t, e.Primary(), e.Backup(), p, "pbocc-fullmix")
	}
	s.Stop()
}

// TestDistFullMix runs the standard mix on both distributed baselines:
// Delivery's district write locks serialise the batch against NewOrder,
// Stock-Level's remote stock reads cross the RPC path, and
// primary/backup copies must converge.
func TestDistFullMix(t *testing.T) {
	for _, proto := range []Protocol{DistOCC, DistS2PL} {
		s := rt.NewSim()
		wl := fullMixWL(4)
		cfg := baseCfg(s, 2, 2, wl)
		cfg.Workload = wl
		e := NewDist(cfg, proto)
		s.Run(50 * time.Millisecond)
		if e.Stats().Committed == 0 {
			t.Fatalf("%v: no commits", proto)
		}
		e.Freeze()
		s.Run(s.Now() + 25*time.Millisecond)
		if !deliveredSomething(t, wl, e.NodeDB(0), 4) && !deliveredSomething(t, wl, e.NodeDB(1), 4) {
			t.Fatalf("%v: no Delivery batch ever ran", proto)
		}
		distConsistency(t, e)
		s.Stop()
	}
}

// TestCalvinFullMix runs the standard mix under deterministic
// execution: Delivery's declared district write locks order it within
// the batch, and the run must commit work from every class.
func TestCalvinFullMix(t *testing.T) {
	s := rt.NewSim()
	wl := fullMixWL(4)
	cfg := baseCfg(s, 2, 2, wl)
	cfg.Workload = wl
	cfg.BatchSize = 50
	e := NewCalvin(cfg)
	s.Run(60 * time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	if !deliveredSomething(t, wl, e.NodeDB(0), 4) && !deliveredSomething(t, wl, e.NodeDB(1), 4) {
		t.Fatal("no Delivery batch ever ran under Calvin")
	}
	s.Stop()
}
