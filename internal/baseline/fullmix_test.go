package baseline

import (
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/storage"
	"star/internal/workload/tpcc"
)

// fullMixWL is the standard-weighted four-transaction TPC-C mix with a
// generous Delivery/Stock-Level share so short runs exercise them.
func fullMixWL(nparts int) *tpcc.Workload {
	cfg := tpcc.Config{
		Warehouses:           nparts,
		Districts:            2,
		CustomersPerDistrict: 60,
		Items:                300,
		DeliveryPct:          10,
		StockLevelPct:        10,
		CrossPctStockLevel:   30,
		TrimPct:              6, // deletes in the mix on every engine
		TrimRetain:           2,
	}
	return tpcc.New(cfg)
}

// checkDeleteInvariants verifies the delete-side TPC-C invariants on a
// frozen db: every delivered order's NEW-ORDER row is gone and every
// undelivered one is present (a cursor write surviving an abort, or a
// lost or over-eager delete, breaks one side), and the trim cursor is
// exact — orders below d_trim_o_id are reclaimed, orders from there up
// to d_next_o_id still exist.
func checkDeleteInvariants(t *testing.T, wl *tpcc.Workload, db *storage.DB, nparts int, tag string) {
	t.Helper()
	sch := wl.BuildDB(nparts, make([]bool, nparts)).Table(tpcc.TDistrict).Schema()
	present := func(tb storage.TableID, wid int, key storage.Key) bool {
		rec := db.Table(tb).Get(wid, key)
		if rec == nil {
			return false
		}
		_, _, p := rec.ReadStable(nil)
		return p
	}
	for wid := 0; wid < nparts; wid++ {
		if db.Table(tpcc.TDistrict).Partition(wid) == nil {
			continue // this node does not hold the warehouse
		}
		for did := 0; did < wl.Config().Districts; did++ {
			rec := db.Table(tpcc.TDistrict).Get(wid, tpcc.DKey(wid, did))
			if rec == nil {
				continue
			}
			drow, _, ok := rec.ReadStable(nil)
			if !ok {
				continue
			}
			next := sch.GetUint64(drow, tpcc.DNextOID)
			del := sch.GetUint64(drow, tpcc.DNextDelOID)
			trim := sch.GetUint64(drow, tpcc.DTrimOID)
			for oid := uint64(1); oid < next; oid++ {
				no := present(tpcc.TNewOrder, wid, tpcc.OKey(wid, did, int(oid)))
				if oid < del && no {
					t.Fatalf("%s w%dd%d oid %d: NEW-ORDER row survived its delivery (cursor=%d)", tag, wid, did, oid, del)
				}
				if oid >= del && !no {
					t.Fatalf("%s w%dd%d oid %d: undelivered NEW-ORDER row missing (cursor=%d)", tag, wid, did, oid, del)
				}
				ord := present(tpcc.TOrder, wid, tpcc.OKey(wid, did, int(oid)))
				if oid < trim && ord {
					t.Fatalf("%s w%dd%d oid %d: ORDER row survived the trimmer (trim cursor=%d)", tag, wid, did, oid, trim)
				}
				if oid >= trim && !ord {
					t.Fatalf("%s w%dd%d oid %d: live ORDER row missing (trim cursor=%d)", tag, wid, did, oid, trim)
				}
			}
		}
	}
}

// deliveredSomething reports whether any district's delivery cursor
// advanced past its initial value on db (i.e. a Delivery batch ran).
func deliveredSomething(t *testing.T, wl *tpcc.Workload, db *storage.DB, nparts int) bool {
	t.Helper()
	sch := wl.BuildDB(nparts, make([]bool, nparts)).Table(tpcc.TDistrict).Schema()
	for wid := 0; wid < nparts; wid++ {
		for did := 0; did < 2; did++ {
			rec := db.Table(tpcc.TDistrict).Get(wid, tpcc.DKey(wid, did))
			if rec == nil {
				continue
			}
			drow, _, present := rec.ReadStable(nil)
			if present && sch.GetUint64(drow, tpcc.DNextDelOID) > 1 {
				return true
			}
		}
	}
	return false
}

// TestPBOCCFullMix runs the standard mix on the primary/backup baseline
// and checks that Deliveries execute (cursors advance) and the backup
// stays byte-identical.
func TestPBOCCFullMix(t *testing.T) {
	s := rt.NewSim()
	wl := fullMixWL(4)
	cfg := baseCfg(s, 2, 2, wl)
	cfg.Workload = wl
	e := NewPBOCC(cfg)
	s.Run(50 * time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	if !deliveredSomething(t, wl, e.Primary(), 4) {
		t.Fatal("no Delivery batch ever advanced a district cursor")
	}
	checkDeleteInvariants(t, wl, e.Primary(), 4, "pbocc")
	for p := 0; p < 4; p++ {
		checkPair(t, e.Primary(), e.Backup(), p, "pbocc-fullmix")
	}
	s.Stop()
}

// TestDistFullMix runs the standard mix on both distributed baselines:
// Delivery's district write locks serialise the batch against NewOrder,
// Stock-Level's remote stock reads cross the RPC path, and
// primary/backup copies must converge.
func TestDistFullMix(t *testing.T) {
	for _, proto := range []Protocol{DistOCC, DistS2PL} {
		s := rt.NewSim()
		wl := fullMixWL(4)
		cfg := baseCfg(s, 2, 2, wl)
		cfg.Workload = wl
		e := NewDist(cfg, proto)
		s.Run(50 * time.Millisecond)
		if e.Stats().Committed == 0 {
			t.Fatalf("%v: no commits", proto)
		}
		e.Freeze()
		s.Run(s.Now() + 25*time.Millisecond)
		if !deliveredSomething(t, wl, e.NodeDB(0), 4) && !deliveredSomething(t, wl, e.NodeDB(1), 4) {
			t.Fatalf("%v: no Delivery batch ever ran", proto)
		}
		for n := 0; n < 2; n++ {
			checkDeleteInvariants(t, wl, e.NodeDB(n), 4, proto.String())
		}
		distConsistency(t, e)
		s.Stop()
	}
}

// TestCalvinFullMix runs the standard mix under deterministic
// execution: Delivery's declared district write locks order it within
// the batch, and the run must commit work from every class.
func TestCalvinFullMix(t *testing.T) {
	s := rt.NewSim()
	wl := fullMixWL(4)
	cfg := baseCfg(s, 2, 2, wl)
	cfg.Workload = wl
	cfg.BatchSize = 50
	e := NewCalvin(cfg)
	s.Run(60 * time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	if !deliveredSomething(t, wl, e.NodeDB(0), 4) && !deliveredSomething(t, wl, e.NodeDB(1), 4) {
		t.Fatal("no Delivery batch ever ran under Calvin")
	}
	for n := 0; n < 2; n++ {
		checkDeleteInvariants(t, wl, e.NodeDB(n), 4, "calvin")
	}
	s.Stop()
}
