package baseline

import (
	"fmt"
	"time"

	"star/internal/metrics"
	"star/internal/occ"
	"star/internal/replication"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/wire"
	"star/internal/workload"
)

// PBOCC is the primary/backup non-partitioned baseline (§7.1.2): a
// variant of Silo's OCC where one primary node runs every transaction
// and replicates writes to one backup. Exactly two nodes are used, as in
// the paper. With SyncRepl the primary holds write locks for the
// replication round trip; otherwise replication is asynchronous with an
// epoch-based group commit.
type PBOCC struct {
	cfg     Config
	net     transport.Transport
	primary *bnode
	backup  *bnode
	ticker  *epochTicker
	st      stats
}

// NewPBOCC builds and starts the primary/backup cluster.
func NewPBOCC(cfg Config) *PBOCC {
	cfg.Nodes = 2 // fixed: primary + backup (§7.1.2)
	cfg = cfg.withDefaults()
	e := &PBOCC{cfg: cfg, st: stats{latency: &metrics.Hist{}}}
	installSpinWait(cfg.RT)
	e.net = simnet.New(cfg.RT, cfg.Net)
	for i := 0; i < 2; i++ {
		db := cfg.Workload.BuildDB(cfg.NumPartitions(), nil) // both hold everything
		cfg.Workload.Load(db)
		db.CommitEpoch()
		n := &bnode{id: i, db: db, tracker: replication.NewTracker(2), net: e.net}
		if i == 0 {
			e.primary = n
		} else {
			e.backup = n
		}
	}
	e.ticker = newEpochTicker(cfg, e.net, []*bnode{e.primary, e.backup}, e.st.latency)
	e.start()
	return e
}

// Stats snapshots the run.
func (e *PBOCC) Stats() metrics.Stats {
	name := "PB. OCC"
	if e.cfg.SyncRepl {
		name = "PB. OCC (sync)"
	}
	return e.st.snapshot(name, e.cfg.RT, e.net)
}

// Freeze pauses workload generation so replication can settle (tests).
func (e *PBOCC) Freeze() { e.st.frozen.Store(true) }

// Backup exposes the backup database for consistency checks.
func (e *PBOCC) Backup() *storage.DB { return e.backup.db }

// Primary exposes the primary database.
func (e *PBOCC) Primary() *storage.DB { return e.primary.db }

func (e *PBOCC) start() {
	r := e.cfg.RT
	ports := make([]*rpcPort, e.cfg.WorkersPerNode)
	for i := range ports {
		ports[i] = newRPCPort(r)
	}
	// Primary router: fence participation + sync-replication acks.
	e.primary.onDrainMsg = func(m any) {
		if resp, ok := m.(*rpcResp); ok {
			ports[resp.Worker].resp.Send(resp)
		}
	}
	r.Go("pbocc-primary-router", func() {
		in := e.net.Inbox(0)
		for {
			switch m := in.Recv().(type) {
			case *rpcResp:
				ports[m.Worker].resp.Send(m)
			case msgTick:
				e.net.Send(0, e.cfg.tickerID(), transport.Control, msgTickDone{
					Node: 0, Epoch: m.Epoch, Sent: e.primary.tracker.SentVector(),
				})
			case msgTickDrain:
				drainNode(e.cfg, e.primary, in, m, e.st.latency)
			}
		}
	})
	// Parallel replay on the backup (SiloR-style): value entries commute
	// under the Thomas write rule, so batches fan out round-robin.
	applierChs := make([]rt.Chan, e.cfg.WorkersPerNode)
	for a := range applierChs {
		ch := r.NewChan(1 << 14)
		applierChs[a] = ch
		r.Go(fmt.Sprintf("pbocc-applier-%d", a), func() {
			for {
				applyBatch(e.cfg, e.backup, ch.Recv().(*replication.Batch))
			}
		})
	}
	nextApplier := 0
	// Backup router: apply replication, ack syncs, answer fences.
	r.Go("pbocc-backup-router", func() {
		in := e.net.Inbox(1)
		n := e.backup
		for {
			switch m := in.Recv().(type) {
			case *replication.Batch:
				r.Compute(e.cfg.Cost.MsgHandling)
				applierChs[nextApplier].Send(m)
				nextApplier = (nextApplier + 1) % len(applierChs)
			case *rpcReq: // sync replication batch
				r.Compute(e.cfg.Cost.MsgHandling)
				b := mustDecode(wire.DecodeBatch(m.Payload))
				applyBatch(e.cfg, n, b)
				e.net.Send(1, m.From, transport.Data, &rpcResp{Worker: m.Worker, Seq: m.Seq, OK: true})
			case msgTick:
				e.net.Send(1, e.cfg.tickerID(), transport.Control, msgTickDone{
					Node: 1, Epoch: m.Epoch, Sent: n.tracker.SentVector(),
				})
			case msgTickDrain:
				drainNode(e.cfg, n, in, m, e.st.latency)
			}
		}
	})
	for wi := 0; wi < e.cfg.WorkersPerNode; wi++ {
		wi := wi
		r.Go(fmt.Sprintf("pbocc-worker-%d", wi), func() { e.workerLoop(wi, ports[wi]) })
	}
	if !e.cfg.SyncRepl {
		r.Go("pbocc-ticker", e.ticker.loop)
	}
}

func (e *PBOCC) workerLoop(wi int, port *rpcPort) {
	r := e.cfg.RT
	gen := e.cfg.Workload.NewGen(workerSeed(e.cfg.Seed, 0, wi))
	rng := newRNG(e.cfg.Seed, 0, wi)
	var tid occ.TIDGen
	var set txn.RWSet
	nparts := e.cfg.NumPartitions()
	for {
		if e.st.pause(r) {
			continue
		}
		home := rng.Intn(nparts)
		req := txn.NewRequest(gen.Mixed(home), int64(r.Now()))
		for {
			set.Reset()
			ctx := &dbCtx{db: e.primary.db, set: &set}
			err := req.Proc.Run(ctx)
			r.Compute(execCost(e.cfg, ctx))
			if err == txn.ErrUserAbort {
				e.st.userAborts.Inc()
				break
			}
			if err != nil || ctx.failed {
				e.st.aborted.Inc()
				continue
			}
			epoch := e.ticker.Epoch()
			if e.cfg.SyncRepl {
				if !occ.LockAndValidate(e.primary.db, &set, epoch) {
					e.st.aborted.Inc()
					continue
				}
				t := tid.Next(epoch, set.MaxReadTID())
				occ.ApplyWrites(e.primary.db, &set, epoch, t, true)
				// Hold write locks across the replication round trip (§6.1).
				entries := replication.ValueEntries(&set, t)
				e.primary.tracker.AddSent(1, int64(len(entries)))
				resp := port.call(e.net, 0, 1, wi, rpcCommitWrites,
					encodeBatchPayload(&replication.Batch{From: 0, Entries: entries}))
				occ.ReleaseLocks(&set)
				if !resp.OK {
					e.st.aborted.Inc()
					continue
				}
				e.st.committed.Inc()
				e.st.latency.Observe(time.Duration(int64(r.Now()) - req.GenAt))
			} else {
				t, ok := occ.Commit(e.primary.db, &set, epoch, &tid, true)
				if !ok {
					e.st.aborted.Inc()
					continue
				}
				ents := replication.ValueEntries(&set, t)
				e.primary.tracker.AddSent(1, int64(len(ents)))
				e.net.Send(0, 1, transport.Replication, &replication.Batch{From: 0, Entries: ents})
				e.st.committed.Inc()
				e.primary.addPending(req.GenAt)
			}
			break
		}
	}
}

// ---- shared helpers used by all baselines ----

// dbCtx is the local-database transaction context (used where every
// record is local: PB. OCC's primary and parts of other engines).
type dbCtx struct {
	db     *storage.DB
	set    *txn.RWSet
	reads  int
	writes int
	failed bool
}

func (c *dbCtx) Read(t storage.TableID, part int, key storage.Key) ([]byte, bool) {
	c.reads++
	tbl := c.db.Table(t)
	rec := tbl.Get(part, key)
	if rec == nil {
		return nil, false // row missing: skippable, not an abort
	}
	val, tidv, present := rec.ReadStable(nil)
	if !present {
		return nil, false // tombstone: same as missing
	}
	if !tbl.Replicated() {
		c.set.AddRead(t, part, key, rec, tidv)
	}
	return val, true
}

func (c *dbCtx) Write(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	c.writes++
	c.set.AddWrite(t, part, key, ops...)
}

func (c *dbCtx) Insert(t storage.TableID, part int, key storage.Key, row []byte) {
	c.writes++
	c.set.AddInsert(t, part, key, row)
}

func (c *dbCtx) Delete(t storage.TableID, part int, key storage.Key) {
	c.writes++
	c.set.AddDelete(t, part, key)
}

// LookupIndex resolves a secondary-index lookup on the local database
// (PB. OCC's primary holds everything).
func (c *dbCtx) LookupIndex(t storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key {
	c.reads++
	return c.db.Table(t).IndexLookup(part, idx, val, storage.IndexAllEpochs, dst)
}

// LookupIndexTail implements txn.IndexTailReader.
func (c *dbCtx) LookupIndexTail(t storage.TableID, part, idx int, val []byte, max int, dst []storage.Key) []storage.Key {
	c.reads++
	return c.db.Table(t).IndexLookupTail(part, idx, val, storage.IndexAllEpochs, max, dst)
}

type costCtx interface {
	counts() (reads, writes int)
}

func (c *dbCtx) counts() (int, int) { return c.reads, c.writes }

func execCost(cfg Config, ctx costCtx) time.Duration {
	r, w := ctx.counts()
	return cfg.Cost.TxnOverhead +
		time.Duration(r)*cfg.Cost.Read +
		time.Duration(w)*cfg.Cost.Write
}

func applyBatch(cfg Config, n *bnode, b *replication.Batch) {
	for i := range b.Entries {
		if _, err := replication.Apply(n.db, storage.TIDEpoch(b.Entries[i].TID), &b.Entries[i], false); err != nil {
			panic("baseline: replication apply: " + err.Error())
		}
	}
	cfg.RT.Compute(time.Duration(len(b.Entries)) * cfg.Cost.ApplyEntry)
	n.tracker.AddApplied(b.From, int64(len(b.Entries)))
}

// drainNode services a group-commit fence on a node: handle messages
// until the expected replication entries have been applied, then ack the
// ticker and release this epoch's group-committed results.
func drainNode(cfg Config, n *bnode, in rt.Chan, m msgTickDrain, lat *metrics.Hist) {
	for !n.tracker.Drained(m.Expected) {
		msg, ok := in.RecvTimeout(20 * time.Microsecond)
		if !ok {
			continue
		}
		if b, isBatch := msg.(*replication.Batch); isBatch {
			cfg.RT.Compute(cfg.Cost.MsgHandling)
			applyBatch(cfg, n, b)
			continue
		}
		if n.onDrainMsg != nil {
			n.onDrainMsg(msg)
		}
	}
	// The epoch group-committed: its revert bookkeeping (dirty buckets,
	// index pending sets) will never be needed — these engines have no
	// failure revert — so drop everything older than the fence. Without
	// this the buckets accumulate one epoch forever (the sync variants
	// never advance their epoch, so they stay at one bucket regardless).
	n.db.CommitEpochBefore(m.Epoch)
	n.net.Send(n.id, cfg.tickerID(), transport.Control, msgTickAck{Node: n.id, Epoch: m.Epoch})
	n.release(cfg.RT.Now(), lat)
}

var _ = workload.Gen(nil)
