package baseline

import (
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/storage"
	"star/internal/workload/tpcc"
	"star/internal/workload/ycsb"
)

func ycsbWL(nodes, workers, crossPct int) *ycsb.Workload {
	return ycsb.New(ycsb.Config{
		Partitions:          nodes * workers,
		RecordsPerPartition: 128,
		CrossPct:            crossPct,
	})
}

func baseCfg(s *rt.Sim, nodes, workers int, wl interface {
	Name() string
}) Config {
	return Config{
		RT:             s,
		Nodes:          nodes,
		WorkersPerNode: workers,
		Epoch:          2 * time.Millisecond,
		Seed:           1,
	}
}

// orderPresent reports whether a live (non-tombstone) order row exists.
func orderPresent(db *storage.DB, wid, did, oid int) bool {
	rec := db.Table(tpcc.TOrder).Get(wid, tpcc.OKey(wid, did, oid))
	if rec == nil {
		return false
	}
	_, _, present := rec.ReadStable(nil)
	return present
}

// checkPair compares a partition across two databases.
func checkPair(t *testing.T, a, b *storage.DB, p int, what string) {
	t.Helper()
	if a.PartitionChecksum(p) != b.PartitionChecksum(p) {
		t.Fatalf("%s: partition %d diverged between replicas", what, p)
	}
}

func TestPBOCCAsyncCommitsAndReplicates(t *testing.T) {
	s := rt.NewSim()
	wl := ycsbWL(2, 2, 20)
	cfg := baseCfg(s, 2, 2, wl)
	cfg.Workload = wl
	e := NewPBOCC(cfg)
	s.Run(40 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	if st.Latency.Count() == 0 {
		t.Fatal("group commit never released results")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	for p := 0; p < 4; p++ {
		checkPair(t, e.Primary(), e.Backup(), p, "pbocc")
	}
	s.Stop()
}

func TestPBOCCSyncLatencyIsRoundTrip(t *testing.T) {
	s := rt.NewSim()
	wl := ycsbWL(2, 2, 20)
	cfg := baseCfg(s, 2, 2, wl)
	cfg.Workload = wl
	cfg.SyncRepl = true
	e := NewPBOCC(cfg)
	s.Run(30 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	// Sync replication: per-txn latency ≈ RTT (~100µs), far below the
	// 2ms group-commit epoch (paper Fig 12's contrast).
	if p50 := st.Latency.Quantile(0.5); p50 > time.Millisecond {
		t.Fatalf("sync p50=%v, want sub-millisecond", p50)
	}
	e.Freeze()
	s.Run(s.Now() + 10*time.Millisecond)
	for p := 0; p < 4; p++ {
		checkPair(t, e.Primary(), e.Backup(), p, "pbocc-sync")
	}
	s.Stop()
}

func distConsistency(t *testing.T, e *Dist) {
	t.Helper()
	cfg := e.Config()
	for p := 0; p < cfg.NumPartitions(); p++ {
		m, b := cfg.MasterOf(p), cfg.BackupOf(p)
		checkPair(t, e.NodeDB(m), e.NodeDB(b), p, e.Stats().Engine)
	}
}

func TestDistOCCAsync(t *testing.T) {
	s := rt.NewSim()
	wl := ycsbWL(3, 2, 30)
	cfg := baseCfg(s, 3, 2, wl)
	cfg.Workload = wl
	e := NewDist(cfg, DistOCC)
	s.Run(40 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	distConsistency(t, e)
	s.Stop()
}

func TestDistOCCSync2PC(t *testing.T) {
	s := rt.NewSim()
	wl := ycsbWL(3, 2, 30)
	cfg := baseCfg(s, 3, 2, wl)
	cfg.Workload = wl
	cfg.SyncRepl = true
	e := NewDist(cfg, DistOCC)
	s.Run(40 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits under 2PC")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	distConsistency(t, e)
	s.Stop()
}

func TestDistS2PLAsyncAndAborts(t *testing.T) {
	s := rt.NewSim()
	wl := ycsbWL(3, 2, 80) // heavy cross-partition => NO_WAIT conflicts
	cfg := baseCfg(s, 3, 2, wl)
	cfg.Workload = wl
	e := NewDist(cfg, DistS2PL)
	s.Run(40 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	distConsistency(t, e)
	s.Stop()
}

func TestDistS2PLSync(t *testing.T) {
	s := rt.NewSim()
	wl := ycsbWL(2, 2, 30)
	cfg := baseCfg(s, 2, 2, wl)
	cfg.Workload = wl
	cfg.SyncRepl = true
	e := NewDist(cfg, DistS2PL)
	s.Run(40 * time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	distConsistency(t, e)
	s.Stop()
}

func TestDistTPCCInvariant(t *testing.T) {
	s := rt.NewSim()
	wl := tpcc.New(tpcc.Config{
		Warehouses:           4,
		Districts:            2,
		CustomersPerDistrict: 32,
		Items:                64,
	})
	cfg := Config{RT: s, Nodes: 2, WorkersPerNode: 2, Workload: wl,
		Epoch: 2 * time.Millisecond, Seed: 3}
	e := NewDist(cfg, DistOCC)
	s.Run(40 * time.Millisecond)
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	// d_next_o_id-1 == number of orders, per district, on the master.
	sch := wl.BuildDB(4, make([]bool, 4)).Table(tpcc.TDistrict).Schema()
	for wid := 0; wid < 4; wid++ {
		db := e.NodeDB(e.Config().MasterOf(wid))
		for did := 0; did < 2; did++ {
			drow, _, _ := db.Table(tpcc.TDistrict).Get(wid, tpcc.DKey(wid, did)).ReadStable(nil)
			next := int(sch.GetUint64(drow, tpcc.DNextOID))
			for oid := 1; oid < next; oid++ {
				if !orderPresent(db, wid, did, oid) {
					t.Fatalf("order w%d d%d o%d missing (next=%d)", wid, did, oid, next)
				}
			}
			// Aborted inserts may leave absent placeholders; only a
			// PRESENT row beyond the counter is an anomaly.
			if orderPresent(db, wid, did, next) {
				t.Fatalf("order beyond counter at w%d d%d", wid, did)
			}
		}
	}
	distConsistency(t, e)
	s.Stop()
}

func TestCalvinCommitsAndIsDeterministic(t *testing.T) {
	run := func() (*Calvin, []uint64, int64) {
		s := rt.NewSim()
		wl := ycsbWL(2, 3, 30)
		cfg := Config{RT: s, Nodes: 2, WorkersPerNode: 3, Workload: wl,
			LockManagers: 1, BatchSize: 100, Seed: 5}
		e := NewCalvin(cfg)
		s.Run(40 * time.Millisecond)
		e.Freeze()
		s.Run(s.Now() + 20*time.Millisecond)
		sums := make([]uint64, cfg.NumPartitions())
		for p := 0; p < cfg.NumPartitions(); p++ {
			sums[p] = e.NodeDB(cfg.MasterOf(p)).PartitionChecksum(p)
		}
		c := e.Stats().Committed
		s.Stop()
		return e, sums, c
	}
	_, sumsA, cA := run()
	_, sumsB, cB := run()
	if cA == 0 {
		t.Fatal("no commits")
	}
	if cA != cB {
		t.Fatalf("commit counts differ across identical runs: %d vs %d", cA, cB)
	}
	for p := range sumsA {
		if sumsA[p] != sumsB[p] {
			t.Fatalf("partition %d state differs across identical runs: determinism broken", p)
		}
	}
}

func TestCalvinLockManagerConfigs(t *testing.T) {
	for _, x := range []int{1, 2} {
		s := rt.NewSim()
		wl := ycsbWL(2, 3, 20)
		cfg := Config{RT: s, Nodes: 2, WorkersPerNode: 3, Workload: wl,
			LockManagers: x, BatchSize: 80, Seed: 6}
		e := NewCalvin(cfg)
		s.Run(40 * time.Millisecond)
		if e.Stats().Committed == 0 {
			t.Fatalf("Calvin-%d: no commits", x)
		}
		s.Stop()
	}
}

func TestCalvinTPCC(t *testing.T) {
	s := rt.NewSim()
	wl := tpcc.New(tpcc.Config{
		Warehouses:           6,
		Districts:            2,
		CustomersPerDistrict: 32,
		Items:                64,
	})
	cfg := Config{RT: s, Nodes: 2, WorkersPerNode: 3, Workload: wl,
		LockManagers: 1, BatchSize: 60, Seed: 7}
	e := NewCalvin(cfg)
	s.Run(60 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	if st.Extra["user_aborts"] == 0 {
		t.Log("note: no invalid-item rollbacks observed (small run)")
	}
	s.Stop()
}

func TestTopology(t *testing.T) {
	cfg := Config{Nodes: 4, WorkersPerNode: 3}
	cfg = cfg.withDefaults()
	if cfg.NumPartitions() != 12 {
		t.Fatal("partitions")
	}
	for p := 0; p < 12; p++ {
		if cfg.MasterOf(p) == cfg.BackupOf(p) {
			t.Fatalf("partition %d: primary and secondary on the same node", p)
		}
	}
	mask := cfg.HoldsMask(1)
	holds := 0
	for _, h := range mask {
		if h {
			holds++
		}
	}
	if holds != 6 { // 3 mastered + 3 backed up
		t.Fatalf("node 1 holds %d partitions, want 6", holds)
	}
}
