package baseline

import (
	"time"

	"star/internal/lock"
	"star/internal/occ"
	"star/internal/replication"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
)

// callAll issues one RPC per destination in parallel and collects all
// responses. Local destinations must be handled by the caller directly.
func (p *rpcPort) callAll(net transport.Transport, src, worker int, reqs map[int]*rpcReq) map[int]*rpcResp {
	bySeq := map[uint64]int{}
	for dst, req := range reqs {
		p.seq++
		req.Seq = p.seq
		bySeq[p.seq] = dst
		net.Send(src, dst, transport.Data, req)
	}
	out := make(map[int]*rpcResp, len(reqs))
	for len(out) < len(reqs) {
		v, ok := p.resp.RecvTimeout(time.Second)
		if !ok {
			break
		}
		resp := v.(*rpcResp)
		if dst, want := bySeq[resp.Seq]; want {
			delete(bySeq, resp.Seq)
			out[dst] = resp
		}
	}
	return out
}

// ---- participant-side operations (called via RPC or directly) ----

func (e *Dist) doRead(node int, p *readPayload) (*readReply, bool) {
	rec := e.nodes[node].db.Table(p.Table).Get(p.Part, p.Key)
	if rec == nil {
		return &readReply{Absent: true}, true
	}
	// Bounded read: if the record is latched by an in-flight commit we
	// fail the read (conflict abort) rather than spin — the router
	// serving this read is also the process that must deliver the
	// latch-holder's commit, so unbounded spinning would deadlock.
	val, tidv, present, ok := rec.TryReadStable(nil, 16)
	if !ok {
		return nil, false
	}
	if !present {
		return &readReply{TID: tidv, Absent: true}, true
	}
	return &readReply{Row: val, TID: tidv}, true
}

func (e *Dist) doLockRead(node int, p *readPayload) (*readReply, bool) {
	nm := lock.Name{Table: p.Table, Key: p.Key}
	if !e.locks[node].TryLock(nm, p.Owner, p.Write) {
		return nil, false // NO_WAIT: abort on conflict
	}
	rec := e.nodes[node].db.Table(p.Table).Get(p.Part, p.Key)
	if rec == nil {
		e.locks[node].Unlock(nm, p.Owner)
		return &readReply{Absent: true}, true
	}
	val, tidv, present, ok := rec.TryReadStable(nil, 64)
	if !ok {
		e.locks[node].Unlock(nm, p.Owner)
		return nil, false
	}
	if !present {
		// A tombstone is a successful "row missing" read; the name lock
		// is released — readers of trimmed ranges serialise on the
		// district rows, not on the reclaimed rows themselves.
		e.locks[node].Unlock(nm, p.Owner)
		return &readReply{TID: tidv, Absent: true}, true
	}
	return &readReply{Row: val, TID: tidv}, true
}

func (e *Dist) doLockValidate(node int, p *lvPayload) (*lvReply, bool) {
	n := e.nodes[node]
	var locked []*storage.Record
	fail := func() bool {
		for _, rec := range locked {
			rec.Unlock()
		}
		return false
	}
	maxTID := uint64(0)
	for idx, nm := range p.Writes {
		part := int(p.Parts[idx])
		rec := n.db.Table(nm.Table).Partition(part).GetOrCreate(nm.Key, 0)
		if !rec.TryLock() { // NO_WAIT on write locks
			return nil, fail()
		}
		locked = append(locked, rec)
		if t := storage.TIDClean(rec.TID()); t > maxTID {
			maxTID = t
		}
	}
	for idx := range p.Reads {
		re := &p.Reads[idx]
		rec := n.db.Table(re.Table).Get(re.Part, re.Key)
		if rec == nil {
			return nil, fail()
		}
		cur := rec.TID()
		if storage.TIDClean(cur) != storage.TIDClean(re.TID) {
			return nil, fail()
		}
		if storage.TIDLocked(cur) && !recIn(locked, rec) {
			return nil, fail()
		}
	}
	return &lvReply{MaxWriteTID: maxTID}, true
}

// doCommitAsync applies the writes, releases locks, and streams value
// rows to the partition block's backup. Returns the backup entries sent.
func (e *Dist) doCommitAsync(node int, p *commitPayload) {
	n := e.nodes[node]
	if len(p.Entries) == 0 {
		// Release-only participant (read locks, no writes here).
		for _, nm := range p.Release {
			e.locks[node].Unlock(nm, p.Owner)
		}
		return
	}
	epoch := storage.TIDEpoch(p.TID)
	backup := e.cfg.BackupOf(int(p.Entries[0].Part))
	ents := make([]replication.Entry, 0, len(p.Entries))
	for idx := range p.Entries {
		en := &p.Entries[idx]
		rec := e.applyEntry(node, en, epoch, p.TID)
		row, _, present := rec.ReadStable(nil)
		ents = append(ents, replication.Entry{
			Table: en.Table, Part: en.Part, Key: en.Key, TID: p.TID, Row: row, Absent: !present,
		})
	}
	for _, nm := range p.Release {
		e.locks[node].Unlock(nm, p.Owner)
	}
	if backup != node {
		n.tracker.AddSent(backup, int64(len(ents)))
		e.net.Send(node, backup, transport.Replication, &replication.Batch{From: node, Entries: ents})
	}
}

// applyEntry installs one write on the participant's primary copy.
// For OCC the record latch is already held (from doLockValidate) and is
// released with the new TID here; S2PL latches briefly (its isolation
// comes from the lock table).
func (e *Dist) applyEntry(node int, en *replication.Entry, epoch, tid uint64) *storage.Record {
	n := e.nodes[node]
	tbl := n.db.Table(en.Table)
	part := tbl.Partition(int(en.Part))
	rec := part.GetOrCreate(en.Key, epoch)
	wasAbsent := storage.TIDAbsent(rec.TID())
	if e.proto == DistS2PL {
		rec.Lock()
	}
	if en.Absent && !en.IsOp() {
		// Delete entry: capture the pre-delete row for index maintenance,
		// then tombstone. The absent bit must survive the unlock.
		var prior []byte
		if !wasAbsent && tbl.NumIndexes() > 0 {
			prior = append(prior, rec.ValueLocked()...)
		}
		if rec.DeleteLocked(epoch, tid) {
			part.MarkDirty(rec, epoch)
		}
		rec.UnlockWithTID(storage.TIDClean(tid) | storage.TIDAbsentBit)
		if !wasAbsent {
			tbl.NoteDeleted(int(en.Part), en.Key, prior, epoch)
		}
		return rec
	}
	var first bool
	if en.IsOp() {
		first, _ = rec.ApplyOpsLocked(tbl.Schema(), epoch, tid, en.Ops)
	} else {
		first = rec.WriteLocked(epoch, tid, en.Row)
	}
	if first {
		part.MarkDirty(rec, epoch)
	}
	var inserted []byte
	if wasAbsent && tbl.NumIndexes() > 0 {
		inserted = append(inserted, rec.ValueLocked()...)
	}
	rec.UnlockWithTID(storage.TIDClean(tid))
	if wasAbsent {
		tbl.NoteInserted(int(en.Part), en.Key, inserted, epoch)
	}
	return rec
}

func (e *Dist) doAbort(node int, p *abortPayload) {
	n := e.nodes[node]
	for idx, nm := range p.Writes {
		rec := n.db.Table(nm.Table).Get(int(p.Parts[idx]), nm.Key)
		if rec != nil && storage.TIDLocked(rec.TID()) {
			rec.Unlock()
		}
	}
	for _, nm := range p.Release {
		e.locks[node].Unlock(nm, p.Owner)
	}
}

// ---- coordinator-side transaction execution ----

// distCtx serves procedure reads/writes for both distributed protocols.
type distCtx struct {
	e      *Dist
	node   int
	wi     int
	port   *rpcPort
	set    *txn.RWSet
	reads  int
	writes int
	failed bool

	// S2PL state
	s2pl      bool
	owner     int
	writeMode map[lock.Name]bool
	held      map[int][]lock.Name // participant → lock names held
}

func (c *distCtx) counts() (int, int) { return c.reads, c.writes }

func (c *distCtx) Read(t storage.TableID, part int, key storage.Key) ([]byte, bool) {
	c.reads++
	e := c.e
	tbl := e.nodes[c.node].db.Table(t)
	if tbl.Replicated() {
		rec := tbl.Get(part, key)
		if rec == nil {
			return nil, false
		}
		val, _, present := rec.ReadStable(nil)
		return val, present
	}
	owner := e.cfg.MasterOf(part)
	if c.s2pl {
		nm := lock.Name{Table: t, Key: key}
		payload := &readPayload{Table: t, Part: part, Key: key, Write: c.writeMode[nm], Owner: c.owner}
		var rep *readReply
		var ok bool
		if owner == c.node {
			rep, ok = e.doLockRead(owner, payload)
		} else {
			resp := c.port.call(e.net, c.node, owner, c.wi, rpcLockRead, payload.encode())
			if resp.OK {
				rep, ok = mustDecode(decodeReadReply(resp.Payload)), true
			}
		}
		if !ok {
			c.failed = true
			return nil, false
		}
		if rep.Absent {
			return nil, false // row missing: skippable, not an abort
		}
		c.held[owner] = append(c.held[owner], nm)
		c.set.AddRead(t, part, key, nil, rep.TID)
		return rep.Row, true
	}
	// OCC: plain read; remote reads are an RPC round trip (§7.2.2).
	payload := &readPayload{Table: t, Part: part, Key: key}
	var rep *readReply
	var ok bool
	if owner == c.node {
		rep, ok = e.doRead(owner, payload)
	} else {
		resp := c.port.call(e.net, c.node, owner, c.wi, rpcRead, payload.encode())
		if resp.OK {
			rep, ok = mustDecode(decodeReadReply(resp.Payload)), true
		}
	}
	if !ok {
		c.failed = true
		return nil, false
	}
	if rep.Absent {
		return nil, false // row missing: skippable, not an abort
	}
	c.set.AddRead(t, part, key, nil, rep.TID)
	return rep.Row, true
}

func (c *distCtx) Write(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	c.writes++
	c.set.AddWrite(t, part, key, ops...)
}

func (c *distCtx) Insert(t storage.TableID, part int, key storage.Key, row []byte) {
	c.writes++
	c.set.AddInsert(t, part, key, row)
}

func (c *distCtx) Delete(t storage.TableID, part int, key storage.Key) {
	c.writes++
	c.set.AddDelete(t, part, key)
}

// LookupIndex resolves a secondary-index lookup: locally when this node
// masters the partition (or the table is replicated), otherwise as one
// RPC round trip to the partition's master — the same shape as a remote
// read (§7.2.2). Lookups take no locks on either protocol; the record
// reads and commutative writes that follow carry the isolation, the
// same tolerance Delivery's cursor-dependent accesses rely on.
func (c *distCtx) LookupIndex(t storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key {
	c.reads++
	e := c.e
	tbl := e.nodes[c.node].db.Table(t)
	if tbl.Replicated() || e.cfg.MasterOf(part) == c.node {
		return tbl.IndexLookup(part, idx, val, storage.IndexAllEpochs, dst)
	}
	payload := &idxPayload{Table: t, Part: part, Index: idx, Val: val}
	resp := c.port.call(e.net, c.node, e.cfg.MasterOf(part), c.wi, rpcIndexLookup, payload.encode())
	if !resp.OK {
		c.failed = true
		return dst
	}
	return append(dst, mustDecode(decodeIdxReply(resp.Payload)).Keys...)
}

// participantEntries groups the write set per mastering node.
func (e *Dist) participantEntries(set *txn.RWSet, tid uint64) map[int][]replication.Entry {
	out := map[int][]replication.Entry{}
	for _, en := range replication.OpEntries(set, tid) {
		owner := e.cfg.MasterOf(int(en.Part))
		out[owner] = append(out[owner], en)
	}
	return out
}

func (e *Dist) runOCC(node, wi int, req *txn.Request) {
	r := e.cfg.RT
	port := e.ports[node][wi]
	rng := newRNG(e.cfg.Seed^0x0cc, node, wi)
	var set txn.RWSet
	for {
		set.Reset()
		ctx := &distCtx{e: e, node: node, wi: wi, port: port, set: &set}
		err := req.Proc.Run(ctx)
		r.Compute(execCost(e.cfg, ctx))
		if err == txn.ErrUserAbort {
			e.st.userAborts.Inc()
			return
		}
		if err == nil && !ctx.failed && e.commitOCC(node, wi, port, &set, req) {
			return
		}
		e.st.aborted.Inc()
		// Randomised backoff avoids livelock between mutual aborters.
		r.Sleep(time.Duration(5+rng.Intn(40)) * time.Microsecond)
	}
}

// commitOCC runs the two commit rounds: lock+validate, then apply (2PC
// when synchronous replication is on, §7.1.3).
func (e *Dist) commitOCC(node, wi int, port *rpcPort, set *txn.RWSet, req *txn.Request) bool {
	set.SortWrites()
	// Group the footprint by participant.
	lvs := map[int]*lvPayload{}
	at := func(owner int) *lvPayload {
		p := lvs[owner]
		if p == nil {
			p = &lvPayload{}
			lvs[owner] = p
		}
		return p
	}
	for i := range set.Writes {
		w := &set.Writes[i]
		p := at(e.cfg.MasterOf(w.Part))
		p.Writes = append(p.Writes, lock.Name{Table: w.Table, Key: w.Key})
		p.Parts = append(p.Parts, int32(w.Part))
	}
	for i := range set.Reads {
		rd := &set.Reads[i]
		p := at(e.cfg.MasterOf(rd.Part))
		p.Reads = append(p.Reads, *rd)
	}

	// Round 1: lock + validate everywhere (NO_WAIT).
	reqs := map[int]*rpcReq{}
	okLocal := true
	maxTID := set.MaxReadTID()
	var localReply *lvReply
	for owner, payload := range lvs {
		if owner == node {
			localReply, okLocal = e.doLockValidate(node, payload)
			continue
		}
		reqs[owner] = &rpcReq{Kind: rpcLockValidate, From: node, Worker: wi,
			Payload: payload.encode()}
	}
	resps := port.callAll(e.net, node, wi, reqs)
	allOK := okLocal && len(resps) == len(reqs)
	for _, resp := range resps {
		if !resp.OK {
			allOK = false
			continue
		}
		if rep := mustDecode(decodeLVReply(resp.Payload)); rep.MaxWriteTID > maxTID {
			maxTID = rep.MaxWriteTID
		}
	}
	if localReply != nil && localReply.MaxWriteTID > maxTID {
		maxTID = localReply.MaxWriteTID
	}
	if !allOK {
		// Round 2 (abort): unlock whoever voted yes.
		abrt := map[int]*rpcReq{}
		for owner, payload := range lvs {
			ap := &abortPayload{Writes: payload.Writes, Parts: payload.Parts}
			if owner == node {
				if okLocal {
					e.doAbort(node, ap)
				}
				continue
			}
			if resp, ok := resps[owner]; ok && resp.OK {
				abrt[owner] = &rpcReq{Kind: rpcAbort, From: node, Worker: wi, Payload: ap.encode()}
			}
		}
		port.callAll(e.net, node, wi, abrt)
		return false
	}

	// Round 2 (commit): apply + replicate.
	tid := genNext(e.tidGen(node, wi), e.ticker.Epoch(), maxTID)
	byOwner := e.participantEntries(set, tid)
	creqs := map[int]*rpcReq{}
	for owner, ents := range byOwner {
		payload := &commitPayload{TID: tid, Entries: ents, Sync: e.cfg.SyncRepl}
		if owner == node {
			e.commitLocal(node, wi, port, payload)
			continue
		}
		creqs[owner] = &rpcReq{Kind: rpcCommitWrites, From: node, Worker: wi, Payload: payload.encode()}
	}
	port.callAll(e.net, node, wi, creqs)
	e.finish(node, req)
	return true
}

// commitLocal is the coordinator applying its own portion; under
// synchronous replication it waits for its backup's ack while holding
// the locks (the worker may block; routers may not).
func (e *Dist) commitLocal(node, wi int, port *rpcPort, p *commitPayload) {
	if !p.Sync || len(p.Entries) == 0 {
		e.doCommitAsync(node, p)
		return
	}
	n := e.nodes[node]
	epoch := storage.TIDEpoch(p.TID)
	backup := e.cfg.BackupOf(int(p.Entries[0].Part))
	ents := make([]replication.Entry, 0, len(p.Entries))
	recs := make([]*storage.Record, 0, len(p.Entries))
	for idx := range p.Entries {
		en := &p.Entries[idx]
		rec := e.applyEntry(node, en, epoch, p.TID)
		recs = append(recs, rec)
		row, _, present := rec.ReadStable(nil)
		ents = append(ents, replication.Entry{Table: en.Table, Part: en.Part, Key: en.Key, TID: p.TID, Row: row, Absent: !present})
	}
	if backup != node {
		n.tracker.AddSent(backup, int64(len(ents)))
		resp := port.call(e.net, node, backup, wi, rpcCommitWrites,
			(&commitPayload{TID: p.TID, Entries: ents}).encode())
		_ = resp
	}
	for _, nm := range p.Release {
		e.locks[node].Unlock(nm, p.Owner)
	}
	_ = recs
}

func (e *Dist) runS2PL(node, wi int, req *txn.Request) {
	r := e.cfg.RT
	port := e.ports[node][wi]
	owner := node*e.cfg.WorkersPerNode + wi + 1
	rng := newRNG(e.cfg.Seed^0x52b, node, wi)
	var set txn.RWSet
	for {
		set.Reset()
		ctx := &distCtx{
			e: e, node: node, wi: wi, port: port, set: &set,
			s2pl: true, owner: owner,
			writeMode: make(map[lock.Name]bool, 8),
			held:      make(map[int][]lock.Name, 4),
		}
		for _, a := range req.Proc.Accesses() {
			if a.Write {
				ctx.writeMode[lock.Name{Table: a.Table, Key: a.Key}] = true
			}
		}
		err := req.Proc.Run(ctx)
		r.Compute(execCost(e.cfg, ctx))
		if err == nil && !ctx.failed && e.commitS2PL(node, wi, port, ctx, &set, req) {
			return
		}
		// Release everything we hold, then retry or stop.
		e.abortS2PL(node, wi, port, ctx)
		if err == txn.ErrUserAbort {
			e.st.userAborts.Inc()
			return
		}
		e.st.aborted.Inc()
		r.Sleep(time.Duration(5+rng.Intn(40)) * time.Microsecond)
	}
}

func (e *Dist) abortS2PL(node, wi int, port *rpcPort, ctx *distCtx) {
	reqs := map[int]*rpcReq{}
	for owner, names := range ctx.held {
		ap := &abortPayload{Owner: ctx.owner, Release: names}
		if owner == node {
			e.doAbort(node, ap)
			continue
		}
		reqs[owner] = &rpcReq{Kind: rpcAbort, From: node, Worker: wi, Payload: ap.encode()}
	}
	port.callAll(e.net, node, wi, reqs)
}

func (e *Dist) commitS2PL(node, wi int, port *rpcPort, ctx *distCtx, set *txn.RWSet, req *txn.Request) bool {
	// 2PC prepare round under synchronous replication (§7.1.3: "must use
	// two-phase commit when synchronous replication is used").
	participants := map[int]bool{node: true}
	for owner := range ctx.held {
		participants[owner] = true
	}
	for i := range set.Writes {
		participants[e.cfg.MasterOf(set.Writes[i].Part)] = true
	}
	if e.cfg.SyncRepl {
		preps := map[int]*rpcReq{}
		for owner := range participants {
			if owner == node {
				continue
			}
			preps[owner] = &rpcReq{Kind: rpcPrepare, From: node, Worker: wi}
		}
		port.callAll(e.net, node, wi, preps)
	}
	tid := genNext(e.tidGen(node, wi), e.ticker.Epoch(), set.MaxReadTID())
	byOwner := e.participantEntries(set, tid)
	creqs := map[int]*rpcReq{}
	for owner := range participants {
		payload := &commitPayload{
			TID: tid, Entries: byOwner[owner],
			Owner: ctx.owner, Release: ctx.held[owner], Sync: e.cfg.SyncRepl,
		}
		if len(payload.Entries) == 0 && len(payload.Release) == 0 {
			continue
		}
		if owner == node {
			if len(payload.Entries) == 0 {
				// Locks only: release directly.
				for _, nm := range payload.Release {
					e.locks[node].Unlock(nm, ctx.owner)
				}
				continue
			}
			e.commitLocal(node, wi, port, payload)
			continue
		}
		creqs[owner] = &rpcReq{Kind: rpcCommitWrites, From: node, Worker: wi,
			Payload: payload.encode()}
	}
	port.callAll(e.net, node, wi, creqs)
	e.finish(node, req)
	return true
}

func (e *Dist) finish(node int, req *txn.Request) {
	e.st.committed.Inc()
	if e.cfg.SyncRepl {
		e.st.latency.Observe(time.Duration(int64(e.cfg.RT.Now()) - req.GenAt))
		return
	}
	e.nodes[node].addPending(req.GenAt)
}

// tidGen returns the per-worker TID generator.
func (e *Dist) tidGen(node, wi int) *occ.TIDGen {
	return &e.tids[node*e.cfg.WorkersPerNode+wi]
}

func genNext(g *occ.TIDGen, epoch, maxSeen uint64) uint64 {
	return g.Next(epoch, maxSeen)
}
