package wal

import (
	"bytes"
	"io"
	"testing"

	"star/internal/storage"
)

// fuzzLog builds the fixed multi-record log the corruption fuzzer
// attacks: interleaved row writes (empty, short and long rows, absent
// tombstones) and epoch marks across two epochs.
func fuzzLog(t testing.TB) ([]byte, []Entry) {
	var sink bytes.Buffer
	l := NewLogger(&sink)
	long := bytes.Repeat([]byte{0xab}, 300)
	writes := []Entry{
		{Kind: kindWrite, Table: 1, Part: 0, Key: storage.Key{Hi: 1, Lo: 2}, TID: 0x10, Row: []byte("alpha")},
		{Kind: kindWrite, Table: 2, Part: 3, Key: storage.Key{Hi: 0, Lo: 9}, TID: 0x11, Row: nil},
		{Kind: kindEpochMark, Epoch: 2},
		{Kind: kindWrite, Table: 1, Part: 1, Key: storage.Key{Hi: 7, Lo: 7}, TID: 0x20, Absent: true, Row: nil},
		{Kind: kindWrite, Table: 3, Part: 2, Key: storage.Key{Hi: 5, Lo: 5}, TID: 0x21, Row: long},
		{Kind: kindWrite, Table: 1, Part: 0, Key: storage.Key{Hi: 1, Lo: 2}, TID: 0x22, Row: []byte("beta")},
		{Kind: kindDelete, Table: 1, Part: 0, Key: storage.Key{Hi: 1, Lo: 2}, TID: 0x23, Absent: true},
		{Kind: kindEpochMark, Epoch: 3},
	}
	for _, e := range writes {
		var err error
		switch e.Kind {
		case kindEpochMark:
			err = l.AppendEpochMark(e.Epoch)
		case kindDelete:
			err = l.AppendDelete(e.Table, e.Part, e.Key, e.TID)
		default:
			err = l.AppendWrite(e.Table, e.Part, e.Key, e.TID, e.Absent, e.Row)
		}
		if err != nil {
			t.Fatalf("build log: %v", err)
		}
	}
	if err := l.Flush(false); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return sink.Bytes(), writes
}

// entryStarts returns the byte offset where each entry's frame begins.
func entryStarts(log []byte, n int) []int {
	starts := make([]int, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		starts = append(starts, off)
		// 8-byte header + payload length (little-endian at off).
		plen := int(uint32(log[off]) | uint32(log[off+1])<<8 | uint32(log[off+2])<<16 | uint32(log[off+3])<<24)
		off += 8 + plen
	}
	return starts
}

func sameEntry(a, b Entry) bool {
	return a.Kind == b.Kind && a.Table == b.Table && a.Part == b.Part &&
		a.Key == b.Key && a.TID == b.TID && a.Absent == b.Absent &&
		a.Epoch == b.Epoch && bytes.Equal(a.Row, b.Row)
}

// FuzzWALCorruption damages one byte of a valid multi-record log (or,
// with xor == 0, truncates it mid-stream — the torn tail) and pins the
// reader's contract: no panic, never more entries than were written,
// and every frame that lies wholly before the damage decodes exactly as
// written. The reader stops at the first bad frame instead of
// resynchronizing, so damage can only ever cost a suffix.
func FuzzWALCorruption(f *testing.F) {
	log, ents := fuzzLog(f)
	f.Add(uint32(0), byte(0x01))            // header of the first frame
	f.Add(uint32(4), byte(0x80))            // CRC field
	f.Add(uint32(9), byte(0xff))            // kind byte of the first payload
	f.Add(uint32(len(log)/2), byte(0x40))   // mid-stream row bytes
	f.Add(uint32(len(log)-1), byte(0x01))   // last byte
	f.Add(uint32(30), byte(0))              // truncation mid-frame
	f.Add(uint32(len(log)), byte(0))        // no-op truncation at the end
	deleteFrame := entryStarts(log, len(ents))[6]
	f.Add(uint32(deleteFrame+8), byte(0xfe)) // kind byte of the delete frame
	f.Add(uint32(deleteFrame+20), byte(0x01)) // key bytes of the delete frame
	f.Add(uint32(deleteFrame+12), byte(0))   // truncation inside the delete frame
	f.Fuzz(func(t *testing.T, pos uint32, xor byte) {
		log, want := fuzzLog(t)
		starts := entryStarts(log, len(want))

		p := int(pos % uint32(len(log)+1))
		corrupted := append([]byte(nil), log...)
		if xor == 0 {
			corrupted = corrupted[:p] // torn tail
		} else if p < len(corrupted) {
			corrupted[p] ^= xor
		}

		// intact counts the entries whose frames end at or before the
		// damage point: those MUST come back verbatim.
		intact := 0
		for intact < len(want) {
			end := len(log)
			if intact+1 < len(starts) {
				end = starts[intact+1]
			}
			if end > p && (xor != 0 || p < len(log)) {
				break
			}
			intact++
		}

		r := NewReader(bytes.NewReader(corrupted))
		var got []Entry
		for {
			e, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Framed-but-undecodable is a reader bug: the CRC passed,
				// so the payload is one the logger wrote or a collision —
				// either way Next must map it to io.EOF, not an error that
				// could crash recovery.
				t.Fatalf("Next returned non-EOF error: %v", err)
			}
			got = append(got, *e)
		}
		if len(got) > len(want) {
			t.Fatalf("decoded %d entries from a %d-entry log", len(got), len(want))
		}
		if len(got) < intact {
			t.Fatalf("damage at byte %d lost an intact prefix frame: got %d entries, want at least %d", p, len(got), intact)
		}
		for i := 0; i < intact; i++ {
			if !sameEntry(got[i], want[i]) {
				t.Fatalf("intact entry %d decoded differently: got %+v want %+v", i, got[i], want[i])
			}
		}
	})
}
