package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"star/internal/storage"
)

func schema() *storage.Schema {
	return storage.NewSchema(storage.Field{Name: "v", Type: storage.FieldInt64})
}

func newDB(vals map[uint64]int64, epoch uint64) *storage.DB {
	db := storage.NewDB(2, nil)
	tbl := db.AddTable("t", schema(), false)
	s := tbl.Schema()
	seq := uint64(1)
	for k, v := range vals {
		row := s.NewRow()
		s.SetInt64(row, 0, v)
		tbl.Insert(int(k%2), storage.K1(k), epoch, storage.MakeTID(epoch, seq), row)
		seq++
	}
	return db
}

func dbValue(db *storage.DB, k uint64) (int64, bool) {
	rec := db.Table(0).Get(int(k%2), storage.K1(k))
	if rec == nil {
		return 0, false
	}
	val, _, present := rec.ReadStable(nil)
	if !present {
		return 0, false
	}
	return schema().GetInt64(val, 0), true
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w0.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	row := schema().NewRow()
	schema().SetInt64(row, 0, 42)
	if err := l.AppendWrite(0, 1, storage.K1(7), storage.MakeTID(2, 3), false, row); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEpochMark(2); err != nil {
		t.Fatal(err)
	}
	if l.Bytes() == 0 {
		t.Fatal("no bytes accounted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, _ := os.Open(path)
	defer f.Close()
	r := NewReader(f)
	e1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e1.Kind != kindWrite || e1.Key != storage.K1(7) || e1.TID != storage.MakeTID(2, 3) ||
		!bytes.Equal(e1.Row, row) || e1.Part != 1 {
		t.Fatalf("entry mismatch: %+v", e1)
	}
	e2, err := r.Next()
	if err != nil || e2.Kind != kindEpochMark || e2.Epoch != 2 {
		t.Fatalf("epoch mark: %+v err=%v", e2, err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("expected EOF")
	}
}

func TestTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.log")
	l, _ := Create(path)
	row := schema().NewRow()
	l.AppendWrite(0, 0, storage.K1(1), storage.MakeTID(1, 1), false, row)
	l.AppendEpochMark(1)
	l.Close()
	// Append garbage simulating a torn write at crash.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	in, _ := os.Open(path)
	defer in.Close()
	r := NewReader(in)
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d entries, want 2 (garbage tail ignored)", n)
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.log")
	l, _ := Create(path)
	row := schema().NewRow()
	for i := uint64(1); i <= 5; i++ {
		l.AppendWrite(0, 0, storage.K1(i), storage.MakeTID(1, i), false, row)
	}
	l.Close()
	data, _ := os.ReadFile(path)
	data[20] ^= 0xFF // flip a byte inside the first entry's payload
	os.WriteFile(path, data, 0o644)

	in, _ := os.Open(path)
	defer in.Close()
	r := NewReader(in)
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	if n != 0 {
		t.Fatalf("CRC must reject corrupt entry; read %d", n)
	}
}

func TestRecoverFromLogsOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.log")
	l, _ := Create(path)
	s := schema()

	write := func(k uint64, v int64, epoch, seq uint64) {
		row := s.NewRow()
		s.SetInt64(row, 0, v)
		l.AppendWrite(0, int32(k%2), storage.K1(k), storage.MakeTID(epoch, seq), false, row)
	}
	write(1, 10, 2, 1)
	write(2, 20, 2, 2)
	l.AppendEpochMark(2)
	write(1, 99, 3, 1) // epoch 3 never committed (no mark): must be discarded
	l.Close()

	db := newDB(nil, 1)
	epoch, applied, err := Recover(db, "", []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("recovered epoch %d, want 2", epoch)
	}
	if applied != 2 {
		t.Fatalf("applied %d, want 2", applied)
	}
	if v, ok := dbValue(db, 1); !ok || v != 10 {
		t.Fatalf("k1=%d,%v; uncommitted epoch-3 write must not surface", v, ok)
	}
	if v, _ := dbValue(db, 2); v != 20 {
		t.Fatalf("k2=%d", v)
	}
}

func TestCheckpointPlusLogRecovery(t *testing.T) {
	dir := t.TempDir()
	db := newDB(map[uint64]int64{1: 100, 2: 200, 3: 300}, 2)

	ckpt := filepath.Join(dir, "ckpt")
	if _, err := WriteCheckpoint(db, ckpt, 2); err != nil {
		t.Fatal(err)
	}
	if e, err := CheckpointEpoch(ckpt); err != nil || e != 2 {
		t.Fatalf("checkpoint epoch %d err=%v", e, err)
	}

	// Post-checkpoint activity in epoch 3, committed.
	logPath := filepath.Join(dir, "w.log")
	l, _ := Create(logPath)
	s := schema()
	row := s.NewRow()
	s.SetInt64(row, 0, 111)
	l.AppendWrite(0, 1, storage.K1(1), storage.MakeTID(3, 1), false, row)
	l.AppendEpochMark(3)
	l.Close()

	// Fresh node recovers checkpoint + log.
	db2 := newDB(nil, 1)
	epoch, _, err := Recover(db2, ckpt, []string{logPath})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 {
		t.Fatalf("epoch=%d", epoch)
	}
	if v, _ := dbValue(db2, 1); v != 111 {
		t.Fatalf("k1=%d, want log to supersede checkpoint", v)
	}
	if v, _ := dbValue(db2, 2); v != 200 {
		t.Fatalf("k2=%d, want checkpoint value", v)
	}
	if v, _ := dbValue(db2, 3); v != 300 {
		t.Fatalf("k3=%d", v)
	}
}

// A fuzzy checkpoint can capture a mix of old and new versions; replaying
// the logs with the Thomas write rule corrects it (§4.5.1: "a checkpoint
// does not need to be a consistent snapshot").
func TestFuzzyCheckpointCorrectedByThomasRule(t *testing.T) {
	dir := t.TempDir()
	db := newDB(map[uint64]int64{5: 50}, 2)
	// Log contains the epoch-3 update of key 5.
	logPath := filepath.Join(dir, "w.log")
	l, _ := Create(logPath)
	s := schema()
	row := s.NewRow()
	s.SetInt64(row, 0, 55)
	l.AppendWrite(0, 1, storage.K1(5), storage.MakeTID(3, 1), false, row)
	l.AppendEpochMark(3)
	l.Close()

	// Checkpoint taken AFTER the epoch-3 write landed (fuzzy: it contains
	// the newer version even though its header says epoch 2).
	rec := db.Table(0).Get(1, storage.K1(5))
	rec.ApplyValueThomas(3, storage.MakeTID(3, 1), row, false)
	ckpt := filepath.Join(dir, "ckpt")
	if _, err := WriteCheckpoint(db, ckpt, 2); err != nil {
		t.Fatal(err)
	}

	db2 := newDB(nil, 1)
	if _, _, err := Recover(db2, ckpt, []string{logPath}); err != nil {
		t.Fatal(err)
	}
	if v, _ := dbValue(db2, 5); v != 55 {
		t.Fatalf("k5=%d; replay must converge on the newest committed version", v)
	}
}

// TestRecoverRejectsDeleteOfNeverWrittenKey pins the ghost-delete
// check: in a log-only recovery every deleted key must have appeared as
// a value first (the engine only deletes rows its own logs created), so
// an orphan delete means a corrupt or mismatched log set.
func TestRecoverRejectsDeleteOfNeverWrittenKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.log")
	l, _ := Create(path)
	s := schema()
	row := s.NewRow()
	s.SetInt64(row, 0, 1)
	l.AppendWrite(0, 1, storage.K1(1), storage.MakeTID(2, 1), false, row)
	l.AppendDelete(0, 1, storage.K1(9), storage.MakeTID(2, 2)) // key 9 was never written
	l.AppendEpochMark(2)
	l.Close()

	db := newDB(nil, 1)
	if _, _, err := Recover(db, "", []string{path}); err == nil {
		t.Fatal("delete of a never-written key must fail log-only recovery")
	}
}

// TestRecoverGhostDeleteWaivedWithCheckpoint: with a checkpoint, the
// fuzzy scan can legitimately have reclaimed a tombstone between
// passing its bucket and the log suffix being cut, so the same orphan
// delete is indistinguishable from truncation and must be tolerated.
func TestRecoverGhostDeleteWaivedWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := newDB(map[uint64]int64{1: 100}, 2)
	ckpt := filepath.Join(dir, "ckpt")
	if _, err := WriteCheckpoint(db, ckpt, 2); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "w.log")
	l, _ := Create(path)
	l.AppendDelete(0, 1, storage.K1(9), storage.MakeTID(3, 1)) // not in checkpoint or log
	l.AppendEpochMark(3)
	l.Close()

	db2 := newDB(nil, 1)
	if _, _, err := Recover(db2, ckpt, []string{path}); err != nil {
		t.Fatalf("orphan delete must be waived under a checkpoint: %v", err)
	}
	if v, ok := dbValue(db2, 1); !ok || v != 100 {
		t.Fatalf("checkpoint row lost: %d %v", v, ok)
	}
	if _, ok := dbValue(db2, 9); ok {
		t.Fatal("deleted key resurfaced")
	}
}

// TestRecoverDeleteBeforeInsertAcrossLogs: worker A's log holds the
// epoch-3 delete, worker B's the epoch-2 insert, and replay visits the
// delete first. The ghost must clear when the insert arrives and the
// Thomas write rule must leave the key absent.
func TestRecoverDeleteBeforeInsertAcrossLogs(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.log")
	la, _ := Create(a)
	la.AppendDelete(0, 1, storage.K1(5), storage.MakeTID(3, 1))
	la.AppendEpochMark(3)
	la.Close()

	b := filepath.Join(dir, "b.log")
	lb, _ := Create(b)
	s := schema()
	row := s.NewRow()
	s.SetInt64(row, 0, 50)
	lb.AppendWrite(0, 1, storage.K1(5), storage.MakeTID(2, 1), false, row)
	lb.AppendEpochMark(3)
	lb.Close()

	db := newDB(nil, 1)
	if _, _, err := Recover(db, "", []string{a, b}); err != nil {
		t.Fatalf("legitimate out-of-order delete rejected: %v", err)
	}
	if _, ok := dbValue(db, 5); ok {
		t.Fatal("epoch-3 delete must win over the epoch-2 write")
	}
}

func TestMaxDurableEpochAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, e := range []uint64{3, 5, 4} {
		p := filepath.Join(dir, "w"+string(rune('0'+i))+".log")
		l, _ := Create(p)
		l.AppendEpochMark(e)
		l.Close()
		paths = append(paths, p)
	}
	got, err := MaxDurableEpoch(paths)
	if err != nil || got != 5 {
		t.Fatalf("max epoch %d err=%v", got, err)
	}
}

func TestLoggerOnPlainWriterCountsBytes(t *testing.T) {
	var sink bytes.Buffer
	l := NewLogger(&sink)
	row := schema().NewRow()
	if err := l.AppendWrite(0, 0, storage.K1(1), 5, false, row); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(true); err != nil { // sync on non-file is a no-op
		t.Fatal(err)
	}
	if int64(sink.Len()) != l.Bytes() {
		t.Fatalf("sink=%d accounted=%d", sink.Len(), l.Bytes())
	}
}
