// Package wal implements STAR's durability layer (§4.5.1): per-worker
// value logging (each entry is a single whole-record write tagged with
// its TID, so logs replay in any order under the Thomas write rule),
// epoch markers written at every replication fence (the group-commit
// boundary), fuzzy checkpoints that do not freeze the database, and
// recovery that corrects an inconsistent checkpoint by replaying logs.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"star/internal/storage"
)

// Record kinds on disk.
const (
	kindWrite     = 1
	kindEpochMark = 2
	kindDelete    = 3
)

// Entry is one durable record: a whole-row write or an epoch marker.
type Entry struct {
	Kind   uint8
	Table  storage.TableID
	Part   int32
	Key    storage.Key
	TID    uint64
	Absent bool
	Row    []byte
	Epoch  uint64 // for epoch marks
}

// Logger frames entries onto a writer with length+CRC headers.
// One logger per worker thread, as in the paper. The mutex exists for
// segment rotation: the checkpointer retires a file-backed logger's
// segment concurrently with the owning thread's appends.
type Logger struct {
	mu    sync.Mutex
	w     *bufio.Writer
	f     *os.File // nil when backed by a plain writer
	path  string   // current file path ("" when not file-backed)
	bytes int64
	buf   []byte
}

// NewLogger wraps any writer (benchmarks use counting sinks).
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: bufio.NewWriterSize(w, 1<<16)}
}

// Create opens a log file for appending.
func Create(path string) (*Logger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l := NewLogger(f)
	l.f = f
	l.path = path
	return l, nil
}

// Bytes returns the total payload bytes appended so far (cumulative
// across rotations).
func (l *Logger) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Path returns the current segment's file path ("" when the logger is
// not file-backed).
func (l *Logger) Path() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.path
}

// Rotate durably closes the current segment and continues appending to
// a fresh file at path. Entries already appended stay in the retired
// segment; the caller owns deciding when a checkpoint covers it and the
// file can be deleted.
func (l *Logger) Rotate(path string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: rotate on a non-file logger")
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.path = path
	l.w = bufio.NewWriterSize(f, 1<<16)
	return nil
}

func (l *Logger) append(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.bytes += int64(len(hdr) + len(payload))
	return nil
}

func encodeWrite(buf []byte, table storage.TableID, part int32, key storage.Key, tid uint64, absent bool, row []byte) []byte {
	buf = buf[:0]
	buf = append(buf, kindWrite, byte(table))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(part))
	buf = binary.LittleEndian.AppendUint64(buf, key.Hi)
	buf = binary.LittleEndian.AppendUint64(buf, key.Lo)
	buf = binary.LittleEndian.AppendUint64(buf, tid)
	if absent {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(row)))
	buf = append(buf, row...)
	return buf
}

// AppendWrite logs one whole-record write.
func (l *Logger) AppendWrite(table storage.TableID, part int32, key storage.Key, tid uint64, absent bool, row []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = encodeWrite(l.buf, table, part, key, tid, absent, row)
	return l.append(l.buf)
}

// AppendDelete logs a committed delete in compact form: the same header
// as a write but no row payload at all (a tombstone has no value, and
// the dedicated kind lets recovery distinguish "deleted" from "written
// with an empty row").
func (l *Logger) AppendDelete(table storage.TableID, part int32, key storage.Key, tid uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, kindDelete, byte(table))
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(part))
	l.buf = binary.LittleEndian.AppendUint64(l.buf, key.Hi)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, key.Lo)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, tid)
	return l.append(l.buf)
}

// AppendEpochMark logs a group-commit boundary: every entry of epoch e is
// durable once the mark for e is.
func (l *Logger) AppendEpochMark(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, kindEpochMark)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, epoch)
	return l.append(l.buf)
}

// Flush drains buffers; when sync is true and the logger is file-backed
// it also fsyncs (the fence flush, §4.5.1).
func (l *Logger) Flush(sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(sync)
}

func (l *Logger) flushLocked(sync bool) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if sync && l.f != nil {
		return l.f.Sync()
	}
	return nil
}

// Close flushes and closes the underlying file, if any.
func (l *Logger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(true); err != nil {
		return err
	}
	if l.f != nil {
		return l.f.Close()
	}
	return nil
}

// ---- reading ----

// Reader iterates a log stream, stopping cleanly at a torn tail.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps a reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReaderSize(r, 1<<16)} }

// Next returns the next entry. It returns io.EOF at a clean end and also
// at a torn/corrupt tail (the damaged suffix is ignored, as recovery
// treats unsynced bytes as never written).
func (r *Reader) Next() (*Entry, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, io.EOF
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > 1<<20 {
		return nil, io.EOF // implausible length: torn tail
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, io.EOF
	}
	if crc32.ChecksumIEEE(r.buf) != crc {
		return nil, io.EOF
	}
	return decode(r.buf)
}

func decode(b []byte) (*Entry, error) {
	if len(b) < 1 {
		return nil, errors.New("wal: empty payload")
	}
	switch b[0] {
	case kindEpochMark:
		if len(b) != 9 {
			return nil, errors.New("wal: bad epoch mark")
		}
		return &Entry{Kind: kindEpochMark, Epoch: binary.LittleEndian.Uint64(b[1:])}, nil
	case kindWrite:
		if len(b) < 2+4+16+8+1+2 {
			return nil, errors.New("wal: short write entry")
		}
		e := &Entry{Kind: kindWrite, Table: storage.TableID(b[1])}
		off := 2
		e.Part = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		e.Key.Hi = binary.LittleEndian.Uint64(b[off:])
		off += 8
		e.Key.Lo = binary.LittleEndian.Uint64(b[off:])
		off += 8
		e.TID = binary.LittleEndian.Uint64(b[off:])
		off += 8
		e.Absent = b[off] == 1
		off++
		rl := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if len(b) != off+rl {
			return nil, fmt.Errorf("wal: row length mismatch")
		}
		e.Row = append([]byte(nil), b[off:]...)
		return e, nil
	case kindDelete:
		if len(b) != 2+4+16+8 {
			return nil, errors.New("wal: bad delete entry")
		}
		e := &Entry{Kind: kindDelete, Table: storage.TableID(b[1]), Absent: true}
		off := 2
		e.Part = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		e.Key.Hi = binary.LittleEndian.Uint64(b[off:])
		off += 8
		e.Key.Lo = binary.LittleEndian.Uint64(b[off:])
		off += 8
		e.TID = binary.LittleEndian.Uint64(b[off:])
		return e, nil
	default:
		return nil, fmt.Errorf("wal: unknown kind %d", b[0])
	}
}

// ---- checkpointing ----

// WriteCheckpoint scans the database fuzzily (no freeze, §4.5.1) and
// writes every present record plus a starting epoch header. Returns
// bytes written.
func WriteCheckpoint(db *storage.DB, path string, epochStart uint64) (int64, error) {
	l, err := Create(path)
	if err != nil {
		return 0, err
	}
	if err := l.AppendEpochMark(epochStart); err != nil {
		return 0, err
	}
	for ti := 0; ti < db.NumTables(); ti++ {
		tbl := db.Table(storage.TableID(ti))
		nparts := db.NumPartitions()
		if tbl.Replicated() {
			nparts = 1
		}
		for p := 0; p < nparts; p++ {
			if !tbl.Replicated() && !db.Holds(p) {
				continue
			}
			part := tbl.Partition(p)
			if part == nil {
				continue
			}
			var ferr error
			part.Range(func(key storage.Key, tid uint64, val []byte) bool {
				ferr = l.AppendWrite(tbl.ID(), int32(p), key, tid, false, val)
				return ferr == nil
			})
			if ferr != nil {
				return l.Bytes(), ferr
			}
		}
	}
	n := l.Bytes()
	return n, l.Close()
}

// CheckpointEpoch reads the starting-epoch header of a checkpoint.
func CheckpointEpoch(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	e, err := NewReader(f).Next()
	if err != nil || e.Kind != kindEpochMark {
		return 0, errors.New("wal: checkpoint missing epoch header")
	}
	return e.Epoch, nil
}

// ---- recovery ----

// MaxDurableEpoch scans log files for the largest epoch mark: the last
// group commit known durable.
func MaxDurableEpoch(paths []string) (uint64, error) {
	var max uint64
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return 0, err
		}
		r := NewReader(f)
		for {
			e, err := r.Next()
			if err != nil {
				break
			}
			if e.Kind == kindEpochMark && e.Epoch > max {
				max = e.Epoch
			}
		}
		f.Close()
	}
	return max, nil
}

// recKey identifies one record across the recovery pass.
type recKey struct {
	Table storage.TableID
	Part  int32
	Key   storage.Key
}

// Recover rebuilds db from a checkpoint (optional, "" to skip) plus log
// files, applying writes with the Thomas write rule and discarding
// entries newer than the last durable epoch (they were never group-
// committed). Returns the recovered epoch and the number of applied
// writes.
//
// Deletes participate like writes (a newer tombstone beats an older row
// and vice versa, so per-worker logs still replay in any order), and
// they rebuild the secondary indexes' deletions just as inserts rebuild
// their additions. A delete whose target is never written by ANY log is
// rejected at the end of the pass: it can only come from a corrupt or
// mismatched log set, and applying it would silently materialise a
// record that never existed. The check is deferred to the end because a
// legitimate multi-log replay may visit a key's delete (one worker's
// log) before its insert (another's). With a checkpoint the check is
// waived: the fuzzy scan can reclaim a tombstone between passing its
// bucket and the log suffix being cut, so an orphan delete there is
// indistinguishable from legitimate truncation.
func Recover(db *storage.DB, checkpoint string, logs []string) (epoch uint64, applied int, err error) {
	durable, err := MaxDurableEpoch(logs)
	if err != nil {
		return 0, 0, err
	}
	written := make(map[recKey]struct{}) // keys seen as a value (checkpoint or log write)
	ghosts := make(map[recKey]struct{})  // keys materialised only by deletes so far
	apply := func(e *Entry) error {
		if e.Kind != kindWrite && e.Kind != kindDelete {
			return nil
		}
		if storage.TIDEpoch(e.TID) > durable && durable > 0 {
			return nil // beyond the last group commit: discard
		}
		tbl := db.Table(e.Table)
		part := tbl.Partition(int(e.Part))
		if part == nil {
			return nil // not held here
		}
		rk := recKey{e.Table, e.Part, e.Key}
		if e.Absent {
			if _, ok := written[rk]; !ok {
				ghosts[rk] = struct{}{}
			}
		} else {
			written[rk] = struct{}{}
			delete(ghosts, rk)
		}
		epoch := storage.TIDEpoch(e.TID)
		rec := part.GetOrCreate(e.Key, epoch)
		var prior []byte
		if e.Absent && tbl.NumIndexes() > 0 {
			if v, _, present := rec.ReadStable(nil); present {
				prior = v
			}
		}
		ok, _, inserted, deleted := rec.ApplyValueThomas(epoch, e.TID, e.Row, e.Absent)
		if ok {
			applied++
		}
		if inserted {
			// Secondary indexes are not logged: they rebuild here, from
			// the same absent→present transitions the live paths index.
			tbl.NoteInserted(int(e.Part), e.Key, e.Row, epoch)
		}
		if deleted {
			tbl.NoteDeleted(int(e.Part), e.Key, prior, epoch)
		}
		return nil
	}
	if checkpoint != "" {
		f, err := os.Open(checkpoint)
		if err != nil {
			return 0, 0, err
		}
		r := NewReader(f)
		for {
			e, rerr := r.Next()
			if rerr != nil {
				break
			}
			if err := apply(e); err != nil {
				f.Close()
				return 0, 0, err
			}
		}
		f.Close()
	}
	for _, p := range logs {
		f, err := os.Open(p)
		if err != nil {
			return 0, 0, err
		}
		r := NewReader(f)
		for {
			e, rerr := r.Next()
			if rerr != nil {
				break
			}
			if err := apply(e); err != nil {
				f.Close()
				return 0, 0, err
			}
		}
		f.Close()
	}
	if checkpoint == "" && len(ghosts) > 0 {
		for rk := range ghosts {
			return 0, 0, fmt.Errorf("wal: delete of never-written key %v in table %d part %d (corrupt or mismatched log set)", rk.Key, rk.Table, rk.Part)
		}
	}
	db.CommitEpoch()
	return durable, applied, nil
}
