package txn

import (
	"testing"

	"star/internal/storage"
)

type fakeProc struct {
	accs []Access
}

func (f *fakeProc) Name() string       { return "fake" }
func (f *fakeProc) Accesses() []Access { return f.accs }
func (f *fakeProc) Run(Ctx) error      { return nil }

func TestNewRequestFootprint(t *testing.T) {
	p := &fakeProc{accs: []Access{
		{Part: 3, Key: storage.K1(1)},
		{Part: 3, Key: storage.K1(2), Write: true},
		{Part: 5, Key: storage.K1(3)},
	}}
	r := NewRequest(p, 100)
	if r.Home != 3 {
		t.Fatalf("home=%d", r.Home)
	}
	if !r.Cross || len(r.Parts) != 2 {
		t.Fatalf("cross=%v parts=%v", r.Cross, r.Parts)
	}
	if r.GenAt != 100 {
		t.Fatalf("genAt=%d", r.GenAt)
	}

	single := NewRequest(&fakeProc{accs: []Access{{Part: 2, Key: storage.K1(9)}}}, 0)
	if single.Cross || single.Home != 2 {
		t.Fatalf("single-partition misclassified: %+v", single)
	}
}

func TestRWSetAddWriteMerges(t *testing.T) {
	var s RWSet
	s.AddWrite(1, 0, storage.K1(7), storage.AddInt64Op(0, 1))
	s.AddWrite(1, 0, storage.K1(7), storage.AddInt64Op(0, 2))
	s.AddWrite(1, 0, storage.K1(8), storage.AddInt64Op(0, 3))
	if len(s.Writes) != 2 {
		t.Fatalf("writes=%d, want merged 2", len(s.Writes))
	}
	if len(s.Writes[0].Ops) != 2 {
		t.Fatalf("ops not merged: %d", len(s.Writes[0].Ops))
	}
	if s.FindWrite(1, 0, storage.K1(8)) == nil || s.FindWrite(1, 0, storage.K1(99)) != nil {
		t.Fatal("FindWrite broken")
	}
}

func TestRWSetSortWritesGlobalOrder(t *testing.T) {
	var s RWSet
	s.AddWrite(2, 0, storage.K1(1))
	s.AddWrite(1, 1, storage.K1(9))
	s.AddWrite(1, 1, storage.K1(2))
	s.AddWrite(1, 0, storage.K2(5, 0))
	s.SortWrites()
	prev := s.Writes[0]
	for _, w := range s.Writes[1:] {
		if w.Table < prev.Table {
			t.Fatal("table order violated")
		}
		if w.Table == prev.Table && w.Part < prev.Part {
			t.Fatal("partition order violated")
		}
		if w.Table == prev.Table && w.Part == prev.Part {
			if w.Key.Hi < prev.Key.Hi || (w.Key.Hi == prev.Key.Hi && w.Key.Lo < prev.Key.Lo) {
				t.Fatal("key order violated")
			}
		}
		prev = w
	}
}

func TestRWSetMaxReadTID(t *testing.T) {
	var s RWSet
	s.AddRead(1, 0, storage.K1(1), nil, storage.MakeTID(3, 9))
	s.AddRead(1, 0, storage.K1(2), nil, storage.MakeTID(2, 100))
	if got := s.MaxReadTID(); got != storage.MakeTID(3, 9) {
		t.Fatalf("max=%s", storage.FormatTID(got))
	}
	rec := storage.NewRecord(storage.MakeTID(4, 1), []byte("x"))
	s.Writes = append(s.Writes, WriteEntry{Rec: rec})
	if got := s.MaxReadTID(); got != storage.MakeTID(4, 1) {
		t.Fatalf("max with write rec=%s", storage.FormatTID(got))
	}
}

func TestRWSetReset(t *testing.T) {
	var s RWSet
	s.AddRead(1, 0, storage.K1(1), nil, 5)
	s.AddInsert(1, 0, storage.K1(2), []byte("row"))
	s.Reset()
	if len(s.Reads) != 0 || len(s.Writes) != 0 {
		t.Fatal("reset failed")
	}
}

func TestAddInsertCopiesRow(t *testing.T) {
	var s RWSet
	row := []byte("abc")
	s.AddInsert(1, 0, storage.K1(1), row)
	row[0] = 'z'
	if string(s.Writes[0].Row) != "abc" {
		t.Fatal("insert row must be copied")
	}
}
