// Package txn defines the stored-procedure programming model shared by
// the STAR engine and every baseline engine: transactions are pre-defined
// procedures with declared access footprints (as in H-Store, Silo and
// Calvin), executed against a Ctx supplied by the engine.
package txn

import (
	"errors"

	"star/internal/storage"
)

// ErrUserAbort is returned by a procedure that aborts for application
// reasons (e.g. TPC-C NewOrder with an invalid item id). Engines do not
// retry user aborts.
var ErrUserAbort = errors.New("txn: aborted by application")

// ErrConflict is used by engine Ctx implementations to signal a
// concurrency-control abort (lock failure, failed validation, remote
// timeout). Engines retry conflicted transactions.
var ErrConflict = errors.New("txn: concurrency conflict")

// Access declares one element of a transaction's footprint.
type Access struct {
	Table storage.TableID
	Part  int
	Key   storage.Key
	Write bool
	// LockOnly marks a synthetic lock name (insert intents for
	// deterministic engines, secondary-index prefetch names); no record
	// is read or validated for it.
	LockOnly bool
	// IndexVal, when non-nil, marks this access as a secondary-index
	// prefetch: the procedure will resolve dependent keys at execution
	// time with Ctx.LookupIndex(Table, Part, Index, IndexVal). The Key
	// then names a synthetic lock (LockOnly) that serializes conflicting
	// lookups on deterministic engines, and push-based engines (Calvin)
	// resolve the lookup on the partition's master and ship the matches
	// (plus the matched rows) with the read set.
	IndexVal []byte
	// Index is the table's secondary-index id for IndexVal prefetches.
	Index int
}

// Procedure is one transaction instance: parameters plus logic.
type Procedure interface {
	// Name identifies the transaction type, e.g. "tpcc.payment".
	Name() string
	// Accesses returns the declared footprint. Engines that do not need
	// a-priori sets (OCC) may ignore it; deterministic engines (Calvin)
	// lock exactly this set before running.
	Accesses() []Access
	// Run executes against ctx. Returning ErrUserAbort rolls back.
	Run(ctx Ctx) error
}

// ReadOnlyMarker is implemented by procedures that perform no writes
// (TPC-C Stock-Level). Engines with epoch-fenced replicas may execute
// them against a local snapshot instead of routing them to a master.
type ReadOnlyMarker interface {
	ReadOnly() bool
}

// IsReadOnly reports whether p declares itself read-only.
func IsReadOnly(p Procedure) bool {
	ro, ok := p.(ReadOnlyMarker)
	return ok && ro.ReadOnly()
}

// DeferredMarker is implemented by procedures that must be queued and
// executed asynchronously rather than inline at their home partition —
// TPC-C Delivery's deferred execution mode (§2.7.2). Phase-switching
// engines route them to the single-master phase even when their
// footprint is single-partition; baselines without a deferral queue run
// them inline.
type DeferredMarker interface {
	Deferred() bool
}

// IsDeferred reports whether p requests deferred execution.
func IsDeferred(p Procedure) bool {
	d, ok := p.(DeferredMarker)
	return ok && d.Deferred()
}

// Ctx is the data access interface engines hand to procedures.
type Ctx interface {
	// Read returns a stable copy of a row; ok is false if the record is
	// absent or the engine has already decided to abort (procedures
	// should then return an error promptly).
	Read(t storage.TableID, part int, key storage.Key) (row []byte, ok bool)
	// Write buffers field mutations for commit.
	Write(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp)
	// Insert buffers a new row for commit.
	Insert(t storage.TableID, part int, key storage.Key, row []byte)
	// Delete buffers removal of an existing row for commit. Deleting a
	// key that is absent at commit time is a concurrency conflict (the
	// procedure is expected to have read the row first), so engines
	// abort and retry rather than silently no-op.
	Delete(t storage.TableID, part int, key storage.Key)
	// LookupIndex appends the primary keys stored under val in the
	// table's secondary index idx (by declaration order) to dst, in
	// ascending key order, and returns the extended slice. The view is
	// engine-defined: execution contexts see current state, the
	// snapshot-read context sees the last epoch fence, and push-based
	// deterministic engines serve remote partitions from pushed match
	// lists. Entries may overshoot (an index is maintained on insert
	// only), so procedures re-verify liveness by reading the record.
	LookupIndex(t storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key
}

// IndexTailReader is optionally implemented by Ctx implementations that
// can serve a bounded newest-first index lookup: the last (greatest-key)
// max matches, still appended to dst in ascending order. Procedures that
// only need the tail of a lookup (Order-Status's "most recent order")
// use it when available — typically one O(log n) descent — and fall
// back to LookupIndex (full materialisation) on contexts that cannot
// bound the walk (remote push/RPC resolution).
type IndexTailReader interface {
	LookupIndexTail(t storage.TableID, part, idx int, val []byte, max int, dst []storage.Key) []storage.Key
}

// Request wraps a generated procedure with its bookkeeping.
type Request struct {
	Proc Procedure
	// Home is the partition the request is routed to (its master node
	// executes it in partitioned-phase systems).
	Home int
	// Parts is the set of partitions the footprint touches.
	Parts []int
	// Cross reports len(Parts) > 1.
	Cross bool
	// GenAt is the (virtual) time the client issued the request;
	// latency is measured from here to result release.
	GenAt int64
	// Retries counts concurrency-conflict re-executions.
	Retries int
	// Origin is the endpoint a client response is routed back to (the
	// session gate that admitted the request); meaningful only when
	// Ticket is non-zero. Engine-internal requests leave both zero.
	Origin int
	// Ticket correlates the response with the originating session slot.
	// A committed request with a non-zero Ticket releases an explicit
	// client response at the group-commit fence.
	Ticket uint64
}

// NewRequest computes routing metadata from the procedure's footprint.
func NewRequest(p Procedure, genAt int64) *Request {
	r := &Request{}
	r.ResetFor(p, genAt)
	return r
}

// ResetFor re-initialises r in place for a new procedure, reusing the
// Parts backing array — the partitioned-phase worker keeps one scratch
// Request and routes every generated transaction through it, so
// steady-state single-partition commits allocate no Request at all.
// Footprints are a handful of partitions, so deduplication is a linear
// scan instead of a map.
func (r *Request) ResetFor(p Procedure, genAt int64) {
	r.Proc = p
	r.GenAt = genAt
	r.Retries = 0
	r.Origin, r.Ticket = 0, 0
	parts := r.Parts[:0]
	for _, a := range p.Accesses() {
		dup := false
		for _, q := range parts {
			if q == a.Part {
				dup = true
				break
			}
		}
		if !dup {
			parts = append(parts, a.Part)
		}
	}
	r.Parts = parts
	r.Home = 0
	if len(parts) > 0 {
		r.Home = parts[0]
	}
	r.Cross = len(parts) > 1
}

// Clone returns a heap copy of r with its own Parts array, for requests
// that escape the generating worker (deferred cross-partition routing).
func (r *Request) Clone() *Request {
	c := *r
	c.Parts = append([]int(nil), r.Parts...)
	return &c
}

// ReadEntry is one validated read.
type ReadEntry struct {
	Table storage.TableID
	Part  int
	Key   storage.Key
	Rec   *storage.Record
	TID   uint64
}

// WriteEntry is one buffered write (update via ops, insert via Row, or
// delete via the Delete flag).
type WriteEntry struct {
	Table  storage.TableID
	Part   int
	Key    storage.Key
	Rec    *storage.Record // resolved at commit when nil (inserts, remote)
	Ops    []storage.FieldOp
	Insert bool
	Delete bool
	Row    []byte
}

// RWSet accumulates a transaction's reads and writes.
type RWSet struct {
	Reads  []ReadEntry
	Writes []WriteEntry
}

// Reset clears the set for reuse. Entry payload buffers (Ops, Row) are
// kept with the truncated entries and reused by the next transaction's
// AddWrite/AddInsert, so a steady-state worker's write set allocates
// nothing.
func (s *RWSet) Reset() {
	s.Reads = s.Reads[:0]
	s.Writes = s.Writes[:0]
}

// AddRead records a validated read.
func (s *RWSet) AddRead(t storage.TableID, part int, key storage.Key, rec *storage.Record, tid uint64) {
	s.Reads = append(s.Reads, ReadEntry{Table: t, Part: part, Key: key, Rec: rec, TID: tid})
}

// nextWrite extends Writes by one entry, reviving the retired entry's
// Ops/Row capacity when the backing array already holds one.
func (s *RWSet) nextWrite(t storage.TableID, part int, key storage.Key) *WriteEntry {
	if len(s.Writes) < cap(s.Writes) {
		s.Writes = s.Writes[:len(s.Writes)+1]
	} else {
		s.Writes = append(s.Writes, WriteEntry{})
	}
	w := &s.Writes[len(s.Writes)-1]
	w.Table, w.Part, w.Key = t, part, key
	w.Rec = nil
	w.Insert = false
	w.Delete = false
	w.Ops = w.Ops[:0]
	w.Row = w.Row[:0]
	return w
}

// AddWrite merges ops into an existing entry for the same record or
// appends a new one. The ops slice is copied into the entry's own
// buffer, so callers may reuse the slice — but each FieldOp's Arg bytes
// are aliased until commit, so callers must not overwrite an Arg buffer
// they have already passed in within the same transaction.
func (s *RWSet) AddWrite(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	for i := range s.Writes {
		w := &s.Writes[i]
		if w.Table == t && w.Part == part && w.Key == key && !w.Insert && !w.Delete {
			w.Ops = append(w.Ops, ops...)
			return
		}
	}
	w := s.nextWrite(t, part, key)
	w.Ops = append(w.Ops, ops...)
}

// AddInsert records a new-row write. The row is copied.
func (s *RWSet) AddInsert(t storage.TableID, part int, key storage.Key, row []byte) {
	w := s.nextWrite(t, part, key)
	w.Insert = true
	w.Row = append(w.Row, row...)
}

// AddDelete records removal of an existing row. A pending update for the
// same key collapses into the delete (the row is going away, so its field
// mutations are moot). Deleting a row inserted by the same transaction is
// not supported — the commit-time existence check would abort it.
func (s *RWSet) AddDelete(t storage.TableID, part int, key storage.Key) {
	for i := range s.Writes {
		w := &s.Writes[i]
		if w.Table == t && w.Part == part && w.Key == key && !w.Insert {
			w.Delete = true
			w.Ops = w.Ops[:0]
			return
		}
	}
	w := s.nextWrite(t, part, key)
	w.Delete = true
}

// FindWrite returns the pending write for a key, or nil.
func (s *RWSet) FindWrite(t storage.TableID, part int, key storage.Key) *WriteEntry {
	for i := range s.Writes {
		w := &s.Writes[i]
		if w.Table == t && w.Part == part && w.Key == key {
			return w
		}
	}
	return nil
}

// SortWrites orders the write set globally (table, partition, key) —
// the deadlock-free lock order used at commit (§4.2). Write sets are a
// handful of entries, so this is an insertion sort: no reflection, no
// closure, no allocation (sort.Slice allocates its swapper even for a
// one-element slice, which would be the commit path's only allocation).
func (s *RWSet) SortWrites() {
	w := s.Writes
	for i := 1; i < len(w); i++ {
		for j := i; j > 0 && writeLess(&w[j], &w[j-1]); j-- {
			w[j], w[j-1] = w[j-1], w[j]
		}
	}
}

func writeLess(a, b *WriteEntry) bool {
	if a.Table != b.Table {
		return a.Table < b.Table
	}
	if a.Part != b.Part {
		return a.Part < b.Part
	}
	if a.Key.Hi != b.Key.Hi {
		return a.Key.Hi < b.Key.Hi
	}
	return a.Key.Lo < b.Key.Lo
}

// MaxReadTID returns the largest clean TID across reads and resolved
// write records — inputs to Silo TID rule (a).
func (s *RWSet) MaxReadTID() uint64 {
	var m uint64
	for i := range s.Reads {
		if t := storage.TIDClean(s.Reads[i].TID); t > m {
			m = t
		}
	}
	for i := range s.Writes {
		if r := s.Writes[i].Rec; r != nil {
			if t := storage.TIDClean(r.TID()); t > m {
				m = t
			}
		}
	}
	return m
}
