// Package txn defines the stored-procedure programming model shared by
// the STAR engine and every baseline engine: transactions are pre-defined
// procedures with declared access footprints (as in H-Store, Silo and
// Calvin), executed against a Ctx supplied by the engine.
package txn

import (
	"errors"
	"sort"

	"star/internal/storage"
)

// ErrUserAbort is returned by a procedure that aborts for application
// reasons (e.g. TPC-C NewOrder with an invalid item id). Engines do not
// retry user aborts.
var ErrUserAbort = errors.New("txn: aborted by application")

// ErrConflict is used by engine Ctx implementations to signal a
// concurrency-control abort (lock failure, failed validation, remote
// timeout). Engines retry conflicted transactions.
var ErrConflict = errors.New("txn: concurrency conflict")

// Access declares one element of a transaction's footprint.
type Access struct {
	Table storage.TableID
	Part  int
	Key   storage.Key
	Write bool
	// LockOnly marks a synthetic lock name (insert intents for
	// deterministic engines); no record is read or validated for it.
	LockOnly bool
}

// Procedure is one transaction instance: parameters plus logic.
type Procedure interface {
	// Name identifies the transaction type, e.g. "tpcc.payment".
	Name() string
	// Accesses returns the declared footprint. Engines that do not need
	// a-priori sets (OCC) may ignore it; deterministic engines (Calvin)
	// lock exactly this set before running.
	Accesses() []Access
	// Run executes against ctx. Returning ErrUserAbort rolls back.
	Run(ctx Ctx) error
}

// Ctx is the data access interface engines hand to procedures.
type Ctx interface {
	// Read returns a stable copy of a row; ok is false if the record is
	// absent or the engine has already decided to abort (procedures
	// should then return an error promptly).
	Read(t storage.TableID, part int, key storage.Key) (row []byte, ok bool)
	// Write buffers field mutations for commit.
	Write(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp)
	// Insert buffers a new row for commit.
	Insert(t storage.TableID, part int, key storage.Key, row []byte)
}

// Request wraps a generated procedure with its bookkeeping.
type Request struct {
	Proc Procedure
	// Home is the partition the request is routed to (its master node
	// executes it in partitioned-phase systems).
	Home int
	// Parts is the set of partitions the footprint touches.
	Parts []int
	// Cross reports len(Parts) > 1.
	Cross bool
	// GenAt is the (virtual) time the client issued the request;
	// latency is measured from here to result release.
	GenAt int64
	// Retries counts concurrency-conflict re-executions.
	Retries int
}

// NewRequest computes routing metadata from the procedure's footprint.
func NewRequest(p Procedure, genAt int64) *Request {
	accs := p.Accesses()
	seen := make(map[int]struct{}, 4)
	parts := make([]int, 0, 4)
	for _, a := range accs {
		if _, dup := seen[a.Part]; !dup {
			seen[a.Part] = struct{}{}
			parts = append(parts, a.Part)
		}
	}
	home := 0
	if len(parts) > 0 {
		home = parts[0]
	}
	return &Request{Proc: p, Home: home, Parts: parts, Cross: len(parts) > 1, GenAt: genAt}
}

// ReadEntry is one validated read.
type ReadEntry struct {
	Table storage.TableID
	Part  int
	Key   storage.Key
	Rec   *storage.Record
	TID   uint64
}

// WriteEntry is one buffered write (update via ops, or insert via Row).
type WriteEntry struct {
	Table  storage.TableID
	Part   int
	Key    storage.Key
	Rec    *storage.Record // resolved at commit when nil (inserts, remote)
	Ops    []storage.FieldOp
	Insert bool
	Row    []byte
}

// RWSet accumulates a transaction's reads and writes.
type RWSet struct {
	Reads  []ReadEntry
	Writes []WriteEntry
}

// Reset clears the set for reuse.
func (s *RWSet) Reset() {
	s.Reads = s.Reads[:0]
	s.Writes = s.Writes[:0]
}

// AddRead records a validated read.
func (s *RWSet) AddRead(t storage.TableID, part int, key storage.Key, rec *storage.Record, tid uint64) {
	s.Reads = append(s.Reads, ReadEntry{Table: t, Part: part, Key: key, Rec: rec, TID: tid})
}

// AddWrite merges ops into an existing entry for the same record or
// appends a new one.
func (s *RWSet) AddWrite(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	for i := range s.Writes {
		w := &s.Writes[i]
		if w.Table == t && w.Part == part && w.Key == key && !w.Insert {
			w.Ops = append(w.Ops, ops...)
			return
		}
	}
	s.Writes = append(s.Writes, WriteEntry{Table: t, Part: part, Key: key, Ops: ops})
}

// AddInsert records a new-row write.
func (s *RWSet) AddInsert(t storage.TableID, part int, key storage.Key, row []byte) {
	s.Writes = append(s.Writes, WriteEntry{
		Table: t, Part: part, Key: key, Insert: true,
		Row: append([]byte(nil), row...),
	})
}

// FindWrite returns the pending write for a key, or nil.
func (s *RWSet) FindWrite(t storage.TableID, part int, key storage.Key) *WriteEntry {
	for i := range s.Writes {
		w := &s.Writes[i]
		if w.Table == t && w.Part == part && w.Key == key {
			return w
		}
	}
	return nil
}

// SortWrites orders the write set globally (table, partition, key) —
// the deadlock-free lock order used at commit (§4.2).
func (s *RWSet) SortWrites() {
	sort.Slice(s.Writes, func(i, j int) bool {
		a, b := &s.Writes[i], &s.Writes[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Part != b.Part {
			return a.Part < b.Part
		}
		if a.Key.Hi != b.Key.Hi {
			return a.Key.Hi < b.Key.Hi
		}
		return a.Key.Lo < b.Key.Lo
	})
}

// MaxReadTID returns the largest clean TID across reads and resolved
// write records — inputs to Silo TID rule (a).
func (s *RWSet) MaxReadTID() uint64 {
	var m uint64
	for i := range s.Reads {
		if t := storage.TIDClean(s.Reads[i].TID); t > m {
			m = t
		}
	}
	for i := range s.Writes {
		if r := s.Writes[i].Rec; r != nil {
			if t := storage.TIDClean(r.TID()); t > m {
				m = t
			}
		}
	}
	return m
}
