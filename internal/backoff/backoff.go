// Package backoff computes capped exponential retry delays with jitter.
// Both reconnect paths use it — tcpnet's lazy link dial and the
// star-client's connection retry — so a cluster-wide restart does not
// turn into a synchronised reconnect storm: without jitter, every peer
// that observed the outage at the same moment re-dials at the same
// instants, and the listener absorbs the whole cluster's SYNs in bursts
// exactly when it is busiest.
package backoff

import "time"

// Policy is a capped exponential backoff: attempt 0 waits about Base,
// each following attempt doubles, capped at Max, with the top Jitter
// fraction of each delay randomised.
type Policy struct {
	Base time.Duration
	Max  time.Duration
	// Jitter is the randomised fraction of each delay in [0,1]: 0 is a
	// deterministic schedule, 0.5 spreads attempts over the top half of
	// the exponential envelope.
	Jitter float64
}

// Delay returns the wait before retry number attempt (0-based). rng01
// supplies the jitter sample in [0,1); callers own their randomness so
// schedules stay reproducible under seeded tests.
func (p Policy) Delay(attempt int, rng01 float64) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		lo := float64(d) * (1 - j)
		d = time.Duration(lo + rng01*(float64(d)-lo))
	}
	return d
}
