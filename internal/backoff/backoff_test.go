package backoff

import (
	"testing"
	"time"
)

func TestDelayEnvelope(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 320 * time.Millisecond, Jitter: 0.5}
	for attempt := 0; attempt < 12; attempt++ {
		full := 10 * time.Millisecond << attempt
		if full > p.Max {
			full = p.Max
		}
		for _, r := range []float64{0, 0.25, 0.999} {
			d := p.Delay(attempt, r)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d rng %.3f: delay %v outside [%v, %v]", attempt, r, d, full/2, full)
			}
		}
		// Jitter spreads: the extremes of the rng range must differ once
		// the envelope is wide enough to express it.
		if full >= 2*time.Millisecond && p.Delay(attempt, 0) == p.Delay(attempt, 0.999) {
			t.Fatalf("attempt %d: no jitter spread", attempt)
		}
	}
}

func TestDelayNoJitterIsDeterministic(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Max: 200 * time.Millisecond}
	want := []time.Duration{50, 100, 200, 200, 200}
	for i, w := range want {
		if d := p.Delay(i, 0.7); d != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

func TestDelayOverflowSafe(t *testing.T) {
	p := Policy{Base: time.Second, Max: 30 * time.Second, Jitter: 0.5}
	for attempt := 0; attempt < 100; attempt++ {
		if d := p.Delay(attempt, 0.5); d <= 0 || d > 30*time.Second {
			t.Fatalf("attempt %d: delay %v escaped the cap", attempt, d)
		}
	}
}
