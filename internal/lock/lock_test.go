package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"star/internal/storage"
)

func nm(k uint64) Name { return Name{Table: 1, Key: storage.K1(k)} }

func TestNoWaitBasicModes(t *testing.T) {
	lt := NewNoWait()
	if !lt.TryLock(nm(1), 10, false) || !lt.TryLock(nm(1), 11, false) {
		t.Fatal("shared locks must coexist")
	}
	if lt.TryLock(nm(1), 12, true) {
		t.Fatal("write lock over readers must fail (NO_WAIT)")
	}
	lt.Unlock(nm(1), 10)
	lt.Unlock(nm(1), 11)
	if !lt.TryLock(nm(1), 12, true) {
		t.Fatal("write lock on free entry failed")
	}
	if lt.TryLock(nm(1), 13, false) || lt.TryLock(nm(1), 13, true) {
		t.Fatal("locks over a writer must fail")
	}
	lt.Unlock(nm(1), 12)
	if lt.Len() != 0 {
		t.Fatalf("entries leaked: %d", lt.Len())
	}
}

func TestNoWaitReentrancyAndUpgrade(t *testing.T) {
	lt := NewNoWait()
	if !lt.TryLock(nm(1), 1, true) || !lt.TryLock(nm(1), 1, true) {
		t.Fatal("write reentry must succeed")
	}
	if !lt.TryLock(nm(1), 1, false) {
		t.Fatal("read under own write must succeed")
	}
	lt.Unlock(nm(1), 1)

	// Sole-reader upgrade succeeds; contended upgrade fails.
	if !lt.TryLock(nm(2), 1, false) || !lt.TryLock(nm(2), 1, true) {
		t.Fatal("sole-reader upgrade must succeed")
	}
	lt.Unlock(nm(2), 1)
	lt.TryLock(nm(3), 1, false)
	lt.TryLock(nm(3), 2, false)
	if lt.TryLock(nm(3), 1, true) {
		t.Fatal("upgrade with other readers must fail")
	}
	lt.Unlock(nm(3), 1)
	lt.Unlock(nm(3), 2)
}

func TestNoWaitUnlockUnknownIsNoop(t *testing.T) {
	lt := NewNoWait()
	lt.Unlock(nm(9), 1) // must not panic
	lt.TryLock(nm(9), 2, true)
	lt.Unlock(nm(9), 3) // not the owner: ignored
	if !lt.Held(nm(9), 2) {
		t.Fatal("wrong owner's unlock must not release")
	}
	lt.Unlock(nm(9), 2)
}

// Property: NO_WAIT never deadlocks by construction (no waiting), and a
// random interleave of TryLock/Unlock keeps the invariant that a writer
// excludes everyone else.
func TestNoWaitExclusionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lt := NewNoWait()
		type hold struct {
			owner int
			write bool
		}
		held := map[uint64][]hold{}
		for i := 0; i < 300; i++ {
			k := uint64(rng.Intn(5))
			owner := rng.Intn(4)
			write := rng.Intn(2) == 0
			if rng.Intn(3) == 0 {
				lt.Unlock(nm(k), owner)
				var kept []hold
				for _, h := range held[k] {
					if h.owner != owner {
						kept = append(kept, h)
					}
				}
				held[k] = kept
				continue
			}
			if lt.TryLock(nm(k), owner, write) {
				// Model the resulting state.
				var kept []hold
				for _, h := range held[k] {
					if h.owner != owner {
						kept = append(kept, h)
					}
				}
				held[k] = append(kept, hold{owner, write})
				// Invariant: at most one writer, and no readers with it.
				writers, readers := 0, 0
				for _, h := range held[k] {
					if h.write {
						writers++
					} else {
						readers++
					}
				}
				if writers > 1 || (writers == 1 && readers > 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDetGrantsInOrder(t *testing.T) {
	d := NewDet()
	var order []uint64
	mk := func(id uint64, n int) *DetTxn {
		var tx *DetTxn
		tx = NewDetTxn(id, n, func() { order = append(order, tx.ID) })
		return tx
	}
	t1 := mk(1, 1)
	t2 := mk(2, 1)
	t3 := mk(3, 1)
	d.Acquire(nm(1), t1, true) // granted immediately
	d.Acquire(nm(1), t2, true) // queues
	d.Acquire(nm(1), t3, true) // queues behind t2
	if !t1.Ready() || t2.Ready() || t3.Ready() {
		t.Fatal("initial grant state wrong")
	}
	d.Release(nm(1), t1)
	if !t2.Ready() || t3.Ready() {
		t.Fatal("t2 must be granted next, t3 must wait")
	}
	d.Release(nm(1), t2)
	d.Release(nm(1), t3)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order %v, want [1 2 3]", order)
	}
	if d.Len() != 0 {
		t.Fatal("entries leaked")
	}
}

func TestDetReaderRunGrantedTogether(t *testing.T) {
	d := NewDet()
	ready := map[uint64]bool{}
	mk := func(id uint64, n int) *DetTxn {
		var tx *DetTxn
		tx = NewDetTxn(id, n, func() { ready[tx.ID] = true })
		return tx
	}
	w := mk(1, 1)
	r1 := mk(2, 1)
	r2 := mk(3, 1)
	w2 := mk(4, 1)
	d.Acquire(nm(5), w, true)
	d.Acquire(nm(5), r1, false)
	d.Acquire(nm(5), r2, false)
	d.Acquire(nm(5), w2, true)
	d.Release(nm(5), w)
	if !ready[2] || !ready[3] {
		t.Fatal("consecutive readers must be granted together")
	}
	if ready[4] {
		t.Fatal("writer must wait for readers")
	}
	d.Release(nm(5), r1)
	d.Release(nm(5), r2)
	if !ready[4] {
		t.Fatal("writer granted after readers release")
	}
	d.Release(nm(5), w2)
}

func TestDetNoBargingPastQueue(t *testing.T) {
	d := NewDet()
	mk := func(id uint64, n int) *DetTxn { return NewDetTxn(id, n, nil) }
	r1 := mk(1, 1)
	w := mk(2, 1)
	r2 := mk(3, 1)
	d.Acquire(nm(1), r1, false) // granted
	d.Acquire(nm(1), w, true)   // queues
	d.Acquire(nm(1), r2, false) // must NOT barge past the queued writer
	if r2.Ready() {
		t.Fatal("reader barged past a queued writer: determinism violated")
	}
}

func TestDetMultiLockTxnReadyOnlyWhenAllGranted(t *testing.T) {
	d := NewDet()
	fired := 0
	var tx *DetTxn
	tx = NewDetTxn(1, 2, func() { fired++ })
	d.Acquire(nm(1), tx, true)
	if tx.Ready() || fired != 0 {
		t.Fatal("must wait for both locks")
	}
	d.Acquire(nm(2), tx, true)
	if !tx.Ready() || fired != 1 {
		t.Fatalf("ready=%v fired=%d", tx.Ready(), fired)
	}
}
