// Package lock provides the two lock managers the baselines need:
//
//   - NoWait: a read/write lock table with the NO_WAIT deadlock-
//     prevention policy (abort on conflict), used by Dist. S2PL — the
//     most scalable policy per Harding et al., as cited by the paper.
//   - Det: Calvin's deterministic lock manager, which grants locks to
//     transactions strictly in their global batch order; waiters queue
//     FIFO so no deadlock is possible.
package lock

import (
	"sync"

	"star/internal/storage"
)

// Name identifies a lockable object.
type Name struct {
	Table storage.TableID
	Key   storage.Key
}

// NoWait is a lock table with shared/exclusive modes and abort-on-
// conflict acquisition. Safe for concurrent use.
type NoWait struct {
	mu sync.Mutex
	m  map[Name]*nwEntry
}

type nwEntry struct {
	readers map[int]struct{} // owner ids
	writer  int              // owner id, -1 if none
}

// NewNoWait returns an empty lock table.
func NewNoWait() *NoWait {
	return &NoWait{m: make(map[Name]*nwEntry)}
}

// TryLock attempts to acquire (Name) in the given mode for owner.
// It returns false on any conflict (NO_WAIT). Re-acquisition by the same
// owner succeeds; a read-held lock cannot be upgraded (callers acquire at
// write mode up front using the declared footprint).
func (t *NoWait) TryLock(n Name, owner int, write bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[n]
	if e == nil {
		e = &nwEntry{readers: make(map[int]struct{}), writer: -1}
		t.m[n] = e
	}
	if write {
		if e.writer == owner {
			return true
		}
		if e.writer != -1 || len(e.readers) > 0 {
			// Sole-reader upgrade is allowed; anything else conflicts.
			if _, r := e.readers[owner]; r && len(e.readers) == 1 && e.writer == -1 {
				delete(e.readers, owner)
				e.writer = owner
				return true
			}
			return false
		}
		e.writer = owner
		return true
	}
	if e.writer == owner {
		return true // write lock covers reads
	}
	if e.writer != -1 {
		return false
	}
	e.readers[owner] = struct{}{}
	return true
}

// Unlock releases owner's hold on n (either mode). Unknown holds are
// ignored so abort paths can blanket-release.
func (t *NoWait) Unlock(n Name, owner int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[n]
	if e == nil {
		return
	}
	if e.writer == owner {
		e.writer = -1
	}
	delete(e.readers, owner)
	if e.writer == -1 && len(e.readers) == 0 {
		delete(t.m, n)
	}
}

// Held reports whether owner holds n in any mode (test helper).
func (t *NoWait) Held(n Name, owner int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[n]
	if e == nil {
		return false
	}
	if e.writer == owner {
		return true
	}
	_, ok := e.readers[owner]
	return ok
}

// Len returns the number of locked names (test helper).
func (t *NoWait) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// ---- deterministic (Calvin) lock manager ----

// DetTxn tracks how many lock grants a transaction is still waiting for.
// When the count reaches zero the onReady callback fires exactly once
// (on the goroutine that performed the final grant).
type DetTxn struct {
	ID      uint64
	pending int
	onReady func()
}

// NewDetTxn builds a transaction handle expecting `locks` grants.
func NewDetTxn(id uint64, locks int, onReady func()) *DetTxn {
	return &DetTxn{ID: id, pending: locks, onReady: onReady}
}

func (d *DetTxn) granted() {
	d.pending--
	if d.pending == 0 && d.onReady != nil {
		d.onReady()
	}
}

// Ready reports whether all locks are held.
func (d *DetTxn) Ready() bool { return d.pending <= 0 }

// Det is one lock-manager thread's shard of Calvin's lock table.
// Acquire must be called in global transaction order; releases may happen
// in any order. Not internally synchronised: each shard is owned by one
// lock-manager process (Calvin-x partitions the lock space x ways).
type Det struct {
	m map[Name]*detEntry
}

type detEntry struct {
	holders map[*DetTxn]bool // value: held in write mode
	queue   []detReq
}

type detReq struct {
	txn   *DetTxn
	write bool
}

// NewDet returns an empty deterministic lock shard.
func NewDet() *Det { return &Det{m: make(map[Name]*detEntry)} }

// Acquire requests n for txn. If the lock is free (or read-compatible
// with all current holders and no one queues ahead), it is granted
// immediately; otherwise the request queues FIFO.
func (d *Det) Acquire(n Name, txn *DetTxn, write bool) {
	e := d.m[n]
	if e == nil {
		e = &detEntry{holders: make(map[*DetTxn]bool)}
		d.m[n] = e
	}
	if held, ok := e.holders[txn]; ok {
		// Re-acquisition by the same transaction (duplicate declared
		// access): keep the stronger mode, count the grant.
		if write && !held {
			e.holders[txn] = true
		}
		txn.granted()
		return
	}
	if e.grantable(write) {
		e.holders[txn] = write
		txn.granted()
		return
	}
	e.queue = append(e.queue, detReq{txn: txn, write: write})
}

func (e *detEntry) grantable(write bool) bool {
	if len(e.queue) > 0 {
		return false // strict FIFO: no barging past earlier txns
	}
	if len(e.holders) == 0 {
		return true
	}
	if write {
		return false
	}
	for _, w := range e.holders {
		if w {
			return false
		}
	}
	return true
}

// Release drops txn's hold on n and grants to queued requests in order
// (a freed write lock may admit a run of consecutive readers).
func (d *Det) Release(n Name, txn *DetTxn) {
	e := d.m[n]
	if e == nil {
		return
	}
	delete(e.holders, txn)
	for len(e.queue) > 0 {
		head := e.queue[0]
		if len(e.holders) == 0 {
			// grant head unconditionally
		} else if head.write {
			break
		} else {
			compatible := true
			for _, w := range e.holders {
				if w {
					compatible = false
					break
				}
			}
			if !compatible {
				break
			}
		}
		e.holders[head.txn] = head.write
		e.queue = e.queue[1:]
		head.txn.granted()
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(d.m, n)
	}
}

// Len returns the number of active lock entries (test helper).
func (d *Det) Len() int { return len(d.m) }
