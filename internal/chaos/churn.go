// Membership-churn soak: the elastic-membership variant of the chaos
// harness. The cluster boots with one dark spare slot, the fault
// schedule fires on the boot members, and a join request for the spare
// arrives while those faults are still live — so the snapshot
// migration itself runs through drops, duplicates, reorders, a
// partition and a crash window, and the coordinator's refuse-while-
// failed rule actually gets exercised (the submitter just keeps
// retrying, exactly like the star-node -join loop). After heal the
// join must land, the enlarged cluster must keep committing, and a
// drain must hand the spare's partitions back with every surviving
// replica byte-identical.
package chaos

import (
	"fmt"
	"time"

	"star/internal/core"
	"star/internal/faultnet"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/workload/tpcc"
)

// RunChurnSoak drives one membership-churn soak from the seed. Slot
// o.Nodes is provisioned dark (capacity o.Nodes+1, boot members
// 0..o.Nodes-1); it is joined under fire, verified, drained back out,
// and verified again. Two runs of the same seed return identical
// Committed, Digest and Injected values.
func RunChurnSoak(seed int64, o Options) (Result, error) {
	o = o.withDefaults()
	// The plan draws its victims from the BOOT members (GeneratePlan
	// never touches ids >= o.Nodes), but the per-frame Data rules match
	// AnyNode — the joiner's snapshot transfer rides through them too.
	plan := GeneratePlan(seed, o)
	s := rt.NewSim()
	defer s.Stop()

	capacity := o.Nodes + 1
	joiner := o.Nodes
	nparts := capacity * o.Workers
	tc := tpcc.Config{
		Warehouses:           nparts,
		Districts:            2,
		CustomersPerDistrict: 64,
		Items:                256,
		CrossPctStockLevel:   10,
		CrossPctOrderStatus:  10,
	}
	tc.SetFullMix()
	tc.TrimPct = 4
	tc.TrimRetain = 8
	wl := tpcc.New(tc)

	inner := simnet.New(s, simnet.Config{
		Nodes:     capacity + 1, // + coordinator endpoint
		Latency:   50 * time.Microsecond,
		Jitter:    10 * time.Microsecond,
		Bandwidth: 600e6,
		Seed:      seed,
	})
	fn := faultnet.Wrap(s, inner, plan)
	members := make([]int, o.Nodes)
	for i := range members {
		members[i] = i
	}
	cfg := core.Config{
		RT:             s,
		Nodes:          capacity,
		FullReplicas:   1,
		WorkersPerNode: o.Workers,
		Workload:       wl,
		Iteration:      2 * time.Millisecond,
		Seed:           seed,
		SnapshotReads:  true,
		Transport:      fn,
		Members:        members,
	}
	e := core.New(cfg)

	// Fault phase: same operator loop as RunSoak (rejoin each crashed
	// node as its window closes), plus the join pressure — from a quarter
	// of the way in, keep re-submitting the join until the topology
	// carries it. Most submissions are refused (members are failed, or a
	// fault window ate the snapshot transfer and the migration timed
	// out); refusal-and-retry is the protocol under test.
	const slice = 5 * time.Millisecond
	crashSeen := map[int]bool{}
	joinAsked := false
	for i := 0; s.Now() < o.Duration; i++ {
		s.Run(s.Now() + slice)
		if halted, reason := e.Halted(); halted {
			return Result{}, fmt.Errorf("seed %d: cluster halted mid-soak: %s", seed, reason)
		}
		for _, c := range plan.Crashes {
			if fn.CrashActive(c.Node) {
				crashSeen[c.Node] = true
			} else if crashSeen[c.Node] {
				crashSeen[c.Node] = false
				o.Logf("churn: seed %d: crash window on node %d closed at epoch %d, rejoining", seed, c.Node, fn.Epoch())
				e.RecoverNode(c.Node)
			}
		}
		if s.Now() >= o.Duration/4 && i%8 == 0 && !e.Topology().IsMember(joiner) {
			if !joinAsked {
				joinAsked = true
				o.Logf("churn: seed %d: submitting join of slot %d at epoch %d (faults live)", seed, joiner, fn.Epoch())
			}
			e.RequestJoin(joiner)
		}
	}
	if c := e.Stats().Committed; c == 0 {
		return Result{}, fmt.Errorf("seed %d: nothing committed under faults", seed)
	}

	// Heal and converge, with the join as an extra goalpost: every boot
	// member back, the joiner a member mastering its stripe, and all
	// replica checksums byte-identical. Virtual-time budget as in
	// RunSoak — a migration parked in a recovery gather must be outwaited.
	fn.Heal()
	o.Logf("churn: seed %d: healed at epoch %d, injected %v", seed, fn.Epoch(), fn.Injected())
	var lastErr error
	converged := false
	budget := s.Now() + 12*time.Second
	for attempt := 0; s.Now() < budget && !converged; attempt++ {
		failed := e.FailedNodes()
		for _, id := range failed {
			e.RecoverNode(id)
		}
		if !e.Topology().IsMember(joiner) {
			e.RequestJoin(joiner)
		}
		if attempt%20 == 19 {
			o.Logf("churn: seed %d: converging at epoch %d, failed=%v, member(%d)=%v, last: %v",
				seed, fn.Epoch(), failed, joiner, e.Topology().IsMember(joiner), lastErr)
		}
		s.Run(s.Now() + 30*time.Millisecond)
		if halted, reason := e.Halted(); halted {
			return Result{}, fmt.Errorf("seed %d: cluster halted post-heal: %s", seed, reason)
		}
		e.Freeze()
		s.Run(s.Now() + 30*time.Millisecond)
		lastErr = e.CheckReplicaConsistency()
		if lastErr == nil && len(e.FailedNodes()) == 0 && e.Topology().IsMember(joiner) {
			converged = true
			break
		}
		e.Unfreeze()
	}
	if !converged {
		if lastErr == nil {
			lastErr = fmt.Errorf("failed=%v, joiner member=%v", e.FailedNodes(), e.Topology().IsMember(joiner))
		}
		return Result{}, fmt.Errorf("seed %d: no convergence after heal: %w", seed, lastErr)
	}
	topo := e.Topology()
	if got := topo.MasterOf(joiner * o.Workers); got != joiner {
		return Result{}, fmt.Errorf("seed %d: joined topology v%d does not master partition %d on slot %d (got %d)",
			seed, topo.Version, joiner*o.Workers, joiner, got)
	}
	o.Logf("churn: seed %d: slot %d joined, topology v%d", seed, joiner, topo.Version)

	// The enlarged cluster must do real work: commits have to keep
	// flowing across the new topology version before we shrink it again.
	preDrain := e.Stats().Committed
	e.Unfreeze()
	s.Run(s.Now() + 50*time.Millisecond)
	if c := e.Stats().Committed; c <= preDrain {
		return Result{}, fmt.Errorf("seed %d: no commits on the joined topology (stuck at %d)", seed, preDrain)
	}

	// Drain the joiner back out: its partitions migrate to the survivors
	// at a fence, the topology drops it, and the engine's drain signal
	// (what a star-node process exits on) must fire for exactly that slot.
	e.RequestDrain(joiner)
	budget = s.Now() + 12*time.Second
	for s.Now() < budget && e.Topology().IsMember(joiner) {
		s.Run(s.Now() + 30*time.Millisecond)
		if halted, reason := e.Halted(); halted {
			return Result{}, fmt.Errorf("seed %d: cluster halted during drain: %s", seed, reason)
		}
	}
	if e.Topology().IsMember(joiner) {
		return Result{}, fmt.Errorf("seed %d: drain of slot %d never installed", seed, joiner)
	}
	gotDrain := -1
	for s.Now() < budget && gotDrain < 0 {
		select {
		case id := <-e.Drained():
			gotDrain = id
		default:
			s.Run(s.Now() + 5*time.Millisecond)
		}
	}
	if gotDrain != joiner {
		return Result{}, fmt.Errorf("seed %d: drain installed but Drained() signalled %d, want %d", seed, gotDrain, joiner)
	}

	// Final verification on the shrunk cluster.
	converged = false
	budget = s.Now() + 12*time.Second
	for s.Now() < budget && !converged {
		s.Run(s.Now() + 30*time.Millisecond)
		e.Freeze()
		s.Run(s.Now() + 30*time.Millisecond)
		lastErr = e.CheckReplicaConsistency()
		if lastErr == nil && len(e.FailedNodes()) == 0 {
			converged = true
			break
		}
		e.Unfreeze()
	}
	if !converged {
		return Result{}, fmt.Errorf("seed %d: no convergence after drain: %w", seed, lastErr)
	}
	o.Logf("churn: seed %d: slot %d drained, topology v%d", seed, joiner, e.Topology().Version)

	digest := uint64(1469598103934665603)
	for p := 0; p < cfg.NumPartitions(); p++ {
		digest ^= dbChecksum(e, p)
		digest *= 1099511628211
	}
	st := e.Stats()
	return Result{
		Committed: st.Committed,
		Digest:    digest,
		Epoch:     fn.Epoch(),
		Injected:  fn.Injected(),
	}, nil
}
