package chaos

import (
	"flag"
	"reflect"
	"testing"
)

// churnSeed reruns the membership-churn soak on one specific seed — the
// one-command reproduction path for a nightly-matrix failure:
//
//	go test ./internal/chaos -run TestChurnSoak -v -args -churn.seed=42
var churnSeed = flag.Int64("churn.seed", 0, "run the membership-churn soak on this single seed instead of the default matrix")

func churnSeeds() []int64 {
	if *churnSeed != 0 {
		return []int64{*churnSeed}
	}
	return []int64{1, 2}
}

// TestChurnSoakConvergesFixedSeed is the pinned acceptance run for
// elastic membership under fire: a join submitted while the fault
// schedule is still dropping, duplicating, reordering, partitioning and
// crashing must land after heal, the enlarged cluster must keep
// committing, and the subsequent drain must leave every surviving
// replica byte-identical.
func TestChurnSoakConvergesFixedSeed(t *testing.T) {
	for _, seed := range churnSeeds() {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			res, err := RunChurnSoak(seed, Options{Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("seed %d: committed=%d epoch=%d digest=%016x injected=%v",
				seed, res.Committed, res.Epoch, res.Digest, res.Injected)
			if res.Committed == 0 {
				t.Fatal("churn soak committed nothing")
			}
			for _, k := range []string{"fault_drops", "fault_dups", "fault_reorders", "fault_part_drops", "fault_crash_drops"} {
				if res.Injected[k] == 0 {
					t.Errorf("fault family %s never fired (injected=%v)", k, res.Injected)
				}
			}
		})
	}
}

// TestChurnSoakDeterministicReplay pins that the churn soak is a pure
// function of its seed, join/drain fences included.
func TestChurnSoakDeterministicReplay(t *testing.T) {
	seed := churnSeeds()[0]
	a, err := RunChurnSoak(seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurnSoak(seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed {
		t.Errorf("committed diverged across replays: %d vs %d", a.Committed, b.Committed)
	}
	if a.Digest != b.Digest {
		t.Errorf("database digest diverged across replays: %016x vs %016x", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a.Injected, b.Injected) {
		t.Errorf("injection counters diverged across replays: %v vs %v", a.Injected, b.Injected)
	}
}
