// Package chaos is the seeded fault-schedule soak harness: it generates
// randomized-but-deterministic faultnet plans, drives a full-mix TPC-C
// cluster through them on the simulated runtime, and asserts the
// invariants the codebase already knows how to check — the cluster
// never halts on survivable faults, commits keep flowing, a
// read-your-own-writes session probe is never served a snapshot older
// than its token, and after the faults heal every replica converges to
// byte-identical partition+index checksums.
//
// Everything is a pure function of the seed: the workload, the fault
// plan, and the simulated runtime are all seeded, so a failing seed
// replays bit-identically (see TestChaosSoakDeterministicReplay, which
// pins that two runs of the same seed produce the same committed count
// and the same database digest). Reproduce a CI failure with:
//
//	go test ./internal/chaos -run TestChaosSoak -v -args -chaos.seed=<seed>
//
// The multi-process variant of the same idea drives `star-node -faults
// plan.json` over real TCP; see cmd/star-node's chaos test.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"star/internal/core"
	"star/internal/faultnet"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/workload/tpcc"
)

// Options scales a soak. The zero value selects the defaults.
type Options struct {
	Nodes    int           // cluster size f+k (default 4; FullReplicas is 1)
	Workers  int           // workers (= owned partitions) per node (default 2)
	Duration time.Duration // virtual time under faults before Heal (default 400ms)

	// Fault families to include in the generated plan. NoX naming keeps
	// the zero Options meaning "everything on" — the interesting soak.
	NoDrops, NoDups, NoReorders, NoPartition, NoCrash bool

	// Trace, when set, receives the coordinator's per-epoch timeline
	// (JSONL, core.TraceEvent) — the soak's flight recorder: which epochs
	// ran which phase, what committed where, and which fault counters
	// were climbing when a seed went sideways.
	Trace io.Writer

	// Logf, when set, receives progress lines (tests pass t.Logf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// GeneratePlan derives one fault schedule from the seed: per-frame
// drop/dup/reorder rules on the Data class (request forwards and
// snapshot transfer — the plane designed to tolerate lossy, at-least-
// once delivery), one asymmetric partition between two partial
// replicas, and one crash/heal window on a partial replica — all keyed
// to bounded epoch windows, so the plan is self-terminating even
// without an explicit Heal.
//
// Per-frame probability faults are deliberately NOT generated for the
// Control and Replication classes: those streams ride per-link
// reliable FIFO order (a TCP stream delivers in order or the whole
// link dies — it never silently drops an interior frame), and the
// replication fence counts cumulative entries against that guarantee.
// Whole-link failures are the real-world failure mode for them, and
// the partition and crash windows sever Control and Replication
// wholesale — that is the failure-detection/eviction/rejoin path under
// test. Node 0 (the sole full replica) is never crashed or partitioned
// away: losing the last full copy is a designed halt (§4.5 case 2),
// not a survivable fault.
func GeneratePlan(seed int64, o Options) faultnet.Plan {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	p := faultnet.Plan{Seed: seed}
	// Epochs start at 2; Iteration is ~2ms virtual, so windows in the
	// [4, 40) range land well inside the default 400ms soak.
	ruleWin := faultnet.Window{FromEpoch: 4, UntilEpoch: 4 + 16 + uint64(rng.Intn(16))}
	// One combined rule: faultnet resolves the first matching rule with a
	// single uniform draw across drop/dup/reorder, so the three families
	// must share a Rule (three stacked rules would let the first shadow
	// the rest).
	ru := faultnet.Rule{
		Src: faultnet.AnyNode, Dst: faultnet.AnyNode, Class: int(transport.Data),
		Window: ruleWin,
	}
	if !o.NoDrops {
		ru.Drop = 0.01 + 0.03*rng.Float64()
	}
	if !o.NoDups {
		ru.Dup = 0.02 + 0.04*rng.Float64()
	}
	if !o.NoReorders {
		ru.Reorder = 0.03 + 0.05*rng.Float64()
		ru.ReorderSpan = 2 + rng.Intn(4)
	}
	if ru.Drop+ru.Dup+ru.Reorder > 0 {
		p.Rules = append(p.Rules, ru)
	}
	partials := o.Nodes - 1 // nodes 1..Nodes-1 (node 0 is the full replica)
	var partDst int
	if !o.NoPartition && partials >= 2 {
		// Asymmetric inbound partition: everyone can hear dst, dst hears
		// no one. A single partial→partial link carries too little Data
		// traffic in-process to guarantee drops; deafening one node hits
		// control frames every epoch, forces the failure detector to
		// evict it mid-soak, and exercises the rejoin path after heal.
		partDst = 1 + rng.Intn(partials)
		from := 6 + uint64(rng.Intn(4))
		p.Partitions = append(p.Partitions, faultnet.PartitionSpec{
			Src: faultnet.AnyNode, Dst: partDst,
			Window: faultnet.Window{FromEpoch: from, UntilEpoch: from + 4 + uint64(rng.Intn(4))},
		})
	}
	if !o.NoCrash && partials >= 1 {
		victim := 1 + rng.Intn(partials)
		if victim == partDst && partials >= 2 {
			// Keep the crash victim distinct from the partitioned node so
			// both fault families draw real traffic (a node already
			// evicted by the partition attracts none to blackhole).
			victim = 1 + victim%partials
		}
		from := 10 + uint64(rng.Intn(6))
		p.Crashes = append(p.Crashes, faultnet.CrashSpec{
			Node:   victim,
			Window: faultnet.Window{FromEpoch: from, UntilEpoch: from + 4 + uint64(rng.Intn(4))},
		})
	}
	return p
}

// Result is what one soak run produced. Two runs of the same seed must
// return identical Committed, Digest and Injected values.
type Result struct {
	Committed int64            // cluster-wide committed transactions
	Digest    uint64           // folded partition+index checksums, post-convergence
	Epoch     uint64           // last cluster epoch observed on the wire
	Injected  map[string]int64 // per-fault-type injection counters

	// Read-your-own-writes probe accounting: reads served from fence
	// snapshots vs refused for freshness (the refusals prove replica lag
	// actually exercised the token check during the soak).
	ProbeServed    int64
	ProbeFallbacks int64
}

// probeRead is the session probe's transaction: one warehouse-row read,
// scoped to a partition its target node masters (so a refusal is always
// the freshness check, never partition residency).
type probeRead struct {
	part int
	accs []txn.Access
}

func newProbeRead(part int) *probeRead {
	p := &probeRead{part: part}
	p.accs = []txn.Access{{Table: tpcc.TWarehouse, Part: part, Key: tpcc.WKey(part)}}
	return p
}

func (p *probeRead) Name() string           { return "chaos.probe-read" }
func (p *probeRead) Accesses() []txn.Access { return p.accs }
func (p *probeRead) ReadOnly() bool         { return true }
func (p *probeRead) Run(ctx txn.Ctx) error {
	if _, ok := ctx.Read(tpcc.TWarehouse, p.part, tpcc.WKey(p.part)); !ok {
		return txn.ErrConflict
	}
	return nil
}

// RunSoak drives one full-mix TPC-C chaos soak from the seed: generate
// the plan, run Duration of virtual time under faults (rejoining
// crashed nodes as their windows close), heal, converge, verify. The
// returned error is the verdict — nil means every invariant held.
func RunSoak(seed int64, o Options) (Result, error) {
	o = o.withDefaults()
	plan := GeneratePlan(seed, o)
	s := rt.NewSim()
	defer s.Stop()

	nparts := o.Nodes * o.Workers
	tc := tpcc.Config{
		Warehouses:           nparts,
		Districts:            2,
		CustomersPerDistrict: 64,
		Items:                256,
		CrossPctStockLevel:   10,
		CrossPctOrderStatus:  10,
	}
	tc.SetFullMix()
	// Deletes under fire: Delivery reclaims NEW-ORDER rows and trimmer
	// batches ride in the mix, so every fault plan also has to carry
	// tombstones and trim cursors byte-identically through heal+converge.
	tc.TrimPct = 4
	tc.TrimRetain = 8
	wl := tpcc.New(tc)

	inner := simnet.New(s, simnet.Config{
		Nodes:     o.Nodes + 1, // + coordinator endpoint
		Latency:   50 * time.Microsecond,
		Jitter:    10 * time.Microsecond,
		Bandwidth: 600e6,
		Seed:      seed,
	})
	fn := faultnet.Wrap(s, inner, plan)
	cfg := core.Config{
		RT:             s,
		Nodes:          o.Nodes,
		FullReplicas:   1,
		WorkersPerNode: o.Workers,
		Workload:       wl,
		Iteration:      2 * time.Millisecond,
		Seed:           seed,
		SnapshotReads:  true,
		Transport:      fn,
		Trace:          o.Trace,
	}
	e := core.New(cfg)

	// The read-your-own-writes probe: a synthetic session whose token is
	// the last group-committed epoch seen on the wire. Safety invariant:
	// a gate may refuse (fall back) under lag, but a SERVED read's fence
	// must cover the token — a served snapshot older than the session's
	// last commit would be a read-your-own-writes violation.
	var served, fallbacks int64
	var violation string
	s.Go("chaos-ryw-probe", func() {
		for i := 0; ; i++ {
			s.Sleep(700 * time.Microsecond)
			e2 := fn.Epoch()
			if e2 < 3 {
				continue
			}
			token := e2 - 1 // last epoch a commit could have returned
			node := i % o.Nodes
			resp, ok := e.Gate(node).TryRead(token, txn.NewRequest(newProbeRead(node*o.Workers), 0))
			if !ok {
				fallbacks++
				continue
			}
			served++
			if resp.Token < token && violation == "" {
				violation = fmt.Sprintf("node %d served token-%d session from fence %d", node, token, resp.Token)
			}
		}
	})

	// Fault phase: run in slices, rejoining each crashed node once its
	// blackhole window closes (detection and eviction are the protocol's
	// own job — the harness only plays the operator restarting a box).
	const slice = 5 * time.Millisecond
	crashSeen := map[int]bool{}
	for s.Now() < o.Duration {
		s.Run(s.Now() + slice)
		if halted, reason := e.Halted(); halted {
			return Result{}, fmt.Errorf("seed %d: cluster halted mid-soak: %s", seed, reason)
		}
		for _, c := range plan.Crashes {
			if fn.CrashActive(c.Node) {
				crashSeen[c.Node] = true
			} else if crashSeen[c.Node] {
				crashSeen[c.Node] = false
				o.Logf("chaos: seed %d: crash window on node %d closed at epoch %d, rejoining", seed, c.Node, fn.Epoch())
				e.RecoverNode(c.Node)
			}
		}
	}
	if c := e.Stats().Committed; c == 0 {
		return Result{}, fmt.Errorf("seed %d: nothing committed under faults", seed)
	}

	// Heal and converge: no new faults, parked messages released; rejoin
	// whatever the coordinator still considers failed until every node is
	// back and all replica checksums agree. The budget is virtual TIME,
	// not attempts: a rejoin whose snapshot transfer lost a frame to a
	// still-armed fault window parks the coordinator in a 30s (virtual)
	// recovery gather, and the harness must outwait it (virtual seconds
	// are cheap) before the re-issued RecoverNode can succeed.
	fn.Heal()
	o.Logf("chaos: seed %d: healed at epoch %d, injected %v", seed, fn.Epoch(), fn.Injected())
	var lastErr error
	converged := false
	budget := s.Now() + 12*time.Second
	for attempt := 0; s.Now() < budget && !converged; attempt++ {
		failed := e.FailedNodes()
		for _, id := range failed {
			e.RecoverNode(id)
		}
		if attempt%20 == 19 {
			o.Logf("chaos: seed %d: converging at epoch %d, failed=%v, last: %v", seed, fn.Epoch(), failed, lastErr)
		}
		s.Run(s.Now() + 30*time.Millisecond)
		if halted, reason := e.Halted(); halted {
			return Result{}, fmt.Errorf("seed %d: cluster halted post-heal: %s", seed, reason)
		}
		e.Freeze()
		s.Run(s.Now() + 30*time.Millisecond)
		lastErr = e.CheckReplicaConsistency()
		if lastErr == nil && len(e.FailedNodes()) == 0 {
			converged = true
			break
		}
		e.Unfreeze()
	}
	if !converged {
		if lastErr == nil {
			lastErr = fmt.Errorf("nodes still evicted: %v", e.FailedNodes())
		}
		return Result{}, fmt.Errorf("seed %d: no convergence after heal: %w", seed, lastErr)
	}
	if violation != "" {
		return Result{}, fmt.Errorf("seed %d: read-your-own-writes violated: %s", seed, violation)
	}

	// Fold every partition's checksum (which already covers the ordered
	// secondary indexes) into one digest; CheckReplicaConsistency proved
	// all holders agree, so any holder's copy represents the partition.
	digest := uint64(1469598103934665603)
	for p := 0; p < cfg.NumPartitions(); p++ {
		digest ^= dbChecksum(e, p)
		digest *= 1099511628211
	}
	st := e.Stats()
	return Result{
		Committed:      st.Committed,
		Digest:         digest,
		Epoch:          fn.Epoch(),
		Injected:       fn.Injected(),
		ProbeServed:    served,
		ProbeFallbacks: fallbacks,
	}, nil
}

func dbChecksum(e *core.Engine, p int) uint64 {
	// Holders come from the INSTALLED topology, not the static config:
	// elastic membership may have moved the partition since boot.
	var db *storage.DB
	for _, h := range e.Topology().HoldersOf(p) {
		if d := e.DB(h); d != nil {
			db = d
			break
		}
	}
	return db.PartitionChecksum(p)
}
