package chaos

import (
	"bytes"
	"encoding/json"
	"flag"
	"reflect"
	"strconv"
	"testing"

	"star/internal/core"
)

// chaosSeed reruns the soak on one specific seed — the one-command
// reproduction path for a CI failure:
//
//	go test ./internal/chaos -run TestChaosSoak -v -args -chaos.seed=42
var chaosSeed = flag.Int64("chaos.seed", 0, "run the chaos soak on this single seed instead of the default matrix")

// chaosSeeds reports the seed matrix for this invocation.
func chaosSeeds() []int64 {
	if *chaosSeed != 0 {
		return []int64{*chaosSeed}
	}
	return []int64{1, 2}
}

// TestChaosSoakConvergesFixedSeed is the pinned acceptance run: a soak
// with drops, duplicates, reorders, an asymmetric partition and a
// crash/heal window on fixed seeds must keep committing, keep the
// session-token freshness invariant, and converge to byte-identical
// replica checksums after heal.
func TestChaosSoakConvergesFixedSeed(t *testing.T) {
	for _, seed := range chaosSeeds() {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			var trace bytes.Buffer
			res, err := RunSoak(seed, Options{Logf: t.Logf, Trace: &trace})
			if err != nil {
				t.Fatal(err)
			}
			checkTimeline(t, &trace, res)
			t.Logf("seed %d: committed=%d epoch=%d digest=%016x injected=%v probe served=%d fallbacks=%d",
				seed, res.Committed, res.Epoch, res.Digest, res.Injected, res.ProbeServed, res.ProbeFallbacks)
			if res.Committed == 0 {
				t.Fatal("soak committed nothing")
			}
			if res.ProbeServed == 0 {
				t.Fatal("read-your-own-writes probe was never served — the invariant was not exercised")
			}
			// Every requested fault family must actually have fired, or the
			// soak silently tested less than it claims.
			for _, k := range []string{"fault_drops", "fault_dups", "fault_reorders", "fault_part_drops", "fault_crash_drops"} {
				if res.Injected[k] == 0 {
					t.Errorf("fault family %s never fired (injected=%v)", k, res.Injected)
				}
			}
		})
	}
}

// TestChaosSoakDeterministicReplay pins that a soak is a pure function
// of its seed: two runs must agree on the committed count, the database
// digest, and every injection counter. This is what makes a failing CI
// seed reproducible with one command.
func TestChaosSoakDeterministicReplay(t *testing.T) {
	seed := chaosSeeds()[0]
	a, err := RunSoak(seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed {
		t.Errorf("committed diverged across replays: %d vs %d", a.Committed, b.Committed)
	}
	if a.Digest != b.Digest {
		t.Errorf("database digest diverged across replays: %016x vs %016x", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a.Injected, b.Injected) {
		t.Errorf("injection counters diverged across replays: %v vs %v", a.Injected, b.Injected)
	}
}

// TestGeneratePlanDeterministic pins that the plan generator is seed-pure
// and that different seeds actually vary the schedule.
func TestGeneratePlanDeterministic(t *testing.T) {
	a := GeneratePlan(7, Options{})
	b := GeneratePlan(7, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := GeneratePlan(8, Options{})
	if reflect.DeepEqual(a.Rules, c.Rules) {
		t.Fatal("different seeds produced identical rule sets")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan does not validate: %v", err)
	}
	// Fault-family switches prune the plan.
	d := GeneratePlan(7, Options{NoDrops: true, NoDups: true, NoReorders: true, NoPartition: true, NoCrash: true})
	if len(d.Rules) != 0 || len(d.Partitions) != 0 || len(d.Crashes) != 0 {
		t.Fatalf("all families disabled but plan non-empty: %+v", d)
	}
}

func seedName(seed int64) string {
	return "seed=" + strconv.FormatInt(seed, 10)
}

// checkTimeline asserts the coordinator's per-epoch trace is usable as a
// flight recorder: every line is a well-formed core.TraceEvent, epochs
// ascend monotonically, phases alternate over legal names, the traced
// commits account for work the soak actually did, and the fault counters
// show up once injection starts.
func checkTimeline(t *testing.T, trace *bytes.Buffer, res Result) {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(trace.Bytes()), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("soak emitted no timeline trace")
	}
	var last uint64
	var traced int64
	sawFaults := false
	for i, line := range lines {
		var ev core.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %d does not parse: %v\n%s", i, err, line)
		}
		if ev.Epoch <= last {
			t.Fatalf("trace line %d: epoch %d not ascending (prev %d)", i, ev.Epoch, last)
		}
		last = ev.Epoch
		if ev.Phase != "partitioned" && ev.Phase != "single-master" {
			t.Fatalf("trace line %d: unknown phase %q", i, ev.Phase)
		}
		traced += ev.Committed
		if len(ev.Faults) > 0 {
			sawFaults = true
		}
	}
	if traced == 0 || traced > res.Committed {
		t.Errorf("traced commits %d inconsistent with soak committed %d", traced, res.Committed)
	}
	if !sawFaults {
		t.Error("no trace event carried fault-injection counters")
	}
	t.Logf("timeline: %d epochs traced, %d commits accounted", len(lines), traced)
}
