package chaos

import (
	"flag"
	"reflect"
	"strconv"
	"testing"
)

// chaosSeed reruns the soak on one specific seed — the one-command
// reproduction path for a CI failure:
//
//	go test ./internal/chaos -run TestChaosSoak -v -args -chaos.seed=42
var chaosSeed = flag.Int64("chaos.seed", 0, "run the chaos soak on this single seed instead of the default matrix")

// chaosSeeds reports the seed matrix for this invocation.
func chaosSeeds() []int64 {
	if *chaosSeed != 0 {
		return []int64{*chaosSeed}
	}
	return []int64{1, 2}
}

// TestChaosSoakConvergesFixedSeed is the pinned acceptance run: a soak
// with drops, duplicates, reorders, an asymmetric partition and a
// crash/heal window on fixed seeds must keep committing, keep the
// session-token freshness invariant, and converge to byte-identical
// replica checksums after heal.
func TestChaosSoakConvergesFixedSeed(t *testing.T) {
	for _, seed := range chaosSeeds() {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			res, err := RunSoak(seed, Options{Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("seed %d: committed=%d epoch=%d digest=%016x injected=%v probe served=%d fallbacks=%d",
				seed, res.Committed, res.Epoch, res.Digest, res.Injected, res.ProbeServed, res.ProbeFallbacks)
			if res.Committed == 0 {
				t.Fatal("soak committed nothing")
			}
			if res.ProbeServed == 0 {
				t.Fatal("read-your-own-writes probe was never served — the invariant was not exercised")
			}
			// Every requested fault family must actually have fired, or the
			// soak silently tested less than it claims.
			for _, k := range []string{"fault_drops", "fault_dups", "fault_reorders", "fault_part_drops", "fault_crash_drops"} {
				if res.Injected[k] == 0 {
					t.Errorf("fault family %s never fired (injected=%v)", k, res.Injected)
				}
			}
		})
	}
}

// TestChaosSoakDeterministicReplay pins that a soak is a pure function
// of its seed: two runs must agree on the committed count, the database
// digest, and every injection counter. This is what makes a failing CI
// seed reproducible with one command.
func TestChaosSoakDeterministicReplay(t *testing.T) {
	seed := chaosSeeds()[0]
	a, err := RunSoak(seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed {
		t.Errorf("committed diverged across replays: %d vs %d", a.Committed, b.Committed)
	}
	if a.Digest != b.Digest {
		t.Errorf("database digest diverged across replays: %016x vs %016x", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a.Injected, b.Injected) {
		t.Errorf("injection counters diverged across replays: %v vs %v", a.Injected, b.Injected)
	}
}

// TestGeneratePlanDeterministic pins that the plan generator is seed-pure
// and that different seeds actually vary the schedule.
func TestGeneratePlanDeterministic(t *testing.T) {
	a := GeneratePlan(7, Options{})
	b := GeneratePlan(7, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := GeneratePlan(8, Options{})
	if reflect.DeepEqual(a.Rules, c.Rules) {
		t.Fatal("different seeds produced identical rule sets")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan does not validate: %v", err)
	}
	// Fault-family switches prune the plan.
	d := GeneratePlan(7, Options{NoDrops: true, NoDups: true, NoReorders: true, NoPartition: true, NoCrash: true})
	if len(d.Rules) != 0 || len(d.Partitions) != 0 || len(d.Crashes) != 0 {
		t.Fatalf("all families disabled but plan non-empty: %+v", d)
	}
}

func seedName(seed int64) string {
	return "seed=" + strconv.FormatInt(seed, 10)
}
