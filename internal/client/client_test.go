package client_test

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"star/internal/client"
	"star/internal/core"
	"star/internal/rt"
	"star/internal/workload/ycsb"
)

// killableProxy forwards TCP connections to a target and can cut every
// established stream at once — the server-side connection loss the
// failover path exists for, without needing the front door itself to
// track connections.
type killableProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns []net.Conn
	dead  bool
}

func newKillableProxy(t *testing.T, target string) *killableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &killableProxy{ln: ln, target: target}
	go p.accept()
	return p
}

func (p *killableProxy) addr() string { return p.ln.Addr().String() }

func (p *killableProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		s, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.dead {
			p.mu.Unlock()
			c.Close()
			s.Close()
			continue
		}
		p.conns = append(p.conns, c, s)
		p.mu.Unlock()
		go func() { io.Copy(s, c); s.Close() }()
		go func() { io.Copy(c, s); c.Close() }()
	}
}

// kill stops accepting and severs every live stream.
func (p *killableProxy) kill() {
	p.ln.Close()
	p.mu.Lock()
	p.dead = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// TestClientFailoverAcrossFrontDoors pins the multi-address session:
// a client dialed with two front doors loses its connection mid-session
// (the first door dies) and DoRetry must transparently re-dial the next
// endpoint — carrying the session freshness token across the switch, so
// read-your-own-writes holds on the new door too.
func TestClientFailoverAcrossFrontDoors(t *testing.T) {
	wl := ycsb.New(ycsb.Config{Partitions: 2, RecordsPerPartition: 64})
	r := rt.NewReal()
	defer r.Stop()
	e := core.New(core.Config{
		RT: r, Nodes: 2, FullReplicas: 2, WorkersPerNode: 1,
		Workload: wl, Iteration: 2 * time.Millisecond, Seed: 1,
		SnapshotReads: true,
	})
	codec := core.NewWireCodec(wl)

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln0.Close()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln1.Close()
	e.ServeClients(0, ln0, codec, 16)
	e.ServeClients(1, ln1, codec, 16)

	// The session's first door is a killable proxy to node 0; the backup
	// endpoint is node 1's door, direct.
	px := newKillableProxy(t, ln0.Addr().String())
	c, err := client.Dial(client.Config{
		Addrs:        []string{px.addr(), ln1.Addr().String()},
		Codec:        codec,
		DialDeadline: 5 * time.Second,
		ReqTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Establish session state through door 0: a committed write yields a
	// nonzero freshness token.
	if _, err := c.DoRetry(wl.WriteTxn([]int{0}, []int{0}, []byte("pre-fail")), 32); err != nil {
		t.Fatalf("write via door 0: %v", err)
	}
	token := c.Token()
	if token == 0 {
		t.Fatal("committed write did not advance the session token")
	}

	// Door 0 dies. The very next DoRetry must fail over to door 1 and
	// complete; a plain Do must keep failing with ErrClosed (failover is
	// DoRetry's job, not a silent side effect of Do).
	px.kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Do(wl.ReadTxn([]int{0}, []int{0})); errors.Is(err, client.ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection through the killed proxy never broke")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err := c.DoRetry(wl.ReadTxn([]int{0}, []int{0}), 32)
	if err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if res.Status != core.StatusOK {
		t.Fatalf("read after failover: status %v", res.Status)
	}
	if c.Token() < token {
		t.Fatalf("session token regressed across failover: %d < %d", c.Token(), token)
	}

	// The re-bound session keeps writing too.
	if _, err := c.DoRetry(wl.WriteTxn([]int{0}, []int{1}, []byte("post-fail")), 32); err != nil {
		t.Fatalf("write via door 1: %v", err)
	}
	if c.Token() < token {
		t.Fatalf("token regressed after post-failover write: %d < %d", c.Token(), token)
	}
}

// TestClientDialFailsOverToSecondAddress pins Dial-time failover: the
// first endpoint refuses connections entirely, and Dial must come up on
// the second without burning the whole DialDeadline.
func TestClientDialFailsOverToSecondAddress(t *testing.T) {
	wl := ycsb.New(ycsb.Config{Partitions: 2, RecordsPerPartition: 64})
	r := rt.NewReal()
	defer r.Stop()
	e := core.New(core.Config{
		RT: r, Nodes: 2, FullReplicas: 2, WorkersPerNode: 1,
		Workload: wl, Iteration: 2 * time.Millisecond, Seed: 1,
		SnapshotReads: true,
	})
	codec := core.NewWireCodec(wl)

	// Reserve an address nobody listens on.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	e.ServeClients(1, ln, codec, 16)

	c, err := client.Dial(client.Config{
		Addrs:        []string{deadAddr, ln.Addr().String()},
		Codec:        codec,
		DialDeadline: 10 * time.Second,
		ReqTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial with one dead endpoint: %v", err)
	}
	defer c.Close()
	if _, err := c.DoRetry(wl.ReadTxn([]int{0}, []int{0}), 32); err != nil {
		t.Fatalf("read via surviving endpoint: %v", err)
	}
}
