// Package client is the star-client library: a session-aware client for
// a STAR cluster's front door (core.ServeClients), speaking the
// internal/wire framing over one TCP connection.
//
// Sessions and freshness: every committed write returns the fence epoch
// it committed in, and the client keeps the running maximum as its
// session token. Read-only transactions carry the token, which lets any
// replica whose epoch fence has advanced past it serve the read from its
// local snapshot — read-your-own-writes with bounded staleness (the
// SCAR-style session guarantee) — while writes and too-fresh reads are
// forwarded to the master by the server.
//
// Flow control is cooperative: the client bounds its own in-flight
// window, and the server sheds excess with an explicit StatusBusy
// response (ErrBusy here) rather than queueing unboundedly; callers back
// off and retry.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"star/internal/backoff"
	"star/internal/core"
	"star/internal/txn"
	"star/internal/wire"
)

// ErrBusy reports that the server shed the request under admission
// control (session window, deferred queue, or front-door window full).
// The request did NOT execute; retry after a backoff.
var ErrBusy = errors.New("client: server busy")

// ErrAborted reports that the procedure aborted for application reasons;
// the server does not retry user aborts and neither does the client.
var ErrAborted = errors.New("client: transaction aborted by application")

// ErrClosed reports that the connection is gone (Close was called or the
// stream broke); outstanding and future requests fail with it.
var ErrClosed = errors.New("client: connection closed")

// Config parameterises one client connection.
type Config struct {
	// Addr is the front door's "host:port" (star-node -client).
	Addr string
	// Codec must be constructed exactly like the serving cluster's
	// (core.NewWireCodec with the same workload configuration).
	Codec *wire.Codec
	// Window bounds the client's own in-flight requests (default 32).
	// Keep it at or below the server's front-door window, or the excess
	// just bounces back as ErrBusy.
	Window int
	// DialTimeout is the per-attempt dial timeout (default 1s).
	DialTimeout time.Duration
	// DialRetry / DialRetryMax / DialDeadline shape the connect retry:
	// capped exponential backoff with jitter from DialRetry (default
	// 50ms) up to DialRetryMax (default 2s), giving up after
	// DialDeadline (default 15s). The server may still be starting.
	DialRetry    time.Duration
	DialRetryMax time.Duration
	DialDeadline time.Duration
	// ReqTimeout bounds one request round trip (default 30s). A timed-out
	// request's late response is discarded.
	ReqTimeout time.Duration
	// Now supplies GenAt stamps (default: nanoseconds since Dial). With a
	// clocked codec the stamp is re-based into the server's clock domain
	// on the wire, feeding its group-commit latency accounting.
	Now func() int64
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = time.Second
	}
	if c.DialRetry == 0 {
		c.DialRetry = 50 * time.Millisecond
	}
	if c.DialRetryMax == 0 {
		c.DialRetryMax = 2 * time.Second
	}
	if c.DialRetryMax < c.DialRetry {
		c.DialRetryMax = c.DialRetry
	}
	if c.DialDeadline == 0 {
		c.DialDeadline = 15 * time.Second
	}
	if c.ReqTimeout == 0 {
		c.ReqTimeout = 30 * time.Second
	}
	return c
}

// Result is one transaction's outcome.
type Result struct {
	Status core.ClientStatus
	// Token is the freshness token the operation established: the commit
	// epoch for writes, the observed fence epoch for snapshot reads.
	Token uint64
	// Reads is the server's read count for the execution (0 for writes).
	Reads int64
}

// Client is one connection-bound session.
type Client struct {
	cfg   Config
	conn  net.Conn
	start time.Time

	writeMu sync.Mutex // frames must hit the stream whole
	wbuf    []byte

	mu      sync.Mutex
	next    uint64
	pending map[uint64]chan core.ClientResp
	token   uint64
	closed  bool

	sem chan struct{} // in-flight window
}

// Dial connects to a front door, retrying with capped exponential
// backoff until DialDeadline (the serving process may start after the
// client does).
func Dial(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Codec == nil {
		return nil, fmt.Errorf("client: Config.Codec is required")
	}
	pol := backoff.Policy{Base: cfg.DialRetry, Max: cfg.DialRetryMax, Jitter: 0.5}
	deadline := time.Now().Add(cfg.DialDeadline)
	var conn net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		conn, err = net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("client: dial %s: %w", cfg.Addr, err)
		}
		time.Sleep(pol.Delay(attempt, rand.Float64()))
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		cfg:     cfg,
		conn:    conn,
		start:   time.Now(),
		pending: map[uint64]chan core.ClientResp{},
		sem:     make(chan struct{}, cfg.Window),
	}
	if c.cfg.Now == nil {
		c.cfg.Now = func() int64 { return int64(time.Since(c.start)) }
	}
	go c.readLoop()
	return c, nil
}

// Token returns the session's current freshness token (the highest fence
// epoch this session has observed).
func (c *Client) Token() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Close tears the connection down; outstanding requests fail ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail()
	return err
}

// fail marks the client closed and unblocks every waiter.
func (c *Client) fail() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for t, ch := range c.pending {
		delete(c.pending, t)
		close(ch)
	}
}

func (c *Client) readLoop() {
	defer c.fail()
	for {
		body, err := wire.ReadFrame(c.conn, wire.MaxClientFrame)
		if err != nil {
			return
		}
		_, m, err := wire.DecodeFrameBody(body, c.cfg.Codec)
		if err != nil {
			return
		}
		resp, ok := m.(core.ClientResp)
		if !ok {
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Ticket]
		if ok {
			delete(c.pending, resp.Ticket)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // cap 1: never blocks
		}
	}
}

// Do runs one transaction through the session and blocks for its result:
// writes resolve when their fence completes cluster-wide (the group
// commit), session-fresh snapshot reads immediately. The session token
// advances to the response's token. Errors: ErrBusy (shed, retry after
// backoff), ErrAborted (application abort), ErrClosed, or a timeout.
func (c *Client) Do(p txn.Procedure) (Result, error) {
	timeout := time.NewTimer(c.cfg.ReqTimeout)
	defer timeout.Stop()
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-timeout.C:
		return Result{}, fmt.Errorf("client: window wait: timeout after %v", c.cfg.ReqTimeout)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, ErrClosed
	}
	c.next++
	ticket := c.next
	ch := make(chan core.ClientResp, 1)
	c.pending[ticket] = ch
	token := c.token
	c.mu.Unlock()

	req := txn.NewRequest(p, c.cfg.Now())
	req.Ticket = ticket // client-side correlation; the gate re-stamps on forward
	if err := c.writeReq(core.ClientReq{Token: token, Req: req}); err != nil {
		c.mu.Lock()
		delete(c.pending, ticket)
		c.mu.Unlock()
		return Result{}, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return Result{}, ErrClosed
		}
		res := Result{Status: resp.Status, Token: resp.Token, Reads: resp.Reads}
		switch resp.Status {
		case core.StatusBusy:
			return res, ErrBusy
		case core.StatusAborted:
			return res, ErrAborted
		}
		c.mu.Lock()
		if resp.Token > c.token {
			c.token = resp.Token
		}
		c.mu.Unlock()
		return res, nil
	case <-timeout.C:
		c.mu.Lock()
		delete(c.pending, ticket) // a late response is discarded
		c.mu.Unlock()
		return Result{}, fmt.Errorf("client: %s: timeout after %v", p.Name(), c.cfg.ReqTimeout)
	}
}

// DoRetry runs Do, retrying ErrBusy shed with capped exponential backoff
// up to attempts tries.
func (c *Client) DoRetry(p txn.Procedure, attempts int) (Result, error) {
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.5}
	var res Result
	var err error
	for i := 0; i < attempts; i++ {
		res, err = c.Do(p)
		if !errors.Is(err, ErrBusy) {
			return res, err
		}
		time.Sleep(pol.Delay(i, rand.Float64()))
	}
	return res, err
}

func (c *Client) writeReq(m core.ClientReq) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	var err error
	// src/dst are routing hints the front door ignores (the accepting
	// node serves or forwards on its own authority); zeros keep the frame
	// well-formed.
	c.wbuf, err = wire.AppendFrame(c.wbuf[:0], 0, 0, 0, c.cfg.Codec, m)
	if err != nil {
		return fmt.Errorf("client: encode: %w", err)
	}
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return fmt.Errorf("client: write: %w", err)
	}
	return nil
}
