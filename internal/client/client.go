// Package client is the star-client library: a session-aware client for
// a STAR cluster's front door (core.ServeClients), speaking the
// internal/wire framing over one TCP connection.
//
// Sessions and freshness: every committed write returns the fence epoch
// it committed in, and the client keeps the running maximum as its
// session token. Read-only transactions carry the token, which lets any
// replica whose epoch fence has advanced past it serve the read from its
// local snapshot — read-your-own-writes with bounded staleness (the
// SCAR-style session guarantee) — while writes and too-fresh reads are
// forwarded to the master by the server.
//
// Flow control is cooperative: the client bounds its own in-flight
// window, and the server sheds excess with an explicit StatusBusy
// response (ErrBusy here) rather than queueing unboundedly; callers back
// off and retry.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"star/internal/backoff"
	"star/internal/core"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/wire"
)

// ErrBusy reports that the server shed the request under admission
// control (session window, deferred queue, or front-door window full).
// The request did NOT execute; retry after a backoff.
var ErrBusy = errors.New("client: server busy")

// ErrAborted reports that the procedure aborted for application reasons;
// the server does not retry user aborts and neither does the client.
var ErrAborted = errors.New("client: transaction aborted by application")

// ErrClosed reports that the connection is gone (Close was called or the
// stream broke); outstanding and future requests fail with it.
var ErrClosed = errors.New("client: connection closed")

// Config parameterises one client connection.
type Config struct {
	// Addr is the front door's "host:port" (star-node -client).
	Addr string
	// Addrs lists additional front doors for failover. Dial tries Addr
	// (if set) and then each entry in order until one answers; when an
	// established connection later breaks, DoRetry fails over to the
	// next endpoint, carrying the session token with it — the freshness
	// guarantee survives the switch because every replica checks the
	// token against its own fence epoch.
	Addrs []string
	// Codec must be constructed exactly like the serving cluster's
	// (core.NewWireCodec with the same workload configuration).
	Codec *wire.Codec
	// Window bounds the client's own in-flight requests (default 32).
	// Keep it at or below the server's front-door window, or the excess
	// just bounces back as ErrBusy.
	Window int
	// DialTimeout is the per-attempt dial timeout (default 1s).
	DialTimeout time.Duration
	// DialRetry / DialRetryMax / DialDeadline shape the connect retry:
	// capped exponential backoff with jitter from DialRetry (default
	// 50ms) up to DialRetryMax (default 2s), giving up after
	// DialDeadline (default 15s). The server may still be starting.
	DialRetry    time.Duration
	DialRetryMax time.Duration
	DialDeadline time.Duration
	// ReqTimeout bounds one request round trip (default 30s). A timed-out
	// request's late response is discarded.
	ReqTimeout time.Duration
	// Now supplies GenAt stamps (default: nanoseconds since Dial). With a
	// clocked codec the stamp is re-based into the server's clock domain
	// on the wire, feeding its group-commit latency accounting.
	Now func() int64
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = time.Second
	}
	if c.DialRetry == 0 {
		c.DialRetry = 50 * time.Millisecond
	}
	if c.DialRetryMax == 0 {
		c.DialRetryMax = 2 * time.Second
	}
	if c.DialRetryMax < c.DialRetry {
		c.DialRetryMax = c.DialRetry
	}
	if c.DialDeadline == 0 {
		c.DialDeadline = 15 * time.Second
	}
	if c.ReqTimeout == 0 {
		c.ReqTimeout = 30 * time.Second
	}
	return c
}

// endpoints flattens Addr + Addrs into the failover list.
func (c Config) endpoints() []string {
	var a []string
	if c.Addr != "" {
		a = append(a, c.Addr)
	}
	return append(a, c.Addrs...)
}

// Result is one transaction's outcome.
type Result struct {
	Status core.ClientStatus
	// Token is the freshness token the operation established: the commit
	// epoch for writes, the observed fence epoch for snapshot reads.
	Token uint64
	// Reads is the server's read count for the execution (0 for writes).
	Reads int64
}

// Client is one session, bound to one front door at a time (failover
// re-binds it to the next endpoint, keeping the session token).
type Client struct {
	cfg   Config
	addrs []string
	start time.Time

	writeMu sync.Mutex // frames must hit the stream whole
	wbuf    []byte

	mu      sync.Mutex
	conn    net.Conn
	cur     int // index into addrs of the live endpoint
	next    uint64
	pending map[uint64]chan core.ClientResp
	// pendingAdmin tracks in-flight admin envelopes (topology refresh) —
	// a separate rendezvous map because the response type differs; the
	// ticket counter is shared, so tickets stay unique across both.
	pendingAdmin map[uint64]chan core.AdminResp
	token        uint64
	closed       bool // current connection broke; Failover may re-bind
	stopped      bool // Close was called; the session is over for good

	sem chan struct{} // in-flight window
}

// Dial connects to the first answering front door, retrying across the
// endpoint list with capped exponential backoff until DialDeadline (the
// serving processes may start after the client does).
func Dial(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Codec == nil {
		return nil, fmt.Errorf("client: Config.Codec is required")
	}
	addrs := cfg.endpoints()
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: no address: set Config.Addr or Config.Addrs")
	}
	c := &Client{
		cfg:          cfg,
		addrs:        addrs,
		start:        time.Now(),
		pending:      map[uint64]chan core.ClientResp{},
		pendingAdmin: map[uint64]chan core.AdminResp{},
		sem:          make(chan struct{}, cfg.Window),
	}
	if c.cfg.Now == nil {
		c.cfg.Now = func() int64 { return int64(time.Since(c.start)) }
	}
	conn, idx, err := c.dialAny(0)
	if err != nil {
		return nil, err
	}
	c.conn, c.cur = conn, idx
	go c.readLoop(conn)
	return c, nil
}

// dialAny tries every endpoint round-robin starting at addrs[from],
// sleeping the backoff between full sweeps, until DialDeadline.
func (c *Client) dialAny(from int) (net.Conn, int, error) {
	pol := backoff.Policy{Base: c.cfg.DialRetry, Max: c.cfg.DialRetryMax, Jitter: 0.5}
	deadline := time.Now().Add(c.cfg.DialDeadline)
	var lastErr error
	for attempt := 0; ; attempt++ {
		idx := (from + attempt) % len(c.addrs)
		conn, err := net.DialTimeout("tcp", c.addrs[idx], c.cfg.DialTimeout)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn, idx, nil
		}
		lastErr = fmt.Errorf("client: dial %s: %w", c.addrs[idx], err)
		if time.Now().After(deadline) {
			return nil, 0, lastErr
		}
		if (attempt+1)%len(c.addrs) == 0 {
			time.Sleep(pol.Delay(attempt/len(c.addrs), rand.Float64()))
		}
	}
}

// Failover re-dials after the connection broke, starting from the
// endpoint after the dead one, and carries the session (token) across
// the swap. It is a no-op on a healthy connection and fails with
// ErrClosed after Close. Requests in flight when the stream broke have
// already failed with ErrClosed; whether a write among them committed
// is unknowable from this side, so retry-after-failover is safe for
// read-only or idempotent procedures (DoRetry's contract).
func (c *Client) Failover() error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return ErrClosed
	}
	if !c.closed {
		c.mu.Unlock()
		return nil
	}
	from := (c.cur + 1) % len(c.addrs)
	c.mu.Unlock()

	conn, idx, err := c.dialAny(from)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.stopped || !c.closed {
		// Closed for good, or a concurrent Failover already won.
		stopped := c.stopped
		c.mu.Unlock()
		conn.Close()
		if stopped {
			return ErrClosed
		}
		return nil
	}
	c.conn, c.cur, c.closed = conn, idx, false
	c.mu.Unlock()
	go c.readLoop(conn)
	// The endpoint that died may be gone for good (drained); learn the
	// current member doors from the cluster. Best-effort and async — the
	// session is already usable on the re-bound connection.
	go c.RefreshTopology(c.cfg.ReqTimeout)
	return nil
}

// RefreshTopology asks the connected front door for the installed
// topology and replaces the failover endpoint list with the members'
// advertised client addresses (elastic membership: joined nodes become
// dial targets, drained nodes stop being retried). Endpoints the
// cluster does not advertise are kept only if nothing was returned.
func (c *Client) RefreshTopology(timeout time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.next++
	ticket := c.next
	ch := make(chan core.AdminResp, 1)
	c.pendingAdmin[ticket] = ch
	c.mu.Unlock()

	req := core.AdminReq{V: core.AdminProtoVersion, Op: core.AdminTopologyGet, Ticket: ticket, Node: -1}
	if err := c.writeReq(req); err != nil {
		c.mu.Lock()
		delete(c.pendingAdmin, ticket)
		c.mu.Unlock()
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return ErrClosed
		}
		if !resp.OK {
			return fmt.Errorf("client: topology refresh: %s", resp.Err)
		}
		var doors []string
		for _, a := range resp.ClientAddrs {
			if a != "" {
				doors = append(doors, a)
			}
		}
		if len(doors) == 0 {
			return nil // cluster advertises no doors; keep what we have
		}
		c.mu.Lock()
		curAddr := ""
		if c.cur < len(c.addrs) {
			curAddr = c.addrs[c.cur]
		}
		c.addrs = doors
		c.cur = 0
		for i, a := range doors {
			if a == curAddr {
				c.cur = i
				break
			}
		}
		c.mu.Unlock()
		return nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pendingAdmin, ticket)
		c.mu.Unlock()
		return fmt.Errorf("client: topology refresh: timeout after %v", timeout)
	}
}

// Endpoints returns the current failover list (tests observe topology
// refreshes).
func (c *Client) Endpoints() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.addrs...)
}

// Token returns the session's current freshness token (the highest fence
// epoch this session has observed).
func (c *Client) Token() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Close tears the session down for good; outstanding requests fail
// ErrClosed and Failover no longer re-binds.
func (c *Client) Close() error {
	c.mu.Lock()
	c.stopped = true
	conn := c.conn
	c.mu.Unlock()
	err := conn.Close()
	c.fail(conn)
	return err
}

// fail marks conn's generation closed and unblocks every waiter. A
// stale generation (the connection was already replaced by Failover)
// is a no-op.
func (c *Client) fail(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn != c.conn || c.closed {
		return
	}
	c.closed = true
	for t, ch := range c.pending {
		delete(c.pending, t)
		close(ch)
	}
	for t, ch := range c.pendingAdmin {
		delete(c.pendingAdmin, t)
		close(ch)
	}
}

func (c *Client) readLoop(conn net.Conn) {
	defer c.fail(conn)
	for {
		body, err := wire.ReadFrame(conn, wire.MaxClientFrame)
		if err != nil {
			return
		}
		_, m, err := wire.DecodeFrameBody(body, c.cfg.Codec)
		if err != nil {
			return
		}
		switch resp := m.(type) {
		case core.ClientResp:
			c.mu.Lock()
			ch, ok := c.pending[resp.Ticket]
			if ok {
				delete(c.pending, resp.Ticket)
			}
			c.mu.Unlock()
			if ok {
				ch <- resp // cap 1: never blocks
			}
		case core.AdminResp:
			c.mu.Lock()
			ch, ok := c.pendingAdmin[resp.Ticket]
			if ok {
				delete(c.pendingAdmin, resp.Ticket)
			}
			c.mu.Unlock()
			if ok {
				ch <- resp
			}
		default:
			return
		}
	}
}

// Do runs one transaction through the session and blocks for its result:
// writes resolve when their fence completes cluster-wide (the group
// commit), session-fresh snapshot reads immediately. The session token
// advances to the response's token. Errors: ErrBusy (shed, retry after
// backoff), ErrAborted (application abort), ErrClosed, or a timeout.
func (c *Client) Do(p txn.Procedure) (Result, error) {
	timeout := time.NewTimer(c.cfg.ReqTimeout)
	defer timeout.Stop()
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-timeout.C:
		return Result{}, fmt.Errorf("client: window wait: timeout after %v", c.cfg.ReqTimeout)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, ErrClosed
	}
	c.next++
	ticket := c.next
	ch := make(chan core.ClientResp, 1)
	c.pending[ticket] = ch
	token := c.token
	c.mu.Unlock()

	req := txn.NewRequest(p, c.cfg.Now())
	req.Ticket = ticket // client-side correlation; the gate re-stamps on forward
	if err := c.writeReq(core.ClientReq{Token: token, Req: req}); err != nil {
		c.mu.Lock()
		delete(c.pending, ticket)
		c.mu.Unlock()
		return Result{}, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return Result{}, ErrClosed
		}
		res := Result{Status: resp.Status, Token: resp.Token, Reads: resp.Reads}
		switch resp.Status {
		case core.StatusBusy:
			return res, ErrBusy
		case core.StatusAborted:
			return res, ErrAborted
		}
		c.mu.Lock()
		if resp.Token > c.token {
			c.token = resp.Token
		}
		c.mu.Unlock()
		return res, nil
	case <-timeout.C:
		c.mu.Lock()
		delete(c.pending, ticket) // a late response is discarded
		c.mu.Unlock()
		return Result{}, fmt.Errorf("client: %s: timeout after %v", p.Name(), c.cfg.ReqTimeout)
	}
}

// DoRetry runs Do, retrying ErrBusy shed with capped exponential
// backoff and failing over to the next endpoint on a broken connection,
// up to attempts tries. A request that was in flight when the stream
// broke is re-submitted after failover — safe for read-only and
// idempotent procedures; for non-idempotent writes the caller must
// treat an eventual error as an ambiguous outcome, as with any RPC.
func (c *Client) DoRetry(p txn.Procedure, attempts int) (Result, error) {
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.5}
	var res Result
	var err error
	for i := 0; i < attempts; i++ {
		res, err = c.Do(p)
		switch {
		case errors.Is(err, ErrBusy):
			time.Sleep(pol.Delay(i, rand.Float64()))
		case errors.Is(err, ErrClosed):
			if ferr := c.Failover(); ferr != nil {
				return res, ferr
			}
		default:
			return res, err
		}
	}
	return res, err
}

func (c *Client) writeReq(m transport.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.mu.Lock()
	conn, closed := c.conn, c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var err error
	// src/dst are routing hints the front door ignores (the accepting
	// node serves or forwards on its own authority); zeros keep the frame
	// well-formed.
	c.wbuf, err = wire.AppendFrame(c.wbuf[:0], 0, 0, 0, c.cfg.Codec, m)
	if err != nil {
		return fmt.Errorf("client: encode: %w", err)
	}
	if _, err := conn.Write(c.wbuf); err != nil {
		// A failed write means the stream is gone: report it as the
		// closed connection it is so DoRetry's failover path engages.
		return fmt.Errorf("client: write %v: %w", err, ErrClosed)
	}
	return nil
}
