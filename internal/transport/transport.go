// Package transport defines the cluster network abstraction the engines
// run on: point-to-point message delivery between numbered endpoints
// with per-link FIFO per sending goroutine, fail-stop link control, and
// per-traffic-class byte/message accounting.
//
// Two implementations exist: simnet (a simulated full mesh with latency,
// jitter and bandwidth pacing — the deterministic test substrate) and
// tcpnet (real TCP sockets with the internal/wire binary encoding — the
// multi-process substrate). Both pass the conformance suite in
// transport/conformance, which pins the contract below.
//
// Contract:
//
//   - Send(src, dst, ...) never blocks except for backpressure on a full
//     link queue. Messages from one sending goroutine on one (src,dst)
//     link are delivered in send order. No ordering holds across links
//     or across senders sharing a link.
//   - Local sends (src == dst) bypass the wire but preserve FIFO with
//     respect to the sender's other local sends.
//   - SetDown(n, true) makes the transport silently drop traffic to and
//     from endpoint n (fail-stop semantics); Dropped counts the drops.
//   - Accounting counters are monotone while the transport is up and
//     never reset.
package transport

import "star/internal/rt"

// Message is anything sent over the network. Size is the modelled wire
// size in bytes, used for bandwidth pacing and byte accounting on
// transports that do not produce a real encoding (simnet); transports
// that do (tcpnet) account the encoded frame length instead.
type Message interface{ Size() int }

// Class buckets traffic for accounting.
type Class uint8

const (
	// Control is coordination traffic (fences, phase switches, acks).
	Control Class = iota
	// Data is transaction execution traffic (remote reads, lock
	// requests, 2PC rounds, deferred cross-partition requests).
	Data
	// Replication is the replication stream.
	Replication
	// NumClasses bounds the class enumeration.
	NumClasses
)

// Transport is the network substrate engines send and receive on.
type Transport interface {
	// Send ships m from endpoint src to endpoint dst under the given
	// traffic class. It must not block except for link backpressure.
	Send(src, dst int, class Class, m Message)

	// Inbox returns endpoint dst's receive mailbox. Only locally hosted
	// endpoints have a live inbox on multi-process transports.
	Inbox(dst int) rt.Chan

	// SetDown marks an endpoint failed (true) or healthy (false);
	// traffic to or from a down endpoint is silently dropped.
	SetDown(node int, down bool)

	// IsDown reports the failure flag for an endpoint.
	IsDown(node int) bool

	// Bytes returns the bytes sent in the given class.
	Bytes(c Class) int64

	// Messages returns the message count in the given class.
	Messages(c Class) int64

	// TotalBytes returns all bytes sent across classes.
	TotalBytes() int64

	// BytesFrom returns the bytes endpoint src has sent.
	BytesFrom(src int) int64

	// Dropped returns the number of messages dropped due to down
	// endpoints.
	Dropped() int64
}
