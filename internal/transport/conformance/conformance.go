// Package conformance pins the transport.Transport contract with one
// suite that every implementation must pass: per-sender-link FIFO,
// fail-stop SetDown drops, local delivery, and byte/message accounting
// monotonicity. simnet runs it on both runtimes; tcpnet runs it over
// real loopback sockets with one process per endpoint.
package conformance

import (
	"sync"
	"testing"
	"time"

	"star/internal/transport"
)

// Cluster is one transport under test, viewed per endpoint: a
// single-process transport (simnet) returns the same object for every
// endpoint, a multi-process one (tcpnet) returns the hosting process's
// network. The suite needs at least 3 endpoints.
type Cluster struct {
	// Endpoint returns the transport hosting endpoint i (sends from i
	// and Inbox(i) go through it).
	Endpoint func(i int) transport.Transport
	// Endpoints is the endpoint count (≥ 3).
	Endpoints int
	// Spawn runs fn as a process of the system under test.
	Spawn func(fn func())
	// Settle blocks until every spawned process has finished (real
	// runtimes) or until virtual time runs out (simulated ones). Each
	// subtest spawns, settles once, then asserts.
	Settle func()
	// Msg builds a test message with the given id and modelled size
	// (size ≥ 16; encodable on transports with a real codec).
	Msg func(id, size int) transport.Message
	// MsgID extracts the id from a received test message.
	MsgID func(m any) int
	// Yield briefly parks the calling process so concurrently spawned
	// ones interleave (a short runtime Sleep; required on cooperative
	// simulated runtimes where a tight loop never preempts).
	Yield func()
}

// setDownEverywhere applies a failure flag on every process, matching
// how a cluster-wide view change reaches each process's transport.
func (c *Cluster) setDownEverywhere(node int, down bool) {
	seen := map[transport.Transport]bool{}
	for i := 0; i < c.Endpoints; i++ {
		if ep := c.Endpoint(i); !seen[ep] {
			seen[ep] = true
			ep.SetDown(node, down)
		}
	}
}

// Run executes the conformance suite. mk must return a fresh cluster
// per call (subtests mutate failure state and counters).
func Run(t *testing.T, mk func(t *testing.T) *Cluster) {
	t.Helper()

	t.Run("FIFOPerSenderLink", func(t *testing.T) {
		c := mk(t)
		const msgs = 200
		var mu sync.Mutex
		var got []int
		c.Spawn(func() {
			for i := 0; i < msgs; i++ {
				c.Endpoint(0).Send(0, 1, transport.Replication, c.Msg(i, 16+i%700))
			}
		})
		c.Spawn(func() {
			in := c.Endpoint(1).Inbox(1)
			for i := 0; i < msgs; i++ {
				v, ok := in.RecvTimeout(5 * time.Second)
				if !ok {
					return
				}
				mu.Lock()
				got = append(got, c.MsgID(v))
				mu.Unlock()
			}
		})
		c.Settle()
		mu.Lock()
		defer mu.Unlock()
		if len(got) != msgs {
			t.Fatalf("delivered %d/%d messages", len(got), msgs)
		}
		for i, id := range got {
			if id != i {
				t.Fatalf("message %d arrived out of order (got id %d); per-link FIFO violated", i, id)
			}
		}
	})

	t.Run("LocalSendDelivers", func(t *testing.T) {
		c := mk(t)
		var ok bool
		var id int
		c.Spawn(func() {
			c.Endpoint(0).Send(0, 0, transport.Control, c.Msg(7, 16))
			var v any
			if v, ok = c.Endpoint(0).Inbox(0).RecvTimeout(2 * time.Second); ok {
				id = c.MsgID(v)
			}
		})
		c.Settle()
		if !ok || id != 7 {
			t.Fatalf("local send not delivered (ok=%v id=%d)", ok, id)
		}
	})

	t.Run("SetDownDropsAndRecovers", func(t *testing.T) {
		c := mk(t)
		c.setDownEverywhere(1, true)
		if !c.Endpoint(0).IsDown(1) {
			t.Fatal("IsDown must reflect SetDown")
		}
		delivered := false
		c.Spawn(func() { c.Endpoint(0).Send(0, 1, transport.Data, c.Msg(1, 16)) })
		c.Spawn(func() {
			if _, ok := c.Endpoint(1).Inbox(1).RecvTimeout(200 * time.Millisecond); ok {
				delivered = true
			}
		})
		c.Settle()
		if delivered {
			t.Fatal("message delivered to a down endpoint")
		}
		if c.Endpoint(0).Dropped() == 0 {
			t.Fatal("Dropped must count messages dropped for a down endpoint")
		}
		// Recovery: traffic flows again.
		c.setDownEverywhere(1, false)
		recovered := false
		c.Spawn(func() { c.Endpoint(0).Send(0, 1, transport.Data, c.Msg(2, 16)) })
		c.Spawn(func() {
			if v, ok := c.Endpoint(1).Inbox(1).RecvTimeout(5 * time.Second); ok && c.MsgID(v) == 2 {
				recovered = true
			}
		})
		c.Settle()
		if !recovered {
			t.Fatal("message not delivered after endpoint recovered")
		}
	})

	// SetDown flapping: rapid down/up cycles on one endpoint while
	// concurrent senders hammer it and a healthy peer. Pins that no
	// combination of flap timing can deadlock a sender, duplicate a
	// delivery, or run any accounting counter backwards — the flapped
	// path's only permitted outcomes per message are exactly-once or
	// counted-drop.
	t.Run("SetDownFlapping", func(t *testing.T) {
		c := mk(t)
		const healthyMsgs, flappedMsgs, flaps = 200, 200, 40
		var mu sync.Mutex
		var healthy []int
		flapped := map[int]int{}
		var acct [][3]int64 // (Messages(Data), TotalBytes, Dropped) samples

		c.Spawn(func() { // healthy path: 0 → 2, untouched by the flapping
			for i := 0; i < healthyMsgs; i++ {
				c.Endpoint(0).Send(0, 2, transport.Data, c.Msg(i, 32))
			}
		})
		c.Spawn(func() { // flapped path: 0 → 1
			for i := 0; i < flappedMsgs; i++ {
				c.Endpoint(0).Send(0, 1, transport.Data, c.Msg(i, 32))
				if i%4 == 0 {
					c.Yield()
				}
			}
		})
		c.Spawn(func() { // the flapper
			for k := 0; k < flaps; k++ {
				c.setDownEverywhere(1, true)
				c.Yield()
				c.setDownEverywhere(1, false)
				c.Yield()
				ep := c.Endpoint(0)
				mu.Lock()
				acct = append(acct, [3]int64{ep.Messages(transport.Data), ep.TotalBytes(), ep.Dropped()})
				mu.Unlock()
			}
		})
		c.Spawn(func() {
			in := c.Endpoint(2).Inbox(2)
			for i := 0; i < healthyMsgs; i++ {
				v, ok := in.RecvTimeout(5 * time.Second)
				if !ok {
					return
				}
				mu.Lock()
				healthy = append(healthy, c.MsgID(v))
				mu.Unlock()
			}
		})
		c.Spawn(func() {
			in := c.Endpoint(1).Inbox(1)
			for {
				v, ok := in.RecvTimeout(500 * time.Millisecond)
				if !ok {
					return
				}
				mu.Lock()
				flapped[c.MsgID(v)]++
				mu.Unlock()
			}
		})
		c.Settle()
		mu.Lock()
		defer mu.Unlock()
		if len(healthy) != healthyMsgs {
			t.Fatalf("healthy path delivered %d/%d while another endpoint flapped", len(healthy), healthyMsgs)
		}
		for i, id := range healthy {
			if id != i {
				t.Fatalf("healthy path message %d out of order (id %d)", i, id)
			}
		}
		for id, n := range flapped {
			if n > 1 {
				t.Fatalf("flapped path delivered id %d %d times (at-most-once violated)", id, n)
			}
		}
		for i := 1; i < len(acct); i++ {
			for f := 0; f < 3; f++ {
				if acct[i][f] < acct[i-1][f] {
					t.Fatalf("accounting field %d decreased under flapping: %d → %d", f, acct[i-1][f], acct[i][f])
				}
			}
		}
	})

	t.Run("AccountingMonotoneAndExact", func(t *testing.T) {
		c := mk(t)
		type step struct {
			class transport.Class
			size  int
		}
		script := []step{
			{transport.Replication, 100},
			{transport.Replication, 150},
			{transport.Data, 50},
			{transport.Control, 20},
		}
		sender := c.Endpoint(0)
		done := make(chan struct{})
		var snaps [][3]int64 // per-class byte counters after each send
		c.Spawn(func() {
			defer close(done)
			for _, s := range script {
				sender.Send(0, 1, s.class, c.Msg(0, s.size))
				snaps = append(snaps, [3]int64{
					sender.Bytes(transport.Control),
					sender.Bytes(transport.Data),
					sender.Bytes(transport.Replication),
				})
			}
		})
		c.Spawn(func() {
			in := c.Endpoint(1).Inbox(1)
			for range script {
				in.RecvTimeout(5 * time.Second)
			}
		})
		c.Settle()
		<-done
		// Monotone: every counter is non-decreasing across sends.
		for i := 1; i < len(snaps); i++ {
			for cl := 0; cl < 3; cl++ {
				if snaps[i][cl] < snaps[i-1][cl] {
					t.Fatalf("class %d bytes decreased: %d → %d", cl, snaps[i-1][cl], snaps[i][cl])
				}
			}
		}
		// Message counts are exact; byte counts cover at least the
		// modelled sizes (real codecs add framing overhead).
		wantMsgs := map[transport.Class]int64{}
		wantBytes := map[transport.Class]int64{}
		for _, s := range script {
			wantMsgs[s.class]++
			wantBytes[s.class] += int64(s.size)
		}
		var total int64
		for cl := transport.Class(0); cl < transport.NumClasses; cl++ {
			if got := sender.Messages(cl); got != wantMsgs[cl] {
				t.Fatalf("class %d: %d messages, want %d", cl, got, wantMsgs[cl])
			}
			got := sender.Bytes(cl)
			if got < wantBytes[cl] {
				t.Fatalf("class %d: %d bytes < modelled %d", cl, got, wantBytes[cl])
			}
			if got > wantBytes[cl]+64*wantMsgs[cl] {
				t.Fatalf("class %d: %d bytes exceeds modelled %d + framing allowance", cl, got, wantBytes[cl])
			}
			total += got
		}
		if sender.TotalBytes() != total {
			t.Fatalf("TotalBytes %d != sum of classes %d", sender.TotalBytes(), total)
		}
		if sender.BytesFrom(0) != total {
			t.Fatalf("BytesFrom(0) %d != %d (endpoint 0 was the only sender)", sender.BytesFrom(0), total)
		}
	})
}
