// Package workload defines the interface every benchmark workload
// implements, plus the two workloads the paper evaluates (subpackages
// ycsb and tpcc).
package workload

import (
	"star/internal/storage"
	"star/internal/txn"
)

// Workload builds and populates a database and produces generators.
type Workload interface {
	// Name returns the workload name ("ycsb", "tpcc").
	Name() string
	// BuildDB creates the schema for a node holding the given partitions
	// (nil holds = full replica).
	BuildDB(nparts int, holds []bool) *storage.DB
	// Load deterministically populates the partitions the node holds;
	// replicas of a partition load byte-identical data.
	Load(db *storage.DB)
	// NewGen returns a transaction generator. Generators with the same
	// seed produce the same sequence (Calvin replays inputs).
	NewGen(seed int64) Gen
}

// Gen produces transaction instances. One generator per worker thread.
type Gen interface {
	// Mixed returns the next transaction for a client homed at partition
	// `home`: cross-partition with the workload's configured probability.
	Mixed(home int) txn.Procedure
	// Single returns a single-partition transaction for `home`.
	Single(home int) txn.Procedure
	// Cross returns a cross-partition transaction homed at `home`.
	Cross(home int) txn.Procedure
}
