package ycsb

import (
	"testing"

	"star/internal/storage"
	"star/internal/txn"
)

func small() *Workload {
	return New(Config{Partitions: 4, RecordsPerPartition: 64, CrossPct: 50})
}

func TestLoadIsDeterministicAcrossReplicas(t *testing.T) {
	w := small()
	full := w.BuildDB(4, nil)
	w.Load(full)
	partial := w.BuildDB(4, []bool{false, true, false, true})
	w.Load(partial)
	for _, p := range []int{1, 3} {
		if full.PartitionChecksum(p) != partial.PartitionChecksum(p) {
			t.Fatalf("partition %d differs between replicas", p)
		}
	}
	if n := full.Table(TableID).Partition(0).Len(); n != 64 {
		t.Fatalf("partition 0 has %d records", n)
	}
}

func TestKeysArePartitionLocal(t *testing.T) {
	w := small()
	if w.Key(1, 0) != storage.K1(64) || w.Key(0, 63) != storage.K1(63) {
		t.Fatal("key layout broken")
	}
}

func TestSingleTxnFootprint(t *testing.T) {
	w := small()
	g := w.NewGen(1)
	for i := 0; i < 50; i++ {
		p := g.Single(2)
		req := txn.NewRequest(p, 0)
		if req.Cross || req.Home != 2 {
			t.Fatalf("single txn crossed partitions: %+v", req.Parts)
		}
		accs := p.Accesses()
		if len(accs) != 10 {
			t.Fatalf("accesses=%d", len(accs))
		}
		writes := 0
		for _, a := range accs {
			if a.Write {
				writes++
			}
		}
		if writes != 1 {
			t.Fatalf("writes=%d, want 1 (90/10 mix)", writes)
		}
	}
}

func TestCrossTxnReallyCrosses(t *testing.T) {
	w := small()
	g := w.NewGen(2)
	for i := 0; i < 50; i++ {
		req := txn.NewRequest(g.Cross(1), 0)
		if !req.Cross {
			t.Fatal("cross txn touched one partition")
		}
		if req.Home != 1 {
			t.Fatalf("home=%d", req.Home)
		}
	}
}

func TestMixedRespectsCrossPct(t *testing.T) {
	w := New(Config{Partitions: 4, RecordsPerPartition: 64, CrossPct: 30})
	g := w.NewGen(3)
	cross := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if txn.NewRequest(g.Mixed(0), 0).Cross {
			cross++
		}
	}
	got := float64(cross) / n * 100
	if got < 24 || got > 36 {
		t.Fatalf("cross rate %.1f%%, want ≈30%%", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	w := small()
	g1, g2 := w.NewGen(7), w.NewGen(7)
	for i := 0; i < 20; i++ {
		a := g1.Mixed(1).(*Txn)
		b := g2.Mixed(1).(*Txn)
		if len(a.keys) != len(b.keys) {
			t.Fatal("lengths differ")
		}
		for j := range a.keys {
			if a.keys[j] != b.keys[j] || a.parts[j] != b.parts[j] {
				t.Fatal("same seed must generate identical transactions")
			}
		}
	}
}

// executor applies a txn directly to a full DB (no concurrency): a
// reference Ctx used to validate procedure logic.
type executor struct {
	db  *storage.DB
	set txn.RWSet
}

func (e *executor) Read(tb storage.TableID, part int, key storage.Key) ([]byte, bool) {
	rec := e.db.Table(tb).Get(part, key)
	if rec == nil {
		return nil, false
	}
	val, tid, present := rec.ReadStable(nil)
	if !present {
		return nil, false
	}
	e.set.AddRead(tb, part, key, rec, tid)
	return val, true
}

func (e *executor) Write(tb storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	e.set.AddWrite(tb, part, key, ops...)
}

func (e *executor) Insert(tb storage.TableID, part int, key storage.Key, row []byte) {
	e.set.AddInsert(tb, part, key, row)
}

func (e *executor) Delete(tb storage.TableID, part int, key storage.Key) {
	e.set.AddDelete(tb, part, key)
}

func (e *executor) LookupIndex(tb storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key {
	return e.db.Table(tb).IndexLookup(part, idx, val, storage.IndexAllEpochs, dst)
}

func TestTxnRunProducesOneWrite(t *testing.T) {
	w := small()
	db := w.BuildDB(4, nil)
	w.Load(db)
	g := w.NewGen(5)
	ex := &executor{db: db}
	if err := g.Single(0).Run(ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.set.Reads) != 10 || len(ex.set.Writes) != 1 {
		t.Fatalf("reads=%d writes=%d", len(ex.set.Reads), len(ex.set.Writes))
	}
	if len(ex.set.Writes[0].Ops) != 1 || ex.set.Writes[0].Ops[0].Kind != storage.OpSetField {
		t.Fatal("write must be a single-field op")
	}
}

func TestRowSizeMatchesPaper(t *testing.T) {
	w := New(Config{Partitions: 1})
	// 10 columns × (2-byte length prefix + 10 bytes) = 120B ≈ paper's
	// "10 columns of 10 random bytes".
	if got := w.Schema().RowSize(); got != 120 {
		t.Fatalf("row size %d", got)
	}
}
