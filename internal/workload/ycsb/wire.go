package ycsb

import (
	"fmt"

	"star/internal/storage"
	"star/internal/txn"
	"star/internal/wire"
)

// wireTxn is the YCSB procedure id (tpcc takes 1–2 and 4–5; ycsb
// takes 3).
const wireTxn uint8 = 3

// RegisterWire binds the YCSB transaction codec to c. The decoder binds
// decoded transactions to this process's Workload instance, so every
// process must construct the workload with the same configuration.
func (w *Workload) RegisterWire(c *wire.Codec) {
	c.RegisterProc(wireTxn, (*Txn)(nil),
		func(b []byte, p txn.Procedure) []byte {
			t := p.(*Txn)
			b = wire.AppendUvarint(b, uint64(len(t.keys)))
			for i := range t.keys {
				b = wire.AppendVarint(b, int64(t.parts[i]))
				b = wire.AppendKey(b, t.keys[i])
				b = wire.AppendBool(b, t.writes[i])
			}
			b = wire.AppendUvarint(b, uint64(len(t.ops)))
			for i := range t.ops {
				b = wire.AppendFieldOp(b, &t.ops[i])
			}
			return b
		},
		func(b []byte) (txn.Procedure, []byte, error) {
			n, b, err := wire.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			// Each access costs ≥ 18 bytes on the wire.
			if n > uint64(len(b))/18+1 {
				return nil, nil, fmt.Errorf("%w: %d ycsb accesses", wire.ErrCorrupt, n)
			}
			t := &Txn{
				w:      w,
				parts:  make([]int, n),
				keys:   make([]storage.Key, n),
				writes: make([]bool, n),
			}
			for i := uint64(0); i < n; i++ {
				var x int64
				if x, b, err = wire.Varint(b); err != nil {
					return nil, nil, err
				}
				t.parts[i] = int(x)
				if t.keys[i], b, err = wire.Key(b); err != nil {
					return nil, nil, err
				}
				if t.writes[i], b, err = wire.Bool(b); err != nil {
					return nil, nil, err
				}
			}
			nops, b, err := wire.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if nops > uint64(len(b))/3+1 {
				return nil, nil, fmt.Errorf("%w: %d ycsb ops", wire.ErrCorrupt, nops)
			}
			t.ops = make([]storage.FieldOp, nops)
			for i := range t.ops {
				if t.ops[i], b, err = wire.DecodeFieldOp(b); err != nil {
					return nil, nil, err
				}
			}
			t.accs = make([]txn.Access, n)
			for i := range t.keys {
				t.accs[i] = txn.Access{Table: TableID, Part: t.parts[i], Key: t.keys[i], Write: t.writes[i]}
			}
			return t, b, nil
		})
}

// WireSize returns the exact encoded parameter size (kept in lock-step
// with the encoder above).
func (t *Txn) WireSize() int {
	n := wire.UvarintLen(uint64(len(t.keys)))
	for i := range t.keys {
		n += wire.VarintLen(int64(t.parts[i])) + wire.KeyLen + 1
	}
	n += wire.UvarintLen(uint64(len(t.ops)))
	for i := range t.ops {
		n += wire.FieldOpLen(&t.ops[i])
	}
	return n
}
