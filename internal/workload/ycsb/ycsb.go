// Package ycsb implements the YCSB workload as configured in the paper
// (§7.1.1): one table of 10 columns × 10 random bytes keyed by a 64-bit
// integer, 200k records per partition, 10 accesses per transaction with
// a 90/10 read/write mix under uniform key distribution. A configurable
// fraction of transactions is cross-partition, in which case each access
// picks a uniformly random partition.
package ycsb

import (
	"fmt"
	"math/rand"

	"star/internal/storage"
	"star/internal/txn"
	"star/internal/workload"
)

// TableID of the single YCSB table.
const TableID storage.TableID = 0

// Config parameterises the workload.
type Config struct {
	// Partitions is the total number of partitions in the cluster.
	Partitions int
	// RecordsPerPartition defaults to 200_000 (paper); tests shrink it.
	RecordsPerPartition int
	// OpsPerTxn is the number of record accesses (default 10).
	OpsPerTxn int
	// WritesPerTxn is how many of those are read-modify-writes
	// (default 1, the paper's 90/10 mix).
	WritesPerTxn int
	// CrossPct is the percentage (0..100) of cross-partition txns.
	CrossPct int
	// FieldSize is the column payload width (default 10 bytes).
	FieldSize int
	// Columns is the column count (default 10).
	Columns int
}

func (c Config) withDefaults() Config {
	if c.RecordsPerPartition == 0 {
		c.RecordsPerPartition = 200_000
	}
	if c.OpsPerTxn == 0 {
		c.OpsPerTxn = 10
	}
	if c.WritesPerTxn == 0 {
		c.WritesPerTxn = 1
	}
	if c.FieldSize == 0 {
		c.FieldSize = 10
	}
	if c.Columns == 0 {
		c.Columns = 10
	}
	return c
}

// Workload implements workload.Workload.
type Workload struct {
	cfg    Config
	schema *storage.Schema
}

// New builds the workload. It panics on a zero partition count.
func New(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	if cfg.Partitions <= 0 {
		panic("ycsb: Partitions must be positive")
	}
	fields := make([]storage.Field, cfg.Columns)
	for i := range fields {
		fields[i] = storage.Field{
			Name: fmt.Sprintf("f%d", i),
			Type: storage.FieldBytes,
			Cap:  cfg.FieldSize,
		}
	}
	return &Workload{cfg: cfg, schema: storage.NewSchema(fields...)}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "ycsb" }

// Config returns the effective configuration.
func (w *Workload) Config() Config { return w.cfg }

// Schema returns the usertable schema.
func (w *Workload) Schema() *storage.Schema { return w.schema }

// BuildDB implements workload.Workload.
func (w *Workload) BuildDB(nparts int, holds []bool) *storage.DB {
	db := storage.NewDB(nparts, holds)
	db.AddTable("usertable", w.schema, false)
	return db
}

// Key builds the primary key for row i of partition p. Keys are global:
// partition p owns [p*RPP, (p+1)*RPP).
func (w *Workload) Key(p, i int) storage.Key {
	return storage.K1(uint64(p)*uint64(w.cfg.RecordsPerPartition) + uint64(i))
}

// Load implements workload.Workload: deterministic per-partition fill.
func (w *Workload) Load(db *storage.DB) {
	tbl := db.Table(TableID)
	for p := 0; p < db.NumPartitions(); p++ {
		if !db.Holds(p) {
			continue
		}
		rng := rand.New(rand.NewSource(int64(p) + 1))
		buf := make([]byte, w.cfg.FieldSize)
		for i := 0; i < w.cfg.RecordsPerPartition; i++ {
			row := w.schema.NewRow()
			for c := 0; c < w.cfg.Columns; c++ {
				rng.Read(buf)
				w.schema.SetBytes(row, c, buf)
			}
			tbl.Insert(p, w.Key(p, i), 1, storage.MakeTID(1, uint64(i+1)), row)
		}
	}
}

// Gen implements workload.Gen for YCSB.
type Gen struct {
	w   *Workload
	rng *rand.Rand
	row []byte // scratch row for building write ops
	val []byte // scratch payload
}

// NewGen implements workload.Workload.
func (w *Workload) NewGen(seed int64) workload.Gen {
	return &Gen{w: w, rng: rand.New(rand.NewSource(seed)),
		row: w.schema.NewRow(), val: make([]byte, w.cfg.FieldSize)}
}

// Txn is one YCSB transaction: OpsPerTxn accesses, of which the last
// WritesPerTxn are read-modify-writes installing fresh random bytes.
// The footprint and the write op are precomputed at generation time so
// that Run — the piece the engine executes, possibly several times under
// OCC retry — allocates nothing.
type Txn struct {
	w      *Workload
	parts  []int
	keys   []storage.Key
	writes []bool
	accs   []txn.Access
	// ops is the precomputed column-1 delta, held as a slice so Run can
	// pass it through the variadic Ctx.Write without allocating (a
	// spread of an existing slice reuses it; a bare argument would build
	// a fresh one per call).
	ops []storage.FieldOp
}

// Name implements txn.Procedure.
func (t *Txn) Name() string { return "ycsb.txn" }

// Accesses implements txn.Procedure.
func (t *Txn) Accesses() []txn.Access { return t.accs }

// Run implements txn.Procedure: reads every record; for write accesses it
// installs the new column value (column 1, as a single-field delta).
func (t *Txn) Run(ctx txn.Ctx) error {
	for i := range t.keys {
		if _, ok := ctx.Read(TableID, t.parts[i], t.keys[i]); !ok {
			return txn.ErrConflict
		}
		if t.writes[i] {
			ctx.Write(TableID, t.parts[i], t.keys[i], t.ops...)
		}
	}
	return nil
}

// ReadOnly implements txn.ReadOnlyMarker: a transaction with no write
// accesses may be served from an epoch-fence snapshot instead of being
// routed to the master. Generated transactions always carry at least one
// write (WritesPerTxn ≥ 1), so this only fires for explicitly built
// read transactions (ReadTxn — the star-client read path).
func (t *Txn) ReadOnly() bool {
	for _, w := range t.writes {
		if w {
			return false
		}
	}
	return true
}

// newExplicitTxn builds a transaction with a caller-chosen footprint:
// access i touches row rows[i] of partition parts[i]. Write accesses
// install val into column 1. The star-client CLI and tests use these for
// deterministic, targeted transactions; generated workloads use Gen.
func (w *Workload) newExplicitTxn(parts, rows []int, writes []bool, val []byte) *Txn {
	if len(rows) != len(parts) || (writes != nil && len(writes) != len(parts)) {
		panic("ycsb: explicit txn footprint slices disagree")
	}
	t := &Txn{
		w:      w,
		parts:  append([]int(nil), parts...),
		keys:   make([]storage.Key, len(parts)),
		writes: make([]bool, len(parts)),
		accs:   make([]txn.Access, len(parts)),
	}
	anyWrite := false
	for i := range parts {
		t.keys[i] = w.Key(parts[i], rows[i])
		if writes != nil && writes[i] {
			t.writes[i] = true
			anyWrite = true
		}
		t.accs[i] = txn.Access{Table: TableID, Part: t.parts[i], Key: t.keys[i], Write: t.writes[i]}
	}
	if anyWrite {
		row := w.schema.NewRow()
		buf := make([]byte, w.cfg.FieldSize)
		copy(buf, val)
		w.schema.SetBytes(row, 1, buf)
		t.ops = []storage.FieldOp{storage.SetFieldOp(w.schema, row, 1)}
	}
	return t
}

// ReadTxn builds a read-only transaction over the given rows (ReadOnly
// reports true, so session-fresh replicas may serve it from their fence
// snapshot).
func (w *Workload) ReadTxn(parts, rows []int) *Txn {
	return w.newExplicitTxn(parts, rows, nil, nil)
}

// WriteTxn builds a read-modify-write transaction: every access reads
// its row and installs val (padded or truncated to FieldSize) into
// column 1.
func (w *Workload) WriteTxn(parts, rows []int, val []byte) *Txn {
	writes := make([]bool, len(parts))
	for i := range writes {
		writes[i] = true
	}
	return w.newExplicitTxn(parts, rows, writes, val)
}

func (g *Gen) gen(home int, cross bool) txn.Procedure {
	cfg := g.w.cfg
	t := &Txn{
		w:      g.w,
		parts:  make([]int, cfg.OpsPerTxn),
		keys:   make([]storage.Key, cfg.OpsPerTxn),
		writes: make([]bool, cfg.OpsPerTxn),
	}
	g.rng.Read(g.val)
	g.w.schema.SetBytes(g.row, 1, g.val)
	t.ops = []storage.FieldOp{storage.SetFieldOp(g.w.schema, g.row, 1)}
	seen := make(map[storage.Key]struct{}, cfg.OpsPerTxn)
	for i := 0; i < cfg.OpsPerTxn; i++ {
		p := home
		if cross && i > 0 {
			p = g.rng.Intn(cfg.Partitions)
		}
		var k storage.Key
		for attempt := 0; ; attempt++ {
			k = g.w.Key(p, g.rng.Intn(cfg.RecordsPerPartition))
			if _, dup := seen[k]; !dup || attempt >= 8 {
				break
			}
		}
		seen[k] = struct{}{}
		t.parts[i] = p
		t.keys[i] = k
		t.writes[i] = i >= cfg.OpsPerTxn-cfg.WritesPerTxn
	}
	if cross {
		// Guarantee the transaction really is cross-partition.
		if allSame(t.parts) {
			t.parts[cfg.OpsPerTxn-1] = (home + 1) % cfg.Partitions
			t.keys[cfg.OpsPerTxn-1] = g.w.Key(t.parts[cfg.OpsPerTxn-1], g.rng.Intn(cfg.RecordsPerPartition))
		}
	}
	t.accs = make([]txn.Access, cfg.OpsPerTxn)
	for i := range t.keys {
		t.accs[i] = txn.Access{Table: TableID, Part: t.parts[i], Key: t.keys[i], Write: t.writes[i]}
	}
	return t
}

func allSame(ps []int) bool {
	for _, p := range ps[1:] {
		if p != ps[0] {
			return false
		}
	}
	return true
}

// Mixed implements workload.Gen.
func (g *Gen) Mixed(home int) txn.Procedure {
	return g.gen(home, g.rng.Intn(100) < g.w.cfg.CrossPct)
}

// Single implements workload.Gen.
func (g *Gen) Single(home int) txn.Procedure { return g.gen(home, false) }

// Cross implements workload.Gen.
func (g *Gen) Cross(home int) txn.Procedure { return g.gen(home, true) }
