package tpcc

import (
	"math/rand"

	"star/internal/storage"
	"star/internal/txn"
	"star/internal/workload"
)

// Gen implements workload.Gen for TPC-C. The standard mix is approximated
// as the paper does: "a NewOrder transaction is followed by a Payment
// transaction" (50/50 alternation).
type Gen struct {
	w     *Workload
	rng   *rand.Rand
	id    int // embedded in history keys for uniqueness
	hseq  uint64
	next  int // 0 → NewOrder, 1 → Payment
	cload int // NURand C constant
}

// NewGen implements workload.Workload.
func (w *Workload) NewGen(seed int64) workload.Gen {
	rng := rand.New(rand.NewSource(seed))
	return &Gen{w: w, rng: rng, id: int(uint64(seed) % 255), cload: rng.Intn(256)}
}

// nuRand is the standard TPC-C non-uniform random function.
func (g *Gen) nuRand(a, x, y int) int {
	return (((g.rng.Intn(a+1) | (x + g.rng.Intn(y-x+1))) + g.cload) % (y - x + 1)) + x
}

func (g *Gen) customerID() int { return g.nuRand(1023, 0, g.w.cfg.CustomersPerDistrict-1) }
func (g *Gen) itemID() int     { return g.nuRand(8191, 0, g.w.cfg.Items-1) }

// Mixed implements workload.Gen (NewOrder/Payment alternation, each
// cross-partition with its configured probability).
func (g *Gen) Mixed(home int) txn.Procedure {
	g.next = 1 - g.next
	if g.next == 1 {
		return g.newOrder(home, g.rng.Intn(100) < g.w.cfg.CrossPctNewOrder)
	}
	return g.payment(home, g.rng.Intn(100) < g.w.cfg.CrossPctPayment)
}

// Single implements workload.Gen.
func (g *Gen) Single(home int) txn.Procedure {
	g.next = 1 - g.next
	if g.next == 1 {
		return g.newOrder(home, false)
	}
	return g.payment(home, false)
}

// Cross implements workload.Gen.
func (g *Gen) Cross(home int) txn.Procedure {
	g.next = 1 - g.next
	if g.next == 1 {
		return g.newOrder(home, true)
	}
	return g.payment(home, true)
}

func (g *Gen) remoteWarehouse(home int) int {
	if g.w.cfg.Warehouses == 1 {
		return home
	}
	for {
		if r := g.rng.Intn(g.w.cfg.Warehouses); r != home {
			return r
		}
	}
}

// ---- NewOrder ----

type orderLineSpec struct {
	IID      int
	SupplyW  int
	Quantity int
}

// NewOrderTxn is the TPC-C NewOrder transaction.
type NewOrderTxn struct {
	W        *Workload
	WID, DID int
	CID      int
	Lines    []orderLineSpec
	Invalid  bool // carries an unused item id: must roll back
	EntryD   int64
}

// Name implements txn.Procedure.
func (t *NewOrderTxn) Name() string { return "tpcc.neworder" }

// Accesses implements txn.Procedure.
func (t *NewOrderTxn) Accesses() []txn.Access {
	accs := make([]txn.Access, 0, 3+len(t.Lines))
	accs = append(accs,
		txn.Access{Table: TWarehouse, Part: t.WID, Key: WKey(t.WID)},
		txn.Access{Table: TDistrict, Part: t.WID, Key: DKey(t.WID, t.DID), Write: true},
		txn.Access{Table: TCustomer, Part: t.WID, Key: CKey(t.WID, t.DID, t.CID)},
	)
	for _, l := range t.Lines {
		accs = append(accs, txn.Access{Table: TStock, Part: l.SupplyW, Key: SKey(l.SupplyW, l.IID), Write: true})
	}
	return accs
}

// Run implements txn.Procedure, following TPC-C §2.4.2.
func (t *NewOrderTxn) Run(ctx txn.Ctx) error {
	w := t.W
	if _, ok := ctx.Read(TWarehouse, t.WID, WKey(t.WID)); !ok {
		return txn.ErrConflict
	}
	drow, ok := ctx.Read(TDistrict, t.WID, DKey(t.WID, t.DID))
	if !ok {
		return txn.ErrConflict
	}
	oid := int(w.district.GetUint64(drow, DNextOID))
	ctx.Write(TDistrict, t.WID, DKey(t.WID, t.DID), storage.AddInt64Op(DNextOID, 1))
	if _, ok := ctx.Read(TCustomer, t.WID, CKey(t.WID, t.DID, t.CID)); !ok {
		return txn.ErrConflict
	}

	allLocal := int64(1)
	var total float64
	for i, l := range t.Lines {
		if l.IID >= w.cfg.Items { // invalid item: §2.4.1.5 rollback
			return txn.ErrUserAbort
		}
		irow, ok := ctx.Read(TItem, 0, IKey(l.IID))
		if !ok {
			return txn.ErrUserAbort
		}
		price := w.item.GetFloat64(irow, IPrice)
		srow, ok := ctx.Read(TStock, l.SupplyW, SKey(l.SupplyW, l.IID))
		if !ok {
			return txn.ErrConflict
		}
		qty := w.stock.GetInt64(srow, SQuantity)
		newQty := qty - int64(l.Quantity)
		if newQty < 10 {
			newQty += 91
		}
		ops := []storage.FieldOp{
			storage.AddInt64Op(SQuantity, newQty-qty),
			storage.AddFloat64Op(SYtd, float64(l.Quantity)),
			storage.AddInt64Op(SOrderCnt, 1),
		}
		if l.SupplyW != t.WID {
			allLocal = 0
			ops = append(ops, storage.AddInt64Op(SRemoteCnt, 1))
		}
		ctx.Write(TStock, l.SupplyW, SKey(l.SupplyW, l.IID), ops...)

		olrow := w.orderLine.NewRow()
		w.orderLine.SetUint64(olrow, OLIID, uint64(l.IID))
		w.orderLine.SetUint64(olrow, OLSupplyWID, uint64(l.SupplyW))
		w.orderLine.SetInt64(olrow, OLQuantity, int64(l.Quantity))
		amount := float64(l.Quantity) * price
		w.orderLine.SetFloat64(olrow, OLAmount, amount)
		w.orderLine.SetString(olrow, OLDistInfo, "dist-info-123456789012")
		ctx.Insert(TOrderLine, t.WID, OLKey(t.WID, t.DID, oid, i+1), olrow)
		total += amount
	}

	orow := w.order.NewRow()
	w.order.SetUint64(orow, OCID, uint64(t.CID))
	w.order.SetInt64(orow, OEntryD, t.EntryD)
	w.order.SetInt64(orow, OOlCnt, int64(len(t.Lines)))
	w.order.SetInt64(orow, OAllLocal, allLocal)
	ctx.Insert(TOrder, t.WID, OKey(t.WID, t.DID, oid), orow)

	norow := w.newOrder.NewRow()
	w.newOrder.SetUint64(norow, 0, uint64(oid))
	ctx.Insert(TNewOrder, t.WID, OKey(t.WID, t.DID, oid), norow)
	_ = total
	return nil
}

func (g *Gen) newOrder(home int, cross bool) txn.Procedure {
	cfg := g.w.cfg
	t := &NewOrderTxn{
		W:   g.w,
		WID: home,
		DID: g.rng.Intn(cfg.Districts),
		CID: g.customerID(),
	}
	nLines := 5 + g.rng.Intn(11)
	remote := -1
	if cross {
		remote = g.remoteWarehouse(home)
	}
	seen := make(map[int]struct{}, nLines)
	for i := 0; i < nLines; i++ {
		iid := g.itemID()
		for attempt := 0; ; attempt++ {
			if _, dup := seen[iid]; !dup || attempt > 8 {
				break
			}
			iid = g.itemID()
		}
		seen[iid] = struct{}{}
		supply := home
		if cross && (g.rng.Intn(2) == 0 || i == nLines-1) && remote != home {
			supply = remote
		}
		t.Lines = append(t.Lines, orderLineSpec{IID: iid, SupplyW: supply, Quantity: 1 + g.rng.Intn(10)})
	}
	if g.rng.Intn(100) < cfg.InvalidItemPct {
		t.Invalid = true
		t.Lines[len(t.Lines)-1].IID = cfg.Items + 1 // unused id → rollback
	}
	return t
}

// ---- Payment ----

// PaymentTxn is the TPC-C Payment transaction.
type PaymentTxn struct {
	W          *Workload
	WID, DID   int // home warehouse/district (takes the money)
	CWID, CDID int // customer residence (remote on cross-partition runs)
	CID        int
	ByName     bool
	CLast      []byte
	Amount     float64
	HSeq       uint64
	GenID      int
	Date       int64
}

// Name implements txn.Procedure.
func (t *PaymentTxn) Name() string { return "tpcc.payment" }

// Accesses implements txn.Procedure. By-last-name lookups are resolved
// to the median matching customer at generation time (through the same
// deterministic rule the loader uses for the secondary index), so the
// footprint is exact — which deterministic engines require.
func (t *PaymentTxn) Accesses() []txn.Access {
	return []txn.Access{
		{Table: TWarehouse, Part: t.WID, Key: WKey(t.WID), Write: true},
		{Table: TDistrict, Part: t.WID, Key: DKey(t.WID, t.DID), Write: true},
		{Table: TCustomer, Part: t.CWID, Key: CKey(t.CWID, t.CDID, t.CID), Write: true},
	}
}

// Run implements txn.Procedure, following TPC-C §2.5.2.
func (t *PaymentTxn) Run(ctx txn.Ctx) error {
	w := t.W
	if _, ok := ctx.Read(TWarehouse, t.WID, WKey(t.WID)); !ok {
		return txn.ErrConflict
	}
	ctx.Write(TWarehouse, t.WID, WKey(t.WID), storage.AddFloat64Op(WYtd, t.Amount))
	if _, ok := ctx.Read(TDistrict, t.WID, DKey(t.WID, t.DID)); !ok {
		return txn.ErrConflict
	}
	ctx.Write(TDistrict, t.WID, DKey(t.WID, t.DID), storage.AddFloat64Op(DYtd, t.Amount))

	cid := t.CID
	ckey := CKey(t.CWID, t.CDID, cid)
	crow, ok := ctx.Read(TCustomer, t.CWID, ckey)
	if !ok {
		return txn.ErrConflict
	}
	ops := []storage.FieldOp{
		storage.AddFloat64Op(CBalance, -t.Amount),
		storage.AddFloat64Op(CYtdPayment, t.Amount),
		storage.AddInt64Op(CPaymentCnt, 1),
	}
	if string(w.customer.GetBytes(crow, CCredit)) == "BC" {
		// Bad credit: prepend payment info to C_DATA, truncated at 500 —
		// the §5 poster child for operation replication.
		info := paymentInfo(cid, t.CDID, t.CWID, t.DID, t.WID, t.Amount)
		ops = append(ops, storage.PrependOp(CData, info))
	}
	ctx.Write(TCustomer, t.CWID, ckey, ops...)

	hrow := w.history.NewRow()
	w.history.SetFloat64(hrow, HAmount, t.Amount)
	w.history.SetInt64(hrow, HDate, t.Date)
	w.history.SetString(hrow, HData, "payment-history")
	ctx.Insert(THistory, t.WID, HKey(t.WID, t.GenID, t.HSeq), hrow)
	return nil
}

func paymentInfo(cid, cdid, cwid, did, wid int, amount float64) []byte {
	b := make([]byte, 0, 32)
	put := func(v int) {
		b = appendInt(b, v)
		b = append(b, ' ')
	}
	put(cid)
	put(cdid)
	put(cwid)
	put(did)
	put(wid)
	b = appendInt(b, int(amount*100))
	b = append(b, ';')
	return b
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

func (g *Gen) payment(home int, cross bool) txn.Procedure {
	cfg := g.w.cfg
	g.hseq++
	t := &PaymentTxn{
		W:      g.w,
		WID:    home,
		DID:    g.rng.Intn(cfg.Districts),
		CWID:   home,
		CDID:   g.rng.Intn(cfg.Districts),
		Amount: 1 + float64(g.rng.Intn(499999))/100,
		HSeq:   g.hseq,
		GenID:  g.id,
	}
	if cross {
		t.CWID = g.remoteWarehouse(home)
	}
	if g.rng.Intn(100) < cfg.PaymentByName {
		t.ByName = true
		num := g.nuRand(255, 0, 999)
		t.CLast = []byte(LastName(num))
		// Resolve the median matching customer deterministically at
		// generation time (customers with cid%1000 == num share the name,
		// ordered by cid which the loader aligns with first name).
		matches := cfg.CustomersPerDistrict / 1000
		if cfg.CustomersPerDistrict%1000 > num {
			matches++
		}
		if matches == 0 {
			t.ByName = false
			t.CID = g.customerID()
		} else {
			t.CID = (matches/2)*1000 + num
			if t.CID >= cfg.CustomersPerDistrict {
				t.CID = num % cfg.CustomersPerDistrict
			}
		}
	} else {
		t.CID = g.customerID()
	}
	return t
}
