package tpcc

import (
	"math/rand"

	"star/internal/storage"
	"star/internal/txn"
	"star/internal/workload"
)

// Gen implements workload.Gen for TPC-C. With the paper's 2-txn subset
// (the default) the mix is approximated as the paper does: "a NewOrder
// transaction is followed by a Payment transaction" (50/50 alternation).
// With Delivery/Stock-Level percentages configured (SetFullMix) classes
// are drawn by weight, the NewOrder/Payment remainder keeping its
// standard 45:43 ratio.
type Gen struct {
	w     *Workload
	rng   *rand.Rand
	id    int // embedded in history keys for uniqueness
	hseq  uint64
	next  int // 0 → NewOrder, 1 → Payment
	cload int // NURand C constant
	hist  []histEnt // payment-history FIFO the trimmer drains (TrimPct > 0)
}

// histEnt remembers where one Payment put its history row so a later
// Trim batch can reclaim it.
type histEnt struct {
	wid int
	seq uint64
}

// Transaction classes pick() draws from.
const (
	clsNewOrder = iota
	clsPayment
	clsDelivery
	clsStockLevel
	clsOrderStatus
	clsTrim
)

// pick draws the next transaction class. The paper subset (no Delivery,
// Stock-Level, Order-Status or Trim share) keeps the seed's strict
// alternation — and its rng stream — so existing runs reproduce
// bit-for-bit.
func (g *Gen) pick() int {
	cfg := g.w.cfg
	if cfg.DeliveryPct <= 0 && cfg.StockLevelPct <= 0 && cfg.OrderStatusPct <= 0 && cfg.TrimPct <= 0 {
		g.next = 1 - g.next
		if g.next == 1 {
			return clsNewOrder
		}
		return clsPayment
	}
	r := g.rng.Intn(100)
	d, sl, os, tr := cfg.DeliveryPct, cfg.StockLevelPct, cfg.OrderStatusPct, cfg.TrimPct
	switch {
	case r < d:
		return clsDelivery
	case r < d+sl:
		return clsStockLevel
	case r < d+sl+os:
		return clsOrderStatus
	case r < d+sl+os+tr:
		return clsTrim
	default:
		rem := r - d - sl - os - tr
		span := 100 - d - sl - os - tr
		if rem*88 < span*45 { // NewOrder:Payment stays 45:43
			return clsNewOrder
		}
		return clsPayment
	}
}

// NewGen implements workload.Workload.
func (w *Workload) NewGen(seed int64) workload.Gen {
	rng := rand.New(rand.NewSource(seed))
	return &Gen{w: w, rng: rng, id: int(uint64(seed) % 255), cload: rng.Intn(256)}
}

// nuRand is the standard TPC-C non-uniform random function.
func (g *Gen) nuRand(a, x, y int) int {
	return (((g.rng.Intn(a+1) | (x + g.rng.Intn(y-x+1))) + g.cload) % (y - x + 1)) + x
}

func (g *Gen) customerID() int { return g.nuRand(1023, 0, g.w.cfg.CustomersPerDistrict-1) }
func (g *Gen) itemID() int     { return g.nuRand(8191, 0, g.w.cfg.Items-1) }

// Mixed implements workload.Gen: the configured mix, each class
// cross-partition with its configured probability.
func (g *Gen) Mixed(home int) txn.Procedure {
	switch g.pick() {
	case clsDelivery:
		return g.delivery(home)
	case clsTrim:
		return g.trim(home)
	case clsStockLevel:
		return g.stockLevel(home, g.rng.Intn(100) < g.w.cfg.CrossPctStockLevel)
	case clsOrderStatus:
		return g.orderStatus(home, g.rng.Intn(100) < g.w.cfg.CrossPctOrderStatus)
	case clsNewOrder:
		return g.newOrder(home, g.rng.Intn(100) < g.w.cfg.CrossPctNewOrder)
	default:
		return g.payment(home, g.rng.Intn(100) < g.w.cfg.CrossPctPayment)
	}
}

// Single implements workload.Gen.
func (g *Gen) Single(home int) txn.Procedure {
	switch g.pick() {
	case clsDelivery:
		return g.delivery(home)
	case clsTrim:
		return g.trim(home)
	case clsStockLevel:
		return g.stockLevel(home, false)
	case clsOrderStatus:
		return g.orderStatus(home, false)
	case clsNewOrder:
		return g.newOrder(home, false)
	default:
		return g.payment(home, false)
	}
}

// Cross implements workload.Gen. Delivery and Trim have no
// cross-partition form (both serve exactly one warehouse), so their
// shares map to cross NewOrder here.
func (g *Gen) Cross(home int) txn.Procedure {
	switch g.pick() {
	case clsStockLevel:
		return g.stockLevel(home, true)
	case clsOrderStatus:
		return g.orderStatus(home, true)
	case clsNewOrder, clsDelivery, clsTrim:
		return g.newOrder(home, true)
	default:
		return g.payment(home, true)
	}
}

func (g *Gen) remoteWarehouse(home int) int {
	if g.w.cfg.Warehouses == 1 {
		return home
	}
	for {
		if r := g.rng.Intn(g.w.cfg.Warehouses); r != home {
			return r
		}
	}
}

// ---- NewOrder ----

type orderLineSpec struct {
	IID      int
	SupplyW  int
	Quantity int
}

// NewOrderTxn is the TPC-C NewOrder transaction.
type NewOrderTxn struct {
	W        *Workload
	WID, DID int
	CID      int
	Lines    []orderLineSpec
	Invalid  bool // carries an unused item id: must roll back
	EntryD   int64
}

// Name implements txn.Procedure.
func (t *NewOrderTxn) Name() string { return "tpcc.neworder" }

// Accesses implements txn.Procedure.
func (t *NewOrderTxn) Accesses() []txn.Access {
	accs := make([]txn.Access, 0, 3+len(t.Lines))
	accs = append(accs,
		txn.Access{Table: TWarehouse, Part: t.WID, Key: WKey(t.WID)},
		txn.Access{Table: TDistrict, Part: t.WID, Key: DKey(t.WID, t.DID), Write: true},
		txn.Access{Table: TCustomer, Part: t.WID, Key: CKey(t.WID, t.DID, t.CID)},
	)
	for _, l := range t.Lines {
		accs = append(accs, txn.Access{Table: TStock, Part: l.SupplyW, Key: SKey(l.SupplyW, l.IID), Write: true})
	}
	return accs
}

// Run implements txn.Procedure, following TPC-C §2.4.2.
func (t *NewOrderTxn) Run(ctx txn.Ctx) error {
	w := t.W
	if _, ok := ctx.Read(TWarehouse, t.WID, WKey(t.WID)); !ok {
		return txn.ErrConflict
	}
	drow, ok := ctx.Read(TDistrict, t.WID, DKey(t.WID, t.DID))
	if !ok {
		return txn.ErrConflict
	}
	oid := int(w.district.GetUint64(drow, DNextOID))
	ctx.Write(TDistrict, t.WID, DKey(t.WID, t.DID), storage.AddInt64Op(DNextOID, 1))
	if _, ok := ctx.Read(TCustomer, t.WID, CKey(t.WID, t.DID, t.CID)); !ok {
		return txn.ErrConflict
	}

	allLocal := int64(1)
	var total float64
	for i, l := range t.Lines {
		if l.IID >= w.cfg.Items { // invalid item: §2.4.1.5 rollback
			return txn.ErrUserAbort
		}
		irow, ok := ctx.Read(TItem, 0, IKey(l.IID))
		if !ok {
			return txn.ErrUserAbort
		}
		price := w.item.GetFloat64(irow, IPrice)
		srow, ok := ctx.Read(TStock, l.SupplyW, SKey(l.SupplyW, l.IID))
		if !ok {
			return txn.ErrConflict
		}
		qty := w.stock.GetInt64(srow, SQuantity)
		newQty := qty - int64(l.Quantity)
		if newQty < 10 {
			newQty += 91
		}
		ops := []storage.FieldOp{
			storage.AddInt64Op(SQuantity, newQty-qty),
			storage.AddFloat64Op(SYtd, float64(l.Quantity)),
			storage.AddInt64Op(SOrderCnt, 1),
		}
		if l.SupplyW != t.WID {
			allLocal = 0
			ops = append(ops, storage.AddInt64Op(SRemoteCnt, 1))
		}
		ctx.Write(TStock, l.SupplyW, SKey(l.SupplyW, l.IID), ops...)

		olrow := w.orderLine.NewRow()
		w.orderLine.SetUint64(olrow, OLIID, uint64(l.IID))
		w.orderLine.SetUint64(olrow, OLSupplyWID, uint64(l.SupplyW))
		w.orderLine.SetInt64(olrow, OLQuantity, int64(l.Quantity))
		amount := float64(l.Quantity) * price
		w.orderLine.SetFloat64(olrow, OLAmount, amount)
		w.orderLine.SetString(olrow, OLDistInfo, "dist-info-123456789012")
		ctx.Insert(TOrderLine, t.WID, OLKey(t.WID, t.DID, oid, i+1), olrow)
		total += amount
	}

	orow := w.order.NewRow()
	w.order.SetUint64(orow, OCID, uint64(t.CID))
	w.order.SetInt64(orow, OEntryD, t.EntryD)
	w.order.SetInt64(orow, OOlCnt, int64(len(t.Lines)))
	w.order.SetInt64(orow, OAllLocal, allLocal)
	ctx.Insert(TOrder, t.WID, OKey(t.WID, t.DID, oid), orow)

	norow := w.newOrder.NewRow()
	w.newOrder.SetUint64(norow, 0, uint64(oid))
	ctx.Insert(TNewOrder, t.WID, OKey(t.WID, t.DID, oid), norow)
	_ = total
	return nil
}

func (g *Gen) newOrder(home int, cross bool) txn.Procedure {
	cfg := g.w.cfg
	t := &NewOrderTxn{
		W:   g.w,
		WID: home,
		DID: g.rng.Intn(cfg.Districts),
		CID: g.customerID(),
	}
	nLines := 5 + g.rng.Intn(11)
	remote := -1
	if cross {
		remote = g.remoteWarehouse(home)
	}
	seen := make(map[int]struct{}, nLines)
	for i := 0; i < nLines; i++ {
		iid := g.itemID()
		for attempt := 0; ; attempt++ {
			if _, dup := seen[iid]; !dup || attempt > 8 {
				break
			}
			iid = g.itemID()
		}
		seen[iid] = struct{}{}
		supply := home
		if cross && (g.rng.Intn(2) == 0 || i == nLines-1) && remote != home {
			supply = remote
		}
		t.Lines = append(t.Lines, orderLineSpec{IID: iid, SupplyW: supply, Quantity: 1 + g.rng.Intn(10)})
	}
	if g.rng.Intn(100) < cfg.InvalidItemPct {
		t.Invalid = true
		t.Lines[len(t.Lines)-1].IID = cfg.Items + 1 // unused id → rollback
	}
	return t
}

// ---- Payment ----

// PaymentTxn is the TPC-C Payment transaction.
type PaymentTxn struct {
	W          *Workload
	WID, DID   int // home warehouse/district (takes the money)
	CWID, CDID int // customer residence (remote on cross-partition runs)
	CID        int
	ByName     bool
	CLast      []byte
	Amount     float64
	HSeq       uint64
	GenID      int
	Date       int64
}

// Name implements txn.Procedure.
func (t *PaymentTxn) Name() string { return "tpcc.payment" }

// Accesses implements txn.Procedure. A by-last-name Payment cannot name
// its customer a priori: it declares an index-prefetch access instead —
// a synthetic lock name (serializing conflicting by-name lookups on
// deterministic engines) carrying the index id and lookup value, which
// push-based engines resolve on the customer partition's master. The
// dependent customer update is made of commutative record-latched field
// ops, the same tolerance Delivery's cursor-dependent writes rely on.
func (t *PaymentTxn) Accesses() []txn.Access {
	cust := txn.Access{Table: TCustomer, Part: t.CWID, Key: CKey(t.CWID, t.CDID, t.CID), Write: true}
	if t.ByName {
		cust = txn.Access{
			Table: TCustomer, Part: t.CWID, Key: nameLockKey(t.CWID, t.CDID, t.CLast),
			Write: true, LockOnly: true,
			Index: CustNameIdx, IndexVal: CustNameVal(nil, t.CDID, t.CLast),
		}
	}
	return []txn.Access{
		{Table: TWarehouse, Part: t.WID, Key: WKey(t.WID), Write: true},
		{Table: TDistrict, Part: t.WID, Key: DKey(t.WID, t.DID), Write: true},
		cust,
	}
}

// Run implements txn.Procedure, following TPC-C §2.5.2.
func (t *PaymentTxn) Run(ctx txn.Ctx) error {
	w := t.W
	if _, ok := ctx.Read(TWarehouse, t.WID, WKey(t.WID)); !ok {
		return txn.ErrConflict
	}
	ctx.Write(TWarehouse, t.WID, WKey(t.WID), storage.AddFloat64Op(WYtd, t.Amount))
	if _, ok := ctx.Read(TDistrict, t.WID, DKey(t.WID, t.DID)); !ok {
		return txn.ErrConflict
	}
	ctx.Write(TDistrict, t.WID, DKey(t.WID, t.DID), storage.AddFloat64Op(DYtd, t.Amount))

	cid := t.CID
	if t.ByName {
		// §2.5.2.2: resolve C_LAST through the secondary index at
		// execution time — sorted matches, pick the median. The loader
		// aligns customer ids with first names, so key order is the
		// standard sort order.
		var kbuf [8]storage.Key
		var vbuf [24]byte
		matches := ctx.LookupIndex(TCustomer, t.CWID, CustNameIdx,
			CustNameVal(vbuf[:0], t.CDID, t.CLast), kbuf[:0])
		if len(matches) == 0 {
			return txn.ErrUserAbort // no customer carries this name
		}
		cid = CIDOfKey(matches[len(matches)/2])
	}
	ckey := CKey(t.CWID, t.CDID, cid)
	crow, ok := ctx.Read(TCustomer, t.CWID, ckey)
	if !ok {
		return txn.ErrConflict
	}
	ops := []storage.FieldOp{
		storage.AddFloat64Op(CBalance, -t.Amount),
		storage.AddFloat64Op(CYtdPayment, t.Amount),
		storage.AddInt64Op(CPaymentCnt, 1),
	}
	if string(w.customer.GetBytes(crow, CCredit)) == "BC" {
		// Bad credit: prepend payment info to C_DATA, truncated at 500 —
		// the §5 poster child for operation replication.
		info := paymentInfo(cid, t.CDID, t.CWID, t.DID, t.WID, t.Amount)
		ops = append(ops, storage.PrependOp(CData, info))
	}
	ctx.Write(TCustomer, t.CWID, ckey, ops...)

	hrow := w.history.NewRow()
	w.history.SetFloat64(hrow, HAmount, t.Amount)
	w.history.SetInt64(hrow, HDate, t.Date)
	w.history.SetString(hrow, HData, "payment-history")
	ctx.Insert(THistory, t.WID, HKey(t.WID, t.GenID, t.HSeq), hrow)
	return nil
}

func paymentInfo(cid, cdid, cwid, did, wid int, amount float64) []byte {
	b := make([]byte, 0, 32)
	put := func(v int) {
		b = appendInt(b, v)
		b = append(b, ' ')
	}
	put(cid)
	put(cdid)
	put(cwid)
	put(did)
	put(wid)
	b = appendInt(b, int(amount*100))
	b = append(b, ';')
	return b
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// ---- Delivery ----

// DeliveryTxn is the TPC-C Delivery transaction (§2.7): one batch that,
// for every district of a warehouse, delivers the oldest undelivered
// order — stamping O_CARRIER_ID and OL_DELIVERY_D and crediting the
// customer's balance with the order's total. Per §2.7.2 it executes in
// deferred mode (Deferred() is true): phase-switching engines queue it
// to the single-master phase instead of running it inline.
//
// The oldest undelivered order is tracked by the district's
// D_NEXT_DEL_O_ID cursor (undelivered ids are [cursor, D_NEXT_O_ID)), a
// standard in-memory TPC-C device that makes the lookup a point read.
// Delivery deletes the NEW-ORDER row it serves (§2.7.4.2's "the row in
// the NEW-ORDER table is deleted"), so row presence and the cursor
// agree on "undelivered". The NEW-ORDER read happens before the cursor
// write: read-first means a missing row skips the district per
// §2.7.4.2 with no cursor advance left behind to revert on abort.
type DeliveryTxn struct {
	W         *Workload
	WID       int
	Carrier   int64 // O_CARRIER_ID ∈ [1,10]
	DeliveryD int64 // OL_DELIVERY_D stamp
}

// Name implements txn.Procedure.
func (t *DeliveryTxn) Name() string { return "tpcc.delivery" }

// Deferred implements txn.DeferredMarker (§2.7.2 deferred execution).
func (t *DeliveryTxn) Deferred() bool { return true }

// Accesses implements txn.Procedure: the per-district delivery cursors,
// in write mode. The order/order-line/customer rows depend on cursor
// values read at execution time and cannot be declared a priori;
// lock-based engines serialise conflicting Deliveries (and NewOrders)
// on the district rows, and the dependent updates are commutative
// record-latched field ops.
func (t *DeliveryTxn) Accesses() []txn.Access {
	accs := make([]txn.Access, 0, t.W.cfg.Districts)
	for did := 0; did < t.W.cfg.Districts; did++ {
		accs = append(accs, txn.Access{Table: TDistrict, Part: t.WID, Key: DKey(t.WID, did), Write: true})
	}
	return accs
}

// Run implements txn.Procedure, following §2.7.4. Districts with no
// undelivered order are skipped (§2.7.4.2: the result is still a
// committed transaction).
func (t *DeliveryTxn) Run(ctx txn.Ctx) error {
	w := t.W
	for did := 0; did < w.cfg.Districts; did++ {
		drow, ok := ctx.Read(TDistrict, t.WID, DKey(t.WID, did))
		if !ok {
			return txn.ErrConflict
		}
		nextO := int(w.district.GetUint64(drow, DNextOID))
		oid := int(w.district.GetUint64(drow, DNextDelOID))
		if oid >= nextO {
			continue // nothing undelivered in this district
		}
		// Confirm the NEW-ORDER row before touching the cursor: a miss
		// skips the district (§2.7.4.2 — the batch still commits), and
		// read-first leaves no cursor write behind to revert on abort.
		if _, ok := ctx.Read(TNewOrder, t.WID, OKey(t.WID, did, oid)); !ok {
			continue
		}
		ctx.Write(TDistrict, t.WID, DKey(t.WID, did), storage.AddInt64Op(DNextDelOID, 1))
		ctx.Delete(TNewOrder, t.WID, OKey(t.WID, did, oid))
		orow, ok := ctx.Read(TOrder, t.WID, OKey(t.WID, did, oid))
		if !ok {
			return txn.ErrConflict
		}
		cid := int(w.order.GetUint64(orow, OCID))
		olCnt := int(w.order.GetInt64(orow, OOlCnt))
		ctx.Write(TOrder, t.WID, OKey(t.WID, did, oid), storage.SetInt64Op(OCarrierID, t.Carrier))
		var total float64
		for ol := 1; ol <= olCnt; ol++ {
			olrow, ok := ctx.Read(TOrderLine, t.WID, OLKey(t.WID, did, oid, ol))
			if !ok {
				return txn.ErrConflict
			}
			total += w.orderLine.GetFloat64(olrow, OLAmount)
			ctx.Write(TOrderLine, t.WID, OLKey(t.WID, did, oid, ol),
				storage.SetInt64Op(OLDeliveryD, t.DeliveryD))
		}
		ctx.Write(TCustomer, t.WID, CKey(t.WID, did, cid),
			storage.AddFloat64Op(CBalance, total),
			storage.AddInt64Op(CDeliveryCnt, 1))
	}
	return nil
}

func (g *Gen) delivery(home int) txn.Procedure {
	return &DeliveryTxn{
		W:         g.w,
		WID:       home,
		Carrier:   int64(1 + g.rng.Intn(10)),
		DeliveryD: int64(1 + g.rng.Intn(1<<20)),
	}
}

// ---- Trim ----

// trimBatch bounds one Trim's work per district; trimHistBatch bounds
// the history rows riding along.
const (
	trimBatch     = 8
	trimHistBatch = 32
)

// TrimTxn is the garbage-collecting batch behind sustained-load runs:
// for every district of a warehouse it physically deletes delivered
// orders — and their order lines — more than Retain behind the
// delivery cursor, advancing the district's D_TRIM_O_ID low-water
// cursor; the generating worker's old payment-history rows ride along.
// Delivery stamps rows and moves on, so without trimming a long
// full-mix run grows ORDER/ORDER-LINE/HISTORY without bound. Like
// Delivery it executes deferred and declares only the district
// cursors: conflicting Trims, Deliveries and NewOrders serialise on
// those rows, and the trimmed range sits below every reader's window
// (Stock-Level reads near D_NEXT_O_ID, Order-Status walks back from
// the newest visible order; both tolerate missing rows by design).
type TrimTxn struct {
	W        *Workload
	WID      int
	Retain   int // delivered orders left in place per district
	Batch    int // max orders reclaimed per district per batch
	GenID    int
	HistSeqs []uint64 // this generator's history rows to reclaim
}

// Name implements txn.Procedure.
func (t *TrimTxn) Name() string { return "tpcc.trim" }

// Deferred implements txn.DeferredMarker: like Delivery, trimming is
// background work queued to the single-master phase.
func (t *TrimTxn) Deferred() bool { return true }

// Accesses implements txn.Procedure: the per-district trim cursors, in
// write mode (the same declaration shape as Delivery — the deleted
// rows depend on cursor values read at execution time).
func (t *TrimTxn) Accesses() []txn.Access {
	accs := make([]txn.Access, 0, t.W.cfg.Districts)
	for did := 0; did < t.W.cfg.Districts; did++ {
		accs = append(accs, txn.Access{Table: TDistrict, Part: t.WID, Key: DKey(t.WID, did), Write: true})
	}
	return accs
}

// Run implements txn.Procedure. Only rows read as present are deleted,
// so a batch racing a snapshot or an earlier trim skips instead of
// aborting; the cursor advances over skipped ids too (they are gone
// either way).
func (t *TrimTxn) Run(ctx txn.Ctx) error {
	w := t.W
	for did := 0; did < w.cfg.Districts; did++ {
		drow, ok := ctx.Read(TDistrict, t.WID, DKey(t.WID, did))
		if !ok {
			return txn.ErrConflict
		}
		lo := int(w.district.GetUint64(drow, DTrimOID))
		hi := int(w.district.GetUint64(drow, DNextDelOID)) - 1 - t.Retain
		n := 0
		for oid := lo; oid <= hi && n < t.Batch; oid++ {
			if orow, ok := ctx.Read(TOrder, t.WID, OKey(t.WID, did, oid)); ok {
				olCnt := int(w.order.GetInt64(orow, OOlCnt))
				for ol := 1; ol <= olCnt; ol++ {
					if _, ok := ctx.Read(TOrderLine, t.WID, OLKey(t.WID, did, oid, ol)); ok {
						ctx.Delete(TOrderLine, t.WID, OLKey(t.WID, did, oid, ol))
					}
				}
				ctx.Delete(TOrder, t.WID, OKey(t.WID, did, oid))
			}
			n++
		}
		if n > 0 {
			ctx.Write(TDistrict, t.WID, DKey(t.WID, did), storage.AddInt64Op(DTrimOID, int64(n)))
		}
	}
	for _, seq := range t.HistSeqs {
		if _, ok := ctx.Read(THistory, t.WID, HKey(t.WID, t.GenID, seq)); ok {
			ctx.Delete(THistory, t.WID, HKey(t.WID, t.GenID, seq))
		}
	}
	return nil
}

func (g *Gen) trim(home int) txn.Procedure {
	cfg := g.w.cfg
	t := &TrimTxn{W: g.w, WID: home, Retain: cfg.TrimRetain, Batch: trimBatch, GenID: g.id}
	// Drain this generator's payment-history FIFO: entries beyond the
	// retained tail that were written at the home warehouse ride along.
	if excess := len(g.hist) - cfg.TrimRetain; excess > 0 {
		kept := g.hist[:0]
		for i, h := range g.hist {
			if i < excess && h.wid == home && len(t.HistSeqs) < trimHistBatch {
				t.HistSeqs = append(t.HistSeqs, h.seq)
				continue
			}
			kept = append(kept, h)
		}
		g.hist = kept
	}
	return t
}

// ---- Stock-Level ----

// maxScanLines bounds Stock-Level's distinct-item scratch: 20 orders of
// at most 15 lines each (§2.8.2.2).
const maxScanLines = 20 * 15

// StockLevelTxn is the TPC-C Stock-Level transaction (§2.8): count the
// distinct items of the district's last 20 orders whose stock quantity
// is below a threshold. It is read-only (ReadOnly() is true), so an
// engine with epoch-fenced replicas can serve it from a local snapshot.
// The non-standard Remote variant additionally checks the same items'
// stock in other warehouses (low anywhere counts) — the read-only
// cross-partition class the snapshot path exists for.
type StockLevelTxn struct {
	W         *Workload
	WID, DID  int
	Threshold int64 // §2.8.1.2: uniform within [10,20]
	Remote    []int // extra warehouses to check (empty = standard)

	// LowStock is the result (set by Run; not a parameter, not encoded).
	LowStock int
}

// Name implements txn.Procedure.
func (t *StockLevelTxn) Name() string { return "tpcc.stocklevel" }

// ReadOnly implements txn.ReadOnlyMarker.
func (t *StockLevelTxn) ReadOnly() bool { return true }

// Accesses implements txn.Procedure: the district cursor read plus one
// warehouse-row read per remote warehouse (which also declares the
// partition for routing). The order/order-line/stock point reads are
// cursor-dependent and resolved at execution time.
func (t *StockLevelTxn) Accesses() []txn.Access {
	accs := make([]txn.Access, 0, 1+len(t.Remote))
	accs = append(accs, txn.Access{Table: TDistrict, Part: t.WID, Key: DKey(t.WID, t.DID)})
	for _, rw := range t.Remote {
		accs = append(accs, txn.Access{Table: TWarehouse, Part: rw, Key: WKey(rw)})
	}
	return accs
}

// Run implements txn.Procedure, following §2.8.2. The count is returned
// to the terminal and nothing is written, so reads that miss — e.g. a
// remote row on an engine that cannot serve undeclared remote reads —
// skip the item instead of aborting.
func (t *StockLevelTxn) Run(ctx txn.Ctx) error {
	w := t.W
	drow, ok := ctx.Read(TDistrict, t.WID, DKey(t.WID, t.DID))
	if !ok {
		return txn.ErrConflict
	}
	nextO := int(w.district.GetUint64(drow, DNextOID))
	lo := nextO - 20
	if lo < 1 {
		lo = 1
	}
	var seen [maxScanLines]uint32
	nSeen, low := 0, 0
	for oid := lo; oid < nextO; oid++ {
		orow, ok := ctx.Read(TOrder, t.WID, OKey(t.WID, t.DID, oid))
		if !ok {
			continue
		}
		olCnt := int(w.order.GetInt64(orow, OOlCnt))
		for ol := 1; ol <= olCnt; ol++ {
			olrow, ok := ctx.Read(TOrderLine, t.WID, OLKey(t.WID, t.DID, oid, ol))
			if !ok {
				continue
			}
			iid := uint32(w.orderLine.GetUint64(olrow, OLIID))
			dup := false
			for i := 0; i < nSeen; i++ {
				if seen[i] == iid {
					dup = true
					break
				}
			}
			if dup || nSeen == len(seen) {
				continue
			}
			seen[nSeen] = iid
			nSeen++
			below := false
			if srow, ok := ctx.Read(TStock, t.WID, SKey(t.WID, int(iid))); ok {
				below = w.stock.GetInt64(srow, SQuantity) < t.Threshold
			}
			for _, rw := range t.Remote {
				if below {
					break
				}
				if srow, ok := ctx.Read(TStock, rw, SKey(rw, int(iid))); ok {
					below = w.stock.GetInt64(srow, SQuantity) < t.Threshold
				}
			}
			if below {
				low++
			}
		}
	}
	t.LowStock = low
	return nil
}

func (g *Gen) stockLevel(home int, cross bool) txn.Procedure {
	t := &StockLevelTxn{
		W:         g.w,
		WID:       home,
		DID:       g.rng.Intn(g.w.cfg.Districts),
		Threshold: int64(10 + g.rng.Intn(11)),
	}
	if cross {
		if rw := g.remoteWarehouse(home); rw != home {
			t.Remote = []int{rw}
		}
	}
	return t
}

func (g *Gen) payment(home int, cross bool) txn.Procedure {
	cfg := g.w.cfg
	g.hseq++
	t := &PaymentTxn{
		W:      g.w,
		WID:    home,
		DID:    g.rng.Intn(cfg.Districts),
		CWID:   home,
		CDID:   g.rng.Intn(cfg.Districts),
		Amount: 1 + float64(g.rng.Intn(499999))/100,
		HSeq:   g.hseq,
		GenID:  g.id,
	}
	if cross {
		t.CWID = g.remoteWarehouse(home)
	}
	if cfg.TrimPct > 0 {
		// Remember where the history row lands so a later Trim batch
		// can reclaim it once it falls out of the retained tail.
		g.hist = append(g.hist, histEnt{wid: home, seq: g.hseq})
	}
	if g.rng.Intn(100) < cfg.PaymentByName {
		num := g.nuRand(255, 0, 999)
		if num < cfg.CustomersPerDistrict {
			// The customer is named, not numbered: resolution to the
			// median match happens at execution time through the
			// secondary index (PaymentTxn.Run).
			t.ByName = true
			t.CLast = []byte(LastName(num))
			t.CID = -1
		} else {
			// No customer carries this name at this (sub-standard)
			// scale; fall back to the by-id form. Same rng draws as the
			// seed's generation-time fallback.
			t.CID = g.customerID()
		}
	} else {
		t.CID = g.customerID()
	}
	return t
}

// ---- Order-Status ----

// osMaxLines bounds an order's line scratch (§2.6: up to 15 lines).
const osMaxLines = 15

// OrderStatusTxn is the TPC-C Order-Status transaction (§2.6): report a
// customer's balance and the state of their most recent order (carrier,
// entry date, every line's item/quantity/amount/delivery date). The
// customer is selected by last name PaymentByName percent of the time
// and resolved — sorted matches, pick the median — through the
// customer_by_name secondary index at execution time; the most recent
// order comes from the order_by_customer index (entries sort by
// ascending order id within a customer, so the last match is the newest
// order). It is read-only (ReadOnly() is true), so an engine with
// epoch-fenced replicas serves it from a local snapshot.
//
// The non-standard cross variant (CWID != WID) asks about a customer of
// a remote warehouse from the home terminal — the by-name read-only
// cross-partition class the snapshot path exists for, symmetric with
// Payment's remote-customer form.
type OrderStatusTxn struct {
	W          *Workload
	WID        int // home terminal's warehouse (read; declares routing)
	CWID, CDID int // customer residence (remote on the cross variant)
	CID        int // -1 when ByName
	ByName     bool
	CLast      []byte

	// Results (set by Run; not parameters, not encoded).
	Balance float64
	OrderID int
	Lines   int
}

// Name implements txn.Procedure.
func (t *OrderStatusTxn) Name() string { return "tpcc.orderstatus" }

// ReadOnly implements txn.ReadOnlyMarker.
func (t *OrderStatusTxn) ReadOnly() bool { return true }

// Accesses implements txn.Procedure: the home warehouse row (which also
// declares the home partition for routing) plus the customer — named
// directly, or as an index-prefetch access (see PaymentTxn.Accesses).
// The order/order-line reads depend on index lookups resolved at
// execution time and are undeclared, like Stock-Level's cursor walk;
// reads that miss skip instead of aborting.
func (t *OrderStatusTxn) Accesses() []txn.Access {
	cust := txn.Access{Table: TCustomer, Part: t.CWID, Key: CKey(t.CWID, t.CDID, t.CID)}
	if t.ByName {
		cust = txn.Access{
			Table: TCustomer, Part: t.CWID, Key: nameLockKey(t.CWID, t.CDID, t.CLast),
			LockOnly: true,
			Index:    CustNameIdx, IndexVal: CustNameVal(nil, t.CDID, t.CLast),
		}
	}
	return []txn.Access{
		{Table: TWarehouse, Part: t.WID, Key: WKey(t.WID)},
		cust,
	}
}

// Run implements txn.Procedure, following §2.6.2. Nothing is written;
// a snapshot or remote read that misses ends the query early with what
// was found (still a committed read-only transaction).
func (t *OrderStatusTxn) Run(ctx txn.Ctx) error {
	w := t.W
	if _, ok := ctx.Read(TWarehouse, t.WID, WKey(t.WID)); !ok {
		return txn.ErrConflict
	}
	cid := t.CID
	if t.ByName {
		var kbuf [8]storage.Key
		var vbuf [24]byte
		matches := ctx.LookupIndex(TCustomer, t.CWID, CustNameIdx,
			CustNameVal(vbuf[:0], t.CDID, t.CLast), kbuf[:0])
		if len(matches) == 0 {
			return nil // nobody by that name: empty status, committed
		}
		cid = CIDOfKey(matches[len(matches)/2])
	}
	crow, ok := ctx.Read(TCustomer, t.CWID, CKey(t.CWID, t.CDID, cid))
	if !ok {
		return nil
	}
	t.Balance = w.customer.GetFloat64(crow, CBalance)

	// Only the newest few orders matter: contexts that implement the
	// bounded tail lookup (the STAR execution and snapshot paths) resolve
	// it in one descent instead of materialising the customer's whole
	// order history; remote-resolution contexts fall back to the full
	// lookup and the tail is taken below either way.
	var obuf [16]storage.Key
	var vbuf [16]byte
	oval := OrderCustVal(vbuf[:0], t.CDID, cid)
	var orders []storage.Key
	if tr, ok := ctx.(txn.IndexTailReader); ok {
		orders = tr.LookupIndexTail(TOrder, t.CWID, OrderCustIdx, oval, len(obuf), obuf[:0])
	} else {
		orders = ctx.LookupIndex(TOrder, t.CWID, OrderCustIdx, oval, obuf[:0])
	}
	if len(orders) == 0 {
		return nil // no order yet (fresh database): empty status
	}
	// Entries are ascending by order id: the last one is the newest.
	// The index may overshoot (an entry whose insert is in flight on the
	// snapshot path reads absent) — walk backwards to the newest order
	// that is actually visible.
	for i := len(orders) - 1; i >= 0; i-- {
		okey := orders[i]
		orow, ok := ctx.Read(TOrder, t.CWID, okey)
		if !ok {
			continue
		}
		oid := OIDOfKey(okey)
		t.OrderID = oid
		olCnt := int(w.order.GetInt64(orow, OOlCnt))
		if olCnt > osMaxLines {
			olCnt = osMaxLines
		}
		for ol := 1; ol <= olCnt; ol++ {
			olrow, ok := ctx.Read(TOrderLine, t.CWID, OLKey(t.CWID, t.CDID, oid, ol))
			if !ok {
				continue
			}
			_ = w.orderLine.GetInt64(olrow, OLDeliveryD)
			t.Lines++
		}
		return nil
	}
	return nil
}

func (g *Gen) orderStatus(home int, cross bool) txn.Procedure {
	cfg := g.w.cfg
	t := &OrderStatusTxn{
		W:    g.w,
		WID:  home,
		CWID: home,
		CDID: g.rng.Intn(cfg.Districts),
	}
	if cross {
		t.CWID = g.remoteWarehouse(home)
	}
	if g.rng.Intn(100) < cfg.PaymentByName {
		num := g.nuRand(255, 0, 999)
		if num < cfg.CustomersPerDistrict {
			t.ByName = true
			t.CLast = []byte(LastName(num))
			t.CID = -1
		} else {
			t.CID = g.customerID()
		}
	} else {
		t.CID = g.customerID()
	}
	return t
}
