package tpcc

import (
	"reflect"
	"testing"

	"star/internal/storage"
	"star/internal/txn"
)

func smallCfg() Config {
	return Config{
		Warehouses:           4,
		Districts:            2,
		CustomersPerDistrict: 30,
		Items:                100,
	}
}

func loadSmall(t *testing.T) (*Workload, *storage.DB) {
	t.Helper()
	w := New(smallCfg())
	db := w.BuildDB(4, nil)
	w.Load(db)
	return w, db
}

// executor is the reference single-threaded Ctx (no concurrency control).
type executor struct {
	db  *storage.DB
	set txn.RWSet
}

func (e *executor) Read(tb storage.TableID, part int, key storage.Key) ([]byte, bool) {
	rec := e.db.Table(tb).Get(part, key)
	if rec == nil {
		return nil, false
	}
	val, tid, present := rec.ReadStable(nil)
	if !present {
		return nil, false
	}
	if !e.db.Table(tb).Replicated() {
		e.set.AddRead(tb, part, key, rec, tid)
	}
	// Apply own pending writes (read-your-writes) — the reference
	// executor is strict so procedure logic can rely on it.
	if w := e.set.FindWrite(tb, part, key); w != nil && !w.Insert {
		val = append([]byte(nil), val...)
		for _, op := range w.Ops {
			op.Apply(e.db.Table(tb).Schema(), val)
		}
	}
	return val, true
}

func (e *executor) Write(tb storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	e.set.AddWrite(tb, part, key, ops...)
}

func (e *executor) Insert(tb storage.TableID, part int, key storage.Key, row []byte) {
	e.set.AddInsert(tb, part, key, row)
}

func (e *executor) Delete(tb storage.TableID, part int, key storage.Key) {
	e.set.AddDelete(tb, part, key)
}

func (e *executor) LookupIndex(tb storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key {
	return e.db.Table(tb).IndexLookup(part, idx, val, storage.IndexAllEpochs, dst)
}

func (e *executor) commit(t *testing.T, db *storage.DB) {
	t.Helper()
	for i := range e.set.Writes {
		w := &e.set.Writes[i]
		tbl := db.Table(w.Table)
		part := tbl.Partition(w.Part)
		rec := part.GetOrCreate(w.Key, 2)
		rec.Lock()
		if w.Insert {
			if !storage.TIDAbsent(rec.TID()) {
				t.Fatal("duplicate insert")
			}
			rec.WriteLocked(2, storage.MakeTID(2, uint64(i+1)), w.Row)
		} else if w.Delete {
			if storage.TIDAbsent(rec.TID()) {
				t.Fatal("delete of absent record")
			}
			row := append([]byte(nil), rec.ValueLocked()...)
			if rec.DeleteLocked(2, storage.MakeTID(2, uint64(i+1))) {
				part.MarkDirty(rec, 2)
			}
			rec.UnlockWithTID(storage.MakeTID(2, uint64(i+1)) | storage.TIDAbsentBit)
			tbl.NoteDeleted(w.Part, w.Key, row, 2)
			continue
		} else {
			if _, err := rec.ApplyOpsLocked(tbl.Schema(), 2, storage.MakeTID(2, uint64(i+1)), w.Ops); err != nil {
				t.Fatal(err)
			}
		}
		rec.UnlockWithTID(storage.MakeTID(2, uint64(i+1)))
		if w.Insert {
			tbl.NoteInserted(w.Part, w.Key, w.Row, 2)
		}
	}
	e.set.Reset()
}

func TestLoadPopulatesAllTables(t *testing.T) {
	w, db := loadSmall(t)
	cfg := w.Config()
	if db.Table(TWarehouse).Partition(0).Len() != 1 {
		t.Fatal("warehouse row missing")
	}
	if got := db.Table(TDistrict).Partition(1).Len(); got != cfg.Districts {
		t.Fatalf("districts=%d", got)
	}
	if got := db.Table(TCustomer).Partition(2).Len(); got != cfg.Districts*cfg.CustomersPerDistrict {
		t.Fatalf("customers=%d", got)
	}
	if got := db.Table(TStock).Partition(3).Len(); got != cfg.Items {
		t.Fatalf("stock=%d", got)
	}
	if got := db.Table(TItem).Partition(0).Len(); got != cfg.Items {
		t.Fatalf("items=%d", got)
	}
}

func TestLoadDeterministicAcrossReplicas(t *testing.T) {
	w := New(smallCfg())
	a := w.BuildDB(4, nil)
	w.Load(a)
	b := w.BuildDB(4, []bool{true, true, false, false})
	w.Load(b)
	for p := 0; p < 2; p++ {
		if a.PartitionChecksum(p) != b.PartitionChecksum(p) {
			t.Fatalf("partition %d differs", p)
		}
	}
}

func TestCustomerNameIndex(t *testing.T) {
	_, db := loadSmall(t)
	// Customer 5 of district 0, warehouse 1 has LastName(5).
	keys := db.Table(TCustomer).IndexLookup(1, CustNameIdx,
		CustNameVal(nil, 0, []byte(LastName(5))), storage.IndexAllEpochs, nil)
	if len(keys) == 0 {
		t.Fatal("name index empty")
	}
	found := false
	for _, k := range keys {
		if k == CKey(1, 0, 5) {
			found = true
		}
	}
	if !found {
		t.Fatalf("customer key missing from index: %v", keys)
	}
}

// TestPaymentByNameResolvesMedianThroughIndex pins the §2.5.2.2 rule:
// the by-name path resolves at execution time to the median of the
// key-sorted index matches — the same customer the pre-index generator
// used to compute arithmetically at generation time.
func TestPaymentByNameResolvesMedianThroughIndex(t *testing.T) {
	cfg := smallCfg()
	cfg.CustomersPerDistrict = 25 // names 0..24 have exactly one match
	w := New(cfg)
	db := w.BuildDB(4, nil)
	w.Load(db)

	pay := &PaymentTxn{
		W: w, WID: 0, DID: 0, CWID: 1, CDID: 1,
		ByName: true, CLast: []byte(LastName(7)), CID: -1,
		Amount: 5, HSeq: 1, GenID: 1,
	}
	ex := &executor{db: db}
	if err := pay.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)
	// cid 7 is the only (hence median) match for LastName(7).
	crow, _, _ := db.Table(TCustomer).Get(1, CKey(1, 1, 7)).ReadStable(nil)
	if got := w.customer.GetFloat64(crow, CBalance); got != -10-pay.Amount {
		t.Fatalf("median-match customer balance %v, want %v", got, -10-pay.Amount)
	}

	// An unknown name aborts (generation never produces one, §2.5.2.2
	// guarantees matches at standard scale).
	bad := &PaymentTxn{W: w, WID: 0, DID: 0, CWID: 1, CDID: 1,
		ByName: true, CLast: []byte(LastName(997)), CID: -1, Amount: 5, HSeq: 2, GenID: 1}
	if err := bad.Run(&executor{db: db}); err != txn.ErrUserAbort {
		t.Fatalf("unknown name: err=%v, want ErrUserAbort", err)
	}
}

// TestOrderStatusReadsLastOrder drives NewOrder then Order-Status by
// name and by id through the reference executor: the query must find
// the order just inserted via the order_by_customer index.
func TestOrderStatusReadsLastOrder(t *testing.T) {
	w, db := loadSmall(t)
	no := &NewOrderTxn{
		W: w, WID: 2, DID: 1, CID: 4,
		Lines: []orderLineSpec{{IID: 1, SupplyW: 2, Quantity: 3}, {IID: 2, SupplyW: 2, Quantity: 1}},
	}
	ex := &executor{db: db}
	if err := no.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)

	os := &OrderStatusTxn{W: w, WID: 2, CWID: 2, CDID: 1, CID: 4}
	if err := os.Run(&executor{db: db}); err != nil {
		t.Fatal(err)
	}
	if os.OrderID != 1 || os.Lines != 2 {
		t.Fatalf("order-status found oid=%d lines=%d, want 1/2", os.OrderID, os.Lines)
	}

	// By name: customer 4 carries LastName(4); the median (only) match
	// is the same customer, so the same order is found.
	osn := &OrderStatusTxn{W: w, WID: 0, CWID: 2, CDID: 1, CID: -1,
		ByName: true, CLast: []byte(LastName(4))}
	if err := osn.Run(&executor{db: db}); err != nil {
		t.Fatal(err)
	}
	if osn.OrderID != 1 || osn.Lines != 2 {
		t.Fatalf("by-name order-status oid=%d lines=%d, want 1/2", osn.OrderID, osn.Lines)
	}
	if osn.Balance != -10 {
		t.Fatalf("balance %v, want loader's -10", osn.Balance)
	}

	// A customer with no orders reports an empty status and commits.
	empty := &OrderStatusTxn{W: w, WID: 2, CWID: 2, CDID: 0, CID: 9}
	if err := empty.Run(&executor{db: db}); err != nil || empty.OrderID != 0 {
		t.Fatalf("empty status: err=%v oid=%d", err, empty.OrderID)
	}
}

// TestOrderIndexRevertedInsertDisappears is the epoch-revert pin for
// secondary indexes: a reverted NewOrder's order_by_customer entry must
// vanish with its row, and re-inserting after the revert must revive it.
func TestOrderIndexRevertedInsertDisappears(t *testing.T) {
	w, db := loadSmall(t)
	tbl := db.Table(TOrder)
	row := w.order.NewRow()
	w.order.SetUint64(row, OCID, 4)
	w.order.SetInt64(row, OOlCnt, 1)

	lookup := func() []storage.Key {
		return tbl.IndexLookup(2, OrderCustIdx, OrderCustVal(nil, 1, 4), storage.IndexAllEpochs, nil)
	}
	if _, ok := tbl.Insert(2, OKey(2, 1, 1), 5, storage.MakeTID(5, 1), row); !ok {
		t.Fatal("insert failed")
	}
	if got := lookup(); len(got) != 1 {
		t.Fatalf("index after insert: %v", got)
	}
	db.RevertEpoch(5)
	if got := lookup(); len(got) != 0 {
		t.Fatalf("index entry survived the epoch revert: %v", got)
	}
	if tbl.Get(2, OKey(2, 1, 1)) != nil {
		t.Fatal("order row survived the epoch revert")
	}
	// Re-insert (the post-revert re-execution): row and entry revive.
	if _, ok := tbl.Insert(2, OKey(2, 1, 1), 6, storage.MakeTID(6, 1), row); !ok {
		t.Fatal("re-insert failed")
	}
	if got := lookup(); len(got) != 1 || got[0] != OKey(2, 1, 1) {
		t.Fatalf("index after re-insert: %v", got)
	}
	db.CommitEpoch()
}

func TestNewOrderCommitsAndAdvancesOID(t *testing.T) {
	w, db := loadSmall(t)
	g := w.NewGen(1).(*Gen)
	var no *NewOrderTxn
	for {
		p := g.Single(0)
		if nt, ok := p.(*NewOrderTxn); ok && !nt.Invalid {
			no = nt
			break
		}
	}
	ex := &executor{db: db}
	if err := no.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)

	drow, _, _ := db.Table(TDistrict).Get(no.WID, DKey(no.WID, no.DID)).ReadStable(nil)
	if got := w.district.GetUint64(drow, DNextOID); got != 2 {
		t.Fatalf("d_next_o_id=%d, want 2", got)
	}
	if db.Table(TOrder).Get(no.WID, OKey(no.WID, no.DID, 1)) == nil {
		t.Fatal("order row missing")
	}
	if db.Table(TNewOrder).Get(no.WID, OKey(no.WID, no.DID, 1)) == nil {
		t.Fatal("new_order row missing")
	}
	for i := range no.Lines {
		if db.Table(TOrderLine).Get(no.WID, OLKey(no.WID, no.DID, 1, i+1)) == nil {
			t.Fatalf("order line %d missing", i+1)
		}
	}
}

func TestNewOrderInvalidItemRollsBack(t *testing.T) {
	w, db := loadSmall(t)
	g := w.NewGen(2).(*Gen)
	var no *NewOrderTxn
	for {
		if nt, ok := g.Single(1).(*NewOrderTxn); ok && nt.Invalid {
			no = nt
			break
		}
	}
	ex := &executor{db: db}
	if err := no.Run(ex); err != txn.ErrUserAbort {
		t.Fatalf("err=%v, want ErrUserAbort", err)
	}
}

func TestPaymentMovesMoney(t *testing.T) {
	w, db := loadSmall(t)
	g := w.NewGen(3).(*Gen)
	var pay *PaymentTxn
	for {
		if pt, ok := g.Single(2).(*PaymentTxn); ok {
			pay = pt
			break
		}
	}
	before, _, _ := db.Table(TWarehouse).Get(pay.WID, WKey(pay.WID)).ReadStable(nil)
	ytdBefore := w.warehouse.GetFloat64(before, WYtd)
	cBefore, _, _ := db.Table(TCustomer).Get(pay.CWID, CKey(pay.CWID, pay.CDID, pay.CID)).ReadStable(nil)
	balBefore := w.customer.GetFloat64(cBefore, CBalance)

	ex := &executor{db: db}
	if err := pay.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)

	after, _, _ := db.Table(TWarehouse).Get(pay.WID, WKey(pay.WID)).ReadStable(nil)
	if got := w.warehouse.GetFloat64(after, WYtd); got != ytdBefore+pay.Amount {
		t.Fatalf("w_ytd=%v, want %v", got, ytdBefore+pay.Amount)
	}
	cAfter, _, _ := db.Table(TCustomer).Get(pay.CWID, CKey(pay.CWID, pay.CDID, pay.CID)).ReadStable(nil)
	if got := w.customer.GetFloat64(cAfter, CBalance); got != balBefore-pay.Amount {
		t.Fatalf("c_balance=%v, want %v", got, balBefore-pay.Amount)
	}
	if db.Table(THistory).Get(pay.WID, HKey(pay.WID, pay.GenID, pay.HSeq)) == nil {
		t.Fatal("history row missing")
	}
}

func TestBadCreditCustomerGetsCDataPrepend(t *testing.T) {
	w, db := loadSmall(t)
	// Find a bad-credit customer in warehouse 0 district 0.
	var bc int = -1
	for cid := 0; cid < w.Config().CustomersPerDistrict; cid++ {
		crow, _, _ := db.Table(TCustomer).Get(0, CKey(0, 0, cid)).ReadStable(nil)
		if string(w.customer.GetBytes(crow, CCredit)) == "BC" {
			bc = cid
			break
		}
	}
	if bc == -1 {
		t.Skip("no bad-credit customer in tiny config")
	}
	pay := &PaymentTxn{W: w, WID: 0, DID: 0, CWID: 0, CDID: 0, CID: bc, Amount: 10, HSeq: 1, GenID: 9}
	ex := &executor{db: db}
	if err := pay.Run(ex); err != nil {
		t.Fatal(err)
	}
	// The customer write must include a prepend op (the op-replication
	// payload is tiny compared to the 500-byte C_DATA field).
	found := false
	for _, wr := range ex.set.Writes {
		if wr.Table == TCustomer {
			for _, op := range wr.Ops {
				if op.Kind == storage.OpPrepend {
					found = true
					if op.Size() > 60 {
						t.Fatalf("prepend op %dB; should be small", op.Size())
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("bad-credit payment must carry a C_DATA prepend op")
	}
}

// deliver runs one Delivery batch through the reference executor.
func deliver(t *testing.T, w *Workload, db *storage.DB, wid int) {
	t.Helper()
	d := &DeliveryTxn{W: w, WID: wid, Carrier: 3, DeliveryD: 77}
	ex := &executor{db: db}
	if err := d.Run(ex); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	ex.commit(t, db)
}

// TestDeliveryDeletesNewOrderRow: a delivered order's NEW-ORDER row is
// physically deleted, not just stamped (the unbounded-memory fix).
func TestDeliveryDeletesNewOrderRow(t *testing.T) {
	w, db := loadSmall(t)
	no := &NewOrderTxn{W: w, WID: 1, DID: 0, CID: 2,
		Lines: []orderLineSpec{{IID: 1, SupplyW: 1, Quantity: 1}}}
	ex := &executor{db: db}
	if err := no.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)
	if db.Table(TNewOrder).Get(1, OKey(1, 0, 1)) == nil {
		t.Fatal("new_order row missing before delivery")
	}

	deliver(t, w, db, 1)
	rec := db.Table(TNewOrder).Get(1, OKey(1, 0, 1))
	if rec != nil {
		if _, _, present := rec.ReadStable(nil); present {
			t.Fatal("delivered NEW-ORDER row still present")
		}
	}
	// The order itself survives, stamped with the carrier.
	orow, _, ok := db.Table(TOrder).Get(1, OKey(1, 0, 1)).ReadStable(nil)
	if !ok || w.order.GetInt64(orow, OCarrierID) != 3 {
		t.Fatal("order row lost or carrier not stamped")
	}
}

// TestDeliverySkipsDistrictWithMissingNewOrder pins §2.7.4.2: when the
// NEW-ORDER row at the cursor is gone, Delivery skips the district —
// the batch still commits (nil, not an abort) and, because the row is
// confirmed before the cursor write is buffered, it leaves no district
// write behind for that district.
func TestDeliverySkipsDistrictWithMissingNewOrder(t *testing.T) {
	w, db := loadSmall(t)
	no := &NewOrderTxn{W: w, WID: 1, DID: 0, CID: 2,
		Lines: []orderLineSpec{{IID: 1, SupplyW: 1, Quantity: 1}}}
	ex := &executor{db: db}
	if err := no.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)

	// Corrupt the queue: remove the NEW-ORDER row out from under the
	// cursor (the only way a miss can arise — deliveries themselves
	// always advance the cursor past the rows they delete).
	ex = &executor{db: db}
	ex.Delete(TNewOrder, 1, OKey(1, 0, 1))
	ex.commit(t, db)

	d := &DeliveryTxn{W: w, WID: 1, Carrier: 5, DeliveryD: 9}
	ex = &executor{db: db}
	if err := d.Run(ex); err != nil {
		t.Fatalf("delivery with a missing NEW-ORDER must still commit: %v", err)
	}
	for _, wr := range ex.set.Writes {
		if wr.Table == TDistrict {
			t.Fatal("skipped district must not buffer a cursor write")
		}
	}
	ex.commit(t, db)
	drow, _, _ := db.Table(TDistrict).Get(1, DKey(1, 0)).ReadStable(nil)
	if got := w.district.GetUint64(drow, DNextDelOID); got != 1 {
		t.Fatalf("d_next_del_o_id=%d after a skipped district, want 1", got)
	}
}

// TestTrimReclaimsDeliveredOrdersAndHistory drives the trimmer through
// the reference executor: delivered orders more than Retain behind the
// cursor are deleted with their order lines, the low-water cursor
// advances exactly over the reclaimed range, undelivered and retained
// orders survive, and the listed history rows are reclaimed.
func TestTrimReclaimsDeliveredOrdersAndHistory(t *testing.T) {
	w, db := loadSmall(t)
	// Four orders in (w1, d0), three of them delivered.
	for oid := 1; oid <= 4; oid++ {
		no := &NewOrderTxn{W: w, WID: 1, DID: 0, CID: 2,
			Lines: []orderLineSpec{{IID: oid, SupplyW: 1, Quantity: 1}, {IID: oid + 10, SupplyW: 1, Quantity: 2}}}
		ex := &executor{db: db}
		if err := no.Run(ex); err != nil {
			t.Fatal(err)
		}
		ex.commit(t, db)
	}
	for i := 0; i < 3; i++ {
		deliver(t, w, db, 1)
	}
	// One history row from a payment, to ride along.
	pay := &PaymentTxn{W: w, WID: 1, DID: 0, CWID: 1, CDID: 0, CID: 2, Amount: 5, HSeq: 7, GenID: 9}
	ex := &executor{db: db}
	if err := pay.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)

	// Cursor state: d_next_o_id=5, d_next_del_o_id=4, d_trim_o_id=1.
	// Retain=1 → trim oids [1, 4-1-1] = {1, 2}.
	tr := &TrimTxn{W: w, WID: 1, Retain: 1, Batch: 8, GenID: 9, HistSeqs: []uint64{7}}
	ex = &executor{db: db}
	if err := tr.Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)

	present := func(tb storage.TableID, key storage.Key) bool {
		rec := db.Table(tb).Get(1, key)
		if rec == nil {
			return false
		}
		_, _, p := rec.ReadStable(nil)
		return p
	}
	for oid := 1; oid <= 2; oid++ {
		if present(TOrder, OKey(1, 0, oid)) {
			t.Fatalf("trimmed order %d still present", oid)
		}
		for ol := 1; ol <= 2; ol++ {
			if present(TOrderLine, OLKey(1, 0, oid, ol)) {
				t.Fatalf("order line %d/%d survived the trim", oid, ol)
			}
		}
	}
	for oid := 3; oid <= 4; oid++ {
		if !present(TOrder, OKey(1, 0, oid)) {
			t.Fatalf("order %d above the trim horizon was deleted", oid)
		}
	}
	if present(THistory, HKey(1, 9, 7)) {
		t.Fatal("listed history row survived the trim")
	}
	drow, _, _ := db.Table(TDistrict).Get(1, DKey(1, 0)).ReadStable(nil)
	if got := w.district.GetUint64(drow, DTrimOID); got != 3 {
		t.Fatalf("d_trim_o_id=%d, want 3", got)
	}
	// A second trim with nothing below the horizon is a no-op commit.
	tr2 := &TrimTxn{W: w, WID: 1, Retain: 1, Batch: 8, GenID: 9}
	ex = &executor{db: db}
	if err := tr2.Run(ex); err != nil {
		t.Fatal(err)
	}
	for _, wr := range ex.set.Writes {
		if wr.Delete {
			t.Fatal("idle trim deleted something")
		}
	}
}

func TestCrossPartitionFootprints(t *testing.T) {
	w := New(smallCfg())
	g := w.NewGen(5)
	sawNO, sawPay := false, false
	for i := 0; i < 100; i++ {
		p := g.Cross(1)
		req := txn.NewRequest(p, 0)
		switch pt := p.(type) {
		case *NewOrderTxn:
			if !req.Cross {
				t.Fatal("cross NewOrder stayed local")
			}
			sawNO = true
		case *PaymentTxn:
			if pt.CWID == pt.WID || !req.Cross {
				t.Fatal("cross Payment stayed local")
			}
			sawPay = true
		}
	}
	if !sawNO || !sawPay {
		t.Fatal("mix must alternate NewOrder and Payment")
	}
}

func TestMixedCrossRates(t *testing.T) {
	cfg := smallCfg()
	cfg.CrossPctNewOrder = 10
	cfg.CrossPctPayment = 15
	w := New(cfg)
	g := w.NewGen(6)
	crossNO, nNO, crossPay, nPay := 0, 0, 0, 0
	for i := 0; i < 4000; i++ {
		p := g.Mixed(0)
		req := txn.NewRequest(p, 0)
		switch p.(type) {
		case *NewOrderTxn:
			nNO++
			if req.Cross {
				crossNO++
			}
		case *PaymentTxn:
			nPay++
			if req.Cross {
				crossPay++
			}
		}
	}
	if nNO == 0 || nPay == 0 {
		t.Fatal("mix broken")
	}
	noRate := float64(crossNO) / float64(nNO) * 100
	payRate := float64(crossPay) / float64(nPay) * 100
	if noRate < 6 || noRate > 14 {
		t.Fatalf("NewOrder cross rate %.1f%%, want ≈10%%", noRate)
	}
	if payRate < 10 || payRate > 20 {
		t.Fatalf("Payment cross rate %.1f%%, want ≈15%%", payRate)
	}
}

func TestSetCrossPctZeroDisablesCross(t *testing.T) {
	cfg := smallCfg()
	cfg.SetCrossPct(0)
	w := New(cfg)
	g := w.NewGen(7)
	for i := 0; i < 500; i++ {
		if txn.NewRequest(g.Mixed(2), 0).Cross {
			t.Fatal("cross txn generated with CrossPct=0")
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	w := New(smallCfg())
	g1, g2 := w.NewGen(11), w.NewGen(11)
	for i := 0; i < 40; i++ {
		a, b := g1.Mixed(0), g2.Mixed(0)
		ra, rb := txn.NewRequest(a, 0), txn.NewRequest(b, 0)
		if a.Name() != b.Name() || len(ra.Parts) != len(rb.Parts) {
			t.Fatal("same seed must generate identical streams")
		}
		aa, ba := a.Accesses(), b.Accesses()
		if len(aa) != len(ba) {
			t.Fatal("access sets differ")
		}
		for j := range aa {
			if !reflect.DeepEqual(aa[j], ba[j]) {
				t.Fatal("access sets differ")
			}
		}
	}
}

func TestLastNameSyllables(t *testing.T) {
	if LastName(0) != "BARBARBAR" || LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName broken: %q %q", LastName(0), LastName(371))
	}
}

func TestKeyPackingNoCollisions(t *testing.T) {
	// Keys only need to be unique within a table (tables are separate
	// hash maps); check each table's packing over a dense component grid.
	orders := map[storage.Key]bool{}
	lines := map[storage.Key]bool{}
	custs := map[storage.Key]bool{}
	for d := 0; d < 5; d++ {
		for o := 0; o < 50; o++ {
			if k := OKey(1, d, o); orders[k] {
				t.Fatalf("order key collision d=%d o=%d", d, o)
			} else {
				orders[k] = true
			}
			for l := 1; l <= 15; l++ {
				if k := OLKey(1, d, o, l); lines[k] {
					t.Fatalf("orderline key collision d=%d o=%d l=%d", d, o, l)
				} else {
					lines[k] = true
				}
			}
		}
		for c := 0; c < 100; c++ {
			if k := CKey(1, d, c); custs[k] {
				t.Fatalf("customer key collision d=%d c=%d", d, c)
			} else {
				custs[k] = true
			}
		}
	}
	if HKey(1, 3, 9) == HKey(1, 3, 10) || HKey(1, 3, 9) == HKey(1, 4, 9) {
		t.Fatal("history key collision")
	}
}
