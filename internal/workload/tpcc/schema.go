// Package tpcc implements the TPC-C benchmark: the paper's NewOrder +
// Payment subset (§7.1.1) by default, and — with Config.SetFullMix —
// the standard-weighted four-transaction mix adding Delivery (deferred
// cross-district batch, §2.7) and Stock-Level (read-only multi-record
// scan, §2.8) at their standard 4%/4% shares. All nine tables are
// partitioned by warehouse id, with a configurable fraction of
// cross-partition transactions (defaults: 10% of NewOrder, 15% of
// Payment). The ITEM table is read-only and replicated to every node.
// Customer lookup by last name goes through a secondary index.
package tpcc

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"star/internal/storage"
)

// Table ids, in creation order.
const (
	TWarehouse storage.TableID = iota
	TDistrict
	TCustomer
	TStock
	TItem
	TOrder
	TNewOrder
	TOrderLine
	THistory
)

// Config parameterises the workload. A partition is one warehouse.
type Config struct {
	// Warehouses is the partition count.
	Warehouses int
	// Districts per warehouse (standard: 10).
	Districts int
	// CustomersPerDistrict (standard: 3000).
	CustomersPerDistrict int
	// Items in the catalogue (standard: 100_000).
	Items int
	// CrossPctNewOrder is the percentage of NewOrder transactions that
	// order from a remote warehouse (paper default: 10).
	CrossPctNewOrder int
	// CrossPctPayment is the percentage of Payment transactions paying
	// for a customer of a remote warehouse (paper default: 15).
	CrossPctPayment int
	// PaymentByName selects customers by last name this percent of the
	// time (standard: 60).
	PaymentByName int
	// InvalidItemPct is the percentage of NewOrder transactions carrying
	// an unused item id, which must roll back (standard: 1).
	InvalidItemPct int
	// DeliveryPct is the percentage of generated transactions that are
	// Delivery batches (standard mix: 4; 0 = paper's 2-txn subset).
	DeliveryPct int
	// StockLevelPct is the percentage of generated transactions that are
	// Stock-Level scans (standard mix: 4; 0 = paper's 2-txn subset).
	// The NewOrder/Payment remainder keeps its standard 45:43 ratio.
	StockLevelPct int
	// CrossPctStockLevel is the percentage of Stock-Level transactions
	// that additionally check stock in a remote warehouse — the
	// read-only cross-partition class the snapshot-read path serves
	// without master routing (standard Stock-Level is single-warehouse;
	// default: 0).
	CrossPctStockLevel int
	// OrderStatusPct is the percentage of generated transactions that
	// are Order-Status queries (standard mix: 4; 0 = no Order-Status).
	// Order-Status is read-only and resolves its customer by last name
	// PaymentByName percent of the time, through the secondary index at
	// execution time.
	OrderStatusPct int
	// CrossPctOrderStatus is the percentage of Order-Status transactions
	// that ask about a customer of a remote warehouse (the home
	// terminal's warehouse row is still read, making the footprint
	// cross-partition) — the by-name read-only class the snapshot path
	// serves without master routing. Default: 0 (standard Order-Status
	// is local).
	CrossPctOrderStatus int
	// TrimPct is the percentage of generated transactions that are Trim
	// batches physically reclaiming delivered orders (and the
	// generator's old payment-history rows) via Ctx.Delete. 0 = no
	// trimming (the default): delivered rows are kept forever, which is
	// fine for bounded runs but grows memory without bound under
	// sustained load.
	TrimPct int
	// TrimRetain is how many delivered orders per district (and history
	// rows per generator) a Trim batch leaves in place behind the
	// delivery cursor, keeping Stock-Level's and Order-Status's recent
	// read windows intact (default when TrimPct > 0: 100).
	TrimRetain int
}

func (c Config) withDefaults() Config {
	if c.Districts == 0 {
		c.Districts = 10
	}
	if c.CustomersPerDistrict == 0 {
		c.CustomersPerDistrict = 3000
	}
	if c.Items == 0 {
		c.Items = 100_000
	}
	if c.CrossPctNewOrder == 0 {
		c.CrossPctNewOrder = 10
	}
	if c.CrossPctPayment == 0 {
		c.CrossPctPayment = 15
	}
	if c.PaymentByName == 0 {
		c.PaymentByName = 60
	}
	if c.InvalidItemPct == 0 {
		c.InvalidItemPct = 1
	}
	if c.TrimPct > 0 && c.TrimRetain == 0 {
		c.TrimRetain = 100
	}
	return c
}

// SetCrossPct sets every per-transaction cross-partition percentage —
// the x-axis knob of the paper's sweeps. Delivery has no cross-partition
// form (a delivery batch serves exactly one warehouse).
func (c *Config) SetCrossPct(p int) {
	c.CrossPctNewOrder = p
	c.CrossPctPayment = p
	c.CrossPctStockLevel = p
	c.CrossPctOrderStatus = p
	if p == 0 {
		c.CrossPctNewOrder = -1 // disable entirely (withDefaults would reset 0)
		c.CrossPctPayment = -1
		c.CrossPctStockLevel = 0  // 0 already means "never" (no default to dodge)
		c.CrossPctOrderStatus = 0 // likewise
	}
}

// SetFullMix enables the standard-weighted TPC-C mix: 45/43/4/4/4
// NewOrder/Payment/Delivery/Stock-Level/Order-Status.
func (c *Config) SetFullMix() {
	c.DeliveryPct = 4
	c.StockLevelPct = 4
	c.OrderStatusPct = 4
}

// Workload implements workload.Workload for TPC-C.
type Workload struct {
	cfg Config

	warehouse, district, customer *storage.Schema
	stock, item                   *storage.Schema
	order, newOrder, orderLine    *storage.Schema
	history                       *storage.Schema
}

// Column indexes used by the transactions.
const (
	WYtd = iota // warehouse
	WTax
	WName
)

const (
	DNextOID = iota // district
	DYtd
	DTax
	DNextDelOID // next undelivered order id (Delivery's batch cursor)
	DTrimOID    // next untrimmed order id (the trimmer's low-water cursor)
	DName
)

const (
	CBalance = iota // customer
	CYtdPayment
	CPaymentCnt
	CDeliveryCnt
	CDiscount
	CCreditLim
	CCredit
	CLast
	CFirst
	CData
)

const (
	SQuantity = iota // stock
	SYtd
	SOrderCnt
	SRemoteCnt
	SDist
	SData
)

const (
	IPrice = iota // item
	IName
	IData
)

const (
	OCID = iota // order
	OEntryD
	OCarrierID
	OOlCnt
	OAllLocal
)

const (
	OLIID = iota // order line
	OLSupplyWID
	OLQuantity
	OLAmount
	OLDeliveryD
	OLDistInfo
)

const (
	HAmount = iota // history
	HDate
	HData
)

// New builds the workload.
func New(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	if cfg.Warehouses <= 0 {
		panic("tpcc: Warehouses must be positive")
	}
	b := func(name string, capacity int) storage.Field {
		return storage.Field{Name: name, Type: storage.FieldBytes, Cap: capacity}
	}
	f := func(name string) storage.Field { return storage.Field{Name: name, Type: storage.FieldFloat64} }
	i := func(name string) storage.Field { return storage.Field{Name: name, Type: storage.FieldInt64} }
	u := func(name string) storage.Field { return storage.Field{Name: name, Type: storage.FieldUint64} }

	return &Workload{
		cfg: cfg,
		warehouse: storage.NewSchema(
			f("w_ytd"), f("w_tax"), b("w_name", 10), b("w_street", 40), b("w_city", 20), b("w_zip", 9),
		),
		district: storage.NewSchema(
			u("d_next_o_id"), f("d_ytd"), f("d_tax"), u("d_next_del_o_id"), u("d_trim_o_id"),
			b("d_name", 10), b("d_street", 40), b("d_city", 20), b("d_zip", 9),
		),
		customer: storage.NewSchema(
			f("c_balance"), f("c_ytd_payment"), i("c_payment_cnt"), i("c_delivery_cnt"),
			f("c_discount"), f("c_credit_lim"), b("c_credit", 2), b("c_last", 16), b("c_first", 16),
			b("c_data", 500), b("c_street", 40), b("c_city", 20), b("c_zip", 9), b("c_phone", 16),
		),
		stock: storage.NewSchema(
			i("s_quantity"), f("s_ytd"), i("s_order_cnt"), i("s_remote_cnt"), b("s_dist", 24), b("s_data", 50),
		),
		item: storage.NewSchema(
			f("i_price"), b("i_name", 24), b("i_data", 50),
		),
		order: storage.NewSchema(
			u("o_c_id"), i("o_entry_d"), i("o_carrier_id"), i("o_ol_cnt"), i("o_all_local"),
		),
		newOrder:  storage.NewSchema(u("no_o_id")),
		orderLine: storage.NewSchema(u("ol_i_id"), u("ol_supply_w_id"), i("ol_quantity"), f("ol_amount"), i("ol_delivery_d"), b("ol_dist_info", 24)),
		history:   storage.NewSchema(f("h_amount"), i("h_date"), b("h_data", 24)),
	}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "tpcc" }

// Config returns the effective configuration.
func (w *Workload) Config() Config { return w.cfg }

// CustomerSchema exposes the customer schema (examples print from it).
func (w *Workload) CustomerSchema() *storage.Schema { return w.customer }

// ---- key packing ----
// Partition index == warehouse id (0-based).

// WKey is the warehouse primary key.
func WKey(wid int) storage.Key { return storage.K2(uint64(wid), 0) }

// DKey is the district primary key.
func DKey(wid, did int) storage.Key { return storage.K2(uint64(wid), uint64(did)) }

// CKey is the customer primary key.
func CKey(wid, did, cid int) storage.Key {
	return storage.K2(uint64(wid), uint64(did)<<32|uint64(cid))
}

// SKey is the stock primary key.
func SKey(wid, iid int) storage.Key { return storage.K2(uint64(wid), uint64(iid)) }

// IKey is the item primary key.
func IKey(iid int) storage.Key { return storage.K1(uint64(iid)) }

// OKey is the order (and new-order) primary key.
func OKey(wid, did, oid int) storage.Key {
	return storage.K2(uint64(wid), uint64(did)<<40|uint64(oid))
}

// OLKey is the order-line primary key.
func OLKey(wid, did, oid, ol int) storage.Key {
	return storage.K2(uint64(wid), uint64(did)<<56|uint64(oid)<<8|uint64(ol))
}

// HKey is the history primary key; uniqueness comes from the generating
// worker's id and a per-worker sequence number.
func HKey(wid, genID int, seq uint64) storage.Key {
	return storage.K2(uint64(wid), uint64(genID)<<40|seq)
}

// Secondary-index names and per-table ids (AddIndex declaration order).
const (
	// CNameIndex maps (district, C_LAST) → customer keys: Payment's and
	// Order-Status's by-name lookup.
	CNameIndex = "customer_by_name"
	// CustNameIdx is CNameIndex's id on the customer table.
	CustNameIdx = 0
	// OCustIndex maps (district, O_C_ID) → order keys, ascending order
	// id: Order-Status's "customer's most recent order" lookup.
	OCustIndex = "order_by_customer"
	// OrderCustIdx is OCustIndex's id on the order table.
	OrderCustIdx = 0
)

// CustNameVal appends the customer_by_name index value for (did, last):
// one district byte followed by the raw name (partition = warehouse, so
// the warehouse id is implicit).
func CustNameVal(dst []byte, did int, last []byte) []byte {
	dst = append(dst, byte(did))
	return append(dst, last...)
}

// OrderCustVal appends the order_by_customer index value for (did, cid):
// district byte + big-endian customer id, so entries sort by customer
// and, within one customer, by ascending order id (the primary key).
func OrderCustVal(dst []byte, did, cid int) []byte {
	dst = append(dst, byte(did))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(cid))
	return append(dst, b[:]...)
}

// CIDOfKey recovers the customer id from a customer primary key.
func CIDOfKey(k storage.Key) int { return int(k.Lo & 0xffffffff) }

// OIDOfKey recovers the order id from an order primary key.
func OIDOfKey(k storage.Key) int { return int(k.Lo & (1<<40 - 1)) }

// nameLockKey synthesises the lock name a by-name access declares in its
// footprint: deterministic engines serialize conflicting by-name lookups
// on it. Bit 62 of Hi keeps it disjoint from every real customer key
// (whose Hi is a warehouse id); name hash collisions only cause spurious
// conflicts, never incorrect data access.
func nameLockKey(wid, did int, last []byte) storage.Key {
	h := uint64(14695981039346656037)
	for _, b := range last {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return storage.K2(uint64(wid)|1<<62, uint64(did)<<32|h&0xffffffff)
}

// BuildDB implements workload.Workload.
func (w *Workload) BuildDB(nparts int, holds []bool) *storage.DB {
	if nparts != w.cfg.Warehouses {
		panic("tpcc: nparts must equal Warehouses")
	}
	db := storage.NewDB(nparts, holds)
	db.AddTable("warehouse", w.warehouse, false)
	db.AddTable("district", w.district, false)
	c := db.AddTable("customer", w.customer, false)
	c.AddIndex(storage.IndexSpec{Name: CNameIndex, Extract: custNameExtract})
	db.AddTable("stock", w.stock, false)
	db.AddTable("item", w.item, true) // replicated read-only catalogue
	o := db.AddTable("order", w.order, false)
	o.AddIndex(storage.IndexSpec{Name: OCustIndex, Extract: orderCustExtract})
	db.AddTable("new_order", w.newOrder, false)
	db.AddTable("order_line", w.orderLine, false)
	db.AddTable("history", w.history, false)
	return db
}

// custNameExtract derives the customer_by_name value from a customer
// row: the district comes from the key (CKey packs did<<32|cid), the
// name from C_LAST. Maintained automatically on every insert path.
func custNameExtract(s *storage.Schema, key storage.Key, row []byte, dst []byte) []byte {
	return CustNameVal(dst, int(key.Lo>>32), s.GetBytes(row, CLast))
}

// orderCustExtract derives the order_by_customer value from an order
// row: district from the key (OKey packs did<<40|oid), customer id from
// O_C_ID.
func orderCustExtract(s *storage.Schema, key storage.Key, row []byte, dst []byte) []byte {
	return OrderCustVal(dst, int(key.Lo>>40), int(s.GetUint64(row, OCID)))
}

// lastNames are the standard TPC-C syllables.
var lastSyllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName renders the standard TPC-C last name for a number in [0,999].
func LastName(num int) string {
	return lastSyllables[num/100] + lastSyllables[(num/10)%10] + lastSyllables[num%10]
}

// Load implements workload.Workload.
func (w *Workload) Load(db *storage.DB) {
	w.loadItems(db)
	for wid := 0; wid < db.NumPartitions(); wid++ {
		if db.Holds(wid) {
			w.loadWarehouse(db, wid)
		}
	}
}

func (w *Workload) loadItems(db *storage.DB) {
	tbl := db.Table(TItem)
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 50)
	for iid := 0; iid < w.cfg.Items; iid++ {
		row := w.item.NewRow()
		w.item.SetFloat64(row, IPrice, 1+rng.Float64()*99)
		w.item.SetString(row, IName, fmt.Sprintf("item-%d", iid))
		rng.Read(buf)
		w.item.SetBytes(row, IData, buf)
		tbl.Insert(0, IKey(iid), 1, storage.MakeTID(1, uint64(iid+1)), row)
	}
}

func (w *Workload) loadWarehouse(db *storage.DB, wid int) {
	rng := rand.New(rand.NewSource(int64(wid) + 1))
	seq := uint64(1)
	tid := func() uint64 { seq++; return storage.MakeTID(1, seq) }

	wt := db.Table(TWarehouse)
	row := w.warehouse.NewRow()
	w.warehouse.SetFloat64(row, WYtd, 300000)
	w.warehouse.SetFloat64(row, WTax, rng.Float64()*0.2)
	w.warehouse.SetString(row, WName, fmt.Sprintf("W%d", wid))
	wt.Insert(wid, WKey(wid), 1, tid(), row)

	dt := db.Table(TDistrict)
	ct := db.Table(TCustomer)
	st := db.Table(TStock)

	for did := 0; did < w.cfg.Districts; did++ {
		drow := w.district.NewRow()
		w.district.SetUint64(drow, DNextOID, 1)
		w.district.SetUint64(drow, DNextDelOID, 1) // == next_o_id: nothing undelivered
		w.district.SetUint64(drow, DTrimOID, 1)    // == next_del_o_id: nothing trimmable
		w.district.SetFloat64(drow, DYtd, 30000)
		w.district.SetFloat64(drow, DTax, rng.Float64()*0.2)
		w.district.SetString(drow, DName, fmt.Sprintf("D%d-%d", wid, did))
		dt.Insert(wid, DKey(wid, did), 1, tid(), drow)

		for cid := 0; cid < w.cfg.CustomersPerDistrict; cid++ {
			crow := w.customer.NewRow()
			w.customer.SetFloat64(crow, CBalance, -10)
			w.customer.SetFloat64(crow, CYtdPayment, 10)
			w.customer.SetFloat64(crow, CDiscount, rng.Float64()*0.5)
			w.customer.SetFloat64(crow, CCreditLim, 50000)
			credit := "GC"
			if rng.Intn(10) == 0 { // 10% bad credit
				credit = "BC"
			}
			w.customer.SetString(crow, CCredit, credit)
			// First 1000 customers get the standard NURand-reachable names.
			nameNum := cid % 1000
			last := LastName(nameNum)
			w.customer.SetString(crow, CLast, last)
			w.customer.SetString(crow, CFirst, fmt.Sprintf("f%d", cid))
			w.customer.SetString(crow, CData, "customer since 2019 "+last)
			ct.Insert(wid, CKey(wid, did, cid), 1, tid(), crow)
		}
	}

	sbuf := make([]byte, 24)
	for iid := 0; iid < w.cfg.Items; iid++ {
		srow := w.stock.NewRow()
		w.stock.SetInt64(srow, SQuantity, int64(10+rng.Intn(91)))
		rng.Read(sbuf)
		w.stock.SetBytes(srow, SDist, sbuf)
		w.stock.SetString(srow, SData, "stockdata")
		st.Insert(wid, SKey(wid, iid), 1, tid(), srow)
	}
}
