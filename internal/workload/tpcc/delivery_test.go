package tpcc

import (
	"testing"

	"star/internal/txn"
)

// mkOrder builds a deterministic NewOrder for the executor harness.
func mkOrder(w *Workload, wid, did, cid int, iids []int) *NewOrderTxn {
	t := &NewOrderTxn{W: w, WID: wid, DID: did, CID: cid, EntryD: 77}
	for _, iid := range iids {
		t.Lines = append(t.Lines, orderLineSpec{IID: iid, SupplyW: wid, Quantity: 2})
	}
	return t
}

func TestDeliveryDeliversOldestUndeliveredPerDistrict(t *testing.T) {
	w, db := loadSmall(t)
	ex := &executor{db: db}
	run := func(p txn.Procedure) {
		t.Helper()
		if err := p.Run(ex); err != nil {
			t.Fatal(err)
		}
		ex.commit(t, db)
	}
	// District 0 of warehouse 0 gets orders 1 and 2; district 1 gets order 1.
	run(mkOrder(w, 0, 0, 3, []int{10, 11}))
	run(mkOrder(w, 0, 0, 4, []int{12, 13, 14}))
	run(mkOrder(w, 0, 1, 5, []int{15}))

	district := func(did int) (nextO, nextDel int) {
		drow, _, _ := db.Table(TDistrict).Get(0, DKey(0, did)).ReadStable(nil)
		return int(w.district.GetUint64(drow, DNextOID)), int(w.district.GetUint64(drow, DNextDelOID))
	}
	carrier := func(did, oid int) int64 {
		orow, _, _ := db.Table(TOrder).Get(0, OKey(0, did, oid)).ReadStable(nil)
		return w.order.GetInt64(orow, OCarrierID)
	}
	balance := func(did, cid int) float64 {
		crow, _, _ := db.Table(TCustomer).Get(0, CKey(0, did, cid)).ReadStable(nil)
		return w.customer.GetFloat64(crow, CBalance)
	}
	bal3, bal4 := balance(0, 3), balance(0, 4)

	// Batch 1: delivers order 1 in BOTH districts (oldest per district).
	d1 := &DeliveryTxn{W: w, WID: 0, Carrier: 7, DeliveryD: 1234}
	run(d1)
	if _, del := district(0); del != 2 {
		t.Fatalf("district 0 cursor=%d, want 2", del)
	}
	if _, del := district(1); del != 2 {
		t.Fatalf("district 1 cursor=%d, want 2", del)
	}
	if got := carrier(0, 1); got != 7 {
		t.Fatalf("order(0,1) carrier=%d, want 7", got)
	}
	if got := carrier(1, 1); got != 7 {
		t.Fatalf("order(1,1) carrier=%d, want 7", got)
	}
	if got := carrier(0, 2); got != 0 {
		t.Fatalf("order(0,2) carrier=%d, want 0 (undelivered)", got)
	}
	// OL_DELIVERY_D stamped on every line of the delivered order, and the
	// customer credited with the order's total — both visible to a
	// subsequent Order-Status/Stock-Level-style read.
	var total float64
	for ol := 1; ol <= 2; ol++ {
		olrow, _, _ := db.Table(TOrderLine).Get(0, OLKey(0, 0, 1, ol)).ReadStable(nil)
		if got := w.orderLine.GetInt64(olrow, OLDeliveryD); got != 1234 {
			t.Fatalf("order line %d delivery_d=%d, want 1234", ol, got)
		}
		total += w.orderLine.GetFloat64(olrow, OLAmount)
	}
	if got := balance(0, 3); got != bal3+total {
		t.Fatalf("customer 3 balance=%v, want %v", got, bal3+total)
	}

	// Batch 2: delivers order 2 in district 0 and SKIPS the now-empty
	// district 1 (no cursor advance, no writes for it).
	d2 := &DeliveryTxn{W: w, WID: 0, Carrier: 9, DeliveryD: 2345}
	run(d2)
	if _, del := district(0); del != 3 {
		t.Fatalf("district 0 cursor=%d after batch 2, want 3", del)
	}
	if _, del := district(1); del != 2 {
		t.Fatalf("district 1 cursor=%d after batch 2, want 2 (skipped)", del)
	}
	if got := carrier(0, 2); got != 9 {
		t.Fatalf("order(0,2) carrier=%d, want 9", got)
	}
	if got := balance(0, 4); got == bal4 {
		t.Fatal("customer 4 balance unchanged after delivery of its order")
	}

	// Batch 3: everything delivered → a committed no-op (§2.7.4.2).
	d3 := &DeliveryTxn{W: w, WID: 0, Carrier: 2, DeliveryD: 3456}
	if err := d3.Run(ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.set.Writes) != 0 {
		t.Fatalf("empty delivery wrote %d entries, want 0", len(ex.set.Writes))
	}
}

func TestDeliveryIsDeferredAndSinglePartition(t *testing.T) {
	w := New(smallCfg())
	d := &DeliveryTxn{W: w, WID: 2, Carrier: 1, DeliveryD: 1}
	if !txn.IsDeferred(d) {
		t.Fatal("Delivery must request deferred execution (§2.7.2)")
	}
	req := txn.NewRequest(d, 0)
	if req.Cross || len(req.Parts) != 1 || req.Parts[0] != 2 {
		t.Fatalf("delivery footprint parts=%v cross=%v, want single partition 2", req.Parts, req.Cross)
	}
	if txn.IsReadOnly(d) {
		t.Fatal("Delivery is not read-only")
	}
	for _, a := range d.Accesses() {
		if a.Table != TDistrict || !a.Write {
			t.Fatalf("delivery must declare district write locks, got %+v", a)
		}
	}
}

func TestStockLevelCountsDistinctLowStockItems(t *testing.T) {
	w, db := loadSmall(t)
	ex := &executor{db: db}
	run := func(p txn.Procedure) {
		t.Helper()
		if err := p.Run(ex); err != nil {
			t.Fatal(err)
		}
		ex.commit(t, db)
	}
	// Two orders sharing item 20: distinct items are {20, 21, 22}.
	run(mkOrder(w, 0, 0, 1, []int{20, 21}))
	run(mkOrder(w, 0, 0, 2, []int{20, 22}))

	sl := &StockLevelTxn{W: w, WID: 0, DID: 0, Threshold: 1 << 30} // everything is "low"
	if err := sl.Run(ex); err != nil {
		t.Fatal(err)
	}
	if sl.LowStock != 3 {
		t.Fatalf("LowStock=%d with infinite threshold, want 3 distinct items", sl.LowStock)
	}
	if len(ex.set.Writes) != 0 {
		t.Fatal("Stock-Level must not write")
	}
	sl2 := &StockLevelTxn{W: w, WID: 0, DID: 0, Threshold: 0} // nothing is below 0
	if err := sl2.Run(ex); err != nil {
		t.Fatal(err)
	}
	if sl2.LowStock != 0 {
		t.Fatalf("LowStock=%d with zero threshold, want 0", sl2.LowStock)
	}
	if !txn.IsReadOnly(sl) {
		t.Fatal("Stock-Level must declare itself read-only")
	}
}

func TestStockLevelCrossFootprintAndRemoteCheck(t *testing.T) {
	w, db := loadSmall(t)
	ex := &executor{db: db}
	if err := mkOrder(w, 0, 0, 1, []int{30}).Run(ex); err != nil {
		t.Fatal(err)
	}
	ex.commit(t, db)

	sl := &StockLevelTxn{W: w, WID: 0, DID: 0, Threshold: 1 << 30, Remote: []int{2}}
	req := txn.NewRequest(sl, 0)
	if !req.Cross || len(req.Parts) != 2 {
		t.Fatalf("remote stock-level parts=%v cross=%v, want cross over {0,2}", req.Parts, req.Cross)
	}
	if err := sl.Run(ex); err != nil {
		t.Fatal(err)
	}
	if sl.LowStock != 1 {
		t.Fatalf("LowStock=%d, want 1", sl.LowStock)
	}
}

func TestFullMixRates(t *testing.T) {
	cfg := smallCfg()
	cfg.SetFullMix()
	w := New(cfg)
	g := w.NewGen(17)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Mixed(0).Name()]++
	}
	pct := func(name string) float64 { return 100 * float64(counts[name]) / n }
	if p := pct("tpcc.delivery"); p < 2.5 || p > 5.5 {
		t.Fatalf("delivery share %.1f%%, want ≈4%%", p)
	}
	if p := pct("tpcc.stocklevel"); p < 2.5 || p > 5.5 {
		t.Fatalf("stock-level share %.1f%%, want ≈4%%", p)
	}
	no, pay := pct("tpcc.neworder"), pct("tpcc.payment")
	if no < 42 || no > 53 || pay < 39 || pay > 50 {
		t.Fatalf("NewOrder/Payment shares %.1f%%/%.1f%%, want ≈48%%/44%%", no, pay)
	}
	if no <= pay {
		t.Fatalf("NewOrder share %.1f%% must exceed Payment share %.1f%% (45:43)", no, pay)
	}
	// The paper subset must be untouched by the new classes.
	g2 := New(smallCfg()).NewGen(17)
	for i := 0; i < 500; i++ {
		name := g2.Mixed(0).Name()
		if name == "tpcc.delivery" || name == "tpcc.stocklevel" {
			t.Fatal("default config must keep the paper's 2-txn subset")
		}
	}
}
