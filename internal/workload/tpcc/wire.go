package tpcc

import (
	"fmt"

	"star/internal/txn"
	"star/internal/wire"
)

// Wire procedure ids. The id space is shared with other workloads in
// one codec, so each workload takes a distinct block (tpcc: 1–2 and —
// ycsb having claimed 3 first — 4–7 for the full-mix extension and
// the trimmer).
const (
	wireNewOrder    uint8 = 1
	wirePayment     uint8 = 2
	wireDelivery    uint8 = 4
	wireStockLevel  uint8 = 5
	wireOrderStatus uint8 = 6
	wireTrim        uint8 = 7
)

// RegisterWire binds the TPC-C procedure codecs to c. Every process of
// a cluster must call it with an identically configured Workload: the
// decoder binds decoded transactions to this process's Workload
// instance (schemas and configuration must match for the replayed
// transaction to behave identically).
func (w *Workload) RegisterWire(c *wire.Codec) {
	c.RegisterProc(wireNewOrder, (*NewOrderTxn)(nil),
		func(b []byte, p txn.Procedure) []byte {
			t := p.(*NewOrderTxn)
			b = wire.AppendVarint(b, int64(t.WID))
			b = wire.AppendVarint(b, int64(t.DID))
			b = wire.AppendVarint(b, int64(t.CID))
			b = wire.AppendUvarint(b, uint64(len(t.Lines)))
			for _, l := range t.Lines {
				b = wire.AppendVarint(b, int64(l.IID))
				b = wire.AppendVarint(b, int64(l.SupplyW))
				b = wire.AppendVarint(b, int64(l.Quantity))
			}
			b = wire.AppendBool(b, t.Invalid)
			return wire.AppendVarint(b, t.EntryD)
		},
		func(b []byte) (txn.Procedure, []byte, error) {
			t := &NewOrderTxn{W: w}
			var err error
			var x int64
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			t.WID = int(x)
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			t.DID = int(x)
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			t.CID = int(x)
			n, b, err := wire.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if n > uint64(len(b))/3+1 {
				return nil, nil, fmt.Errorf("%w: %d order lines", wire.ErrCorrupt, n)
			}
			t.Lines = make([]orderLineSpec, n)
			for i := range t.Lines {
				l := &t.Lines[i]
				if x, b, err = wire.Varint(b); err != nil {
					return nil, nil, err
				}
				l.IID = int(x)
				if x, b, err = wire.Varint(b); err != nil {
					return nil, nil, err
				}
				l.SupplyW = int(x)
				if x, b, err = wire.Varint(b); err != nil {
					return nil, nil, err
				}
				l.Quantity = int(x)
			}
			if t.Invalid, b, err = wire.Bool(b); err != nil {
				return nil, nil, err
			}
			if t.EntryD, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return t, b, nil
		})

	c.RegisterProc(wirePayment, (*PaymentTxn)(nil),
		func(b []byte, p txn.Procedure) []byte {
			t := p.(*PaymentTxn)
			b = wire.AppendVarint(b, int64(t.WID))
			b = wire.AppendVarint(b, int64(t.DID))
			b = wire.AppendVarint(b, int64(t.CWID))
			b = wire.AppendVarint(b, int64(t.CDID))
			b = wire.AppendVarint(b, int64(t.CID))
			b = wire.AppendBool(b, t.ByName)
			b = wire.AppendBytes(b, t.CLast)
			b = wire.AppendF64(b, t.Amount)
			b = wire.AppendUvarint(b, t.HSeq)
			b = wire.AppendVarint(b, int64(t.GenID))
			return wire.AppendVarint(b, t.Date)
		},
		func(b []byte) (txn.Procedure, []byte, error) {
			t := &PaymentTxn{W: w}
			var err error
			var x int64
			for _, dst := range []*int{&t.WID, &t.DID, &t.CWID, &t.CDID, &t.CID} {
				if x, b, err = wire.Varint(b); err != nil {
					return nil, nil, err
				}
				*dst = int(x)
			}
			if t.ByName, b, err = wire.Bool(b); err != nil {
				return nil, nil, err
			}
			var last []byte
			if last, b, err = wire.Bytes(b); err != nil {
				return nil, nil, err
			}
			if len(last) > 0 {
				t.CLast = append([]byte(nil), last...)
			}
			if t.Amount, b, err = wire.F64(b); err != nil {
				return nil, nil, err
			}
			if t.HSeq, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			t.GenID = int(x)
			if t.Date, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return t, b, nil
		})

	c.RegisterProc(wireDelivery, (*DeliveryTxn)(nil),
		func(b []byte, p txn.Procedure) []byte {
			t := p.(*DeliveryTxn)
			b = wire.AppendVarint(b, int64(t.WID))
			b = wire.AppendVarint(b, t.Carrier)
			return wire.AppendVarint(b, t.DeliveryD)
		},
		func(b []byte) (txn.Procedure, []byte, error) {
			t := &DeliveryTxn{W: w}
			var err error
			var x int64
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			t.WID = int(x)
			if t.Carrier, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			if t.DeliveryD, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return t, b, nil
		})

	c.RegisterProc(wireOrderStatus, (*OrderStatusTxn)(nil),
		func(b []byte, p txn.Procedure) []byte {
			t := p.(*OrderStatusTxn)
			b = wire.AppendVarint(b, int64(t.WID))
			b = wire.AppendVarint(b, int64(t.CWID))
			b = wire.AppendVarint(b, int64(t.CDID))
			b = wire.AppendVarint(b, int64(t.CID))
			b = wire.AppendBool(b, t.ByName)
			return wire.AppendBytes(b, t.CLast)
		},
		func(b []byte) (txn.Procedure, []byte, error) {
			t := &OrderStatusTxn{W: w}
			var err error
			var x int64
			for _, dst := range []*int{&t.WID, &t.CWID, &t.CDID, &t.CID} {
				if x, b, err = wire.Varint(b); err != nil {
					return nil, nil, err
				}
				*dst = int(x)
			}
			if t.ByName, b, err = wire.Bool(b); err != nil {
				return nil, nil, err
			}
			var last []byte
			if last, b, err = wire.Bytes(b); err != nil {
				return nil, nil, err
			}
			if len(last) > 0 {
				t.CLast = append([]byte(nil), last...)
			}
			return t, b, nil
		})

	c.RegisterProc(wireTrim, (*TrimTxn)(nil),
		func(b []byte, p txn.Procedure) []byte {
			t := p.(*TrimTxn)
			b = wire.AppendVarint(b, int64(t.WID))
			b = wire.AppendVarint(b, int64(t.Retain))
			b = wire.AppendVarint(b, int64(t.Batch))
			b = wire.AppendVarint(b, int64(t.GenID))
			b = wire.AppendUvarint(b, uint64(len(t.HistSeqs)))
			for _, s := range t.HistSeqs {
				b = wire.AppendUvarint(b, s)
			}
			return b
		},
		func(b []byte) (txn.Procedure, []byte, error) {
			t := &TrimTxn{W: w}
			var err error
			var x int64
			for _, dst := range []*int{&t.WID, &t.Retain, &t.Batch, &t.GenID} {
				if x, b, err = wire.Varint(b); err != nil {
					return nil, nil, err
				}
				*dst = int(x)
			}
			n, b, err := wire.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if n > uint64(len(b))+1 {
				return nil, nil, fmt.Errorf("%w: %d history seqs", wire.ErrCorrupt, n)
			}
			t.HistSeqs = make([]uint64, n)
			for i := range t.HistSeqs {
				if t.HistSeqs[i], b, err = wire.Uvarint(b); err != nil {
					return nil, nil, err
				}
			}
			return t, b, nil
		})

	c.RegisterProc(wireStockLevel, (*StockLevelTxn)(nil),
		func(b []byte, p txn.Procedure) []byte {
			t := p.(*StockLevelTxn)
			b = wire.AppendVarint(b, int64(t.WID))
			b = wire.AppendVarint(b, int64(t.DID))
			b = wire.AppendVarint(b, t.Threshold)
			return wire.AppendInts(b, t.Remote)
		},
		func(b []byte) (txn.Procedure, []byte, error) {
			t := &StockLevelTxn{W: w}
			var err error
			var x int64
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			t.WID = int(x)
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			t.DID = int(x)
			if t.Threshold, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			if t.Remote, b, err = wire.Ints(b); err != nil {
				return nil, nil, err
			}
			return t, b, nil
		})
}

// WireSize returns the exact encoded parameter size (kept in lock-step
// with the encoder above; the modelled msgDefer size is derived from
// it).
func (t *NewOrderTxn) WireSize() int {
	n := wire.VarintLen(int64(t.WID)) + wire.VarintLen(int64(t.DID)) +
		wire.VarintLen(int64(t.CID)) + wire.UvarintLen(uint64(len(t.Lines)))
	for _, l := range t.Lines {
		n += wire.VarintLen(int64(l.IID)) + wire.VarintLen(int64(l.SupplyW)) +
			wire.VarintLen(int64(l.Quantity))
	}
	return n + 1 + wire.VarintLen(t.EntryD)
}

// WireSize returns the exact encoded parameter size.
func (t *PaymentTxn) WireSize() int {
	return wire.VarintLen(int64(t.WID)) + wire.VarintLen(int64(t.DID)) +
		wire.VarintLen(int64(t.CWID)) + wire.VarintLen(int64(t.CDID)) +
		wire.VarintLen(int64(t.CID)) + 1 + wire.BytesLen(t.CLast) + 8 +
		wire.UvarintLen(t.HSeq) + wire.VarintLen(int64(t.GenID)) +
		wire.VarintLen(t.Date)
}

// WireSize returns the exact encoded parameter size.
func (t *DeliveryTxn) WireSize() int {
	return wire.VarintLen(int64(t.WID)) + wire.VarintLen(t.Carrier) +
		wire.VarintLen(t.DeliveryD)
}

// WireSize returns the exact encoded parameter size.
func (t *OrderStatusTxn) WireSize() int {
	return wire.VarintLen(int64(t.WID)) + wire.VarintLen(int64(t.CWID)) +
		wire.VarintLen(int64(t.CDID)) + wire.VarintLen(int64(t.CID)) +
		1 + wire.BytesLen(t.CLast)
}

// WireSize returns the exact encoded parameter size.
func (t *TrimTxn) WireSize() int {
	n := wire.VarintLen(int64(t.WID)) + wire.VarintLen(int64(t.Retain)) +
		wire.VarintLen(int64(t.Batch)) + wire.VarintLen(int64(t.GenID)) +
		wire.UvarintLen(uint64(len(t.HistSeqs)))
	for _, s := range t.HistSeqs {
		n += wire.UvarintLen(s)
	}
	return n
}

// WireSize returns the exact encoded parameter size.
func (t *StockLevelTxn) WireSize() int {
	n := wire.VarintLen(int64(t.WID)) + wire.VarintLen(int64(t.DID)) +
		wire.VarintLen(t.Threshold) + wire.UvarintLen(uint64(len(t.Remote)))
	for _, rw := range t.Remote {
		n += wire.VarintLen(int64(rw))
	}
	return n
}
