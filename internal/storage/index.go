package storage

import "sync/atomic"

// index is a lock-free open-addressing hash table from Key to *Record,
// built for STAR's execution phases: reads are latch-free (a single
// atomic load per probe), inserts are serialized by the owning
// Partition's insert mutex, and growth is copy-on-grow — a full rehash
// into a larger slot array published with one atomic pointer store, so
// in-flight readers keep probing a complete (if slightly stale) table.
//
// The design exploits two invariants of the engine:
//
//   - The partitioned phase has exactly one writer per partition, and the
//     single-master phase serializes inserts through GetOrCreate, so the
//     insert path can afford a mutex; the read path — every Get of every
//     transaction — cannot, and takes none.
//
//   - Slots are removed only by replacing them with a tombstone sentinel
//     that probes skip (reverted inserts, and committed deletes reclaimed
//     at the epoch fence). Probe chains therefore never shrink under a
//     reader's feet; tombstoned slots are recycled by later inserts and
//     swept out wholesale by a copy-on-write compaction once their ratio
//     crosses idxCompactNum/idxCompactDen.
//
// Memory model: an idxEntry is immutable after publication, and both the
// slot store and the table-pointer store are atomic releases paired with
// the readers' atomic acquires, so a reader that observes an entry
// observes its fully initialised fields.

// idxEntry is one published key→record binding. Immutable once stored.
type idxEntry struct {
	key Key
	rec *Record
}

// idxTombstone marks a slot whose binding was removed (reverted insert
// or fence-reclaimed delete). Probes skip it; inserts may reuse it.
var idxTombstone = &idxEntry{}

// idxTable is one generation of the slot array. len(slots) is a power of
// two and at least 1/4 empty, so linear probes always terminate.
type idxTable struct {
	slots []atomic.Pointer[idxEntry]
	used  int // occupied slots incl. tombstones; maintained under the insert mutex
	dead  int // tombstoned slots (subset of used); maintained under the insert mutex
}

const idxMinSlots = 16

// A table whose tombstones exceed 1/4 of its slots is compacted in place
// (same or smaller size) instead of doubled: a steady-size churn
// workload (insert/revert, delete/re-insert) would otherwise inflate
// probe chains and trigger spurious capacity-doubling rehashes, since
// `used` counts tombstones against the 3/4 occupancy bound.
const (
	idxCompactNum = 1
	idxCompactDen = 4
)

func newIdxTable(slots int) *idxTable {
	return &idxTable{slots: make([]atomic.Pointer[idxEntry], slots)}
}

// hashKey mixes both key words through a splitmix64-style finalizer.
func hashKey(k Key) uint64 {
	h := k.Lo*0x9e3779b97f4a7c15 ^ k.Hi*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// get is the latch-free read path: probe the current table, return the
// record or nil. Safe to call concurrently with inserts and growth.
func (t *idxTable) get(key Key) *Record {
	mask := uint64(len(t.slots) - 1)
	for i := hashKey(key) & mask; ; i = (i + 1) & mask {
		e := t.slots[i].Load()
		if e == nil {
			return nil
		}
		if e != idxTombstone && e.key == key {
			return e.rec
		}
	}
}

// insert publishes key→rec. Caller holds the partition's insert mutex and
// has verified the key is not present. It reuses the first tombstone on
// the probe path, else the terminating empty slot.
func (t *idxTable) insert(key Key, rec *Record) {
	mask := uint64(len(t.slots) - 1)
	for i := hashKey(key) & mask; ; i = (i + 1) & mask {
		e := t.slots[i].Load()
		if e == nil {
			t.used++
			t.slots[i].Store(&idxEntry{key: key, rec: rec})
			return
		}
		if e == idxTombstone {
			t.dead--
			t.slots[i].Store(&idxEntry{key: key, rec: rec})
			return
		}
		if e.key == key {
			panic("storage: index insert of present key")
		}
	}
}

// tombstone replaces key's slot with the tombstone sentinel (epoch revert
// of an insert, or fence reclamation of a committed delete). Caller
// holds the insert mutex. A no-op when the key is not indexed.
func (t *idxTable) tombstone(key Key) {
	mask := uint64(len(t.slots) - 1)
	for i := hashKey(key) & mask; ; i = (i + 1) & mask {
		e := t.slots[i].Load()
		if e == nil {
			return
		}
		if e != idxTombstone && e.key == key {
			t.dead++
			t.slots[i].Store(idxTombstone)
			return
		}
	}
}

// live is the number of real key→record bindings.
func (t *idxTable) live() int { return t.used - t.dead }

// needsGrow reports whether one more insert would push occupancy past
// 3/4, the bound that keeps probe chains short and terminating.
func (t *idxTable) needsGrow() bool {
	return (t.used+1)*4 > len(t.slots)*3
}

// needsCompact reports whether tombstones alone justify a rehash: probe
// chains walk through them, so a churning table degrades even when its
// live count is flat.
func (t *idxTable) needsCompact() bool {
	return t.dead*idxCompactDen > len(t.slots)*idxCompactNum
}

// rebuilt rehashes live entries into a fresh table of the given size,
// dropping tombstones. Caller holds the insert mutex and publishes the
// result with an atomic store.
func (t *idxTable) rebuilt(slots int) *idxTable {
	nt := newIdxTable(slots)
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil && e != idxTombstone {
			nt.insertRehash(e)
		}
	}
	return nt
}

// grown rehashes into a table sized for the live count: if tombstones
// are what pushed occupancy over the bound, the table is compacted at
// its current (or a halved) size rather than doubled.
func (t *idxTable) grown() *idxTable {
	size := len(t.slots) * 2
	// Size down to the smallest power of two that keeps the live set
	// under 1/2 full — compaction, not growth, when churn dominates.
	for size/2 >= idxMinSlots && t.live()*2 <= size/2 {
		size /= 2
	}
	return t.rebuilt(size)
}

// compacted rehashes at the current size (halving while the live set
// stays under 1/4 of the result) to sweep tombstones without growing.
func (t *idxTable) compacted() *idxTable {
	size := len(t.slots)
	for size/2 >= idxMinSlots && t.live()*2 <= size/2 {
		size /= 2
	}
	return t.rebuilt(size)
}

// insertRehash places an existing entry during a rebuild (plain pointer
// reuse: entries are immutable).
func (t *idxTable) insertRehash(e *idxEntry) {
	mask := uint64(len(t.slots) - 1)
	for i := hashKey(e.key) & mask; ; i = (i + 1) & mask {
		if t.slots[i].Load() == nil {
			t.used++
			t.slots[i].Store(e)
			return
		}
	}
}
