package storage

import (
	"bytes"
	"testing"
)

func fenceRead(t *testing.T, r *Record, epoch uint64) (val []byte, tid uint64, present bool) {
	t.Helper()
	_, val, tid, present = r.ReadStableAtFenceAppend(nil, epoch)
	return val, tid, present
}

func TestReadStableAtFenceReturnsPriorVersion(t *testing.T) {
	r := NewRecord(MakeTID(2, 5), []byte("aa"))

	// Untouched in epoch 3: the current version IS the fence version.
	val, tid, present := fenceRead(t, r, 3)
	if !present || !bytes.Equal(val, []byte("aa")) || tid != MakeTID(2, 5) {
		t.Fatalf("untouched record: val=%q tid=%s present=%v", val, FormatTID(tid), present)
	}

	// Written in epoch 3 → the epoch-3 fence read yields the epoch-2
	// version; an epoch-4 fence read yields the new one.
	r.Lock()
	r.WriteLocked(3, MakeTID(3, 1), []byte("bb"))
	r.UnlockWithTID(MakeTID(3, 1))

	val, tid, present = fenceRead(t, r, 3)
	if !present || !bytes.Equal(val, []byte("aa")) || tid != MakeTID(2, 5) {
		t.Fatalf("fence read at 3: val=%q tid=%s present=%v, want pre-epoch version", val, FormatTID(tid), present)
	}
	val, _, present = fenceRead(t, r, 4)
	if !present || !bytes.Equal(val, []byte("bb")) {
		t.Fatalf("fence read at 4: val=%q present=%v, want current version", val, present)
	}

	// A second write in the same epoch does not move the fence version.
	r.Lock()
	r.WriteLocked(3, MakeTID(3, 2), []byte("cc"))
	r.UnlockWithTID(MakeTID(3, 2))
	val, _, _ = fenceRead(t, r, 3)
	if !bytes.Equal(val, []byte("aa")) {
		t.Fatalf("fence version moved after second same-epoch write: %q", val)
	}
}

func TestReadStableAtFenceAbsentPrior(t *testing.T) {
	// A record first inserted in epoch 3 (e.g. by replication) is absent
	// at the epoch-3 fence and present at the epoch-4 fence.
	r := NewAbsentRecord(MakeTID(1, 1))
	if applied, _, _, _ := r.ApplyValueThomas(3, MakeTID(3, 7), []byte("new"), false); !applied {
		t.Fatal("Thomas apply refused a newer TID")
	}
	if _, _, present := fenceRead(t, r, 3); present {
		t.Fatal("epoch-3 fence read sees a row inserted in epoch 3")
	}
	val, _, present := fenceRead(t, r, 4)
	if !present || !bytes.Equal(val, []byte("new")) {
		t.Fatalf("epoch-4 fence read: val=%q present=%v", val, present)
	}
}
