package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FieldType enumerates the supported column types. Rows are fixed-width
// byte slices; variable-length strings live in fixed-capacity byte fields
// with a 2-byte length prefix, as is common in in-memory row stores.
type FieldType uint8

const (
	// FieldUint64 is an 8-byte unsigned integer.
	FieldUint64 FieldType = iota
	// FieldInt64 is an 8-byte signed integer.
	FieldInt64
	// FieldFloat64 is an 8-byte IEEE float.
	FieldFloat64
	// FieldBytes is a fixed-capacity byte string with a 2-byte length
	// prefix (so the logical value may be shorter than the capacity).
	FieldBytes
)

// Field describes one column.
type Field struct {
	Name string
	Type FieldType
	// Cap is the byte capacity for FieldBytes fields; ignored otherwise.
	Cap int

	offset int
	size   int
}

// Schema is an ordered set of fields with precomputed offsets.
type Schema struct {
	fields  []Field
	rowSize int
}

// NewSchema builds a schema; it panics on invalid field definitions
// (schemas are static program data, so this is a programming error).
func NewSchema(fields ...Field) *Schema {
	s := &Schema{fields: append([]Field(nil), fields...)}
	off := 0
	for i := range s.fields {
		f := &s.fields[i]
		switch f.Type {
		case FieldUint64, FieldInt64, FieldFloat64:
			f.size = 8
		case FieldBytes:
			if f.Cap <= 0 || f.Cap > math.MaxUint16 {
				panic(fmt.Sprintf("storage: field %q: invalid byte capacity %d", f.Name, f.Cap))
			}
			f.size = 2 + f.Cap
		default:
			panic(fmt.Sprintf("storage: field %q: unknown type %d", f.Name, f.Type))
		}
		f.offset = off
		off += f.size
	}
	s.rowSize = off
	return s
}

// RowSize returns the fixed byte width of a row.
func (s *Schema) RowSize() int { return s.rowSize }

// NumFields returns the number of columns.
func (s *Schema) NumFields() int { return len(s.fields) }

// FieldName returns the name of column i.
func (s *Schema) FieldName(i int) string { return s.fields[i].Name }

// FieldIndex returns the index of the named column, or -1.
func (s *Schema) FieldIndex(name string) int {
	for i := range s.fields {
		if s.fields[i].Name == name {
			return i
		}
	}
	return -1
}

// NewRow allocates a zero row.
func (s *Schema) NewRow() []byte { return make([]byte, s.rowSize) }

// GetUint64 reads column i from row.
func (s *Schema) GetUint64(row []byte, i int) uint64 {
	f := &s.fields[i]
	return binary.LittleEndian.Uint64(row[f.offset:])
}

// SetUint64 writes column i of row.
func (s *Schema) SetUint64(row []byte, i int, v uint64) {
	f := &s.fields[i]
	binary.LittleEndian.PutUint64(row[f.offset:], v)
}

// GetInt64 reads column i from row.
func (s *Schema) GetInt64(row []byte, i int) int64 {
	return int64(s.GetUint64(row, i))
}

// SetInt64 writes column i of row.
func (s *Schema) SetInt64(row []byte, i int, v int64) {
	s.SetUint64(row, i, uint64(v))
}

// GetFloat64 reads column i from row.
func (s *Schema) GetFloat64(row []byte, i int) float64 {
	return math.Float64frombits(s.GetUint64(row, i))
}

// SetFloat64 writes column i of row.
func (s *Schema) SetFloat64(row []byte, i int, v float64) {
	s.SetUint64(row, i, math.Float64bits(v))
}

// GetBytes returns the logical value of a FieldBytes column. The returned
// slice aliases row; callers that retain it must copy.
func (s *Schema) GetBytes(row []byte, i int) []byte {
	f := &s.fields[i]
	n := int(binary.LittleEndian.Uint16(row[f.offset:]))
	if n > f.Cap {
		n = f.Cap
	}
	return row[f.offset+2 : f.offset+2+n]
}

// SetBytes writes a FieldBytes column, truncating to the field capacity.
func (s *Schema) SetBytes(row []byte, i int, v []byte) {
	f := &s.fields[i]
	if len(v) > f.Cap {
		v = v[:f.Cap]
	}
	binary.LittleEndian.PutUint16(row[f.offset:], uint16(len(v)))
	copy(row[f.offset+2:], v)
}

// GetString is GetBytes as a string copy.
func (s *Schema) GetString(row []byte, i int) string { return string(s.GetBytes(row, i)) }

// SetString is SetBytes for strings.
func (s *Schema) SetString(row []byte, i int, v string) { s.SetBytes(row, i, []byte(v)) }

// fieldSlice returns the raw bytes (including any length prefix) of
// column i: the unit shipped by per-field value replication.
func (s *Schema) fieldSlice(row []byte, i int) []byte {
	f := &s.fields[i]
	return row[f.offset : f.offset+f.size]
}

// FieldSize returns the on-row byte width of column i.
func (s *Schema) FieldSize(i int) int { return s.fields[i].size }
