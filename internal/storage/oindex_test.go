package storage

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func oiVal(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// TestOrderedIndexLookupOrdering pins the ascending (val, pk) contract:
// matches come back in primary-key order regardless of insert order, and
// values do not bleed into each other (including prefix values).
func TestOrderedIndexLookupOrdering(t *testing.T) {
	ix := newOrderedIndex()
	ix.Insert([]byte("AB"), K1(30), 2)
	ix.Insert([]byte("ABC"), K1(1), 2)
	ix.Insert([]byte("AB"), K1(10), 2)
	ix.Insert([]byte("AB"), K2(1, 0), 2)
	ix.Insert([]byte("A"), K1(99), 2)

	got := ix.LookupAppend([]byte("AB"), IndexAllEpochs, nil)
	want := []Key{K1(10), K1(30), K2(1, 0)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lookup AB = %v, want %v", got, want)
	}
	if got := ix.LookupAppend([]byte("ABC"), IndexAllEpochs, nil); len(got) != 1 || got[0] != K1(1) {
		t.Fatalf("lookup ABC = %v", got)
	}
	if got := ix.LookupAppend([]byte("ZZ"), IndexAllEpochs, nil); len(got) != 0 {
		t.Fatalf("lookup miss = %v", got)
	}
	// Duplicate insert is idempotent.
	ix.Insert([]byte("AB"), K1(10), 3)
	if got := ix.LookupAppend([]byte("AB"), IndexAllEpochs, nil); len(got) != 3 {
		t.Fatalf("duplicate insert changed contents: %v", got)
	}
}

// TestOrderedIndexEpochVisibility pins the fence-snapshot rule: a reader
// at epoch E does not see entries inserted at E or later, and sees them
// once the fence passes (reads at E+1).
func TestOrderedIndexEpochVisibility(t *testing.T) {
	ix := newOrderedIndex()
	ix.Insert(oiVal(7), K1(1), 2)
	ix.Insert(oiVal(7), K1(2), 3) // in-flight at epoch 3

	if got := ix.LookupAppend(oiVal(7), 3, nil); len(got) != 1 || got[0] != K1(1) {
		t.Fatalf("epoch-3 fence read = %v, want only the epoch-2 entry", got)
	}
	if got := ix.LookupAppend(oiVal(7), 4, nil); len(got) != 2 {
		t.Fatalf("epoch-4 fence read = %v, want both", got)
	}
	if got := ix.LookupAppend(oiVal(7), IndexAllEpochs, nil); len(got) != 2 {
		t.Fatalf("current read = %v, want both", got)
	}
}

// TestOrderedIndexRevertAndRevive pins the tombstone cycle: a reverted
// epoch's entries disappear (wildcard 0 reverts every pending entry), a
// committed epoch's entries are immune to later reverts, and a revived
// entry is visible again under its new epoch.
func TestOrderedIndexRevertAndRevive(t *testing.T) {
	ix := newOrderedIndex()
	ix.Insert(oiVal(1), K1(1), 2)
	ix.commitEpochBefore(3) // epoch 2 committed
	ix.Insert(oiVal(1), K1(2), 3)
	ix.Insert(oiVal(1), K1(3), 4) // early-arriving next epoch

	ix.revertEpoch(3)
	got := ix.LookupAppend(oiVal(1), IndexAllEpochs, nil)
	if !reflect.DeepEqual(got, []Key{K1(1), K1(3)}) {
		t.Fatalf("after revert(3): %v, want the committed and epoch-4 entries", got)
	}
	// Epoch 4's bucket survived the epoch-3 revert and stays revertable.
	ix.revertEpoch(4)
	if got := ix.LookupAppend(oiVal(1), IndexAllEpochs, nil); !reflect.DeepEqual(got, []Key{K1(1)}) {
		t.Fatalf("after revert(4): %v", got)
	}
	// Revive the tombstoned entry in a later epoch.
	ix.Insert(oiVal(1), K1(2), 5)
	if got := ix.LookupAppend(oiVal(1), IndexAllEpochs, nil); !reflect.DeepEqual(got, []Key{K1(1), K1(2)}) {
		t.Fatalf("after revive: %v", got)
	}
	// The revived entry is invisible at its pre-insert fence…
	if got := ix.LookupAppend(oiVal(1), 5, nil); !reflect.DeepEqual(got, []Key{K1(1)}) {
		t.Fatalf("fence read at 5 after revive: %v", got)
	}
	// …and a wildcard revert (rejoin) kills it again.
	ix.revertEpoch(0)
	if got := ix.LookupAppend(oiVal(1), IndexAllEpochs, nil); !reflect.DeepEqual(got, []Key{K1(1)}) {
		t.Fatalf("after wildcard revert: %v", got)
	}
}

// TestOrderedIndexConcurrentReadersAndInserter is the engine shape: one
// writer inserting while readers look up latch-free. Run with -race.
func TestOrderedIndexConcurrentReadersAndInserter(t *testing.T) {
	ix := newOrderedIndex()
	const n = 20_000
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < n; i++ {
			ix.Insert(oiVal(uint64(i%64)), K1(uint64(i)), 2)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var buf []Key
			h := seed
			for {
				select {
				case <-done:
					return
				default:
				}
				h = h*0x9e3779b97f4a7c15 + 1
				buf = ix.LookupAppend(oiVal(h%64), IndexAllEpochs, buf[:0])
				last := Key{}
				for _, k := range buf {
					if k.Hi < last.Hi || (k.Hi == last.Hi && k.Lo < last.Lo) {
						t.Error("lookup result out of order")
						return
					}
					last = k
				}
			}
		}(uint64(r) + 1)
	}
	wg.Wait()
	if got := ix.Len(); got != n {
		t.Fatalf("len=%d, want %d", got, n)
	}
}

// TestOrderedIndexDeterministicAcrossInsertOrders pins the replica-
// convergence property the checksums rely on: the same entry set
// produces the same iteration order (and the same structure does not
// depend on arrival order).
func TestOrderedIndexDeterministicAcrossInsertOrders(t *testing.T) {
	a, b := newOrderedIndex(), newOrderedIndex()
	for i := 0; i < 500; i++ {
		a.Insert(oiVal(uint64(i%17)), K1(uint64(i)), 2)
	}
	for i := 499; i >= 0; i-- {
		b.Insert(oiVal(uint64(i%17)), K1(uint64(i)), 2)
	}
	var av, bv []string
	a.Range(func(val []byte, pk Key) bool { av = append(av, fmt.Sprintf("%x/%v", val, pk)); return true })
	b.Range(func(val []byte, pk Key) bool { bv = append(bv, fmt.Sprintf("%x/%v", val, pk)); return true })
	if !reflect.DeepEqual(av, bv) {
		t.Fatal("iteration order depends on insert order")
	}
}

// TestPartitionChecksumCoversIndexes: two DBs with identical rows but
// diverged secondary indexes must disagree on the partition checksum —
// the property every replica-convergence test leans on.
func TestPartitionChecksumCoversIndexes(t *testing.T) {
	mk := func() (*DB, *Table) {
		db := NewDB(1, nil)
		tbl := db.AddTable("t", testSchema(), false)
		tbl.AddIndex(byDataSpec())
		return db, tbl
	}
	row := testSchema().NewRow()
	testSchema().SetBytes(row, 3, []byte("X"))

	da, ta := mk()
	db2, tb := mk()
	ta.Insert(0, K1(1), 1, MakeTID(1, 1), row)
	tb.Insert(0, K1(1), 1, MakeTID(1, 1), row)
	if da.PartitionChecksum(0) != db2.PartitionChecksum(0) {
		t.Fatal("identical DBs disagree")
	}
	// Diverge ONLY the index (simulating a maintenance bug).
	tb.Partition(0).Index(0).Insert([]byte("PHANTOM"), K1(9), 1)
	if da.PartitionChecksum(0) == db2.PartitionChecksum(0) {
		t.Fatal("checksum blind to secondary-index divergence")
	}
}

// TestLookupZeroAllocs pins the latch-free read path: a lookup into a
// caller-provided buffer allocates nothing.
func TestLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	ix := newOrderedIndex()
	for i := 0; i < 1000; i++ {
		ix.Insert(oiVal(uint64(i%16)), K1(uint64(i)), 2)
	}
	buf := make([]Key, 0, 128)
	val := oiVal(3)
	allocs := testing.AllocsPerRun(10_000, func() {
		buf = ix.LookupAppend(val, IndexAllEpochs, buf[:0])
	})
	if len(buf) == 0 {
		t.Fatal("lookup found nothing")
	}
	if allocs != 0 {
		t.Fatalf("LookupAppend allocates %v per call, want 0", allocs)
	}
}

// TestLookupTailAppend pins the bounded newest-first lookup: the tail of
// the full ascending result, honouring epoch visibility and tombstones,
// via both the fast single-descent path and the ring-walk fallback.
func TestLookupTailAppend(t *testing.T) {
	ix := newOrderedIndex()
	for i := uint64(1); i <= 20; i++ {
		ix.Insert(oiVal(7), K1(i), 2+i%3) // epochs 2,3,4 interleaved
	}
	full := ix.LookupAppend(oiVal(7), IndexAllEpochs, nil)
	for _, max := range []int{1, 3, 16, 64} {
		want := full
		if len(want) > max {
			want = want[len(want)-max:]
		}
		got := ix.LookupTailAppend(oiVal(7), IndexAllEpochs, max, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tail(max=%d) = %v, want %v", max, got, want)
		}
	}
	// Fence visibility: at epoch 4, entries inserted at 4 are hidden.
	fullAt4 := ix.LookupAppend(oiVal(7), 4, nil)
	gotAt4 := ix.LookupTailAppend(oiVal(7), 4, 5, nil)
	if !reflect.DeepEqual(gotAt4, fullAt4[len(fullAt4)-5:]) {
		t.Fatalf("fence tail = %v, want suffix of %v", gotAt4, fullAt4)
	}
	// Hidden newest entry (max=1 fallback path): the newest entry for a
	// fresh value is in-flight at its own epoch.
	ix.Insert(oiVal(9), K1(1), 2)
	ix.Insert(oiVal(9), K1(2), 6)
	if got := ix.LookupTailAppend(oiVal(9), 6, 1, nil); len(got) != 1 || got[0] != K1(1) {
		t.Fatalf("hidden-newest tail = %v, want [K1(1)]", got)
	}
	// Tombstoned newest entry.
	ix.revertEpoch(6)
	if got := ix.LookupTailAppend(oiVal(9), IndexAllEpochs, 1, nil); len(got) != 1 || got[0] != K1(1) {
		t.Fatalf("tombstoned-newest tail = %v, want [K1(1)]", got)
	}
	// Missing value.
	if got := ix.LookupTailAppend(oiVal(99), IndexAllEpochs, 4, nil); len(got) != 0 {
		t.Fatalf("missing-value tail = %v", got)
	}
}
