package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// OpKind enumerates the operations shippable by operation replication.
// Operation replication is only legal in the partitioned phase, where a
// partition has a single writer thread, so deltas arrive in commit order
// (§5 of the paper).
type OpKind uint8

const (
	// OpSetField replaces a single field's raw bytes.
	OpSetField OpKind = iota
	// OpAddInt64 adds a signed delta to an integer field.
	OpAddInt64
	// OpAddFloat64 adds a delta to a float field.
	OpAddFloat64
	// OpPrepend inserts bytes at the front of a FieldBytes column,
	// truncating at capacity (TPC-C Payment's C_DATA update).
	OpPrepend
	// OpSetRow replaces the whole row.
	OpSetRow
)

// FieldOp is one field-level mutation. Arg is interpreted per Kind.
type FieldOp struct {
	Field uint8
	Kind  OpKind
	Arg   []byte
}

// SetFieldOp builds an OpSetField carrying the field's raw encoding.
func SetFieldOp(s *Schema, row []byte, field int) FieldOp {
	raw := s.fieldSlice(row, field)
	return FieldOp{Field: uint8(field), Kind: OpSetField, Arg: append([]byte(nil), raw...)}
}

// AddInt64Op builds an integer-delta op.
func AddInt64Op(field int, delta int64) FieldOp {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(delta))
	return FieldOp{Field: uint8(field), Kind: OpAddInt64, Arg: b[:]}
}

// SetInt64Op builds an op that overwrites an integer field with v
// (TPC-C Delivery's O_CARRIER_ID / OL_DELIVERY_D stamps). Fixed-width
// fields are stored as 8 little-endian bytes, so this is OpSetField with
// the value's raw encoding.
func SetInt64Op(field int, v int64) FieldOp {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return FieldOp{Field: uint8(field), Kind: OpSetField, Arg: b[:]}
}

// AddFloat64Op builds a float-delta op.
func AddFloat64Op(field int, delta float64) FieldOp {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(delta))
	return FieldOp{Field: uint8(field), Kind: OpAddFloat64, Arg: b[:]}
}

// PrependOp builds a string-prepend op.
func PrependOp(field int, prefix []byte) FieldOp {
	return FieldOp{Field: uint8(field), Kind: OpPrepend, Arg: append([]byte(nil), prefix...)}
}

// SetRowOp builds a whole-row replacement op.
func SetRowOp(row []byte) FieldOp {
	return FieldOp{Kind: OpSetRow, Arg: append([]byte(nil), row...)}
}

// Size returns the wire size of the op (1 kind + 1 field + arg), the
// quantity operation replication saves versus shipping whole rows.
func (op FieldOp) Size() int { return 2 + len(op.Arg) }

// Apply mutates row in place according to the op.
func (op FieldOp) Apply(s *Schema, row []byte) error {
	i := int(op.Field)
	switch op.Kind {
	case OpSetRow:
		if len(op.Arg) != len(row) {
			return fmt.Errorf("storage: OpSetRow size %d != row size %d", len(op.Arg), len(row))
		}
		copy(row, op.Arg)
		return nil
	case OpSetField:
		raw := s.fieldSlice(row, i)
		if len(op.Arg) != len(raw) {
			return fmt.Errorf("storage: OpSetField size %d != field size %d", len(op.Arg), len(raw))
		}
		copy(raw, op.Arg)
		return nil
	case OpAddInt64:
		if len(op.Arg) != 8 {
			return fmt.Errorf("storage: OpAddInt64 wants 8 bytes, got %d", len(op.Arg))
		}
		d := int64(binary.LittleEndian.Uint64(op.Arg))
		s.SetInt64(row, i, s.GetInt64(row, i)+d)
		return nil
	case OpAddFloat64:
		if len(op.Arg) != 8 {
			return fmt.Errorf("storage: OpAddFloat64 wants 8 bytes, got %d", len(op.Arg))
		}
		d := math.Float64frombits(binary.LittleEndian.Uint64(op.Arg))
		s.SetFloat64(row, i, s.GetFloat64(row, i)+d)
		return nil
	case OpPrepend:
		old := s.GetBytes(row, i)
		merged := make([]byte, 0, len(op.Arg)+len(old))
		merged = append(merged, op.Arg...)
		merged = append(merged, old...)
		s.SetBytes(row, i, merged) // SetBytes truncates at capacity
		return nil
	default:
		return fmt.Errorf("storage: unknown op kind %d", op.Kind)
	}
}
