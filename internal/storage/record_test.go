package storage

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordReadWrite(t *testing.T) {
	r := NewRecord(MakeTID(1, 1), []byte("hello"))
	val, tid, present := r.ReadStable(nil)
	if !present || tid != MakeTID(1, 1) || !bytes.Equal(val, []byte("hello")) {
		t.Fatalf("read: %q %s %v", val, FormatTID(tid), present)
	}
	r.Lock()
	r.WriteLocked(2, MakeTID(2, 5), []byte("world"))
	r.UnlockWithTID(MakeTID(2, 5))
	val, tid, _ = r.ReadStable(val)
	if !bytes.Equal(val, []byte("world")) || tid != MakeTID(2, 5) {
		t.Fatalf("after write: %q %s", val, FormatTID(tid))
	}
}

func TestRecordLockSemantics(t *testing.T) {
	r := NewRecord(1<<tidSeqShift, []byte("x"))
	if !r.TryLock() {
		t.Fatal("TryLock on unlocked record failed")
	}
	if r.TryLock() {
		t.Fatal("TryLock on locked record succeeded")
	}
	r.Unlock()
	if !r.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	r.Unlock()
}

func TestRecordUnlockPanicsWhenUnlocked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecord(0, nil).Unlock()
}

func TestRecordEpochRevert(t *testing.T) {
	r := NewRecord(MakeTID(1, 3), []byte("committed"))
	r.Lock()
	if first := r.WriteLocked(2, MakeTID(2, 1), []byte("uncommitted-1")); !first {
		t.Fatal("first write in epoch must report firstTouch")
	}
	r.UnlockWithTID(MakeTID(2, 1))
	r.Lock()
	if first := r.WriteLocked(2, MakeTID(2, 2), []byte("uncommitted-2")); first {
		t.Fatal("second write in same epoch must not report firstTouch")
	}
	r.UnlockWithTID(MakeTID(2, 2))

	r.Lock()
	r.revertLocked(2)
	r.Unlock()
	val, tid, present := r.ReadStable(nil)
	if !present || !bytes.Equal(val, []byte("committed")) || tid != MakeTID(1, 3) {
		t.Fatalf("revert: %q %s %v", val, FormatTID(tid), present)
	}
}

func TestRecordRevertOfInsert(t *testing.T) {
	r := NewAbsentRecord(0)
	r.Lock()
	r.WriteLocked(5, MakeTID(5, 1), []byte("new"))
	r.UnlockWithTID(MakeTID(5, 1))
	r.Lock()
	if absent := r.revertLocked(5); !absent {
		t.Fatal("reverting an insert must leave the record absent")
	}
	r.Unlock()
	if _, _, present := r.ReadStable(nil); present {
		t.Fatal("record should be absent after revert")
	}
}

func TestRecordDeleteAndRevert(t *testing.T) {
	r := NewRecord(MakeTID(1, 1), []byte("v"))
	r.Lock()
	r.DeleteLocked(2, MakeTID(2, 9))
	r.UnlockWithTID(MakeTID(2, 9) | TIDAbsentBit)
	if _, _, present := r.ReadStable(nil); present {
		t.Fatal("record should read absent after delete")
	}
	r.Lock()
	r.revertLocked(2)
	r.Unlock()
	if val, _, present := r.ReadStable(nil); !present || !bytes.Equal(val, []byte("v")) {
		t.Fatal("delete not reverted")
	}
}

// Property (paper §3/§5): applying value-replication writes in ANY order
// with the Thomas write rule converges to the value of the largest TID.
func TestThomasWriteRuleConvergence(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			n = 1
		}
		rng := rand.New(rand.NewSource(seed))
		type w struct {
			tid uint64
			val []byte
		}
		writes := make([]w, 0, n)
		for i := uint8(0); i < n; i++ {
			writes = append(writes, w{
				tid: MakeTID(1, uint64(i)+1),
				val: []byte{byte(i), byte(i >> 4), 0xAB},
			})
		}
		maxVal := writes[len(writes)-1].val
		maxTID := writes[len(writes)-1].tid
		rng.Shuffle(len(writes), func(i, j int) { writes[i], writes[j] = writes[j], writes[i] })

		r := NewAbsentRecord(0)
		for _, wr := range writes {
			r.ApplyValueThomas(1, wr.tid, wr.val, false)
		}
		val, tid, present := r.ReadStable(nil)
		return present && tid == maxTID && bytes.Equal(val, maxVal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThomasWriteRuleRejectsStale(t *testing.T) {
	r := NewRecord(MakeTID(3, 10), []byte("new"))
	applied, _, _, _ := r.ApplyValueThomas(3, MakeTID(3, 9), []byte("old"), false)
	if applied {
		t.Fatal("stale write must be rejected")
	}
	applied, _, _, _ = r.ApplyValueThomas(3, MakeTID(3, 10), []byte("same"), false)
	if applied {
		t.Fatal("equal-TID write must be rejected")
	}
	if applied, _, _, _ = r.ApplyValueThomas(3, MakeTID(3, 11), []byte("newer"), false); !applied {
		t.Fatal("newer write must apply")
	}
}

func TestRecordConcurrentReadersWriters(t *testing.T) {
	// Race-detector exercise: concurrent latched reads and writes.
	r := NewRecord(MakeTID(1, 1), bytes.Repeat([]byte{1}, 64))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					val, _, _ := r.ReadStable(buf)
					buf = val
					// A stable read must never see a torn row: all bytes equal.
					for _, b := range val[1:] {
						if b != val[0] {
							t.Error("torn read")
							return
						}
					}
				} else {
					row := bytes.Repeat([]byte{byte(i)}, 64)
					r.Lock()
					r.WriteLocked(2, MakeTID(2, uint64(i+1)), row)
					r.UnlockWithTID(MakeTID(2, uint64(i+1)))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestApplyOpsLocked(t *testing.T) {
	s := testSchema()
	row := s.NewRow()
	s.SetFloat64(row, 1, 100)
	r := NewRecord(MakeTID(1, 1), row)
	r.Lock()
	first, err := r.ApplyOpsLocked(s, 2, MakeTID(2, 1), []FieldOp{AddFloat64Op(1, -30)})
	r.UnlockWithTID(MakeTID(2, 1))
	if err != nil || !first {
		t.Fatalf("err=%v first=%v", err, first)
	}
	val, _, _ := r.ReadStable(nil)
	if got := s.GetFloat64(val, 1); got != 70 {
		t.Fatalf("balance=%v", got)
	}
}
