package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Key is a fixed-width composite key. Workloads pack their key components
// into the two words (helpers live with each workload's schema).
type Key struct{ Hi, Lo uint64 }

// K1 builds a single-component key.
func K1(a uint64) Key { return Key{Lo: a} }

// K2 builds a two-component key.
func K2(a, b uint64) Key { return Key{Hi: a, Lo: b} }

// KeySize is the wire size of a Key.
const KeySize = 16

// dirtyBucket holds one epoch's revert bookkeeping: the records whose
// pre-epoch version was saved in that epoch, the keys whose index slot
// was created in it, and the keys deleted in it (reclaimed once the
// epoch's fence passes). Bucketing by epoch makes the fence commit a
// constant-time bucket drop (no record is latched at the phase switch)
// while revert still touches exactly the epoch's own records.
type dirtyBucket struct {
	epoch   uint64
	recs    []*Record
	keys    []Key
	delKeys []Key
}

// Partition is one hash-partition of a table, indexed by a lock-free
// open-addressing table (see index.go): reads take no latch at all —
// the partitioned phase's single writer and the OCC phase's validation
// both rely only on the per-record TID latch — while inserts (rare:
// replication placeholders and new rows) serialize on insertMu. Each
// partition also carries one OrderedIndex per secondary index declared
// on its table (see oindex.go).
type Partition struct {
	idx      atomic.Pointer[idxTable]
	insertMu sync.Mutex

	// oidx are this partition's secondary indexes, aligned with the
	// owning table's IndexSpecs. Immutable after table construction.
	oidx []*OrderedIndex

	// dirty tracks per-epoch revert state: records first-written in each
	// in-flight epoch, and the keys inserted in it.
	dirtyMu sync.Mutex
	dirty   []dirtyBucket
}

func newPartition(nIndexes int) *Partition {
	p := &Partition{}
	p.idx.Store(newIdxTable(idxMinSlots))
	for i := 0; i < nIndexes; i++ {
		p.oidx = append(p.oidx, newOrderedIndex())
	}
	return p
}

// Get returns the record for key, or nil. Latch-free: a single atomic
// load per probe step, safe against concurrent inserts and growth.
func (p *Partition) Get(key Key) *Record {
	return p.idx.Load().get(key)
}

// GetOrCreate returns the record for key, creating an absent placeholder
// when missing (used by replication appliers and inserts). epoch is the
// epoch the caller is writing under; a created placeholder joins that
// epoch's revert bucket so a failed epoch removes it again.
func (p *Partition) GetOrCreate(key Key, epoch uint64) *Record {
	if r := p.Get(key); r != nil {
		return r
	}
	p.insertMu.Lock()
	t := p.idx.Load()
	// Re-probe under the insert mutex: another inserter may have won.
	if r := t.get(key); r != nil {
		p.insertMu.Unlock()
		return r
	}
	if t.needsGrow() {
		nt := t.grown()
		p.idx.Store(nt)
		t = nt
	}
	r := NewAbsentRecord(0)
	t.insert(key, r)
	p.insertMu.Unlock()
	p.dirtyMu.Lock()
	b := p.bucket(epoch)
	b.keys = append(b.keys, key)
	p.dirtyMu.Unlock()
	return r
}

// bucket returns (creating if needed) the dirty bucket for epoch.
// Caller holds dirtyMu. Writes target the newest epoch, so the scan
// runs newest-first and is effectively constant: the STAR engine keeps
// at most two epochs in flight (fences drop the rest), and the baseline
// engines drop committed buckets at their group-commit fence / batch
// hand-off.
func (p *Partition) bucket(epoch uint64) *dirtyBucket {
	for i := len(p.dirty) - 1; i >= 0; i-- {
		if p.dirty[i].epoch == epoch {
			return &p.dirty[i]
		}
	}
	p.dirty = append(p.dirty, dirtyBucket{epoch: epoch})
	return &p.dirty[len(p.dirty)-1]
}

// MarkDirty registers a record whose pre-epoch version was just saved
// for the given epoch.
func (p *Partition) MarkDirty(r *Record, epoch uint64) {
	p.dirtyMu.Lock()
	b := p.bucket(epoch)
	b.recs = append(b.recs, r)
	p.dirtyMu.Unlock()
}

// MarkDeleted registers a key deleted in the epoch. Once the epoch's
// fence passes (CommitEpochBefore / CommitEpoch), the key's index slot
// is tombstoned and the record becomes unreachable — physical
// reclamation, deferred to the horizon where no snapshot reader can
// still need the record's prior version. Table.NoteDeleted calls this;
// apply paths do not call it directly.
func (p *Partition) MarkDeleted(key Key, epoch uint64) {
	p.dirtyMu.Lock()
	b := p.bucket(epoch)
	b.delKeys = append(b.delKeys, key)
	p.dirtyMu.Unlock()
}

// Index returns the partition's i-th secondary index.
func (p *Partition) Index(i int) *OrderedIndex { return p.oidx[i] }

// Len returns the number of present records.
func (p *Partition) Len() int {
	t := p.idx.Load()
	n := 0
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil && e != idxTombstone && !TIDAbsent(e.rec.TID()) {
			n++
		}
	}
	return n
}

// Range calls fn for every present record with a stable copy of its
// value. fn must not call back into the partition. Used by checkpointing
// and consistency checks; the iteration is fuzzy (not a snapshot).
func (p *Partition) Range(fn func(key Key, tid uint64, val []byte) bool) {
	t := p.idx.Load()
	var buf []byte
	for i := range t.slots {
		e := t.slots[i].Load()
		if e == nil || e == idxTombstone {
			continue
		}
		val, tid, present := e.rec.ReadStable(buf)
		buf = val
		if !present {
			continue
		}
		if !fn(e.key, tid, val) {
			return
		}
	}
}

// RevertEpoch restores every record written in the epoch to its prior
// version and removes records inserted in it (paper Fig. 6: "Revert to
// Epoch 1"), including their secondary-index entries. Returns the number
// of reverted records. epoch 0 reverts every uncommitted record
// regardless of its epoch (rejoin cleanup).
func (p *Partition) RevertEpoch(epoch uint64) int {
	p.dirtyMu.Lock()
	var recs []*Record
	var inserted []Key
	keep := p.dirty[:0]
	for i := range p.dirty {
		b := p.dirty[i]
		if epoch == 0 || b.epoch == epoch {
			recs = append(recs, b.recs...)
			inserted = append(inserted, b.keys...)
			continue
		}
		keep = append(keep, b)
	}
	p.dirty = keep
	p.dirtyMu.Unlock()

	n := 0
	for _, r := range recs {
		r.Lock()
		r.revertLocked(epoch)
		r.Unlock()
		n++
	}
	// Placeholders created this epoch that reverted to absent are
	// tombstoned out of the index (concurrent probes skip the slot;
	// chains never break because the slot is replaced, not emptied).
	p.insertMu.Lock()
	t := p.idx.Load()
	for _, k := range inserted {
		if r := t.get(k); r != nil && TIDAbsent(r.TID()) {
			t.tombstone(k)
		}
	}
	p.insertMu.Unlock()
	for _, ix := range p.oidx {
		ix.revertEpoch(epoch)
	}
	return n
}

// CommitEpoch discards all revert information and reclaims every
// committed delete.
func (p *Partition) CommitEpoch() {
	p.dirtyMu.Lock()
	var reclaim []Key
	for i := range p.dirty {
		reclaim = append(reclaim, p.dirty[i].delKeys...)
	}
	p.dirty = nil
	p.dirtyMu.Unlock()
	p.reclaim(reclaim, 0)
	for _, ix := range p.oidx {
		ix.commitAll()
	}
}

// reclaim tombstones the index slots of committed deletes (skipping keys
// that were re-inserted or are still latched), then compacts the slot
// array if tombstones dominate it. Runs at the epoch fence, after which
// no snapshot reader can see the deleted records.
func (p *Partition) reclaim(keys []Key, epoch uint64) {
	if len(keys) == 0 {
		return
	}
	p.insertMu.Lock()
	t := p.idx.Load()
	for _, k := range keys {
		if r := t.get(k); r != nil && r.CollectibleAt(epoch) {
			t.tombstone(k)
		}
	}
	if t.needsCompact() {
		p.idx.Store(t.compacted())
	}
	p.insertMu.Unlock()
}

// CommitEpochBefore discards revert information for epochs BEFORE epoch,
// keeping newer-epoch snapshots revertable. Replication can deliver a
// new epoch's entries ahead of the local phase-start command (the stamps
// travel on different links); committing them with the old epoch would
// orphan them from a subsequent revert of the new epoch and leave zombie
// versions the Thomas write rule then defends forever. With the dirty
// set bucketed by epoch this is a constant-time bucket drop: no record
// is latched at the phase switch.
func (p *Partition) CommitEpochBefore(epoch uint64) {
	p.dirtyMu.Lock()
	var reclaim []Key
	keep := p.dirty[:0]
	for i := range p.dirty {
		if p.dirty[i].epoch >= epoch {
			keep = append(keep, p.dirty[i])
			continue
		}
		reclaim = append(reclaim, p.dirty[i].delKeys...)
	}
	p.dirty = keep
	p.dirtyMu.Unlock()
	p.reclaim(reclaim, epoch)
	for _, ix := range p.oidx {
		ix.commitEpochBefore(epoch)
	}
}

// TableID identifies a table within a database.
type TableID uint8

// IndexSpec declares one secondary index on a table: a name and the
// extractor that derives the index value from a row. Extract appends the
// value's canonical byte encoding to dst and returns it; the encoding
// must be order-preserving for the workload's scan semantics (e.g.
// big-endian integers). Specs are static program data declared with the
// schema at BuildDB time.
type IndexSpec struct {
	Name string
	// Extract derives the index value for (key, row). key carries the
	// primary-key components that are not materialised in the row.
	Extract func(s *Schema, key Key, row []byte, dst []byte) []byte
}

// Table is a named, partitioned collection of records with one fixed
// schema, implemented as per-partition hash tables (paper §3: "Tables in
// STAR are implemented as collections of hash tables") plus zero or more
// ordered secondary indexes maintained at commit time on every insert
// path (execution, replication apply, snapshot catch-up, log replay).
type Table struct {
	id     TableID
	name   string
	schema *Schema
	parts  []*Partition

	// replicated marks read-mostly tables materialised on every node in
	// a single logical partition (TPC-C's ITEM table).
	replicated bool

	specs []IndexSpec
}

// ID returns the table's id.
func (t *Table) ID() TableID { return t.id }

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Replicated reports whether the table is fully replicated (unpartitioned).
func (t *Table) Replicated() bool { return t.replicated }

// NumPartitions returns the partition count (1 for replicated tables).
func (t *Table) NumPartitions() int { return len(t.parts) }

// newPart builds a partition carrying this table's secondary indexes.
func (t *Table) newPart() *Partition { return newPartition(len(t.specs)) }

// AddIndex declares a secondary index and returns its id (the position
// callers pass to IndexLookup / txn.Ctx.LookupIndex). Must be called at
// schema-declaration time, before any row exists.
func (t *Table) AddIndex(spec IndexSpec) int {
	for _, p := range t.parts {
		if p != nil && p.Len() > 0 {
			panic("storage: AddIndex after rows were inserted")
		}
	}
	t.specs = append(t.specs, spec)
	for _, p := range t.parts {
		if p != nil {
			p.oidx = append(p.oidx, newOrderedIndex())
		}
	}
	return len(t.specs) - 1
}

// NumIndexes returns the number of declared secondary indexes.
func (t *Table) NumIndexes() int { return len(t.specs) }

// IndexName returns index i's declared name.
func (t *Table) IndexName(i int) string { return t.specs[i].Name }

// Partition returns partition p, or nil when this node does not hold it.
func (t *Table) Partition(p int) *Partition {
	if t.replicated {
		return t.parts[0]
	}
	return t.parts[p]
}

// Get returns the record at (partition, key), or nil. It panics if the
// node does not hold the partition — routing bugs should be loud.
func (t *Table) Get(part int, key Key) *Record {
	p := t.Partition(part)
	if p == nil {
		panic(fmt.Sprintf("storage: table %s: partition %d not held by this node", t.name, part))
	}
	return p.Get(key)
}

// Insert creates a record at (partition, key). It returns the record and
// whether a *present* record already existed (callers treat that as a
// uniqueness violation). Secondary indexes are maintained inline.
func (t *Table) Insert(part int, key Key, epoch, tid uint64, row []byte) (*Record, bool) {
	p := t.Partition(part)
	r := p.GetOrCreate(key, epoch)
	r.Lock()
	if !TIDAbsent(r.tid.Load()) {
		r.Unlock()
		return r, false
	}
	if r.WriteLocked(epoch, tid, row) {
		p.MarkDirty(r, epoch)
	}
	r.UnlockWithTID(TIDClean(tid))
	t.NoteInserted(part, key, row, epoch)
	return r, true
}

// Delete marks the record at (partition, key) absent under the epoch and
// TID. Returns false when no present record exists (the caller decides
// whether that is a conflict). Secondary indexes and reclamation
// bookkeeping are maintained inline; physical reclamation happens at the
// epoch fence.
func (t *Table) Delete(part int, key Key, epoch, tid uint64) bool {
	p := t.Partition(part)
	r := p.Get(key)
	if r == nil {
		return false
	}
	r.Lock()
	if TIDAbsent(r.tid.Load()) {
		r.Unlock()
		return false
	}
	row := append([]byte(nil), r.ValueLocked()...)
	if r.DeleteLocked(epoch, tid) {
		p.MarkDirty(r, epoch)
	}
	r.UnlockWithTID(TIDClean(tid) | TIDAbsentBit)
	t.NoteDeleted(part, key, row, epoch)
	return true
}

// NoteInserted maintains the table's secondary indexes for a record that
// just transitioned absent → present at (part, key) with the given row.
// Every insert path calls it: transaction commit (occ), replication
// apply, recovery snapshot catch-up, and WAL replay — so every replica's
// indexes converge with its rows. A no-op for tables without indexes.
func (t *Table) NoteInserted(part int, key Key, row []byte, epoch uint64) {
	if len(t.specs) == 0 {
		return
	}
	p := t.Partition(part)
	var buf [64]byte
	for i := range t.specs {
		val := t.specs[i].Extract(t.schema, key, row, buf[:0])
		p.oidx[i].Insert(val, key, epoch)
	}
}

// NoteDeleted is NoteInserted's inverse: it maintains the secondary
// indexes and reclamation bookkeeping for a record that just
// transitioned present → absent at (part, key). row is the row as it
// stood immediately before the delete (the caller captures it before
// marking the record absent) — index values must be derivable from it,
// which holds because indexed fields are never updated after insert.
// Every delete path calls it: transaction commit (occ), replication
// apply, snapshot catch-up, and WAL replay. The index entries stay
// visible to fence-snapshot readers until the epoch commits; the fence
// then unlinks them and tombstones the primary-index slot.
func (t *Table) NoteDeleted(part int, key Key, row []byte, epoch uint64) {
	p := t.Partition(part)
	if row != nil {
		var buf [64]byte
		for i := range t.specs {
			val := t.specs[i].Extract(t.schema, key, row, buf[:0])
			p.oidx[i].Delete(val, key, epoch)
		}
	}
	p.MarkDeleted(key, epoch)
}

// IndexLookup appends the primary keys stored under val in index idx of
// partition part to dst, ascending, honouring atEpoch visibility
// (IndexAllEpochs = current state; an in-flight epoch = that epoch's
// fence snapshot). Returns dst unchanged when the partition is not held.
func (t *Table) IndexLookup(part, idx int, val []byte, atEpoch uint64, dst []Key) []Key {
	p := t.Partition(part)
	if p == nil {
		return dst
	}
	return p.oidx[idx].LookupAppend(val, atEpoch, dst)
}

// IndexLookupTail is IndexLookup bounded to the last (greatest-key) max
// matches — an O(log n) descent in the common single-match case instead
// of materialising a customer's whole history (see
// OrderedIndex.LookupTailAppend).
func (t *Table) IndexLookupTail(part, idx int, val []byte, atEpoch uint64, max int, dst []Key) []Key {
	p := t.Partition(part)
	if p == nil {
		return dst
	}
	return p.oidx[idx].LookupTailAppend(val, atEpoch, max, dst)
}
