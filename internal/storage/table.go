package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Key is a fixed-width composite key. Workloads pack their key components
// into the two words (helpers live with each workload's schema).
type Key struct{ Hi, Lo uint64 }

// K1 builds a single-component key.
func K1(a uint64) Key { return Key{Lo: a} }

// K2 builds a two-component key.
func K2(a, b uint64) Key { return Key{Hi: a, Lo: b} }

// KeySize is the wire size of a Key.
const KeySize = 16

// Partition is one hash-partition of a table, indexed by a lock-free
// open-addressing table (see index.go): reads take no latch at all —
// the partitioned phase's single writer and the OCC phase's validation
// both rely only on the per-record TID latch — while inserts (rare:
// replication placeholders and new rows) serialize on insertMu.
type Partition struct {
	idx      atomic.Pointer[idxTable]
	insertMu sync.Mutex

	// dirty tracks records first-written in the current epoch, and the
	// keys inserted in it, for O(writes) epoch revert.
	dirtyMu   sync.Mutex
	dirty     []*Record
	dirtyKeys []Key
}

func newPartition() *Partition {
	p := &Partition{}
	p.idx.Store(newIdxTable(idxMinSlots))
	return p
}

// Get returns the record for key, or nil. Latch-free: a single atomic
// load per probe step, safe against concurrent inserts and growth.
func (p *Partition) Get(key Key) *Record {
	return p.idx.Load().get(key)
}

// GetOrCreate returns the record for key, creating an absent placeholder
// when missing (used by replication appliers and inserts).
func (p *Partition) GetOrCreate(key Key) *Record {
	if r := p.Get(key); r != nil {
		return r
	}
	p.insertMu.Lock()
	t := p.idx.Load()
	// Re-probe under the insert mutex: another inserter may have won.
	if r := t.get(key); r != nil {
		p.insertMu.Unlock()
		return r
	}
	if t.needsGrow() {
		nt := t.grown()
		p.idx.Store(nt)
		t = nt
	}
	r := NewAbsentRecord(0)
	t.insert(key, r)
	p.insertMu.Unlock()
	p.dirtyMu.Lock()
	p.dirtyKeys = append(p.dirtyKeys, key)
	p.dirtyMu.Unlock()
	return r
}

// MarkDirty registers a record whose pre-epoch version was just saved.
func (p *Partition) MarkDirty(r *Record) {
	p.dirtyMu.Lock()
	p.dirty = append(p.dirty, r)
	p.dirtyMu.Unlock()
}

// Len returns the number of present records.
func (p *Partition) Len() int {
	t := p.idx.Load()
	n := 0
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil && e != idxTombstone && !TIDAbsent(e.rec.TID()) {
			n++
		}
	}
	return n
}

// Range calls fn for every present record with a stable copy of its
// value. fn must not call back into the partition. Used by checkpointing
// and consistency checks; the iteration is fuzzy (not a snapshot).
func (p *Partition) Range(fn func(key Key, tid uint64, val []byte) bool) {
	t := p.idx.Load()
	var buf []byte
	for i := range t.slots {
		e := t.slots[i].Load()
		if e == nil || e == idxTombstone {
			continue
		}
		val, tid, present := e.rec.ReadStable(buf)
		buf = val
		if !present {
			continue
		}
		if !fn(e.key, tid, val) {
			return
		}
	}
}

// RevertEpoch restores every record written in the epoch to its prior
// version and removes records inserted in it (paper Fig. 6: "Revert to
// Epoch 1"). Returns the number of reverted records. epoch 0 reverts
// every uncommitted record regardless of its epoch (rejoin cleanup).
func (p *Partition) RevertEpoch(epoch uint64) int {
	p.dirtyMu.Lock()
	dirty := p.dirty
	inserted := p.dirtyKeys
	p.dirty = nil
	p.dirtyKeys = nil
	p.dirtyMu.Unlock()

	n := 0
	for _, r := range dirty {
		r.Lock()
		r.revertLocked(epoch)
		r.Unlock()
		n++
	}
	// Placeholders created this epoch that reverted to absent are
	// tombstoned out of the index (concurrent probes skip the slot;
	// chains never break because the slot is replaced, not emptied).
	p.insertMu.Lock()
	t := p.idx.Load()
	for _, k := range inserted {
		if r := t.get(k); r != nil && TIDAbsent(r.TID()) {
			t.tombstone(k)
		}
	}
	p.insertMu.Unlock()
	return n
}

// CommitEpoch discards the revert information collected for the epoch.
func (p *Partition) CommitEpoch() {
	p.dirtyMu.Lock()
	p.dirty = nil
	p.dirtyKeys = nil
	p.dirtyMu.Unlock()
}

// CommitEpochBefore discards revert information for dirty records
// written BEFORE epoch, keeping records whose snapshot belongs to epoch
// or later in the dirty set. Replication can deliver a new epoch's
// entries ahead of the local phase-start command (the stamps travel on
// different links); committing them with the old epoch would orphan
// them from a subsequent revert of the new epoch and leave zombie
// versions the Thomas write rule then defends forever.
func (p *Partition) CommitEpochBefore(epoch uint64) {
	p.dirtyMu.Lock()
	dirty := p.dirty
	keys := p.dirtyKeys
	p.dirty = nil
	p.dirtyKeys = nil
	p.dirtyMu.Unlock()

	var keepD []*Record
	for _, r := range dirty {
		r.Lock()
		keep := r.priorValid && r.savedEpoch >= epoch
		r.Unlock()
		if keep {
			keepD = append(keepD, r)
		}
	}
	var keepK []Key
	if len(keys) > 0 {
		t := p.idx.Load()
		for _, k := range keys {
			r := t.get(k)
			if r == nil {
				continue
			}
			r.Lock()
			keep := r.priorValid && r.savedEpoch >= epoch
			r.Unlock()
			if keep {
				keepK = append(keepK, k)
			}
		}
	}
	if len(keepD) > 0 || len(keepK) > 0 {
		p.dirtyMu.Lock()
		p.dirty = append(keepD, p.dirty...)
		p.dirtyKeys = append(keepK, p.dirtyKeys...)
		p.dirtyMu.Unlock()
	}
}

// TableID identifies a table within a database.
type TableID uint8

// Table is a named, partitioned collection of records with one fixed
// schema, implemented as per-partition hash tables (paper §3: "Tables in
// STAR are implemented as collections of hash tables").
type Table struct {
	id     TableID
	name   string
	schema *Schema
	parts  []*Partition

	// replicated marks read-mostly tables materialised on every node in
	// a single logical partition (TPC-C's ITEM table).
	replicated bool

	indexes []*SecondaryIndex
}

// ID returns the table's id.
func (t *Table) ID() TableID { return t.id }

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Replicated reports whether the table is fully replicated (unpartitioned).
func (t *Table) Replicated() bool { return t.replicated }

// NumPartitions returns the partition count (1 for replicated tables).
func (t *Table) NumPartitions() int { return len(t.parts) }

// Partition returns partition p, or nil when this node does not hold it.
func (t *Table) Partition(p int) *Partition {
	if t.replicated {
		return t.parts[0]
	}
	return t.parts[p]
}

// Get returns the record at (partition, key), or nil. It panics if the
// node does not hold the partition — routing bugs should be loud.
func (t *Table) Get(part int, key Key) *Record {
	p := t.Partition(part)
	if p == nil {
		panic(fmt.Sprintf("storage: table %s: partition %d not held by this node", t.name, part))
	}
	return p.Get(key)
}

// Insert creates a record at (partition, key). It returns the record and
// whether a *present* record already existed (callers treat that as a
// uniqueness violation).
func (t *Table) Insert(part int, key Key, epoch, tid uint64, row []byte) (*Record, bool) {
	p := t.Partition(part)
	r := p.GetOrCreate(key)
	r.Lock()
	if !TIDAbsent(r.tid.Load()) {
		r.Unlock()
		return r, false
	}
	if r.WriteLocked(epoch, tid, row) {
		p.MarkDirty(r)
	}
	r.UnlockWithTID(TIDClean(tid))
	return r, true
}

// SecondaryIndex maps an indexed byte value to the primary keys holding
// it. STAR's tables may carry zero or more of these (§3). The index is
// maintained explicitly by loaders/transactions (our workloads never
// update indexed fields).
type SecondaryIndex struct {
	name string
	mu   sync.RWMutex
	m    map[string][]Key
}

// AddIndex attaches a named secondary index to the table.
func (t *Table) AddIndex(name string) *SecondaryIndex {
	idx := &SecondaryIndex{name: name, m: make(map[string][]Key)}
	t.indexes = append(t.indexes, idx)
	return idx
}

// Index returns the named index, or nil.
func (t *Table) Index(name string) *SecondaryIndex {
	for _, idx := range t.indexes {
		if idx.name == name {
			return idx
		}
	}
	return nil
}

// Put adds key under the index value.
func (ix *SecondaryIndex) Put(val []byte, key Key) {
	ix.mu.Lock()
	ix.m[string(val)] = append(ix.m[string(val)], key)
	ix.mu.Unlock()
}

// Lookup returns the keys stored under val (shared slice; do not mutate).
func (ix *SecondaryIndex) Lookup(val []byte) []Key {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.m[string(val)]
}
