package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: FieldUint64},
		Field{Name: "balance", Type: FieldFloat64},
		Field{Name: "count", Type: FieldInt64},
		Field{Name: "data", Type: FieldBytes, Cap: 16},
	)
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema()
	if s.RowSize() != 8+8+8+2+16 {
		t.Fatalf("row size %d", s.RowSize())
	}
	if s.NumFields() != 4 || s.FieldIndex("data") != 3 || s.FieldIndex("nope") != -1 {
		t.Fatal("field lookup broken")
	}
}

func TestSchemaAccessorsRoundTrip(t *testing.T) {
	s := testSchema()
	f := func(id uint64, bal float64, cnt int64, data []byte) bool {
		row := s.NewRow()
		s.SetUint64(row, 0, id)
		s.SetFloat64(row, 1, bal)
		s.SetInt64(row, 2, cnt)
		s.SetBytes(row, 3, data)
		want := data
		if len(want) > 16 {
			want = want[:16]
		}
		return s.GetUint64(row, 0) == id &&
			(s.GetFloat64(row, 1) == bal || bal != bal) && // NaN-safe
			s.GetInt64(row, 2) == cnt &&
			bytes.Equal(s.GetBytes(row, 3), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaStringTruncation(t *testing.T) {
	s := testSchema()
	row := s.NewRow()
	s.SetString(row, 3, "0123456789abcdefOVERFLOW")
	if got := s.GetString(row, 3); got != "0123456789abcdef" {
		t.Fatalf("got %q", got)
	}
}

func TestSchemaPanicsOnBadField(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for FieldBytes without Cap")
		}
	}()
	NewSchema(Field{Name: "bad", Type: FieldBytes})
}

func TestFieldOpsApply(t *testing.T) {
	s := testSchema()
	row := s.NewRow()
	s.SetFloat64(row, 1, 10)
	s.SetInt64(row, 2, 5)
	s.SetString(row, 3, "world")

	ops := []FieldOp{
		AddFloat64Op(1, 2.5),
		AddInt64Op(2, -3),
		PrependOp(3, []byte("hello ")),
	}
	for _, op := range ops {
		if err := op.Apply(s, row); err != nil {
			t.Fatal(err)
		}
	}
	if s.GetFloat64(row, 1) != 12.5 || s.GetInt64(row, 2) != 2 {
		t.Fatalf("numeric ops: %v %v", s.GetFloat64(row, 1), s.GetInt64(row, 2))
	}
	if got := s.GetString(row, 3); got != "hello world" {
		t.Fatalf("prepend: %q", got)
	}
	// Prepend truncates at capacity like TPC-C's C_DATA.
	if err := PrependOp(3, bytes.Repeat([]byte("x"), 20)).Apply(s, row); err != nil {
		t.Fatal(err)
	}
	if got := s.GetString(row, 3); got != "xxxxxxxxxxxxxxxx" {
		t.Fatalf("truncated prepend: %q", got)
	}
}

func TestSetFieldOpCarriesRawEncoding(t *testing.T) {
	s := testSchema()
	src := s.NewRow()
	s.SetString(src, 3, "abc")
	op := SetFieldOp(s, src, 3)
	dst := s.NewRow()
	s.SetString(dst, 3, "zzzzzzzz")
	if err := op.Apply(s, dst); err != nil {
		t.Fatal(err)
	}
	if got := s.GetString(dst, 3); got != "abc" {
		t.Fatalf("got %q", got)
	}
	if op.Size() >= s.RowSize() {
		t.Fatalf("field op (%dB) should be smaller than the row (%dB)", op.Size(), s.RowSize())
	}
}

func TestSetRowOp(t *testing.T) {
	s := testSchema()
	src := s.NewRow()
	s.SetUint64(src, 0, 42)
	op := SetRowOp(src)
	dst := s.NewRow()
	if err := op.Apply(s, dst); err != nil {
		t.Fatal(err)
	}
	if s.GetUint64(dst, 0) != 42 {
		t.Fatal("row not copied")
	}
	if err := op.Apply(s, make([]byte, 3)); err == nil {
		t.Fatal("size mismatch must error")
	}
}

// Property: applying the ops a single-writer partition emits, in order,
// yields the same row as the direct writes — the correctness condition
// for operation replication (paper §5, right side of Fig. 8).
func TestOpReplicationEquivalence(t *testing.T) {
	s := testSchema()
	f := func(deltas []int8, strs [][]byte) bool {
		direct := s.NewRow()
		replica := s.NewRow()
		var stream []FieldOp
		for _, d := range deltas {
			AddInt64Op(2, int64(d)).Apply(s, direct)
			stream = append(stream, AddInt64Op(2, int64(d)))
		}
		for _, str := range strs {
			PrependOp(3, str).Apply(s, direct)
			stream = append(stream, PrependOp(3, str))
		}
		for _, op := range stream {
			if err := op.Apply(s, replica); err != nil {
				return false
			}
		}
		return bytes.Equal(direct, replica)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
