// Package storage implements STAR's in-memory storage substrate: fixed
// schema rows, Silo-style TID words, records keeping two versions (for
// epoch revert on failure, §4.5.2 of the paper), partitioned hash tables
// with optional secondary indexes, and the field operations used by
// operation replication (§5).
package storage

import "fmt"

// A TID word packs, into one uint64:
//
//	bit  0      lock bit (record latch)
//	bit  1      absent bit (tombstone / not-yet-inserted)
//	bits 2..33  sequence number (32 bits)
//	bits 34..63 epoch number (30 bits)
//
// TIDs of conflicting writes are assigned in serial-equivalent order
// (Silo's three rules), so the Thomas write rule "apply if newer" is safe
// for value replication.
const (
	TIDLockBit    uint64 = 1 << 0
	TIDAbsentBit  uint64 = 1 << 1
	tidSeqShift          = 2
	tidSeqMask    uint64 = (1<<32 - 1) << tidSeqShift
	tidEpochShift        = 34
)

// MakeTID builds an unlocked, present TID from an epoch and sequence.
func MakeTID(epoch, seq uint64) uint64 {
	return epoch<<tidEpochShift | (seq<<tidSeqShift)&tidSeqMask
}

// TIDEpoch extracts the epoch number.
func TIDEpoch(tid uint64) uint64 { return tid >> tidEpochShift }

// TIDSeq extracts the sequence number.
func TIDSeq(tid uint64) uint64 { return (tid & tidSeqMask) >> tidSeqShift }

// TIDLocked reports whether the lock bit is set.
func TIDLocked(tid uint64) bool { return tid&TIDLockBit != 0 }

// TIDAbsent reports whether the absent bit is set.
func TIDAbsent(tid uint64) bool { return tid&TIDAbsentBit != 0 }

// TIDClean strips the lock and absent bits, leaving the version.
func TIDClean(tid uint64) uint64 { return tid &^ (TIDLockBit | TIDAbsentBit) }

// FormatTID renders a TID for diagnostics.
func FormatTID(tid uint64) string {
	s := fmt.Sprintf("e%d.s%d", TIDEpoch(tid), TIDSeq(tid))
	if TIDLocked(tid) {
		s += "+L"
	}
	if TIDAbsent(tid) {
		s += "+A"
	}
	return s
}
