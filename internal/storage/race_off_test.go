//go:build !race

package storage

// raceEnabled reports whether the race detector is active (allocation
// budget tests skip under it).
const raceEnabled = false
