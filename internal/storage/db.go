package storage

import "fmt"

// DB is one node's copy of the database: every table's schema plus the
// hash partitions this node materialises. A full replica holds every
// partition; a partial replica holds a subset (paper Fig. 2).
type DB struct {
	tables []*Table
	byName map[string]*Table
	nparts int
	holds  []bool
}

// NewDB creates an empty database with nparts partitions. holds[p] says
// whether this node materialises partition p; nil means all (full
// replica).
func NewDB(nparts int, holds []bool) *DB {
	if holds == nil {
		holds = make([]bool, nparts)
		for i := range holds {
			holds[i] = true
		}
	}
	if len(holds) != nparts {
		panic(fmt.Sprintf("storage: holds length %d != nparts %d", len(holds), nparts))
	}
	return &DB{byName: make(map[string]*Table), nparts: nparts, holds: append([]bool(nil), holds...)}
}

// NumPartitions returns the partition count of the database.
func (db *DB) NumPartitions() int { return db.nparts }

// Holds reports whether this node materialises partition p.
func (db *DB) Holds(p int) bool { return db.holds[p] }

// SetHolds changes partition residency (used when re-mastering lost
// partitions onto a full replica during recovery).
func (db *DB) SetHolds(p int, h bool) {
	db.holds[p] = h
	for _, t := range db.tables {
		if t.replicated {
			continue
		}
		if h && t.parts[p] == nil {
			t.parts[p] = t.newPart()
		}
	}
}

// AddTable registers a table. Replicated tables have one logical
// partition materialised regardless of holds.
func (db *DB) AddTable(name string, schema *Schema, replicated bool) *Table {
	if _, dup := db.byName[name]; dup {
		panic("storage: duplicate table " + name)
	}
	t := &Table{
		id:         TableID(len(db.tables)),
		name:       name,
		schema:     schema,
		replicated: replicated,
	}
	if replicated {
		t.parts = []*Partition{t.newPart()}
	} else {
		t.parts = make([]*Partition, db.nparts)
		for p := 0; p < db.nparts; p++ {
			if db.holds[p] {
				t.parts[p] = t.newPart()
			}
		}
	}
	db.tables = append(db.tables, t)
	db.byName[name] = t
	return t
}

// Table returns the table with the given id.
func (db *DB) Table(id TableID) *Table { return db.tables[int(id)] }

// TableByName returns the named table, or nil.
func (db *DB) TableByName(name string) *Table { return db.byName[name] }

// NumTables returns the table count.
func (db *DB) NumTables() int { return len(db.tables) }

// RevertEpoch restores all partitions to their pre-epoch state.
// Returns the number of reverted records.
func (db *DB) RevertEpoch(epoch uint64) int {
	n := 0
	for _, t := range db.tables {
		for _, p := range t.parts {
			if p != nil {
				n += p.RevertEpoch(epoch)
			}
		}
	}
	return n
}

// CommitEpochBefore discards revert information for records written
// before epoch, keeping newer-epoch snapshots revertable (see
// Partition.CommitEpochBefore).
func (db *DB) CommitEpochBefore(epoch uint64) {
	for _, t := range db.tables {
		for _, p := range t.parts {
			if p != nil {
				p.CommitEpochBefore(epoch)
			}
		}
	}
}

// CommitEpoch discards revert information across all partitions.
func (db *DB) CommitEpoch() {
	for _, t := range db.tables {
		for _, p := range t.parts {
			if p != nil {
				p.CommitEpoch()
			}
		}
	}
}

// PartitionChecksum folds every present record of partition p (across
// all partitioned tables) AND every live secondary-index entry into an
// order-independent checksum. Replicas holding the same partition must
// agree after a replication fence; tests use this to check consistency,
// and including the index entries makes every convergence check (the
// scripted determinism pins, CheckReplicaConsistency, the kill/restart
// Probe comparison) also assert that secondary indexes converged.
func (db *DB) PartitionChecksum(p int) uint64 {
	var sum uint64
	for _, t := range db.tables {
		if t.replicated {
			continue
		}
		part := t.parts[p]
		if part == nil {
			continue
		}
		tid := uint64(t.id)
		part.Range(func(key Key, recTID uint64, val []byte) bool {
			h := fnv64(tid, key, recTID, val)
			sum += h // addition is order-independent
			return true
		})
		for i := range t.specs {
			ixid := tid<<8 | uint64(i) | 1<<63 // distinct domain from rows
			part.oidx[i].Range(func(val []byte, pk Key) bool {
				sum += fnv64(ixid, pk, 0, val)
				return true
			})
		}
	}
	return sum
}

func fnv64(tableID uint64, key Key, tid uint64, val []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(tableID)
	mix(key.Hi)
	mix(key.Lo)
	mix(tid)
	for _, b := range val {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
