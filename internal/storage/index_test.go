package storage

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestIndexGrowKeepsAllKeys drives the index through many doublings and
// verifies every inserted key stays reachable.
func TestIndexGrowKeepsAllKeys(t *testing.T) {
	p := newPartition(0)
	const n = 10_000
	recs := make([]*Record, n)
	for i := 0; i < n; i++ {
		recs[i] = p.GetOrCreate(K2(uint64(i)*7, uint64(i)), 2)
	}
	for i := 0; i < n; i++ {
		if got := p.Get(K2(uint64(i)*7, uint64(i))); got != recs[i] {
			t.Fatalf("key %d: got %p want %p", i, got, recs[i])
		}
	}
	if p.Get(K2(1, n+1)) != nil {
		t.Fatal("absent key must return nil")
	}
}

// TestIndexConcurrentReadersAndInserter is the single-master-phase shape:
// one writer inserting (triggering copy-on-grow) while readers probe
// latch-free. Run with -race.
func TestIndexConcurrentReadersAndInserter(t *testing.T) {
	p := newPartition(0)
	const n = 20_000
	var published atomic.Int64
	published.Store(-1) // nothing inserted yet
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			p.GetOrCreate(K1(uint64(i)), 2)
			published.Store(int64(i))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := seed
			for i := 0; i < 50_000; i++ {
				h = h*0x9e3779b97f4a7c15 + 1
				hi := published.Load()
				if hi < 0 {
					continue
				}
				k := h % uint64(hi+1)
				// A key at or below the published watermark must be found.
				if p.Get(K1(k)) == nil {
					t.Errorf("published key %d not found", k)
					return
				}
			}
		}(uint64(r) + 1)
	}
	wg.Wait()
}

// TestIndexConcurrentGetOrCreate checks duplicate suppression when two
// goroutines race to create the same keys.
func TestIndexConcurrentGetOrCreate(t *testing.T) {
	p := newPartition(0)
	const n = 5_000
	out := [2][]*Record{}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		out[g] = make([]*Record, n)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				out[g][i] = p.GetOrCreate(K1(uint64(i)), 2)
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if out[0][i] != out[1][i] {
			t.Fatalf("key %d: racing GetOrCreate returned distinct records", i)
		}
	}
}

// TestIndexRevertCommitInterleaving interleaves epochs that insert keys
// and then either commit or revert, with concurrent readers, checking
// that reverted inserts disappear while committed ones survive — and
// that a reverted key can be re-inserted afterwards.
func TestIndexRevertCommitInterleaving(t *testing.T) {
	db := NewDB(1, nil)
	tbl := db.AddTable("t", testSchema(), false)
	p := tbl.Partition(0)
	row := tbl.Schema().NewRow()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := uint64(0); k < 64; k++ {
					if rec := p.Get(K1(k)); rec != nil {
						v, _, _ := rec.ReadStable(buf)
						buf = v
					}
				}
			}
		}()
	}

	seq := uint64(1)
	for epoch := uint64(2); epoch < 42; epoch++ {
		base := epoch * 100
		for k := uint64(0); k < 8; k++ {
			seq++
			if _, ok := tbl.Insert(0, K1(base+k), epoch, MakeTID(epoch, seq), row); !ok {
				t.Fatalf("epoch %d: insert %d failed", epoch, k)
			}
		}
		if epoch%2 == 0 {
			p.CommitEpoch()
			for k := uint64(0); k < 8; k++ {
				if p.Get(K1(base+k)) == nil {
					t.Fatalf("epoch %d: committed insert %d vanished", epoch, k)
				}
			}
		} else {
			p.RevertEpoch(epoch)
			for k := uint64(0); k < 8; k++ {
				if p.Get(K1(base+k)) != nil {
					t.Fatalf("epoch %d: reverted insert %d still visible", epoch, k)
				}
			}
			// Tombstoned slots must be reusable.
			seq++
			if _, ok := tbl.Insert(0, K1(base), epoch+100, MakeTID(epoch+100, seq), row); !ok {
				t.Fatalf("epoch %d: re-insert after revert failed", epoch)
			}
			if p.Get(K1(base)) == nil {
				t.Fatalf("epoch %d: re-inserted key not found", epoch)
			}
			p.CommitEpoch()
		}
	}
	close(stop)
	wg.Wait()
}

// TestIndexGetZeroAllocs pins the latch-free read path's allocation
// count at zero.
func TestIndexGetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := newPartition(0)
	for i := uint64(0); i < 1000; i++ {
		p.GetOrCreate(K1(i), 2)
	}
	var sink *Record
	allocs := testing.AllocsPerRun(10_000, func() {
		sink = p.Get(K1(123))
	})
	if sink == nil {
		t.Fatal("key not found")
	}
	if allocs != 0 {
		t.Fatalf("Partition.Get allocates %v per call, want 0", allocs)
	}
}

// TestIndexChurnCompactsTombstones drives insert→delete→fence cycles
// over a bounded live set and pins the tombstone-slot accounting: the
// slot array must not grow monotonically under churn, tombstones must
// sit below the compaction threshold after every fence, and probe
// lengths for live keys must stay short — a leak of dead slots shows up
// here as unbounded probing long before it shows up as memory.
func TestIndexChurnCompactsTombstones(t *testing.T) {
	db, tbl := newTestDB(t, 1, nil)
	p := tbl.Partition(0)
	row := testSchema().NewRow()
	const permanent = 64 // keys that live forever
	const churn = 64     // keys inserted and deleted every cycle
	seq, epoch := uint64(0), uint64(2)
	for k := uint64(0); k < permanent; k++ {
		seq++
		if _, ok := tbl.Insert(0, K1(k), epoch, MakeTID(epoch, seq), row); !ok {
			t.Fatalf("permanent insert %d failed", k)
		}
	}
	db.CommitEpoch()
	for cycle := 0; cycle < 50; cycle++ {
		epoch++
		base := uint64(cycle+1) * 1000
		for k := uint64(0); k < churn; k++ {
			seq++
			if _, ok := tbl.Insert(0, K1(base+k), epoch, MakeTID(epoch, seq), row); !ok {
				t.Fatalf("cycle %d: insert %d failed", cycle, k)
			}
		}
		db.CommitEpoch()
		epoch++
		for k := uint64(0); k < churn; k++ {
			seq++
			if !tbl.Delete(0, K1(base+k), epoch, MakeTID(epoch, seq)) {
				t.Fatalf("cycle %d: delete %d failed", cycle, k)
			}
		}
		db.CommitEpoch() // fence: deletes reclaimed, slots tombstoned
	}

	idx := p.idx.Load()
	// 3200 churned keys passed through; the live set never exceeded 128.
	// An index that never recycled or compacted tombstones would sit at
	// ≥4096 slots (3264 used keys at ≤75% occupancy).
	if n := len(idx.slots); n > 1024 {
		t.Fatalf("slot array at %d slots for %d live keys: churn is leaking slots", n, idx.live())
	}
	if idx.live() != permanent {
		t.Fatalf("live()=%d, want %d", idx.live(), permanent)
	}
	if idx.dead*idxCompactDen > len(idx.slots)*idxCompactNum {
		t.Fatalf("tombstones above compaction threshold after a fence: dead=%d slots=%d", idx.dead, len(idx.slots))
	}
	// Probe-length regression: live keys must resolve in a handful of
	// steps (≤50% occupancy after compaction).
	maxProbe := 0
	mask := uint64(len(idx.slots) - 1)
	for k := uint64(0); k < permanent; k++ {
		key := K1(k)
		probes := 1
		for i := hashKey(key) & mask; ; i = (i + 1) & mask {
			e := idx.slots[i].Load()
			if e == nil {
				t.Fatalf("live key %d fell out of the index", k)
			}
			if e != idxTombstone && e.key == key {
				break
			}
			probes++
			if probes > len(idx.slots) {
				t.Fatalf("probe for key %d wrapped the table", k)
			}
		}
		if probes > maxProbe {
			maxProbe = probes
		}
	}
	if maxProbe > 16 {
		t.Fatalf("max probe length %d for %d live keys in %d slots", maxProbe, permanent, len(idx.slots))
	}
}

func BenchmarkPartitionGet(b *testing.B) {
	p := newPartition(0)
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		p.GetOrCreate(K1(i), 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	h := uint64(12345)
	for i := 0; i < b.N; i++ {
		h = h*0x9e3779b97f4a7c15 + 1
		if p.Get(K1(h%n)) == nil {
			b.Fatal("miss")
		}
	}
}
