package storage

import (
	"runtime"
	"sync/atomic"
)

// SpinWait is invoked while spinning on a held record latch. The default
// yields the OS thread. The simulation runtime replaces it (via the
// engines' constructors) with a small virtual-time sleep so that a
// spinning process advances the clock instead of wedging the cooperative
// scheduler — e.g. when synchronous replication parks a worker that
// still holds its write latches (§6.1).
var SpinWait = func() { runtime.Gosched() }

// Record is one row version chain: the current value plus, while an epoch
// is in flight, the last value committed before that epoch. The prior
// version implements the paper's epoch revert on failure (§4.5.2: "the
// database maintains two versions of each record").
//
// The TID word doubles as the record latch. Readers take the latch
// briefly while copying (a deviation from Silo's optimistic retry loop
// chosen to keep the Go implementation free of data races; semantics are
// identical because OCC still validates the TID at commit).
type Record struct {
	tid  atomic.Uint64
	data []byte

	// Epoch-revert snapshot, guarded by the record latch.
	priorTID   uint64
	priorData  []byte
	priorValid bool
	savedEpoch uint64
}

// NewRecord builds a present record with the given value and TID.
// The row is copied.
func NewRecord(tid uint64, row []byte) *Record {
	r := &Record{data: append([]byte(nil), row...)}
	r.tid.Store(TIDClean(tid))
	return r
}

// NewAbsentRecord builds a tombstone placeholder (used when an insert is
// being replicated before the base version exists).
func NewAbsentRecord(tid uint64) *Record {
	r := &Record{}
	r.tid.Store(TIDClean(tid) | TIDAbsentBit)
	return r
}

// TID returns the current TID word (possibly with lock/absent bits set).
func (r *Record) TID() uint64 { return r.tid.Load() }

// TryLock attempts to set the lock bit; it fails if already locked.
func (r *Record) TryLock() bool {
	for {
		cur := r.tid.Load()
		if TIDLocked(cur) {
			return false
		}
		if r.tid.CompareAndSwap(cur, cur|TIDLockBit) {
			return true
		}
	}
}

// Lock spins until the lock bit is acquired.
func (r *Record) Lock() {
	for !r.TryLock() {
		SpinWait()
	}
}

// Unlock clears the lock bit.
func (r *Record) Unlock() {
	for {
		cur := r.tid.Load()
		if !TIDLocked(cur) {
			panic("storage: Unlock of unlocked record")
		}
		if r.tid.CompareAndSwap(cur, cur&^TIDLockBit) {
			return
		}
	}
}

// UnlockWithTID installs a new TID word (the caller controls the absent
// bit; the lock bit is cleared) and releases the latch in one step.
func (r *Record) UnlockWithTID(tid uint64) {
	r.tid.Store(tid &^ TIDLockBit)
}

// ReadStable copies the record's value into buf (grown as needed) and
// returns the value, its TID, and whether the record is present.
// It takes the latch briefly.
func (r *Record) ReadStable(buf []byte) (val []byte, tid uint64, present bool) {
	r.Lock()
	cur := r.tid.Load()
	tid = TIDClean(cur)
	present = !TIDAbsent(cur)
	if present {
		if cap(buf) < len(r.data) {
			buf = make([]byte, len(r.data))
		}
		buf = buf[:len(r.data)]
		copy(buf, r.data)
	}
	r.Unlock()
	return buf, tid, present
}

// appendCurrentLocked copies the current version into arena under the
// latch: the shared body of ReadStableAppend and the fence-read
// fallback.
func (r *Record) appendCurrentLocked(arena []byte) (newArena, val []byte, tid uint64, present bool) {
	cur := r.tid.Load()
	tid = TIDClean(cur)
	present = !TIDAbsent(cur)
	if present {
		off := len(arena)
		arena = append(arena, r.data...)
		val = arena[off:len(arena):len(arena)]
	}
	return arena, val, tid, present
}

// ReadStableAppend appends the record's value to arena and returns the
// extended arena plus the appended region. Hot execution paths use it
// with a per-worker arena reset each transaction, so steady-state reads
// allocate nothing; when the arena grows, previously returned regions
// keep pointing into the old (immutable) backing array and stay valid.
func (r *Record) ReadStableAppend(arena []byte) (newArena, val []byte, tid uint64, present bool) {
	r.Lock()
	arena, val, tid, present = r.appendCurrentLocked(arena)
	r.Unlock()
	return arena, val, tid, present
}

// ReadStableAtFenceAppend is ReadStableAppend pinned to the last epoch
// fence: if the record has been written in the in-flight epoch (its
// revert snapshot was saved for `epoch`), the pre-epoch version is
// returned instead of the current one. Because the replication fence
// guarantees every epoch-(E-1) write was applied before epoch E began,
// the set of fence versions across all records is a transactionally
// consistent snapshot of the database as of the last phase switch —
// readable on any replica without coordination (the read-only snapshot
// path). The returned TID is the fence version's TID.
func (r *Record) ReadStableAtFenceAppend(arena []byte, epoch uint64) (newArena, val []byte, tid uint64, present bool) {
	r.Lock()
	if r.savedEpoch == epoch && r.priorValid {
		tid = TIDClean(r.priorTID)
		present = !TIDAbsent(r.priorTID)
		if present {
			off := len(arena)
			arena = append(arena, r.priorData...)
			val = arena[off:len(arena):len(arena)]
		}
		r.Unlock()
		return arena, val, tid, present
	}
	arena, val, tid, present = r.appendCurrentLocked(arena)
	r.Unlock()
	return arena, val, tid, present
}

// TryReadStable is ReadStable with bounded latch acquisition: after
// `attempts` failed TryLocks (with SpinWait between them) it gives up
// and returns ok=false. Message-router contexts use this so that a
// record latched by an in-flight transaction cannot wedge the router
// that must deliver that very transaction's commit.
func (r *Record) TryReadStable(buf []byte, attempts int) (val []byte, tid uint64, present, ok bool) {
	for i := 0; i < attempts; i++ {
		if r.TryLock() {
			cur := r.tid.Load()
			tid = TIDClean(cur)
			present = !TIDAbsent(cur)
			if present {
				if cap(buf) < len(r.data) {
					buf = make([]byte, len(r.data))
				}
				buf = buf[:len(r.data)]
				copy(buf, r.data)
			}
			r.Unlock()
			return buf, tid, present, true
		}
		SpinWait()
	}
	return nil, 0, false, false
}

// ValueLocked returns the in-place value; the caller must hold the latch.
func (r *Record) ValueLocked() []byte { return r.data }

// savePriorLocked snapshots the current version the first time the record
// is written in the given epoch. Caller holds the latch.
func (r *Record) savePriorLocked(epoch uint64) (firstTouch bool) {
	if r.savedEpoch == epoch {
		return false
	}
	cur := r.tid.Load()
	r.priorTID = TIDClean(cur) | (cur & TIDAbsentBit)
	if TIDAbsent(cur) {
		r.priorData = nil
		r.priorValid = true
	} else {
		r.priorData = append(r.priorData[:0], r.data...)
		r.priorValid = true
	}
	r.savedEpoch = epoch
	return true
}

// WriteLocked installs a new value and TID while the caller holds the
// latch. The row is copied. It returns true if this was the record's
// first write in the epoch (the caller must then register the record in
// the partition's dirty set for revert).
func (r *Record) WriteLocked(epoch, newTID uint64, row []byte) (firstTouch bool) {
	firstTouch = r.savePriorLocked(epoch)
	if cap(r.data) < len(row) {
		r.data = make([]byte, len(row))
	}
	r.data = r.data[:len(row)]
	copy(r.data, row)
	r.tid.Store(TIDClean(newTID) | TIDLockBit) // still locked; caller unlocks
	return firstTouch
}

// ApplyOpsLocked applies field ops in place under the latch, bumping the
// TID. Same firstTouch contract as WriteLocked.
func (r *Record) ApplyOpsLocked(s *Schema, epoch, newTID uint64, ops []FieldOp) (bool, error) {
	firstTouch := r.savePriorLocked(epoch)
	if TIDAbsent(r.tid.Load()) && len(r.data) == 0 {
		r.data = make([]byte, s.RowSize())
	}
	for _, op := range ops {
		if err := op.Apply(s, r.data); err != nil {
			return firstTouch, err
		}
	}
	r.tid.Store(TIDClean(newTID) | TIDLockBit)
	return firstTouch, nil
}

// DeleteLocked marks the record absent under the latch.
func (r *Record) DeleteLocked(epoch, newTID uint64) (firstTouch bool) {
	firstTouch = r.savePriorLocked(epoch)
	r.tid.Store(TIDClean(newTID) | TIDAbsentBit | TIDLockBit)
	return firstTouch
}

// CollectibleAt reports whether the record is a committed tombstone that
// no fence reader at or after epoch can observe — absent, unlatched, and
// last touched before the committing epoch (epoch 0 accepts any absent
// record: the full-commit path). The partition uses it at the fence to
// decide whether the record's index slot can be physically reclaimed. A
// latched record is simply skipped this round; the next fence retries.
func (r *Record) CollectibleAt(epoch uint64) bool {
	if !r.TryLock() {
		return false
	}
	ok := TIDAbsent(r.tid.Load()) && (epoch == 0 || r.savedEpoch < epoch)
	r.Unlock()
	return ok
}

// revertLocked restores the pre-epoch version; caller holds the latch.
// It reports whether the record is absent after the revert (so the
// partition can drop placeholder inserts). epoch 0 is a wildcard: the
// record reverts whatever epoch its snapshot was saved for — the rejoin
// path uses it to discard ALL of a node's in-flight state, whose epoch
// the coordinator cannot know (the node may have been cut off several
// epochs ago).
func (r *Record) revertLocked(epoch uint64) (absent bool) {
	if !r.priorValid || (epoch != 0 && r.savedEpoch != epoch) {
		return TIDAbsent(r.tid.Load())
	}
	if TIDAbsent(r.priorTID) {
		r.data = r.data[:0]
		r.tid.Store(TIDClean(r.priorTID) | TIDAbsentBit | TIDLockBit)
	} else {
		r.data = append(r.data[:0], r.priorData...)
		r.tid.Store(TIDClean(r.priorTID) | TIDLockBit)
	}
	r.savedEpoch = 0
	r.priorValid = false
	return TIDAbsent(r.priorTID)
}

// ApplyValueThomas applies a full-row replicated write using the Thomas
// write rule: the write lands only if its TID is newer than the record's.
// Returns whether the write was applied, whether it was the record's
// first touch in the epoch (dirty registration), and whether it
// transitioned the record absent → present or present → absent — the
// signals apply paths use to maintain secondary indexes
// (Table.NoteInserted / Table.NoteDeleted).
func (r *Record) ApplyValueThomas(epoch, tid uint64, row []byte, absent bool) (applied, firstTouch, inserted, deleted bool) {
	r.Lock()
	cur := r.tid.Load()
	if TIDClean(tid) <= TIDClean(cur) {
		r.Unlock()
		return false, false, false, false
	}
	wasAbsent := TIDAbsent(cur)
	if absent {
		firstTouch = r.DeleteLocked(epoch, tid)
	} else {
		firstTouch = r.WriteLocked(epoch, tid, row)
	}
	r.UnlockWithTID(tid | boolBit(absent))
	return true, firstTouch, wasAbsent && !absent, !wasAbsent && absent
}

func boolBit(absent bool) uint64 {
	if absent {
		return TIDAbsentBit
	}
	return 0
}
