package storage

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// OrderedIndex is a per-partition secondary index: an ordered set of
// (value, primary key) entries implemented as a skiplist with the same
// memory-model discipline as the primary hash index (index.go):
//
//   - Reads are latch-free — a lookup is a chain of atomic pointer loads
//     plus one atomic state load per candidate entry. No reader ever
//     takes a mutex or a record latch.
//
//   - Writers (inserts, deletes, epoch reverts, commit bookkeeping)
//     serialize on the index's own mutex. Inserts publish a fully
//     initialised node with one atomic store per level, bottom-up, so a
//     reader that observes a node observes its immutable val/pk and a
//     coherent next chain. An entry whose insert is rolled back by an
//     epoch revert is tombstoned in place (its state word gains the dead
//     bit) and may be revived by a later re-insert. A committed delete is
//     physically unlinked at the epoch fence (commitEpochBefore), once no
//     fence reader can see it: unlinking only redirects predecessor
//     pointers forward under the mutex, so a concurrent latch-free reader
//     standing on the node still follows its (immutable) next chain.
//
//   - Tower heights derive from a pure hash of (val, pk), not an RNG, so
//     every replica builds byte-identical structures from the same
//     inserts — replica convergence checks can fold index contents into
//     partition checksums.
//
// Epoch visibility: each entry carries the epoch of the insert that
// created (or revived) it. A fence-snapshot reader at epoch E skips
// entries inserted at E or later — exactly mirroring how
// Record.ReadStableAtFenceAppend hides in-flight row versions — so the
// read-only snapshot path sees a transactionally consistent index.
// Current-mode readers pass IndexAllEpochs and see every live entry.
//
// Entries point at primary keys, not records, and are maintained only on
// insert (our schemas never update indexed fields). A record deleted and
// later re-inserted under the same indexed value can leave a live entry
// spanning the gap; readers that need exactness re-check record presence
// through the primary index, which every workload transaction does.

// IndexAllEpochs makes a lookup return every live entry regardless of
// its insert epoch (the current-state read mode).
const IndexAllEpochs = ^uint64(0)

// oiDead marks a tombstoned entry in the state word; the remaining bits
// hold the insert epoch.
const oiDead = uint64(1) << 63

const oiMaxHeight = 16

// oiNode is one skiplist entry. val and pk are immutable after
// publication; state is atomic (insert epoch + dead bit); next pointers
// are written only under the index mutex and read atomically.
//
// delEpoch disambiguates the two meanings of the dead bit: 0 means the
// entry's insert was reverted (never committed — invisible at every
// fence), non-zero is the epoch a committed-path delete tombstoned it
// (still visible to fence-snapshot readers whose epoch the delete has
// not passed).
type oiNode struct {
	val      []byte
	pk       Key
	state    atomic.Uint64
	delEpoch atomic.Uint64
	next     []atomic.Pointer[oiNode]
}

// visibleAt reports whether the entry is visible to a reader pinned at
// atEpoch (IndexAllEpochs = current state).
func (n *oiNode) visibleAt(atEpoch uint64) bool {
	s := n.state.Load()
	if s&^oiDead >= atEpoch {
		return false // inserted at or after the fence
	}
	if s&oiDead == 0 {
		return true
	}
	de := n.delEpoch.Load()
	return de != 0 && de >= atEpoch // deleted, but not yet at this fence
}

// before reports whether n sorts strictly before (val, pk).
func (n *oiNode) before(val []byte, pk Key) bool {
	switch bytes.Compare(n.val, val) {
	case -1:
		return true
	case 1:
		return false
	}
	if n.pk.Hi != pk.Hi {
		return n.pk.Hi < pk.Hi
	}
	return n.pk.Lo < pk.Lo
}

// oiPendBucket tracks the entries inserted while an epoch is still
// revertable, bucketed so the fence commit is a constant-time drop.
type oiPendBucket struct {
	epoch uint64
	nodes []*oiNode
}

// OrderedIndex is one partition's instance of a declared secondary
// index. See the package comment above for the concurrency contract.
type OrderedIndex struct {
	head *oiNode

	mu      sync.Mutex // serializes inserts, deletes, reverts and commit bookkeeping
	pend    []oiPendBucket
	pendDel []oiPendBucket // entries deleted while their epoch is revertable
}

func newOrderedIndex() *OrderedIndex {
	return &OrderedIndex{head: &oiNode{next: make([]atomic.Pointer[oiNode], oiMaxHeight)}}
}

// oiHeight derives a deterministic tower height from the entry itself
// (geometric p=1/2), so replicas build identical structures.
func oiHeight(val []byte, pk Key) int {
	h := hashKey(pk)
	for _, b := range val {
		h = (h ^ uint64(b)) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	lvl := 1
	for h&1 == 1 && lvl < oiMaxHeight {
		lvl++
		h >>= 1
	}
	return lvl
}

// findPreds fills preds with the rightmost node before (val, pk) at each
// level. Caller may hold the mutex (writers) or not (the read path uses
// only level-0 continuation).
func (ix *OrderedIndex) findPreds(val []byte, pk Key, preds *[oiMaxHeight]*oiNode) {
	x := ix.head
	for lvl := oiMaxHeight - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt != nil && nxt.before(val, pk) {
				x = nxt
				continue
			}
			break
		}
		preds[lvl] = x
	}
}

// Insert publishes (val, pk) under epoch. A live duplicate is a no-op
// (replication replay, snapshot catch-up); a tombstoned duplicate is
// revived under the new epoch. The value bytes are copied.
func (ix *OrderedIndex) Insert(val []byte, pk Key, epoch uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var preds [oiMaxHeight]*oiNode
	ix.findPreds(val, pk, &preds)
	if n := preds[0].next[0].Load(); n != nil && n.pk == pk && bytes.Equal(n.val, val) {
		if s := n.state.Load(); s&oiDead != 0 {
			if n.delEpoch.Load() != 0 {
				// Re-insert over a not-yet-reclaimed delete: undo the
				// delete, keeping the original insert epoch so fence
				// readers that predate it still see the entry. The stale
				// pendDel entry is skipped by its delEpoch check on both
				// revert and reclaim.
				n.delEpoch.Store(0)
				n.state.Store(s &^ oiDead)
			} else {
				// Revived reverted insert: a fresh revertable insert.
				n.delEpoch.Store(0)
				n.state.Store(epoch &^ oiDead)
				ix.pend = logPend(ix.pend, n, epoch)
			}
		}
		return
	}
	h := oiHeight(val, pk)
	n := &oiNode{
		val:  append([]byte(nil), val...),
		pk:   pk,
		next: make([]atomic.Pointer[oiNode], h),
	}
	n.state.Store(epoch &^ oiDead)
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl].Store(preds[lvl].next[lvl].Load())
	}
	// Publish bottom-up: after the level-0 store the node is reachable
	// and fully initialised; higher levels only add shortcuts.
	for lvl := 0; lvl < h; lvl++ {
		preds[lvl].next[lvl].Store(n)
	}
	ix.pend = logPend(ix.pend, n, epoch)
}

// Delete tombstones the live entry (val, pk) under epoch. The entry
// stays visible to fence-snapshot readers the delete has not passed
// (delEpoch >= their fence) and is revertable until the epoch commits;
// commitEpochBefore then unlinks it physically. Deleting a missing or
// already-dead entry is a no-op (replication replay, Thomas-rule skips).
func (ix *OrderedIndex) Delete(val []byte, pk Key, epoch uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var preds [oiMaxHeight]*oiNode
	ix.findPreds(val, pk, &preds)
	n := preds[0].next[0].Load()
	if n == nil || n.pk != pk || !bytes.Equal(n.val, val) {
		return
	}
	s := n.state.Load()
	if s&oiDead != 0 {
		return
	}
	n.delEpoch.Store(epoch)
	n.state.Store(s | oiDead)
	ix.pendDel = logPend(ix.pendDel, n, epoch)
}

// logPend registers a revertable insert or delete in its epoch's bucket
// (scanned newest-first: writes target the newest epoch). Caller holds
// the mutex.
func logPend(pend []oiPendBucket, n *oiNode, epoch uint64) []oiPendBucket {
	for i := len(pend) - 1; i >= 0; i-- {
		if pend[i].epoch == epoch {
			pend[i].nodes = append(pend[i].nodes, n)
			return pend
		}
	}
	return append(pend, oiPendBucket{epoch: epoch, nodes: []*oiNode{n}})
}

// LookupAppend appends every primary key stored under val and visible at
// atEpoch to dst, in ascending key order. atEpoch == IndexAllEpochs sees
// all live entries; a fence-snapshot reader passes its in-flight epoch
// and entries inserted at or after it stay hidden. Latch-free.
func (ix *OrderedIndex) LookupAppend(val []byte, atEpoch uint64, dst []Key) []Key {
	x := ix.head
	for lvl := oiMaxHeight - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt != nil && nxt.before(val, Key{}) {
				x = nxt
				continue
			}
			break
		}
	}
	for n := x.next[0].Load(); n != nil && bytes.Equal(n.val, val); n = n.next[0].Load() {
		if !n.visibleAt(atEpoch) {
			continue
		}
		dst = append(dst, n.pk)
	}
	return dst
}

// Range calls fn for every live entry in (val, pk) order; fn must not
// call back into the index. Latch-free and fuzzy like Partition.Range —
// quiesced callers (checksums, probes) see a stable ordered image.
func (ix *OrderedIndex) Range(fn func(val []byte, pk Key) bool) {
	for n := ix.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		if n.state.Load()&oiDead != 0 {
			continue
		}
		if !fn(n.val, n.pk) {
			return
		}
	}
}

// Len counts live entries (tests).
func (ix *OrderedIndex) Len() int {
	n := 0
	ix.Range(func([]byte, Key) bool { n++; return true })
	return n
}

// revertEpoch rolls back the epoch's index writes (0 = wildcard: every
// pending write, the rejoin cleanup): deleted entries are resurrected,
// then inserted entries are tombstoned — in that order, so an entry both
// inserted and deleted in the reverted epoch ends up dead, as if the
// epoch never ran. Buckets for other epochs are kept revertable.
func (ix *OrderedIndex) revertEpoch(epoch uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	keepDel := ix.pendDel[:0]
	for i := range ix.pendDel {
		b := ix.pendDel[i]
		if epoch != 0 && b.epoch != epoch {
			keepDel = append(keepDel, b)
			continue
		}
		for _, n := range b.nodes {
			if n.state.Load()&oiDead != 0 && n.delEpoch.Load() == b.epoch {
				n.delEpoch.Store(0)
				n.state.Store(n.state.Load() &^ oiDead)
			}
		}
	}
	ix.pendDel = keepDel
	if epoch == 0 {
		for i := range ix.pend {
			for _, n := range ix.pend[i].nodes {
				n.delEpoch.Store(0)
				n.state.Store(n.state.Load() | oiDead)
			}
		}
		ix.pend = nil
		return
	}
	keep := ix.pend[:0]
	for i := range ix.pend {
		b := ix.pend[i]
		if b.epoch != epoch {
			keep = append(keep, b)
			continue
		}
		for _, n := range b.nodes {
			if s := n.state.Load(); s&^oiDead == epoch {
				n.delEpoch.Store(0)
				n.state.Store(s | oiDead)
			}
		}
	}
	ix.pend = keep
}

// unlink splices n out of the list at every level it occupies. Caller
// holds the mutex; readers standing on n still follow its next chain.
func (ix *OrderedIndex) unlink(n *oiNode) {
	var preds [oiMaxHeight]*oiNode
	ix.findPreds(n.val, n.pk, &preds)
	for lvl := 0; lvl < len(n.next); lvl++ {
		if preds[lvl].next[lvl].Load() == n {
			preds[lvl].next[lvl].Store(n.next[lvl].Load())
		}
	}
}

// reclaimDel unlinks the nodes of one committed delete bucket. A node
// revived by a later re-insert (delEpoch reset) is left alone.
func (ix *OrderedIndex) reclaimDel(b *oiPendBucket) {
	for _, n := range b.nodes {
		if n.state.Load()&oiDead != 0 && n.delEpoch.Load() == b.epoch {
			ix.unlink(n)
		}
	}
}

// commitEpochBefore commits the epochs before `epoch`: pending-insert
// buckets are dropped (constant time), and committed deletes are
// physically unlinked — the fence guarantees no snapshot reader at
// epoch >= `epoch` can see an entry deleted earlier, so reclamation
// here is epoch-safe.
func (ix *OrderedIndex) commitEpochBefore(epoch uint64) {
	ix.mu.Lock()
	keep := ix.pend[:0]
	for i := range ix.pend {
		if ix.pend[i].epoch >= epoch {
			keep = append(keep, ix.pend[i])
		}
	}
	ix.pend = keep
	keepDel := ix.pendDel[:0]
	for i := range ix.pendDel {
		if ix.pendDel[i].epoch >= epoch {
			keepDel = append(keepDel, ix.pendDel[i])
			continue
		}
		ix.reclaimDel(&ix.pendDel[i])
	}
	ix.pendDel = keepDel
	ix.mu.Unlock()
}

// commitAll commits every pending bucket (and unlinks every committed
// delete).
func (ix *OrderedIndex) commitAll() {
	ix.mu.Lock()
	ix.pend = nil
	for i := range ix.pendDel {
		ix.reclaimDel(&ix.pendDel[i])
	}
	ix.pendDel = nil
	ix.mu.Unlock()
}

// oiMaxTail caps LookupTailAppend's bound (the ring lives on the stack).
const oiMaxTail = 64

// LookupTailAppend appends the LAST (greatest-key) visible entries for
// val — at most max of them, capped at 64 — to dst in ascending order.
// The common case (the newest entry is live and visible, max == 1) is a
// single O(log n) descent; only when that entry is hidden, or more than
// one is wanted, does it fall back to a forward walk that keeps the
// last max visible entries. Latch-free. Order-Status uses this for
// "the customer's most recent order" so the query cost stays bounded as
// the order history grows.
func (ix *OrderedIndex) LookupTailAppend(val []byte, atEpoch uint64, max int, dst []Key) []Key {
	if max <= 0 {
		return dst
	}
	if max > oiMaxTail {
		max = oiMaxTail
	}
	var preds [oiMaxHeight]*oiNode
	ix.findPreds(val, Key{Hi: ^uint64(0), Lo: ^uint64(0)}, &preds)
	last := preds[0]
	if last == ix.head || !bytes.Equal(last.val, val) {
		return dst
	}
	if max == 1 {
		if last.visibleAt(atEpoch) {
			return append(dst, last.pk)
		}
		// Newest entry hidden: fall through to the bounded walk.
	}
	// Forward walk from the first entry of val, keeping the last max
	// visible entries in a stack ring.
	var ring [oiMaxTail]Key
	n, seen := 0, 0
	ix.findPreds(val, Key{}, &preds)
	for x := preds[0].next[0].Load(); x != nil && bytes.Equal(x.val, val); x = x.next[0].Load() {
		if !x.visibleAt(atEpoch) {
			continue
		}
		ring[n%max] = x.pk
		n = (n + 1) % max
		seen++
	}
	if seen > max {
		seen = max
	}
	start := ((n-seen)%max + max) % max
	for i := 0; i < seen; i++ {
		dst = append(dst, ring[(start+i)%max])
	}
	return dst
}
