package storage

import (
	"fmt"
	"testing"
)

func newTestDB(t *testing.T, nparts int, holds []bool) (*DB, *Table) {
	t.Helper()
	db := NewDB(nparts, holds)
	tbl := db.AddTable("t", testSchema(), false)
	return db, tbl
}

func TestTableInsertGet(t *testing.T) {
	_, tbl := newTestDB(t, 2, nil)
	s := tbl.Schema()
	row := s.NewRow()
	s.SetUint64(row, 0, 77)
	if _, ok := tbl.Insert(1, K1(7), 1, MakeTID(1, 1), row); !ok {
		t.Fatal("insert failed")
	}
	if _, ok := tbl.Insert(1, K1(7), 1, MakeTID(1, 2), row); ok {
		t.Fatal("duplicate insert must fail")
	}
	r := tbl.Get(1, K1(7))
	if r == nil {
		t.Fatal("get returned nil")
	}
	val, _, present := r.ReadStable(nil)
	if !present || s.GetUint64(val, 0) != 77 {
		t.Fatal("bad value")
	}
	if tbl.Get(0, K1(7)) != nil {
		t.Fatal("record leaked into wrong partition")
	}
}

func TestPartialReplicaPanicsOnUnheldPartition(t *testing.T) {
	_, tbl := newTestDB(t, 4, []bool{true, false, true, false})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic accessing unheld partition")
		}
	}()
	tbl.Get(1, K1(1))
}

func TestReplicatedTableIgnoresPartitions(t *testing.T) {
	db := NewDB(4, []bool{true, false, false, false})
	item := db.AddTable("item", testSchema(), true)
	row := item.Schema().NewRow()
	item.Insert(3, K1(9), 1, MakeTID(1, 1), row) // any partition id works
	if item.Get(2, K1(9)) == nil {
		t.Fatal("replicated table must resolve from any partition id")
	}
	if !item.Replicated() || item.NumPartitions() != 1 {
		t.Fatal("replicated metadata wrong")
	}
}

func TestPartitionRevertEpochRemovesInserts(t *testing.T) {
	db, tbl := newTestDB(t, 1, nil)
	s := tbl.Schema()
	row := s.NewRow()
	tbl.Insert(0, K1(1), 1, MakeTID(1, 1), row) // epoch 1: will be committed
	db.CommitEpoch()

	// Epoch 2: update K1(1), insert K1(2); then the epoch fails.
	r := tbl.Get(0, K1(1))
	r.Lock()
	s.SetUint64(row, 0, 999)
	if r.WriteLocked(2, MakeTID(2, 1), row) {
		tbl.Partition(0).MarkDirty(r, 2)
	}
	r.UnlockWithTID(MakeTID(2, 1))
	tbl.Insert(0, K1(2), 2, MakeTID(2, 2), row)

	if n := db.RevertEpoch(2); n == 0 {
		t.Fatal("expected reverted records")
	}
	if tbl.Get(0, K1(2)) != nil {
		t.Fatal("insert from failed epoch must disappear")
	}
	val, _, _ := tbl.Get(0, K1(1)).ReadStable(nil)
	if s.GetUint64(val, 0) != 0 {
		t.Fatal("update from failed epoch must roll back")
	}
}

func TestPartitionLenAndRange(t *testing.T) {
	_, tbl := newTestDB(t, 1, nil)
	s := tbl.Schema()
	for i := 0; i < 10; i++ {
		row := s.NewRow()
		s.SetUint64(row, 0, uint64(i))
		tbl.Insert(0, K1(uint64(i)), 1, MakeTID(1, uint64(i+1)), row)
	}
	p := tbl.Partition(0)
	if p.Len() != 10 {
		t.Fatalf("len=%d", p.Len())
	}
	seen := map[uint64]bool{}
	p.Range(func(key Key, tid uint64, val []byte) bool {
		seen[key.Lo] = true
		return true
	})
	if len(seen) != 10 {
		t.Fatalf("range visited %d", len(seen))
	}
	// Early termination.
	count := 0
	p.Range(func(Key, uint64, []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

// byDataSpec indexes the test schema's "data" column (field 3).
func byDataSpec() IndexSpec {
	return IndexSpec{
		Name: "by_data",
		Extract: func(s *Schema, key Key, row []byte, dst []byte) []byte {
			return append(dst, s.GetBytes(row, 3)...)
		},
	}
}

func TestSecondaryIndexMaintainedOnInsert(t *testing.T) {
	_, tbl := newTestDB(t, 2, nil)
	id := tbl.AddIndex(byDataSpec())
	if id != 0 || tbl.NumIndexes() != 1 || tbl.IndexName(0) != "by_data" {
		t.Fatal("index registry broken")
	}
	s := tbl.Schema()
	put := func(part int, key Key, name string, seq uint64) {
		row := s.NewRow()
		s.SetBytes(row, 3, []byte(name))
		if _, ok := tbl.Insert(part, key, 1, MakeTID(1, seq), row); !ok {
			t.Fatalf("insert %v failed", key)
		}
	}
	put(0, K1(2), "SMITH", 1)
	put(0, K1(1), "SMITH", 2)
	put(0, K1(3), "JONES", 3)
	put(1, K1(4), "SMITH", 4) // other partition: invisible to partition 0

	got := tbl.IndexLookup(0, id, []byte("SMITH"), IndexAllEpochs, nil)
	if len(got) != 2 || got[0] != K1(1) || got[1] != K1(2) {
		t.Fatalf("lookup returned %v, want ascending [1 2]", got)
	}
	if got := tbl.IndexLookup(0, id, []byte("NOBODY"), IndexAllEpochs, nil); len(got) != 0 {
		t.Fatalf("missing value must return nothing, got %v", got)
	}
	if got := tbl.IndexLookup(1, id, []byte("SMITH"), IndexAllEpochs, nil); len(got) != 1 || got[0] != K1(4) {
		t.Fatalf("partition 1 lookup: %v", got)
	}
}

// TestDeleteRevertReinsertRoundTrip walks one key through the full
// delete lifecycle — delete in a failed epoch (reverted), delete in a
// committed epoch (reclaimed at the fence), re-insert under a new value
// — and checks the primary index and the ordered secondary index agree
// with the record state at every step.
func TestDeleteRevertReinsertRoundTrip(t *testing.T) {
	db, tbl := newTestDB(t, 1, nil)
	id := tbl.AddIndex(byDataSpec())
	s := tbl.Schema()
	row := s.NewRow()
	s.SetBytes(row, 3, []byte("SMITH"))
	if _, ok := tbl.Insert(0, K1(1), 2, MakeTID(2, 1), row); !ok {
		t.Fatal("insert failed")
	}
	db.CommitEpoch()
	lookup := func(name string) []Key {
		return tbl.IndexLookup(0, id, []byte(name), IndexAllEpochs, nil)
	}

	// Epoch 3: delete, then the epoch fails and reverts.
	if !tbl.Delete(0, K1(1), 3, MakeTID(3, 1)) {
		t.Fatal("delete failed")
	}
	if got := lookup("SMITH"); len(got) != 0 {
		t.Fatalf("deleted row still indexed: %v", got)
	}
	db.RevertEpoch(3)
	rec := tbl.Get(0, K1(1))
	if rec == nil {
		t.Fatal("reverted delete lost the record")
	}
	if val, _, present := rec.ReadStable(nil); !present || string(s.GetBytes(val, 3)) != "SMITH" {
		t.Fatalf("record wrong after delete revert: present=%v", present)
	}
	if got := lookup("SMITH"); len(got) != 1 || got[0] != K1(1) {
		t.Fatalf("index entry not revived by delete revert: %v", got)
	}

	// Epoch 4: delete for real; the fence reclaims record and slot.
	if !tbl.Delete(0, K1(1), 4, MakeTID(4, 1)) {
		t.Fatal("second delete failed")
	}
	db.CommitEpoch()
	if tbl.Get(0, K1(1)) != nil {
		t.Fatal("reclaimed record still reachable through the primary index")
	}
	if got := lookup("SMITH"); len(got) != 0 {
		t.Fatalf("reclaimed row still indexed: %v", got)
	}

	// Epoch 5: re-insert the same key with a different indexed value.
	s.SetBytes(row, 3, []byte("JONES"))
	if _, ok := tbl.Insert(0, K1(1), 5, MakeTID(5, 1), row); !ok {
		t.Fatal("re-insert after reclamation failed")
	}
	db.CommitEpoch()
	if got := lookup("JONES"); len(got) != 1 || got[0] != K1(1) {
		t.Fatalf("re-inserted key missing from index: %v", got)
	}
	if got := lookup("SMITH"); len(got) != 0 {
		t.Fatalf("stale index value survived the round trip: %v", got)
	}
	if val, _, present := tbl.Get(0, K1(1)).ReadStable(nil); !present || string(s.GetBytes(val, 3)) != "JONES" {
		t.Fatal("re-inserted record unreadable")
	}
}

func TestDBChecksumDetectsDivergence(t *testing.T) {
	mk := func(v uint64) *DB {
		db := NewDB(2, nil)
		tbl := db.AddTable("t", testSchema(), false)
		s := tbl.Schema()
		for i := uint64(0); i < 20; i++ {
			row := s.NewRow()
			s.SetUint64(row, 0, i*v)
			tbl.Insert(int(i%2), K1(i), 1, MakeTID(1, i+1), row)
		}
		return db
	}
	a, b, c := mk(1), mk(1), mk(2)
	for p := 0; p < 2; p++ {
		if a.PartitionChecksum(p) != b.PartitionChecksum(p) {
			t.Fatalf("identical DBs disagree on partition %d", p)
		}
		if a.PartitionChecksum(p) == c.PartitionChecksum(p) {
			t.Fatalf("different DBs agree on partition %d", p)
		}
	}
}

func TestSetHoldsMaterialisesPartition(t *testing.T) {
	db := NewDB(2, []bool{true, false})
	tbl := db.AddTable("t", testSchema(), false)
	if db.Holds(1) {
		t.Fatal("should not hold partition 1")
	}
	db.SetHolds(1, true)
	if !db.Holds(1) || tbl.Partition(1) == nil {
		t.Fatal("SetHolds must materialise the partition")
	}
	// Now usable.
	tbl.Insert(1, K1(5), 1, MakeTID(1, 1), tbl.Schema().NewRow())
	if tbl.Get(1, K1(5)) == nil {
		t.Fatal("re-mastered partition unusable")
	}
}

func TestDBTableRegistry(t *testing.T) {
	db := NewDB(1, nil)
	a := db.AddTable("a", testSchema(), false)
	b := db.AddTable("b", testSchema(), false)
	if db.Table(a.ID()) != a || db.Table(b.ID()) != b {
		t.Fatal("id lookup broken")
	}
	if db.TableByName("a") != a || db.TableByName("zz") != nil {
		t.Fatal("name lookup broken")
	}
	if db.NumTables() != 2 {
		t.Fatal("count")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate table must panic")
		}
	}()
	db.AddTable("a", testSchema(), false)
}

func TestKeyHelpers(t *testing.T) {
	if K1(5) != (Key{Lo: 5}) || K2(1, 2) != (Key{Hi: 1, Lo: 2}) {
		t.Fatal("key constructors")
	}
	m := map[Key]int{K2(1, 2): 3}
	if m[K2(1, 2)] != 3 {
		t.Fatal("keys must be usable as map keys")
	}
	_ = fmt.Sprintf("%v", K2(1, 2)) // printable
}
