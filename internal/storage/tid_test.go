package storage

import (
	"testing"
	"testing/quick"
)

func TestTIDRoundTrip(t *testing.T) {
	f := func(epoch, seq uint32) bool {
		e := uint64(epoch) & (1<<30 - 1)
		s := uint64(seq)
		tid := MakeTID(e, s)
		return TIDEpoch(tid) == e && TIDSeq(tid) == s &&
			!TIDLocked(tid) && !TIDAbsent(tid) && TIDClean(tid) == tid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTIDOrderingMatchesEpochSeq(t *testing.T) {
	// Within an epoch, larger sequence => larger TID; across epochs,
	// larger epoch always wins. This total order is what makes the
	// Thomas write rule equivalent to serial order.
	f := func(e1, e2 uint16, s1, s2 uint32) bool {
		t1 := MakeTID(uint64(e1), uint64(s1))
		t2 := MakeTID(uint64(e2), uint64(s2))
		if e1 != e2 {
			return (t1 < t2) == (e1 < e2)
		}
		return (t1 < t2) == (s1 < s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTIDBits(t *testing.T) {
	tid := MakeTID(7, 9)
	if got := tid | TIDLockBit; !TIDLocked(got) || TIDEpoch(got) != 7 || TIDSeq(got) != 9 {
		t.Fatalf("lock bit broke fields: %s", FormatTID(got))
	}
	if got := tid | TIDAbsentBit; !TIDAbsent(got) || TIDClean(got) != tid {
		t.Fatalf("absent bit handling: %s", FormatTID(got))
	}
	if FormatTID(tid|TIDLockBit|TIDAbsentBit) != "e7.s9+L+A" {
		t.Fatalf("FormatTID: %s", FormatTID(tid|TIDLockBit|TIDAbsentBit))
	}
}
