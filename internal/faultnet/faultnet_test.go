package faultnet

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/transport"
	"star/internal/transport/conformance"
)

type testMsg struct {
	id    int
	bytes int
}

func (m testMsg) Size() int { return m.bytes }

// epochMsg mimics a protocol message that carries the cluster epoch.
type epochMsg struct {
	testMsg
	epoch uint64
}

func (m epochMsg) InjectionEpoch() uint64 { return m.epoch }

// TestConformanceEmptyPlanSim pins transparency: with no faults the
// decorator must pass the exact contract the inner transport passes.
func TestConformanceEmptyPlanSim(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Cluster {
		s := rt.NewSim()
		t.Cleanup(s.Stop)
		inner := simnet.New(s, simnet.Config{Nodes: 3, Latency: 20 * time.Microsecond, Seed: 11})
		n := Wrap(s, inner, Plan{})
		procs := 0
		return &conformance.Cluster{
			Endpoint:  func(int) transport.Transport { return n },
			Endpoints: 3,
			Spawn: func(fn func()) {
				procs++
				s.Go(fmt.Sprintf("conf-%d", procs), fn)
			},
			Settle: func() { s.Run(s.Now() + 30*time.Second) },
			Msg:    func(id, size int) transport.Message { return testMsg{id: id, bytes: size} },
			MsgID:  func(m any) int { return m.(testMsg).id },
			Yield:  func() { s.Sleep(time.Millisecond) },
		}
	})
}

// TestConformanceEmptyPlanReal: same transparency pin on wall clock.
func TestConformanceEmptyPlanReal(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Cluster {
		r := rt.NewReal()
		t.Cleanup(r.Stop)
		inner := simnet.New(r, simnet.Config{Nodes: 3, Latency: 100 * time.Microsecond, Seed: 11})
		n := Wrap(r, inner, Plan{})
		var wg sync.WaitGroup
		return &conformance.Cluster{
			Endpoint:  func(int) transport.Transport { return n },
			Endpoints: 3,
			Spawn: func(fn func()) {
				wg.Add(1)
				r.Go("conf", func() {
					defer wg.Done()
					fn()
				})
			},
			Settle: func() {
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatal("conformance processes did not settle")
				}
			},
			Msg:   func(id, size int) transport.Message { return testMsg{id: id, bytes: size} },
			MsgID: func(m any) int { return m.(testMsg).id },
			Yield: func() { r.Sleep(200 * time.Microsecond) },
		}
	})
}

// run drives `send` against a 3-node wrapped simnet on the simulated
// runtime and returns the ids delivered to each endpoint's inbox, in
// arrival order.
func run(t *testing.T, plan Plan, send func(n *Network)) (got [3][]int, n *Network) {
	t.Helper()
	s := rt.NewSim()
	defer s.Stop()
	inner := simnet.New(s, simnet.Config{Nodes: 3, Latency: 20 * time.Microsecond, Seed: 5})
	n = Wrap(s, inner, plan)
	s.Go("sender", func() { send(n) })
	for ep := 0; ep < 3; ep++ {
		ep := ep
		s.Go(fmt.Sprintf("recv-%d", ep), func() {
			in := n.Inbox(ep)
			for {
				v, ok := in.RecvTimeout(100 * time.Millisecond)
				if !ok {
					return
				}
				got[ep] = append(got[ep], v.(testMsg).id)
			}
		})
	}
	s.Run(s.Now() + 10*time.Second)
	return got, n
}

func TestDropRuleIsDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{{Src: 0, Dst: 1, Class: AnyClass, Drop: 0.3}}}
	const msgs = 300
	send := func(n *Network) {
		for i := 0; i < msgs; i++ {
			n.Send(0, 1, transport.Replication, testMsg{id: i, bytes: 32})
		}
	}
	got1, n1 := run(t, plan, send)
	if len(got1[1]) == msgs || len(got1[1]) == 0 {
		t.Fatalf("drop 0.3 delivered %d/%d", len(got1[1]), msgs)
	}
	if d := n1.Injected()["fault_drops"]; d != int64(msgs-len(got1[1])) {
		t.Fatalf("fault_drops=%d, want %d", d, msgs-len(got1[1]))
	}
	if n1.Dropped() != n1.Injected()["fault_drops"] {
		t.Fatalf("Dropped()=%d must include injected drops %d", n1.Dropped(), n1.Injected()["fault_drops"])
	}
	got2, _ := run(t, plan, send)
	if !reflect.DeepEqual(got1[1], got2[1]) {
		t.Fatal("same plan+seed produced different drop patterns")
	}
	// A different seed produces a different pattern.
	plan.Seed = 43
	got3, _ := run(t, plan, send)
	if reflect.DeepEqual(got1[1], got3[1]) {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestDuplicateRule(t *testing.T) {
	plan := Plan{Seed: 7, Rules: []Rule{{Src: AnyNode, Dst: AnyNode, Class: AnyClass, Dup: 0.4}}}
	const msgs = 200
	got, n := run(t, plan, func(n *Network) {
		for i := 0; i < msgs; i++ {
			n.Send(0, 1, transport.Data, testMsg{id: i, bytes: 32})
		}
	})
	dups := n.Injected()["fault_dups"]
	if dups == 0 {
		t.Fatal("dup 0.4 injected nothing")
	}
	if int64(len(got[1])) != int64(msgs)+dups {
		t.Fatalf("delivered %d, want %d + %d dups", len(got[1]), msgs, dups)
	}
}

func TestReorderRuleDeliversAll(t *testing.T) {
	plan := Plan{Seed: 9, Rules: []Rule{{Src: 0, Dst: 1, Class: AnyClass, Reorder: 0.2, ReorderSpan: 4}}}
	const msgs = 200
	got, n := run(t, plan, func(n *Network) {
		for i := 0; i < msgs; i++ {
			n.Send(0, 1, transport.Data, testMsg{id: i, bytes: 32})
		}
	})
	if n.Injected()["fault_reorders"] == 0 {
		t.Fatal("reorder 0.2 injected nothing")
	}
	if len(got[1]) != msgs {
		t.Fatalf("reordering lost messages: %d/%d", len(got[1]), msgs)
	}
	seen := map[int]int{}
	inOrder := true
	for i, id := range got[1] {
		seen[id]++
		if id != i {
			inOrder = false
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("id %d delivered %d times", id, c)
		}
	}
	if inOrder {
		t.Fatal("reorder fault delivered everything in order")
	}
}

// TestDelayRuleTickerReleases: with delay probability 1 every message is
// parked; only the ticker can release them (no later send pushes the
// link index). All must still arrive.
func TestDelayRuleTickerReleases(t *testing.T) {
	plan := Plan{Seed: 3, Rules: []Rule{{Src: 0, Dst: 1, Class: AnyClass, Delay: 1, DelayFor: 3 * time.Millisecond}}}
	const msgs = 50
	got, n := run(t, plan, func(n *Network) {
		for i := 0; i < msgs; i++ {
			n.Send(0, 1, transport.Data, testMsg{id: i, bytes: 32})
		}
	})
	if len(got[1]) != msgs {
		t.Fatalf("delay stranded messages: %d/%d delivered", len(got[1]), msgs)
	}
	if d := n.Injected()["fault_delays"]; d != msgs {
		t.Fatalf("fault_delays=%d, want %d", d, msgs)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	plan := Plan{Partitions: []PartitionSpec{{Src: 0, Dst: 1}}}
	got, n := run(t, plan, func(n *Network) {
		for i := 0; i < 50; i++ {
			n.Send(0, 1, transport.Data, testMsg{id: i, bytes: 32})
			n.Send(1, 0, transport.Data, testMsg{id: 100 + i, bytes: 32})
		}
	})
	if len(got[1]) != 0 {
		t.Fatalf("partitioned direction delivered %d messages", len(got[1]))
	}
	if len(got[0]) != 50 {
		t.Fatalf("reverse direction delivered %d/50 (partition must be asymmetric)", len(got[0]))
	}
	if p := n.Injected()["fault_part_drops"]; p != 50 {
		t.Fatalf("fault_part_drops=%d, want 50", p)
	}
}

// TestCrashWindowCountKeyed: a count-keyed crash blackholes a node in
// both directions for a slice of the run, then traffic resumes — the
// network-level fail-stop the protocol must detect by silence.
func TestCrashWindowCountKeyed(t *testing.T) {
	plan := Plan{Crashes: []CrashSpec{{Node: 1, Window: Window{FromCount: 1, UntilCount: 51}}}}
	got, n := run(t, plan, func(n *Network) {
		for i := 0; i < 100; i++ {
			n.Send(0, 1, transport.Data, testMsg{id: i, bytes: 32})
		}
	})
	if c := n.Injected()["fault_crash_drops"]; c != 50 {
		t.Fatalf("fault_crash_drops=%d, want 50", c)
	}
	if len(got[1]) != 50 || got[1][0] != 50 {
		t.Fatalf("delivered %d msgs starting at id %v, want ids 50..99", len(got[1]), got[1][:min(3, len(got[1]))])
	}
	if n.CrashActive(1) {
		t.Fatal("crash window must be inactive once its count bound passed")
	}
}

// TestEpochKeyedWindow: a rule keyed FromEpoch:2 stays dormant until a
// message carrying epoch ≥ 2 passes through the decorator.
func TestEpochKeyedWindow(t *testing.T) {
	plan := Plan{Rules: []Rule{{Src: AnyNode, Dst: AnyNode, Class: AnyClass, Drop: 1, Window: Window{FromEpoch: 2}}}}
	s := rt.NewSim()
	defer s.Stop()
	inner := simnet.New(s, simnet.Config{Nodes: 3, Latency: 20 * time.Microsecond, Seed: 5})
	n := Wrap(s, inner, plan)
	var delivered int
	s.Go("recv", func() {
		in := n.Inbox(1)
		for {
			if _, ok := in.RecvTimeout(100 * time.Millisecond); !ok {
				return
			}
			delivered++
		}
	})
	s.Go("send", func() {
		n.Send(0, 1, transport.Control, epochMsg{testMsg{1, 32}, 1}) // epoch 1: rule dormant
		n.Send(0, 1, transport.Control, epochMsg{testMsg{2, 32}, 2}) // epoch 2: rule arms, drops this
		n.Send(0, 1, transport.Data, testMsg{3, 32})                 // still armed
	})
	s.Run(10 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (only the pre-epoch-2 message)", delivered)
	}
	if n.Epoch() != 2 {
		t.Fatalf("observed epoch %d, want 2", n.Epoch())
	}
}

func TestClassScopedRule(t *testing.T) {
	plan := Plan{Rules: []Rule{{Src: AnyNode, Dst: AnyNode, Class: int(transport.Data), Drop: 1}}}
	got, _ := run(t, plan, func(n *Network) {
		for i := 0; i < 20; i++ {
			n.Send(0, 1, transport.Data, testMsg{id: i, bytes: 32})
			n.Send(0, 2, transport.Control, testMsg{id: i, bytes: 32})
		}
	})
	if len(got[1]) != 0 {
		t.Fatalf("Data-scoped drop leaked %d Data messages", len(got[1]))
	}
	if len(got[2]) != 20 {
		t.Fatalf("Data-scoped drop ate Control traffic: %d/20", len(got[2]))
	}
}

// TestHealReleasesAndDisables: Heal must flush parked messages and stop
// all further injection, so post-heal convergence checks see a clean
// network.
func TestHealReleasesAndDisables(t *testing.T) {
	plan := Plan{Rules: []Rule{{Src: 0, Dst: 1, Class: AnyClass, Reorder: 1, ReorderSpan: 1 << 30}}}
	s := rt.NewSim()
	defer s.Stop()
	inner := simnet.New(s, simnet.Config{Nodes: 3, Latency: 20 * time.Microsecond, Seed: 5})
	n := Wrap(s, inner, plan)
	var got []int
	s.Go("recv", func() {
		in := n.Inbox(1)
		for {
			v, ok := in.RecvTimeout(100 * time.Millisecond)
			if !ok {
				return
			}
			got = append(got, v.(testMsg).id)
		}
	})
	s.Go("send", func() {
		for i := 0; i < 5; i++ {
			n.Send(0, 1, transport.Data, testMsg{id: i, bytes: 32})
		}
		// Everything is parked (span unreachable, deadline maxHold).
		n.Heal()
		n.Send(0, 1, transport.Data, testMsg{id: 5, bytes: 32})
	})
	s.Run(s.Now() + 10*time.Second)
	if len(got) != 6 {
		t.Fatalf("after heal %d/6 delivered", len(got))
	}
	if !n.Healed() {
		t.Fatal("Healed() false after Heal")
	}
	if total := n.InjectedTotal(); total != 5 {
		t.Fatalf("InjectedTotal=%d, want 5 reorders", total)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{
		Seed: 1234,
		Rules: []Rule{
			{Src: 0, Dst: 1, Class: int(transport.Data), Drop: 0.05, Dup: 0.02, Reorder: 0.1, ReorderSpan: 4, Window: Window{FromEpoch: 2, UntilEpoch: 9}},
			{Src: AnyNode, Dst: AnyNode, Class: AnyClass, Delay: 0.2, DelayFor: 3 * time.Millisecond},
		},
		Partitions: []PartitionSpec{{Src: 2, Dst: 0, Window: Window{FromCount: 100, UntilCount: 500}}},
		Crashes:    []CrashSpec{{Node: 1, Window: Window{FromEpoch: 3, UntilEpoch: 5}}},
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(path, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadPlan(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip changed plan:\n%+v\n%+v", p, back)
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Rules: []Rule{{Drop: 0.9, Dup: 0.9}}}).Validate(); err == nil {
		t.Fatal("probability sum > 1 must be rejected")
	}
	if err := (Plan{Crashes: []CrashSpec{{Node: 1}}}).Validate(); err == nil {
		t.Fatal("unbounded crash window must be rejected")
	}
	if err := (Plan{Rules: []Rule{{Src: AnyNode, Dst: AnyNode, Class: AnyClass, Drop: 0.5}}}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}
