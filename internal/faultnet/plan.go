package faultnet

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadPlan reads a JSON fault plan (the star-node -faults argument).
func LoadPlan(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return Plan{}, fmt.Errorf("faultnet: parse %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("faultnet: %s: %w", path, err)
	}
	return p, nil
}

// SavePlan writes the plan as indented JSON, for sharing one schedule
// across the processes of a multi-node chaos run.
func SavePlan(path string, p Plan) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Validate rejects plans whose probabilities cannot be evaluated
// against a single uniform draw.
func (p Plan) Validate() error {
	for i, r := range p.Rules {
		sum := r.Drop + r.Dup + r.Reorder + r.Delay
		if sum < 0 || sum > 1 {
			return fmt.Errorf("rule %d: probabilities sum to %v, want [0,1]", i, sum)
		}
		if r.Src < AnyNode || r.Dst < AnyNode || r.Class < AnyClass {
			return fmt.Errorf("rule %d: negative matcher that is not a wildcard", i)
		}
	}
	for i, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("crash %d: node %d", i, c.Node)
		}
		if c.Window.zero() {
			return fmt.Errorf("crash %d: unbounded window would blackhole node %d forever", i, c.Node)
		}
	}
	return nil
}
