// Package faultnet is a fault-injecting decorator around any
// transport.Transport (simnet or tcpnet): it applies a seeded,
// deterministic fault plan to every remote send — per-directed-link
// message drop / duplicate / delay / reorder probabilities, asymmetric
// partitions (A reaches B but not vice versa), class-scoped faults
// (e.g. only Replication envelopes), and epoch- or count-keyed
// crash/heal windows — while counting exactly what it injected.
//
// The paper (§4) assumes fail-stop nodes and reliable FIFO links;
// faultnet exists to take those assumptions away on purpose. With an
// empty plan the decorator is transparent (it passes the transport
// conformance suite unchanged); with a plan, the wrapped engine's
// failure detection, fence draining and rejoin machinery must absorb
// whatever the plan schedules. internal/chaos generates such plans and
// asserts the cluster's convergence invariants after the faults heal.
//
// Determinism: every per-link decision is drawn from an RNG seeded by
// (Plan.Seed, src, dst) and consumed once per send on that link, so the
// fault pattern is a pure function of the plan and the sequence of
// sends — on the simulated runtime an entire chaos soak replays
// bit-identically from its seed. Held-back (delayed/reordered) messages
// are additionally released by a ticker so a fault cannot park the last
// message of a quiesced link forever.
//
// Multi-process use: each process wraps its own transport with the SAME
// plan. Sends happen only on the process hosting the source endpoint,
// so per-link RNG streams and send indices stay consistent cluster-wide;
// count-keyed windows using TotalCount are per-process and best kept to
// single-process plans (epoch-keyed windows track the cluster epoch on
// every process that sends phase reports).
package faultnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"star/internal/metrics"
	"star/internal/rt"
	"star/internal/transport"
)

// AnyNode and AnyClass are the wildcard values for plan matchers.
const (
	AnyNode  = -1
	AnyClass = -1
)

// Window keys a fault to a slice of the run: by observed cluster epoch
// (phase commands and reports passing through this decorator carry it),
// by the matched link's send index, or by total sends through the
// decorator. Zero values leave that bound open; a zero Window is always
// active. Until bounds are exclusive.
type Window struct {
	FromEpoch  uint64 `json:"from_epoch,omitempty"`
	UntilEpoch uint64 `json:"until_epoch,omitempty"`
	FromCount  int64  `json:"from_count,omitempty"`
	UntilCount int64  `json:"until_count,omitempty"`
}

func (w Window) active(epoch uint64, count int64) bool {
	if w.FromEpoch > 0 && epoch < w.FromEpoch {
		return false
	}
	if w.UntilEpoch > 0 && epoch >= w.UntilEpoch {
		return false
	}
	if w.FromCount > 0 && count < w.FromCount {
		return false
	}
	if w.UntilCount > 0 && count >= w.UntilCount {
		return false
	}
	return true
}

// zero reports an unbounded (always-on) window.
func (w Window) zero() bool { return w == Window{} }

// Rule scopes loss/duplication/reordering/delay probabilities to a
// directed link (wildcards allowed), a traffic class, and a window.
// The probabilities are evaluated in order drop, dup, reorder, delay
// against one uniform draw, so their sum must stay ≤ 1.
type Rule struct {
	Src   int `json:"src"`   // sending endpoint, or AnyNode
	Dst   int `json:"dst"`   // receiving endpoint, or AnyNode
	Class int `json:"class"` // transport.Class, or AnyClass

	Drop    float64 `json:"drop,omitempty"`    // vanish silently
	Dup     float64 `json:"dup,omitempty"`     // deliver twice
	Reorder float64 `json:"reorder,omitempty"` // hold until ReorderSpan later sends pass
	Delay   float64 `json:"delay,omitempty"`   // hold for DelayFor of wall/virtual time

	// ReorderSpan is how many subsequent sends on the link overtake a
	// held message (default 3).
	ReorderSpan int `json:"reorder_span,omitempty"`
	// DelayFor is the hold duration for delayed messages (default 2ms).
	DelayFor time.Duration `json:"delay_for,omitempty"`

	Window Window `json:"window,omitempty"`
}

func (r Rule) matches(src, dst int, class transport.Class) bool {
	if r.Src != AnyNode && r.Src != src {
		return false
	}
	if r.Dst != AnyNode && r.Dst != dst {
		return false
	}
	if r.Class != AnyClass && transport.Class(r.Class) != class {
		return false
	}
	return true
}

// PartitionSpec drops everything on one direction of a link for a
// window. Listing only src→dst (not dst→src) makes the partition
// asymmetric: A still hears B while B is deaf to A.
type PartitionSpec struct {
	Src    int    `json:"src"` // or AnyNode
	Dst    int    `json:"dst"` // or AnyNode
	Window Window `json:"window,omitempty"`
}

// CrashSpec blackholes all traffic to AND from a node for a window —
// fail-stop as seen from the network, without SetDown: the protocol
// must detect the silence itself. Healing restores traffic; rejoining
// the cluster is the protocol's (or the chaos harness's) job.
type CrashSpec struct {
	Node   int    `json:"node"`
	Window Window `json:"window,omitempty"`
}

// Plan is one seeded fault schedule. The zero plan injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision (per-link streams are
	// derived from it, so the same plan replays the same faults).
	Seed       int64           `json:"seed"`
	Rules      []Rule          `json:"rules,omitempty"`
	Partitions []PartitionSpec `json:"partitions,omitempty"`
	Crashes    []CrashSpec     `json:"crashes,omitempty"`
}

// EpochCarrier is implemented by protocol messages that carry the
// cluster epoch (core's phase commands and reports); faultnet tracks
// the maximum it has seen to key epoch windows.
type EpochCarrier interface{ InjectionEpoch() uint64 }

// held is one message parked by a reorder or delay fault.
type held struct {
	msg      transport.Message
	class    transport.Class
	src, dst int
	afterIdx int64         // release once the link's send index passes this
	deadline time.Duration // ... or once runtime time passes this
}

// linkState is the per-directed-link fault state. One mutex covers the
// RNG and the holdback queue; sends to other links never contend on it.
type linkState struct {
	mu   sync.Mutex
	rng  *rand.Rand
	idx  int64 // sends attempted on this link (fault decisions consumed)
	back []held
}

// Network implements transport.Transport by decorating an inner one.
type Network struct {
	inner transport.Transport
	r     rt.Runtime
	plan  Plan

	mu    sync.Mutex
	links map[uint64]*linkState

	epoch  atomic.Uint64 // max epoch observed in EpochCarrier sends
	total  atomic.Int64  // total remote sends attempted
	healed atomic.Bool

	dropped    metrics.Counter
	duplicated metrics.Counter
	reordered  metrics.Counter
	delayed    metrics.Counter
	partDrops  metrics.Counter
	crashDrops metrics.Counter
}

var _ transport.Transport = (*Network)(nil)

// maxHold bounds how long a reorder fault can park a message when the
// link goes quiet: the ticker releases anything older.
const maxHold = 10 * time.Millisecond

// tick is the holdback flush interval.
const tick = time.Millisecond

// Wrap decorates inner with the plan's faults. The runtime schedules
// the holdback ticker (virtual time on rt.Sim keeps it deterministic).
func Wrap(r rt.Runtime, inner transport.Transport, plan Plan) *Network {
	n := &Network{inner: inner, r: r, plan: plan, links: map[uint64]*linkState{}}
	if len(plan.Rules) > 0 {
		// Only reorder/delay need the ticker; drops and partitions do not
		// hold anything back.
		needs := false
		for _, ru := range plan.Rules {
			if ru.Reorder > 0 || ru.Delay > 0 {
				needs = true
				break
			}
		}
		if needs {
			r.Go("faultnet-ticker", n.tickLoop)
		}
	}
	return n
}

// Heal disables every fault and releases all held messages: subsequent
// traffic flows clean. Used by chaos harnesses before verifying
// convergence (and idempotent).
func (n *Network) Heal() {
	n.healed.Store(true)
	n.flushAll()
}

// Healed reports whether Heal has been called.
func (n *Network) Healed() bool { return n.healed.Load() }

// Injected returns the per-fault-type injection counters.
func (n *Network) Injected() map[string]int64 {
	return map[string]int64{
		"fault_drops":      n.dropped.Load(),
		"fault_dups":       n.duplicated.Load(),
		"fault_reorders":   n.reordered.Load(),
		"fault_delays":     n.delayed.Load(),
		"fault_part_drops": n.partDrops.Load(),
		"fault_crash_drops": n.crashDrops.Load(),
	}
}

// InjectedTotal sums every injected fault (tests assert a plan bit).
func (n *Network) InjectedTotal() int64 {
	var t int64
	for _, v := range n.Injected() {
		t += v
	}
	return t
}

// Epoch returns the highest cluster epoch observed passing through.
func (n *Network) Epoch() uint64 { return n.epoch.Load() }

// CrashActive reports whether a crash window currently blackholes node
// (the chaos harness polls it to schedule rejoins after heal).
func (n *Network) CrashActive(node int) bool {
	if n.healed.Load() {
		return false
	}
	epoch, count := n.epoch.Load(), n.total.Load()
	for _, c := range n.plan.Crashes {
		if c.Node == node && c.Window.active(epoch, count) {
			return true
		}
	}
	return false
}

func (n *Network) link(src, dst int) *linkState {
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	n.mu.Lock()
	l := n.links[key]
	if l == nil {
		l = &linkState{rng: rand.New(rand.NewSource(n.plan.Seed ^ linkSeed(src, dst)))}
		n.links[key] = l
	}
	n.mu.Unlock()
	return l
}

// linkSeed derives a distinct deterministic RNG stream per (src,dst).
func linkSeed(src, dst int) int64 {
	return int64((uint64(src)<<20 | uint64(dst)) * 0x9e3779b97f4a7c15 >> 1)
}

// Send applies the plan to one message, then forwards the survivors to
// the inner transport. Local sends (src == dst) are in-process function
// calls, not network traffic: they bypass the plan entirely.
func (n *Network) Send(src, dst int, class transport.Class, m transport.Message) {
	if ec, ok := m.(EpochCarrier); ok {
		for {
			cur := n.epoch.Load()
			e := ec.InjectionEpoch()
			if e <= cur || n.epoch.CompareAndSwap(cur, e) {
				break
			}
		}
	}
	if src == dst || n.healed.Load() {
		n.inner.Send(src, dst, class, m)
		return
	}
	total := n.total.Add(1)
	epoch := n.epoch.Load()

	// Crash windows: the node is silent in both directions.
	for _, c := range n.plan.Crashes {
		if (c.Node == src || c.Node == dst) && c.Window.active(epoch, total) {
			n.crashDrops.Inc()
			return
		}
	}
	// Partitions: directional blackhole.
	for _, p := range n.plan.Partitions {
		if (p.Src == AnyNode || p.Src == src) && (p.Dst == AnyNode || p.Dst == dst) &&
			p.Window.active(epoch, total) {
			n.partDrops.Inc()
			return
		}
	}

	l := n.link(src, dst)
	l.mu.Lock()
	l.idx++
	idx := l.idx
	// First matching active rule wins; one uniform draw decides.
	for i := range n.plan.Rules {
		ru := &n.plan.Rules[i]
		if !ru.matches(src, dst, class) || !ru.Window.active(epoch, idx) {
			continue
		}
		u := l.rng.Float64()
		switch {
		case u < ru.Drop:
			l.mu.Unlock()
			n.dropped.Inc()
			return
		case u < ru.Drop+ru.Dup:
			l.mu.Unlock()
			n.duplicated.Inc()
			n.inner.Send(src, dst, class, m)
			n.inner.Send(src, dst, class, m)
			return
		case u < ru.Drop+ru.Dup+ru.Reorder:
			span := ru.ReorderSpan
			if span <= 0 {
				span = 3
			}
			l.back = append(l.back, held{
				msg: m, class: class, src: src, dst: dst,
				afterIdx: idx + int64(span),
				deadline: n.r.Now() + maxHold,
			})
			l.mu.Unlock()
			n.reordered.Inc()
			return
		case u < ru.Drop+ru.Dup+ru.Reorder+ru.Delay:
			d := ru.DelayFor
			if d <= 0 {
				d = 2 * time.Millisecond
			}
			l.back = append(l.back, held{
				msg: m, class: class, src: src, dst: dst,
				afterIdx: 1 << 62, // time-released only
				deadline: n.r.Now() + d,
			})
			l.mu.Unlock()
			n.delayed.Inc()
			return
		}
		break // matched but survived the draw: deliver normally
	}
	due := n.takeDueLocked(l, idx)
	l.mu.Unlock()
	n.inner.Send(src, dst, class, m)
	for _, h := range due {
		n.inner.Send(h.src, h.dst, h.class, h.msg)
	}
}

// takeDueLocked removes and returns the held messages that are due at
// this link index or by time. Caller holds l.mu.
func (n *Network) takeDueLocked(l *linkState, idx int64) []held {
	if len(l.back) == 0 {
		return nil
	}
	now := n.r.Now()
	var due []held
	rest := l.back[:0]
	for _, h := range l.back {
		if idx >= h.afterIdx || now >= h.deadline {
			due = append(due, h)
		} else {
			rest = append(rest, h)
		}
	}
	l.back = rest
	return due
}

// tickLoop periodically releases held messages by deadline so a link
// that goes quiet cannot strand its last messages.
func (n *Network) tickLoop() {
	for {
		n.r.Sleep(tick)
		n.flushDue()
	}
}

func (n *Network) flushDue() {
	n.mu.Lock()
	links := make([]*linkState, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, l := range links {
		l.mu.Lock()
		due := n.takeDueLocked(l, l.idx)
		l.mu.Unlock()
		for _, h := range due {
			n.inner.Send(h.src, h.dst, h.class, h.msg)
		}
	}
}

// flushAll releases every held message immediately (Heal).
func (n *Network) flushAll() {
	n.mu.Lock()
	links := make([]*linkState, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, l := range links {
		l.mu.Lock()
		due := l.back
		l.back = nil
		l.mu.Unlock()
		for _, h := range due {
			n.inner.Send(h.src, h.dst, h.class, h.msg)
		}
	}
}

// ---- pure delegation ----

// Inbox implements transport.Transport.
func (n *Network) Inbox(dst int) rt.Chan { return n.inner.Inbox(dst) }

// SetDown implements transport.Transport (forwarded: fail-stop control
// stays the protocol's own; crash windows are the injected kind).
func (n *Network) SetDown(node int, down bool) { n.inner.SetDown(node, down) }

// IsDown implements transport.Transport.
func (n *Network) IsDown(node int) bool { return n.inner.IsDown(node) }

// Bytes implements transport.Transport.
func (n *Network) Bytes(c transport.Class) int64 { return n.inner.Bytes(c) }

// Messages implements transport.Transport.
func (n *Network) Messages(c transport.Class) int64 { return n.inner.Messages(c) }

// TotalBytes implements transport.Transport.
func (n *Network) TotalBytes() int64 { return n.inner.TotalBytes() }

// BytesFrom implements transport.Transport.
func (n *Network) BytesFrom(src int) int64 { return n.inner.BytesFrom(src) }

// Dropped implements transport.Transport: the inner transport's
// fail-stop drops plus everything the plan made vanish.
func (n *Network) Dropped() int64 {
	return n.inner.Dropped() + n.dropped.Load() + n.partDrops.Load() + n.crashDrops.Load()
}
