package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"star/internal/replication"
)

// corpusSeed materialises a seed input under testdata/fuzz/<target> (the
// committed corpus the CI fuzz regression runs start from) and registers
// it with f.Add. Files are content-addressed by index so reruns are
// idempotent; they are committed to the repository.
func corpusSeed(f *testing.F, target string, idx int, data []byte) {
	f.Helper()
	f.Add(data)
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		f.Fatalf("corpus dir: %v", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%02d", idx))
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if existing, err := os.ReadFile(path); err == nil && string(existing) == content {
		return
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		f.Fatalf("write corpus seed: %v", err)
	}
}

// FuzzPrimitives feeds arbitrary bytes through every primitive decoder:
// none may panic, and whatever decodes must re-encode to a buffer that
// decodes to the same value (canonical round trip).
func FuzzPrimitives(f *testing.F) {
	seeds := [][]byte{
		AppendUvarint(nil, 300),
		AppendVarint(nil, -77),
		AppendBytes(nil, []byte("hello")),
		AppendI64s(nil, []int64{1, -2, 3}),
		AppendU64s(nil, []uint64{9, 1 << 50}),
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	for i, s := range seeds {
		corpusSeed(f, "FuzzPrimitives", i, s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, _, err := Uvarint(data); err == nil {
			if got, _, err2 := Uvarint(AppendUvarint(nil, v)); err2 != nil || got != v {
				t.Fatalf("uvarint canonical round trip: %d vs %d (%v)", v, got, err2)
			}
		}
		if v, _, err := Varint(data); err == nil {
			if got, _, err2 := Varint(AppendVarint(nil, v)); err2 != nil || got != v {
				t.Fatalf("varint canonical round trip: %d vs %d (%v)", v, got, err2)
			}
		}
		if p, _, err := Bytes(data); err == nil {
			if got, _, err2 := Bytes(AppendBytes(nil, p)); err2 != nil || !reflect.DeepEqual(got, p) {
				t.Fatalf("bytes canonical round trip failed (%v)", err2)
			}
		}
		if v, _, err := I64s(data); err == nil {
			if got, _, err2 := I64s(AppendI64s(nil, v)); err2 != nil || !reflect.DeepEqual(got, v) {
				t.Fatalf("i64s canonical round trip failed (%v)", err2)
			}
		}
		if v, _, err := I32s(data); err == nil {
			if got, _, err2 := I32s(AppendI32s(nil, v)); err2 != nil || !reflect.DeepEqual(got, v) {
				t.Fatalf("i32s canonical round trip failed (%v)", err2)
			}
		}
		if v, _, err := U64s(data); err == nil {
			if got, _, err2 := U64s(AppendU64s(nil, v)); err2 != nil || !reflect.DeepEqual(got, v) {
				t.Fatalf("u64s canonical round trip failed (%v)", err2)
			}
		}
		Key(data)
		Bool(data)
		if op, _, err := DecodeFieldOp(data); err == nil {
			got, _, err2 := DecodeFieldOp(AppendFieldOp(nil, &op))
			if err2 != nil || !reflect.DeepEqual(got, op) {
				t.Fatalf("field op canonical round trip failed (%v)", err2)
			}
		}
	})
}

// FuzzFrameRead streams arbitrary bytes through ReadFrame under the
// client-facing cap: no input may panic or allocate past the cap (the
// length prefix is attacker-controlled), and an accepted body must match
// the prefix's claim and re-read identically when re-framed.
func FuzzFrameRead(f *testing.F) {
	frame := func(claim uint32, body []byte) []byte {
		return append(binary.LittleEndian.AppendUint32(nil, claim), body...)
	}
	seeds := [][]byte{
		frame(5, []byte("hello")),
		// The offending frame: a huge claimed length backed by almost no
		// payload (the pre-hardening reader allocated the claim up front).
		frame(0xfffffff0, []byte{1, 2, 3}),
		frame(MaxClientFrame+1, nil),
		frame(1000, []byte("short")), // truncated body
		frame(0, nil),
	}
	for i, s := range seeds {
		corpusSeed(f, "FuzzFrameRead", i, s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := ReadFrame(bytes.NewReader(data), MaxClientFrame)
		if err != nil {
			return // rejected without panicking: the property under test
		}
		if len(data) < 4 {
			t.Fatal("accepted a frame with no length prefix")
		}
		if claim := binary.LittleEndian.Uint32(data); int(claim) != len(body) {
			t.Fatalf("claimed %d bytes, returned %d", claim, len(body))
		}
		reframed := append(binary.LittleEndian.AppendUint32(nil, uint32(len(body))), body...)
		again, err := ReadFrame(bytes.NewReader(reframed), MaxClientFrame)
		if err != nil || !bytes.Equal(again, body) {
			t.Fatalf("re-read of accepted frame: %v", err)
		}
	})
}

// FuzzBatchDecode hammers the replication batch decoder: arbitrary
// input must never panic, and a successful decode must survive a
// canonical re-encode/decode cycle bit-identically.
func FuzzBatchDecode(f *testing.F) {
	good := &replication.Batch{From: 1, Epoch: 7, Entries: sampleEntries()}
	enc := AppendBatch(nil, good)
	seeds := [][]byte{
		enc,
		enc[:len(enc)/2],                   // truncated
		append([]byte{0xff, 0xff}, enc...), // corrupt header
		AppendBatch(nil, &replication.Batch{}),
	}
	for i, s := range seeds {
		corpusSeed(f, "FuzzBatchDecode", i, s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return // rejected without panicking: the property under test
		}
		re := AppendBatch(nil, b)
		b2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("canonical round trip changed the batch:\n%+v\nvs\n%+v", b, b2)
		}
	})
}
