package wire

import (
	"fmt"

	"star/internal/replication"
	"star/internal/storage"
)

// Entry encoding:
//
//	[flags u8] bit0 = operation entry, bit1 = absent (tombstone)
//	[table u8][part uvarint][key 16B][tid u64]
//	value entry: [row bytes]
//	op entry:    [nops uvarint] nops × [field u8][kind u8][arg bytes]
const (
	entryFlagOp     = 1 << 0
	entryFlagAbsent = 1 << 1
)

// AppendFieldOp appends one field operation: [field u8][kind u8][arg].
func AppendFieldOp(b []byte, op *storage.FieldOp) []byte {
	b = append(b, op.Field, byte(op.Kind))
	return AppendBytes(b, op.Arg)
}

// FieldOpLen returns the encoded size of op.
func FieldOpLen(op *storage.FieldOp) int { return 2 + BytesLen(op.Arg) }

// DecodeFieldOp consumes one field operation. Arg aliases b.
func DecodeFieldOp(b []byte) (storage.FieldOp, []byte, error) {
	var op storage.FieldOp
	if len(b) < 2 {
		return op, nil, ErrTruncated
	}
	op.Field = b[0]
	op.Kind = storage.OpKind(b[1])
	if op.Kind > storage.OpSetRow {
		return op, nil, fmt.Errorf("%w: op kind %d", ErrCorrupt, op.Kind)
	}
	var err error
	if op.Arg, b, err = Bytes(b[2:]); err != nil {
		return op, nil, err
	}
	return op, b, nil
}

// AppendEntry appends one replication entry.
func AppendEntry(b []byte, e *replication.Entry) []byte {
	var flags byte
	if e.IsOp() {
		flags |= entryFlagOp
	}
	if e.Absent {
		flags |= entryFlagAbsent
	}
	b = append(b, flags, byte(e.Table))
	b = AppendUvarint(b, uint64(uint32(e.Part)))
	b = AppendKey(b, e.Key)
	b = AppendU64(b, e.TID)
	if e.IsOp() {
		b = AppendUvarint(b, uint64(len(e.Ops)))
		for i := range e.Ops {
			b = AppendFieldOp(b, &e.Ops[i])
		}
		return b
	}
	return AppendBytes(b, e.Row)
}

// EntryLen returns the encoded size of e.
func EntryLen(e *replication.Entry) int {
	n := 2 + UvarintLen(uint64(uint32(e.Part))) + KeyLen + 8
	if e.IsOp() {
		n += UvarintLen(uint64(len(e.Ops)))
		for i := range e.Ops {
			n += 2 + BytesLen(e.Ops[i].Arg)
		}
		return n
	}
	return n + BytesLen(e.Row)
}

// DecodeEntry consumes one entry. Row and op args alias b.
func DecodeEntry(b []byte) (replication.Entry, []byte, error) {
	var e replication.Entry
	if len(b) < 2 {
		return e, nil, ErrTruncated
	}
	flags := b[0]
	if flags&^(entryFlagOp|entryFlagAbsent) != 0 {
		return e, nil, fmt.Errorf("%w: entry flags %#x", ErrCorrupt, flags)
	}
	e.Absent = flags&entryFlagAbsent != 0
	e.Table = storage.TableID(b[1])
	part, b, err := Uvarint(b[2:])
	if err != nil {
		return e, nil, err
	}
	e.Part = int32(uint32(part))
	if e.Key, b, err = Key(b); err != nil {
		return e, nil, err
	}
	if e.TID, b, err = U64(b); err != nil {
		return e, nil, err
	}
	if flags&entryFlagOp == 0 {
		if e.Row, b, err = Bytes(b); err != nil {
			return e, nil, err
		}
		return e, b, nil
	}
	nops, b, err := Uvarint(b)
	if err != nil {
		return e, nil, err
	}
	// Each op costs at least 3 bytes, so nops is bounded by the buffer —
	// reject early instead of allocating from a corrupt count.
	if nops > uint64(len(b))/3+1 {
		return e, nil, fmt.Errorf("%w: %d ops in %d-byte buffer", ErrCorrupt, nops, len(b))
	}
	e.Ops = make([]storage.FieldOp, nops)
	for i := range e.Ops {
		if e.Ops[i], b, err = DecodeFieldOp(b); err != nil {
			return e, nil, err
		}
	}
	// IsOp distinguishes op entries by Ops != nil; a corrupt-free decode
	// must preserve that even for zero ops.
	if e.Ops == nil {
		e.Ops = []storage.FieldOp{}
	}
	return e, b, nil
}

// Batch encoding: [from uvarint][epoch uvarint][n uvarint] n × entry.

// AppendBatch appends a replication batch body.
func AppendBatch(b []byte, batch *replication.Batch) []byte {
	b = AppendUvarint(b, uint64(batch.From))
	b = AppendUvarint(b, batch.Epoch)
	b = AppendUvarint(b, uint64(len(batch.Entries)))
	for i := range batch.Entries {
		b = AppendEntry(b, &batch.Entries[i])
	}
	return b
}

// BatchLen returns the encoded size of a batch body.
func BatchLen(batch *replication.Batch) int {
	n := UvarintLen(uint64(batch.From)) + UvarintLen(batch.Epoch) +
		UvarintLen(uint64(len(batch.Entries)))
	for i := range batch.Entries {
		n += EntryLen(&batch.Entries[i])
	}
	return n
}

// DecodeBatch decodes a whole batch body. Entry payloads alias b.
func DecodeBatch(b []byte) (*replication.Batch, error) {
	from, b, err := Uvarint(b)
	if err != nil {
		return nil, err
	}
	epoch, b, err := Uvarint(b)
	if err != nil {
		return nil, err
	}
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, err
	}
	// Entries cost ≥ 27 bytes each; bound the allocation by the buffer.
	if n > uint64(len(b))/27+1 {
		return nil, fmt.Errorf("%w: %d entries in %d-byte buffer", ErrCorrupt, n, len(b))
	}
	batch := &replication.Batch{From: int(from), Epoch: epoch,
		Entries: make([]replication.Entry, n)}
	for i := range batch.Entries {
		if batch.Entries[i], b, err = DecodeEntry(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(b))
	}
	return batch, nil
}
