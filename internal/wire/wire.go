// Package wire is the hand-rolled binary encoding for everything the
// cluster sends over a real transport: varint integer primitives,
// length-prefixed frames, codecs for replication entries/batches and
// transaction requests, and a registry that maps message type ids to
// their encode/decode functions.
//
// Design rules:
//
//   - Append-style encoders: every encoder appends to a caller-supplied
//     buffer and returns it, so a sender can build a frame with one
//     amortised allocation.
//   - Arena-friendly decoders: decoded byte payloads (row images, field
//     op arguments) alias the input buffer instead of copying. A frame's
//     buffer must therefore outlive the decoded message — tcpnet reads
//     each frame into its own buffer and lets the GC collect it with the
//     message.
//   - Decoders never panic on malformed input: every length is checked
//     against the remaining buffer and errors propagate up, so a corrupt
//     or truncated frame is rejected, not a crash.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"star/internal/storage"
)

// Decode errors. Decoders wrap these with context; use errors.Is.
var (
	// ErrTruncated means the buffer ended before the value did.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrCorrupt means a structurally invalid encoding (overlong varint,
	// unknown type id, length exceeding the frame).
	ErrCorrupt = errors.New("wire: corrupt input")
)

// ---- varint primitives ----

// AppendUvarint appends v in LEB128 (1–10 bytes).
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// Uvarint consumes a uvarint from b, returning the value and the rest.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		if n == 0 {
			return 0, nil, ErrTruncated
		}
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

// UvarintLen returns the encoded size of v.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendVarint appends v zig-zag encoded.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// Varint consumes a zig-zag varint from b.
func Varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		if n == 0 {
			return 0, nil, ErrTruncated
		}
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

// VarintLen returns the encoded size of v.
func VarintLen(v int64) int {
	return UvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// ---- fixed-width primitives ----

// AppendU64 appends v as 8 little-endian bytes (used for TIDs, whose
// epoch-in-high-bits layout defeats varint compression).
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// U64 consumes 8 little-endian bytes.
func U64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// ---- length-prefixed byte strings ----

// AppendBytes appends p prefixed with its uvarint length.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Bytes consumes a length-prefixed byte string. The returned slice
// aliases b (arena-style: no copy); callers that retain it past the
// frame buffer's lifetime must copy. An empty string decodes to nil, so
// encode(decode(x)) is the identity on canonical values.
func Bytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: byte string of %d in %d-byte buffer", ErrTruncated, n, len(rest))
	}
	if n == 0 {
		return nil, rest, nil
	}
	return rest[:n:n], rest[n:], nil
}

// BytesLen returns the encoded size of a length-prefixed byte string.
func BytesLen(p []byte) int {
	return UvarintLen(uint64(len(p))) + len(p)
}

// ---- storage keys ----

// KeyLen is the encoded size of a storage.Key (fixed width).
const KeyLen = storage.KeySize

// AppendKey appends k as 16 little-endian bytes.
func AppendKey(b []byte, k storage.Key) []byte {
	b = binary.LittleEndian.AppendUint64(b, k.Hi)
	return binary.LittleEndian.AppendUint64(b, k.Lo)
}

// Key consumes a 16-byte key.
func Key(b []byte) (storage.Key, []byte, error) {
	if len(b) < KeyLen {
		return storage.Key{}, nil, ErrTruncated
	}
	return storage.Key{
		Hi: binary.LittleEndian.Uint64(b),
		Lo: binary.LittleEndian.Uint64(b[8:]),
	}, b[KeyLen:], nil
}

// ---- floats ----

// AppendF64 appends v as its 8-byte IEEE-754 bit pattern.
func AppendF64(b []byte, v float64) []byte {
	return AppendU64(b, math.Float64bits(v))
}

// F64 consumes an 8-byte float.
func F64(b []byte) (float64, []byte, error) {
	u, rest, err := U64(b)
	return math.Float64frombits(u), rest, err
}

// ---- bool ----

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Bool consumes a 0/1 byte; any other value is corrupt.
func Bool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, ErrTruncated
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	}
	return false, nil, fmt.Errorf("%w: bool byte %#x", ErrCorrupt, b[0])
}
