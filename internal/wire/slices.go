package wire

import "fmt"

// Integer-slice helpers shared by the message codecs: a uvarint count
// followed by one varint per element. Counts are validated against the
// remaining buffer (each element costs ≥1 byte) before allocating.

func sliceCount(b []byte) (int, []byte, error) {
	n, rest, err := Uvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: %d elements in %d-byte buffer", ErrCorrupt, n, len(rest))
	}
	return int(n), rest, nil
}

// AppendI64s appends a []int64.
func AppendI64s(b []byte, v []int64) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = AppendVarint(b, x)
	}
	return b
}

// I64s consumes a []int64 (nil for an empty slice).
func I64s(b []byte) ([]int64, []byte, error) {
	n, b, err := sliceCount(b)
	if err != nil || n == 0 {
		return nil, b, err
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], b, err = Varint(b); err != nil {
			return nil, nil, err
		}
	}
	return out, b, nil
}

// AppendI32s appends a []int32.
func AppendI32s(b []byte, v []int32) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = AppendVarint(b, int64(x))
	}
	return b
}

// I32s consumes a []int32 (nil for an empty slice).
func I32s(b []byte) ([]int32, []byte, error) {
	n, b, err := sliceCount(b)
	if err != nil || n == 0 {
		return nil, b, err
	}
	out := make([]int32, n)
	for i := range out {
		var x int64
		if x, b, err = Varint(b); err != nil {
			return nil, nil, err
		}
		if x < -1<<31 || x > 1<<31-1 {
			return nil, nil, fmt.Errorf("%w: int32 element %d", ErrCorrupt, x)
		}
		out[i] = int32(x)
	}
	return out, b, nil
}

// AppendInts appends a []int.
func AppendInts(b []byte, v []int) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = AppendVarint(b, int64(x))
	}
	return b
}

// Ints consumes a []int (nil for an empty slice).
func Ints(b []byte) ([]int, []byte, error) {
	n, b, err := sliceCount(b)
	if err != nil || n == 0 {
		return nil, b, err
	}
	out := make([]int, n)
	for i := range out {
		var x int64
		if x, b, err = Varint(b); err != nil {
			return nil, nil, err
		}
		out[i] = int(x)
	}
	return out, b, nil
}

// AppendU64s appends a []uint64 as fixed 8-byte values (TID vectors).
func AppendU64s(b []byte, v []uint64) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	for _, x := range v {
		b = AppendU64(b, x)
	}
	return b
}

// U64s consumes a []uint64 (nil for an empty slice).
func U64s(b []byte) ([]uint64, []byte, error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// Divide rather than multiply: n*8 would overflow for corrupt counts.
	if n > uint64(len(b))/8 {
		return nil, nil, fmt.Errorf("%w: %d u64s in %d-byte buffer", ErrCorrupt, n, len(b))
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]uint64, n)
	var err2 error
	for i := range out {
		if out[i], b, err2 = U64(b); err2 != nil {
			return nil, nil, err2
		}
	}
	return out, b, nil
}
