package wire

import (
	"fmt"
	"reflect"

	"star/internal/transport"
	"star/internal/txn"
)

// EncodeFunc appends a message body (no type id) to b.
type EncodeFunc func(b []byte, m transport.Message) []byte

// DecodeFunc decodes a message body, returning any unconsumed bytes —
// Codec.Decode rejects the frame if a decoder leaves a remainder, so
// trailing garbage after a structurally valid message is corrupt, not
// silently ignored. Byte payloads in the result may alias b.
type DecodeFunc func(b []byte) (transport.Message, []byte, error)

// ProcEncodeFunc appends a procedure's parameters to b.
type ProcEncodeFunc func(b []byte, p txn.Procedure) []byte

// ProcDecodeFunc decodes a procedure's parameters, returning the rest of
// the buffer (procedure encodings are self-delimiting).
type ProcDecodeFunc func(b []byte) (txn.Procedure, []byte, error)

type msgEntry struct {
	id  uint8
	enc EncodeFunc
	dec DecodeFunc
}

type procEntry struct {
	id  uint8
	enc ProcEncodeFunc
	dec ProcDecodeFunc
}

// Codec maps message and procedure types to their binary codecs. A
// cluster's processes must build identical codecs (same registrations in
// the same ids); core.NewWireCodec does that from a Config. Codecs are
// populated at construction and read-only afterwards, so concurrent use
// by transport goroutines needs no locking.
type Codec struct {
	msgByID    map[uint8]*msgEntry
	msgByType  map[reflect.Type]*msgEntry
	procByID   map[uint8]*procEntry
	procByType map[reflect.Type]*procEntry

	// now, when set, is the process-local clock used to re-base request
	// generation stamps at the transport boundary (see SetClock).
	now func() int64
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{
		msgByID:    map[uint8]*msgEntry{},
		msgByType:  map[reflect.Type]*msgEntry{},
		procByID:   map[uint8]*procEntry{},
		procByType: map[reflect.Type]*procEntry{},
	}
}

// Register binds a message type id to its codec. sample carries the
// concrete type messages of this id have on the wire (value or pointer
// form must match what senders pass to Transport.Send). Duplicate ids or
// types panic: registration is a wiring-time error, not input.
func (c *Codec) Register(id uint8, sample transport.Message, enc EncodeFunc, dec DecodeFunc) {
	t := reflect.TypeOf(sample)
	if _, dup := c.msgByID[id]; dup {
		panic(fmt.Sprintf("wire: message id %d registered twice", id))
	}
	if _, dup := c.msgByType[t]; dup {
		panic(fmt.Sprintf("wire: message type %v registered twice", t))
	}
	e := &msgEntry{id: id, enc: enc, dec: dec}
	c.msgByID[id] = e
	c.msgByType[t] = e
}

// RegisterProc binds a procedure type id to its codec.
func (c *Codec) RegisterProc(id uint8, sample txn.Procedure, enc ProcEncodeFunc, dec ProcDecodeFunc) {
	t := reflect.TypeOf(sample)
	if _, dup := c.procByID[id]; dup {
		panic(fmt.Sprintf("wire: procedure id %d registered twice", id))
	}
	if _, dup := c.procByType[t]; dup {
		panic(fmt.Sprintf("wire: procedure type %v registered twice", t))
	}
	e := &procEntry{id: id, enc: enc, dec: dec}
	c.procByID[id] = e
	c.procByType[t] = e
}

// Append encodes m as [type id][body], appending to b.
func (c *Codec) Append(b []byte, m transport.Message) ([]byte, error) {
	e := c.msgByType[reflect.TypeOf(m)]
	if e == nil {
		return b, fmt.Errorf("wire: no codec for message type %T", m)
	}
	b = append(b, e.id)
	return e.enc(b, m), nil
}

// Decode decodes one [type id][body] message occupying all of b.
func (c *Codec) Decode(b []byte) (transport.Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty message", ErrTruncated)
	}
	e := c.msgByID[b[0]]
	if e == nil {
		return nil, fmt.Errorf("%w: unknown message id %d", ErrCorrupt, b[0])
	}
	m, rest, err := e.dec(b[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after message id %d", ErrCorrupt, len(rest), b[0])
	}
	return m, nil
}

// Knows reports whether m's concrete type has a registered codec.
func (c *Codec) Knows(m transport.Message) bool {
	return c.msgByType[reflect.TypeOf(m)] != nil
}

// ---- transaction requests ----

// SetClock installs the transport-boundary clock for request stamps.
// With a clock set, AppendRequest records the sender's "now" next to
// GenAt, and DecodeRequest re-bases GenAt into the receiver's clock
// domain: GenAt' = GenAt + (recvNow − sendNow), i.e. the request keeps
// its age (plus one-way transit) rather than a raw foreign timestamp.
// Multi-process time-driven clusters need this — each process's runtime
// clock has its own origin, so raw GenAt stamps skew every wire-deferred
// latency sample by the inter-process start delta. Scripted runs do NOT
// set a clock: their GenAt carries a deterministic total-order stamp
// that must cross the wire verbatim (see core.scriptStamp).
func (c *Codec) SetClock(now func() int64) { c.now = now }

// RequestOverhead is the encoded size of a request minus its procedure
// body: [proc id][GenAt zig-zag][sendNow u64][Retries uvarint] with
// Retries ≈ 0.
func RequestOverhead(genAt int64) int { return 1 + VarintLen(genAt) + 8 + 1 }

// AppendRequest encodes a routing request as
// [proc id][GenAt][sendNow][Retries][proc body]. Home/Parts/Cross are
// not shipped: the decoder recomputes them from the procedure's declared
// footprint, which both keeps the frame small and guarantees the two
// sides agree. sendNow is zero when no clock is installed.
func (c *Codec) AppendRequest(b []byte, r *txn.Request) ([]byte, error) {
	e := c.procByType[reflect.TypeOf(r.Proc)]
	if e == nil {
		return b, fmt.Errorf("wire: no codec for procedure type %T", r.Proc)
	}
	b = append(b, e.id)
	b = AppendVarint(b, r.GenAt)
	var sendNow int64
	if c.now != nil {
		sendNow = c.now()
	}
	b = AppendU64(b, uint64(sendNow))
	b = AppendUvarint(b, uint64(r.Retries))
	return e.enc(b, r.Proc), nil
}

// DecodeRequest decodes a request, returning the rest of the buffer.
// When both sides run clocked codecs, GenAt is re-based into this
// process's clock domain (see SetClock).
func (c *Codec) DecodeRequest(b []byte) (*txn.Request, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("%w: empty request", ErrTruncated)
	}
	e := c.procByID[b[0]]
	if e == nil {
		return nil, nil, fmt.Errorf("%w: unknown procedure id %d", ErrCorrupt, b[0])
	}
	genAt, b, err := Varint(b[1:])
	if err != nil {
		return nil, nil, err
	}
	sendNow, b, err := U64(b)
	if err != nil {
		return nil, nil, err
	}
	retries, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	proc, rest, err := e.dec(b)
	if err != nil {
		return nil, nil, err
	}
	if c.now != nil && sendNow != 0 {
		genAt += c.now() - int64(sendNow)
	}
	req := txn.NewRequest(proc, genAt)
	req.Retries = int(retries)
	return req, rest, nil
}
