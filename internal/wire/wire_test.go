package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"runtime"
	"testing"
	"testing/iotest"

	"star/internal/replication"
	"star/internal/storage"
	"star/internal/transport"
)

func TestVarintRoundTrip(t *testing.T) {
	uvals := []uint64{0, 1, 127, 128, 1 << 20, 1<<63 - 1, ^uint64(0)}
	for _, v := range uvals {
		b := AppendUvarint(nil, v)
		if len(b) != UvarintLen(v) {
			t.Fatalf("UvarintLen(%d)=%d, encoded %d", v, UvarintLen(v), len(b))
		}
		got, rest, err := Uvarint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("uvarint %d: got %d rest=%d err=%v", v, got, len(rest), err)
		}
	}
	ivals := []int64{0, 1, -1, 63, -64, 1 << 40, -1 << 40, 1<<63 - 1, -1 << 63}
	for _, v := range ivals {
		b := AppendVarint(nil, v)
		if len(b) != VarintLen(v) {
			t.Fatalf("VarintLen(%d)=%d, encoded %d", v, VarintLen(v), len(b))
		}
		got, rest, err := Varint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("varint %d: got %d rest=%d err=%v", v, got, len(rest), err)
		}
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	if _, _, err := Uvarint(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty uvarint: %v", err)
	}
	if _, _, err := U64([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short u64: %v", err)
	}
	if _, _, err := Key([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short key: %v", err)
	}
	// A byte string claiming more bytes than the buffer holds.
	b := AppendUvarint(nil, 1000)
	if _, _, err := Bytes(b); !errors.Is(err, ErrTruncated) {
		t.Fatalf("overlong byte string: %v", err)
	}
	if _, _, err := Bool([]byte{7}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad bool byte: %v", err)
	}
	// A slice count exceeding the buffer.
	c := AppendUvarint(nil, 1<<40)
	if _, _, err := I64s(c); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized slice count: %v", err)
	}
	// A u64-slice count whose byte size (n*8) would overflow uint64 must
	// still be rejected, not make a huge allocation or wrap the guard.
	d := AppendUvarint(nil, 1<<61)
	if _, _, err := U64s(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overflowing u64s count: %v", err)
	}
}

func TestBytesAliasing(t *testing.T) {
	src := AppendBytes(nil, []byte("payload"))
	p, _, err := Bytes(src)
	if err != nil || string(p) != "payload" {
		t.Fatalf("bytes round trip: %q err=%v", p, err)
	}
	// Arena contract: the decoded slice aliases the input buffer.
	if &p[0] != &src[len(src)-len(p)] {
		t.Fatal("decoded bytes must alias the input buffer (no copy)")
	}
}

func sampleEntries() []replication.Entry {
	return []replication.Entry{
		{Table: 3, Part: 7, Key: storage.K2(9, 11), TID: 1<<40 | 5,
			Row: []byte("rowbytes")},
		{Table: 1, Part: 0, Key: storage.K1(2), TID: 17, Absent: true, Row: nil},
		{Table: 2, Part: 15, Key: storage.K2(1, 2), TID: 99, Ops: []storage.FieldOp{
			storage.AddInt64Op(3, -40),
			storage.PrependOp(5, []byte("prefix")),
		}},
	}
}

func TestEntryRoundTrip(t *testing.T) {
	for i, e := range sampleEntries() {
		enc := AppendEntry(nil, &e)
		if len(enc) != EntryLen(&e) {
			t.Fatalf("entry %d: EntryLen=%d encoded=%d", i, EntryLen(&e), len(enc))
		}
		got, rest, err := DecodeEntry(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("entry %d decode: err=%v rest=%d", i, err, len(rest))
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("entry %d round trip:\n got %+v\nwant %+v", i, got, e)
		}
		if got.IsOp() != e.IsOp() {
			t.Fatalf("entry %d: IsOp changed across the wire", i)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := &replication.Batch{From: 3, Epoch: 12, Entries: sampleEntries()}
	enc := AppendBatch(nil, b)
	if len(enc) != BatchLen(b) {
		t.Fatalf("BatchLen=%d encoded=%d", BatchLen(b), len(enc))
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("batch round trip:\n got %+v\nwant %+v", got, b)
	}
	// Trailing garbage is corrupt, not ignored.
	if _, err := DecodeBatch(append(enc, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

type frameMsg struct{ V int }

func (frameMsg) Size() int { return 8 }

func TestFrameRoundTrip(t *testing.T) {
	c := NewCodec()
	c.Register(9, frameMsg{},
		func(b []byte, m transport.Message) []byte { return AppendVarint(b, int64(m.(frameMsg).V)) },
		func(b []byte) (transport.Message, []byte, error) {
			v, rest, err := Varint(b)
			return frameMsg{V: int(v)}, rest, err
		})
	frame, err := AppendFrame(nil, 2, 5, 1, c, frameMsg{V: -42})
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	// Body length prefix covers everything after the first 4 bytes.
	body := frame[4:]
	r := bytes.NewReader(frame)
	got, err := ReadFrame(r, 0)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("ReadFrame: %v (got %d bytes, want %d)", err, len(got), len(body))
	}
	fi, m, err := DecodeFrameBody(got, c)
	if err != nil {
		t.Fatalf("DecodeFrameBody: %v", err)
	}
	if fi.Src != 2 || fi.Dst != 5 || fi.Class != 1 || m.(frameMsg).V != -42 {
		t.Fatalf("frame fields: %+v %+v", fi, m)
	}
	if len(frame) != FrameOverhead+VarintLen(-42) {
		t.Fatalf("FrameOverhead accounting: frame=%d overhead=%d body=%d",
			len(frame), FrameOverhead, VarintLen(-42))
	}
	// Unknown message id is corrupt.
	bad := append([]byte(nil), got...)
	bad[5] = 200
	if _, _, err := DecodeFrameBody(bad, c); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown id: %v", err)
	}
}

// rejectBodyReader fails the test if ReadFrame asks for body bytes: an
// over-max length prefix must be rejected on the header alone.
type rejectBodyReader struct{ t *testing.T }

func (r rejectBodyReader) Read([]byte) (int, error) {
	r.t.Fatal("ReadFrame read body bytes for a rejected frame")
	return 0, io.EOF
}

// TestReadFrameLyingLength pins the untrusted-length-prefix hardening:
// a frame claiming more than max is rejected before any body read, and
// a frame claiming a huge (but accepted) length with almost no payload
// behind it costs memory proportional to the bytes that arrived, not to
// the claim.
func TestReadFrameLyingLength(t *testing.T) {
	// Claim over the cap: rejected from the header, no body read at all.
	hdr := binary.LittleEndian.AppendUint32(nil, MaxClientFrame+1)
	r := io.MultiReader(bytes.NewReader(hdr), rejectBodyReader{t})
	if _, err := ReadFrame(r, MaxClientFrame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-max claim: %v", err)
	}

	// Claim just under the default cap, deliver 16 bytes, then EOF.
	lying := binary.LittleEndian.AppendUint32(nil, MaxFrame-1)
	lying = append(lying, make([]byte, 16)...)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := ReadFrame(bytes.NewReader(lying), 0)
	runtime.ReadMemStats(&after)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated lying frame: %v", err)
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 1<<20 {
		t.Fatalf("lying 64MB prefix allocated %d bytes before payload arrived", alloc)
	}

	// A genuinely large frame still round-trips through the incremental
	// reader (growth path: several doublings).
	big := make([]byte, 5*frameReadChunk+123)
	for i := range big {
		big[i] = byte(i * 31)
	}
	framed := binary.LittleEndian.AppendUint32(nil, uint32(len(big)))
	framed = append(framed, big...)
	got, err := ReadFrame(iotest.OneByteReader(bytes.NewReader(framed)), 0)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large frame: err=%v len=%d want %d", err, len(got), len(big))
	}
}
