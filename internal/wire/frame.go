package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"star/internal/transport"
)

// Frame layout (the unit a TCP stream carries):
//
//	[u32 LE body length][body]
//	body = [class u8][src u16 LE][dst u16 LE][msg id u8][msg payload]
//
// The length prefix covers the body only. Src/dst ride in every frame so
// a receiving process can demux one stream into its local inboxes
// without per-connection state.

// FrameOverhead is the fixed per-frame cost excluding the message body:
// length prefix + class + src + dst + message type id.
const FrameOverhead = 4 + 1 + 2 + 2 + 1

// MaxFrame is the default bound a reader enforces on the body length —
// far above any legal message (snapshots dominate; they are shipped per
// partition per table) but small enough to reject corrupt prefixes
// before allocating.
const MaxFrame = 64 << 20

// MaxClientFrame bounds frames accepted from untrusted client
// connections. Client requests are a session header plus one procedure's
// parameters — kilobytes, not megabytes — so the front door rejects
// anything bigger before buffering it.
const MaxClientFrame = 1 << 20

// frameReadChunk is ReadFrame's initial/incremental buffer step: the
// length prefix is a claim, not a fact, so allocation grows with the
// bytes that actually arrive instead of trusting the header.
const frameReadChunk = 64 << 10

// AppendFrame appends a whole frame (length prefix included) for m.
func AppendFrame(b []byte, src, dst int, class transport.Class, c *Codec, m transport.Message) ([]byte, error) {
	if src < 0 || src > 0xffff || dst < 0 || dst > 0xffff {
		return b, fmt.Errorf("wire: endpoint out of range: src=%d dst=%d", src, dst)
	}
	lenAt := len(b)
	b = append(b, 0, 0, 0, 0) // patched below
	b = append(b, byte(class))
	b = binary.LittleEndian.AppendUint16(b, uint16(src))
	b = binary.LittleEndian.AppendUint16(b, uint16(dst))
	b, err := c.Append(b, m)
	if err != nil {
		return b[:lenAt], err
	}
	binary.LittleEndian.PutUint32(b[lenAt:], uint32(len(b)-lenAt-4))
	return b, nil
}

// FrameInfo is a decoded frame's routing header.
type FrameInfo struct {
	Src, Dst int
	Class    transport.Class
}

// DecodeFrameBody decodes a frame body (everything after the length
// prefix). The message's byte payloads alias body.
func DecodeFrameBody(body []byte, c *Codec) (FrameInfo, transport.Message, error) {
	var fi FrameInfo
	if len(body) < 5 {
		return fi, nil, fmt.Errorf("%w: %d-byte frame body", ErrTruncated, len(body))
	}
	fi.Class = transport.Class(body[0])
	if fi.Class >= transport.NumClasses {
		return fi, nil, fmt.Errorf("%w: traffic class %d", ErrCorrupt, body[0])
	}
	fi.Src = int(binary.LittleEndian.Uint16(body[1:]))
	fi.Dst = int(binary.LittleEndian.Uint16(body[3:]))
	m, err := c.Decode(body[5:])
	return fi, m, err
}

// ReadFrame reads one length-prefixed frame body from r into a fresh
// buffer (each frame owns its buffer so decoded messages may alias it
// for their whole lifetime). max bounds the body length (0 = MaxFrame).
//
// The length prefix is attacker-controlled on a real wire, so it is
// never trusted for allocation: the buffer starts at one chunk and grows
// (doubling, capped by the claimed length) only as payload bytes
// actually arrive. A peer that claims max bytes and sends none costs one
// 64 KiB chunk, not max; a claim over max is rejected before any
// allocation at all.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max == 0 {
		max = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("%w: %d-byte frame exceeds %d", ErrCorrupt, n, max)
	}
	body := make([]byte, min(n, frameReadChunk))
	filled := 0
	for filled < n {
		if filled == len(body) {
			grow := min(n-filled, len(body)) // double, capped by the claim
			nb := make([]byte, filled+grow)
			copy(nb, body)
			body = nb
		}
		got, err := io.ReadFull(r, body[filled:])
		filled += got
		if err != nil {
			return nil, err
		}
	}
	return body, nil
}
