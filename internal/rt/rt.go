// Package rt abstracts time, scheduling and message passing so that the
// same database-engine code can run in two modes:
//
//   - Real mode: ordinary goroutines, wall-clock time and Go channels.
//     Used by the public API, the examples and the race-detected
//     correctness tests.
//
//   - Sim mode: a deterministic cooperative discrete-event simulation.
//     Exactly one process runs at a time; time is virtual and advances
//     only through Sleep/Compute/timeouts. Used by the benchmark harness
//     to reproduce the paper's multi-node experiments on a small host.
//
// Engine code must follow two rules:
//
//  1. All blocking is done through Runtime primitives (never bare
//     time.Sleep or raw channel operations).
//  2. Every potentially unbounded loop performs at least one Runtime
//     call per iteration, since the simulator cannot preempt.
package rt

import (
	"errors"
	"time"
)

// ErrStopped is the panic value used to unwind processes when a runtime
// shuts down. Process bodies never observe it: the Go wrapper recovers it.
var ErrStopped = errors.New("rt: runtime stopped")

// Runtime is the execution substrate for engine processes.
type Runtime interface {
	// Now returns the elapsed time since the runtime started.
	// In sim mode this is virtual time.
	Now() time.Duration

	// Sleep blocks the calling process for d.
	Sleep(d time.Duration)

	// Compute models consuming CPU for d. In sim mode it advances the
	// process's clock (other processes run meanwhile, as if on other
	// cores); in real mode it is a no-op because the real work already
	// took real time. Compute(0) returns immediately in both modes.
	Compute(d time.Duration)

	// Go spawns a new process. The name is used in diagnostics.
	Go(name string, fn func())

	// NewChan creates a mailbox with the given buffer capacity.
	// Capacity 0 means rendezvous (sender blocks until receiver takes).
	NewChan(capacity int) Chan

	// Stopped reports whether Stop has been called.
	Stopped() bool
}

// Chan is a FIFO mailbox between processes.
//
// Send and Recv block; when the runtime stops they unwind the calling
// process (the unwind is recovered by the Go wrapper, so engine code may
// simply ignore shutdown).
type Chan interface {
	// Send enqueues v, blocking while the buffer is full.
	Send(v any)

	// TrySend enqueues v if buffer space is available and reports
	// whether it did. It never blocks.
	TrySend(v any) bool

	// Recv dequeues the next value, blocking while the mailbox is empty.
	Recv() any

	// TryRecv dequeues the next value if one is available.
	TryRecv() (any, bool)

	// RecvTimeout dequeues the next value, giving up after d.
	// ok is false on timeout.
	RecvTimeout(d time.Duration) (v any, ok bool)

	// Len returns the number of buffered values.
	Len() int
}

// Stop recovers the ErrStopped unwind. Runtime implementations use it in
// their Go wrappers; engine code that spawns raw goroutines in real mode
// may use it too.
func recoverStopped() {
	if r := recover(); r != nil {
		if err, ok := r.(error); ok && errors.Is(err, ErrStopped) {
			return
		}
		panic(r)
	}
}
