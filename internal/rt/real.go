package rt

import (
	"sync"
	"time"
)

// Real is the wall-clock Runtime backed by ordinary goroutines and Go
// channels. It is the substrate for the public API and the examples.
type Real struct {
	start time.Time
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// NewReal returns a running real-time runtime.
func NewReal() *Real {
	return &Real{start: time.Now(), stop: make(chan struct{})}
}

// Now returns wall-clock time elapsed since NewReal.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Sleep blocks for d or until the runtime stops.
func (r *Real) Sleep(d time.Duration) {
	if d <= 0 {
		r.checkStopped()
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.stop:
		panic(ErrStopped)
	}
}

// Compute is a no-op in real mode: the modelled work took real time.
func (r *Real) Compute(time.Duration) {}

// Go spawns fn on a goroutine tracked by Stop.
func (r *Real) Go(name string, fn func()) {
	_ = name
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer recoverStopped()
		fn()
	}()
}

// Stopped reports whether Stop has been called.
func (r *Real) Stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

func (r *Real) checkStopped() {
	if r.Stopped() {
		panic(ErrStopped)
	}
}

// Stop unblocks every process parked in a runtime primitive and waits for
// all of them to unwind. It is idempotent.
func (r *Real) Stop() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// NewChan returns a mailbox backed by a Go channel.
func (r *Real) NewChan(capacity int) Chan {
	return &realChan{rt: r, ch: make(chan any, capacity)}
}

type realChan struct {
	rt *Real
	ch chan any
}

func (c *realChan) Send(v any) {
	select {
	case c.ch <- v:
	case <-c.rt.stop:
		panic(ErrStopped)
	}
}

func (c *realChan) TrySend(v any) bool {
	select {
	case c.ch <- v:
		return true
	default:
		return false
	}
}

func (c *realChan) Recv() any {
	select {
	case v := <-c.ch:
		return v
	case <-c.rt.stop:
		panic(ErrStopped)
	}
}

func (c *realChan) TryRecv() (any, bool) {
	select {
	case v := <-c.ch:
		return v, true
	default:
		return nil, false
	}
}

func (c *realChan) RecvTimeout(d time.Duration) (any, bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case v := <-c.ch:
		return v, true
	case <-t.C:
		return nil, false
	case <-c.rt.stop:
		panic(ErrStopped)
	}
}

func (c *realChan) Len() int { return len(c.ch) }
