package rt

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealChanRoundTrip(t *testing.T) {
	r := NewReal()
	ch := r.NewChan(1)
	var got atomic.Int64
	r.Go("producer", func() {
		for i := 1; i <= 3; i++ {
			ch.Send(i)
		}
	})
	r.Go("consumer", func() {
		for i := 0; i < 3; i++ {
			got.Add(int64(ch.Recv().(int)))
		}
	})
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() != 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 6 {
		t.Fatalf("sum=%d, want 6", got.Load())
	}
	r.Stop()
}

func TestRealStopUnblocksSleepers(t *testing.T) {
	r := NewReal()
	exited := make(chan struct{})
	r.Go("sleeper", func() {
		defer close(exited)
		r.Sleep(time.Hour)
	})
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not unblock a parked sleeper")
	}
	<-exited
}

func TestRealStopUnblocksChannelWaiters(t *testing.T) {
	r := NewReal()
	ch := r.NewChan(0)
	r.Go("recv", func() { ch.Recv() })
	r.Go("send", func() { ch2 := r.NewChan(0); ch2.Send(1) })
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not unblock channel waiters")
	}
}

func TestRealRecvTimeout(t *testing.T) {
	r := NewReal()
	ch := r.NewChan(1)
	res := make(chan bool, 1)
	r.Go("waiter", func() {
		_, ok := ch.RecvTimeout(20 * time.Millisecond)
		res <- ok
	})
	select {
	case ok := <-res:
		if ok {
			t.Fatal("expected timeout")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvTimeout never returned")
	}
	r.Stop()
}

func TestRealComputeIsNoOp(t *testing.T) {
	r := NewReal()
	start := time.Now()
	r.Compute(time.Hour)
	if time.Since(start) > time.Second {
		t.Fatal("Compute must not block in real mode")
	}
	r.Stop()
}
