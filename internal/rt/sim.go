package rt

import (
	"container/heap"
	"fmt"
	"time"
)

// Sim is a deterministic cooperative discrete-event simulation Runtime.
//
// Processes are goroutines, but exactly one runs at a time: the scheduler
// hands control to a process and waits for it to yield inside a runtime
// primitive. Virtual time advances only when no process is runnable.
// Given the same spawn order and per-process RNG seeds, execution is
// fully deterministic.
type Sim struct {
	now     time.Duration
	seq     uint64 // event tiebreaker
	ready   []*simProc
	events  eventHeap
	procs   []*simProc
	live    int
	stopped bool
	running bool
	cur     *simProc

	// schedCh is signalled by the current process when it yields or exits.
	schedCh chan struct{}
}

// NewSim returns a simulation runtime at virtual time zero.
func NewSim() *Sim {
	return &Sim{schedCh: make(chan struct{})}
}

var _ Runtime = (*Sim)(nil)

type procState uint8

const (
	procReady procState = iota
	procRunning
	procParked
	procDone
)

type wake struct {
	stopped  bool
	timedOut bool
	val      any
}

type simProc struct {
	id      int
	name    string
	state   procState
	resume  chan wake
	pending wake
	fn      func()

	// waiter is the channel wait token this process is parked on, if any.
	waiter *waiter
	// timer is the pending timeout event, if any.
	timer *event
}

type event struct {
	at       time.Duration
	seq      uint64
	p        *simProc
	canceled bool
	timeout  bool // wake with timedOut=true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (s *Sim) nextSeq() uint64 { s.seq++; return s.seq }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

func (s *Sim) schedule(e *event) { heap.Push(&s.events, e) }

// enqueueWake makes p runnable with the given wake payload.
func (s *Sim) enqueueWake(p *simProc, w wake) {
	p.state = procReady
	p.pending = w
	s.ready = append(s.ready, p)
}

// Go spawns a new simulation process. It may be called before Run or from
// inside a running process.
func (s *Sim) Go(name string, fn func()) {
	p := &simProc{
		id:     len(s.procs),
		name:   name,
		resume: make(chan wake),
		fn:     fn,
	}
	s.procs = append(s.procs, p)
	s.live++
	go p.run(s)
	s.enqueueWake(p, wake{})
}

func (p *simProc) run(s *Sim) {
	w := <-p.resume // first activation
	if !w.stopped {
		func() {
			defer recoverStopped()
			p.fn()
		}()
	}
	p.state = procDone
	s.live--
	s.schedCh <- struct{}{}
}

// yield parks the calling process and hands control back to the
// scheduler; it returns when the scheduler wakes this process again.
func (s *Sim) yield(p *simProc) wake {
	p.state = procParked
	s.schedCh <- struct{}{}
	w := <-p.resume
	if w.stopped {
		panic(ErrStopped)
	}
	return w
}

// mustCur returns the currently running process, panicking if the caller
// is not a simulation process (e.g. the test goroutine).
func (s *Sim) mustCur() *simProc {
	if s.cur == nil || s.cur.state != procRunning {
		panic("rt: Sim primitive called from outside a simulation process")
	}
	return s.cur
}

// Sleep advances this process to now+d.
func (s *Sim) Sleep(d time.Duration) {
	if s.stopped {
		panic(ErrStopped)
	}
	p := s.mustCur()
	if d < 0 {
		d = 0
	}
	s.schedule(&event{at: s.now + d, seq: s.nextSeq(), p: p})
	s.yield(p)
}

// Compute models d of CPU time; other processes run concurrently in
// virtual time, as if this process had its own core.
func (s *Sim) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	s.Sleep(d)
}

// NewChan returns a simulated mailbox.
func (s *Sim) NewChan(capacity int) Chan {
	return &simChan{s: s, capacity: capacity}
}

// Run executes the simulation until virtual time reaches `until`, or until
// every process is parked with no pending events (quiescence). It returns
// the virtual time at which it stopped.
func (s *Sim) Run(until time.Duration) time.Duration {
	if s.running {
		panic("rt: Sim.Run reentered")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		if len(s.ready) == 0 {
			// Advance virtual time to the next event.
			fired := false
			for s.events.Len() > 0 {
				e := s.events[0]
				if e.canceled {
					heap.Pop(&s.events)
					continue
				}
				if e.at > until {
					break
				}
				heap.Pop(&s.events)
				if e.at > s.now {
					s.now = e.at
				}
				s.fire(e)
				fired = true
				break
			}
			if fired {
				continue
			}
			// No runnable process and no event within the horizon.
			if s.events.Len() > 0 {
				s.now = until
			}
			return s.now
		}
		p := s.ready[0]
		s.ready = s.ready[1:]
		s.resume(p)
	}
}

// Quiescent reports whether the simulation has neither runnable processes
// nor pending events (all live processes are parked forever).
func (s *Sim) Quiescent() bool {
	if len(s.ready) > 0 {
		return false
	}
	for _, e := range s.events {
		if !e.canceled {
			return false
		}
	}
	return true
}

// LiveProcs returns the number of processes that have not exited.
func (s *Sim) LiveProcs() int { return s.live }

func (s *Sim) fire(e *event) {
	p := e.p
	if p.state == procDone {
		return
	}
	p.timer = nil
	if e.timeout {
		// Timeout on a channel wait: cancel the wait token.
		if p.waiter != nil {
			p.waiter.canceled = true
			p.waiter = nil
		}
		s.enqueueWake(p, wake{timedOut: true})
		return
	}
	s.enqueueWake(p, wake{})
}

// resume hands the execution token to p and blocks until p yields back.
func (s *Sim) resume(p *simProc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	s.cur = p
	w := p.pending
	p.pending = wake{}
	p.resume <- w
	<-s.schedCh
	s.cur = nil
}

// Stop unwinds every live process deterministically and waits for them to
// exit. After Stop the Sim must not be reused.
func (s *Sim) Stop() {
	s.stopped = true
	for _, p := range s.procs {
		if p.state == procDone || p.state == procRunning {
			continue
		}
		p.pending = wake{stopped: true}
		s.resume(p)
	}
	if s.live != 0 {
		panic(fmt.Sprintf("rt: %d processes survived Stop", s.live))
	}
}

// DumpParked returns the names of processes that are parked; useful in
// tests to diagnose unexpected quiescence (i.e. deadlock).
func (s *Sim) DumpParked() []string {
	var names []string
	for _, p := range s.procs {
		if p.state == procParked {
			names = append(names, p.name)
		}
	}
	return names
}

// ---- simulated channels ----

type waiter struct {
	p        *simProc
	val      any // value carried by a parked sender
	canceled bool
}

type simChan struct {
	s        *Sim
	capacity int
	buf      []any
	sendq    []*waiter
	recvq    []*waiter
}

func (c *simChan) Len() int { return len(c.buf) }

func (c *simChan) popRecv() *waiter {
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		if !w.canceled {
			return w
		}
	}
	return nil
}

func (c *simChan) popSend() *waiter {
	for len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		if !w.canceled {
			return w
		}
	}
	return nil
}

// wakeWaiter makes w's process runnable, cancelling any pending timeout.
func (c *simChan) wakeWaiter(w *waiter, wk wake) {
	p := w.p
	p.waiter = nil
	if p.timer != nil {
		p.timer.canceled = true
		p.timer = nil
	}
	c.s.enqueueWake(p, wk)
}

func (c *simChan) Send(v any) {
	s := c.s
	if s.stopped {
		panic(ErrStopped)
	}
	if r := c.popRecv(); r != nil {
		c.wakeWaiter(r, wake{val: v})
		return
	}
	if len(c.buf) < c.capacity {
		c.buf = append(c.buf, v)
		return
	}
	// Buffer full (or rendezvous): park as a sender.
	p := s.mustCur()
	w := &waiter{p: p, val: v}
	p.waiter = w
	c.sendq = append(c.sendq, w)
	s.yield(p)
}

func (c *simChan) TrySend(v any) bool {
	s := c.s
	if s.stopped {
		panic(ErrStopped)
	}
	if r := c.popRecv(); r != nil {
		c.wakeWaiter(r, wake{val: v})
		return true
	}
	if len(c.buf) < c.capacity {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// take removes the next available value assuming one exists.
func (c *simChan) take() any {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		// Promote a parked sender into the freed buffer slot.
		if w := c.popSend(); w != nil {
			c.buf = append(c.buf, w.val)
			c.wakeWaiter(w, wake{})
		}
		return v
	}
	if w := c.popSend(); w != nil { // rendezvous
		v := w.val
		c.wakeWaiter(w, wake{})
		return v
	}
	panic("rt: take on empty channel")
}

func (c *simChan) available() bool {
	if len(c.buf) > 0 {
		return true
	}
	for _, w := range c.sendq {
		if !w.canceled {
			return true
		}
	}
	return false
}

func (c *simChan) Recv() any {
	s := c.s
	if s.stopped {
		panic(ErrStopped)
	}
	if c.available() {
		return c.take()
	}
	p := s.mustCur()
	w := &waiter{p: p}
	p.waiter = w
	c.recvq = append(c.recvq, w)
	wk := s.yield(p)
	return wk.val
}

func (c *simChan) TryRecv() (any, bool) {
	if c.s.stopped {
		panic(ErrStopped)
	}
	if c.available() {
		return c.take(), true
	}
	return nil, false
}

func (c *simChan) RecvTimeout(d time.Duration) (any, bool) {
	s := c.s
	if s.stopped {
		panic(ErrStopped)
	}
	if c.available() {
		return c.take(), true
	}
	if d <= 0 {
		return nil, false
	}
	p := s.mustCur()
	w := &waiter{p: p}
	p.waiter = w
	c.recvq = append(c.recvq, w)
	ev := &event{at: s.now + d, seq: s.nextSeq(), p: p, timeout: true}
	p.timer = ev
	s.schedule(ev)
	wk := s.yield(p)
	if wk.timedOut {
		return nil, false
	}
	return wk.val, true
}
