package rt

import (
	"fmt"
	"testing"
	"time"
)

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	s := NewSim()
	var woke time.Duration
	s.Go("sleeper", func() {
		s.Sleep(5 * time.Millisecond)
		woke = s.Now()
	})
	end := s.Run(time.Second)
	if woke != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if end != 5*time.Millisecond {
		t.Fatalf("run ended at %v, want 5ms (quiescent)", end)
	}
	if !s.Quiescent() {
		t.Fatal("expected quiescent simulation")
	}
	s.Stop()
}

func TestSimComputeRunsInParallelVirtualTime(t *testing.T) {
	// N processes each computing 10ms finish at 10ms total, not N*10ms:
	// each simulated worker has its own core.
	s := NewSim()
	finish := make([]time.Duration, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Go(fmt.Sprintf("w%d", i), func() {
			s.Compute(10 * time.Millisecond)
			finish[i] = s.Now()
		})
	}
	s.Run(time.Second)
	for i, f := range finish {
		if f != 10*time.Millisecond {
			t.Fatalf("worker %d finished at %v, want 10ms", i, f)
		}
	}
	s.Stop()
}

func TestSimChanFIFOAndBlocking(t *testing.T) {
	s := NewSim()
	ch := s.NewChan(2)
	var got []int
	s.Go("producer", func() {
		for i := 0; i < 5; i++ {
			ch.Send(i) // blocks when buffer full
		}
	})
	s.Go("consumer", func() {
		for i := 0; i < 5; i++ {
			s.Sleep(time.Millisecond)
			got = append(got, ch.Recv().(int))
		}
	})
	s.Run(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d]=%d, want %d (FIFO)", i, v, i)
		}
	}
	if len(got) != 5 {
		t.Fatalf("received %d values, want 5", len(got))
	}
	s.Stop()
}

func TestSimRendezvousChan(t *testing.T) {
	s := NewSim()
	ch := s.NewChan(0)
	var sentAt, recvAt time.Duration
	s.Go("sender", func() {
		ch.Send("x")
		sentAt = s.Now()
	})
	s.Go("receiver", func() {
		s.Sleep(3 * time.Millisecond)
		if v := ch.Recv(); v != "x" {
			t.Errorf("recv %v", v)
		}
		recvAt = s.Now()
	})
	s.Run(time.Second)
	if sentAt != 3*time.Millisecond || recvAt != 3*time.Millisecond {
		t.Fatalf("sentAt=%v recvAt=%v, want 3ms", sentAt, recvAt)
	}
	s.Stop()
}

func TestSimRecvTimeout(t *testing.T) {
	s := NewSim()
	ch := s.NewChan(1)
	var timedOut bool
	var v any
	var at time.Duration
	s.Go("waiter", func() {
		_, ok := ch.RecvTimeout(2 * time.Millisecond)
		timedOut = !ok
		at = s.Now()
		// Second wait succeeds before the deadline.
		v, ok = ch.RecvTimeout(10 * time.Millisecond)
		if !ok {
			t.Error("second RecvTimeout timed out")
		}
	})
	s.Go("sender", func() {
		s.Sleep(5 * time.Millisecond)
		ch.Send(42)
	})
	s.Run(time.Second)
	if !timedOut || at != 2*time.Millisecond {
		t.Fatalf("timedOut=%v at=%v, want timeout at 2ms", timedOut, at)
	}
	if v != 42 {
		t.Fatalf("v=%v, want 42", v)
	}
	s.Stop()
}

func TestSimDeterminism(t *testing.T) {
	runOnce := func() []string {
		s := NewSim()
		ch := s.NewChan(4)
		var trace []string
		for i := 0; i < 3; i++ {
			i := i
			s.Go(fmt.Sprintf("p%d", i), func() {
				for j := 0; j < 3; j++ {
					s.Sleep(time.Duration(i+1) * time.Millisecond)
					ch.Send(fmt.Sprintf("p%d-%d@%v", i, j, s.Now()))
				}
			})
		}
		s.Go("drain", func() {
			for k := 0; k < 9; k++ {
				trace = append(trace, ch.Recv().(string))
			}
		})
		s.Run(time.Second)
		s.Stop()
		return trace
	}
	a, b := runOnce(), runOnce()
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("trace lengths %d, %d; want 9", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSimStopUnwindsParkedProcs(t *testing.T) {
	s := NewSim()
	ch := s.NewChan(0)
	cleaned := 0
	for i := 0; i < 3; i++ {
		s.Go("blocked", func() {
			defer func() { cleaned++ }()
			ch.Recv() // parked forever
		})
	}
	s.Run(10 * time.Millisecond)
	if got := len(s.DumpParked()); got != 3 {
		t.Fatalf("parked=%d, want 3", got)
	}
	s.Stop()
	if cleaned != 3 {
		t.Fatalf("cleaned=%d, want 3 (defers must run on Stop)", cleaned)
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("live=%d, want 0", s.LiveProcs())
	}
}

func TestSimRunHorizon(t *testing.T) {
	s := NewSim()
	ticks := 0
	s.Go("ticker", func() {
		for {
			s.Sleep(time.Millisecond)
			ticks++
		}
	})
	end := s.Run(10 * time.Millisecond)
	if end != 10*time.Millisecond {
		t.Fatalf("end=%v, want 10ms", end)
	}
	if ticks != 10 {
		t.Fatalf("ticks=%d, want 10", ticks)
	}
	// Resuming the same sim continues where it left off.
	s.Run(15 * time.Millisecond)
	if ticks != 15 {
		t.Fatalf("ticks=%d after resume, want 15", ticks)
	}
	s.Stop()
}

func TestSimTrySendTryRecv(t *testing.T) {
	s := NewSim()
	ch := s.NewChan(1)
	s.Go("p", func() {
		if _, ok := ch.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		if !ch.TrySend(1) {
			t.Error("TrySend on empty chan failed")
		}
		if ch.TrySend(2) {
			t.Error("TrySend on full chan succeeded")
		}
		if v, ok := ch.TryRecv(); !ok || v != 1 {
			t.Errorf("TryRecv got %v,%v", v, ok)
		}
	})
	s.Run(time.Second)
	s.Stop()
}

func TestSimGoFromInsideProcess(t *testing.T) {
	s := NewSim()
	done := false
	s.Go("parent", func() {
		s.Go("child", func() {
			s.Sleep(time.Millisecond)
			done = true
		})
		s.Sleep(2 * time.Millisecond)
	})
	s.Run(time.Second)
	if !done {
		t.Fatal("child process did not run")
	}
	s.Stop()
}

func TestSimRecvTimeoutZeroNeverBlocks(t *testing.T) {
	s := NewSim()
	ch := s.NewChan(1)
	s.Go("p", func() {
		if _, ok := ch.RecvTimeout(0); ok {
			t.Error("RecvTimeout(0) on empty chan must fail")
		}
		ch.Send(7)
		if v, ok := ch.RecvTimeout(0); !ok || v != 7 {
			t.Errorf("RecvTimeout(0) with buffered value: %v %v", v, ok)
		}
	})
	s.Run(time.Millisecond)
	if !s.Quiescent() {
		t.Fatal("must be quiescent")
	}
	s.Stop()
}

func TestSimNegativeSleepIsImmediate(t *testing.T) {
	s := NewSim()
	var at time.Duration = -1
	s.Go("p", func() {
		s.Sleep(-5 * time.Millisecond)
		at = s.Now()
	})
	s.Run(time.Second)
	if at != 0 {
		t.Fatalf("negative sleep woke at %v", at)
	}
	s.Stop()
}

func TestSimStoppedPrimitivesPanicCleanly(t *testing.T) {
	s := NewSim()
	ch := s.NewChan(1)
	s.Go("p", func() { s.Sleep(time.Hour) })
	s.Run(time.Millisecond)
	s.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("Send after Stop must panic with ErrStopped")
		}
	}()
	ch.Send(1)
}
