// Package simnet provides the cluster network substrate: a full mesh of
// FIFO links between nodes with configurable one-way latency, jitter and
// per-node egress bandwidth (token-bucket pacing, modelling the ~4.8
// Gbit/s NIC the paper's EC2 nodes had). It runs on either rt runtime.
//
// Per-link FIFO ordering is guaranteed, which is what STAR's operation
// replication relies on (§5: deltas from a partition's single writer
// thread arrive in commit order).
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"star/internal/rt"
)

// Message is anything sent over the network. Size is the modelled wire
// size in bytes, used for bandwidth pacing and byte accounting.
type Message interface{ Size() int }

// Class buckets traffic for accounting.
type Class uint8

const (
	// Control is coordination traffic (fences, phase switches, acks).
	Control Class = iota
	// Data is transaction execution traffic (remote reads, lock
	// requests, 2PC rounds).
	Data
	// Replication is the replication stream.
	Replication
	numClasses
)

// Config parameterises the network.
type Config struct {
	Nodes int
	// Latency is the one-way propagation delay between distinct nodes.
	Latency time.Duration
	// Jitter adds a uniform [0,Jitter) delay per message.
	Jitter time.Duration
	// Bandwidth is each node's egress capacity in bytes/second;
	// 0 disables pacing.
	Bandwidth float64
	// InboxCap bounds each node's inbox (backpressure); 0 means 65536.
	InboxCap int
	// Seed drives the jitter RNG.
	Seed int64
}

type envelope struct {
	at  time.Duration
	msg Message
}

type link struct {
	queue  rt.Chan
	lastAt time.Duration
}

// Network is a full mesh of FIFO links plus per-node inboxes.
type Network struct {
	r   rt.Runtime
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	nextFree []time.Duration // per-node egress availability
	links    [][]*link
	down     []bool

	inboxes []rt.Chan

	bytesByClass [numClasses]int64
	msgsByClass  [numClasses]int64
	bytesFrom    []int64
	dropped      int64
}

// New builds the network and spawns one deliverer process per link.
func New(r rt.Runtime, cfg Config) *Network {
	if cfg.InboxCap == 0 {
		cfg.InboxCap = 65536
	}
	n := &Network{
		r:         r,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nextFree:  make([]time.Duration, cfg.Nodes),
		links:     make([][]*link, cfg.Nodes),
		down:      make([]bool, cfg.Nodes),
		inboxes:   make([]rt.Chan, cfg.Nodes),
		bytesFrom: make([]int64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.inboxes[i] = r.NewChan(cfg.InboxCap)
	}
	for src := 0; src < cfg.Nodes; src++ {
		n.links[src] = make([]*link, cfg.Nodes)
		for dst := 0; dst < cfg.Nodes; dst++ {
			if src == dst {
				continue
			}
			l := &link{queue: r.NewChan(cfg.InboxCap)}
			n.links[src][dst] = l
			n.spawnDeliverer(src, dst, l)
		}
	}
	return n
}

func (n *Network) spawnDeliverer(src, dst int, l *link) {
	n.r.Go(fmt.Sprintf("net-link-%d-%d", src, dst), func() {
		for {
			env := l.queue.Recv().(envelope)
			if d := env.at - n.r.Now(); d > 0 {
				n.r.Sleep(d)
			}
			n.mu.Lock()
			drop := n.down[src] || n.down[dst]
			n.mu.Unlock()
			if drop {
				continue
			}
			n.inboxes[dst].Send(env.msg)
		}
	})
}

// Inbox returns node dst's receive mailbox.
func (n *Network) Inbox(dst int) rt.Chan { return n.inboxes[dst] }

// Send ships m from src to dst. Local sends (src==dst) bypass the wire
// and still preserve FIFO order with respect to other local sends.
// Send never blocks unless the link queue is full (backpressure).
func (n *Network) Send(src, dst int, class Class, m Message) {
	size := m.Size()
	n.mu.Lock()
	if n.down[src] || n.down[dst] {
		n.dropped++
		n.mu.Unlock()
		return
	}
	n.bytesByClass[class] += int64(size)
	n.msgsByClass[class]++
	n.bytesFrom[src] += int64(size)
	if src == dst {
		n.mu.Unlock()
		n.inboxes[dst].Send(m)
		return
	}
	now := n.r.Now()
	start := now
	if n.nextFree[src] > start {
		start = n.nextFree[src]
	}
	var tx time.Duration
	if n.cfg.Bandwidth > 0 {
		tx = time.Duration(float64(size) / n.cfg.Bandwidth * float64(time.Second))
	}
	n.nextFree[src] = start + tx
	at := start + tx + n.cfg.Latency
	if n.cfg.Jitter > 0 {
		at += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	l := n.links[src][dst]
	if at < l.lastAt {
		at = l.lastAt // enforce per-link FIFO
	}
	l.lastAt = at
	n.mu.Unlock()
	l.queue.Send(envelope{at: at, msg: m})
}

// SetDown marks a node failed (true) or healthy (false). Messages to or
// from a down node are silently dropped, as with a crashed process.
func (n *Network) SetDown(node int, down bool) {
	n.mu.Lock()
	n.down[node] = down
	n.mu.Unlock()
}

// IsDown reports the failure flag for node.
func (n *Network) IsDown(node int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[node]
}

// Bytes returns the bytes sent in the given class.
func (n *Network) Bytes(c Class) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytesByClass[c]
}

// Messages returns the message count in the given class.
func (n *Network) Messages(c Class) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgsByClass[c]
}

// TotalBytes returns all bytes sent.
func (n *Network) TotalBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var t int64
	for _, b := range n.bytesByClass {
		t += b
	}
	return t
}

// BytesFrom returns the bytes node src has sent.
func (n *Network) BytesFrom(src int) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytesFrom[src]
}

// Dropped returns the number of messages dropped due to down nodes.
func (n *Network) Dropped() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}
