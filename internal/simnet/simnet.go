// Package simnet provides the cluster network substrate: a full mesh of
// FIFO links between nodes with configurable one-way latency, jitter and
// per-node egress bandwidth (token-bucket pacing, modelling the ~4.8
// Gbit/s NIC the paper's EC2 nodes had). It runs on either rt runtime.
//
// Per-link FIFO ordering is guaranteed per sending goroutine: one
// process's sends on a link are delivered in send order, which is what
// STAR's operation replication relies on (§5: a partition has a single
// writer thread, so its deltas arrive in commit order). Interleaving
// between *different* senders sharing a link carries no ordering
// promise — on the real runtime the enqueue happens outside the link
// lock, so two concurrently sending workers may enter the queue in
// either order.
//
// Locking is per-resource, not global: the enqueue path takes the
// sender's egress gate and then the link's own lock, so concurrent
// workers shipping replication batches to different destinations never
// serialise on a network-wide mutex, and byte/message accounting is
// lock-free.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"star/internal/rt"
	"star/internal/transport"
)

// Message aliases the transport message contract (modelled wire size in
// bytes, used here for bandwidth pacing and byte accounting).
type Message = transport.Message

// Class aliases the transport traffic class.
type Class = transport.Class

// Traffic classes, re-exported for call-site brevity.
const (
	Control     = transport.Control
	Data        = transport.Data
	Replication = transport.Replication
	numClasses  = transport.NumClasses
)

// Network implements transport.Transport.
var _ transport.Transport = (*Network)(nil)

// Config parameterises the network.
type Config struct {
	Nodes int
	// Latency is the one-way propagation delay between distinct nodes.
	Latency time.Duration
	// Jitter adds a uniform [0,Jitter) delay per message.
	Jitter time.Duration
	// Bandwidth is each node's egress capacity in bytes/second;
	// 0 disables pacing.
	Bandwidth float64
	// InboxCap bounds each node's inbox (backpressure); 0 means 65536.
	InboxCap int
	// Seed drives the jitter RNGs (each link derives its own stream).
	Seed int64
}

type envelope struct {
	at  time.Duration
	msg Message
}

// link is one src→dst FIFO pipe. Its lock covers only this link's jitter
// RNG and FIFO watermark, so traffic to other destinations is unaffected.
type link struct {
	queue  rt.Chan
	mu     sync.Mutex
	rng    *rand.Rand
	lastAt time.Duration
}

// egressGate serialises a node's NIC: senders reserve wire time here.
// Padded so gates of neighbouring nodes don't share a cache line.
type egressGate struct {
	mu       sync.Mutex
	nextFree time.Duration
	_        [48]byte // mutex(8) + nextFree(8) + 48 = one 64-byte line
}

// Network is a full mesh of FIFO links plus per-node inboxes.
type Network struct {
	r   rt.Runtime
	cfg Config

	links  [][]*link
	egress []egressGate
	down   []atomic.Bool

	inboxes []rt.Chan

	bytesByClass [numClasses]atomic.Int64
	msgsByClass  [numClasses]atomic.Int64
	bytesFrom    []atomic.Int64
	dropped      atomic.Int64
}

// New builds the network and spawns one deliverer process per link.
func New(r rt.Runtime, cfg Config) *Network {
	if cfg.InboxCap == 0 {
		cfg.InboxCap = 65536
	}
	n := &Network{
		r:         r,
		cfg:       cfg,
		links:     make([][]*link, cfg.Nodes),
		egress:    make([]egressGate, cfg.Nodes),
		down:      make([]atomic.Bool, cfg.Nodes),
		inboxes:   make([]rt.Chan, cfg.Nodes),
		bytesFrom: make([]atomic.Int64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.inboxes[i] = r.NewChan(cfg.InboxCap)
	}
	for src := 0; src < cfg.Nodes; src++ {
		n.links[src] = make([]*link, cfg.Nodes)
		for dst := 0; dst < cfg.Nodes; dst++ {
			if src == dst {
				continue
			}
			l := &link{
				queue: r.NewChan(cfg.InboxCap),
				rng:   rand.New(rand.NewSource(cfg.Seed ^ linkSeed(src, dst))),
			}
			n.links[src][dst] = l
			n.spawnDeliverer(src, dst, l)
		}
	}
	return n
}

// linkSeed derives a distinct deterministic RNG stream per (src,dst).
func linkSeed(src, dst int) int64 {
	return int64(uint64(src<<20|dst) * 0x9e3779b97f4a7c15 >> 1)
}

func (n *Network) spawnDeliverer(src, dst int, l *link) {
	n.r.Go(fmt.Sprintf("net-link-%d-%d", src, dst), func() {
		for {
			env := l.queue.Recv().(envelope)
			if d := env.at - n.r.Now(); d > 0 {
				n.r.Sleep(d)
			}
			if n.down[src].Load() || n.down[dst].Load() {
				n.dropped.Add(1)
				continue
			}
			n.inboxes[dst].Send(env.msg)
		}
	})
}

// Inbox returns node dst's receive mailbox.
func (n *Network) Inbox(dst int) rt.Chan { return n.inboxes[dst] }

// Send ships m from src to dst. Local sends (src==dst) bypass the wire
// and still preserve FIFO order with respect to other local sends.
// Send never blocks unless the link queue is full (backpressure).
func (n *Network) Send(src, dst int, class Class, m Message) {
	size := m.Size()
	if n.down[src].Load() || n.down[dst].Load() {
		n.dropped.Add(1)
		return
	}
	n.bytesByClass[class].Add(int64(size))
	n.msgsByClass[class].Add(1)
	n.bytesFrom[src].Add(int64(size))
	if src == dst {
		n.inboxes[dst].Send(m)
		return
	}
	// Reserve wire time on the sender's NIC (shared across destinations).
	eg := &n.egress[src]
	eg.mu.Lock()
	start := n.r.Now()
	if eg.nextFree > start {
		start = eg.nextFree
	}
	var tx time.Duration
	if n.cfg.Bandwidth > 0 {
		tx = time.Duration(float64(size) / n.cfg.Bandwidth * float64(time.Second))
	}
	eg.nextFree = start + tx
	eg.mu.Unlock()
	// Stamp the delivery time under the link's own lock (jitter RNG +
	// FIFO watermark are per-link state).
	l := n.links[src][dst]
	l.mu.Lock()
	at := start + tx + n.cfg.Latency
	if n.cfg.Jitter > 0 {
		at += time.Duration(l.rng.Int63n(int64(n.cfg.Jitter)))
	}
	if at < l.lastAt {
		at = l.lastAt // enforce per-link FIFO
	}
	l.lastAt = at
	l.mu.Unlock()
	l.queue.Send(envelope{at: at, msg: m})
}

// SetDown marks a node failed (true) or healthy (false). Messages to or
// from a down node are silently dropped, as with a crashed process.
func (n *Network) SetDown(node int, down bool) { n.down[node].Store(down) }

// IsDown reports the failure flag for node.
func (n *Network) IsDown(node int) bool { return n.down[node].Load() }

// Bytes returns the bytes sent in the given class.
func (n *Network) Bytes(c Class) int64 { return n.bytesByClass[c].Load() }

// Messages returns the message count in the given class.
func (n *Network) Messages(c Class) int64 { return n.msgsByClass[c].Load() }

// TotalBytes returns all bytes sent.
func (n *Network) TotalBytes() int64 {
	var t int64
	for i := range n.bytesByClass {
		t += n.bytesByClass[i].Load()
	}
	return t
}

// BytesFrom returns the bytes node src has sent.
func (n *Network) BytesFrom(src int) int64 { return n.bytesFrom[src].Load() }

// Dropped returns the number of messages dropped due to down nodes.
func (n *Network) Dropped() int64 { return n.dropped.Load() }
