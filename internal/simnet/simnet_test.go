package simnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/transport"
	"star/internal/transport/conformance"
)

type testMsg struct {
	id    int
	bytes int
}

func (m testMsg) Size() int { return m.bytes }

// TestConformanceSim runs the shared transport contract suite on the
// simulated runtime (the generic FIFO/SetDown/accounting tests live
// there; this file keeps only simnet's physics: latency, jitter,
// bandwidth pacing).
func TestConformanceSim(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Cluster {
		s := rt.NewSim()
		t.Cleanup(s.Stop)
		n := New(s, Config{Nodes: 3, Latency: 20 * time.Microsecond, Seed: 11})
		procs := 0
		return &conformance.Cluster{
			Endpoint:  func(int) transport.Transport { return n },
			Endpoints: 3,
			Spawn: func(fn func()) {
				procs++
				s.Go(fmt.Sprintf("conf-%d", procs), fn)
			},
			Settle: func() { s.Run(s.Now() + 30*time.Second) },
			Msg:    func(id, size int) transport.Message { return testMsg{id: id, bytes: size} },
			MsgID:  func(m any) int { return m.(testMsg).id },
			Yield:  func() { s.Sleep(time.Millisecond) },
		}
	})
}

// TestConformanceReal runs the same suite on the wall-clock runtime.
func TestConformanceReal(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Cluster {
		r := rt.NewReal()
		t.Cleanup(r.Stop)
		n := New(r, Config{Nodes: 3, Latency: 100 * time.Microsecond, Seed: 11})
		var wg sync.WaitGroup
		return &conformance.Cluster{
			Endpoint:  func(int) transport.Transport { return n },
			Endpoints: 3,
			Spawn: func(fn func()) {
				wg.Add(1)
				r.Go("conf", func() {
					defer wg.Done()
					fn()
				})
			},
			Settle: func() {
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatal("conformance processes did not settle")
				}
			},
			Msg:   func(id, size int) transport.Message { return testMsg{id: id, bytes: size} },
			MsgID: func(m any) int { return m.(testMsg).id },
			Yield: func() { r.Sleep(200 * time.Microsecond) },
		}
	})
}

func TestLatencyApplied(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 2, Latency: 100 * time.Microsecond})
	var recvAt time.Duration
	s.Go("sender", func() { n.Send(0, 1, Data, testMsg{1, 64}) })
	s.Go("receiver", func() {
		n.Inbox(1).Recv()
		recvAt = s.Now()
	})
	s.Run(time.Second)
	if recvAt != 100*time.Microsecond {
		t.Fatalf("delivered at %v, want 100µs", recvAt)
	}
	s.Stop()
}

func TestPerLinkFIFOWithJitter(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 2, Latency: 50 * time.Microsecond, Jitter: 200 * time.Microsecond, Seed: 7})
	var got []int
	s.Go("sender", func() {
		for i := 0; i < 50; i++ {
			n.Send(0, 1, Replication, testMsg{i, 32})
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < 50; i++ {
			got = append(got, n.Inbox(1).Recv().(testMsg).id)
		}
	})
	s.Run(time.Second)
	for i, id := range got {
		if id != i {
			t.Fatalf("message %d arrived out of order (got id %d); FIFO violated", i, id)
		}
	}
	s.Stop()
}

func TestBandwidthPacing(t *testing.T) {
	s := rt.NewSim()
	// 1 MB/s: a 100 KB message takes 100ms of wire time.
	n := New(s, Config{Nodes: 2, Latency: 0, Bandwidth: 1 << 20})
	var last time.Duration
	s.Go("sender", func() {
		for i := 0; i < 5; i++ {
			n.Send(0, 1, Data, testMsg{i, 100 << 10})
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < 5; i++ {
			n.Inbox(1).Recv()
			last = s.Now()
		}
	})
	s.Run(10 * time.Second)
	// 5 * 100KB at 1MB/s ≈ 488ms serialisation.
	want := time.Duration(5 * float64(100<<10) / float64(1<<20) * float64(time.Second))
	if last < want-10*time.Millisecond || last > want+10*time.Millisecond {
		t.Fatalf("last delivery at %v, want ≈%v (bandwidth pacing)", last, want)
	}
	s.Stop()
}

func TestEgressSharedAcrossDestinations(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 3, Latency: 0, Bandwidth: 1 << 20})
	var t1, t2 time.Duration
	s.Go("sender", func() {
		n.Send(0, 1, Data, testMsg{1, 512 << 10})
		n.Send(0, 2, Data, testMsg{2, 512 << 10})
	})
	s.Go("r1", func() { n.Inbox(1).Recv(); t1 = s.Now() })
	s.Go("r2", func() { n.Inbox(2).Recv(); t2 = s.Now() })
	s.Run(10 * time.Second)
	// Second message waits for the first on the shared NIC: ~0.5s then ~1s.
	if t1 < 400*time.Millisecond || t2 < 900*time.Millisecond {
		t.Fatalf("t1=%v t2=%v; egress must be shared per node", t1, t2)
	}
	s.Stop()
}

// FIFO must survive the combination of jitter and bandwidth pacing —
// exactly the conditions STAR's operation replication depends on (§5).
func TestPerLinkFIFOUnderBandwidthAndJitter(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{
		Nodes:     2,
		Latency:   30 * time.Microsecond,
		Jitter:    500 * time.Microsecond,
		Bandwidth: 1 << 22, // 4 MB/s: pacing interleaves with jitter
		Seed:      99,
	})
	const msgs = 200
	var got []int
	s.Go("sender", func() {
		for i := 0; i < msgs; i++ {
			n.Send(0, 1, Replication, testMsg{i, 100 + i%700})
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < msgs; i++ {
			got = append(got, n.Inbox(1).Recv().(testMsg).id)
		}
	})
	s.Run(10 * time.Second)
	if len(got) != msgs {
		t.Fatalf("delivered %d/%d", len(got), msgs)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("message %d out of order (id %d)", i, id)
		}
	}
	s.Stop()
}
