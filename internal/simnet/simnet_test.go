package simnet

import (
	"testing"
	"time"

	"star/internal/rt"
)

type testMsg struct {
	id    int
	bytes int
}

func (m testMsg) Size() int { return m.bytes }

func TestLatencyApplied(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 2, Latency: 100 * time.Microsecond})
	var recvAt time.Duration
	s.Go("sender", func() { n.Send(0, 1, Data, testMsg{1, 64}) })
	s.Go("receiver", func() {
		n.Inbox(1).Recv()
		recvAt = s.Now()
	})
	s.Run(time.Second)
	if recvAt != 100*time.Microsecond {
		t.Fatalf("delivered at %v, want 100µs", recvAt)
	}
	s.Stop()
}

func TestPerLinkFIFOWithJitter(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 2, Latency: 50 * time.Microsecond, Jitter: 200 * time.Microsecond, Seed: 7})
	var got []int
	s.Go("sender", func() {
		for i := 0; i < 50; i++ {
			n.Send(0, 1, Replication, testMsg{i, 32})
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < 50; i++ {
			got = append(got, n.Inbox(1).Recv().(testMsg).id)
		}
	})
	s.Run(time.Second)
	for i, id := range got {
		if id != i {
			t.Fatalf("message %d arrived out of order (got id %d); FIFO violated", i, id)
		}
	}
	s.Stop()
}

func TestBandwidthPacing(t *testing.T) {
	s := rt.NewSim()
	// 1 MB/s: a 100 KB message takes 100ms of wire time.
	n := New(s, Config{Nodes: 2, Latency: 0, Bandwidth: 1 << 20})
	var last time.Duration
	s.Go("sender", func() {
		for i := 0; i < 5; i++ {
			n.Send(0, 1, Data, testMsg{i, 100 << 10})
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < 5; i++ {
			n.Inbox(1).Recv()
			last = s.Now()
		}
	})
	s.Run(10 * time.Second)
	// 5 * 100KB at 1MB/s ≈ 488ms serialisation.
	want := time.Duration(5 * float64(100<<10) / float64(1<<20) * float64(time.Second))
	if last < want-10*time.Millisecond || last > want+10*time.Millisecond {
		t.Fatalf("last delivery at %v, want ≈%v (bandwidth pacing)", last, want)
	}
	s.Stop()
}

func TestEgressSharedAcrossDestinations(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 3, Latency: 0, Bandwidth: 1 << 20})
	var t1, t2 time.Duration
	s.Go("sender", func() {
		n.Send(0, 1, Data, testMsg{1, 512 << 10})
		n.Send(0, 2, Data, testMsg{2, 512 << 10})
	})
	s.Go("r1", func() { n.Inbox(1).Recv(); t1 = s.Now() })
	s.Go("r2", func() { n.Inbox(2).Recv(); t2 = s.Now() })
	s.Run(10 * time.Second)
	// Second message waits for the first on the shared NIC: ~0.5s then ~1s.
	if t1 < 400*time.Millisecond || t2 < 900*time.Millisecond {
		t.Fatalf("t1=%v t2=%v; egress must be shared per node", t1, t2)
	}
	s.Stop()
}

func TestLocalSendIsImmediate(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 2, Latency: time.Millisecond})
	var at time.Duration = -1
	s.Go("p", func() {
		n.Send(0, 0, Control, testMsg{1, 8})
		n.Inbox(0).Recv()
		at = s.Now()
	})
	s.Run(time.Second)
	if at != 0 {
		t.Fatalf("local delivery at %v, want 0", at)
	}
	s.Stop()
}

func TestDownNodeDropsTraffic(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 2, Latency: 10 * time.Microsecond})
	n.SetDown(1, true)
	delivered := false
	s.Go("sender", func() { n.Send(0, 1, Data, testMsg{1, 8}) })
	s.Go("receiver", func() { n.Inbox(1).Recv(); delivered = true })
	s.Run(10 * time.Millisecond)
	if delivered {
		t.Fatal("message delivered to a down node")
	}
	if n.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", n.Dropped())
	}
	if !n.IsDown(1) {
		t.Fatal("IsDown")
	}
	// Recovery: traffic flows again.
	n.SetDown(1, false)
	s.Go("sender2", func() { n.Send(0, 1, Data, testMsg{2, 8}) })
	s.Run(20 * time.Millisecond)
	if !delivered {
		t.Fatal("message not delivered after node recovered")
	}
	s.Stop()
}

func TestByteAccounting(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{Nodes: 2, Latency: time.Microsecond})
	s.Go("p", func() {
		n.Send(0, 1, Replication, testMsg{1, 100})
		n.Send(0, 1, Replication, testMsg{2, 150})
		n.Send(1, 0, Data, testMsg{3, 50})
		n.Send(0, 1, Control, testMsg{4, 10})
	})
	s.Go("drain1", func() {
		for i := 0; i < 3; i++ {
			n.Inbox(1).Recv()
		}
	})
	s.Go("drain0", func() { n.Inbox(0).Recv() })
	s.Run(time.Second)
	if n.Bytes(Replication) != 250 || n.Messages(Replication) != 2 {
		t.Fatalf("replication: %d bytes %d msgs", n.Bytes(Replication), n.Messages(Replication))
	}
	if n.Bytes(Data) != 50 || n.Bytes(Control) != 10 {
		t.Fatalf("data=%d control=%d", n.Bytes(Data), n.Bytes(Control))
	}
	if n.TotalBytes() != 310 {
		t.Fatalf("total=%d", n.TotalBytes())
	}
	if n.BytesFrom(0) != 260 || n.BytesFrom(1) != 50 {
		t.Fatalf("from0=%d from1=%d", n.BytesFrom(0), n.BytesFrom(1))
	}
	s.Stop()
}

func TestRealRuntimeSmoke(t *testing.T) {
	r := rt.NewReal()
	n := New(r, Config{Nodes: 2, Latency: time.Millisecond})
	done := make(chan int, 1)
	r.Go("receiver", func() { done <- n.Inbox(1).Recv().(testMsg).id })
	r.Go("sender", func() { n.Send(0, 1, Data, testMsg{42, 64}) })
	select {
	case id := <-done:
		if id != 42 {
			t.Fatalf("got %d", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered on real runtime")
	}
	r.Stop()
}

// FIFO must survive the combination of jitter and bandwidth pacing —
// exactly the conditions STAR's operation replication depends on (§5).
func TestPerLinkFIFOUnderBandwidthAndJitter(t *testing.T) {
	s := rt.NewSim()
	n := New(s, Config{
		Nodes:     2,
		Latency:   30 * time.Microsecond,
		Jitter:    500 * time.Microsecond,
		Bandwidth: 1 << 22, // 4 MB/s: pacing interleaves with jitter
		Seed:      99,
	})
	const msgs = 200
	var got []int
	s.Go("sender", func() {
		for i := 0; i < msgs; i++ {
			n.Send(0, 1, Replication, testMsg{i, 100 + i%700})
		}
	})
	s.Go("receiver", func() {
		for i := 0; i < msgs; i++ {
			got = append(got, n.Inbox(1).Recv().(testMsg).id)
		}
	})
	s.Run(10 * time.Second)
	if len(got) != msgs {
		t.Fatalf("delivered %d/%d", len(got), msgs)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("message %d out of order (id %d)", i, id)
		}
	}
	s.Stop()
}
