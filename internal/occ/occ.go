// Package occ implements the Silo-variant optimistic concurrency control
// STAR uses in its single-master phase (§4.2), decomposed so engines can
// compose the pieces: sorted write locking, read validation, TID
// assignment (Silo's three rules), write application and lock release.
// The same pieces also power the PB. OCC and Dist. OCC baselines.
package occ

import (
	"star/internal/storage"
	"star/internal/txn"
)

// TIDGen issues per-worker transaction IDs obeying Silo's rules:
// (a) larger than any TID in the read/write set, (b) larger than this
// worker's last TID, (c) within the current global epoch.
type TIDGen struct {
	last uint64
}

// Last returns the most recently issued TID.
func (g *TIDGen) Last() uint64 { return g.last }

// Next returns the next TID for a transaction whose read/write-set
// maximum is maxSeen, in the given epoch.
func (g *TIDGen) Next(epoch, maxSeen uint64) uint64 {
	cand := maxSeen
	if g.last > cand {
		cand = g.last
	}
	var tid uint64
	if storage.TIDEpoch(cand) < epoch {
		tid = storage.MakeTID(epoch, 1)
	} else {
		tid = storage.MakeTID(storage.TIDEpoch(cand), storage.TIDSeq(cand)+1)
	}
	g.last = tid
	return tid
}

// LockAndValidate resolves and locks the write set in global order, then
// validates the read set (unchanged TIDs, no foreign locks). On failure
// everything is unlocked and false is returned; the transaction must
// abort and may retry. epoch buckets any insert placeholders created
// here for revert.
func LockAndValidate(db *storage.DB, set *txn.RWSet, epoch uint64) bool {
	set.SortWrites()
	locked := 0
	abort := func() bool {
		for i := 0; i < locked; i++ {
			if r := set.Writes[i].Rec; r != nil {
				r.Unlock()
			}
		}
		return false
	}
	for i := range set.Writes {
		w := &set.Writes[i]
		tbl := db.Table(w.Table)
		if w.Insert {
			w.Rec = tbl.Partition(w.Part).GetOrCreate(w.Key, epoch)
		} else if w.Rec == nil {
			w.Rec = tbl.Get(w.Part, w.Key)
			if w.Rec == nil {
				return abort()
			}
		}
		w.Rec.Lock()
		locked++
		absent := storage.TIDAbsent(w.Rec.TID())
		if w.Insert && !absent {
			return abort() // uniqueness violation
		}
		if !w.Insert && absent {
			return abort() // update/delete of a vanished record
		}
	}
	for i := range set.Reads {
		r := &set.Reads[i]
		cur := r.Rec.TID()
		if storage.TIDClean(cur) != storage.TIDClean(r.TID) {
			return abort()
		}
		if storage.TIDLocked(cur) && !inWriteSet(set, r.Rec) {
			return abort()
		}
	}
	return true
}

func inWriteSet(set *txn.RWSet, rec *storage.Record) bool {
	for i := range set.Writes {
		if set.Writes[i].Rec == rec {
			return true
		}
	}
	return false
}

// ApplyWrites installs the write set under the locks taken by
// LockAndValidate, tagging records with tid. Locks remain held (the
// paper's synchronous-replication variant replicates before release).
// When collectRows is true each entry's Row is set to a copy of the final
// record value — the payload for value replication and logging.
// It returns the FirstTouch flags used for dirty registration.
func ApplyWrites(db *storage.DB, set *txn.RWSet, epoch, tid uint64, collectRows bool) {
	for i := range set.Writes {
		w := &set.Writes[i]
		tbl := db.Table(w.Table)
		part := tbl.Partition(w.Part)
		var first bool
		if w.Insert {
			first = w.Rec.WriteLocked(epoch, tid, w.Row)
			tbl.NoteInserted(w.Part, w.Key, w.Row, epoch)
		} else if w.Delete {
			// Capture the final value before tombstoning: NoteDeleted
			// derives the index entries to kill from it. LockAndValidate
			// already aborted if the record was absent.
			row := w.Rec.ValueLocked()
			first = w.Rec.DeleteLocked(epoch, tid)
			tbl.NoteDeleted(w.Part, w.Key, row, epoch)
		} else {
			var err error
			first, err = w.Rec.ApplyOpsLocked(tbl.Schema(), epoch, tid, w.Ops)
			if err != nil {
				panic("occ: bad field op: " + err.Error())
			}
		}
		if first {
			part.MarkDirty(w.Rec, epoch)
		}
		if collectRows {
			if w.Delete {
				w.Row = w.Row[:0] // a delete replicates as an absent value entry
			} else {
				w.Row = append(w.Row[:0], w.Rec.ValueLocked()...)
			}
		}
	}
}

// ReleaseLocks unlocks the write set after ApplyWrites.
func ReleaseLocks(set *txn.RWSet) {
	for i := range set.Writes {
		if r := set.Writes[i].Rec; r != nil {
			r.Unlock()
		}
	}
}

// Commit is the common fast path: lock+validate, assign a TID, apply,
// release. It returns the TID and whether the transaction committed.
func Commit(db *storage.DB, set *txn.RWSet, epoch uint64, gen *TIDGen, collectRows bool) (uint64, bool) {
	if !LockAndValidate(db, set, epoch) {
		return 0, false
	}
	tid := gen.Next(epoch, set.MaxReadTID())
	ApplyWrites(db, set, epoch, tid, collectRows)
	ReleaseLocks(set)
	return tid, true
}

// CommitReadCommitted commits under READ COMMITTED (§3: "a transaction
// runs under read committed by skipping read validation on commit, since
// STAR uses OCC and uncommitted data never occurs in the database").
// Write locks are still taken in global order; only the read-set check
// is skipped, so lost-update anomalies become possible by design.
func CommitReadCommitted(db *storage.DB, set *txn.RWSet, epoch uint64, gen *TIDGen, collectRows bool) (uint64, bool) {
	if !lockWrites(db, set, epoch) {
		return 0, false
	}
	tid := gen.Next(epoch, set.MaxReadTID())
	ApplyWrites(db, set, epoch, tid, collectRows)
	ReleaseLocks(set)
	return tid, true
}

// lockWrites is LockAndValidate without the read-validation step.
func lockWrites(db *storage.DB, set *txn.RWSet, epoch uint64) bool {
	set.SortWrites()
	locked := 0
	abort := func() bool {
		for i := 0; i < locked; i++ {
			if r := set.Writes[i].Rec; r != nil {
				r.Unlock()
			}
		}
		return false
	}
	for i := range set.Writes {
		w := &set.Writes[i]
		tbl := db.Table(w.Table)
		if w.Insert {
			w.Rec = tbl.Partition(w.Part).GetOrCreate(w.Key, epoch)
		} else if w.Rec == nil {
			w.Rec = tbl.Get(w.Part, w.Key)
			if w.Rec == nil {
				return abort()
			}
		}
		w.Rec.Lock()
		locked++
		absent := storage.TIDAbsent(w.Rec.TID())
		if (w.Insert && !absent) || (!w.Insert && absent) {
			return abort()
		}
	}
	return true
}

// CommitSerial commits without locking or validation — the partitioned
// phase, where a single worker owns the partition (§4.1: "it's not
// necessary to lock any record in the write set and do read validation").
// A TID is still generated and tagged onto the updated records.
//
// The abort checks (insert uniqueness, vanished update targets) run
// BEFORE any write is applied: the partition has a single writer, so
// the pre-checked facts cannot change mid-commit, and an abort must
// leave no partial write behind — a half-applied transaction would be
// local-only state that never replicates and silently diverges the
// replicas (the restart path hits this for real: a rejoined process
// re-generating its first life's history keys collides with the rows
// its snapshot catch-up restored).
func CommitSerial(db *storage.DB, set *txn.RWSet, epoch uint64, gen *TIDGen, collectRows bool) (uint64, bool) {
	for i := range set.Writes {
		w := &set.Writes[i]
		tbl := db.Table(w.Table)
		if w.Insert {
			w.Rec = tbl.Partition(w.Part).GetOrCreate(w.Key, epoch)
			if !storage.TIDAbsent(w.Rec.TID()) {
				return 0, false // uniqueness violation
			}
			for j := 0; j < i; j++ {
				if set.Writes[j].Insert && set.Writes[j].Rec == w.Rec {
					return 0, false // duplicate insert within the txn
				}
			}
			continue
		}
		if w.Rec == nil {
			w.Rec = tbl.Get(w.Part, w.Key)
		}
		if w.Rec == nil {
			return 0, false
		}
		if w.Delete && storage.TIDAbsent(w.Rec.TID()) {
			return 0, false // delete of a vanished record
		}
	}
	tid := gen.Next(epoch, set.MaxReadTID())
	for i := range set.Writes {
		w := &set.Writes[i]
		tbl := db.Table(w.Table)
		part := tbl.Partition(w.Part)
		var first bool
		w.Rec.Lock()
		if w.Insert {
			first = w.Rec.WriteLocked(epoch, tid, w.Row)
		} else if w.Delete {
			row := w.Rec.ValueLocked()
			first = w.Rec.DeleteLocked(epoch, tid)
			tbl.NoteDeleted(w.Part, w.Key, row, epoch)
			w.Row = w.Row[:0]
		} else {
			var err error
			first, err = w.Rec.ApplyOpsLocked(tbl.Schema(), epoch, tid, w.Ops)
			if err != nil {
				w.Rec.Unlock()
				panic("occ: bad field op: " + err.Error())
			}
		}
		if first {
			part.MarkDirty(w.Rec, epoch)
		}
		if collectRows && !w.Delete {
			w.Row = append(w.Row[:0], w.Rec.ValueLocked()...)
		}
		w.Rec.Unlock()
		if w.Insert {
			tbl.NoteInserted(w.Part, w.Key, w.Row, epoch)
		}
	}
	return tid, true
}
