package occ

import (
	"sync"
	"testing"

	"star/internal/storage"
	"star/internal/txn"
)

func newBankDB(accounts int) (*storage.DB, *storage.Table) {
	db := storage.NewDB(1, nil)
	schema := storage.NewSchema(Field("balance"))
	tbl := db.AddTable("account", schema, false)
	for i := 0; i < accounts; i++ {
		row := schema.NewRow()
		schema.SetInt64(row, 0, 100)
		tbl.Insert(0, storage.K1(uint64(i)), 1, storage.MakeTID(1, uint64(i+1)), row)
	}
	return db, tbl
}

// Field is a small helper for single-int64 schemas in tests.
func Field(name string) storage.Field {
	return storage.Field{Name: name, Type: storage.FieldInt64}
}

func TestTIDGenRules(t *testing.T) {
	var g TIDGen
	t1 := g.Next(2, 0)
	if storage.TIDEpoch(t1) != 2 || storage.TIDSeq(t1) != 1 {
		t.Fatalf("t1=%s", storage.FormatTID(t1))
	}
	// Rule b: larger than the worker's last TID.
	t2 := g.Next(2, 0)
	if t2 <= t1 {
		t.Fatalf("t2=%s not > t1=%s", storage.FormatTID(t2), storage.FormatTID(t1))
	}
	// Rule a: larger than anything in the read/write set.
	big := storage.MakeTID(2, 500)
	t3 := g.Next(2, big)
	if t3 <= big {
		t.Fatalf("t3=%s not > maxSeen=%s", storage.FormatTID(t3), storage.FormatTID(big))
	}
	// Rule c: in the current epoch.
	t4 := g.Next(3, 0)
	if storage.TIDEpoch(t4) != 3 || storage.TIDSeq(t4) != 1 {
		t.Fatalf("t4=%s", storage.FormatTID(t4))
	}
}

func readInto(set *txn.RWSet, tbl *storage.Table, key storage.Key) []byte {
	rec := tbl.Get(0, key)
	val, tid, _ := rec.ReadStable(nil)
	set.AddRead(tbl.ID(), 0, key, rec, tid)
	return val
}

func TestCommitTransfersMoney(t *testing.T) {
	db, tbl := newBankDB(2)
	s := tbl.Schema()
	var g TIDGen
	var set txn.RWSet
	readInto(&set, tbl, storage.K1(0))
	readInto(&set, tbl, storage.K1(1))
	set.AddWrite(tbl.ID(), 0, storage.K1(0), storage.AddInt64Op(0, -30))
	set.AddWrite(tbl.ID(), 0, storage.K1(1), storage.AddInt64Op(0, 30))
	tid, ok := Commit(db, &set, 2, &g, true)
	if !ok {
		t.Fatal("commit failed")
	}
	v0, _, _ := tbl.Get(0, storage.K1(0)).ReadStable(nil)
	v1, _, _ := tbl.Get(0, storage.K1(1)).ReadStable(nil)
	if s.GetInt64(v0, 0) != 70 || s.GetInt64(v1, 0) != 130 {
		t.Fatalf("balances %d/%d", s.GetInt64(v0, 0), s.GetInt64(v1, 0))
	}
	// collectRows populated the value-replication payload.
	for _, w := range set.Writes {
		if len(w.Row) != s.RowSize() {
			t.Fatal("collectRows did not capture the final row")
		}
	}
	if storage.TIDEpoch(tid) != 2 {
		t.Fatalf("tid=%s", storage.FormatTID(tid))
	}
}

func TestValidationAbortsOnConflictingWrite(t *testing.T) {
	db, tbl := newBankDB(1)
	var g TIDGen
	var set txn.RWSet
	readInto(&set, tbl, storage.K1(0))
	set.AddWrite(tbl.ID(), 0, storage.K1(0), storage.AddInt64Op(0, 1))

	// Another transaction sneaks in and bumps the record's TID.
	var other txn.RWSet
	other.AddWrite(tbl.ID(), 0, storage.K1(0), storage.AddInt64Op(0, 5))
	var g2 TIDGen
	if _, ok := Commit(db, &other, 2, &g2, false); !ok {
		t.Fatal("interfering commit failed")
	}

	if _, ok := Commit(db, &set, 2, &g, false); ok {
		t.Fatal("stale read must fail validation")
	}
	// The abort path must leave no locks behind.
	if storage.TIDLocked(tbl.Get(0, storage.K1(0)).TID()) {
		t.Fatal("lock leaked after abort")
	}
}

func TestValidationAbortsOnForeignLock(t *testing.T) {
	db, tbl := newBankDB(2)
	var g TIDGen
	var set txn.RWSet
	readInto(&set, tbl, storage.K1(0))
	// A foreign transaction holds the lock on the record we read.
	tbl.Get(0, storage.K1(0)).Lock()
	if _, ok := Commit(db, &set, 2, &g, false); ok {
		t.Fatal("read of foreign-locked record must fail validation")
	}
	tbl.Get(0, storage.K1(0)).Unlock()
}

func TestOwnWriteLockPassesValidation(t *testing.T) {
	db, tbl := newBankDB(1)
	var g TIDGen
	var set txn.RWSet
	readInto(&set, tbl, storage.K1(0))
	set.AddWrite(tbl.ID(), 0, storage.K1(0), storage.AddInt64Op(0, 1))
	// RMW: our own write lock must not fail our read validation.
	if _, ok := Commit(db, &set, 2, &g, false); !ok {
		t.Fatal("read-modify-write must commit")
	}
}

func TestInsertCommitAndUniqueness(t *testing.T) {
	db, tbl := newBankDB(1)
	s := tbl.Schema()
	var g TIDGen
	row := s.NewRow()
	s.SetInt64(row, 0, 55)

	var set txn.RWSet
	set.AddInsert(tbl.ID(), 0, storage.K1(100), row)
	if _, ok := Commit(db, &set, 2, &g, false); !ok {
		t.Fatal("insert commit failed")
	}
	var dup txn.RWSet
	dup.AddInsert(tbl.ID(), 0, storage.K1(100), row)
	if _, ok := Commit(db, &dup, 2, &g, false); ok {
		t.Fatal("duplicate insert must abort")
	}
	if storage.TIDLocked(tbl.Get(0, storage.K1(100)).TID()) {
		t.Fatal("lock leaked after duplicate-insert abort")
	}
}

func TestHeldLocksForSyncReplication(t *testing.T) {
	db, tbl := newBankDB(1)
	var g TIDGen
	var set txn.RWSet
	set.AddWrite(tbl.ID(), 0, storage.K1(0), storage.AddInt64Op(0, 7))
	if !LockAndValidate(db, &set, 2) {
		t.Fatal("lock failed")
	}
	tid := g.Next(2, set.MaxReadTID())
	ApplyWrites(db, &set, 2, tid, true)
	// Paper §6.1: with synchronous replication the primary holds write
	// locks during the replication round trip.
	if !storage.TIDLocked(tbl.Get(0, storage.K1(0)).TID()) {
		t.Fatal("locks must still be held after ApplyWrites")
	}
	ReleaseLocks(&set)
	if storage.TIDLocked(tbl.Get(0, storage.K1(0)).TID()) {
		t.Fatal("locks must be released")
	}
}

func TestCommitSerialPartitionedPhase(t *testing.T) {
	db, tbl := newBankDB(1)
	s := tbl.Schema()
	var g TIDGen
	var set txn.RWSet
	readInto(&set, tbl, storage.K1(0))
	set.AddWrite(tbl.ID(), 0, storage.K1(0), storage.AddInt64Op(0, -10))
	row := s.NewRow()
	set.AddInsert(tbl.ID(), 0, storage.K1(200), row)
	tid, ok := CommitSerial(db, &set, 3, &g, true)
	if !ok || storage.TIDEpoch(tid) != 3 {
		t.Fatalf("serial commit: ok=%v tid=%s", ok, storage.FormatTID(tid))
	}
	v, _, _ := tbl.Get(0, storage.K1(0)).ReadStable(nil)
	if s.GetInt64(v, 0) != 90 {
		t.Fatalf("balance=%d", s.GetInt64(v, 0))
	}
	if tbl.Get(0, storage.K1(200)) == nil {
		t.Fatal("serial insert missing")
	}
}

// Serializability smoke test: concurrent transfers conserve total money.
func TestConcurrentTransfersConserveMoney(t *testing.T) {
	const accounts, workers, txns = 8, 4, 300
	db, tbl := newBankDB(accounts)
	s := tbl.Schema()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var g TIDGen
			for i := 0; i < txns; i++ {
				from := uint64((seed + i) % accounts)
				to := uint64((seed + i + 1 + i%3) % accounts)
				if from == to {
					continue
				}
				for {
					var set txn.RWSet
					readInto(&set, tbl, storage.K1(from))
					readInto(&set, tbl, storage.K1(to))
					set.AddWrite(tbl.ID(), 0, storage.K1(from), storage.AddInt64Op(0, -1))
					set.AddWrite(tbl.ID(), 0, storage.K1(to), storage.AddInt64Op(0, 1))
					if _, ok := Commit(db, &set, 2, &g, false); ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for i := 0; i < accounts; i++ {
		v, _, _ := tbl.Get(0, storage.K1(uint64(i))).ReadStable(nil)
		total += s.GetInt64(v, 0)
	}
	if total != int64(accounts)*100 {
		t.Fatalf("money not conserved: %d, want %d", total, accounts*100)
	}
}
