package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("got %d, want 42", c.Load())
	}
}

func TestCounterShardedConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != goroutines*perG {
		t.Fatalf("lost updates: got %d, want %d", c.Load(), goroutines*perG)
	}
	// The stripes must actually spread load: with 80k increments over 8
	// cells, all landing in one cell is (1/8)^80k — i.e., a broken shard
	// picker.
	nonzero := 0
	for i := range c.cells {
		if c.cells[i].v.Load() > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		t.Fatalf("increments all landed in %d cell(s); sharding inert", nonzero)
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	h := &Hist{}
	rng := rand.New(rand.NewSource(1))
	var samples []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform between 1µs and 100ms.
		d := time.Duration(float64(time.Microsecond) * pow10(rng.Float64()*5))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		ratio := float64(got) / float64(exact)
		if ratio < 0.90 || ratio > 1.12 {
			t.Errorf("q=%.2f: got %v, exact %v (ratio %.3f)", q, got, exact, ratio)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count=%d", h.Count())
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	// linear remainder is fine for test data
	return r * (1 + 9*x/1)
}

func TestHistEdgeCases(t *testing.T) {
	h := &Hist{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist must report zeros")
	}
	h.Observe(-5) // clamped
	h.Observe(0)
	h.Observe(200 * time.Second) // beyond range: clamped to last bucket
	if h.Count() != 3 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Max() != 200*time.Second {
		t.Fatalf("max=%v", h.Max())
	}
	if q := h.Quantile(1.0); q != 200*time.Second {
		t.Fatalf("p100=%v, want max", q)
	}
}

func TestHistQuantileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		h := &Hist{}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
		}
		prev := time.Duration(0)
		for q := 0.01; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Engine: "x", Duration: 2 * time.Second, Committed: 100, Aborted: 25}
	if s.Throughput() != 50 {
		t.Fatalf("throughput=%v", s.Throughput())
	}
	if s.AbortRate() != 0.2 {
		t.Fatalf("abort rate=%v", s.AbortRate())
	}
	var zero Stats
	if zero.Throughput() != 0 || zero.AbortRate() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
	if zero.String() == "" {
		t.Fatal("String must work with nil Latency")
	}
}
