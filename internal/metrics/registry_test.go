package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreateAndRegister(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter must return the same instance for one name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge must return the same instance for one name")
	}
	if r.Hist("h") != r.Hist("h") {
		t.Fatal("Hist must return the same instance for one name")
	}
	var own Counter
	own.Add(7)
	r.RegisterCounter("own", &own)
	if r.Counter("own") != &own {
		t.Fatal("RegisterCounter must publish the existing instance")
	}
	r.Counter("a").Add(2)
	r.Gauge("g").Set(-3)
	r.Hist("h").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Counters["own"] != 7 {
		t.Fatalf("counters: %v", s.Counters)
	}
	if s.Gauges["g"] != -3 {
		t.Fatalf("gauges: %v", s.Gauges)
	}
	if s.Hists["h"].Count != 1 {
		t.Fatalf("hists: %+v", s.Hists)
	}
}

// TestRegistryStress hammers get-or-create, updates and Snapshot from
// many goroutines at once; run under -race this pins the registry's
// locking discipline (CI runs it by name in the race job).
func TestRegistryStress(t *testing.T) {
	r := NewRegistry()
	names := []string{"alpha", "beta", "gamma", "delta"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				n := names[(g+i)%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n).Add(1)
				r.Hist(n).Observe(time.Duration(i) * time.Microsecond)
			}
		}(g)
	}
	// Scrape concurrently with the writers until they finish.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
scrape:
	for {
		_ = r.Snapshot()
		select {
		case <-done:
			break scrape
		default:
		}
	}
	total := int64(0)
	s := r.Snapshot()
	for _, n := range names {
		total += s.Counters[n]
	}
	if total != 8*5000 {
		t.Fatalf("lost counter updates: %d", total)
	}
	for _, n := range names {
		if s.Counters[n] != s.Gauges[n] || s.Counters[n] != s.Hists[n].Count {
			t.Fatalf("metric %q skewed: counter=%d gauge=%d hist=%d",
				n, s.Counters[n], s.Gauges[n], s.Hists[n].Count)
		}
	}
}

// TestHistMergeOrderStability: merging the same set of snapshots in any
// order yields identical quantiles — the property star-admin top's
// cluster aggregation relies on.
func TestHistMergeOrderStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var snaps []HistSnapshot
	for i := 0; i < 5; i++ {
		h := &Hist{}
		for j := 0; j < 4000; j++ {
			h.Observe(time.Duration(rng.Int63n(int64(250 * time.Millisecond))))
		}
		snaps = append(snaps, h.Snapshot())
	}
	quantilesOf := func(order []int) (out []time.Duration) {
		m := &Hist{}
		for _, i := range order {
			m.Merge(snaps[i])
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			out = append(out, m.Quantile(q))
		}
		return out
	}
	ref := quantilesOf([]int{0, 1, 2, 3, 4})
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(len(snaps))
		got := quantilesOf(order)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order %v: quantile[%d] = %v, want %v", order, i, got[i], ref[i])
			}
		}
	}
	// Snapshot-level merge must agree with Hist-level merge.
	var agg HistSnapshot
	for _, s := range snaps {
		agg.Merge(s)
	}
	m := &Hist{}
	m.Merge(agg)
	for i, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		if got := agg.Quantile(q); got != ref[i] {
			t.Fatalf("snapshot-merge quantile(%g) = %v, want %v", q, got, ref[i])
		}
	}
	if m.Count() != agg.Count {
		t.Fatalf("count drift: %d vs %d", m.Count(), agg.Count)
	}
}

func TestHistMergeAccuracyAgainstSingle(t *testing.T) {
	// Splitting one sample stream across three hists and merging their
	// snapshots must reproduce the single-hist quantiles exactly.
	rng := rand.New(rand.NewSource(11))
	one := &Hist{}
	parts := []*Hist{{}, {}, {}}
	for i := 0; i < 9000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		one.Observe(d)
		parts[i%3].Observe(d)
	}
	merged := &Hist{}
	for _, p := range parts {
		merged.Merge(p.Snapshot())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != one.Quantile(q) {
			t.Fatalf("q=%g: merged %v != single %v", q, merged.Quantile(q), one.Quantile(q))
		}
	}
	if merged.Count() != one.Count() || merged.Max() != one.Max() || merged.Mean() != one.Mean() {
		t.Fatal("merged scalars diverge from the single hist")
	}
}

func TestSnapshotEncodeDecodeMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("committed").Add(10)
	r.Gauge(`partition_commits{partition="0"}`).Set(4)
	r.Hist("latency").Observe(3 * time.Millisecond)
	s := r.Snapshot()
	back, err := DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters["committed"] != 10 || back.Gauges[`partition_commits{partition="0"}`] != 4 {
		t.Fatalf("round trip lost values: %+v", back)
	}
	if back.Hists["latency"].Count != 1 {
		t.Fatalf("round trip lost hist: %+v", back.Hists)
	}
	if got := back.Hists["latency"].Quantile(0.5); got < 2*time.Millisecond || got > 4*time.Millisecond {
		t.Fatalf("round-trip quantile off: %v", got)
	}
	// Empty and garbage blobs.
	if _, err := DecodeSnapshot(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot([]byte("{not json")); err == nil {
		t.Fatal("garbage blob must error")
	}
	// Merging two copies doubles counters/gauges and hist counts.
	agg := Snapshot{}
	agg.Merge(s)
	agg.Merge(back)
	if agg.Counters["committed"] != 20 || agg.Hists["latency"].Count != 2 {
		t.Fatalf("merge: %+v", agg)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("committed").Add(42)
	r.Gauge(`partition_commits{partition="3"}`).Set(7)
	r.Gauge(`partition_commits{partition="10"}`).Set(9)
	r.Hist("latency").Observe(10 * time.Millisecond)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE star_committed counter\nstar_committed 42\n",
		"# TYPE star_partition_commits gauge\n",
		`star_partition_commits{partition="3"} 7`,
		`star_partition_commits{partition="10"} 9`,
		"# TYPE star_latency summary\n",
		`star_latency{quantile="0.99"}`,
		"star_latency_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE star_partition_commits gauge") != 1 {
		t.Fatalf("duplicate TYPE line:\n%s", out)
	}
}
