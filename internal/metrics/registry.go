package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Gauge is a single atomic level value (as opposed to Counter's
// monotonic, striped event count): per-partition commit totals,
// replication lag, log bytes. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named metric directory: every subsystem registers (or
// lazily creates) its counters, gauges and histograms under a stable
// name, and Snapshot captures them all for the admin plane and the
// Prometheus endpoint. Lookup takes a read lock; the metrics themselves
// are updated lock-free through the returned pointers, so the hot paths
// resolve their metric once and never touch the registry again.
//
// Names may carry Prometheus-style labels verbatim, e.g.
// `partition_commits{partition="3"}`; the registry treats the whole
// string as the key and the exposition writer passes it through.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Hist{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// RegisterCounter publishes an existing counter under name — subsystems
// whose hot paths already own a Counter field register it instead of
// double counting. Last registration wins.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// RegisterGauge publishes an existing gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// RegisterHist publishes an existing histogram under name.
func (r *Registry) RegisterHist(name string, h *Hist) {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Snapshot captures every registered metric's current value. Each
// metric is read with the same guarantees as its own Load/Snapshot;
// the set is not a cluster-wide consistent cut (none is needed: the
// consumers compute rates and quantiles, both robust to a sample of
// skew).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Hists[n] = h.Snapshot()
		}
	}
	return s
}

// Snapshot is one node's metric state at a point in time: what
// AdminStats ships, what /metrics renders, and what star-admin top
// merges across the cluster.
type Snapshot struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Merge folds another node's snapshot into this one: counters and
// gauges sum (per-partition commit gauges from different masters add to
// the cluster total), histograms merge bucket-wise. Commutative and
// associative, so the cluster aggregate is independent of answer order.
func (s *Snapshot) Merge(o Snapshot) {
	if len(o.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]int64, len(o.Counters))
	}
	for n, v := range o.Counters {
		s.Counters[n] += v
	}
	if len(o.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]int64, len(o.Gauges))
	}
	for n, v := range o.Gauges {
		s.Gauges[n] += v
	}
	if len(o.Hists) > 0 && s.Hists == nil {
		s.Hists = make(map[string]HistSnapshot, len(o.Hists))
	}
	for n, h := range o.Hists {
		cur := s.Hists[n]
		cur.Merge(h)
		s.Hists[n] = cur
	}
}

// Encode renders the snapshot as the admin-plane blob (JSON: the
// control plane is off the hot path, and a self-describing encoding
// lets old tools skip fields new nodes add).
func (s Snapshot) Encode() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Maps of scalars and HistSnapshots cannot fail to marshal.
		panic("metrics: encode snapshot: " + err.Error())
	}
	return b
}

// DecodeSnapshot parses an Encode blob.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if len(b) == 0 {
		return s, nil
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: decode snapshot: %w", err)
	}
	return s, nil
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format: counters and gauges as-is (label suffixes in the name pass
// through), histograms as summaries with p50/p90/p99 in seconds. Output
// is sorted by name so scrapes diff cleanly.
func WritePrometheus(w io.Writer, s Snapshot) error {
	base := func(name string) string {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			return name[:i]
		}
		return name
	}
	emit := func(kind string, m map[string]int64) error {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		lastBase := ""
		for _, n := range names {
			if b := base(n); b != lastBase {
				if _, err := fmt.Fprintf(w, "# TYPE star_%s %s\n", b, kind); err != nil {
					return err
				}
				lastBase = b
			}
			if _, err := fmt.Fprintf(w, "star_%s %d\n", n, m[n]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("counter", s.Counters); err != nil {
		return err
	}
	if err := emit("gauge", s.Gauges); err != nil {
		return err
	}
	hnames := make([]string, 0, len(s.Hists))
	for n := range s.Hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Hists[n]
		if _, err := fmt.Fprintf(w, "# TYPE star_%s summary\n", n); err != nil {
			return err
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if _, err := fmt.Fprintf(w, "star_%s{quantile=\"%g\"} %g\n", n, q, h.Quantile(q).Seconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "star_%s_sum %g\nstar_%s_count %d\n", n, float64(h.Sum)/1e9, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
