// Package metrics provides the counters and latency histograms used by
// every engine to report the quantities the paper's evaluation plots:
// committed/aborted transactions, throughput, p50/p99 latency, and
// replication byte counts.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Counter is an atomic event counter. The zero value is ready to use.
// Engines running on the sim runtime are single-threaded, but the same
// code runs on real goroutines, so all mutation is atomic.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Hist is a log-scale latency histogram covering 100ns..100s with ~4%
// relative bucket width. The zero value is ready to use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
}

const (
	histBuckets = 400
	histMinNs   = 100.0 // 100ns
	// growth chosen so bucket 399 is ~100s: 100ns * g^399 = 1e11ns.
)

var histGrowth = math.Pow(1e11/histMinNs, 1.0/float64(histBuckets-1))
var histLogGrowth = math.Log(histGrowth)

func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= histMinNs {
		return 0
	}
	b := int(math.Log(ns/histMinNs) / histLogGrowth)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper returns the upper-bound latency of bucket b.
func bucketUpper(b int) time.Duration {
	return time.Duration(histMinNs * math.Pow(histGrowth, float64(b+1)))
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean returns the mean latency, or 0 with no samples.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed sample.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the latency at quantile q in [0,1], interpolated to the
// bucket upper bound, or 0 with no samples.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen >= rank {
			if b == histBuckets-1 {
				// Overflow bucket: the upper bound is unknown.
				return h.Max()
			}
			u := bucketUpper(b)
			if m := h.Max(); u > m {
				return m
			}
			return u
		}
	}
	return h.Max()
}

// Stats is the per-run result bundle every engine returns.
type Stats struct {
	Engine    string
	Duration  time.Duration // measured (virtual) run time
	Committed int64
	Aborted   int64
	// Latency of committed transactions from generation to result release
	// (group commit included, matching the paper's measurement).
	Latency *Hist
	// ReplicationBytes is the total bytes shipped on replication streams.
	ReplicationBytes int64
	// NetworkBytes is total bytes on the wire, replication included.
	NetworkBytes int64
	// LogBytes is bytes written to the recovery logs (0 if disabled).
	LogBytes int64
	// Extra carries experiment-specific values (e.g. fence time share).
	Extra map[string]float64
}

// Throughput returns committed transactions per second.
func (s Stats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Committed) / s.Duration.Seconds()
}

// AbortRate returns aborted/(committed+aborted).
func (s Stats) AbortRate() float64 {
	t := s.Committed + s.Aborted
	if t == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(t)
}

// String summarises the stats on one line.
func (s Stats) String() string {
	p50, p99 := time.Duration(0), time.Duration(0)
	if s.Latency != nil {
		p50, p99 = s.Latency.Quantile(0.50), s.Latency.Quantile(0.99)
	}
	return fmt.Sprintf("%s: %.0f txn/s (committed=%d aborted=%d) p50=%v p99=%v repl=%dB",
		s.Engine, s.Throughput(), s.Committed, s.Aborted, p50, p99, s.ReplicationBytes)
}
