// Package metrics provides the counters and latency histograms used by
// every engine to report the quantities the paper's evaluation plots:
// committed/aborted transactions, throughput, p50/p99 latency, and
// replication byte counts.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterShards is the stripe count of Counter (power of two). Eight
// stripes keep a 12-worker node's hot counters off a single cache line
// while the whole counter still fits in half a KiB.
const counterShards = 8

// counterCell is one stripe, padded to its own cache line so concurrent
// writers on the real runtime don't false-share.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a sharded atomic event counter. The zero value is ready to
// use. Engines running on the sim runtime are single-threaded, but the
// same code runs on real goroutines, so increments stripe across padded
// cells instead of contending on one cache line.
type Counter struct{ cells [counterShards]counterCell }

// Add increments the counter by n. The stripe is picked by hashing the
// address of a stack local: goroutines occupy distinct stacks, so
// concurrent writers land on different cells, while one goroutine keeps
// re-hitting the same (cached) cell. This replaces a per-increment
// math/rand/v2 call — a full ChaCha8 step on the zero-allocation commit
// path — with two arithmetic ops.
func (c *Counter) Add(n int64) {
	var pin byte
	h := uint64(uintptr(unsafe.Pointer(&pin))) * 0x9E3779B97F4A7C15
	c.cells[(h>>59)&(counterShards-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value. Concurrent increments may or may not
// be included, as with a single atomic.
func (c *Counter) Load() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Hist is a log-scale latency histogram covering 100ns..100s with ~4%
// relative bucket width. The zero value is ready to use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
}

const (
	histBuckets = 400
	histMinNs   = 100.0 // 100ns
	// growth chosen so bucket 399 is ~100s: 100ns * g^399 = 1e11ns.
)

var histGrowth = math.Pow(1e11/histMinNs, 1.0/float64(histBuckets-1))
var histLogGrowth = math.Log(histGrowth)

func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= histMinNs {
		return 0
	}
	b := int(math.Log(ns/histMinNs) / histLogGrowth)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper returns the upper-bound latency of bucket b.
func bucketUpper(b int) time.Duration {
	return time.Duration(histMinNs * math.Pow(histGrowth, float64(b+1)))
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean returns the mean latency, or 0 with no samples.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed sample.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the latency at quantile q in [0,1], interpolated to the
// bucket upper bound, or 0 with no samples.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen >= rank {
			if b == histBuckets-1 {
				// Overflow bucket: the upper bound is unknown.
				return h.Max()
			}
			u := bucketUpper(b)
			if m := h.Max(); u > m {
				return m
			}
			return u
		}
	}
	return h.Max()
}

// Snapshot captures the histogram's current state, sparse over its
// non-empty buckets. Concurrent Observes may land between the field
// reads (count can lag the buckets by a sample or two), exactly as a
// sequence of independent atomic loads would; the copy is internally
// usable regardless because quantile ranks are computed against the
// bucket sum, not the count.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[b] = n
		}
	}
	return s
}

// Merge folds a snapshot into the live histogram. Merging is commutative
// and associative: any merge order over a set of snapshots yields the
// same buckets, count, sum and max, so cluster-wide quantiles do not
// depend on which node answered first. Out-of-range bucket indexes (a
// foreign or corrupt snapshot) are clamped into the overflow bucket.
func (h *Hist) Merge(s HistSnapshot) {
	for b, n := range s.Buckets {
		if n <= 0 {
			continue
		}
		if b < 0 {
			b = 0
		}
		if b >= histBuckets {
			b = histBuckets - 1
		}
		h.buckets[b].Add(n)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		m := h.max.Load()
		if s.Max <= m || h.max.CompareAndSwap(m, s.Max) {
			break
		}
	}
}

// HistSnapshot is a point-in-time, mergeable copy of a Hist: sparse
// non-empty buckets plus the count/sum/max scalars. It is the unit the
// registry snapshot ships over the admin plane and what star-admin top
// merges across nodes.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"` // nanoseconds
	Max   int64 `json:"max"` // nanoseconds
	// Buckets maps log-bucket index → sample count (empty buckets
	// omitted). Indexes follow bucketFor: ~4% relative width over
	// 100ns..100s.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Merge folds another snapshot into this one (commutative/associative,
// same semantics as Hist.Merge).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(o.Buckets) > 0 && s.Buckets == nil {
		s.Buckets = make(map[int]int64, len(o.Buckets))
	}
	for b, n := range o.Buckets {
		s.Buckets[b] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the snapshot's mean latency, or 0 with no samples.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile returns the latency at quantile q in [0,1] (same bucket
// interpolation as Hist.Quantile), or 0 with no samples.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		n, ok := s.Buckets[b]
		if !ok {
			continue
		}
		seen += n
		if seen >= rank {
			if b == histBuckets-1 {
				return time.Duration(s.Max)
			}
			u := bucketUpper(b)
			if m := time.Duration(s.Max); u > m {
				return m
			}
			return u
		}
	}
	return time.Duration(s.Max)
}

// Stats is the per-run result bundle every engine returns.
type Stats struct {
	Engine    string
	Duration  time.Duration // measured (virtual) run time
	Committed int64
	Aborted   int64
	// Latency of committed transactions from generation to result release
	// (group commit included, matching the paper's measurement).
	Latency *Hist
	// ReplicationBytes is the total bytes shipped on replication streams.
	ReplicationBytes int64
	// ReplicationMsgs is the number of messages those bytes travelled in
	// (batching quality: fewer envelopes per committed transaction).
	ReplicationMsgs int64
	// NetworkBytes is total bytes on the wire, replication included.
	NetworkBytes int64
	// LogBytes is bytes written to the recovery logs (0 if disabled).
	LogBytes int64
	// Extra carries experiment-specific values (e.g. fence time share).
	Extra map[string]float64
}

// Throughput returns committed transactions per second.
func (s Stats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Committed) / s.Duration.Seconds()
}

// ReplMsgsPerCommit returns replication messages per committed
// transaction (the batching figure of merit), or 0 with no commits.
func (s Stats) ReplMsgsPerCommit() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.ReplicationMsgs) / float64(s.Committed)
}

// ReplBytesPerCommit returns replication bytes per committed
// transaction, or 0 with no commits.
func (s Stats) ReplBytesPerCommit() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.ReplicationBytes) / float64(s.Committed)
}

// AbortRate returns aborted/(committed+aborted).
func (s Stats) AbortRate() float64 {
	t := s.Committed + s.Aborted
	if t == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(t)
}

// String summarises the stats on one line.
func (s Stats) String() string {
	p50, p99 := time.Duration(0), time.Duration(0)
	if s.Latency != nil {
		p50, p99 = s.Latency.Quantile(0.50), s.Latency.Quantile(0.99)
	}
	return fmt.Sprintf("%s: %.0f txn/s (committed=%d aborted=%d) p50=%v p99=%v repl=%dB",
		s.Engine, s.Throughput(), s.Committed, s.Aborted, p50, p99, s.ReplicationBytes)
}
