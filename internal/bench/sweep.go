package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"sort"
	"strings"

	"star/internal/baseline"
	"star/internal/core"
	"star/internal/metrics"
	"star/internal/workload"
)

// SplitList parses a comma-separated flag value into its non-empty,
// trimmed elements (nil for an empty string) — the list syntax shared by
// the star-bench and bench-diff commands.
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ResultsSchema versions the BENCH_results.json layout so later PRs can
// evolve it without breaking trajectory tooling.
const ResultsSchema = "star-bench/sweep/v1"

// SweepEngines are the engine names RunSweep understands, in report
// order: STAR plus the paper's baseline systems (§7.1.2).
var SweepEngines = []string{"STAR", "PB.OCC", "Dist.OCC", "Dist.S2PL", "Calvin"}

// SweepWorkloads are the workload names RunSweep understands:
// "tpcc" is the paper's NewOrder+Payment subset, "tpcc-full" the
// standard-weighted 45/43/4/4 mix with deferred Delivery and
// (cross-partition) Stock-Level.
var SweepWorkloads = []string{"ycsb", "tpcc", "tpcc-full"}

// SweepConfig selects what a sweep covers. Zero fields take the full
// paper-figure defaults (4 nodes, both workloads, all engines, the
// Fig 11/13 cross-partition x-axis).
type SweepConfig struct {
	Nodes     int
	Workloads []string
	Engines   []string
	CrossPcts []int
	// SkipBatching drops the replication-batching comparison runs.
	SkipBatching bool
}

func (c SweepConfig) withDefaults(o Options) SweepConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if len(c.Workloads) == 0 {
		c.Workloads = SweepWorkloads
	}
	if len(c.Engines) == 0 {
		c.Engines = SweepEngines
	}
	if len(c.CrossPcts) == 0 {
		c.CrossPcts = o.crossPoints()
	}
	return c
}

// SweepPoint is one (workload, engine, cross%) measurement.
type SweepPoint struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	CrossPct int    `json:"cross_pct"`
	Nodes    int    `json:"nodes"`

	Committed        int64   `json:"committed"`
	ThroughputTxnS   float64 `json:"throughput_txn_s"`
	AbortRate        float64 `json:"abort_rate"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	ReplicationBytes int64   `json:"replication_bytes"`
	ReplicationMsgs  int64   `json:"replication_msgs"`
	BytesPerCommit   float64 `json:"repl_bytes_per_commit"`
	MsgsPerCommit    float64 `json:"repl_msgs_per_commit"`
}

// BatchingPoint is one leg of the delta-batching comparison: STAR with
// the seed's small fixed-entry flushing versus the byte/epoch-bounded
// batched stream, on otherwise identical configurations.
type BatchingPoint struct {
	Workload       string  `json:"workload"`
	Mode           string  `json:"mode"` // "seed-16-entry" or "batched"
	CrossPct       int     `json:"cross_pct"`
	FlushEvery     int     `json:"flush_every"`
	FlushBytes     int     `json:"flush_bytes"`
	Committed      int64   `json:"committed"`
	ThroughputTxnS float64 `json:"throughput_txn_s"`
	ReplMsgs       int64   `json:"replication_msgs"`
	MsgsPerCommit  float64 `json:"repl_msgs_per_commit"`
	BytesPerCommit float64 `json:"repl_bytes_per_commit"`
}

// SnapshotPoint is one leg of the read-only snapshot-path comparison:
// STAR on the full TPC-C mix with cross-partition Stock-Level, with the
// snapshot-read path off (every read-only transaction routes to the
// master) versus on (served from the generating node's fence snapshot).
type SnapshotPoint struct {
	// Workload is "tpcc-full" (the mixed five-transaction run) or
	// "order-status" (the pure by-name read-only point).
	Workload       string  `json:"workload,omitempty"`
	Mode           string  `json:"mode"` // "master-routed" or "snapshot-reads"
	CrossPct       int     `json:"cross_pct"`
	Committed      int64   `json:"committed"`
	ThroughputTxnS float64 `json:"throughput_txn_s"`
	AbortRate      float64 `json:"abort_rate"`
	SnapshotReads  int64   `json:"snapshot_reads"`
	// SnapshotFallbacks counts read-only transactions that reached the
	// snapshot path but deferred to the master anyway (footprint not
	// held locally, or a session freshness token the local fence had
	// not covered yet).
	SnapshotFallbacks int64 `json:"snapshot_fallbacks"`
	Deferred          int64 `json:"deferred"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
}

// SweepResults is the machine-readable bundle star-bench writes to
// BENCH_results.json: the paper's headline cross-partition sweeps plus
// the replication-batching and snapshot-read comparisons, so every
// later PR has a trajectory to beat.
type SweepResults struct {
	Schema     string          `json:"schema"`
	Seed       int64           `json:"seed"`
	Short      bool            `json:"short"`
	Nodes      int             `json:"nodes"`
	Workers    int             `json:"workers_per_node"`
	DurationMs float64         `json:"duration_ms"`
	Workloads  []string        `json:"workloads"`
	Engines    []string        `json:"engines"`
	CrossPcts  []int           `json:"cross_pcts"`
	Results    []SweepPoint    `json:"results"`
	Batching   []BatchingPoint `json:"batching"`
	Snapshot   []SnapshotPoint `json:"snapshot_reads,omitempty"`
}

// toPoint converts engine stats into a sweep point.
func toPoint(wl, engine string, crossPct, nodes int, st metrics.Stats) SweepPoint {
	return SweepPoint{
		Workload: wl, Engine: engine, CrossPct: crossPct, Nodes: nodes,
		Committed:        st.Committed,
		ThroughputTxnS:   st.Throughput(),
		AbortRate:        st.AbortRate(),
		P50Ms:            ms(st.Latency.Quantile(.5)),
		P99Ms:            ms(st.Latency.Quantile(.99)),
		ReplicationBytes: st.ReplicationBytes,
		ReplicationMsgs:  st.ReplicationMsgs,
		BytesPerCommit:   st.ReplBytesPerCommit(),
		MsgsPerCommit:    st.ReplMsgsPerCommit(),
	}
}

// sweepWorkload builds the named workload for an engine run.
func (o Options) sweepWorkload(name string, nodes, crossPct int) workload.Workload {
	switch name {
	case "ycsb":
		return o.ycsbWorkload(nodes, crossPct)
	case "tpcc-full":
		return o.tpccFullWorkload(nodes, crossPct)
	default:
		return o.tpccWorkload(nodes, crossPct)
	}
}

// runSweepEngine executes one engine at one sweep point, returning the
// stats and the cluster size actually used (PB.OCC is always a 2-node
// primary/backup pair). All engines use asynchronous replication +
// epoch group commit (the paper's Fig 11a/b configuration, which is
// also STAR's default mode).
func (o Options) runSweepEngine(engine, wl string, nodes, crossPct int) (metrics.Stats, int, error) {
	mk := func() workload.Workload { return o.sweepWorkload(wl, nodes, crossPct) }
	switch engine {
	case "STAR":
		return runSim(o.duration(), o.star(nodes, mk(), nil)), nodes, nil
	case "PB.OCC":
		// The primary/backup pair holds the whole database (2 nodes).
		return runSim(o.duration(), o.pbocc(o.sweepWorkload(wl, 2, crossPct), false)), 2, nil
	case "Dist.OCC":
		return runSim(o.duration(), o.dist(nodes, mk(), baseline.DistOCC, false)), nodes, nil
	case "Dist.S2PL":
		return runSim(o.duration(), o.dist(nodes, mk(), baseline.DistS2PL, false)), nodes, nil
	case "Calvin":
		lm := 4
		if o.workers() <= 4 {
			lm = 2
		}
		return runSim(o.duration(), o.calvin(nodes, mk(), lm)), nodes, nil
	}
	return metrics.Stats{}, 0, fmt.Errorf("bench: unknown sweep engine %q (known: %v)", engine, SweepEngines)
}

// RunSweep executes the cross-partition sweeps plus the batching
// comparison and returns the result bundle. Progress lines go to o.Out.
func RunSweep(o Options, cfg SweepConfig) (SweepResults, error) {
	cfg = cfg.withDefaults(o)
	res := SweepResults{
		Schema:     ResultsSchema,
		Seed:       o.Seed,
		Short:      o.Short,
		Nodes:      cfg.Nodes,
		Workers:    o.workers(),
		DurationMs: ms(o.duration()),
		Workloads:  cfg.Workloads,
		Engines:    cfg.Engines,
		CrossPcts:  append([]int(nil), cfg.CrossPcts...),
	}
	sort.Ints(res.CrossPcts)
	for _, wl := range cfg.Workloads {
		if !slices.Contains(SweepWorkloads, wl) {
			return res, fmt.Errorf("bench: unknown sweep workload %q (known: %v)", wl, SweepWorkloads)
		}
	}
	// Reject unknown engines before any (possibly minutes-long) run, not
	// when the sweep loop first reaches them.
	for _, engine := range cfg.Engines {
		if !slices.Contains(SweepEngines, engine) {
			return res, fmt.Errorf("bench: unknown sweep engine %q (known: %v)", engine, SweepEngines)
		}
	}
	for _, wl := range cfg.Workloads {
		for _, engine := range cfg.Engines {
			for _, p := range res.CrossPcts {
				st, ranNodes, err := o.runSweepEngine(engine, wl, cfg.Nodes, p)
				if err != nil {
					return res, err
				}
				pt := toPoint(wl, engine, p, ranNodes, st)
				res.Results = append(res.Results, pt)
				o.printf("# sweep %-5s %-10s P=%-3d  %8.0f txn/s  abort=%.3f  %6.2f msg/txn  %7.0f B/txn\n",
					wl, engine, p, pt.ThroughputTxnS, pt.AbortRate, pt.MsgsPerCommit, pt.BytesPerCommit)
			}
		}
	}
	if !cfg.SkipBatching {
		res.Batching = o.runBatchingComparison(cfg.Nodes, cfg.Workloads)
	}
	if slices.Contains(cfg.Workloads, "tpcc-full") {
		res.Snapshot = o.runSnapshotComparison(cfg.Nodes)
	}
	return res, nil
}

// runSnapshotComparison measures the read-only snapshot path on the
// full TPC-C mix: with SnapshotReads on, cross-partition Stock-Level
// scans run against the generating node's fence snapshot instead of the
// master's OCC queue — no master routing, no group-commit latency, no
// validation retries against the write-heavy mix.
func (o Options) runSnapshotComparison(nodes int) []SnapshotPoint {
	modes := []struct {
		name string
		on   bool
	}{{"master-routed", false}, {"snapshot-reads", true}}
	wls := []struct {
		name string
		mk   func(nodes, crossPct int) workload.Workload
	}{
		{"tpcc-full", o.tpccFullWorkload},
		// The by-name read-only point: pure cross-partition Order-Status
		// resolved through the customer_by_name secondary index.
		{"order-status", o.tpccOrderStatusWorkload},
	}
	var out []SnapshotPoint
	for _, wl := range wls {
		for _, crossPct := range []int{10, 50} {
			for _, m := range modes {
				st := runSim(o.duration(), o.star(nodes, wl.mk(nodes, crossPct),
					func(c *core.Config) { c.SnapshotReads = m.on }))
				pt := SnapshotPoint{
					Workload: wl.name, Mode: m.name, CrossPct: crossPct,
					Committed:         st.Committed,
					ThroughputTxnS:    st.Throughput(),
					AbortRate:         st.AbortRate(),
					SnapshotReads:     int64(st.Extra["snapshot_reads"]),
					SnapshotFallbacks: int64(st.Extra["snapshot_fallbacks"]),
					Deferred:          int64(st.Extra["deferred"]),
					P50Ms:             ms(st.Latency.Quantile(.5)),
					P99Ms:             ms(st.Latency.Quantile(.99)),
				}
				out = append(out, pt)
				o.printf("# snapshot %-12s %-14s P=%-3d  %8.0f txn/s  %7d snapshot reads  %5d fallbacks  %7d deferred\n",
					wl.name, m.name, crossPct, pt.ThroughputTxnS, pt.SnapshotReads, pt.SnapshotFallbacks, pt.Deferred)
			}
		}
	}
	return out
}

// runBatchingComparison measures STAR's replication messages per
// committed transaction with the seed's 16-entry flushing versus the
// byte/epoch-bounded batched stream, at the paper's default
// cross-partition rate.
func (o Options) runBatchingComparison(nodes int, workloads []string) []BatchingPoint {
	const crossPct = 10
	modes := []struct {
		name string
		mod  func(*core.Config)
	}{
		// The seed shipped one small message every 16 entries with no
		// byte bound — reproduced here so the win stays measurable from
		// the same harness.
		{"seed-16-entry", func(c *core.Config) { c.FlushEvery = 16; c.FlushBytes = -1 }},
		// Current defaults: byte-bounded envelopes flushed at the fence.
		{"batched", nil},
	}
	var out []BatchingPoint
	for _, wl := range workloads {
		for _, m := range modes {
			st := runSim(o.duration(), o.star(nodes, o.sweepWorkload(wl, nodes, crossPct), m.mod))
			// Record the effective flush knobs for the JSON trail.
			cfg := core.Config{FlushBytes: core.DefaultFlushBytes}
			if m.mod != nil {
				m.mod(&cfg)
			}
			pt := BatchingPoint{
				Workload: wl, Mode: m.name, CrossPct: crossPct,
				FlushEvery: cfg.FlushEvery, FlushBytes: cfg.FlushBytes,
				Committed:      st.Committed,
				ThroughputTxnS: st.Throughput(),
				ReplMsgs:       st.ReplicationMsgs,
				MsgsPerCommit:  st.ReplMsgsPerCommit(),
				BytesPerCommit: st.ReplBytesPerCommit(),
			}
			out = append(out, pt)
			o.printf("# batching %-5s %-14s %6.2f msg/txn  %8.0f txn/s\n",
				wl, m.name, pt.MsgsPerCommit, pt.ThroughputTxnS)
		}
	}
	return out
}

// WriteResultsFile marshals the bundle to path as indented JSON.
func WriteResultsFile(path string, res SweepResults) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
