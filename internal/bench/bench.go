// Package bench regenerates every table and figure of the paper's
// evaluation (§7). Each runner sweeps the figure's x-axis, executes the
// relevant engines on the deterministic simulation runtime, and prints
// the same series the paper plots. Absolute numbers depend on the cost
// model; the reproduction target is the shape: who wins, by what factor,
// and where the crossovers sit (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"time"

	"star/internal/baseline"
	"star/internal/core"
	"star/internal/metrics"
	"star/internal/model"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/workload"
	"star/internal/workload/tpcc"
	"star/internal/workload/ycsb"
)

// Options scales an experiment run.
type Options struct {
	// Out receives the table rows.
	Out io.Writer
	// Short shrinks workers, data and measured time for CI-speed runs.
	Short bool
	Seed  int64
	// Duration overrides the measured virtual time per run (0 keeps the
	// Short/paper default); smoke tests use a few milliseconds.
	Duration time.Duration
}

func (o Options) workers() int {
	if o.Short {
		return 4
	}
	return 12 // §7.1: 12 worker threads per node
}

func (o Options) duration() time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	if o.Short {
		return 60 * time.Millisecond
	}
	return 250 * time.Millisecond
}

func (o Options) ycsbRecords() int {
	if o.Short {
		return 4096
	}
	return 20000
}

func (o Options) tpccCfg(warehouses int) tpcc.Config {
	c := tpcc.Config{Warehouses: warehouses}
	if o.Short {
		c.Districts = 4
		c.CustomersPerDistrict = 96
		c.Items = 512
	} else {
		c.Districts = 10
		c.CustomersPerDistrict = 600
		c.Items = 4000
	}
	return c
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// bandwidth is the modelled per-node egress capacity. It is scaled with
// the worker count so that TPC-C saturates the wire around 4 nodes, as
// on the paper's 4.8 Gbit/s EC2 network (§7.6).
func (o Options) bandwidth() float64 {
	if o.Short {
		return 800e6
	}
	return 2.4e9
}

func (o Options) netCfg(nodes int) simnet.Config {
	return simnet.Config{
		Nodes:     nodes + 1,
		Latency:   50 * time.Microsecond,
		Jitter:    10 * time.Microsecond,
		Bandwidth: o.bandwidth(),
		Seed:      o.Seed,
	}
}

// runSim executes build on a fresh simulation, measures `dur` of virtual
// time, then returns the engine's stats.
func runSim(dur time.Duration, build func(s *rt.Sim) func() metrics.Stats) metrics.Stats {
	s := rt.NewSim()
	stats := build(s)
	s.Run(dur)
	st := stats()
	st.Duration = s.Now()
	s.Stop()
	return st
}

func (o Options) ycsbWorkload(nodes, crossPct int) workload.Workload {
	if crossPct < 0 {
		crossPct = 10 // the paper's YCSB default (§7.1.1)
	}
	return ycsb.New(ycsb.Config{
		Partitions:          nodes * o.workers(),
		RecordsPerPartition: o.ycsbRecords(),
		CrossPct:            crossPct,
	})
}

func (o Options) tpccWorkload(nodes, crossPct int) workload.Workload {
	cfg := o.tpccCfg(nodes * o.workers())
	if crossPct >= 0 {
		cfg.SetCrossPct(crossPct)
	}
	return tpcc.New(cfg)
}

// tpccOrderStatusWorkload is the by-name read-only point: pure
// Order-Status (60% by last name through the customer_by_name index),
// every query about a remote warehouse's customer — the class the
// snapshot-read path serves with zero master routing.
func (o Options) tpccOrderStatusWorkload(nodes, crossPct int) workload.Workload {
	cfg := o.tpccCfg(nodes * o.workers())
	cfg.OrderStatusPct = 100
	cfg.CrossPctOrderStatus = crossPct
	return tpcc.New(cfg)
}

// tpccFullWorkload is the standard-weighted five-transaction mix
// (45/43/4/4/4 NewOrder/Payment/Delivery/Stock-Level/Order-Status):
// Delivery runs in deferred mode, Payment and Order-Status resolve
// by-name customers through the secondary index at execution time, and
// the cross-partition percentage also governs the multi-warehouse
// Stock-Level and remote-customer Order-Status variants the
// snapshot-read path serves.
func (o Options) tpccFullWorkload(nodes, crossPct int) workload.Workload {
	cfg := o.tpccCfg(nodes * o.workers())
	cfg.SetFullMix()
	if crossPct >= 0 {
		cfg.SetCrossPct(crossPct)
	}
	return tpcc.New(cfg)
}

// ---- engine builders ----

func (o Options) star(nodes int, wl workload.Workload, mod func(*core.Config)) func(*rt.Sim) func() metrics.Stats {
	return func(s *rt.Sim) func() metrics.Stats {
		cfg := core.Config{
			RT: s, Nodes: nodes, WorkersPerNode: o.workers(),
			Workload: wl, Seed: o.Seed, Net: o.netCfg(nodes),
		}
		if mod != nil {
			mod(&cfg)
		}
		e := core.New(cfg)
		return e.Stats
	}
}

func (o Options) pbocc(wl workload.Workload, sync bool) func(*rt.Sim) func() metrics.Stats {
	return func(s *rt.Sim) func() metrics.Stats {
		e := baseline.NewPBOCC(baseline.Config{
			RT: s, WorkersPerNode: o.workers(), Workload: wl,
			SyncRepl: sync, Seed: o.Seed, Net: o.netCfg(2),
		})
		return e.Stats
	}
}

func (o Options) dist(nodes int, wl workload.Workload, proto baseline.Protocol, sync bool) func(*rt.Sim) func() metrics.Stats {
	return func(s *rt.Sim) func() metrics.Stats {
		e := baseline.NewDist(baseline.Config{
			RT: s, Nodes: nodes, WorkersPerNode: o.workers(), Workload: wl,
			SyncRepl: sync, Seed: o.Seed, Net: o.netCfg(nodes),
		}, proto)
		return e.Stats
	}
}

func (o Options) calvin(nodes int, wl workload.Workload, lms int) func(*rt.Sim) func() metrics.Stats {
	return func(s *rt.Sim) func() metrics.Stats {
		e := baseline.NewCalvin(baseline.Config{
			RT: s, Nodes: nodes, WorkersPerNode: o.workers(), Workload: wl,
			LockManagers: lms, Seed: o.Seed, Net: o.netCfg(nodes),
		})
		return e.Stats
	}
}

// pbWorkload builds the PB. OCC workload: the primary/backup pair holds
// the whole database, so its partition count is 2 × workers.
func (o Options) pbYCSB(crossPct int) workload.Workload { return o.ycsbWorkload(2, crossPct) }
func (o Options) pbTPCC(crossPct int) workload.Workload { return o.tpccWorkload(2, crossPct) }

// crossPoints is the x-axis of the Fig 11/13/15 sweeps.
func (o Options) crossPoints() []int {
	if o.Short {
		return []int{0, 20, 50, 80, 100}
	}
	return []int{0, 10, 20, 40, 60, 80, 100}
}

// kTxnsPerSec formats throughput in thousands of transactions/second.
func kTxnsPerSec(st metrics.Stats) float64 { return st.Throughput() / 1000 }

// ---- Figure 3 and Figure 10: the analytical model ----

// Fig03 prints the model speedup of STAR over one node (Figure 3).
func Fig03(o Options) {
	o.printf("# Figure 3: modelled speedup of STAR over single-node execution\n")
	o.printf("%-8s", "nodes")
	for _, p := range []float64{0.01, 0.05, 0.10, 0.15} {
		o.printf("  %-8s", fmt.Sprintf("P=%.0f%%", p*100))
	}
	o.printf("\n")
	for n := 1; n <= 16; n++ {
		o.printf("%-8d", n)
		for _, p := range []float64{0.01, 0.05, 0.10, 0.15} {
			o.printf("  %-8.2f", model.Speedup(n, p))
		}
		o.printf("\n")
	}
}

// Fig10 prints the model improvement of STAR over both system classes on
// four nodes (Figure 10).
func Fig10(o Options) {
	o.printf("# Figure 10: modelled improvement of STAR (4 nodes) in %%\n")
	o.printf("%-8s", "P%")
	for _, k := range []float64{2, 4, 8, 16} {
		o.printf("  K=%-6.0f", k)
	}
	o.printf("  %s\n", "NonPart")
	for p := 0; p <= 100; p += 10 {
		pf := float64(p) / 100
		o.printf("%-8d", p)
		for _, k := range []float64{2, 4, 8, 16} {
			o.printf("  %-8.0f", 100*model.ImprovementOverPartitioned(4, k, pf))
		}
		o.printf("  %-8.0f\n", 100*model.ImprovementOverNonPartitioned(4, pf))
	}
}

// ---- Figure 11: throughput vs %% cross-partition ----

// Fig11a: YCSB, asynchronous replication + epoch group commit.
func Fig11a(o Options) {
	o.fig11(true, false)
}

// Fig11b: TPC-C, asynchronous replication + epoch group commit.
func Fig11b(o Options) {
	o.fig11(false, false)
}

// Fig11c: YCSB, synchronous replication baselines.
func Fig11c(o Options) {
	o.fig11(true, true)
}

// Fig11d: TPC-C, synchronous replication baselines.
func Fig11d(o Options) {
	o.fig11(false, true)
}

func (o Options) fig11(isYCSB, sync bool) {
	name, mk := "TPC-C", o.tpccWorkload
	pbmk := o.pbTPCC
	if isYCSB {
		name, mk = "YCSB", o.ycsbWorkload
		pbmk = o.pbYCSB
	}
	mode := "async replication + epoch group commit"
	if sync {
		mode = "synchronous replication"
	}
	o.printf("# Figure 11 (%s, %s): throughput (k txns/s) vs %%cross-partition, 4 nodes\n", name, mode)
	if sync {
		o.printf("%-8s %-12s %-12s %-12s\n", "P%", "PB.OCC", "Dist.OCC", "Dist.S2PL")
	} else {
		o.printf("%-8s %-12s %-12s %-12s %-12s\n", "P%", "STAR", "PB.OCC", "Dist.OCC", "Dist.S2PL")
	}
	const nodes = 4
	for _, p := range o.crossPoints() {
		row := []float64{}
		if !sync {
			row = append(row, kTxnsPerSec(runSim(o.duration(), o.star(nodes, mk(nodes, p), nil))))
		}
		row = append(row,
			kTxnsPerSec(runSim(o.duration(), o.pbocc(pbmk(p), sync))),
			kTxnsPerSec(runSim(o.duration(), o.dist(nodes, mk(nodes, p), baseline.DistOCC, sync))),
			kTxnsPerSec(runSim(o.duration(), o.dist(nodes, mk(nodes, p), baseline.DistS2PL, sync))),
		)
		o.printf("%-8d", p)
		for _, v := range row {
			o.printf(" %-12.0f", v)
		}
		o.printf("\n")
	}
}

// ---- Figure 12: latency table ----

// Fig12 prints p50/p99 latency (ms) for the sync baselines at P ∈
// {10,50,90} plus the async group-commit row.
func Fig12(o Options) {
	o.printf("# Figure 12: latency ms (p50/p99), 4 nodes\n")
	o.printf("%-24s %-10s %-16s %-16s\n", "system", "workload", "P=10%", "P=50%/90%...")
	ps := []int{10, 50, 90}
	type mkfn struct {
		label string
		run   func(p int) metrics.Stats
	}
	const nodes = 4
	for _, wlName := range []string{"YCSB", "TPC-C"} {
		mk := o.ycsbWorkload
		pbmk := o.pbYCSB
		if wlName == "TPC-C" {
			mk = o.tpccWorkload
			pbmk = o.pbTPCC
		}
		rows := []mkfn{
			{"PB.OCC (sync)", func(p int) metrics.Stats {
				return runSim(o.duration(), o.pbocc(pbmk(p), true))
			}},
			{"Dist.OCC (sync)", func(p int) metrics.Stats {
				return runSim(o.duration(), o.dist(nodes, mk(nodes, p), baseline.DistOCC, true))
			}},
			{"Dist.S2PL (sync)", func(p int) metrics.Stats {
				return runSim(o.duration(), o.dist(nodes, mk(nodes, p), baseline.DistS2PL, true))
			}},
		}
		for _, r := range rows {
			o.printf("%-24s %-10s", r.label, wlName)
			for _, p := range ps {
				st := r.run(p)
				o.printf(" %5.2f/%-8.2f", ms(st.Latency.Quantile(.5)), ms(st.Latency.Quantile(.99)))
			}
			o.printf("\n")
		}
	}
	// Async rows (latency dominated by the epoch/iteration, §7.2.3).
	st := runSim(o.duration(), o.star(4, o.ycsbWorkload(4, 10), nil))
	o.printf("%-24s %-10s %5.2f/%-8.2f (group commit)\n", "STAR", "YCSB",
		ms(st.Latency.Quantile(.5)), ms(st.Latency.Quantile(.99)))
	st = runSim(o.duration(), o.pbocc(o.pbYCSB(10), false))
	o.printf("%-24s %-10s %5.2f/%-8.2f (group commit)\n", "PB.OCC (async)", "YCSB",
		ms(st.Latency.Quantile(.5)), ms(st.Latency.Quantile(.99)))
	st = runSim(o.duration(), o.dist(4, o.ycsbWorkload(4, 10), baseline.DistOCC, false))
	o.printf("%-24s %-10s %5.2f/%-8.2f (group commit)\n", "Dist.OCC (async)", "YCSB",
		ms(st.Latency.Quantile(.5)), ms(st.Latency.Quantile(.99)))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ---- Figure 13: Calvin comparison ----

// Fig13a: YCSB vs Calvin-x.
func Fig13a(o Options) { o.fig13(true) }

// Fig13b: TPC-C vs Calvin-x.
func Fig13b(o Options) { o.fig13(false) }

func (o Options) fig13(isYCSB bool) {
	name, mk := "TPC-C", o.tpccWorkload
	if isYCSB {
		name, mk = "YCSB", o.ycsbWorkload
	}
	lms := []int{2, 4, 6}
	if o.workers() <= 4 {
		lms = []int{1, 2, 3}
	}
	o.printf("# Figure 13 (%s): STAR vs Calvin-x, 4 nodes, k txns/s\n", name)
	o.printf("%-8s %-12s", "P%", "STAR")
	for _, x := range lms {
		o.printf(" %-12s", fmt.Sprintf("Calvin-%d", x))
	}
	o.printf("\n")
	const nodes = 4
	for _, p := range o.crossPoints() {
		o.printf("%-8d %-12.0f", p, kTxnsPerSec(runSim(o.duration(), o.star(nodes, mk(nodes, p), nil))))
		for _, x := range lms {
			o.printf(" %-12.0f", kTxnsPerSec(runSim(o.duration(), o.calvin(nodes, mk(nodes, p), x))))
		}
		o.printf("\n")
	}
}

// ---- Figure 14: phase transition overhead ----

// Fig14a sweeps the iteration time (YCSB, 4 nodes): throughput plus the
// overhead relative to a 200ms iteration.
func Fig14a(o Options) {
	o.printf("# Figure 14a: iteration time vs throughput and overhead (YCSB, 4 nodes, P=10%%)\n")
	o.printf("%-10s %-14s %-10s %-12s\n", "iter(ms)", "ktxns/s", "overhead", "fence-share")
	iters := []time.Duration{1, 2, 5, 10, 20, 50, 100, 200}
	base := -1.0
	for i := len(iters) - 1; i >= 0; i-- {
		it := iters[i] * time.Millisecond
		// Steady state needs several complete iterations per point.
		dur := o.duration() * 2
		if min := 6 * it; dur < min {
			dur = min
		}
		st := runSim(dur, o.star(4, o.ycsbWorkload(4, 10), func(c *core.Config) { c.Iteration = it }))
		tput := st.Throughput()
		if base < 0 {
			base = tput // 200ms reference, measured first
		}
		overhead := 100 * (1 - tput/base)
		if overhead < 0 {
			overhead = 0
		}
		o.printf("%-10d %-14.0f %-9.1f%% %-12.3f\n",
			iters[i], tput/1000, overhead, st.Extra["fence_share"])
	}
}

// Fig14b sweeps the node count at 10ms and 20ms iterations.
func Fig14b(o Options) {
	o.printf("# Figure 14b: phase-transition overhead vs nodes (YCSB, P=10%%)\n")
	o.printf("%-8s %-14s %-14s\n", "nodes", "ovh@10ms", "ovh@20ms")
	nodesList := []int{2, 4, 8, 16}
	if o.Short {
		nodesList = []int{2, 4, 8}
	}
	refIter := 200 * time.Millisecond
	for _, n := range nodesList {
		wl := o.ycsbWorkload(n, 10)
		ref := runSim(6*refIter, o.star(n, wl, func(c *core.Config) { c.Iteration = refIter })).Throughput()
		row := []float64{}
		for _, it := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond} {
			dur := o.duration()
			if min := 6 * it; dur < min {
				dur = min
			}
			tput := runSim(dur, o.star(n, wl, func(c *core.Config) { c.Iteration = it })).Throughput()
			ovh := 100 * (1 - tput/ref)
			if ovh < 0 {
				ovh = 0
			}
			row = append(row, ovh)
		}
		o.printf("%-8d %-13.1f%% %-13.1f%%\n", n, row[0], row[1])
	}
}

// ---- Figure 15: replication strategies and durability ----

// Fig15a compares SYNC STAR, STAR and STAR w/ hybrid replication on
// TPC-C, reporting throughput and replication bytes per transaction.
func Fig15a(o Options) {
	o.printf("# Figure 15a: replication strategies (TPC-C, 4 nodes), k txns/s [bytes/txn]\n")
	o.printf("%-8s %-22s %-22s %-22s\n", "P%", "SYNC STAR", "STAR", "STAR w/ Hybrid Rep.")
	const nodes = 4
	for _, p := range o.crossPoints() {
		wl := func() workload.Workload { return o.tpccWorkload(nodes, p) }
		sync := runSim(o.duration(), o.star(nodes, wl(), func(c *core.Config) { c.SyncRepl = true }))
		async := runSim(o.duration(), o.star(nodes, wl(), nil))
		hybrid := runSim(o.duration(), o.star(nodes, wl(), func(c *core.Config) { c.HybridRepl = true }))
		cell := func(st metrics.Stats) string {
			per := int64(0)
			if st.Committed > 0 {
				per = st.ReplicationBytes / st.Committed
			}
			return fmt.Sprintf("%.0f [%dB]", kTxnsPerSec(st), per)
		}
		o.printf("%-8d %-22s %-22s %-22s\n", p, cell(sync), cell(async), cell(hybrid))
	}
}

// Fig15b reports the disk-logging overhead on YCSB and TPC-C.
func Fig15b(o Options) {
	o.printf("# Figure 15b: durability overhead (4 nodes), k txns/s\n")
	o.printf("%-8s %-12s %-16s %-10s\n", "wl", "STAR", "STAR+logging", "overhead")
	const nodes = 4
	for _, wlName := range []string{"YCSB", "TPC-C"} {
		mk := func() workload.Workload {
			if wlName == "YCSB" {
				return o.ycsbWorkload(nodes, 10)
			}
			return o.tpccWorkload(nodes, -1) // paper default mix
		}
		plain := runSim(o.duration(), o.star(nodes, mk(), nil)).Throughput()
		logged := runSim(o.duration(), o.star(nodes, mk(), func(c *core.Config) { c.Logging = true })).Throughput()
		ovh := 100 * (1 - logged/plain)
		if ovh < 0 {
			ovh = 0
		}
		o.printf("%-8s %-12.0f %-16.0f %-9.1f%%\n", wlName, plain/1000, logged/1000, ovh)
	}
}

// ---- Figure 16: scalability ----

// Fig16a: YCSB scalability, 2..16 nodes.
func Fig16a(o Options) { o.fig16(true) }

// Fig16b: TPC-C scalability (network-bound beyond ~4 nodes).
func Fig16b(o Options) { o.fig16(false) }

func (o Options) fig16(isYCSB bool) {
	name, mk := "TPC-C", o.tpccWorkload
	if isYCSB {
		name, mk = "YCSB", o.ycsbWorkload
	}
	o.printf("# Figure 16 (%s): scalability, k txns/s\n", name)
	o.printf("%-8s %-12s %-12s %-12s %-12s\n", "nodes", "STAR", "Dist.OCC", "Dist.S2PL", "Calvin")
	nodesList := []int{2, 4, 8, 16}
	if o.Short {
		nodesList = []int{2, 4, 8}
	}
	lm := 4
	if o.workers() <= 4 {
		lm = 2
	}
	for _, n := range nodesList {
		o.printf("%-8d %-12.0f %-12.0f %-12.0f %-12.0f\n", n,
			kTxnsPerSec(runSim(o.duration(), o.star(n, mk(n, -1), nil))),
			kTxnsPerSec(runSim(o.duration(), o.dist(n, mk(n, -1), baseline.DistOCC, false))),
			kTxnsPerSec(runSim(o.duration(), o.dist(n, mk(n, -1), baseline.DistS2PL, false))),
			kTxnsPerSec(runSim(o.duration(), o.calvin(n, mk(n, -1), lm))))
	}
}

// Experiments maps experiment ids to their runners.
var Experiments = map[string]func(Options){
	"fig3":   Fig03,
	"fig10":  Fig10,
	"fig11a": Fig11a,
	"fig11b": Fig11b,
	"fig11c": Fig11c,
	"fig11d": Fig11d,
	"fig12":  Fig12,
	"fig13a": Fig13a,
	"fig13b": Fig13b,
	"fig14a": Fig14a,
	"fig14b": Fig14b,
	"fig15a": Fig15a,
	"fig15b": Fig15b,
	"fig16a": Fig16a,
	"fig16b": Fig16b,
}

// Order lists experiment ids in paper order.
var Order = []string{
	"fig3", "fig10", "fig11a", "fig11b", "fig11c", "fig11d", "fig12",
	"fig13a", "fig13b", "fig14a", "fig14b", "fig15a", "fig15b",
	"fig16a", "fig16b",
}
