package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// PointDelta compares one (workload, engine, cross%) measurement between
// a committed baseline and a fresh run.
type PointDelta struct {
	Workload string  `json:"workload"`
	Engine   string  `json:"engine"`
	CrossPct int     `json:"cross_pct"`
	BaseTput float64 `json:"base_throughput_txn_s"`
	CurTput  float64 `json:"cur_throughput_txn_s"`
	// DeltaPct is the throughput change in percent (+ is faster).
	DeltaPct float64 `json:"delta_pct"`
	// BaseMsgs/CurMsgs carry replication msgs per commit for context.
	BaseMsgs float64 `json:"base_msgs_per_commit"`
	CurMsgs  float64 `json:"cur_msgs_per_commit"`
	// Regressed marks deltas below the caller's threshold.
	Regressed bool `json:"regressed"`
}

// DiffResults matches the two bundles point-by-point and flags
// throughput regressions beyond thresholdPct percent. Points present in
// only one bundle are skipped (the comparison covers the intersection,
// so a sweep subset can be checked against a full baseline).
func DiffResults(baseline, current SweepResults, thresholdPct float64) []PointDelta {
	type key struct {
		wl     string
		engine string
		cross  int
	}
	base := map[key]SweepPoint{}
	for _, p := range baseline.Results {
		base[key{p.Workload, p.Engine, p.CrossPct}] = p
	}
	var out []PointDelta
	for _, p := range current.Results {
		b, ok := base[key{p.Workload, p.Engine, p.CrossPct}]
		if !ok {
			continue
		}
		d := PointDelta{
			Workload: p.Workload, Engine: p.Engine, CrossPct: p.CrossPct,
			BaseTput: b.ThroughputTxnS, CurTput: p.ThroughputTxnS,
			BaseMsgs: b.MsgsPerCommit, CurMsgs: p.MsgsPerCommit,
		}
		if b.ThroughputTxnS > 0 {
			d.DeltaPct = 100 * (p.ThroughputTxnS - b.ThroughputTxnS) / b.ThroughputTxnS
		}
		d.Regressed = d.DeltaPct < -thresholdPct
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeltaPct < out[j].DeltaPct })
	return out
}

// Regressions filters the deltas down to the flagged ones.
func Regressions(deltas []PointDelta) []PointDelta {
	var out []PointDelta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// FormatDelta renders one delta as a report line.
func FormatDelta(d PointDelta) string {
	mark := " "
	if d.Regressed {
		mark = "!"
	}
	return fmt.Sprintf("%s %-5s %-10s P=%-3d  %9.0f -> %9.0f txn/s  %+6.1f%%  (%.2f -> %.2f msg/txn)",
		mark, d.Workload, d.Engine, d.CrossPct,
		d.BaseTput, d.CurTput, d.DeltaPct, d.BaseMsgs, d.CurMsgs)
}

// ReadResultsFile loads a BENCH_results.json bundle, validating its
// schema tag.
func ReadResultsFile(path string) (SweepResults, error) {
	var res SweepResults
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("bench: %s: %w", path, err)
	}
	if res.Schema != ResultsSchema {
		return res, fmt.Errorf("bench: %s: schema %q, want %q", path, res.Schema, ResultsSchema)
	}
	return res, nil
}
