package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOptionDefaults(t *testing.T) {
	paper := Options{}
	if paper.workers() != 12 {
		t.Fatalf("paper workers=%d, want 12 (§7.1)", paper.workers())
	}
	if paper.duration() != 250*time.Millisecond {
		t.Fatalf("paper duration=%v", paper.duration())
	}
	if paper.bandwidth() != 2.4e9 {
		t.Fatalf("paper bandwidth=%v", paper.bandwidth())
	}

	short := Options{Short: true}
	if short.workers() != 4 {
		t.Fatalf("short workers=%d, want 4", short.workers())
	}
	if short.duration() != 60*time.Millisecond {
		t.Fatalf("short duration=%v", short.duration())
	}
	if short.bandwidth() != 800e6 {
		t.Fatalf("short bandwidth=%v", short.bandwidth())
	}

	over := Options{Short: true, Duration: 5 * time.Millisecond}
	if over.duration() != 5*time.Millisecond {
		t.Fatalf("duration override=%v, want 5ms", over.duration())
	}

	net := short.netCfg(4)
	if net.Nodes != 5 {
		t.Fatalf("netCfg nodes=%d, want nodes+1 for the coordinator", net.Nodes)
	}
	if net.Latency != 50*time.Microsecond || net.Jitter != 10*time.Microsecond {
		t.Fatalf("netCfg latency=%v jitter=%v", net.Latency, net.Jitter)
	}
	if net.Bandwidth != short.bandwidth() {
		t.Fatalf("netCfg bandwidth=%v", net.Bandwidth)
	}

	y := short.ycsbRecords()
	if y != 4096 {
		t.Fatalf("short ycsb records=%d", y)
	}
	tc := short.tpccCfg(8)
	if tc.Warehouses != 8 || tc.Districts != 4 || tc.Items != 512 {
		t.Fatalf("short tpcc cfg=%+v", tc)
	}
}

func TestSweepConfigDefaults(t *testing.T) {
	cfg := SweepConfig{}.withDefaults(Options{Short: true})
	if cfg.Nodes != 4 {
		t.Fatalf("nodes=%d", cfg.Nodes)
	}
	if len(cfg.Workloads) != 3 || len(cfg.Engines) != 5 {
		t.Fatalf("defaults: workloads=%v engines=%v", cfg.Workloads, cfg.Engines)
	}
	if len(cfg.CrossPcts) == 0 {
		t.Fatal("no cross points")
	}
}

func TestUnknownSweepEngineErrors(t *testing.T) {
	o := Options{Out: io.Discard, Short: true, Duration: time.Millisecond, Seed: 1}
	_, err := RunSweep(o, SweepConfig{Engines: []string{"bogus"}, CrossPcts: []int{0}, Workloads: []string{"ycsb"}, SkipBatching: true})
	if err == nil {
		t.Fatal("unknown engine must error, not silently skip")
	}
	_, err = RunSweep(o, SweepConfig{Engines: []string{"STAR"}, CrossPcts: []int{0}, Workloads: []string{"YCSB"}, SkipBatching: true})
	if err == nil {
		t.Fatal("unknown workload must error, not fall through to TPC-C")
	}
}

// Smoke sweep at tiny duration: the full engine lineup must produce a
// well-formed BENCH_results.json.
func TestSweepSmokeWritesWellFormedJSON(t *testing.T) {
	o := Options{Out: io.Discard, Short: true, Duration: 6 * time.Millisecond, Seed: 7}
	cfg := SweepConfig{CrossPcts: []int{0, 100}}
	res, err := RunSweep(o, cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := WriteResultsFile(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("results file is not valid JSON: %v", err)
	}

	if back.Schema != ResultsSchema {
		t.Fatalf("schema=%q, want %q", back.Schema, ResultsSchema)
	}
	wantPoints := len(SweepWorkloads) * len(SweepEngines) * len(cfg.CrossPcts)
	if len(back.Results) != wantPoints {
		t.Fatalf("got %d sweep points, want %d", len(back.Results), wantPoints)
	}
	seen := map[string]bool{}
	for _, pt := range back.Results {
		seen[pt.Workload+"/"+pt.Engine] = true
		if pt.Workload == "" || pt.Engine == "" || pt.Nodes == 0 {
			t.Fatalf("point missing identity fields: %+v", pt)
		}
		if pt.ThroughputTxnS < 0 || pt.AbortRate < 0 || pt.AbortRate > 1 {
			t.Fatalf("implausible point: %+v", pt)
		}
	}
	if len(seen) != len(SweepWorkloads)*len(SweepEngines) {
		t.Fatalf("workload×engine coverage incomplete: %v", seen)
	}
	// STAR must actually commit and replicate even in a 6ms run.
	for _, pt := range back.Results {
		if pt.Engine == "STAR" && pt.CrossPct == 0 && pt.Committed == 0 {
			t.Fatalf("STAR committed nothing: %+v", pt)
		}
	}
	// The batching comparison ships with the bundle and must show the
	// batched mode at or below the seed's messages per commit.
	if len(back.Batching) != 2*len(SweepWorkloads) {
		t.Fatalf("batching comparison has %d rows, want %d", len(back.Batching), 2*len(SweepWorkloads))
	}
	byMode := map[string]map[string]BatchingPoint{}
	for _, bp := range back.Batching {
		if byMode[bp.Workload] == nil {
			byMode[bp.Workload] = map[string]BatchingPoint{}
		}
		byMode[bp.Workload][bp.Mode] = bp
	}
	for wl, modes := range byMode {
		seed, ok1 := modes["seed-16-entry"]
		batched, ok2 := modes["batched"]
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing batching modes: %v", wl, modes)
		}
		if seed.Committed > 0 && batched.Committed > 0 && batched.MsgsPerCommit > seed.MsgsPerCommit {
			t.Fatalf("%s: batched %.3f msg/txn exceeds seed %.3f", wl, batched.MsgsPerCommit, seed.MsgsPerCommit)
		}
	}
}
