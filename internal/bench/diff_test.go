package bench

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// mkResults builds a bundle from "workload/engine/crossPct" → throughput.
func mkResults(t *testing.T, tputs map[string]float64) SweepResults {
	t.Helper()
	res := SweepResults{Schema: ResultsSchema}
	for k, v := range tputs {
		f := strings.Split(k, "/")
		cross, err := strconv.Atoi(f[2])
		if err != nil {
			t.Fatal(err)
		}
		res.Results = append(res.Results, SweepPoint{
			Workload: f[0], Engine: f[1], CrossPct: cross, ThroughputTxnS: v,
		})
	}
	return res
}

func TestDiffResultsFlagsRegressions(t *testing.T) {
	base := mkResults(t, map[string]float64{
		"ycsb/STAR/0":  1000,
		"ycsb/STAR/50": 500,
		"tpcc/STAR/0":  2000,
	})
	cur := mkResults(t, map[string]float64{
		"ycsb/STAR/0":   1010, // +1%: fine
		"ycsb/STAR/50":  400,  // -20%: regression at 15%
		"tpcc/Calvin/0": 1,    // not in baseline: skipped
	})
	deltas := DiffResults(base, cur, 15)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (intersection only): %+v", len(deltas), deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].CrossPct != 50 {
		t.Fatalf("regressions: %+v", regs)
	}
	if regs[0].DeltaPct > -19 || regs[0].DeltaPct < -21 {
		t.Fatalf("delta %f, want about -20", regs[0].DeltaPct)
	}
	if !strings.Contains(FormatDelta(regs[0]), "!") {
		t.Fatal("regressed delta must carry the ! marker")
	}
	// A looser threshold clears it.
	if r := Regressions(DiffResults(base, cur, 25)); len(r) != 0 {
		t.Fatalf("25%% threshold must pass, got %+v", r)
	}
}

func TestReadResultsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	res := mkResults(t, map[string]float64{"ycsb/STAR/0": 123})
	res.Seed = 42
	if err := WriteResultsFile(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || len(got.Results) != 1 || got.Results[0].ThroughputTxnS != 123 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Schema mismatch must fail loudly.
	bad := res
	bad.Schema = "other/v9"
	if err := WriteResultsFile(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResultsFile(path); err == nil {
		t.Fatal("schema mismatch must error")
	}
}
