package replication

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
)

func bankSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Field{Name: "balance", Type: storage.FieldInt64},
		storage.Field{Name: "note", Type: storage.FieldBytes, Cap: 32},
	)
}

func newDB() *storage.DB {
	db := storage.NewDB(2, nil)
	tbl := db.AddTable("acct", bankSchema(), false)
	s := tbl.Schema()
	for p := 0; p < 2; p++ {
		for i := uint64(0); i < 10; i++ {
			row := s.NewRow()
			s.SetInt64(row, 0, 100)
			tbl.Insert(p, storage.K1(i), 1, storage.MakeTID(1, i+1), row)
		}
	}
	return db
}

func TestApplyValueEntryThomasRule(t *testing.T) {
	db := newDB()
	tbl := db.Table(0)
	s := tbl.Schema()
	row := s.NewRow()
	s.SetInt64(row, 0, 777)

	e := &Entry{Table: 0, Part: 0, Key: storage.K1(3), TID: storage.MakeTID(2, 5), Row: row}
	if _, err := Apply(db, 2, e, false); err != nil {
		t.Fatal(err)
	}
	v, tid, _ := tbl.Get(0, storage.K1(3)).ReadStable(nil)
	if s.GetInt64(v, 0) != 777 || tid != storage.MakeTID(2, 5) {
		t.Fatalf("value apply failed: %d %s", s.GetInt64(v, 0), storage.FormatTID(tid))
	}
	// A stale entry must be ignored.
	old := s.NewRow()
	s.SetInt64(old, 0, 1)
	stale := &Entry{Table: 0, Part: 0, Key: storage.K1(3), TID: storage.MakeTID(2, 4), Row: old}
	if _, err := Apply(db, 2, stale, false); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tbl.Get(0, storage.K1(3)).ReadStable(nil)
	if s.GetInt64(v, 0) != 777 {
		t.Fatal("stale value overwrote newer one: Thomas rule broken")
	}
}

func TestApplyOpEntryAndRowTransform(t *testing.T) {
	db := newDB()
	tbl := db.Table(0)
	s := tbl.Schema()
	e := &Entry{
		Table: 0, Part: 1, Key: storage.K1(2), TID: storage.MakeTID(2, 9),
		Ops: []storage.FieldOp{storage.AddInt64Op(0, -25)},
	}
	row, err := Apply(db, 2, e, true)
	if err != nil {
		t.Fatal(err)
	}
	// §5: before logging, op entries are transformed into full rows.
	if row == nil || s.GetInt64(row, 0) != 75 {
		t.Fatalf("row transform: %v", row)
	}
	v, _, _ := tbl.Get(1, storage.K1(2)).ReadStable(nil)
	if s.GetInt64(v, 0) != 75 {
		t.Fatalf("op apply: %d", s.GetInt64(v, 0))
	}
}

func TestApplyInsertAndDelete(t *testing.T) {
	db := newDB()
	tbl := db.Table(0)
	s := tbl.Schema()
	row := s.NewRow()
	s.SetInt64(row, 0, 5)
	ins := &Entry{Table: 0, Part: 0, Key: storage.K1(55), TID: storage.MakeTID(2, 1), Row: row}
	if _, err := Apply(db, 2, ins, false); err != nil {
		t.Fatal(err)
	}
	if tbl.Get(0, storage.K1(55)) == nil {
		t.Fatal("insert not applied")
	}
	del := &Entry{Table: 0, Part: 0, Key: storage.K1(55), TID: storage.MakeTID(2, 2), Absent: true}
	if _, err := Apply(db, 2, del, false); err != nil {
		t.Fatal(err)
	}
	if _, _, present := tbl.Get(0, storage.K1(55)).ReadStable(nil); present {
		t.Fatal("delete not applied")
	}
}

func TestApplyUnheldPartitionErrors(t *testing.T) {
	db := storage.NewDB(2, []bool{true, false})
	db.AddTable("acct", bankSchema(), false)
	e := &Entry{Table: 0, Part: 1, Key: storage.K1(1), TID: 5, Row: bankSchema().NewRow()}
	if _, err := Apply(db, 1, e, false); err == nil {
		t.Fatal("applying to an unheld partition must error")
	}
}

func TestEntrySizesOpMuchSmallerThanValue(t *testing.T) {
	// The §5 claim behind hybrid replication: a Payment-style delta is an
	// order of magnitude smaller than the full record.
	big := storage.NewSchema(
		storage.Field{Name: "ytd", Type: storage.FieldFloat64},
		storage.Field{Name: "data", Type: storage.FieldBytes, Cap: 500},
	)
	row := big.NewRow()
	val := Entry{Table: 0, Part: 0, Key: storage.K1(1), TID: 1, Row: row}
	op := Entry{Table: 0, Part: 0, Key: storage.K1(1), TID: 1,
		Ops: []storage.FieldOp{storage.AddFloat64Op(0, 1.0)}}
	if val.Size() < 500 {
		t.Fatalf("value entry suspiciously small: %d", val.Size())
	}
	if op.Size()*10 > val.Size() {
		t.Fatalf("op entry %dB not ≥10x smaller than value entry %dB", op.Size(), val.Size())
	}
}

func TestValueAndOpEntryBuilders(t *testing.T) {
	var set txn.RWSet
	set.AddWrite(0, 1, storage.K1(5), storage.AddInt64Op(0, 3))
	set.Writes[0].Row = []byte{1, 2, 3} // as collected by occ commit
	set.AddInsert(0, 1, storage.K1(6), []byte{9, 9})

	ve := ValueEntries(&set, 42)
	if len(ve) != 2 || ve[0].IsOp() || ve[1].IsOp() {
		t.Fatalf("value entries: %+v", ve)
	}
	oe := OpEntries(&set, 42)
	if len(oe) != 2 || !oe[0].IsOp() || oe[1].IsOp() {
		t.Fatal("op entries: updates as ops, inserts as values")
	}
	if oe[0].TID != 42 || !bytes.Equal(oe[1].Row, []byte{9, 9}) {
		t.Fatal("entry payloads wrong")
	}
}

func TestStreamBatchingAndTracker(t *testing.T) {
	s := rt.NewSim()
	net := simnet.New(s, simnet.Config{Nodes: 2, Latency: 10 * time.Microsecond})
	tr0 := NewTracker(2)
	tr1 := NewTracker(2)
	db1 := newDB()

	s.Go("worker0", func() {
		st := NewStream(net, tr0, 0, Limits{Entries: 4})
		row := bankSchema().NewRow()
		for i := uint64(0); i < 10; i++ {
			st.Append(1, Entry{Table: 0, Part: 0, Key: storage.K1(i), TID: storage.MakeTID(2, i+10), Row: row})
		}
		st.Append(0, Entry{}) // self-append must be dropped
		st.Flush()
	})
	s.Go("applier1", func() {
		for {
			b := net.Inbox(1).Recv().(*Batch)
			for i := range b.Entries {
				if _, err := Apply(db1, 2, &b.Entries[i], false); err != nil {
					t.Error(err)
				}
			}
			tr1.AddApplied(b.From, int64(len(b.Entries)))
		}
	})
	s.Run(time.Second)
	if got := tr0.SentVector(); got[1] != 10 || got[0] != 0 {
		t.Fatalf("sent vector %v", got)
	}
	if tr1.Applied(0) != 10 {
		t.Fatalf("applied %d", tr1.Applied(0))
	}
	if !tr1.Drained([]int64{10, 0}) {
		t.Fatal("tracker must report drained")
	}
	if tr1.Drained([]int64{11, 0}) {
		t.Fatal("tracker must not report drained early")
	}
	// Batching: 10 entries with an entry limit of 4 → 3 messages.
	if n := net.Messages(transport.Replication); n != 3 {
		t.Fatalf("messages=%d, want 3 batches", n)
	}
	s.Stop()
}

// A byte-bounded stream coalesces an entire burst of writes into
// O(destinations) envelopes: this is the delta-batching the partitioned
// phase relies on (§4.3 — writes ship in bulk behind the epoch fence).
func TestStreamByteBoundCoalesces(t *testing.T) {
	s := rt.NewSim()
	net := simnet.New(s, simnet.Config{Nodes: 3, Latency: 10 * time.Microsecond})
	tr := NewTracker(3)
	row := bankSchema().NewRow()
	proto := Entry{Table: 0, Part: 0, Key: storage.K1(0), TID: 1, Row: row}
	entrySize := proto.Size()

	const writes = 100
	s.Go("worker0", func() {
		// Byte bound sized to hold ~half the burst per destination (off by
		// one so the second half stays buffered until the explicit Flush).
		st := NewStream(net, tr, 0, Limits{Bytes: writes/2*entrySize + 1})
		st.SetEpoch(7)
		for i := uint64(0); i < writes; i++ {
			e := Entry{Table: 0, Part: 0, Key: storage.K1(i), TID: storage.MakeTID(2, i+1), Row: row}
			st.Broadcast([]int{1, 2}, e)
		}
		if st.Buffered() == 0 {
			t.Error("expected a partial batch still buffered before Flush")
		}
		st.Flush()
		if st.Buffered() != 0 {
			t.Error("Flush left entries behind")
		}
	})
	drained := make([]int, 3)
	for _, dst := range []int{1, 2} {
		dst := dst
		s.Go("applier", func() {
			for {
				b := net.Inbox(dst).Recv().(*Batch)
				if b.Epoch != 7 {
					t.Errorf("batch epoch %d, want 7", b.Epoch)
				}
				drained[dst] += len(b.Entries)
			}
		})
	}
	s.Run(time.Second)
	if drained[1] != writes || drained[2] != writes {
		t.Fatalf("delivered %v, want %d per destination", drained, writes)
	}
	// 100 writes × 2 destinations, byte bound at ~50 entries → 4 envelopes
	// (2 per destination), not 200.
	if n := net.Messages(transport.Replication); n != 4 {
		t.Fatalf("messages=%d, want 4 byte-bounded envelopes", n)
	}
	if v := tr.SentVector(); v[1] != writes || v[2] != writes {
		t.Fatalf("sent vector %v must count entries, not envelopes", v)
	}
	s.Stop()
}

// SetEpoch must not let an envelope mix epochs: leftovers flush first.
func TestStreamEpochRolloverFlushes(t *testing.T) {
	s := rt.NewSim()
	net := simnet.New(s, simnet.Config{Nodes: 2})
	tr := NewTracker(2)
	row := bankSchema().NewRow()
	var epochs []uint64
	s.Go("worker", func() {
		st := NewStream(net, tr, 0, Limits{})
		st.SetEpoch(3)
		st.Append(1, Entry{Table: 0, Part: 0, Key: storage.K1(1), TID: 1, Row: row})
		st.SetEpoch(4) // must ship the epoch-3 entry before relabeling
		st.Append(1, Entry{Table: 0, Part: 0, Key: storage.K1(2), TID: 2, Row: row})
		st.Flush()
	})
	s.Go("recv", func() {
		for {
			epochs = append(epochs, net.Inbox(1).Recv().(*Batch).Epoch)
		}
	})
	s.Run(100 * time.Millisecond)
	if len(epochs) != 2 || epochs[0] != 3 || epochs[1] != 4 {
		t.Fatalf("batch epochs %v, want [3 4]", epochs)
	}
	s.Stop()
}

// Property: replicas that receive the same set of value entries in
// different orders converge to identical partition checksums.
func TestReplicaConvergenceAnyOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := bankSchema()
		var entries []Entry
		for i := 0; i < 40; i++ {
			row := s.NewRow()
			storage.NewSchema().RowSize() // no-op keepalive for coverage
			sc := bankSchema()
			sc.SetInt64(row, 0, rng.Int63n(1000))
			entries = append(entries, Entry{
				Table: 0, Part: 0,
				Key: storage.K1(uint64(rng.Intn(8))),
				TID: storage.MakeTID(2, uint64(i+1)),
				Row: row,
			})
		}
		mkReplica := func(order []int) *storage.DB {
			db := storage.NewDB(1, nil)
			db.AddTable("acct", bankSchema(), false)
			for _, idx := range order {
				e := entries[idx]
				if _, err := Apply(db, 2, &e, false); err != nil {
					t.Fatal(err)
				}
			}
			return db
		}
		orderA := rng.Perm(len(entries))
		orderB := rng.Perm(len(entries))
		a, b := mkReplica(orderA), mkReplica(orderB)
		return a.PartitionChecksum(0) == b.PartitionChecksum(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The stream must copy entry payloads into its own arenas: callers reuse
// their Row/Ops buffers immediately after Append (the zero-allocation
// commit path), and the buffered entries must not see those mutations.
func TestStreamCopiesPayloads(t *testing.T) {
	s := rt.NewSim()
	net := simnet.New(s, simnet.Config{Nodes: 2})
	tr := NewTracker(2)
	var got []Entry
	s.Go("worker", func() {
		st := NewStream(net, tr, 0, Limits{})
		row := []byte{1, 2, 3}
		arg := []byte{7}
		st.Append(1, Entry{Table: 0, Part: 0, Key: storage.K1(1), TID: 1, Row: row})
		st.Append(1, Entry{Table: 0, Part: 0, Key: storage.K1(2), TID: 2,
			Ops: []storage.FieldOp{{Field: 0, Kind: storage.OpAddInt64, Arg: arg}}})
		row[0] = 99 // caller reuses its buffers
		arg[0] = 99
		st.Flush()
	})
	s.Go("recv", func() {
		for {
			b := net.Inbox(1).Recv().(*Batch)
			got = append(got, b.Entries...)
		}
	})
	s.Run(100 * time.Millisecond)
	s.Stop()
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	if !bytes.Equal(got[0].Row, []byte{1, 2, 3}) {
		t.Fatalf("row mutated through the stream: %v", got[0].Row)
	}
	if got[0].IsOp() || !got[1].IsOp() {
		t.Fatal("entry kinds lost in arena copy")
	}
	if !bytes.Equal(got[1].Ops[0].Arg, []byte{7}) {
		t.Fatalf("op arg mutated through the stream: %v", got[1].Ops[0].Arg)
	}
}

// Adaptive mode re-derives each destination's byte threshold at the
// epoch boundary from the measured volume: growth-only past the
// configured bound, capped at AdaptiveMaxBytes, falling back to the
// configured bound on quiet epochs.
func TestStreamAdaptiveThreshold(t *testing.T) {
	s := rt.NewSim()
	net := simnet.New(s, simnet.Config{Nodes: 2})
	tr := NewTracker(2)
	row := make([]byte, 1000)
	s.Go("worker", func() {
		const configured = 4 << 10
		st := NewStream(net, tr, 0, Limits{Bytes: configured, Adaptive: true})
		st.SetEpoch(2)
		e := Entry{Table: 0, Part: 0, Key: storage.K1(1), TID: 1, Row: row}
		// ~640KB this epoch → next threshold ≈ 640KB/64 = 10KB.
		for i := 0; i < 640; i++ {
			st.Append(1, e)
		}
		st.SetEpoch(3)
		grown := st.bufs[1].limit
		if grown <= configured || grown > AdaptiveMaxBytes {
			t.Errorf("epoch-3 threshold %d, want grown above the configured %d", grown, configured)
		}
		// Epochs alternate phases, so one idle epoch (the other phase)
		// must not collapse the threshold...
		st.Append(1, e)
		st.SetEpoch(4)
		if lim := st.bufs[1].limit; lim != grown {
			t.Errorf("epoch-4 threshold %d, want still %d after one idle epoch", lim, grown)
		}
		// ...but two consecutive quiet epochs return it to the
		// configured bound — adaptation never shrinks below that.
		st.Append(1, e)
		st.SetEpoch(5)
		if lim := st.bufs[1].limit; lim != configured {
			t.Errorf("epoch-5 threshold %d, want configured %d", lim, configured)
		}
	})
	s.Go("recv", func() {
		for {
			net.Inbox(1).Recv()
		}
	})
	s.Run(100 * time.Millisecond)
	s.Stop()
}
