// Package replication implements STAR's replication machinery (§3, §5):
// value entries (full records, applied in any order under the Thomas
// write rule), operation entries (small field deltas, applied FIFO per
// partition), per-destination batched streams, and the sent/applied
// counters the replication fence reconciles at every phase switch.
package replication

import (
	"fmt"
	"sync/atomic"

	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/txn"
)

// Entry is one replicated write. Exactly one of Row/Ops is meaningful:
// a value entry carries the whole row (or a tombstone), an operation
// entry carries field deltas.
type Entry struct {
	Table  storage.TableID
	Part   int32
	Key    storage.Key
	TID    uint64
	Row    []byte
	Absent bool
	Ops    []storage.FieldOp
}

// IsOp reports whether this is an operation-replication entry.
func (e *Entry) IsOp() bool { return e.Ops != nil }

// Size returns the modelled wire size in bytes.
func (e *Entry) Size() int {
	n := 1 + 1 + 4 + storage.KeySize + 8 // kind+table+part+key+tid
	if e.IsOp() {
		for _, op := range e.Ops {
			n += op.Size()
		}
		return n
	}
	return n + 2 + len(e.Row)
}

// Apply installs the entry into db for the given epoch. Value entries use
// the Thomas write rule; operation entries apply unconditionally in
// arrival order (FIFO per partition is guaranteed by the transport).
// When wantRow is true it returns a copy of the record's value after
// application (the §5 op→value transformation used before disk logging);
// for value entries the entry's own Row serves and nil is returned.
func Apply(db *storage.DB, epoch uint64, e *Entry, wantRow bool) ([]byte, error) {
	tbl := db.Table(e.Table)
	part := tbl.Partition(int(e.Part))
	if part == nil {
		return nil, fmt.Errorf("replication: partition %d not held", e.Part)
	}
	rec := part.GetOrCreate(e.Key)
	if e.IsOp() {
		rec.Lock()
		first, err := rec.ApplyOpsLocked(tbl.Schema(), epoch, e.TID, e.Ops)
		if err != nil {
			rec.Unlock()
			return nil, err
		}
		var row []byte
		if wantRow {
			row = append(row, rec.ValueLocked()...)
		}
		rec.UnlockWithTID(storage.TIDClean(e.TID))
		if first {
			part.MarkDirty(rec)
		}
		return row, nil
	}
	_, first := rec.ApplyValueThomas(epoch, e.TID, e.Row, e.Absent)
	if first {
		part.MarkDirty(rec)
	}
	return nil, nil
}

// ValueEntries builds value entries from a committed write set whose
// final rows were collected at commit (occ collectRows=true).
func ValueEntries(set *txn.RWSet, tid uint64) []Entry {
	out := make([]Entry, 0, len(set.Writes))
	for i := range set.Writes {
		w := &set.Writes[i]
		out = append(out, Entry{
			Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid,
			Row: append([]byte(nil), w.Row...),
		})
	}
	return out
}

// OpEntries builds operation entries from a committed write set; inserts
// (which have no delta form) become value entries.
func OpEntries(set *txn.RWSet, tid uint64) []Entry {
	out := make([]Entry, 0, len(set.Writes))
	for i := range set.Writes {
		w := &set.Writes[i]
		if w.Insert {
			out = append(out, Entry{
				Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid,
				Row: append([]byte(nil), w.Row...),
			})
			continue
		}
		ops := make([]storage.FieldOp, len(w.Ops))
		copy(ops, w.Ops)
		out = append(out, Entry{
			Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid, Ops: ops,
		})
	}
	return out
}

// Batch is the wire envelope carrying coalesced entries from one node to
// another: the partitioned phase ships one of these per destination per
// size/epoch flush instead of one message per write. Epoch is the epoch
// the entries were committed in (0 when the sender predates epochs, e.g.
// ad-hoc test streams).
type Batch struct {
	From    int
	Epoch   uint64
	Entries []Entry
}

// Size implements simnet.Message.
func (b *Batch) Size() int {
	n := 24
	for i := range b.Entries {
		n += b.Entries[i].Size()
	}
	return n
}

// Tracker counts entries sent to and applied from each peer; the
// replication fence compares the two sides (§4.3: "each node learns how
// many outstanding writes it is waiting to see").
type Tracker struct {
	sent    []atomic.Int64 // indexed by destination
	applied []atomic.Int64 // indexed by source
}

// NewTracker creates a tracker for a cluster of n nodes.
func NewTracker(n int) *Tracker {
	return &Tracker{sent: make([]atomic.Int64, n), applied: make([]atomic.Int64, n)}
}

// AddSent records n entries shipped to dst.
func (t *Tracker) AddSent(dst int, n int64) { t.sent[dst].Add(n) }

// AddApplied records n entries applied from src.
func (t *Tracker) AddApplied(src int, n int64) { t.applied[src].Add(n) }

// SentVector snapshots the per-destination sent counts.
func (t *Tracker) SentVector() []int64 {
	v := make([]int64, len(t.sent))
	for i := range t.sent {
		v[i] = t.sent[i].Load()
	}
	return v
}

// Applied returns the count applied from src.
func (t *Tracker) Applied(src int) int64 { return t.applied[src].Load() }

// Drained reports whether everything expected from each source has been
// applied. expected[i] is the count source i claims to have sent us.
func (t *Tracker) Drained(expected []int64) bool {
	for i, want := range expected {
		if t.applied[i].Load() < want {
			return false
		}
	}
	return true
}

// Limits bounds a stream's per-destination batch growth. A zero field
// means "no bound on that axis"; an all-zero Limits flushes only at
// explicit Flush calls (the epoch fence).
type Limits struct {
	// Entries flushes a destination once this many entries are buffered.
	Entries int
	// Bytes flushes a destination once its buffered modelled wire size
	// reaches this many bytes.
	Bytes int
}

// dstBuf is one destination's pending batch plus its wire-size estimate.
type dstBuf struct {
	entries []Entry
	bytes   int
}

// Stream accumulates entries per destination and ships them as batched
// Batch envelopes: a partitioned-phase epoch produces O(destinations ×
// epochBytes/Limits.Bytes) messages instead of O(writes). One stream per
// worker thread keeps it contention-free; the shared Tracker is atomic.
// The fence accounting is per entry, not per envelope: AddSent counts
// len(entries) at flush time, so Sent/Expected reconcile exactly however
// the entries were packed.
type Stream struct {
	net     *simnet.Network
	tracker *Tracker
	src     int
	lim     Limits
	epoch   uint64
	buf     map[int]*dstBuf
}

// NewStream creates a stream for worker threads on node src; batches
// flush automatically at the given limits and at explicit Flush calls.
func NewStream(net *simnet.Network, tracker *Tracker, src int, lim Limits) *Stream {
	return &Stream{net: net, tracker: tracker, src: src, lim: lim, buf: make(map[int]*dstBuf)}
}

// SetEpoch stamps subsequently flushed batches with epoch. Any entries
// still buffered from the previous epoch are flushed first so an
// envelope never mixes epochs (callers flush at the fence anyway; this
// is the backstop).
func (s *Stream) SetEpoch(epoch uint64) {
	if epoch != s.epoch {
		s.Flush()
		s.epoch = epoch
	}
}

// Append queues e for dst, flushing the destination's batch when a limit
// is hit. Local (src==dst) appends are dropped: a node does not
// replicate to itself.
func (s *Stream) Append(dst int, e Entry) {
	if dst == s.src {
		return
	}
	b := s.buf[dst]
	if b == nil {
		b = &dstBuf{}
		s.buf[dst] = b
	}
	b.entries = append(b.entries, e)
	b.bytes += e.Size()
	if (s.lim.Entries > 0 && len(b.entries) >= s.lim.Entries) ||
		(s.lim.Bytes > 0 && b.bytes >= s.lim.Bytes) {
		s.flushDst(dst, b)
	}
}

// Broadcast appends e for every destination in dsts.
func (s *Stream) Broadcast(dsts []int, e Entry) {
	for _, d := range dsts {
		s.Append(d, e)
	}
}

func (s *Stream) flushDst(dst int, b *dstBuf) {
	if len(b.entries) == 0 {
		return
	}
	entries := b.entries
	b.entries, b.bytes = nil, 0
	s.tracker.AddSent(dst, int64(len(entries)))
	s.net.Send(s.src, dst, simnet.Replication, &Batch{From: s.src, Epoch: s.epoch, Entries: entries})
}

// Flush ships all buffered batches (called at every phase end, so the
// replication fence sees complete Sent counts).
func (s *Stream) Flush() {
	for dst, b := range s.buf {
		s.flushDst(dst, b)
	}
}

// Buffered returns the number of entries not yet shipped (tests).
func (s *Stream) Buffered() int {
	n := 0
	for _, b := range s.buf {
		n += len(b.entries)
	}
	return n
}
