// Package replication implements STAR's replication machinery (§3, §5):
// value entries (full records, applied in any order under the Thomas
// write rule), operation entries (small field deltas, applied FIFO per
// partition), per-destination batched streams, and the sent/applied
// counters the replication fence reconciles at every phase switch.
package replication

import (
	"fmt"
	"sync/atomic"

	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
)

// Entry is one replicated write. Exactly one of Row/Ops is meaningful:
// a value entry carries the whole row (or a tombstone), an operation
// entry carries field deltas.
type Entry struct {
	Table  storage.TableID
	Part   int32
	Key    storage.Key
	TID    uint64
	Row    []byte
	Absent bool
	Ops    []storage.FieldOp
}

// IsOp reports whether this is an operation-replication entry.
func (e *Entry) IsOp() bool { return e.Ops != nil }

// Size returns the modelled wire size in bytes.
func (e *Entry) Size() int {
	n := 1 + 1 + 4 + storage.KeySize + 8 // kind+table+part+key+tid
	if e.IsOp() {
		for _, op := range e.Ops {
			n += op.Size()
		}
		return n
	}
	return n + 2 + len(e.Row)
}

// Apply installs the entry into db for the given epoch. Value entries use
// the Thomas write rule; operation entries apply unconditionally in
// arrival order (FIFO per partition is guaranteed by the transport).
// When wantRow is true it returns a copy of the record's value after
// application (the §5 op→value transformation used before disk logging);
// for value entries the entry's own Row serves and nil is returned.
// Entries that create a record (insert replication, placeholder fills)
// also maintain the table's secondary indexes, so replica indexes
// converge with replica rows.
func Apply(db *storage.DB, epoch uint64, e *Entry, wantRow bool) ([]byte, error) {
	tbl := db.Table(e.Table)
	part := tbl.Partition(int(e.Part))
	if part == nil {
		return nil, fmt.Errorf("replication: partition %d not held", e.Part)
	}
	rec := part.GetOrCreate(e.Key, epoch)
	if e.IsOp() {
		// Op entries only ship for pre-existing rows (inserts have no
		// delta form), but a placeholder created above starts absent and
		// ApplyOpsLocked materialises it — detect the transition so the
		// indexes stay complete even on that defensive path.
		wasAbsent := storage.TIDAbsent(rec.TID())
		rec.Lock()
		first, err := rec.ApplyOpsLocked(tbl.Schema(), epoch, e.TID, e.Ops)
		if err != nil {
			rec.Unlock()
			return nil, err
		}
		var row []byte
		if wantRow || (wasAbsent && tbl.NumIndexes() > 0) {
			row = append(row, rec.ValueLocked()...)
		}
		rec.UnlockWithTID(storage.TIDClean(e.TID))
		if first {
			part.MarkDirty(rec, epoch)
		}
		if wasAbsent {
			tbl.NoteInserted(int(e.Part), e.Key, row, epoch)
		}
		if !wantRow {
			row = nil
		}
		return row, nil
	}
	// A tombstone entry that lands must also kill the row's secondary
	// index entries, and those are derived from the pre-delete value —
	// capture it before the apply (the partition's apply path is the
	// only writer on a replica, so the read is not racing the apply).
	var prior []byte
	if e.Absent && tbl.NumIndexes() > 0 {
		if v, _, present := rec.ReadStable(nil); present {
			prior = v
		}
	}
	_, first, inserted, deleted := rec.ApplyValueThomas(epoch, e.TID, e.Row, e.Absent)
	if first {
		part.MarkDirty(rec, epoch)
	}
	if inserted {
		tbl.NoteInserted(int(e.Part), e.Key, e.Row, epoch)
	}
	if deleted {
		tbl.NoteDeleted(int(e.Part), e.Key, prior, epoch)
	}
	return nil, nil
}

// ValueEntries builds value entries from a committed write set whose
// final rows were collected at commit (occ collectRows=true).
func ValueEntries(set *txn.RWSet, tid uint64) []Entry {
	out := make([]Entry, 0, len(set.Writes))
	for i := range set.Writes {
		w := &set.Writes[i]
		out = append(out, Entry{
			Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid,
			Row: append([]byte(nil), w.Row...), Absent: w.Delete,
		})
	}
	return out
}

// OpEntries builds operation entries from a committed write set; inserts
// and deletes (which have no delta form) become value entries.
func OpEntries(set *txn.RWSet, tid uint64) []Entry {
	out := make([]Entry, 0, len(set.Writes))
	for i := range set.Writes {
		w := &set.Writes[i]
		if w.Delete {
			out = append(out, Entry{
				Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid,
				Absent: true,
			})
			continue
		}
		if w.Insert {
			out = append(out, Entry{
				Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid,
				Row: append([]byte(nil), w.Row...),
			})
			continue
		}
		ops := make([]storage.FieldOp, len(w.Ops))
		copy(ops, w.Ops)
		out = append(out, Entry{
			Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid, Ops: ops,
		})
	}
	return out
}

// Batch is the wire envelope carrying coalesced entries from one node to
// another: the partitioned phase ships one of these per destination per
// size/epoch flush instead of one message per write. Epoch is the epoch
// the entries were committed in (0 when the sender predates epochs, e.g.
// ad-hoc test streams).
type Batch struct {
	From    int
	Epoch   uint64
	Entries []Entry
}

// Size implements simnet.Message.
func (b *Batch) Size() int {
	n := 24
	for i := range b.Entries {
		n += b.Entries[i].Size()
	}
	return n
}

// Tracker counts entries sent to and applied from each peer; the
// replication fence compares the two sides (§4.3: "each node learns how
// many outstanding writes it is waiting to see").
type Tracker struct {
	sent    []atomic.Int64 // indexed by destination
	applied []atomic.Int64 // indexed by source
}

// NewTracker creates a tracker for a cluster of n nodes.
func NewTracker(n int) *Tracker {
	return &Tracker{sent: make([]atomic.Int64, n), applied: make([]atomic.Int64, n)}
}

// AddSent records n entries shipped to dst.
func (t *Tracker) AddSent(dst int, n int64) { t.sent[dst].Add(n) }

// AddApplied records n entries applied from src.
func (t *Tracker) AddApplied(src int, n int64) { t.applied[src].Add(n) }

// SetApplied aligns the applied-from-src counter to an exact value —
// the rejoin reconciliation: entries a crashed peer counted as sent but
// the network dropped can never be applied, so after its snapshot
// catch-up the survivors adopt the peer's own cumulative sent count as
// their applied baseline (the snapshot subsumes the data either way).
func (t *Tracker) SetApplied(src int, v int64) { t.applied[src].Store(v) }

// SentVector snapshots the per-destination sent counts.
func (t *Tracker) SentVector() []int64 {
	v := make([]int64, len(t.sent))
	for i := range t.sent {
		v[i] = t.sent[i].Load()
	}
	return v
}

// Applied returns the count applied from src.
func (t *Tracker) Applied(src int) int64 { return t.applied[src].Load() }

// Nodes returns the cluster size the tracker was built for.
func (t *Tracker) Nodes() int { return len(t.sent) }

// Drained reports whether everything expected from each source has been
// applied. expected[i] is the count source i claims to have sent us.
func (t *Tracker) Drained(expected []int64) bool {
	for i, want := range expected {
		if t.applied[i].Load() < want {
			return false
		}
	}
	return true
}

// Adaptive flush-threshold bounds: the per-destination byte threshold is
// re-derived every epoch as max(Limits.Bytes, measuredEpochBytes /
// AdaptiveTargetFlushes), capped at AdaptiveMaxBytes. Adaptation only
// ever grows the threshold past the configured bound — the fixed bound
// already balances fence overlap against per-message cost at normal
// volume, and shrinking it for short or quiet phases floods the
// receiving routers with envelope handling; growth caps the envelope
// count per epoch when a destination's write volume spikes far past the
// configured threshold (message storms under hot partitions or bigger
// clusters).
const (
	AdaptiveMaxBytes      = 256 << 10
	AdaptiveTargetFlushes = 64
)

// Limits bounds a stream's per-destination batch growth. A zero field
// means "no bound on that axis"; an all-zero Limits flushes only at
// explicit Flush calls (the epoch fence).
type Limits struct {
	// Entries flushes a destination once this many entries are buffered.
	Entries int
	// Bytes flushes a destination once its buffered modelled wire size
	// reaches this many bytes. With Adaptive set it is only the initial
	// threshold.
	Bytes int
	// Adaptive re-sizes the byte threshold per destination at every
	// epoch from the previous epoch's measured write volume.
	Adaptive bool
}

// dstBuf is one destination's pending batch: the entry headers plus the
// arenas their Row/Ops payloads are copied into. Arena-backed copies make
// Append allocation-free per entry — callers hand in entries whose
// payload slices they immediately reuse, and the only allocations are
// the amortised arena growths and the per-envelope handoff at flush.
type dstBuf struct {
	entries []Entry
	bytes   int
	arena   []byte            // Row bytes and FieldOp args
	ops     []storage.FieldOp // op-entry headers
	// limit is this destination's current byte threshold (adaptive mode
	// re-derives it each epoch; fixed mode mirrors Limits.Bytes).
	limit int
	// epochBytes measures this epoch's appended volume for adaptation;
	// prevEpochBytes keeps the epoch before it. Epochs strictly
	// alternate partitioned and single-master phases (a stream is busy
	// in one and usually idle in the other), so adaptation keys off the
	// max of the two — the busy phase's volume governs both following
	// epochs instead of collapsing after the idle one.
	epochBytes     int
	prevEpochBytes int
}

// Stream accumulates entries per destination and ships them as batched
// Batch envelopes: a partitioned-phase epoch produces O(destinations ×
// epochBytes/limit) messages instead of O(writes). One stream per
// worker thread keeps it contention-free; the shared Tracker is atomic.
// The fence accounting is per entry, not per envelope: AddSent counts
// len(entries) at flush time, so Sent/Expected reconcile exactly however
// the entries were packed.
type Stream struct {
	net     transport.Transport
	tracker *Tracker
	src     int
	lim     Limits
	epoch   uint64
	bufs    []*dstBuf // indexed by destination node
}

// NewStream creates a stream for worker threads on node src; batches
// flush automatically at the given limits and at explicit Flush calls.
func NewStream(net transport.Transport, tracker *Tracker, src int, lim Limits) *Stream {
	return &Stream{net: net, tracker: tracker, src: src, lim: lim,
		bufs: make([]*dstBuf, tracker.Nodes())}
}

// SetEpoch stamps subsequently flushed batches with epoch. Any entries
// still buffered from the previous epoch are flushed first so an
// envelope never mixes epochs (callers flush at the fence anyway; this
// is the backstop). In adaptive mode this is also where each
// destination's flush threshold is re-derived from the epoch's volume.
func (s *Stream) SetEpoch(epoch uint64) {
	if epoch == s.epoch {
		return
	}
	s.Flush()
	s.epoch = epoch
	if !s.lim.Adaptive {
		return
	}
	for _, b := range s.bufs {
		if b == nil {
			continue
		}
		vol := b.epochBytes
		if b.prevEpochBytes > vol {
			vol = b.prevEpochBytes
		}
		b.limit = adaptedLimit(s.lim.Bytes, vol)
		b.prevEpochBytes = b.epochBytes
		b.epochBytes = 0
	}
}

// adaptedLimit grows the configured byte bound to keep roughly
// AdaptiveTargetFlushes envelopes per epoch at the measured volume;
// it never shrinks below the configured bound.
func adaptedLimit(configured, epochBytes int) int {
	v := epochBytes / AdaptiveTargetFlushes
	if v < configured {
		return configured
	}
	if v > AdaptiveMaxBytes {
		return AdaptiveMaxBytes
	}
	return v
}

func (s *Stream) dst(dst int) *dstBuf {
	b := s.bufs[dst]
	if b == nil {
		b = &dstBuf{limit: s.lim.Bytes}
		s.bufs[dst] = b
	}
	return b
}

// Append queues e for dst, flushing the destination's batch when a limit
// is hit. The entry's Row and Ops payloads are copied into the
// destination's arena, so the caller may reuse their backing arrays
// immediately. Local (src==dst) appends are dropped: a node does not
// replicate to itself.
func (s *Stream) Append(dst int, e Entry) {
	if dst == s.src {
		return
	}
	b := s.dst(dst)
	if len(b.entries) < cap(b.entries) {
		b.entries = b.entries[:len(b.entries)+1]
	} else {
		b.entries = append(b.entries, Entry{})
	}
	ne := &b.entries[len(b.entries)-1]
	*ne = e
	if e.Ops != nil {
		// Deep-copy the op headers and their args. Arena growth leaves
		// earlier entries pointing into the old (immutable) backing
		// arrays, which stays valid.
		if b.ops == nil {
			b.ops = make([]storage.FieldOp, 0, 16)
		}
		off := len(b.ops)
		b.ops = append(b.ops, e.Ops...)
		ne.Ops = b.ops[off:len(b.ops):len(b.ops)]
		for i := range ne.Ops {
			op := &ne.Ops[i]
			ao := len(b.arena)
			b.arena = append(b.arena, op.Arg...)
			op.Arg = b.arena[ao:len(b.arena):len(b.arena)]
		}
		ne.Row = nil
	} else if len(e.Row) > 0 {
		off := len(b.arena)
		b.arena = append(b.arena, e.Row...)
		ne.Row = b.arena[off:len(b.arena):len(b.arena)]
	}
	sz := ne.Size()
	b.bytes += sz
	b.epochBytes += sz
	if (s.lim.Entries > 0 && len(b.entries) >= s.lim.Entries) ||
		(b.limit > 0 && b.bytes >= b.limit) {
		s.flushDst(dst, b)
	}
}

// Broadcast appends e for every destination in dsts.
func (s *Stream) Broadcast(dsts []int, e Entry) {
	for _, d := range dsts {
		s.Append(d, e)
	}
}

func (s *Stream) flushDst(dst int, b *dstBuf) {
	if len(b.entries) == 0 {
		return
	}
	entries := b.entries
	// The entries and their arenas escape with the envelope; fresh
	// buffers start the next batch (one amortised allocation per
	// envelope, not per entry).
	b.entries, b.bytes, b.arena, b.ops = nil, 0, nil, nil
	s.tracker.AddSent(dst, int64(len(entries)))
	s.net.Send(s.src, dst, transport.Replication, &Batch{From: s.src, Epoch: s.epoch, Entries: entries})
}

// Flush ships all buffered batches (called at every phase end, so the
// replication fence sees complete Sent counts).
func (s *Stream) Flush() {
	for dst, b := range s.bufs {
		if b != nil {
			s.flushDst(dst, b)
		}
	}
}

// Buffered returns the number of entries not yet shipped (tests).
func (s *Stream) Buffered() int {
	n := 0
	for _, b := range s.bufs {
		if b != nil {
			n += len(b.entries)
		}
	}
	return n
}
