// Package replication implements STAR's replication machinery (§3, §5):
// value entries (full records, applied in any order under the Thomas
// write rule), operation entries (small field deltas, applied FIFO per
// partition), per-destination batched streams, and the sent/applied
// counters the replication fence reconciles at every phase switch.
package replication

import (
	"fmt"
	"sync/atomic"

	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/txn"
)

// Entry is one replicated write. Exactly one of Row/Ops is meaningful:
// a value entry carries the whole row (or a tombstone), an operation
// entry carries field deltas.
type Entry struct {
	Table  storage.TableID
	Part   int32
	Key    storage.Key
	TID    uint64
	Row    []byte
	Absent bool
	Ops    []storage.FieldOp
}

// IsOp reports whether this is an operation-replication entry.
func (e *Entry) IsOp() bool { return e.Ops != nil }

// Size returns the modelled wire size in bytes.
func (e *Entry) Size() int {
	n := 1 + 1 + 4 + storage.KeySize + 8 // kind+table+part+key+tid
	if e.IsOp() {
		for _, op := range e.Ops {
			n += op.Size()
		}
		return n
	}
	return n + 2 + len(e.Row)
}

// Apply installs the entry into db for the given epoch. Value entries use
// the Thomas write rule; operation entries apply unconditionally in
// arrival order (FIFO per partition is guaranteed by the transport).
// When wantRow is true it returns a copy of the record's value after
// application (the §5 op→value transformation used before disk logging);
// for value entries the entry's own Row serves and nil is returned.
func Apply(db *storage.DB, epoch uint64, e *Entry, wantRow bool) ([]byte, error) {
	tbl := db.Table(e.Table)
	part := tbl.Partition(int(e.Part))
	if part == nil {
		return nil, fmt.Errorf("replication: partition %d not held", e.Part)
	}
	rec := part.GetOrCreate(e.Key)
	if e.IsOp() {
		rec.Lock()
		first, err := rec.ApplyOpsLocked(tbl.Schema(), epoch, e.TID, e.Ops)
		if err != nil {
			rec.Unlock()
			return nil, err
		}
		var row []byte
		if wantRow {
			row = append(row, rec.ValueLocked()...)
		}
		rec.UnlockWithTID(storage.TIDClean(e.TID))
		if first {
			part.MarkDirty(rec)
		}
		return row, nil
	}
	_, first := rec.ApplyValueThomas(epoch, e.TID, e.Row, e.Absent)
	if first {
		part.MarkDirty(rec)
	}
	return nil, nil
}

// ValueEntries builds value entries from a committed write set whose
// final rows were collected at commit (occ collectRows=true).
func ValueEntries(set *txn.RWSet, tid uint64) []Entry {
	out := make([]Entry, 0, len(set.Writes))
	for i := range set.Writes {
		w := &set.Writes[i]
		out = append(out, Entry{
			Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid,
			Row: append([]byte(nil), w.Row...),
		})
	}
	return out
}

// OpEntries builds operation entries from a committed write set; inserts
// (which have no delta form) become value entries.
func OpEntries(set *txn.RWSet, tid uint64) []Entry {
	out := make([]Entry, 0, len(set.Writes))
	for i := range set.Writes {
		w := &set.Writes[i]
		if w.Insert {
			out = append(out, Entry{
				Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid,
				Row: append([]byte(nil), w.Row...),
			})
			continue
		}
		ops := make([]storage.FieldOp, len(w.Ops))
		copy(ops, w.Ops)
		out = append(out, Entry{
			Table: w.Table, Part: int32(w.Part), Key: w.Key, TID: tid, Ops: ops,
		})
	}
	return out
}

// Batch is the wire message carrying entries from one node to another.
type Batch struct {
	From    int
	Entries []Entry
}

// Size implements simnet.Message.
func (b *Batch) Size() int {
	n := 16
	for i := range b.Entries {
		n += b.Entries[i].Size()
	}
	return n
}

// Tracker counts entries sent to and applied from each peer; the
// replication fence compares the two sides (§4.3: "each node learns how
// many outstanding writes it is waiting to see").
type Tracker struct {
	sent    []atomic.Int64 // indexed by destination
	applied []atomic.Int64 // indexed by source
}

// NewTracker creates a tracker for a cluster of n nodes.
func NewTracker(n int) *Tracker {
	return &Tracker{sent: make([]atomic.Int64, n), applied: make([]atomic.Int64, n)}
}

// AddSent records n entries shipped to dst.
func (t *Tracker) AddSent(dst int, n int64) { t.sent[dst].Add(n) }

// AddApplied records n entries applied from src.
func (t *Tracker) AddApplied(src int, n int64) { t.applied[src].Add(n) }

// SentVector snapshots the per-destination sent counts.
func (t *Tracker) SentVector() []int64 {
	v := make([]int64, len(t.sent))
	for i := range t.sent {
		v[i] = t.sent[i].Load()
	}
	return v
}

// Applied returns the count applied from src.
func (t *Tracker) Applied(src int) int64 { return t.applied[src].Load() }

// Drained reports whether everything expected from each source has been
// applied. expected[i] is the count source i claims to have sent us.
func (t *Tracker) Drained(expected []int64) bool {
	for i, want := range expected {
		if t.applied[i].Load() < want {
			return false
		}
	}
	return true
}

// Stream accumulates entries per destination and ships them in batches.
// One stream per worker thread keeps it contention-free; the shared
// Tracker is atomic.
type Stream struct {
	net     *simnet.Network
	tracker *Tracker
	src     int
	flushAt int
	buf     map[int][]Entry
}

// NewStream creates a stream for worker threads on node src; batches
// flush automatically after flushAt entries per destination.
func NewStream(net *simnet.Network, tracker *Tracker, src, flushAt int) *Stream {
	if flushAt <= 0 {
		flushAt = 16
	}
	return &Stream{net: net, tracker: tracker, src: src, flushAt: flushAt, buf: make(map[int][]Entry)}
}

// Append queues e for dst, flushing the destination's batch when full.
// Local (src==dst) appends are dropped: a node does not replicate to
// itself.
func (s *Stream) Append(dst int, e Entry) {
	if dst == s.src {
		return
	}
	s.buf[dst] = append(s.buf[dst], e)
	if len(s.buf[dst]) >= s.flushAt {
		s.flushDst(dst)
	}
}

// Broadcast appends e for every destination in dsts.
func (s *Stream) Broadcast(dsts []int, e Entry) {
	for _, d := range dsts {
		s.Append(d, e)
	}
}

func (s *Stream) flushDst(dst int) {
	entries := s.buf[dst]
	if len(entries) == 0 {
		return
	}
	s.buf[dst] = nil
	s.tracker.AddSent(dst, int64(len(entries)))
	s.net.Send(s.src, dst, simnet.Replication, &Batch{From: s.src, Entries: entries})
}

// Flush ships all buffered batches (called at commit boundaries and
// before every replication fence).
func (s *Stream) Flush() {
	for dst := range s.buf {
		s.flushDst(dst)
	}
}
