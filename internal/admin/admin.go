// Package admin is the star-admin client library: it drives the
// unified control-plane envelope (core.AdminReq / core.AdminResp)
// against any node's client front door over TCP.
//
// One connection serves any number of sequential operations. The
// connected node answers node-local ops itself, forwards node-scoped
// ops (checksums, fault stats) to their target, and relays membership
// ops (join, drain, rebalance) to the coordinator — the caller never
// needs to know which node is which.
//
// Admin envelopes carry no workload payloads, so the codec needs no
// workload registration: core.NewWireCodec(nil) on both sides.
package admin

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"star/internal/backoff"
	"star/internal/core"
	"star/internal/metrics"
	"star/internal/wire"
)

// Config parameterises one admin connection.
type Config struct {
	// Addr is a front door's "host:port" (star-node -client).
	Addr string
	// DialTimeout is the per-attempt dial timeout (default 1s).
	DialTimeout time.Duration
	// DialDeadline bounds the whole connect retry (default 15s; the
	// serving process may still be starting).
	DialDeadline time.Duration
	// OpTimeout bounds one operation round trip (default 30s; membership
	// ops wait for an epoch fence plus a snapshot migration).
	OpTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = time.Second
	}
	if c.DialDeadline == 0 {
		c.DialDeadline = 15 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	return c
}

// Client is one admin connection to a front door.
type Client struct {
	cfg   Config
	conn  net.Conn
	codec *wire.Codec
	wbuf  []byte
	next  uint64
}

// Dial connects to the front door, retrying with capped exponential
// backoff until Config.DialDeadline.
func Dial(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" {
		return nil, fmt.Errorf("admin: Config.Addr is required")
	}
	pol := backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	deadline := time.Now().Add(cfg.DialDeadline)
	for attempt := 0; ; attempt++ {
		conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return &Client{cfg: cfg, conn: conn, codec: core.NewWireCodec(nil)}, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("admin: dial %s: %w", cfg.Addr, err)
		}
		time.Sleep(pol.Delay(attempt, rand.Float64()))
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// do runs one envelope round trip: write the request, read frames until
// the matching ticket answers. The connection is dedicated to this
// client, so no demultiplexing is needed.
func (c *Client) do(req core.AdminReq) (core.AdminResp, error) {
	c.next++
	req.V, req.Ticket = core.AdminProtoVersion, c.next
	var err error
	c.wbuf, err = wire.AppendFrame(c.wbuf[:0], 0, 0, 0, c.codec, req)
	if err != nil {
		return core.AdminResp{}, fmt.Errorf("admin: encode %s: %w", req.Op, err)
	}
	deadline := time.Now().Add(c.cfg.OpTimeout)
	c.conn.SetDeadline(deadline)
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return core.AdminResp{}, fmt.Errorf("admin: write %s: %w", req.Op, err)
	}
	for {
		body, err := wire.ReadFrame(c.conn, wire.MaxClientFrame)
		if err != nil {
			return core.AdminResp{}, fmt.Errorf("admin: %s: %w", req.Op, err)
		}
		_, m, err := wire.DecodeFrameBody(body, c.codec)
		if err != nil {
			return core.AdminResp{}, fmt.Errorf("admin: %s: decode: %w", req.Op, err)
		}
		resp, ok := m.(core.AdminResp)
		if !ok || resp.Ticket != req.Ticket {
			continue // stale response from a timed-out earlier op
		}
		if !resp.OK {
			return resp, fmt.Errorf("admin: %s: %s", req.Op, resp.Err)
		}
		return resp, nil
	}
}

// Freeze toggles workload generation cluster-wide (the connected door
// fans the toggle out to every member).
func (c *Client) Freeze(on bool) error {
	_, err := c.do(core.AdminReq{Op: core.AdminFreeze, Node: -1, On: on})
	return err
}

// Checksums returns node's per-partition checksums (its own planned
// holdings under the installed topology).
func (c *Client) Checksums(node int) (core.NodeChecksums, error) {
	resp, err := c.do(core.AdminReq{Op: core.AdminChecksums, Node: node})
	if err != nil {
		return core.NodeChecksums{}, err
	}
	return core.NodeChecksums{Node: resp.Node, Parts: resp.Parts, Sums: resp.Sums}, nil
}

// FaultStats returns node's fault-injection counters (star-node
// -faults), empty when its transport injects nothing.
func (c *Client) FaultStats(node int) (map[string]int64, error) {
	resp, err := c.do(core.AdminReq{Op: core.AdminFaultStats, Node: node})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(resp.Keys))
	for i, k := range resp.Keys {
		out[k] = resp.Vals[i]
	}
	return out, nil
}

// Stats returns node's live metric-registry snapshot (counters, gauges,
// histograms — AdminStats). Node -1 asks the connected door's own node;
// any other id is forwarded to its target internally. Merge the members'
// snapshots with metrics.Snapshot.Merge for a cluster view.
func (c *Client) Stats(node int) (metrics.Snapshot, error) {
	resp, err := c.do(core.AdminReq{Op: core.AdminStats, Node: node})
	if err != nil {
		return metrics.Snapshot{}, err
	}
	return metrics.DecodeSnapshot(resp.Stats)
}

// Topology describes the installed cluster layout as the admin API
// reports it.
type Topology struct {
	Version uint64
	// Members are the live slot ids, ascending.
	Members []int
	// Masters maps partition -> master slot.
	Masters []int32
	// ClientAddrs aligns with Members ("" when a member advertises no
	// front door).
	ClientAddrs []string
}

func topologyOf(resp core.AdminResp) Topology {
	t := Topology{Version: resp.Version, Masters: resp.Masters, ClientAddrs: resp.ClientAddrs}
	for _, m := range resp.Members {
		t.Members = append(t.Members, int(m))
	}
	return t
}

// Topology returns the installed topology.
func (c *Client) Topology() (Topology, error) {
	resp, err := c.do(core.AdminReq{Op: core.AdminTopologyGet, Node: -1})
	if err != nil {
		return Topology{}, err
	}
	return topologyOf(resp), nil
}

// Join admits slot node at the next epoch fence (snapshot catch-up
// first) and returns the installed topology.
func (c *Client) Join(node int) (Topology, error) {
	resp, err := c.do(core.AdminReq{Op: core.AdminJoin, Node: node})
	if err != nil {
		return Topology{}, err
	}
	return topologyOf(resp), nil
}

// Drain migrates slot node's partitions away at the next fence and
// removes it from the member set; its process exits cleanly.
func (c *Client) Drain(node int) (Topology, error) {
	resp, err := c.do(core.AdminReq{Op: core.AdminDrain, Node: node})
	if err != nil {
		return Topology{}, err
	}
	return topologyOf(resp), nil
}

// Rebalance reinstalls the canonical mastership layout over the current
// member set (no data moves on a stable layout).
func (c *Client) Rebalance() (Topology, error) {
	resp, err := c.do(core.AdminReq{Op: core.AdminRebalance, Node: -1})
	if err != nil {
		return Topology{}, err
	}
	return topologyOf(resp), nil
}
