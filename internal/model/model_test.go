package model

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSpeedupMatchesPaperFigure3(t *testing.T) {
	// Fig 3: with P=1% STAR approaches ~14x at 16 nodes; with P=15% the
	// curve flattens near 1/P ≈ 6.7 well before 16 nodes.
	if got := Speedup(16, 0.01); !approx(got, 13.9, 0.2) {
		t.Fatalf("speedup(16, 1%%)=%.2f, want ≈13.9", got)
	}
	if got := Speedup(16, 0.15); got > 5.3 || got < 4.5 {
		t.Fatalf("speedup(16, 15%%)=%.2f, want ≈4.9", got)
	}
	if got := Speedup(1, 0.10); got != 1 {
		t.Fatalf("speedup(1)=%v, want 1", got)
	}
}

func TestSpeedupAsymptote(t *testing.T) {
	// As n→∞ the speedup approaches 1/P: the single-master phase is the
	// sequential fraction (Amdahl form).
	if got := Speedup(10000, 0.10); !approx(got, 10, 0.05) {
		t.Fatalf("asymptote=%.3f, want ≈1/P=10", got)
	}
}

func TestImprovementCrossover(t *testing.T) {
	// §6.3: STAR beats partitioning-based systems iff K > n.
	n := 4
	if got := ImprovementOverPartitioned(n, 4.0, 0.5); !approx(got, 1, 1e-9) {
		t.Fatalf("at K=n improvement must be 1, got %v", got)
	}
	if ImprovementOverPartitioned(n, 8.0, 0.5) <= 1 {
		t.Fatal("K=8>n=4 must favour STAR")
	}
	if ImprovementOverPartitioned(n, 2.0, 0.5) >= 1 {
		t.Fatal("K=2<n=4 must favour the partitioning-based system")
	}
	if CrossoverK(n) != 4 {
		t.Fatal("crossover")
	}
}

func TestImprovementOverNonPartitionedAlwaysWins(t *testing.T) {
	// Fig 10: STAR beats the non-partitioned system whenever any
	// single-partition work exists (improvement ≥ 1, equal only at P=1).
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%15) + 2
		p := float64(pRaw%100) / 100
		imp := ImprovementOverNonPartitioned(n, p)
		if p < 1 && imp <= 1 {
			return false
		}
		return imp <= float64(n)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeFormulasConsistent(t *testing.T) {
	// The improvement ratios must equal the ratio of the raw time
	// formulas (equations 3–5).
	ns, nc, ts := 900.0, 100.0, 1.0
	k := 8.0
	n := 4
	p := nc / (ns + nc)
	lhs := TimePartitioned(n, ns, nc, ts, k*ts) / TimeSTAR(n, ns, nc, ts)
	rhs := ImprovementOverPartitioned(n, k, p)
	if !approx(lhs, rhs, 1e-9) {
		t.Fatalf("eq3/eq5 ratio %.6f != closed form %.6f", lhs, rhs)
	}
	lhs = TimeNonPartitioned(ns, nc, ts) / TimeSTAR(n, ns, nc, ts)
	rhs = ImprovementOverNonPartitioned(n, p)
	if !approx(lhs, rhs, 1e-9) {
		t.Fatalf("eq4/eq5 ratio %.6f != closed form %.6f", lhs, rhs)
	}
}
