// Package model implements the paper's analytical model (§6.3):
// completion-time formulas for partitioning-based systems, non-
// partitioned systems and STAR, and the speedup/improvement curves of
// Figures 3 and 10.
package model

// TimePartitioned returns T(n) for a partitioning-based system running
// ns single-partition and nc cross-partition transactions with costs ts
// and tc (equation 3): (ns·ts + nc·tc)/n.
func TimePartitioned(n int, ns, nc, ts, tc float64) float64 {
	return (ns*ts + nc*tc) / float64(n)
}

// TimeNonPartitioned returns T(n) for a non-partitioned system
// (equation 4): (ns+nc)·ts — cross-partition work costs the same as
// single-partition work on a single master.
func TimeNonPartitioned(ns, nc, ts float64) float64 {
	return (ns + nc) * ts
}

// TimeSTAR returns T(n) for STAR (equation 5): single-partition work is
// spread over n nodes, cross-partition work runs on one master.
func TimeSTAR(n int, ns, nc, ts float64) float64 {
	return (ns/float64(n) + nc) * ts
}

// Speedup returns I(n) = T_STAR(1)/T_STAR(n) = n/(nP − P + 1): the
// speedup of STAR with n nodes over a single node for a workload with
// cross-partition fraction P (Figure 3).
func Speedup(n int, p float64) float64 {
	return float64(n) / (float64(n)*p - p + 1)
}

// ImprovementOverPartitioned returns I_partitioning-based(n) =
// (KP − P + 1)/(nP − P + 1), where K = tc/ts (Figure 10).
func ImprovementOverPartitioned(n int, k, p float64) float64 {
	return (k*p - p + 1) / (float64(n)*p - p + 1)
}

// ImprovementOverNonPartitioned returns I_non-partitioned(n) =
// n/(nP − P + 1) (Figure 10's dashed line).
func ImprovementOverNonPartitioned(n int, p float64) float64 {
	return Speedup(n, p)
}

// CrossoverK returns the K above which STAR beats a partitioning-based
// system on n nodes (§6.3: "the average time of running a cross-
// partition transaction must exceed n times that of a single-partition
// transaction", i.e. K > n).
func CrossoverK(n int) float64 { return float64(n) }
