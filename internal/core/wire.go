package core

import (
	"time"

	"star/internal/replication"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/wire"
	"star/internal/workload"
)

// Wire message type ids. Append-only: a new message takes the next id so
// mixed-version processes fail loudly on unknown ids instead of
// misparsing.
const (
	wireStartPhase uint8 = iota + 1
	wirePhaseDone
	wireFenceDrain
	wireFenceAck
	wireDefer
	wireReplAck
	wireRevert
	wireSnapshotReq
	wireSnapshot
	wireReplBatch
	wireSyncBatch
	wireResetCounters
	wireRecoveryDone
	wireStartRecovery
	wireUpdateMasters
	wireWorkerDone
	_ // retired: wireChecksumReq (folded into the admin envelope)
	_ // retired: wireChecksumResp
	wireHalt
	_ // retired: wireFreeze
	wireAlignCounters
	wireClientReq
	wireClientResp
	_ // retired: wireFaultStatsReq
	_ // retired: wireFaultStatsResp
	wireAdminReq
	wireAdminResp
	wireTopology
)

// wireRegistrar is implemented by workloads whose procedures have a
// binary codec (tpcc, ycsb). A real transport needs it for msgDefer;
// without it deferred cross-partition requests cannot leave the process.
type wireRegistrar interface {
	RegisterWire(c *wire.Codec)
}

// NewWireCodec builds the codec a real transport uses for a cluster
// running workload w: every cross-node engine message plus the
// workload's procedure parameters. Every process of one cluster must
// build it from the same workload configuration.
func NewWireCodec(w workload.Workload) *wire.Codec {
	c := wire.NewCodec()
	registerMessages(c)
	if r, ok := w.(wireRegistrar); ok {
		r.RegisterWire(c)
	}
	return c
}

func registerMessages(c *wire.Codec) {
	c.Register(wireStartPhase, msgStartPhase{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgStartPhase)
			b = append(b, byte(v.Phase))
			b = wire.AppendUvarint(b, v.Epoch)
			b = wire.AppendVarint(b, int64(v.Deadline))
			b = wire.AppendVarint(b, int64(v.Master))
			b = wire.AppendInts(b, v.Failed)
			b = wire.AppendVarint(b, int64(v.ScriptTxns))
			return wire.AppendVarint(b, v.ScriptDeferred)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgStartPhase
			if len(b) < 1 {
				return nil, nil, wire.ErrTruncated
			}
			v.Phase = Phase(b[0])
			var err error
			var x int64
			if v.Epoch, b, err = wire.Uvarint(b[1:]); err != nil {
				return nil, nil, err
			}
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Deadline = time.Duration(x)
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Master = int(x)
			if v.Failed, b, err = wire.Ints(b); err != nil {
				return nil, nil, err
			}
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.ScriptTxns = int(x)
			if v.ScriptDeferred, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wirePhaseDone, msgPhaseDone{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgPhaseDone)
			b = wire.AppendVarint(b, int64(v.Node))
			b = wire.AppendUvarint(b, v.Epoch)
			b = wire.AppendI64s(b, v.Sent)
			b = wire.AppendVarint(b, v.Committed)
			b = wire.AppendVarint(b, v.GenSingle)
			b = wire.AppendVarint(b, v.GenCross)
			return wire.AppendVarint(b, v.Queued)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgPhaseDone
			var err error
			var x int64
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Node = int(x)
			if v.Epoch, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			if v.Sent, b, err = wire.I64s(b); err != nil {
				return nil, nil, err
			}
			if v.Committed, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			if v.GenSingle, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			if v.GenCross, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			if v.Queued, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireFenceDrain, msgFenceDrain{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgFenceDrain)
			b = wire.AppendUvarint(b, v.Epoch)
			return wire.AppendI64s(b, v.Expected)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgFenceDrain
			var err error
			if v.Epoch, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			if v.Expected, b, err = wire.I64s(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireFenceAck, msgFenceAck{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgFenceAck)
			b = wire.AppendVarint(b, int64(v.Node))
			return wire.AppendUvarint(b, v.Epoch)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgFenceAck
			x, b, err := wire.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			v.Node = int(x)
			if v.Epoch, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	// msgDefer carries the whole routing request; the request codec
	// recomputes Home/Parts/Cross from the decoded procedure.
	c.Register(wireDefer, msgDefer{},
		func(b []byte, m transport.Message) []byte {
			b, err := c.AppendRequest(b, m.(msgDefer).Req)
			if err != nil {
				panic("core: encode deferred request: " + err.Error())
			}
			return b
		},
		func(b []byte) (transport.Message, []byte, error) {
			req, rest, err := c.DecodeRequest(b)
			if err != nil {
				return nil, nil, err
			}
			return msgDefer{Req: req}, rest, nil
		})

	c.Register(wireReplAck, msgReplAck{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgReplAck)
			b = wire.AppendVarint(b, int64(v.Worker))
			return wire.AppendUvarint(b, v.Seq)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgReplAck
			x, b, err := wire.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			v.Worker = int(x)
			if v.Seq, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireRevert, msgRevert{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgRevert)
			b = wire.AppendUvarint(b, v.Epoch)
			b = wire.AppendInts(b, v.Failed)
			return wire.AppendI32s(b, v.NewMasters)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgRevert
			var err error
			if v.Epoch, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			if v.Failed, b, err = wire.Ints(b); err != nil {
				return nil, nil, err
			}
			if v.NewMasters, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireSnapshotReq, msgSnapshotReq{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgSnapshotReq)
			b = wire.AppendVarint(b, int64(v.From))
			return wire.AppendVarint(b, int64(v.Part))
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgSnapshotReq
			x, b, err := wire.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			v.From = int(x)
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Part = int(x)
			return v, b, nil
		})

	c.Register(wireSnapshot, (*msgSnapshot)(nil),
		func(b []byte, m transport.Message) []byte {
			v := m.(*msgSnapshot)
			b = append(b, byte(v.Table))
			b = wire.AppendUvarint(b, uint64(v.Part))
			b = wire.AppendUvarint(b, uint64(len(v.Keys)))
			for i := range v.Keys {
				b = wire.AppendKey(b, v.Keys[i])
				b = wire.AppendU64(b, v.TIDs[i])
				b = wire.AppendBytes(b, v.Rows[i])
			}
			return b
		},
		func(b []byte) (transport.Message, []byte, error) {
			v := &msgSnapshot{}
			if len(b) < 1 {
				return nil, nil, wire.ErrTruncated
			}
			v.Table = storage.TableID(b[0])
			part, b, err := wire.Uvarint(b[1:])
			if err != nil {
				return nil, nil, err
			}
			v.Part = int(part)
			n, b, err := wire.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			// Each record costs ≥ 25 bytes; bound allocation by buffer.
			if n > uint64(len(b))/25+1 {
				return nil, nil, wire.ErrCorrupt
			}
			v.Keys = make([]storage.Key, n)
			v.TIDs = make([]uint64, n)
			v.Rows = make([][]byte, n)
			for i := uint64(0); i < n; i++ {
				if v.Keys[i], b, err = wire.Key(b); err != nil {
					return nil, nil, err
				}
				if v.TIDs[i], b, err = wire.U64(b); err != nil {
					return nil, nil, err
				}
				if v.Rows[i], b, err = wire.Bytes(b); err != nil {
					return nil, nil, err
				}
			}
			return v, b, nil
		})

	c.Register(wireReplBatch, (*replication.Batch)(nil),
		func(b []byte, m transport.Message) []byte {
			return wire.AppendBatch(b, m.(*replication.Batch))
		},
		func(b []byte) (transport.Message, []byte, error) {
			batch, err := wire.DecodeBatch(b)
			return batch, nil, err
		})

	c.Register(wireSyncBatch, syncBatch{},
		func(b []byte, m transport.Message) []byte {
			v := m.(syncBatch)
			b = wire.AppendVarint(b, int64(v.Worker))
			b = wire.AppendUvarint(b, v.Seq)
			b = wire.AppendVarint(b, int64(v.ReplyTo))
			return wire.AppendBatch(b, v.Batch)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v syncBatch
			x, b, err := wire.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			v.Worker = int(x)
			if v.Seq, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.ReplyTo = int(x)
			if v.Batch, err = wire.DecodeBatch(b); err != nil {
				return nil, nil, err
			}
			// DecodeBatch consumes the whole remainder (it rejects
			// trailing bytes itself).
			return v, nil, nil
		})

	c.Register(wireResetCounters, msgResetCounters{},
		func(b []byte, m transport.Message) []byte {
			return wire.AppendI64s(b, m.(msgResetCounters).Applied)
		},
		func(b []byte) (transport.Message, []byte, error) {
			applied, rest, err := wire.I64s(b)
			if err != nil {
				return nil, nil, err
			}
			return msgResetCounters{Applied: applied}, rest, nil
		})

	c.Register(wireRecoveryDone, msgRecoveryDone{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgRecoveryDone)
			b = wire.AppendVarint(b, int64(v.Node))
			return wire.AppendI64s(b, v.Sent)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgRecoveryDone
			x, b, err := wire.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			v.Node = int(x)
			if v.Sent, b, err = wire.I64s(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireStartRecovery, msgStartRecovery{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgStartRecovery)
			b = wire.AppendI32s(b, v.Parts)
			return wire.AppendI32s(b, v.From)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgStartRecovery
			var err error
			if v.Parts, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			if v.From, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireUpdateMasters, msgUpdateMasters{},
		func(b []byte, m transport.Message) []byte {
			return wire.AppendI32s(b, m.(msgUpdateMasters).Masters)
		},
		func(b []byte) (transport.Message, []byte, error) {
			masters, rest, err := wire.I32s(b)
			if err != nil {
				return nil, nil, err
			}
			return msgUpdateMasters{Masters: masters}, rest, nil
		})

	// Node-local in both engines today, but registered so a transport
	// that encodes local sends (or a future split of workers from
	// routers) keeps working.
	c.Register(wireWorkerDone, workerDoneMsg{},
		func(b []byte, m transport.Message) []byte {
			v := m.(workerDoneMsg)
			b = wire.AppendVarint(b, int64(v.Worker))
			b = wire.AppendVarint(b, v.Committed)
			b = wire.AppendVarint(b, v.GenSingle)
			return wire.AppendVarint(b, v.GenCross)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v workerDoneMsg
			var err error
			var x int64
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Worker = int(x)
			if v.Committed, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			if v.GenSingle, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			if v.GenCross, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireHalt, msgHalt{},
		func(b []byte, m transport.Message) []byte { return b },
		func(b []byte) (transport.Message, []byte, error) { return msgHalt{}, b, nil })

	c.Register(wireAdminReq, AdminReq{},
		func(b []byte, m transport.Message) []byte {
			v := m.(AdminReq)
			b = append(b, v.V, byte(v.Op))
			b = wire.AppendVarint(b, int64(v.From))
			b = wire.AppendU64(b, v.Ticket)
			b = wire.AppendVarint(b, int64(v.Node))
			return wire.AppendBool(b, v.On)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v AdminReq
			if len(b) < 2 {
				return nil, nil, wire.ErrTruncated
			}
			v.V, v.Op = b[0], AdminOp(b[1])
			x, b, err := wire.Varint(b[2:])
			if err != nil {
				return nil, nil, err
			}
			v.From = int(x)
			if v.Ticket, b, err = wire.U64(b); err != nil {
				return nil, nil, err
			}
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Node = int(x)
			if v.On, b, err = wire.Bool(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireAdminResp, AdminResp{},
		func(b []byte, m transport.Message) []byte {
			v := m.(AdminResp)
			b = append(b, v.V, byte(v.Op))
			b = wire.AppendU64(b, v.Ticket)
			b = wire.AppendVarint(b, int64(v.Node))
			b = wire.AppendBool(b, v.OK)
			b = wire.AppendBytes(b, []byte(v.Err))
			b = wire.AppendI32s(b, v.Parts)
			b = wire.AppendU64s(b, v.Sums)
			b = wire.AppendUvarint(b, uint64(len(v.Keys)))
			for _, k := range v.Keys {
				b = wire.AppendBytes(b, []byte(k))
			}
			b = wire.AppendI64s(b, v.Vals)
			b = wire.AppendUvarint(b, v.Version)
			b = wire.AppendI32s(b, v.Members)
			b = wire.AppendI32s(b, v.Masters)
			b = wire.AppendUvarint(b, uint64(len(v.ClientAddrs)))
			for _, a := range v.ClientAddrs {
				b = wire.AppendBytes(b, []byte(a))
			}
			return wire.AppendBytes(b, v.Stats)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v AdminResp
			if len(b) < 2 {
				return nil, nil, wire.ErrTruncated
			}
			v.V, v.Op = b[0], AdminOp(b[1])
			var err error
			if v.Ticket, b, err = wire.U64(b[2:]); err != nil {
				return nil, nil, err
			}
			var x int64
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Node = int(x)
			if v.OK, b, err = wire.Bool(b); err != nil {
				return nil, nil, err
			}
			var eb []byte
			if eb, b, err = wire.Bytes(b); err != nil {
				return nil, nil, err
			}
			v.Err = string(eb)
			if v.Parts, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			if v.Sums, b, err = wire.U64s(b); err != nil {
				return nil, nil, err
			}
			if len(v.Sums) != len(v.Parts) {
				return nil, nil, wire.ErrCorrupt
			}
			nk, b, err := wire.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if nk > 1<<12 {
				return nil, nil, wire.ErrCorrupt
			}
			if nk > 0 {
				v.Keys = make([]string, nk)
				for i := range v.Keys {
					var kb []byte
					if kb, b, err = wire.Bytes(b); err != nil {
						return nil, nil, err
					}
					v.Keys[i] = string(kb)
				}
			}
			if v.Vals, b, err = wire.I64s(b); err != nil {
				return nil, nil, err
			}
			if len(v.Vals) != len(v.Keys) {
				return nil, nil, wire.ErrCorrupt
			}
			if v.Version, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			if v.Members, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			if v.Masters, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			na, b, err := wire.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if na > 1<<12 {
				return nil, nil, wire.ErrCorrupt
			}
			if na > 0 {
				v.ClientAddrs = make([]string, na)
				for i := range v.ClientAddrs {
					var ab []byte
					if ab, b, err = wire.Bytes(b); err != nil {
						return nil, nil, err
					}
					v.ClientAddrs[i] = string(ab)
				}
			}
			var sb []byte
			if sb, b, err = wire.Bytes(b); err != nil {
				return nil, nil, err
			}
			if len(sb) > 0 {
				// wire.Bytes aliases the frame buffer; the snapshot blob
				// outlives the frame (the admin client hands it to the
				// decoder after more frames arrive), so copy it out.
				v.Stats = append([]byte(nil), sb...)
			}
			return v, b, nil
		})

	c.Register(wireTopology, msgTopology{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgTopology)
			b = wire.AppendUvarint(b, v.Version)
			b = wire.AppendVarint(b, int64(v.Master))
			b = wire.AppendI32s(b, v.Members)
			b = wire.AppendI32s(b, v.Masters)
			return wire.AppendI32s(b, v.Secondary)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgTopology
			var err error
			if v.Version, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			var x int64
			if x, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			v.Master = int32(x)
			if v.Members, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			if v.Masters, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			if v.Secondary, b, err = wire.I32s(b); err != nil {
				return nil, nil, err
			}
			if len(v.Secondary) != len(v.Masters) {
				return nil, nil, wire.ErrCorrupt
			}
			return v, b, nil
		})

	// ClientReq carries the session header (token, origin, ticket) ahead
	// of the request body: AppendRequest does not ship Origin/Ticket (the
	// engine-internal msgDefer has no use for them), so the client
	// envelope encodes them itself and stamps the decoded request.
	c.Register(wireClientReq, ClientReq{},
		func(b []byte, m transport.Message) []byte {
			v := m.(ClientReq)
			b = wire.AppendUvarint(b, v.Token)
			b = wire.AppendVarint(b, int64(v.Req.Origin))
			b = wire.AppendU64(b, v.Req.Ticket)
			b, err := c.AppendRequest(b, v.Req)
			if err != nil {
				panic("core: encode client request: " + err.Error())
			}
			return b
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v ClientReq
			var err error
			if v.Token, b, err = wire.Uvarint(b); err != nil {
				return nil, nil, err
			}
			var origin int64
			if origin, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			var ticket uint64
			if ticket, b, err = wire.U64(b); err != nil {
				return nil, nil, err
			}
			req, rest, err := c.DecodeRequest(b)
			if err != nil {
				return nil, nil, err
			}
			req.Origin = int(origin)
			req.Ticket = ticket
			v.Req = req
			return v, rest, nil
		})

	c.Register(wireClientResp, ClientResp{},
		func(b []byte, m transport.Message) []byte {
			v := m.(ClientResp)
			b = wire.AppendU64(b, v.Ticket)
			b = append(b, byte(v.Status))
			b = wire.AppendUvarint(b, v.Token)
			return wire.AppendVarint(b, v.Reads)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v ClientResp
			var err error
			if v.Ticket, b, err = wire.U64(b); err != nil {
				return nil, nil, err
			}
			if len(b) < 1 {
				return nil, nil, wire.ErrTruncated
			}
			v.Status = ClientStatus(b[0])
			if v.Status < StatusOK || v.Status > StatusAborted {
				return nil, nil, wire.ErrCorrupt
			}
			if v.Token, b, err = wire.Uvarint(b[1:]); err != nil {
				return nil, nil, err
			}
			if v.Reads, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})

	c.Register(wireAlignCounters, msgAlignCounters{},
		func(b []byte, m transport.Message) []byte {
			v := m.(msgAlignCounters)
			b = wire.AppendVarint(b, int64(v.Src))
			return wire.AppendVarint(b, v.Applied)
		},
		func(b []byte) (transport.Message, []byte, error) {
			var v msgAlignCounters
			x, b, err := wire.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			v.Src = int(x)
			if v.Applied, b, err = wire.Varint(b); err != nil {
				return nil, nil, err
			}
			return v, b, nil
		})
}
