package core

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"

	"star/internal/transport"
	"star/internal/wire"
)

// DefaultClientWindow is the per-connection in-flight bound the front
// door enforces when the caller does not choose one.
const DefaultClientWindow = 64

// ServeClients turns ln into node id's client front door: each accepted
// connection carries length-prefixed ClientReq frames (the same wire
// framing the cluster speaks) and receives one ClientResp frame per
// request. Real-runtime clusters only (star-node -serve); returns after
// spawning the accept loop, which exits when ln is closed.
//
// Per-connection admission control: at most window forwarded requests
// may be in flight at once — beyond that the door answers StatusBusy
// immediately instead of queueing, so a flooding client backs off
// instead of ballooning server state. Read-only requests the local
// replica can serve under the session's freshness token never count
// against the window (they complete inline, no master round trip).
func (e *Engine) ServeClients(id int, ln net.Listener, codec *wire.Codec, window int) {
	n := e.nodes[id]
	if n == nil {
		panic("core: ServeClients on a node this process does not host")
	}
	if window <= 0 {
		window = DefaultClientWindow
	}
	go func() {
		var seq uint64
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			seq++
			cc := &clientConn{
				n:      n,
				id:     seq,
				c:      c,
				codec:  codec,
				window: int32(window),
				out:    make(chan transport.Message, window),
				done:   make(chan struct{}),
			}
			go cc.readLoop()
			go cc.writeLoop()
		}
	}()
}

// clientConn is one accepted star-client connection.
type clientConn struct {
	n      *node
	id     uint64 // gate-scoped connection id
	c      net.Conn
	codec  *wire.Codec
	window int32
	// inflight counts forwarded requests awaiting their master response
	// (incremented by the reader, decremented by waiters).
	inflight atomic.Int32
	out      chan transport.Message
	done     chan struct{}
	closer   sync.Once
}

// close tears the connection down exactly once: the socket unblocks both
// loops, and dropConn abandons the outstanding tickets so their waiters
// release the admission slots they hold.
func (cc *clientConn) close() {
	cc.closer.Do(func() {
		close(cc.done)
		cc.c.Close()
		cc.n.gate.dropConn(cc.id)
	})
}

// send queues a response frame for the writer, giving up if the
// connection is being torn down.
func (cc *clientConn) send(resp transport.Message) {
	select {
	case cc.out <- resp:
	case <-cc.done:
	}
}

func (cc *clientConn) readLoop() {
	defer cc.close()
	br := bufio.NewReaderSize(cc.c, 32<<10)
	for {
		body, err := wire.ReadFrame(br, wire.MaxClientFrame)
		if err != nil {
			return
		}
		_, m, err := wire.DecodeFrameBody(body, cc.codec)
		if err != nil {
			return // a malformed client is disconnected, not served
		}
		if areq, isAdmin := m.(AdminReq); isAdmin {
			// Admin envelope over the front door (star-admin): forward it
			// through the gate under a server ticket, answering with the
			// client's own correlation id restored.
			ticket := areq.Ticket
			_, ch := cc.n.gate.SubmitAdmin(cc.id, areq)
			go func() {
				resp, ok := <-ch
				if !ok {
					return // connection dropped; ticket abandoned
				}
				resp.Ticket = ticket
				cc.send(resp)
			}()
			continue
		}
		creq, ok := m.(ClientReq)
		if !ok {
			return
		}
		// The client's own correlation id arrives in Req.Ticket; the gate
		// re-stamps the request with a server ticket on forward, so it is
		// captured here for the response.
		ticket := creq.Req.Ticket
		if resp, served := cc.n.gate.TryRead(creq.Token, creq.Req); served {
			resp.Ticket = ticket
			cc.send(resp)
			continue
		}
		if cc.inflight.Load() >= cc.window {
			// Window full: shed explicitly rather than queue. The client
			// library backs off and retries.
			cc.n.e.shedClient.Inc()
			cc.send(ClientResp{Ticket: ticket, Status: StatusBusy})
			continue
		}
		cc.inflight.Add(1)
		_, ch := cc.n.gate.Submit(cc.id, creq.Token, creq.Req)
		go func() {
			defer cc.inflight.Add(-1)
			resp, ok := <-ch
			if !ok {
				return // connection dropped; ticket abandoned
			}
			resp.Ticket = ticket
			cc.send(resp)
		}()
	}
}

func (cc *clientConn) writeLoop() {
	defer cc.close()
	bw := bufio.NewWriterSize(cc.c, 32<<10)
	var buf []byte
	for {
		select {
		case resp := <-cc.out:
			var err error
			buf, err = wire.AppendFrame(buf[:0], cc.n.id, 0, transport.Control, cc.codec, resp)
			if err != nil {
				return
			}
			if _, err := bw.Write(buf); err != nil {
				return
			}
			if len(cc.out) == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
		case <-cc.done:
			return
		}
	}
}
