package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"star/internal/replication"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/wire"
	"star/internal/workload/tpcc"
	"star/internal/workload/ycsb"
)

func testWorkloads() (*tpcc.Workload, *ycsb.Workload) {
	tw := tpcc.New(tpcc.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 100, Items: 500,
	})
	yw := ycsb.New(ycsb.Config{Partitions: 4, RecordsPerPartition: 100})
	return tw, yw
}

// testCodec registers every engine message plus both workloads'
// procedures (their id blocks are disjoint).
func testCodec(tw *tpcc.Workload, yw *ycsb.Workload) *wire.Codec {
	c := wire.NewCodec()
	registerMessages(c)
	tw.RegisterWire(c)
	yw.RegisterWire(c)
	return c
}

// sampleMessages builds one canonical instance of every wire message
// type. The deferred requests come from the real generators so the
// procedure codecs are exercised with realistic parameters.
func sampleMessages(tw *tpcc.Workload, yw *ycsb.Workload) []transport.Message {
	tg := tw.NewGen(3)
	yg := yw.NewGen(4)
	ents := []replication.Entry{
		{Table: 2, Part: 1, Key: storage.K2(3, 4), TID: storage.MakeTID(5, 6), Row: []byte("row")},
		{Table: 0, Part: 2, Key: storage.K1(9), TID: storage.MakeTID(5, 7), Ops: []storage.FieldOp{
			storage.AddFloat64Op(1, 2.5),
		}},
	}
	return []transport.Message{
		msgStartPhase{Phase: SingleMaster, Epoch: 9, Deadline: 40 * time.Millisecond,
			Master: 1, Failed: []int{2}, ScriptTxns: 5, ScriptDeferred: 17},
		msgPhaseDone{Node: 2, Epoch: 9, Sent: []int64{0, 4, 9}, Committed: 120, GenSingle: 110, GenCross: 12},
		msgFenceDrain{Epoch: 9, Expected: []int64{1, 2, 3}},
		msgFenceAck{Node: 1, Epoch: 9},
		msgDefer{Req: txn.NewRequest(tg.Cross(1), 12345)},
		msgDefer{Req: txn.NewRequest(yg.Cross(2), 777)},
		msgDefer{Req: txn.NewRequest(&tpcc.DeliveryTxn{W: tw, WID: 1, Carrier: 3, DeliveryD: 99}, 555)},
		msgDefer{Req: txn.NewRequest(&tpcc.StockLevelTxn{W: tw, WID: 0, DID: 1, Threshold: 15, Remote: []int{2}}, 556)},
		msgDefer{Req: txn.NewRequest(&tpcc.OrderStatusTxn{W: tw, WID: 1, CWID: 2, CDID: 1, CID: 7}, 557)},
		msgDefer{Req: txn.NewRequest(&tpcc.OrderStatusTxn{W: tw, WID: 0, CWID: 3, CDID: 0, CID: -1,
			ByName: true, CLast: []byte("BARBARBAR")}, 558)},
		msgReplAck{Worker: 3, Seq: 41},
		msgRevert{Epoch: 8, Failed: []int{1}, NewMasters: []int32{0, 0, 2, 3}},
		msgSnapshotReq{From: 2, Part: 3},
		&msgSnapshot{Table: 1, Part: 2,
			Keys: []storage.Key{storage.K1(1), storage.K2(2, 3)},
			TIDs: []uint64{storage.MakeTID(2, 1), storage.MakeTID(2, 2)},
			Rows: [][]byte{[]byte("alpha"), nil}},
		&replication.Batch{From: 1, Epoch: 9, Entries: ents},
		syncBatch{Batch: &replication.Batch{From: 0, Epoch: 9, Entries: ents[:1]}, Worker: 2, Seq: 5, ReplyTo: 0},
		msgResetCounters{Applied: []int64{5, 0, 9}},
		msgRecoveryDone{Node: 2, Sent: []int64{7, 0, 3}},
		msgAlignCounters{Src: 1, Applied: 4096},
		msgStartRecovery{Parts: []int32{1, 3}, From: []int32{0, 0}},
		msgUpdateMasters{Masters: []int32{0, 1, 2, 3}},
		workerDoneMsg{Worker: 1, Committed: 50, GenSingle: 45, GenCross: 5},
		msgHalt{},
		AdminReq{V: 1, Op: AdminFreeze, From: 5, Ticket: 9, Node: -1, On: true},
		AdminReq{V: 1, Op: AdminChecksums, From: 4, Node: 2},
		AdminReq{V: 1, Op: AdminJoin, From: 0, Ticket: 31, Node: 3},
		AdminReq{V: 1, Op: AdminStats, From: 3, Ticket: 17, Node: 1},
		AdminResp{V: 1, Op: AdminChecksums, Ticket: 9, Node: 1, OK: true,
			Parts: []int32{0, 2}, Sums: []uint64{0xdead, 0xbeef}},
		AdminResp{V: 1, Op: AdminFaultStats, Node: 1, OK: true,
			Keys: []string{"fault_drops", "fault_dups"}, Vals: []int64{12, 3}},
		AdminResp{V: 1, Op: AdminDrain, Ticket: 4, Node: 2, Err: "drain: not a member"},
		AdminResp{V: 1, Op: AdminStats, Ticket: 17, Node: 1, OK: true,
			Stats: []byte(`{"counters":{"committed":42},"hists":{"latency":{"count":1,"sum":5,"max":5,"buckets":{"3":1}}}}`)},
		AdminResp{V: 1, Op: AdminTopologyGet, Node: 0, OK: true, Version: 7,
			Members: []int32{0, 2, 3}, Masters: []int32{0, 0, 2, 3},
			ClientAddrs: []string{"127.0.0.1:7001", "", "127.0.0.1:7003"}},
		msgTopology{Version: 7, Master: 0, Members: []int32{0, 2, 3},
			Masters: []int32{0, 0, 2, 3}, Secondary: []int32{2, 3, -1, -1}},
		ClientReq{Token: 8, Req: ticketed(txn.NewRequest(tg.Cross(1), 999), 1, 77)},
		ClientReq{Token: 0, Req: ticketed(txn.NewRequest(&tpcc.StockLevelTxn{
			W: tw, WID: 1, DID: 0, Threshold: 12, Remote: []int{0}}, 600), 2, 1)},
		ClientReq{Token: 3, Req: ticketed(txn.NewRequest(yg.Cross(3), 444), 0, 1<<40)},
		ClientResp{Ticket: 12, Status: StatusOK, Token: 9, Reads: 31},
		ClientResp{Ticket: 13, Status: StatusBusy},
		ClientResp{Ticket: 14, Status: StatusAborted, Token: 2},
	}
}

// ticketed stamps the session routing fields a client envelope carries.
func ticketed(r *txn.Request, origin int, ticket uint64) *txn.Request {
	r.Origin, r.Ticket = origin, ticket
	return r
}

// TestWireMessagesRoundTrip pins decode(encode(m)) == m for every
// message type the cluster sends, through the full frame path.
func TestWireMessagesRoundTrip(t *testing.T) {
	tw, yw := testWorkloads()
	c := testCodec(tw, yw)
	for i, m := range sampleMessages(tw, yw) {
		frame, err := wire.AppendFrame(nil, 2, 4, transport.Control, c, m)
		if err != nil {
			t.Fatalf("message %d (%T): encode: %v", i, m, err)
		}
		fi, got, err := wire.DecodeFrameBody(frame[4:], c)
		if err != nil {
			t.Fatalf("message %d (%T): decode: %v", i, m, err)
		}
		if fi.Src != 2 || fi.Dst != 4 || fi.Class != transport.Control {
			t.Fatalf("message %d (%T): frame header %+v", i, m, fi)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("message %d (%T) round trip:\n got %#v\nwant %#v", i, m, got, m)
		}
		// Trailing bytes after a valid message mean stream desync: the
		// codec must reject them, not silently accept.
		if _, _, err := wire.DecodeFrameBody(append(frame[4:], 0xee), c); err == nil {
			t.Fatalf("message %d (%T): trailing byte accepted", i, m)
		}
	}
}

// TestModelledSizesTrackEncoding is the size-model fix's pin: the
// modelled Size() of the messages whose sizes were re-derived from the
// codec (msgDefer, msgSnapshot) stays within 10% of the actual encoded
// frame length, for a large sample of generated transactions.
func TestModelledSizesTrackEncoding(t *testing.T) {
	tw, yw := testWorkloads()
	c := testCodec(tw, yw)
	rng := rand.New(rand.NewSource(99))
	check := func(name string, m transport.Message) {
		t.Helper()
		frame, err := wire.AppendFrame(nil, 0, 1, transport.Data, c, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		modelled, encoded := m.Size(), len(frame)
		drift := float64(modelled-encoded) / float64(encoded)
		if drift < 0 {
			drift = -drift
		}
		if drift >= 0.10 {
			t.Fatalf("%s: modelled %d vs encoded %d (drift %.1f%% ≥ 10%%)",
				name, modelled, encoded, drift*100)
		}
	}
	tg := tw.NewGen(7)
	yg := yw.NewGen(8)
	for i := 0; i < 200; i++ {
		home := i % 4
		check("tpcc defer", msgDefer{Req: txn.NewRequest(tg.Mixed(home), int64(i)*1001)})
		check("ycsb defer", msgDefer{Req: txn.NewRequest(yg.Mixed(home), int64(i)*77)})
	}
	// Full-mix generator: Delivery and Stock-Level defers must track too.
	ftw := tpcc.New(tpcc.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 100, Items: 500,
		DeliveryPct: 20, StockLevelPct: 20, CrossPctStockLevel: 50,
	})
	fg := ftw.NewGen(9)
	for i := 0; i < 200; i++ {
		check("tpcc full-mix defer", msgDefer{Req: txn.NewRequest(fg.Mixed(i%4), int64(i)*501)})
	}
	for i := 0; i < 20; i++ {
		snap := &msgSnapshot{Table: storage.TableID(i % 3), Part: i}
		for j := 0; j < 1+rng.Intn(50); j++ {
			row := make([]byte, rng.Intn(200))
			rng.Read(row)
			snap.Keys = append(snap.Keys, storage.K2(uint64(i), uint64(j)))
			snap.TIDs = append(snap.TIDs, storage.MakeTID(3, uint64(j+1)))
			snap.Rows = append(snap.Rows, row)
		}
		check("snapshot", snap)
	}
}

// TestRequestGenAtRebasedAcrossClockDomains pins the cross-process
// latency-stamp fix: with clocked codecs on both sides, a request's
// GenAt is re-based from the sender's clock domain into the receiver's —
// the request keeps its age instead of carrying a raw foreign timestamp
// (multi-process runtimes have unrelated clock origins). Unclocked
// codecs (scripted runs, whose GenAt is a deterministic ordering stamp)
// pass GenAt through verbatim.
func TestRequestGenAtRebasedAcrossClockDomains(t *testing.T) {
	tw, yw := testWorkloads()
	tg := tw.NewGen(5)
	req := txn.NewRequest(tg.Cross(1), 0)

	// Sender: its process clock reads 1000 and the request is 400 old.
	sender := testCodec(tw, yw)
	sender.SetClock(func() int64 { return 1000 })
	req.GenAt = 600
	enc, err := sender.AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}

	// Receiver: a different clock origin (reads 5000 at decode).
	receiver := testCodec(tw, yw)
	receiver.SetClock(func() int64 { return 5000 })
	dec, _, err := receiver.DecodeRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.GenAt != 5000-400 {
		t.Fatalf("re-based GenAt = %d, want %d (age preserved)", dec.GenAt, 5000-400)
	}

	// Unclocked codecs: verbatim (scripted determinism relies on this).
	plain := testCodec(tw, yw)
	enc2, err := plain.AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	dec2, _, err := plain.DecodeRequest(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.GenAt != 600 {
		t.Fatalf("unclocked GenAt = %d, want 600 verbatim", dec2.GenAt)
	}
}

// corpusSeed mirrors the wire package's committed-corpus helper.
func corpusSeed(f *testing.F, target string, idx int, data []byte) {
	f.Helper()
	f.Add(data)
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		f.Fatalf("corpus dir: %v", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%02d", idx))
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if existing, err := os.ReadFile(path); err == nil && string(existing) == content {
		return
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		f.Fatalf("write corpus seed: %v", err)
	}
}

// FuzzWireMessages throws arbitrary frame bodies at the full message
// codec: decoding must never panic (truncated/corrupt frames are
// rejected with errors), and anything that decodes must survive a
// canonical re-encode/decode cycle unchanged.
func FuzzWireMessages(f *testing.F) {
	tw, yw := testWorkloads()
	c := testCodec(tw, yw)
	for i, m := range sampleMessages(tw, yw) {
		enc, err := c.Append(nil, m)
		if err != nil {
			f.Fatalf("seed %d: %v", i, err)
		}
		corpusSeed(f, "FuzzWireMessages", i, enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := c.Decode(data)
		if err != nil {
			return // rejected cleanly
		}
		enc, err := c.Append(nil, m)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		m2, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding of %T does not decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("canonical round trip changed %T:\n%#v\nvs\n%#v", m, m, m2)
		}
	})
}
