package core

import (
	"math/rand"
	"time"

	"star/internal/occ"
	"star/internal/replication"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/txn"
	"star/internal/wal"
	"star/internal/workload"
)

// worker is one execution thread. In the partitioned phase it serially
// runs single-partition transactions on the partitions it masters; in
// the single-master phase (on the designated master only) it runs
// cross-partition transactions under OCC.
type worker struct {
	n    *node
	idx  int
	gen  workload.Gen
	rng  *rand.Rand
	tid  occ.TIDGen
	strm *replication.Stream
	ctl  rt.Chan // phase commands from the router
	resp rt.Chan // replication acks (SYNC STAR)
	set  txn.RWSet
	seq  uint64 // sync-batch sequence
	// logger is the worker's real recovery log (LogDir mode).
	logger *wal.Logger
}

func newWorker(n *node, idx int) *worker {
	e := n.e
	seed := e.cfg.Seed*1_000_003 + int64(n.id)*257 + int64(idx) + 1
	return &worker{
		n:    n,
		idx:  idx,
		gen:  e.cfg.Workload.NewGen(seed),
		rng:  rand.New(rand.NewSource(seed ^ 0x5eed)),
		strm: replication.NewStream(e.net, n.tracker, n.id, e.cfg.streamLimits()),
		ctl:  e.cfg.RT.NewChan(4),
		resp: e.cfg.RT.NewChan(16),
	}
}

func (w *worker) loop() {
	for {
		cmd := w.ctl.Recv().(msgStartPhase)
		w.strm.SetEpoch(cmd.Epoch)
		switch {
		case cmd.Phase == Partitioned:
			w.runPartitioned(cmd)
		case cmd.Phase == SingleMaster && w.n.id == cmd.Master:
			w.runSingleMaster(cmd)
		default:
			// Standing by for replication (§4.3): the router applies the
			// master's stream; this worker just waits the phase out.
			if d := cmd.Deadline - w.n.e.cfg.RT.Now(); d > 0 {
				w.n.e.cfg.RT.Sleep(d)
			}
		}
		w.strm.Flush()
		if w.logger != nil {
			w.logger.Flush(false) // fence flush (§4.5.1)
		}
		w.n.e.net.Send(w.n.id, w.n.id, simnet.Control, workerDoneMsg{Worker: w.idx})
	}
}

// ---- partitioned phase ----

func (w *worker) runPartitioned(cmd msgStartPhase) {
	r := w.n.e.cfg.RT
	parts := w.n.ownedPartitions(w.idx)
	if len(parts) == 0 {
		if d := cmd.Deadline - r.Now(); d > 0 {
			r.Sleep(d)
		}
		return
	}
	pi := 0
	for r.Now() < cmd.Deadline {
		if w.n.e.frozen.Load() {
			break
		}
		home := parts[pi]
		pi = (pi + 1) % len(parts)
		req := txn.NewRequest(w.gen.Mixed(home), int64(r.Now()))
		if req.Cross {
			// Defer to the master node's queue (§4.1).
			w.n.mu.Lock()
			w.n.genCross++
			w.n.mu.Unlock()
			w.n.e.net.Send(w.n.id, cmd.Master, simnet.Data, msgDefer{Req: req})
			r.Compute(w.n.e.cfg.Cost.TxnOverhead / 2)
			continue
		}
		w.n.mu.Lock()
		w.n.genSingle++
		w.n.mu.Unlock()
		w.execSerial(req, cmd.Epoch)
	}
}

// execSerial runs a single-partition transaction with no concurrency
// control (§4.1) and replicates its writes.
func (w *worker) execSerial(req *txn.Request, epoch uint64) {
	e := w.n.e
	r := e.cfg.RT
	w.set.Reset()
	ctx := &localCtx{w: w}
	err := req.Proc.Run(ctx)
	r.Compute(w.execCost(ctx))
	if err != nil {
		// Single-partition transactions only abort for application
		// reasons (no concurrent access to the partition).
		e.userAborts.Inc()
		return
	}
	collectRows := !e.cfg.HybridRepl || w.logger != nil
	tidv, ok := occ.CommitSerial(w.n.db, &w.set, epoch, &w.tid, collectRows)
	if !ok {
		e.aborted.Inc()
		return
	}
	var entries []replication.Entry
	if e.cfg.HybridRepl {
		entries = replication.OpEntries(&w.set, tidv)
	} else {
		entries = replication.ValueEntries(&w.set, tidv)
	}
	for i := range entries {
		for _, dst := range e.replicaTargets(w.n, int(entries[i].Part)) {
			w.strm.Append(dst, entries[i])
		}
	}
	if e.cfg.Logging {
		w.chargeTxnLog()
	}
	w.finishCommit(req)
}

// ---- single-master phase ----

func (w *worker) runSingleMaster(cmd msgStartPhase) {
	e := w.n.e
	r := e.cfg.RT
	nparts := e.cfg.NumPartitions()
	for r.Now() < cmd.Deadline {
		if e.frozen.Load() {
			break
		}
		var req *txn.Request
		if v, ok := w.n.masterQ.TryRecv(); ok {
			req = v.(*txn.Request)
		} else {
			// Queue drained: generate fresh cross-partition work (§7.1:
			// workers generate and run transactions back to back).
			home := w.rng.Intn(nparts)
			req = txn.NewRequest(w.gen.Cross(home), int64(r.Now()))
			w.n.mu.Lock()
			w.n.genCross++
			w.n.mu.Unlock()
		}
		w.execOCC(req, cmd)
	}
}

// execOCC runs one transaction to commit (retrying concurrency aborts)
// under the Silo-variant protocol of §4.2.
func (w *worker) execOCC(req *txn.Request, cmd msgStartPhase) {
	e := w.n.e
	r := e.cfg.RT
	for {
		w.set.Reset()
		ctx := &localCtx{w: w}
		err := req.Proc.Run(ctx)
		// Yield for the modelled execution time BEFORE commit: the OCC
		// validation window is exposed to concurrent workers.
		r.Compute(w.execCost(ctx))
		if err == txn.ErrUserAbort {
			e.userAborts.Inc()
			return
		}
		if err == nil && !ctx.failed {
			if e.cfg.SyncRepl {
				if w.commitSync(req, cmd.Epoch) {
					return
				}
			} else {
				commit := occ.Commit
				if e.cfg.ReadCommitted {
					commit = occ.CommitReadCommitted
				}
				tidv, ok := commit(w.n.db, &w.set, cmd.Epoch, &w.tid, true)
				if ok {
					w.replicateValue(tidv)
					if e.cfg.Logging {
						w.chargeTxnLog()
					}
					w.finishCommit(req)
					return
				}
			}
		}
		e.aborted.Inc()
		req.Retries++
		if r.Now() >= cmd.Deadline {
			// Phase over: requeue so the transaction is not lost.
			w.n.masterQ.Send(req)
			return
		}
	}
}

// commitSync implements SYNC STAR: locks are held while every replica
// acknowledges the writes (§6.1 & Fig 15a).
func (w *worker) commitSync(req *txn.Request, epoch uint64) bool {
	e := w.n.e
	if !occ.LockAndValidate(w.n.db, &w.set) {
		return false
	}
	tidv := w.tid.Next(epoch, w.set.MaxReadTID())
	occ.ApplyWrites(w.n.db, &w.set, epoch, tidv, true)

	entries := replication.ValueEntries(&w.set, tidv)
	perDst := map[int][]replication.Entry{}
	for i := range entries {
		for _, dst := range e.replicaTargets(w.n, int(entries[i].Part)) {
			perDst[dst] = append(perDst[dst], entries[i])
		}
	}
	w.seq++
	want := 0
	for dst, ents := range perDst {
		w.n.tracker.AddSent(dst, int64(len(ents)))
		e.net.Send(w.n.id, dst, simnet.Replication, syncBatch{
			Batch:   &msgReplBatch{From: w.n.id, Epoch: epoch, Entries: ents},
			Worker:  w.idx,
			Seq:     w.seq,
			ReplyTo: w.n.id,
		})
		want++
	}
	for got := 0; got < want; {
		v, ok := w.resp.RecvTimeout(50 * time.Millisecond)
		if !ok {
			break // replica lost; the fence will sort it out
		}
		if a := v.(msgReplAck); a.Seq == w.seq {
			got++
		}
	}
	occ.ReleaseLocks(&w.set)
	if e.cfg.Logging {
		w.chargeTxnLog()
	}
	w.finishCommit(req)
	return true
}

func (w *worker) replicateValue(tidv uint64) {
	e := w.n.e
	entries := replication.ValueEntries(&w.set, tidv)
	for i := range entries {
		for _, dst := range e.replicaTargets(w.n, int(entries[i].Part)) {
			w.strm.Append(dst, entries[i])
		}
	}
}

func (w *worker) finishCommit(req *txn.Request) {
	w.n.e.committed.Inc()
	w.n.mu.Lock()
	w.n.phaseCommitted++
	w.n.pendingLat = append(w.n.pendingLat, req.GenAt)
	w.n.mu.Unlock()
}

// chargeTxnLog models logging the write set locally (§4.5.1) and, in
// LogDir mode, writes the whole-row entries to the worker's real log.
func (w *worker) chargeTxnLog() {
	bytes := 0
	for i := range w.set.Writes {
		bytes += 32 + len(w.set.Writes[i].Row)
	}
	w.n.chargeLog(bytes)
	if w.logger == nil {
		return
	}
	for i := range w.set.Writes {
		wr := &w.set.Writes[i]
		tid := storage.TIDClean(wr.Rec.TID())
		w.logger.AppendWrite(wr.Table, int32(wr.Part), wr.Key, tid, false, wr.Row)
	}
}

func (w *worker) execCost(ctx *localCtx) time.Duration {
	c := w.n.e.cfg.Cost
	return c.TxnOverhead +
		time.Duration(ctx.reads)*c.Read +
		time.Duration(ctx.writes)*c.Write
}

// ---- transaction contexts ----

// localCtx executes against the local database with no validation —
// partitioned-phase execution (reads are still tracked so the TID rules
// see them).
type localCtx struct {
	w      *worker
	reads  int
	writes int
	failed bool
}

func (c *localCtx) Read(t storage.TableID, part int, key storage.Key) ([]byte, bool) {
	c.reads++
	w := c.w
	tbl := w.n.db.Table(t)
	if tbl.Replicated() {
		rec := tbl.Get(part, key)
		if rec == nil {
			return nil, false
		}
		val, _, present := rec.ReadStable(nil)
		return val, present
	}
	rec := tbl.Get(part, key)
	if rec == nil {
		c.failed = true
		return nil, false
	}
	val, tid, present := rec.ReadStable(nil)
	if !present {
		c.failed = true
		return nil, false
	}
	w.set.AddRead(t, part, key, rec, tid)
	return val, true
}

func (c *localCtx) Write(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	c.writes++
	c.w.set.AddWrite(t, part, key, ops...)
}

func (c *localCtx) Insert(t storage.TableID, part int, key storage.Key, row []byte) {
	c.writes++
	c.w.set.AddInsert(t, part, key, row)
}
