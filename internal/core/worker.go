package core

import (
	"math/rand"
	"time"

	"star/internal/occ"
	"star/internal/replication"
	"star/internal/rt"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/wal"
	"star/internal/workload"
)

// worker is one execution thread. In the partitioned phase it serially
// runs single-partition transactions on the partitions it masters; in
// the single-master phase (on the designated master only) it runs
// cross-partition transactions under OCC.
//
// The worker owns every scratch structure the per-transaction path
// needs — the read/write set, the execution context and its read arena,
// a routing Request, and the replication stream with its arenas — so a
// steady-state committed transaction performs no heap allocation and
// takes no shared mutex: phase monitors and group-commit latency stamps
// accumulate in worker-local shards that the router drains at the phase
// fence.
type worker struct {
	n    *node
	idx  int
	gen  workload.Gen
	rng  *rand.Rand
	tid  occ.TIDGen
	strm *replication.Stream
	ctl  rt.Chan // phase commands from the router
	resp rt.Chan // replication acks (SYNC STAR)
	set  txn.RWSet
	seq  uint64 // sync-batch sequence
	// logger is the worker's real recovery log (LogDir mode).
	logger *wal.Logger

	// lctx is the reusable execution context (its arena backs the row
	// copies handed to procedures, reset per transaction).
	lctx localCtx
	// sctx is the reusable snapshot-read context (Config.SnapshotReads).
	sctx snapshotCtx
	// req is the reusable routing scratch for generated transactions;
	// only deferred cross-partition requests are cloned to the heap.
	req txn.Request

	// Phase-monitor shards, reported to the router in workerDoneMsg at
	// the end of each phase (no node mutex on the commit path).
	committed int64
	genSingle int64
	genCross  int64
	// pendingLat holds GenAt stamps of transactions committed this
	// epoch; the router (sole reader while workers idle at the fence)
	// releases them as group-commit latencies at the next phase start.
	pendingLat []int64
	// pendingClient holds ticketed client commits awaiting their fence:
	// the router releases their responses (with the commit epoch as the
	// session freshness token) alongside pendingLat.
	pendingClient []clientDone
}

// clientDone is one ticketed commit awaiting group-commit release.
type clientDone struct {
	origin int
	ticket uint64
	epoch  uint64
}

func newWorker(n *node, idx int) *worker {
	e := n.e
	seed := e.cfg.Seed*1_000_003 + int64(n.id)*257 + int64(idx) + 1
	w := &worker{
		n:    n,
		idx:  idx,
		gen:  e.cfg.Workload.NewGen(seed),
		rng:  rand.New(rand.NewSource(seed ^ 0x5eed)),
		strm: replication.NewStream(e.net, n.tracker, n.id, e.cfg.streamLimits()),
		ctl:  e.cfg.RT.NewChan(4),
		resp: e.cfg.RT.NewChan(16),
	}
	w.lctx.w = w
	w.sctx.n = n
	return w
}

func (w *worker) loop() {
	for {
		cmd := w.ctl.Recv().(msgStartPhase)
		w.strm.SetEpoch(cmd.Epoch)
		w.committed, w.genSingle, w.genCross = 0, 0, 0
		scripted := cmd.ScriptTxns > 0
		switch {
		case cmd.Phase == Partitioned && scripted:
			w.runPartitionedScripted(cmd)
		case cmd.Phase == Partitioned:
			w.runPartitioned(cmd)
		case cmd.Phase == SingleMaster && w.n.id == cmd.Master && scripted:
			// Deterministic drain: worker 0 alone executes the deferred
			// requests serially; the other workers just report done.
			if w.idx == 0 {
				w.runMasterScripted(cmd)
			}
		case cmd.Phase == SingleMaster && w.n.id == cmd.Master:
			w.runSingleMaster(cmd)
		case scripted:
			// Scripted stand-by: the phase ends when the work is done,
			// not at a deadline — report immediately.
		default:
			// Standing by for replication (§4.3): the router applies the
			// master's stream; this worker just waits the phase out.
			if d := cmd.Deadline - w.n.e.cfg.RT.Now(); d > 0 {
				w.n.e.cfg.RT.Sleep(d)
			}
		}
		w.strm.Flush()
		if w.logger != nil {
			w.logger.Flush(false) // fence flush (§4.5.1)
		}
		w.n.e.net.Send(w.n.id, w.n.id, transport.Control, workerDoneMsg{
			Worker:    w.idx,
			Committed: w.committed,
			GenSingle: w.genSingle,
			GenCross:  w.genCross,
		})
	}
}

// ---- partitioned phase ----

func (w *worker) runPartitioned(cmd msgStartPhase) {
	r := w.n.e.cfg.RT
	parts := w.n.ownedPartitions(w.idx)
	if len(parts) == 0 {
		if d := cmd.Deadline - r.Now(); d > 0 {
			r.Sleep(d)
		}
		return
	}
	pi := 0
	tail := w.newTailFlusher(cmd.Deadline)
	for r.Now() < cmd.Deadline {
		if w.n.e.frozen.Load() {
			break
		}
		tail.maybeFlush(r.Now())
		home := parts[pi]
		pi = (pi + 1) % len(parts)
		w.req.ResetFor(w.gen.Mixed(home), int64(r.Now()))
		if w.req.Cross || txn.IsDeferred(w.req.Proc) {
			if w.snapshotServe(&w.req, cmd.Epoch) {
				// Served from the local fence snapshot: no master
				// routing, and no single-master phase needed for it.
				w.genSingle++
				continue
			}
			// Defer to the master node's queue (§4.1), one request per
			// message. Deliberately NOT batched: interleaved arrival
			// from many source workers is what keeps adjacent queue
			// entries conflict-independent — shipping runs of requests
			// from one generator makes the master's OCC workers execute
			// same-partition transactions back to back and the abort
			// rate explodes (measured: 4x aborts, -36% throughput on
			// paper-scale TPC-C at P=10). The request escapes this
			// worker, so it gets its own heap copy.
			w.genCross++
			w.n.e.net.Send(w.n.id, cmd.Master, transport.Data, msgDefer{Req: w.req.Clone()})
			r.Compute(w.n.e.cfg.Cost.TxnOverhead / 2)
			continue
		}
		w.genSingle++
		w.execSerial(&w.req, cmd.Epoch)
	}
}

// execSerial runs a single-partition transaction with no concurrency
// control (§4.1) and replicates its writes. The steady-state commit path
// (no insert) is allocation-free: the context, read/write set, request
// and replication buffers are all worker-owned scratch.
func (w *worker) execSerial(req *txn.Request, epoch uint64) {
	e := w.n.e
	r := e.cfg.RT
	w.set.Reset()
	w.lctx.reset()
	err := req.Proc.Run(&w.lctx)
	r.Compute(w.execCost(&w.lctx))
	if err != nil {
		// Single-partition transactions only abort for application
		// reasons (no concurrent access to the partition).
		e.userAborts.Inc()
		return
	}
	collectRows := !e.cfg.HybridRepl || w.logger != nil
	tidv, ok := occ.CommitSerial(w.n.db, &w.set, epoch, &w.tid, collectRows)
	if !ok {
		e.aborted.Inc()
		return
	}
	w.emitEntries(tidv, e.cfg.HybridRepl)
	if e.cfg.Logging {
		w.chargeTxnLog()
	}
	w.finishCommit(req, epoch)
}

// emitEntries streams the committed write set to the replica targets of
// each written partition. Entries are built on the stack and their
// payloads copied into the stream's arenas, so nothing here allocates;
// the target lists are precomputed per partition on the node and only
// rebuilt at fences when the failure set changes.
func (w *worker) emitEntries(tidv uint64, hybrid bool) {
	for i := range w.set.Writes {
		wr := &w.set.Writes[i]
		dsts := w.n.replTargets[wr.Part]
		if len(dsts) == 0 {
			continue
		}
		var ent replication.Entry
		if hybrid && !wr.Insert && !wr.Delete {
			ent = replication.Entry{Table: wr.Table, Part: int32(wr.Part), Key: wr.Key, TID: tidv, Ops: wr.Ops}
		} else {
			// Inserts and deletes have no delta form even in hybrid mode;
			// a delete ships as an absent value entry (empty row).
			ent = replication.Entry{Table: wr.Table, Part: int32(wr.Part), Key: wr.Key, TID: tidv, Row: wr.Row, Absent: wr.Delete}
		}
		for _, dst := range dsts {
			w.strm.Append(dst, ent)
		}
	}
}

// ---- single-master phase ----

func (w *worker) runSingleMaster(cmd msgStartPhase) {
	e := w.n.e
	r := e.cfg.RT
	nparts := e.cfg.NumPartitions()
	tail := w.newTailFlusher(cmd.Deadline)
	for r.Now() < cmd.Deadline {
		if e.frozen.Load() {
			break
		}
		tail.maybeFlush(r.Now())
		var req *txn.Request
		if v, ok := w.n.masterQ.TryRecv(); ok {
			req = v.(*txn.Request)
		} else {
			// Queue drained: generate fresh cross-partition work (§7.1:
			// workers generate and run transactions back to back).
			home := w.rng.Intn(nparts)
			req = txn.NewRequest(w.gen.Cross(home), int64(r.Now()))
			w.genCross++
		}
		if w.snapshotServe(req, cmd.Epoch) {
			continue // read-only: served from the fence snapshot, no OCC
		}
		w.execOCC(req, cmd)
	}
}

// execOCC runs one transaction to commit (retrying concurrency aborts)
// under the Silo-variant protocol of §4.2. The worker's context, set and
// stream scratch are reused across attempts.
func (w *worker) execOCC(req *txn.Request, cmd msgStartPhase) {
	e := w.n.e
	r := e.cfg.RT
	for {
		w.set.Reset()
		w.lctx.reset()
		err := req.Proc.Run(&w.lctx)
		// Yield for the modelled execution time BEFORE commit: the OCC
		// validation window is exposed to concurrent workers.
		r.Compute(w.execCost(&w.lctx))
		if err == txn.ErrUserAbort {
			e.userAborts.Inc()
			// Nothing committed: a ticketed client request answers
			// immediately — there is no fence to wait for.
			w.n.respondClient(req, ClientResp{Status: StatusAborted})
			return
		}
		if err == nil && !w.lctx.failed {
			if e.cfg.SyncRepl {
				if w.commitSync(req, cmd.Epoch) {
					return
				}
			} else {
				commit := occ.Commit
				if e.cfg.ReadCommitted {
					commit = occ.CommitReadCommitted
				}
				tidv, ok := commit(w.n.db, &w.set, cmd.Epoch, &w.tid, true)
				if ok {
					w.emitEntries(tidv, false)
					if e.cfg.Logging {
						w.chargeTxnLog()
					}
					w.finishCommit(req, cmd.Epoch)
					return
				}
			}
		}
		e.aborted.Inc()
		req.Retries++
		if r.Now() >= cmd.Deadline {
			// Phase over: requeue so the transaction is not lost.
			w.n.masterQ.Send(req)
			return
		}
	}
}

// ---- read-only snapshot path (Config.SnapshotReads) ----

// snapshotServe serves a routable request (cross-partition footprint or
// deferred-execution class) from the local fence snapshot when the
// snapshot path is enabled, the procedure is read-only, and this node
// holds every partition the footprint touches. Returns true when the
// request was consumed locally; false means the caller must route it to
// the master as usual.
func (w *worker) snapshotServe(req *txn.Request, epoch uint64) bool {
	e := w.n.e
	if !e.cfg.SnapshotReads || !txn.IsReadOnly(req.Proc) {
		return false
	}
	for _, p := range req.Parts {
		if !w.n.db.Holds(p) {
			e.snapFallback.Inc()
			return false
		}
	}
	w.execSnapshot(req, epoch)
	return true
}

// execSnapshot runs a read-only transaction against the node's last
// epoch fence: every read resolves to the pre-epoch version of records
// written in the in-flight epoch, which is the consistent cluster-wide
// snapshot the previous replication fence installed on every replica.
// No locks, no validation, no replication, no master routing — and no
// group-commit wait: the result releases immediately because it only
// exposes state that already group-committed at the fence.
func (w *worker) execSnapshot(req *txn.Request, epoch uint64) {
	e := w.n.e
	r := e.cfg.RT
	w.sctx.reset(epoch)
	err := req.Proc.Run(&w.sctx)
	r.Compute(e.cfg.Cost.TxnOverhead + time.Duration(w.sctx.reads)*e.cfg.Cost.Read)
	if w.sctx.wrote {
		panic("core: read-only transaction wrote on the snapshot path")
	}
	if err != nil {
		e.userAborts.Inc()
		w.n.respondClient(req, ClientResp{Status: StatusAborted})
		return
	}
	e.snapReads.Inc()
	e.committed.Inc()
	if h := req.Home; h >= 0 && h < len(e.partCommits) {
		e.partCommits[h].Inc()
	}
	w.committed++
	e.latency.Observe(time.Duration(int64(r.Now()) - req.GenAt))
	// Snapshot reads expose only fenced state, so the response releases
	// immediately; the token it establishes is the fence it observed.
	w.n.respondClient(req, ClientResp{
		Status: StatusOK, Token: epoch - 1, Reads: int64(w.sctx.reads),
	})
}

// commitSync implements SYNC STAR: locks are held while every replica
// acknowledges the writes (§6.1 & Fig 15a).
func (w *worker) commitSync(req *txn.Request, epoch uint64) bool {
	e := w.n.e
	if !occ.LockAndValidate(w.n.db, &w.set, epoch) {
		return false
	}
	tidv := w.tid.Next(epoch, w.set.MaxReadTID())
	occ.ApplyWrites(w.n.db, &w.set, epoch, tidv, true)

	entries := replication.ValueEntries(&w.set, tidv)
	perDst := map[int][]replication.Entry{}
	for i := range entries {
		for _, dst := range w.n.replTargets[int(entries[i].Part)] {
			perDst[dst] = append(perDst[dst], entries[i])
		}
	}
	w.seq++
	want := 0
	for dst, ents := range perDst {
		w.n.tracker.AddSent(dst, int64(len(ents)))
		e.net.Send(w.n.id, dst, transport.Replication, syncBatch{
			Batch:   &msgReplBatch{From: w.n.id, Epoch: epoch, Entries: ents},
			Worker:  w.idx,
			Seq:     w.seq,
			ReplyTo: w.n.id,
		})
		want++
	}
	for got := 0; got < want; {
		v, ok := w.resp.RecvTimeout(50 * time.Millisecond)
		if !ok {
			break // replica lost; the fence will sort it out
		}
		if a := v.(msgReplAck); a.Seq == w.seq {
			got++
		}
	}
	occ.ReleaseLocks(&w.set)
	if e.cfg.Logging {
		w.chargeTxnLog()
	}
	w.finishCommit(req, epoch)
	return true
}

func (w *worker) finishCommit(req *txn.Request, epoch uint64) {
	e := w.n.e
	e.committed.Inc()
	if h := req.Home; h >= 0 && h < len(e.partCommits) {
		e.partCommits[h].Inc()
	}
	w.committed++
	w.pendingLat = append(w.pendingLat, req.GenAt)
	if req.Ticket != 0 {
		// The response waits for the fence like the latency stamp does:
		// the router releases it at the next phase start, carrying the
		// commit epoch as the session's freshness token.
		w.pendingClient = append(w.pendingClient, clientDone{
			origin: req.Origin, ticket: req.Ticket, epoch: epoch,
		})
	}
}

// chargeTxnLog models logging the write set locally (§4.5.1) and, in
// LogDir mode, writes the whole-row entries to the worker's real log.
func (w *worker) chargeTxnLog() {
	bytes := 0
	for i := range w.set.Writes {
		bytes += 32 + len(w.set.Writes[i].Row)
	}
	w.n.chargeLog(bytes)
	if w.logger == nil {
		return
	}
	for i := range w.set.Writes {
		wr := &w.set.Writes[i]
		tid := storage.TIDClean(wr.Rec.TID())
		if wr.Delete {
			w.logger.AppendDelete(wr.Table, int32(wr.Part), wr.Key, tid)
		} else {
			w.logger.AppendWrite(wr.Table, int32(wr.Part), wr.Key, tid, false, wr.Row)
		}
	}
}

// tailFlusher implements fence-tail flushing: in the last moments of a
// phase (twice the network latency) the worker ships its buffered
// entries early — at most once per latency interval — so the replicas
// apply them while the phase is still running, and the fence drain waits
// only for the final transactions' writes instead of a full
// threshold-sized envelope's wire and apply time. The throttle keeps the
// tail to a handful of small envelopes per stream instead of one per
// commit.
type tailFlusher struct {
	w        *worker
	after    time.Duration // start of the tail window
	interval time.Duration // min spacing between tail flushes
	last     time.Duration
}

func (w *worker) newTailFlusher(deadline time.Duration) tailFlusher {
	lat := w.n.e.cfg.Net.Latency
	return tailFlusher{w: w, after: deadline - 2*lat, interval: lat}
}

func (t *tailFlusher) maybeFlush(now time.Duration) {
	if now >= t.after && now-t.last >= t.interval {
		t.w.strm.Flush()
		t.last = now
	}
}

func (w *worker) execCost(ctx *localCtx) time.Duration {
	c := w.n.e.cfg.Cost
	return c.TxnOverhead +
		time.Duration(ctx.reads)*c.Read +
		time.Duration(ctx.writes)*c.Write
}

// ---- transaction contexts ----

// localCtx executes against the local database with no validation —
// partitioned-phase execution (reads are still tracked so the TID rules
// see them). It is embedded in its worker and reset per transaction; row
// copies are appended to its arena, so steady-state reads allocate
// nothing and the values stay stable for the rest of the transaction
// even as the arena grows.
type localCtx struct {
	w      *worker
	reads  int
	writes int
	failed bool
	arena  []byte
}

func (c *localCtx) reset() {
	c.reads, c.writes, c.failed = 0, 0, false
	c.arena = c.arena[:0]
}

func (c *localCtx) Read(t storage.TableID, part int, key storage.Key) ([]byte, bool) {
	c.reads++
	w := c.w
	tbl := w.n.db.Table(t)
	if tbl.Replicated() {
		rec := tbl.Get(part, key)
		if rec == nil {
			return nil, false
		}
		var val []byte
		var present bool
		c.arena, val, _, present = rec.ReadStableAppend(c.arena)
		return val, present
	}
	rec := tbl.Get(part, key)
	if rec == nil {
		c.failed = true
		return nil, false
	}
	var val []byte
	var tid uint64
	var present bool
	c.arena, val, tid, present = rec.ReadStableAppend(c.arena)
	if !present {
		c.failed = true
		return nil, false
	}
	w.set.AddRead(t, part, key, rec, tid)
	return val, true
}

func (c *localCtx) Write(t storage.TableID, part int, key storage.Key, ops ...storage.FieldOp) {
	c.writes++
	c.w.set.AddWrite(t, part, key, ops...)
}

func (c *localCtx) Insert(t storage.TableID, part int, key storage.Key, row []byte) {
	c.writes++
	c.w.set.AddInsert(t, part, key, row)
}

func (c *localCtx) Delete(t storage.TableID, part int, key storage.Key) {
	c.writes++
	c.w.set.AddDelete(t, part, key)
}

// LookupIndex resolves a secondary-index lookup against current state.
// Index entries are immutable for the workloads' lookup targets
// (customer names, order→customer bindings change only by insert), so
// no read-set entry is collected; the record reads that follow are
// validated as usual.
func (c *localCtx) LookupIndex(t storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key {
	c.reads++
	return c.w.n.db.Table(t).IndexLookup(part, idx, val, storage.IndexAllEpochs, dst)
}

// LookupIndexTail implements txn.IndexTailReader: bounded newest-first.
func (c *localCtx) LookupIndexTail(t storage.TableID, part, idx int, val []byte, max int, dst []storage.Key) []storage.Key {
	c.reads++
	return c.w.n.db.Table(t).IndexLookupTail(part, idx, val, storage.IndexAllEpochs, max, dst)
}

// snapshotCtx executes read-only transactions against the node's last
// epoch fence via Record.ReadStableAtFenceAppend: records written in
// the in-flight epoch yield their pre-epoch (revert-snapshot) version,
// so the transaction observes exactly the database as of the last phase
// switch. No read set is collected — the snapshot is immutable, so
// there is nothing to validate — and writes are forbidden. Absent reads
// (e.g. a row first inserted in the in-flight epoch) report !ok without
// failing the transaction: read-only procedures skip what the snapshot
// does not yet contain.
type snapshotCtx struct {
	n     *node
	epoch uint64
	reads int
	wrote bool
	arena []byte
}

func (c *snapshotCtx) reset(epoch uint64) {
	c.epoch = epoch
	c.reads = 0
	c.wrote = false
	c.arena = c.arena[:0]
}

func (c *snapshotCtx) Read(t storage.TableID, part int, key storage.Key) ([]byte, bool) {
	c.reads++
	rec := c.n.db.Table(t).Get(part, key)
	if rec == nil {
		return nil, false
	}
	var val []byte
	var present bool
	c.arena, val, _, present = rec.ReadStableAtFenceAppend(c.arena, c.epoch)
	if !present {
		return nil, false
	}
	return val, true
}

// LookupIndex resolves a secondary-index lookup at the last epoch fence:
// entries inserted in the in-flight epoch stay hidden, mirroring the
// fence-pinned row reads, so index-driven navigation (Order-Status's
// customer-by-name and last-order lookups) observes the same consistent
// snapshot as the rows it leads to.
func (c *snapshotCtx) LookupIndex(t storage.TableID, part, idx int, val []byte, dst []storage.Key) []storage.Key {
	c.reads++
	return c.n.db.Table(t).IndexLookup(part, idx, val, c.epoch, dst)
}

// LookupIndexTail implements txn.IndexTailReader at the fence epoch.
func (c *snapshotCtx) LookupIndexTail(t storage.TableID, part, idx int, val []byte, max int, dst []storage.Key) []storage.Key {
	c.reads++
	return c.n.db.Table(t).IndexLookupTail(part, idx, val, c.epoch, max, dst)
}

func (c *snapshotCtx) Write(storage.TableID, int, storage.Key, ...storage.FieldOp) {
	c.wrote = true
}

func (c *snapshotCtx) Insert(storage.TableID, int, storage.Key, []byte) {
	c.wrote = true
}

func (c *snapshotCtx) Delete(storage.TableID, int, storage.Key) {
	c.wrote = true
}
