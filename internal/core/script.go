package core

import (
	"fmt"
	"sort"
	"time"

	"star/internal/rt"
	"star/internal/transport"
	"star/internal/txn"
)

// Script describes a deterministic bounded run: instead of time-driven
// phase switching, the cluster executes exactly one partitioned phase
// (every owned partition runs TxnsPerPartition generator steps, single-
// partition transactions serially, cross-partition ones deferred) and
// one single-master phase (worker 0 of the master drains exactly the
// deferred requests in a deterministic order), each closed by a
// replication fence. The result — committed count and per-partition
// checksums — is a pure function of the configuration and seed,
// independent of runtime (simulated or wall-clock) and transport
// (simnet or tcpnet): that is the equivalence the loopback TCP
// integration tests pin.
type Script struct {
	// TxnsPerPartition is the generator-step count per owned partition
	// in the partitioned phase. The deferred cross-partition subset must
	// stay below the master queue's capacity (65536).
	TxnsPerPartition int
}

// NodeChecksums is one node's post-fence partition checksums, aligned
// with Parts (ascending).
type NodeChecksums struct {
	Node  int      `json:"node"`
	Parts []int32  `json:"parts"`
	Sums  []uint64 `json:"sums"`
}

// ScriptResult is a scripted run's outcome.
type ScriptResult struct {
	// Committed counts transactions committed cluster-wide across both
	// phases.
	Committed int64 `json:"committed"`
	// Checksums holds every node's partition checksums, sorted by node.
	Checksums []NodeChecksums `json:"checksums"`
	// Err reports a failed run ("" on success).
	Err string `json:"err,omitempty"`
}

// ScriptRun is a scripted run in progress.
type ScriptRun struct {
	// E is the underlying engine (local nodes only on multi-process
	// clusters).
	E    *Engine
	done chan ScriptResult
}

// Done yields the result exactly once. On the coordinator process it is
// the cluster result; node-only processes yield a zero result when the
// coordinator's halt arrives (their part of the run is complete).
func (r *ScriptRun) Done() <-chan ScriptResult { return r.done }

// scriptDeadline is far enough in the future that scripted workers and
// the OCC retry loop never observe a phase end.
const scriptDeadline = time.Duration(1) << 60

// StartScripted builds the cluster (honouring Transport/LocalNodes) and
// starts the scripted run. On the simulated runtime the caller drives
// rt.Sim.Run until Done yields; on the real runtime Done can simply be
// received from.
func StartScripted(cfg Config, sc Script) *ScriptRun {
	if sc.TxnsPerPartition <= 0 {
		// ScriptTxns > 0 is the workers' "scripted" marker; zero would
		// silently fall back to deadline-driven phases with a ~36-year
		// deadline.
		panic("core: Script.TxnsPerPartition must be positive")
	}
	e := build(cfg)
	e.scripted = true
	e.start()
	run := &ScriptRun{E: e, done: make(chan ScriptResult, 1)}
	if e.coord != nil {
		cfg.RT.Go("star-script-coordinator", func() {
			run.done <- e.scriptLoop(sc)
		})
		return run
	}
	// Node-only process: wait for the coordinator's halt.
	cfg.RT.Go("star-script-wait", func() {
		e.haltCh.Recv()
		run.done <- ScriptResult{}
	})
	return run
}

// scriptGather pumps the coordinator inbox until pred is satisfied or
// the timeout expires.
func scriptGather(r rt.Runtime, in rt.Chan, timeout time.Duration, take func(any) bool) bool {
	deadline := r.Now() + timeout
	for {
		if take(nil) {
			return true
		}
		d := deadline - r.Now()
		if d <= 0 {
			return false
		}
		m, ok := in.RecvTimeout(d)
		if !ok {
			return take(nil)
		}
		if take(m) {
			return true
		}
	}
}

// scriptTimeout bounds each cluster-wide step of a scripted run. Real
// multi-process runs include dial warm-up and real execution; virtual
// runs burn it only on actual failure.
const scriptTimeout = 5 * time.Minute

// scriptLoop drives the scripted run from the coordinator endpoint.
func (e *Engine) scriptLoop(sc Script) ScriptResult {
	r := e.cfg.RT
	coord := e.cfg.coordID()
	in := e.net.Inbox(coord)
	nodes := e.cfg.Nodes
	fail := func(format string, args ...any) ScriptResult {
		res := ScriptResult{Err: fmt.Sprintf(format, args...)}
		e.broadcastScript(msgHalt{})
		return res
	}

	runPhase := func(cmd msgStartPhase) (map[int]msgPhaseDone, bool) {
		e.broadcastScript(cmd)
		done := map[int]msgPhaseDone{}
		ok := scriptGather(r, in, scriptTimeout, func(m any) bool {
			if pd, isDone := m.(msgPhaseDone); isDone && pd.Epoch == cmd.Epoch {
				done[pd.Node] = pd
			}
			return len(done) == nodes
		})
		if !ok {
			return done, false
		}
		// Replication fence (§4.3): every node drains what the others
		// sent before the epoch closes.
		for i := 0; i < nodes; i++ {
			expected := make([]int64, nodes)
			for src, pd := range done {
				expected[src] = pd.Sent[i]
			}
			e.net.Send(coord, i, transport.Control, msgFenceDrain{Epoch: cmd.Epoch, Expected: expected})
		}
		acks := map[int]bool{}
		ok = scriptGather(r, in, scriptTimeout, func(m any) bool {
			if a, isAck := m.(msgFenceAck); isAck && a.Epoch == cmd.Epoch {
				acks[a.Node] = true
			}
			return len(acks) == nodes
		})
		return done, ok
	}

	// Phase 1: partitioned, bounded by generator steps.
	done1, ok := runPhase(msgStartPhase{
		Phase: Partitioned, Epoch: 2, Deadline: scriptDeadline, Master: 0,
		ScriptTxns: sc.TxnsPerPartition,
	})
	if !ok {
		return fail("scripted partitioned phase incomplete: %d/%d nodes", len(done1), nodes)
	}
	var committed, deferred int64
	for _, pd := range done1 {
		committed += pd.Committed
		deferred += pd.GenCross
	}

	// Phase 2: single-master, draining exactly the deferred requests.
	done2, ok := runPhase(msgStartPhase{
		Phase: SingleMaster, Epoch: 3, Deadline: scriptDeadline, Master: 0,
		ScriptTxns: sc.TxnsPerPartition, ScriptDeferred: deferred,
	})
	if !ok {
		return fail("scripted single-master phase incomplete: %d/%d nodes", len(done2), nodes)
	}
	for _, pd := range done2 {
		committed += pd.Committed
	}

	// Post-fence checksums: the replicas are quiesced and must agree.
	// Served through the unified admin envelope (Node -1 = yourself).
	e.broadcastScript(AdminReq{V: AdminProtoVersion, Op: AdminChecksums, From: coord, Node: -1})
	sums := map[int]AdminResp{}
	ok = scriptGather(r, in, scriptTimeout, func(m any) bool {
		if cs, isCS := m.(AdminResp); isCS && cs.Op == AdminChecksums {
			sums[cs.Node] = cs
		}
		return len(sums) == nodes
	})
	if !ok {
		return fail("checksum gather incomplete: %d/%d nodes", len(sums), nodes)
	}
	e.broadcastScript(msgHalt{})

	res := ScriptResult{Committed: committed}
	for i := 0; i < nodes; i++ {
		cs := sums[i]
		res.Checksums = append(res.Checksums, NodeChecksums{Node: i, Parts: cs.Parts, Sums: cs.Sums})
	}
	return res
}

func (e *Engine) broadcastScript(m transport.Message) {
	coord := e.cfg.coordID()
	for i := 0; i < e.cfg.Nodes; i++ {
		e.net.Send(coord, i, transport.Control, m)
	}
}

// faultInjector is implemented by fault-injecting transport decorators
// (internal/faultnet.Network): serveAdmin's AdminFaultStats surfaces
// its counters over the admin protocol without core importing the
// injector package.
type faultInjector interface{ Injected() map[string]int64 }

// ---- worker side ----

// scriptStamp derives the deterministic total-order stamp scripted
// requests carry in GenAt: unique across (step, node, worker) and
// identical across runtimes, so the master can sort its deferred queue
// into a reproducible execution order.
func scriptStamp(seq int64, node, worker int) int64 {
	return seq<<20 | int64(node)<<10 | int64(worker)
}

// runPartitionedScripted is the deterministic variant of
// runPartitioned: exactly ScriptTxns generator steps per owned
// partition, no deadline, no freeze checks, no tail flushing.
func (w *worker) runPartitionedScripted(cmd msgStartPhase) {
	r := w.n.e.cfg.RT
	parts := w.n.ownedPartitions(w.idx)
	if len(parts) == 0 {
		return
	}
	seq := int64(0)
	for step := 0; step < cmd.ScriptTxns; step++ {
		for _, home := range parts {
			seq++
			w.req.ResetFor(w.gen.Mixed(home), scriptStamp(seq, w.n.id, w.idx))
			if w.req.Cross || txn.IsDeferred(w.req.Proc) {
				if w.snapshotServe(&w.req, cmd.Epoch) {
					w.genSingle++ // served locally; not part of the master drain
					continue
				}
				w.genCross++
				w.n.e.net.Send(w.n.id, cmd.Master, transport.Data, msgDefer{Req: w.req.Clone()})
				r.Compute(w.n.e.cfg.Cost.TxnOverhead / 2)
				continue
			}
			w.genSingle++
			w.execSerial(&w.req, cmd.Epoch)
		}
	}
}

// runMasterScripted drains exactly the deferred requests (blocking on
// the queue until the routed messages arrive) and executes them
// serially in stamp order — with one worker and no concurrency the
// outcome is deterministic.
func (w *worker) runMasterScripted(cmd msgStartPhase) {
	reqs := make([]*txn.Request, 0, cmd.ScriptDeferred)
	for int64(len(reqs)) < cmd.ScriptDeferred {
		reqs = append(reqs, w.n.masterQ.Recv().(*txn.Request))
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].GenAt < reqs[j].GenAt })
	for _, req := range reqs {
		// Read-only requests deferred by a node that did not hold their
		// footprint are served from the master's fence snapshot — the
		// master holds everything, so this never falls through.
		if w.snapshotServe(req, cmd.Epoch) {
			continue
		}
		w.execOCC(req, cmd)
	}
}
