package core

import (
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/storage"
	"star/internal/workload/tpcc"
	"star/internal/workload/ycsb"
)

func ycsbCluster(t *testing.T, s *rt.Sim, nodes, workers, crossPct int, mod func(*Config)) *Engine {
	t.Helper()
	wl := ycsb.New(ycsb.Config{
		Partitions:          nodes * workers,
		RecordsPerPartition: 256,
		CrossPct:            crossPct,
	})
	cfg := Config{
		RT:             s,
		Nodes:          nodes,
		WorkersPerNode: workers,
		Workload:       wl,
		Iteration:      2 * time.Millisecond,
		Seed:           1,
	}
	if mod != nil {
		mod(&cfg)
	}
	return New(cfg)
}

func settle(s *rt.Sim, e *Engine, extra time.Duration) {
	e.Freeze()
	s.Run(s.Now() + extra)
}

func TestSTARCommitsAndAlternatesPhases(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, nil)
	s.Run(60 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if st.Extra["deferred"] == 0 {
		t.Fatal("no cross-partition transactions were deferred to the master")
	}
	if st.Extra["tau_p_ms"] <= 0 || st.Extra["tau_s_ms"] <= 0 {
		t.Fatalf("phase tuning degenerate: τp=%.2f τs=%.2f", st.Extra["tau_p_ms"], st.Extra["tau_s_ms"])
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestSTARPureSinglePartitionSkipsSingleMaster(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 3, 2, 0, nil)
	s.Run(50 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	// Equations (1)-(2): P=0 → τp=e, τs=0.
	if st.Extra["tau_s_ms"] != 0 {
		t.Fatalf("τs=%.3fms, want 0 at P=0", st.Extra["tau_s_ms"])
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestSTARAllCrossBehavesLikeNonPartitioned(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 3, 2, 100, nil)
	s.Run(60 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	// P=1 → τp≈0: virtually all time in the single-master phase.
	if st.Extra["tau_p_ms"] > 0.3 {
		t.Fatalf("τp=%.3fms, want ≈0 at P=100", st.Extra["tau_p_ms"])
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestSTARGroupCommitLatency(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, func(c *Config) { c.Iteration = 4 * time.Millisecond })
	s.Run(100 * time.Millisecond)
	st := e.Stats()
	if st.Latency.Count() == 0 {
		t.Fatal("no latency samples: results were never released")
	}
	p50 := st.Latency.Quantile(0.5)
	// Mean latency should be on the order of the iteration time
	// ((τp+τs)/2 plus fence time, §4.3) — not microseconds, not seconds.
	if p50 < 500*time.Microsecond || p50 > 40*time.Millisecond {
		t.Fatalf("p50 latency %v implausible for 4ms iteration", p50)
	}
	s.Stop()
}

func TestSTARTPCCConsistencyInvariants(t *testing.T) {
	s := rt.NewSim()
	wl := tpcc.New(tpcc.Config{
		Warehouses:           6,
		Districts:            2,
		CustomersPerDistrict: 32,
		Items:                64,
	})
	e := New(Config{
		RT:             s,
		Nodes:          3,
		WorkersPerNode: 2,
		Workload:       wl,
		Iteration:      2 * time.Millisecond,
		Seed:           7,
	})
	s.Run(50 * time.Millisecond)
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	// TPC-C invariant on the full replica: every district's d_next_o_id-1
	// equals its number of orders, and order lines exist per order.
	db := e.Node(0).db
	cfg := wl.Config()
	orders := 0
	for wid := 0; wid < cfg.Warehouses; wid++ {
		for did := 0; did < cfg.Districts; did++ {
			drow, _, ok := db.Table(tpcc.TDistrict).Get(wid, tpcc.DKey(wid, did)).ReadStable(nil)
			if !ok {
				t.Fatal("district missing")
			}
			nextOID := wl.Config().Districts // schema access below
			_ = nextOID
			next := int(dGet(wl, drow))
			for oid := 1; oid < next; oid++ {
				rec := db.Table(tpcc.TOrder).Get(wid, tpcc.OKey(wid, did, oid))
				if rec == nil {
					t.Fatalf("order w%d d%d o%d missing but d_next_o_id=%d", wid, did, oid, next)
				}
				if _, _, present := rec.ReadStable(nil); !present {
					t.Fatalf("order w%d d%d o%d is a tombstone but d_next_o_id=%d", wid, did, oid, next)
				}
				orders++
			}
			// No live orders beyond the counter (absent placeholders from
			// aborted inserts are fine).
			if rec := db.Table(tpcc.TOrder).Get(wid, tpcc.OKey(wid, did, next)); rec != nil {
				if _, _, present := rec.ReadStable(nil); present {
					t.Fatalf("order beyond d_next_o_id at w%d d%d", wid, did)
				}
			}
		}
	}
	if orders == 0 {
		t.Fatal("no orders inserted")
	}
	s.Stop()
}

// dGet reads d_next_o_id through the workload schema.
func dGet(wl *tpcc.Workload, drow []byte) uint64 {
	db := wl.BuildDB(wl.Config().Warehouses, make([]bool, wl.Config().Warehouses))
	return db.Table(tpcc.TDistrict).Schema().GetUint64(drow, tpcc.DNextOID)
}

func TestSTARSyncReplicationStillConsistent(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 3, 2, 30, func(c *Config) { c.SyncRepl = true })
	s.Run(40 * time.Millisecond)
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits under SYNC STAR")
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestSTARHybridReplicationConsistentAndCheaper(t *testing.T) {
	run := func(hybrid bool) (int64, error) {
		s := rt.NewSim()
		wl := tpcc.New(tpcc.Config{
			Warehouses:           4,
			Districts:            2,
			CustomersPerDistrict: 32,
			Items:                64,
		})
		e := New(Config{
			RT:             s,
			Nodes:          2,
			WorkersPerNode: 2,
			Workload:       wl,
			Iteration:      2 * time.Millisecond,
			HybridRepl:     hybrid,
			Seed:           3,
		})
		s.Run(40 * time.Millisecond)
		settle(s, e, 20*time.Millisecond)
		err := e.CheckReplicaConsistency()
		st := e.Stats()
		s.Stop()
		if st.Committed == 0 {
			t.Fatal("no commits")
		}
		bytesPerTxn := st.ReplicationBytes / st.Committed
		return bytesPerTxn, err
	}
	valueBytes, err := run(false)
	if err != nil {
		t.Fatalf("value replication inconsistent: %v", err)
	}
	hybridBytes, err := run(true)
	if err != nil {
		t.Fatalf("hybrid replication inconsistent: %v", err)
	}
	// Overall savings are diluted by NewOrder's inserts (order lines ship
	// as values either way); the order-of-magnitude §5 claim concerns the
	// Payment record and is asserted at the entry level in the
	// replication package. Cluster-wide, hybrid must still clearly win.
	if hybridBytes*13 > valueBytes*10 {
		t.Fatalf("hybrid %dB/txn not ≥1.3x cheaper than value %dB/txn (paper §5)", hybridBytes, valueBytes)
	}
}

func TestSTARFailPartialNodeRemastersAndContinues(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, nil)
	s.Run(20 * time.Millisecond)
	before := e.Stats().Committed
	if before == 0 {
		t.Fatal("no commits before failure")
	}
	e.FailNode(3) // a partial replica: case 1/3 — re-master onto survivors
	s.Run(s.Now() + 120*time.Millisecond)
	if halted, reason := e.Halted(); halted {
		t.Fatalf("cluster halted after partial failure: %s", reason)
	}
	after := e.Stats().Committed
	if after <= before {
		t.Fatalf("no progress after failure: %d -> %d", before, after)
	}
	settle(s, e, 30*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestSTARFullReplicaFailureIsCase2(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, nil)
	s.Run(20 * time.Millisecond)
	e.FailNode(0) // the only full replica
	s.Run(s.Now() + 150*time.Millisecond)
	halted, reason := e.Halted()
	if !halted {
		t.Fatal("case 2 must stop the phase-switching engine")
	}
	if reason == "" {
		t.Fatal("halt reason missing")
	}
	s.Stop()
}

func TestSTARSecondFullReplicaTakesOver(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 20, func(c *Config) { c.FullReplicas = 2 })
	s.Run(20 * time.Millisecond)
	e.FailNode(0)
	s.Run(s.Now() + 150*time.Millisecond)
	if halted, reason := e.Halted(); halted {
		t.Fatalf("with f=2 the second full replica must take over: %s", reason)
	}
	before := e.Stats().Committed
	s.Run(s.Now() + 40*time.Millisecond)
	if e.Stats().Committed <= before {
		t.Fatal("no progress under the failover master")
	}
	settle(s, e, 30*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestSTARCase4HaltsWhenPartitionLosesAllReplicas(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, nil)
	s.Run(20 * time.Millisecond)
	// Partitions mastered by node 1 live on nodes {0,1}: failing both
	// loses every copy → loss of availability (case 4).
	e.FailNode(0)
	e.FailNode(1)
	s.Run(s.Now() + 200*time.Millisecond)
	halted, _ := e.Halted()
	if !halted {
		t.Fatal("case 4 must halt the cluster")
	}
	s.Stop()
}

func TestSTARNodeRejoinCatchesUp(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, nil)
	s.Run(20 * time.Millisecond)
	e.FailNode(2)
	s.Run(s.Now() + 100*time.Millisecond)
	if halted, reason := e.Halted(); halted {
		t.Fatalf("halted: %s", reason)
	}
	midway := e.Stats().Committed
	e.RecoverNode(2)
	s.Run(s.Now() + 150*time.Millisecond)
	if e.Stats().Committed <= midway {
		t.Fatal("no progress after rejoin")
	}
	settle(s, e, 40*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatalf("rejoined replica diverged: %v", err)
	}
	s.Stop()
}

func TestSTARRealRuntimeSmoke(t *testing.T) {
	r := rt.NewReal()
	wl := ycsb.New(ycsb.Config{Partitions: 4, RecordsPerPartition: 128, CrossPct: 20})
	e := New(Config{
		RT:             r,
		Nodes:          2,
		WorkersPerNode: 2,
		Workload:       wl,
		Iteration:      5 * time.Millisecond,
		Seed:           2,
	})
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Committed == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := e.Stats()
	r.Stop()
	if st.Committed == 0 {
		t.Fatal("no commits on the real runtime")
	}
}

func TestTopologyHelpers(t *testing.T) {
	cfg := Config{Nodes: 4, WorkersPerNode: 3, FullReplicas: 1}
	cfg = cfg.withDefaults()
	if cfg.NumPartitions() != 12 {
		t.Fatal("partitions")
	}
	if cfg.MasterOf(0) != 0 || cfg.MasterOf(11) != 3 {
		t.Fatal("master mapping")
	}
	// Partitions mastered by the full replica need a partial secondary.
	for p := 0; p < 3; p++ {
		s := cfg.SecondaryOf(p)
		if s < 1 || s > 3 {
			t.Fatalf("secondary of %d = %d", p, s)
		}
	}
	// Partitions mastered by partials are already on the full replica.
	if cfg.SecondaryOf(5) != -1 {
		t.Fatal("unexpected secondary")
	}
	// Every partition must have ≥2 holders (f+1 copies, §3).
	for p := 0; p < 12; p++ {
		if len(cfg.HoldersOf(p)) < 2 {
			t.Fatalf("partition %d under-replicated", p)
		}
	}
	// The partials together hold a complete copy (paper Fig 2).
	covered := make([]bool, 12)
	for n := 1; n < 4; n++ {
		for p, h := range cfg.HoldsMask(n) {
			if h {
				covered[p] = true
			}
		}
	}
	for p, c := range covered {
		if !c {
			t.Fatalf("partition %d missing from the partial replicas", p)
		}
	}
	var nilRec *storage.Record
	_ = nilRec
}
