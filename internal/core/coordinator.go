package core

import (
	"fmt"
	"sync"
	"time"

	"star/internal/rt"
	"star/internal/transport"
)

// msgUpdateMasters installs a new partition→master map outside of a
// revert (used when a recovered node takes its partitions back).
type msgUpdateMasters struct{ Masters []int32 }

func (m msgUpdateMasters) Size() int { return 8 + 4*len(m.Masters) }

// coordinator drives the phase-switching algorithm (§4.3, Fig 5): start
// a phase, wait it out, run the replication fence, commit the epoch,
// recompute τp/τs from the monitored throughputs, repeat. It also serves
// as the view service for failure detection (§4.5.2).
type coordinator struct {
	e       *Engine
	alive   []bool
	masters []int32
	epoch   uint64
	phase   Phase
	master  int

	// Monitored quantities (EWMA).
	tp, ts, pEst float64

	// minGrace floors the failure-detection grace per gather: tight on
	// the simulated runtime (virtual time is deterministic), generous on
	// the real one (an OS process can lose tens of milliseconds to GC or
	// scheduling without being dead). graceBoost is a one-shot extension
	// consumed by the phase right after a rejoin: the rejoined process
	// has just applied a full snapshot catch-up and may need a moment.
	minGrace   time.Duration
	graceBoost time.Duration

	// recoveryGrace bounds the wait for a rejoining node's snapshot
	// catch-up. Like minGrace it is runtime-dependent: generous on the
	// real runtime (bandwidth-paced transfer of a real database), tight
	// on the simulated one — virtual seconds are cheap to model but cost
	// real event-loop work, and a rejoin wedged by an injected fault
	// should release the coordinator quickly so the rejoin can be
	// re-requested.
	recoveryGrace time.Duration

	// ackRetried marks that the current epoch's fence already failed
	// once and was reverted for retry (see the ack-gather failure path).
	ackRetried bool

	// pendingAdmin stashes membership envelopes that arrived mid-gather:
	// the inbox gathers discard non-matching messages, so AdminReqs are
	// parked here and processed at the next committed fence.
	pendingAdmin []AdminReq

	// Per-iteration accumulators.
	iterCommitP, iterCommitS int64
	iterGenSingle, iterGenX  int64

	// statMu guards the fields below, which Engine.Stats reads from
	// other goroutines on the real runtime.
	statMu             sync.Mutex
	lastTauP, lastTauS time.Duration
	fenceTime          time.Duration
	startTime          time.Duration
	// backlog is the cluster's master-queue depth at the last phase
	// report. Client sessions submit out of band of the workload
	// generators, so a purely single-partition generated load tunes τs
	// to zero while forwarded client writes pile up at the master; a
	// non-zero backlog forces a drain slice regardless of the tuning.
	backlog int64
}

func newCoordinator(e *Engine) *coordinator {
	topo := e.topo.Load()
	c := &coordinator{
		e:       e,
		alive:   make([]bool, e.cfg.Nodes),
		masters: append([]int32(nil), topo.Masters...),
		epoch:   2, // epoch 1 is the initial load
		phase:   Partitioned,
		master:  firstFullMember(topo),
	}
	for i := range c.alive {
		c.alive[i] = topo.IsMember(i)
	}
	c.lastTauP = e.cfg.Iteration / 2
	c.lastTauS = e.cfg.Iteration / 2
	c.minGrace = 20 * time.Millisecond
	c.recoveryGrace = 2 * time.Second
	if _, isSim := e.cfg.RT.(*rt.Sim); !isSim {
		c.minGrace = 250 * time.Millisecond
		c.recoveryGrace = 30 * time.Second
	}
	return c
}

func (c *coordinator) id() int { return c.e.cfg.coordID() }

func (c *coordinator) failedList() []int {
	// Failed = a member that stopped answering. Dark slots (capacity not
	// yet joined) and drained slots are not failures.
	topo := c.e.topo.Load()
	var f []int
	for i, a := range c.alive {
		if topo.IsMember(i) && !a {
			f = append(f, i)
		}
	}
	return f
}

func (c *coordinator) broadcast(m transport.Message) {
	for i, a := range c.alive {
		if a {
			c.e.net.Send(c.id(), i, transport.Control, m)
		}
	}
}

func (c *coordinator) fenceShare() float64 {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	total := c.e.cfg.RT.Now() - c.startTime
	if total <= 0 {
		return 0
	}
	return float64(c.fenceTime) / float64(total)
}

// taus returns the current phase durations for Stats.
func (c *coordinator) taus() (tauP, tauS time.Duration) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.lastTauP, c.lastTauS
}

func (c *coordinator) curTau(phase Phase) time.Duration {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	if phase == SingleMaster {
		if c.lastTauS <= 0 && c.backlog > 0 {
			// Backlog-forced drain slice: τs is tuned to zero (no
			// cross-partition work in the generated load), but forwarded
			// client requests are waiting at the master.
			return c.e.cfg.Iteration / 50
		}
		return c.lastTauS
	}
	return c.lastTauP
}

func (c *coordinator) setBacklog(q int64) {
	c.statMu.Lock()
	c.backlog = q
	c.statMu.Unlock()
}

func (c *coordinator) queuedBacklog() int64 {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.backlog
}

func (c *coordinator) setTaus(tauP, tauS time.Duration) {
	c.statMu.Lock()
	c.lastTauP, c.lastTauS = tauP, tauS
	c.statMu.Unlock()
}

func (c *coordinator) addFenceTime(d time.Duration) {
	c.statMu.Lock()
	c.fenceTime += d
	c.statMu.Unlock()
}

func (c *coordinator) loop() {
	r := c.e.cfg.RT
	c.statMu.Lock()
	c.startTime = r.Now()
	c.statMu.Unlock()
	for {
		if c.e.halted.Load() {
			r.Sleep(10 * time.Millisecond)
			continue
		}
		tau := c.curTau(c.phase)
		if tau <= 0 {
			c.advancePhase()
			continue
		}
		c.runPhase(tau)
	}
}

// runPhase executes one phase plus its replication fence.
func (c *coordinator) runPhase(tau time.Duration) {
	r := c.e.cfg.RT
	prop := 2 * c.e.cfg.Net.Latency // command propagation allowance
	budget := prop + tau
	deadline := r.Now() + budget
	// The phase end crosses process boundaries as a BUDGET relative to
	// the command's receipt, not an absolute timestamp: each process's
	// runtime has its own clock origin (a restarted node's clock starts
	// near zero), so an absolute coordinator-clock deadline would make a
	// rejoined process sleep out the clock skew and miss every phase.
	// Each node's ROUTER localises it on receipt (node.startPhase).
	c.broadcast(msgStartPhase{
		Phase:    c.phase,
		Epoch:    c.epoch,
		Deadline: budget,
		Master:   c.master,
		Failed:   c.failedList(),
	})
	grace := 10*tau + c.minGrace + c.graceBoost
	c.graceBoost = 0

	// Phase execution: gather per-node sent vectors and monitors.
	done := map[int]msgPhaseDone{}
	if !c.gather(deadline-r.Now()+grace, func(m any) bool {
		if pd, ok := m.(msgPhaseDone); ok && pd.Epoch == c.epoch && c.alive[pd.Node] {
			done[pd.Node] = pd
		}
		return len(done) == c.aliveCount()
	}) {
		// A failure detected at the phase gather is properly attributed:
		// renew the fence's one-shot retry budget (a prior fence stall
		// may have consumed it to funnel detection here).
		c.ackRetried = false
		c.onFailure(missingFrom(done, c.alive))
		return
	}
	fenceStart := r.Now()

	// Replication fence: every node drains what the others sent (§4.3).
	for i, a := range c.alive {
		if !a {
			continue
		}
		expected := make([]int64, c.e.cfg.Nodes)
		for src, pd := range done {
			expected[src] = pd.Sent[i]
		}
		c.e.net.Send(c.id(), i, transport.Control, msgFenceDrain{Epoch: c.epoch, Expected: expected})
	}
	acks := map[int]bool{}
	if !c.gather(grace, func(m any) bool {
		if a, ok := m.(msgFenceAck); ok && a.Epoch == c.epoch && c.alive[a.Node] {
			acks[a.Node] = true
		}
		return len(acks) == c.aliveCount()
	}) {
		if !c.ackRetried {
			// A fence that cannot drain usually means a peer died AFTER
			// its phase report: its counted-but-in-flight entries are
			// gone, and every survivor waiting for them misses the ack
			// too — failing the non-ackers here would blame the stuck
			// (alive) nodes and can even halt the cluster as "no full
			// replica left". Revert and retry the epoch once instead:
			// the revert aborts the survivors' drains, and a genuinely
			// dead node then misses the next PHASE gather, which
			// attributes the failure to the right node.
			c.ackRetried = true
			c.revertAndRetryEpoch()
			return
		}
		c.ackRetried = false
		c.onFailure(missingBool(acks, c.alive))
		return
	}
	c.ackRetried = false
	// Epoch committed. Account monitors, handle rejoins, next phase.
	fenceDur := r.Now() - fenceStart
	c.addFenceTime(fenceDur)
	var queued int64
	for _, pd := range done {
		queued += pd.Queued
	}
	c.setBacklog(queued)
	c.accountPhase(done, tau)
	c.noteEpoch(done, tau, fenceDur)
	c.handleRejoins(done)
	c.processAdmin(done)
	c.epoch++
	c.advancePhase()
}

func (c *coordinator) aliveCount() int {
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// gather pumps the coordinator inbox until pred is satisfied or the
// timeout expires. Membership envelopes that arrive mid-gather are
// parked for the next committed fence; everything else non-matching is
// discarded.
func (c *coordinator) gather(timeout time.Duration, take func(any) bool) bool {
	r := c.e.cfg.RT
	in := c.e.net.Inbox(c.id())
	deadline := r.Now() + timeout
	for {
		if take(nil) {
			return true
		}
		d := deadline - r.Now()
		if d <= 0 {
			return false
		}
		m, ok := in.RecvTimeout(d)
		if !ok {
			return take(nil)
		}
		if req, isAdmin := m.(AdminReq); isAdmin {
			c.pendingAdmin = append(c.pendingAdmin, req)
			continue
		}
		if take(m) {
			return true
		}
	}
}

func missingFrom(done map[int]msgPhaseDone, alive []bool) []int {
	var out []int
	for i, a := range alive {
		if a {
			if _, ok := done[i]; !ok {
				out = append(out, i)
			}
		}
	}
	return out
}

func missingBool(done map[int]bool, alive []bool) []int {
	var out []int
	for i, a := range alive {
		if a && !done[i] {
			out = append(out, i)
		}
	}
	return out
}

// accountPhase folds the nodes' monitors into the EWMA throughput
// estimates and, after a full iteration, recomputes τp and τs from
// equations (1) and (2).
func (c *coordinator) accountPhase(done map[int]msgPhaseDone, tau time.Duration) {
	var committed, genS, genX int64
	for _, pd := range done {
		committed += pd.Committed
		genS += pd.GenSingle
		genX += pd.GenCross
	}
	rate := float64(committed) / tau.Seconds()
	const alpha = 0.5
	if c.phase == Partitioned {
		c.iterCommitP = committed
		c.iterGenSingle = genS
		c.iterGenX = genX
		if c.tp == 0 {
			c.tp = rate
		} else {
			c.tp = alpha*rate + (1-alpha)*c.tp
		}
		return
	}
	c.iterCommitS = committed
	if c.ts == 0 {
		c.ts = rate
	} else {
		c.ts = alpha*rate + (1-alpha)*c.ts
	}
	c.retune()
}

// retune solves equations (1)–(2) of §4.3:
//
//	τp + τs = e
//	τs·ts / (τp·tp + τs·ts) = P
//
// giving τs = e·P·tp / ((1−P)·ts + P·tp).
func (c *coordinator) retune() {
	gen := float64(c.iterGenSingle + c.iterGenX)
	if gen > 0 {
		p := float64(c.iterGenX) / gen
		c.pEst = 0.7*p + 0.3*c.pEst
	}
	e := c.e.cfg.Iteration
	minSlice := e / 50 // probe slice so P keeps being measured
	p := c.pEst
	tp, ts := c.tp, c.ts
	if ts == 0 {
		ts = tp
	}
	switch {
	case c.iterGenX == 0:
		// No cross-partition work observed: τp = e, τs = 0 (§4.3).
		c.setTaus(e, 0)
	case c.iterGenSingle == 0:
		// Pure cross-partition workload: behave like a non-partitioned
		// system, keeping a small partitioned probe slice.
		c.setTaus(minSlice, e-minSlice)
	default:
		tauS := time.Duration(float64(e) * p * tp / ((1-p)*ts + p*tp))
		if tauS < minSlice {
			tauS = minSlice
		}
		if tauS > e-minSlice {
			tauS = e - minSlice
		}
		c.setTaus(e-tauS, tauS)
	}
}

func (c *coordinator) advancePhase() {
	tauP, tauS := c.taus()
	if c.phase == Partitioned {
		if (tauS > 0 || c.queuedBacklog() > 0) && c.hasAliveFull() {
			c.phase = SingleMaster
			return
		}
		c.epochTickWithoutPhase()
		return
	}
	c.phase = Partitioned
	if tauP == 0 {
		c.epochTickWithoutPhase()
		c.phase = SingleMaster
	}
}

// epochTickWithoutPhase handles degenerate tunings (P=0 or P=1) where
// one phase has zero duration: the other phase simply repeats.
func (c *coordinator) epochTickWithoutPhase() {}

func (c *coordinator) hasAliveFull() bool {
	for i := 0; i < c.e.cfg.FullReplicas; i++ {
		if c.alive[i] {
			return true
		}
	}
	return false
}

// revertAndRetryEpoch aborts the in-flight epoch WITHOUT changing the
// failure set: every (believed-)alive node reverts — which also aborts
// any fence drain stuck waiting on a dead peer's vanished entries —
// and the epoch restarts from the partitioned phase.
func (c *coordinator) revertAndRetryEpoch() {
	c.broadcast(msgRevert{
		Epoch:      c.epoch,
		Failed:     c.failedList(),
		NewMasters: append([]int32(nil), c.masters...),
	})
	c.e.cfg.RT.Sleep(4 * c.e.cfg.Net.Latency)
	c.phase = Partitioned
}

// onFailure is the §4.5 path: mark nodes failed, revert the in-flight
// epoch everywhere, re-master lost partitions, and carry on (or halt if
// no complete replica remains — case 4).
func (c *coordinator) onFailure(missing []int) {
	if len(missing) == 0 {
		return
	}
	for _, m := range missing {
		c.alive[m] = false
	}
	cfg := c.e.cfg
	lost := 0
	for p := range c.masters {
		if c.alive[c.masters[p]] {
			continue
		}
		switch {
		case c.aliveHolder(p) >= 0:
			c.masters[p] = int32(c.aliveHolder(p))
		default:
			lost++
		}
	}
	if lost > 0 {
		c.e.halted.Store(true)
		c.e.haltReason.Store(fmt.Sprintf(
			"case 4: %d partitions lost every replica; recover from checkpoints + logs", lost))
		return
	}
	if !c.hasAliveFull() {
		// Case 2: no full replicas remain. The paper falls back to a
		// distributed concurrency-control mode; this engine halts the
		// phase-switching loop and reports the condition (the Dist. OCC
		// engine provides that execution mode).
		c.e.halted.Store(true)
		c.e.haltReason.Store("case 2: no full replica alive; distributed CC fallback required")
		return
	}
	// Choose the designated master among alive full replicas.
	for i := 0; i < cfg.FullReplicas; i++ {
		if c.alive[i] {
			c.master = i
			break
		}
	}
	c.broadcast(msgRevert{
		Epoch:      c.epoch,
		Failed:     c.failedList(),
		NewMasters: append([]int32(nil), c.masters...),
	})
	// Give the revert time to land before restarting the epoch.
	c.e.cfg.RT.Sleep(4 * cfg.Net.Latency)
	c.phase = Partitioned
}

// aliveHolder prefers the partition's secondary, then any full replica,
// under the installed topology.
func (c *coordinator) aliveHolder(p int) int {
	return c.aliveHolderIn(c.e.topo.Load(), p)
}

// aliveHolderIn is aliveHolder against an explicit layout: migrations
// pick donors from the OLD topology while the new one is being
// installed.
func (c *coordinator) aliveHolderIn(t *Topology, p int) int {
	if s := t.SecondaryOf(p); s >= 0 && c.alive[s] {
		return s
	}
	for i := 0; i < t.Full; i++ {
		if t.Member[i] && c.alive[i] {
			return i
		}
	}
	if m := t.MasterOf(p); c.alive[m] {
		return m
	}
	return -1
}

// handleRejoins runs at a quiesced fence boundary: restore connectivity,
// let the node copy state from healthy holders, align its counters, and
// hand its partitions back.
func (c *coordinator) handleRejoins(done map[int]msgPhaseDone) {
	reqs := c.e.takeRecoverReqs()
	if len(reqs) == 0 {
		return
	}
	topo := c.e.topo.Load()
	for _, id := range reqs {
		// Only failed MEMBERS rejoin here; dark or drained slots enter
		// through AdminJoin instead.
		if id < 0 || id >= c.e.cfg.Nodes || c.alive[id] || !topo.IsMember(id) {
			continue
		}
		c.e.net.SetDown(id, false)
		// Revert whatever in-flight state the node accumulated when it
		// was cut off — Epoch 0 is the wildcard: the node may have kept
		// committing an epoch the cluster reverted and re-executed, and
		// those uncommitted writes carry TIDs the Thomas write rule would
		// protect against the snapshot catch-up forever. Discarding them
		// restores the node to its last group-committed state, which the
		// snapshot then tops up.
		c.e.net.Send(c.id(), id, transport.Control, msgRevert{
			Epoch:      0,
			Failed:     c.failedList(),
			NewMasters: append([]int32(nil), c.masters...),
		})
		mask := topo.HoldsMask(id)
		var parts, from []int32
		for p, holds := range mask {
			if !holds {
				continue
			}
			h := c.aliveHolderIn(topo, p)
			if h == -1 || h == id {
				continue
			}
			parts = append(parts, int32(p))
			from = append(from, int32(h))
		}
		c.e.net.Send(c.id(), id, transport.Control, msgStartRecovery{Parts: parts, From: from})
		// Snapshot transfer is bandwidth-paced; allow plenty of time.
		var rejoinSent []int64
		okDone := c.gather(c.recoveryGrace, func(m any) bool {
			rd, ok := m.(msgRecoveryDone)
			if ok && rd.Node == id {
				rejoinSent = rd.Sent
				return true
			}
			return false
		})
		if !okDone {
			c.e.net.SetDown(id, true)
			continue
		}
		applied := make([]int64, c.e.cfg.Nodes)
		for src, pd := range done {
			applied[src] = pd.Sent[id]
		}
		c.e.net.Send(c.id(), id, transport.Control, msgResetCounters{Applied: applied})
		// Reverse alignment: entries the victim counted as sent but the
		// network dropped at the crash (or a restart zeroed) can never
		// be applied, so every survivor adopts the rejoined node's own
		// cumulative count as its applied-from-id baseline — otherwise
		// the first post-rejoin fence waits on phantom entries forever.
		for s, a := range c.alive {
			if !a || s == id || s >= len(rejoinSent) {
				continue
			}
			c.e.net.Send(c.id(), s, transport.Control, msgAlignCounters{Src: id, Applied: rejoinSent[s]})
		}
		c.alive[id] = true
		c.graceBoost = time.Second // lenient first phase for the rejoiner
	}
	// Hand partitions back to their planned masters where possible.
	for p := range c.masters {
		if m := topo.MasterOf(p); c.alive[m] {
			c.masters[p] = int32(m)
		}
	}
	c.master = c.firstAliveFull(topo)
	c.broadcast(msgUpdateMasters{Masters: append([]int32(nil), c.masters...)})
}

// firstAliveFull returns the lowest alive full member, or the current
// designated master if none (the caller halts on that path anyway).
func (c *coordinator) firstAliveFull(t *Topology) int {
	for i := 0; i < t.Full; i++ {
		if c.alive[i] {
			return i
		}
	}
	return c.master
}

// ---- elastic membership (admin envelope) ----

// processAdmin runs the queued membership changes at a committed,
// quiesced fence: replication has fully drained, so partition state can
// move between members with no counter deltas in flight. One change is
// processed at a time; each installs a new topology version before the
// next starts.
func (c *coordinator) processAdmin(done map[int]msgPhaseDone) {
	reqs := append(c.e.takeAdminReqs(), c.pendingAdmin...)
	c.pendingAdmin = nil
	for _, req := range reqs {
		c.processOneAdmin(req, done)
	}
}

func (c *coordinator) processOneAdmin(req AdminReq, done map[int]msgPhaseDone) {
	if req.V > AdminProtoVersion {
		c.replyAdmin(req, AdminResp{Err: "admin protocol version unsupported"})
		return
	}
	if c.e.halted.Load() {
		c.replyAdmin(req, AdminResp{Err: "cluster halted"})
		return
	}
	if len(c.failedList()) > 0 {
		// Membership changes and failure recovery do not compose: a
		// failed member cannot ack the new version or donate state.
		// Refuse; the submitter retries after the cluster heals.
		c.replyAdmin(req, AdminResp{Err: req.Op.String() + ": cluster has failed members; retry after recovery"})
		return
	}
	topo := c.e.topo.Load()
	switch req.Op {
	case AdminJoin:
		c.adminJoin(req, topo, done)
	case AdminDrain:
		c.adminDrain(req, topo)
	case AdminRebalance:
		next := topo.Rebalanced()
		if _, err := c.migrate(topo, next, nil); err != nil {
			c.replyAdmin(req, AdminResp{Err: "rebalance: " + err.Error()})
			return
		}
		c.install(topo, next)
		c.replyAdmin(req, c.e.topologyResp())
	default:
		c.replyAdmin(req, AdminResp{Err: "op not served by the coordinator"})
	}
}

// adminJoin admits a dark (or previously drained) slot: open its links,
// discard any in-flight state a previous membership left behind, stream
// it (and every other gaining member) the partitions the new layout
// assigns, align replication counters, then install the new version.
func (c *coordinator) adminJoin(req AdminReq, topo *Topology, done map[int]msgPhaseDone) {
	id := req.Node
	if id < 0 || id >= c.e.cfg.Nodes {
		c.replyAdmin(req, AdminResp{Err: "join: slot out of range"})
		return
	}
	if topo.IsMember(id) {
		c.replyAdmin(req, c.e.topologyResp()) // idempotent
		return
	}
	next := topo.Joined(id)
	c.e.net.SetDown(id, false)
	// Wildcard revert (epoch 0): a slot that was a member before may
	// carry uncommitted writes whose TIDs the Thomas write rule would
	// protect against the snapshot catch-up forever.
	c.e.net.Send(c.id(), id, transport.Control, msgRevert{
		Epoch:      0,
		Failed:     c.failedList(),
		NewMasters: append([]int32(nil), c.masters...),
	})
	sent, err := c.migrate(topo, next, []int{id})
	if err != nil {
		c.e.net.SetDown(id, true)
		c.replyAdmin(req, AdminResp{Err: "join: " + err.Error()})
		return
	}
	// Counter alignment, the same dance as a crash rejoin: the joiner's
	// applied counters jump to the cluster's cumulative sent counts (its
	// snapshot subsumes them), and every survivor adopts the joiner's
	// own sent counts as its applied-from-joiner baseline.
	applied := make([]int64, c.e.cfg.Nodes)
	for src, pd := range done {
		applied[src] = pd.Sent[id]
	}
	c.e.net.Send(c.id(), id, transport.Control, msgResetCounters{Applied: applied})
	joinerSent := sent[id]
	for s, a := range c.alive {
		if !a || s == id || s >= len(joinerSent) {
			continue
		}
		c.e.net.Send(c.id(), s, transport.Control, msgAlignCounters{Src: id, Applied: joinerSent[s]})
	}
	c.install(topo, next)
	c.replyAdmin(req, c.e.topologyResp())
}

// adminDrain migrates a member's partitions to the remaining members
// and removes it: the drained node's own msgTopology install signals
// Engine.Drained so its process can exit cleanly.
func (c *coordinator) adminDrain(req AdminReq, topo *Topology) {
	id := req.Node
	if !topo.IsMember(id) {
		c.replyAdmin(req, AdminResp{Err: "drain: not a member"})
		return
	}
	next := topo.Drained(id)
	if err := next.Validate(); err != nil {
		c.replyAdmin(req, AdminResp{Err: "drain: " + err.Error()})
		return
	}
	if _, err := c.migrate(topo, next, nil); err != nil {
		c.replyAdmin(req, AdminResp{Err: "drain: " + err.Error()})
		return
	}
	c.install(topo, next)
	c.replyAdmin(req, c.e.topologyResp())
}

// migrate moves partition state so every member of next holds what the
// new layout assigns it: each gaining member streams its gained
// partitions from a holder under the OLD layout (the standard snapshot
// catch-up path, Thomas write rule plus removal sweep). force lists
// ids that must report recovery-done even when they gain nothing (a
// joiner's Sent vector is needed for counter alignment). On timeout the
// topology is NOT installed; provisionally materialised partitions on
// gaining members are invisible (checksum serving and replication
// targets follow the installed topology) and a later retry converges
// them idempotently.
func (c *coordinator) migrate(old, next *Topology, force []int) (map[int][]int64, error) {
	type xfer struct{ parts, from []int32 }
	xfers := map[int]*xfer{}
	need := func(i int) *xfer {
		x := xfers[i]
		if x == nil {
			x = &xfer{}
			xfers[i] = x
		}
		return x
	}
	for i := 0; i < next.Capacity; i++ {
		if !next.IsMember(i) {
			continue
		}
		for p := 0; p < next.Partitions; p++ {
			if !next.Holds(i, p) || old.Holds(i, p) {
				continue
			}
			h := c.aliveHolderIn(old, p)
			if h == -1 || h == i {
				continue
			}
			x := need(i)
			x.parts = append(x.parts, int32(p))
			x.from = append(x.from, int32(h))
		}
	}
	for _, id := range force {
		need(id)
	}
	for id, x := range xfers {
		c.e.net.Send(c.id(), id, transport.Control, msgStartRecovery{Parts: x.parts, From: x.from})
	}
	sent := map[int][]int64{}
	ok := c.gather(c.recoveryGrace, func(m any) bool {
		if rd, isRD := m.(msgRecoveryDone); isRD {
			if _, want := xfers[rd.Node]; want {
				sent[rd.Node] = rd.Sent
			}
		}
		return len(sent) == len(xfers)
	})
	if !ok {
		return sent, fmt.Errorf("partition migration incomplete: %d/%d members caught up", len(sent), len(xfers))
	}
	return sent, nil
}

// install commits a new topology version: the coordinator's own state
// rebuilds from it and every old-or-new member installs the broadcast
// copy (residency, mastership, replication targets, client routing).
func (c *coordinator) install(old, next *Topology) {
	c.e.topo.Store(next)
	c.masters = append([]int32(nil), next.Masters...)
	for i := range c.alive {
		c.alive[i] = next.IsMember(i)
	}
	c.master = firstFullMember(next)
	m := msgTopology{
		Version:   next.Version,
		Master:    int32(c.master),
		Masters:   append([]int32(nil), next.Masters...),
		Secondary: append([]int32(nil), next.Secondary...),
	}
	for _, id := range next.Members() {
		m.Members = append(m.Members, int32(id))
	}
	// A just-drained node installs too: that is what flips it out of the
	// member set locally and signals Engine.Drained.
	for i := 0; i < next.Capacity; i++ {
		if old.IsMember(i) || next.IsMember(i) {
			c.e.net.Send(c.id(), i, transport.Control, m)
		}
	}
	c.graceBoost = time.Second // lenient first phase under the new layout
}

// replyAdmin answers a membership envelope's submitter. Engine-queued
// requests (RequestJoin and friends: no ticket, no origin) have nobody
// waiting.
func (c *coordinator) replyAdmin(req AdminReq, resp AdminResp) {
	if req.Ticket == 0 && req.From == 0 {
		return
	}
	resp.V, resp.Op, resp.Ticket, resp.Node = AdminProtoVersion, req.Op, req.Ticket, req.Node
	to := req.From
	if to < 0 || to > c.e.cfg.Nodes+1 {
		return // corrupt origin: nowhere safe to answer
	}
	c.e.net.Send(c.id(), to, transport.Control, resp)
}
