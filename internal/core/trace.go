package core

import (
	"encoding/json"
	"strconv"
	"time"
)

// TraceEvent is one line of the coordinator's epoch timeline
// (Config.Trace): emitted after every committed fence, JSON-encoded,
// newline-terminated. Durations are microseconds so the lines stay
// grep/jq-friendly; Commits keys are node ids as decimal strings (JSON
// object keys must be strings). Faults carries the transport's
// cumulative fault-injection counters when the run injects faults
// (star-node -faults, chaos soaks), so a soak's timeline shows which
// epochs rode through which injections.
type TraceEvent struct {
	Epoch uint64 `json:"epoch"`
	// Phase is the committed phase's kind: "partitioned" or
	// "single-master".
	Phase string `json:"phase"`
	// NowUS is the coordinator clock at emission (process-local origin).
	NowUS int64 `json:"now_us"`
	// TauUS is the phase slice the tuner allotted this epoch.
	TauUS int64 `json:"tau_us"`
	// FenceUS is the replication fence's duration (drain + acks).
	FenceUS int64 `json:"fence_us"`
	// Committed is the cluster-wide commit count of this epoch; Commits
	// breaks it down per node.
	Committed int64            `json:"committed"`
	Commits   map[string]int64 `json:"commits,omitempty"`
	// Queued is the master-queue backlog reported at the phase end.
	Queued int64 `json:"queued"`
	// Topology is the installed topology version the epoch ran under.
	Topology uint64 `json:"topology"`
	// Failed lists nodes the coordinator currently considers failed.
	Failed []int `json:"failed,omitempty"`
	// Faults maps fault family → cumulative injections so far.
	Faults map[string]int64 `json:"faults,omitempty"`
}

// noteEpoch runs on the coordinator goroutine after every committed
// fence, before the epoch counter advances: it feeds the registry's
// epoch/phase counters and the fence-duration histogram, and emits one
// timeline line when Config.Trace is set. Only the coordinator-hosting
// process reaches here, so those counters are zero elsewhere — exactly
// what cluster-merged views want (no double counting).
func (c *coordinator) noteEpoch(done map[int]msgPhaseDone, tau, fenceDur time.Duration) {
	e := c.e
	e.epochsC.Inc()
	var committed, queued int64
	for _, pd := range done {
		committed += pd.Committed
		queued += pd.Queued
	}
	if c.phase == Partitioned {
		e.phasePart.Inc()
		e.commitPart.Add(committed)
	} else {
		e.phaseSingle.Inc()
		e.commitSingle.Add(committed)
	}
	e.fenceHist.Observe(fenceDur)
	if e.cfg.Trace == nil {
		return
	}
	ev := TraceEvent{
		Epoch:     c.epoch,
		Phase:     c.phase.String(),
		NowUS:     e.cfg.RT.Now().Microseconds(),
		TauUS:     tau.Microseconds(),
		FenceUS:   fenceDur.Microseconds(),
		Committed: committed,
		Queued:    queued,
		Topology:  e.topo.Load().Version,
		Failed:    c.failedList(),
	}
	if len(done) > 0 {
		ev.Commits = make(map[string]int64, len(done))
		for id, pd := range done {
			ev.Commits[strconv.Itoa(id)] = pd.Committed
		}
	}
	if fi, ok := e.net.(faultInjector); ok {
		if inj := fi.Injected(); len(inj) > 0 {
			ev.Faults = inj
		}
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return // never let tracing take the coordinator down
	}
	// Write errors are ignored too: a full disk must not stall fences.
	e.cfg.Trace.Write(append(b, '\n'))
}
