package core

import (
	"sort"

	"star/internal/transport"
)

// AdminProtoVersion is the admin envelope version. Both sides reject
// frames from a future protocol rather than misparse them.
const AdminProtoVersion = 1

// AdminOp discriminates the unified control-plane protocol: one
// versioned request/response envelope covers everything the old
// hand-wired Probe pairs did (freeze, checksums, fault stats) plus the
// elastic-membership operations. Every node serves the envelope — from
// the transport (Probe, tests) and from its client front door
// (star-admin) — forwarding node-scoped ops to their target and
// membership ops to the coordinator.
type AdminOp uint8

const (
	// AdminFreeze toggles workload generation on the receiving node.
	// Front-door requests (Ticket != 0) fan out to every member, so one
	// door freezes the whole cluster; transport requests (Probe) carry
	// Ticket 0 and apply locally only — the probe does its own fanout.
	AdminFreeze AdminOp = iota + 1
	// AdminChecksums returns the target node's per-partition checksums.
	AdminChecksums
	// AdminFaultStats returns the target node's fault-injection counters.
	AdminFaultStats
	// AdminJoin asks the coordinator to admit node Node at the next
	// fence: snapshot catch-up first, then a new topology version.
	AdminJoin
	// AdminDrain asks the coordinator to migrate node Node's partitions
	// away at the next fence and remove it from the member set.
	AdminDrain
	// AdminRebalance asks the coordinator to reinstall the canonical
	// partition-mastership layout over the current member set.
	AdminRebalance
	// AdminTopologyGet returns the installed topology version, member
	// set, master map, and the members' client front-door addresses.
	AdminTopologyGet
	// AdminStats returns the target node's metric-registry snapshot
	// (counters, gauges, histograms — see Engine.StatsSnapshot) as an
	// encoded metrics.Snapshot blob in Stats.
	AdminStats
)

func (op AdminOp) String() string {
	switch op {
	case AdminFreeze:
		return "freeze"
	case AdminChecksums:
		return "checksums"
	case AdminFaultStats:
		return "fault-stats"
	case AdminJoin:
		return "join"
	case AdminDrain:
		return "drain"
	case AdminRebalance:
		return "rebalance"
	case AdminTopologyGet:
		return "topology-get"
	case AdminStats:
		return "stats"
	}
	return "unknown"
}

// AdminReq is the unified admin request envelope.
type AdminReq struct {
	// V is the protocol version (AdminProtoVersion).
	V uint8
	// Op selects the operation.
	Op AdminOp
	// From is the endpoint the response is routed back to: a node
	// hosting the submitting front-door connection, the probe endpoint,
	// or the coordinator.
	From int
	// Ticket correlates the response with a waiting submitter. 0 means
	// fire-and-forget (probe freeze fanout, engine-internal requests).
	Ticket uint64
	// Node is the target for node-scoped ops (Checksums, FaultStats) and
	// the subject for membership ops (Join, Drain). -1 targets the
	// receiving node itself.
	Node int
	// On is the AdminFreeze toggle.
	On bool
}

func (AdminReq) Size() int { return 32 }

// AdminResp is the unified admin response envelope. Fields beyond the
// correlation header are op-specific; unused ones stay zero.
type AdminResp struct {
	V      uint8
	Op     AdminOp
	Ticket uint64
	// Node is the responder (the target node for forwarded ops, the
	// coordinator's endpoint for membership ops).
	Node int
	OK   bool
	// Err carries the failure reason when OK is false.
	Err string

	// AdminChecksums: partition checksums, Sums aligned with Parts.
	Parts []int32
	Sums  []uint64

	// AdminFaultStats: injection counters, Vals aligned with Keys.
	Keys []string
	Vals []int64

	// AdminTopologyGet and membership ops: the installed (or just
	// installed) topology version; Members ascending; Masters maps
	// partition → master; ClientAddrs aligned with Members ("" when a
	// member has no front door).
	Version     uint64
	Members     []int32
	Masters     []int32
	ClientAddrs []string

	// AdminStats: the responding node's metric-registry snapshot
	// (metrics.Snapshot.Encode; decode with metrics.DecodeSnapshot). An
	// opaque blob on the wire so the envelope codec stays stable while
	// nodes add metrics.
	Stats []byte
}

func (m AdminResp) Size() int {
	n := 48 + len(m.Err) + 12*len(m.Parts) + 8*len(m.Vals) + 4*len(m.Members) + 4*len(m.Masters) + len(m.Stats)
	for _, k := range m.Keys {
		n += len(k) + 8
	}
	for _, a := range m.ClientAddrs {
		n += len(a) + 4
	}
	return n
}

// msgTopology installs a new topology version on a node (coordinator →
// nodes, between fences). It is also sent to a node that just drained
// OUT of the member set, whose install signals Engine.Drained so the
// process can exit cleanly.
type msgTopology struct {
	Version uint64
	// Master is the designated single-master under the new layout, so
	// client-session forwarding switches immediately instead of waiting
	// for the next phase command.
	Master    int32
	Members   []int32
	Masters   []int32
	Secondary []int32
}

func (m msgTopology) Size() int {
	return 24 + 4*len(m.Members) + 4*len(m.Masters) + 4*len(m.Secondary)
}

// serveAdmin handles an admin envelope on the node router: local ops
// are answered in place, node-scoped ops for a peer are forwarded
// verbatim (the peer replies straight to From), and membership ops are
// relayed to the coordinator with the submitter's reply address intact.
func (n *node) serveAdmin(req AdminReq) {
	if req.V > AdminProtoVersion {
		n.replyAdmin(req, AdminResp{Err: "admin protocol version unsupported"})
		return
	}
	cfg := n.e.cfg
	switch req.Op {
	case AdminFreeze:
		n.e.frozen.Store(req.On)
		if req.Ticket == 0 {
			return // fanned-out / probe copy: apply locally only
		}
		// Front-door origin: one door freezes the cluster. The copies
		// carry Ticket 0 so they cannot fan out again.
		for _, m := range n.e.topo.Load().Members() {
			if m != n.id {
				n.e.net.Send(n.id, m, transport.Control, AdminReq{V: AdminProtoVersion, Op: AdminFreeze, On: req.On})
			}
		}
		n.replyAdmin(req, AdminResp{OK: true})
	case AdminChecksums:
		if fwd, done := n.forwardAdmin(req); done {
			if !fwd {
				n.replyAdmin(req, AdminResp{Err: "checksum target out of range"})
			}
			return
		}
		resp := AdminResp{OK: true}
		topo := n.e.topo.Load()
		for p := 0; p < cfg.NumPartitions(); p++ {
			// Planned holdership, not raw storage residency: an abandoned
			// migration can leave provisionally materialised partitions
			// behind, which are not part of this node's replicated state.
			if !topo.Holds(n.id, p) {
				continue
			}
			resp.Parts = append(resp.Parts, int32(p))
			resp.Sums = append(resp.Sums, n.db.PartitionChecksum(p))
		}
		n.replyAdmin(req, resp)
	case AdminFaultStats:
		if fwd, done := n.forwardAdmin(req); done {
			if !fwd {
				n.replyAdmin(req, AdminResp{Err: "fault-stats target out of range"})
			}
			return
		}
		resp := AdminResp{OK: true}
		if fi, ok := n.e.net.(faultInjector); ok {
			inj := fi.Injected()
			keys := make([]string, 0, len(inj))
			for k := range inj {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				resp.Keys = append(resp.Keys, k)
				resp.Vals = append(resp.Vals, inj[k])
			}
		}
		n.replyAdmin(req, resp)
	case AdminStats:
		if fwd, done := n.forwardAdmin(req); done {
			if !fwd {
				n.replyAdmin(req, AdminResp{Err: "stats target out of range"})
			}
			return
		}
		n.replyAdmin(req, AdminResp{OK: true, Stats: n.e.StatsSnapshot().Encode()})
	case AdminTopologyGet:
		n.replyAdmin(req, n.e.topologyResp())
	case AdminJoin, AdminDrain, AdminRebalance:
		// Membership changes belong to the coordinator; keep From/Ticket
		// so it answers the submitter directly.
		n.e.net.Send(n.id, cfg.coordID(), transport.Control, req)
	default:
		n.replyAdmin(req, AdminResp{Err: "unknown admin op"})
	}
}

// forwardAdmin relays a node-scoped request to its target when that is
// not this node. Returns done=true when the request needs no local
// serving (forwarded, or dropped as out of range with fwd=false).
func (n *node) forwardAdmin(req AdminReq) (fwd, done bool) {
	if req.Node < 0 || req.Node == n.id {
		return false, false
	}
	if req.Node >= n.e.cfg.Nodes {
		return false, true
	}
	n.e.net.Send(n.id, req.Node, transport.Control, req)
	return true, true
}

// replyAdmin stamps the correlation header and routes the response to
// the requester's endpoint.
func (n *node) replyAdmin(req AdminReq, resp AdminResp) {
	resp.V, resp.Op, resp.Ticket = AdminProtoVersion, req.Op, req.Ticket
	if resp.Node == 0 {
		resp.Node = n.id
	}
	// From came off the wire: clamp it to the known endpoint range
	// (nodes, coordinator, probe) — a corrupt frame must not panic the
	// router with an out-of-range transport index.
	to := req.From
	if to < 0 || to > n.e.cfg.Nodes+1 {
		to = n.e.cfg.coordID()
	}
	n.e.net.Send(n.id, to, transport.Control, resp)
}

// topologyResp renders the installed topology as an AdminTopologyGet
// response body.
func (e *Engine) topologyResp() AdminResp {
	topo := e.topo.Load()
	resp := AdminResp{OK: true, Version: topo.Version}
	resp.Masters = append([]int32(nil), topo.Masters...)
	for _, m := range topo.Members() {
		resp.Members = append(resp.Members, int32(m))
		addr := ""
		if m < len(e.cfg.ClientAddrs) {
			addr = e.cfg.ClientAddrs[m]
		}
		resp.ClientAddrs = append(resp.ClientAddrs, addr)
	}
	return resp
}

// installTopology commits a new topology version on this node: storage
// residency, live mastership, replication targets and client routing
// all rebuild from it. Runs on the router between fences (the
// coordinator broadcasts it only at a committed, quiesced boundary). A
// node that is no longer a member drops every partition and signals
// Engine.Drained.
func (n *node) installTopology(m msgTopology) {
	t := topologyFromMsg(m, n.e.cfg)
	n.e.topo.Store(t)
	copy(n.masters, m.Masters)
	n.master = int(m.Master)
	n.curMaster.Store(m.Master)
	for p := 0; p < t.Partitions; p++ {
		n.db.SetHolds(p, t.Holds(n.id, p))
	}
	n.rebuildReplTargets()
	if !t.IsMember(n.id) {
		n.e.noteDrained(n.id)
	}
}
