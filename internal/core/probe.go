package core

import (
	"fmt"
	"time"

	"star/internal/transport"
)

// Probe is an external observation endpoint on a cluster's transport:
// it does not participate in the protocol, but can freeze workload
// generation cluster-wide and collect per-node partition checksums.
// Multi-process failure tests use it to verify that a killed, restarted
// and re-joined star-node process converged to the survivors' state
// without touching any node's internals.
//
// The probe's endpoint id must be present in every process's endpoint
// map (star-node's -probe flag registers it as endpoint Nodes+1,
// sharing process 0's address), and nothing else may consume its inbox.
type Probe struct {
	net   transport.Transport
	id    int // this probe's endpoint
	nodes int // cluster size (endpoints [0,nodes) are the nodes)
}

// NewProbe wraps an endpoint the caller hosts on net. nodes is the
// cluster's node count.
func NewProbe(net transport.Transport, endpoint, nodes int) *Probe {
	return &Probe{net: net, id: endpoint, nodes: nodes}
}

// Freeze toggles workload generation on every node. Phase switching and
// replication continue, so a few iterations after Freeze(true) the
// replicas settle to a comparable quiesced state.
func (p *Probe) Freeze(on bool) {
	for i := 0; i < p.nodes; i++ {
		p.net.Send(p.id, i, transport.Control, msgFreeze{On: on})
	}
}

// Checksums requests node's partition checksums and waits for the
// response. The node answers from its router between messages, so on a
// frozen, settled cluster the result is a stable fence-state snapshot.
func (p *Probe) Checksums(node int, timeout time.Duration) (NodeChecksums, error) {
	p.net.Send(p.id, node, transport.Control, msgChecksumReq{From: p.id})
	in := p.net.Inbox(p.id)
	deadline := time.Now().Add(timeout)
	for {
		d := time.Until(deadline)
		if d <= 0 {
			return NodeChecksums{}, fmt.Errorf("probe: checksum request to node %d timed out", node)
		}
		m, ok := in.RecvTimeout(d)
		if !ok {
			continue
		}
		if resp, isCS := m.(msgChecksumResp); isCS && resp.Node == node {
			return NodeChecksums{Node: resp.Node, Parts: resp.Parts, Sums: resp.Sums}, nil
		}
	}
}

// FaultStats requests node's per-fault-type injection counters — what
// that process's faultnet decorator (star-node -faults) actually
// injected. Nodes without an injecting transport answer an empty map.
func (p *Probe) FaultStats(node int, timeout time.Duration) (map[string]int64, error) {
	p.net.Send(p.id, node, transport.Control, msgFaultStatsReq{From: p.id})
	in := p.net.Inbox(p.id)
	deadline := time.Now().Add(timeout)
	for {
		d := time.Until(deadline)
		if d <= 0 {
			return nil, fmt.Errorf("probe: fault-stats request to node %d timed out", node)
		}
		m, ok := in.RecvTimeout(d)
		if !ok {
			continue
		}
		if resp, isFS := m.(msgFaultStatsResp); isFS && resp.Node == node {
			out := make(map[string]int64, len(resp.Keys))
			for i, k := range resp.Keys {
				out[k] = resp.Vals[i]
			}
			return out, nil
		}
	}
}
