package core

import (
	"fmt"
	"time"

	"star/internal/transport"
)

// Probe is an external observation endpoint on a cluster's transport:
// it does not participate in the protocol, but speaks the unified admin
// envelope (AdminReq/AdminResp) to freeze workload generation
// cluster-wide, collect per-node partition checksums and fault
// counters, read the installed topology, and submit membership changes.
// Multi-process failure tests use it to verify that a killed, restarted
// and re-joined star-node process converged to the survivors' state
// without touching any node's internals.
//
// The probe's endpoint id must be present in every process's endpoint
// map (star-node's -probe flag registers it as endpoint Nodes+1,
// sharing process 0's address), and nothing else may consume its inbox.
type Probe struct {
	net   transport.Transport
	id    int // this probe's endpoint
	nodes int // cluster capacity (endpoints [0,nodes) are the slots)
}

// NewProbe wraps an endpoint the caller hosts on net. nodes is the
// cluster's slot capacity.
func NewProbe(net transport.Transport, endpoint, nodes int) *Probe {
	return &Probe{net: net, id: endpoint, nodes: nodes}
}

// Freeze toggles workload generation on every slot. The copies carry
// Ticket 0 (apply locally, no reply, no re-fanout); phase switching and
// replication continue, so a few iterations after Freeze(true) the
// replicas settle to a comparable quiesced state.
func (p *Probe) Freeze(on bool) {
	for i := 0; i < p.nodes; i++ {
		p.net.Send(p.id, i, transport.Control, AdminReq{V: AdminProtoVersion, Op: AdminFreeze, From: p.id, On: on})
	}
}

// do sends one admin request to node and waits for the matching
// response (same op, same responder).
func (p *Probe) do(node int, req AdminReq, timeout time.Duration) (AdminResp, error) {
	req.V, req.From = AdminProtoVersion, p.id
	p.net.Send(p.id, node, transport.Control, req)
	in := p.net.Inbox(p.id)
	deadline := time.Now().Add(timeout)
	for {
		d := time.Until(deadline)
		if d <= 0 {
			return AdminResp{}, fmt.Errorf("probe: %s request to node %d timed out", req.Op, node)
		}
		m, ok := in.RecvTimeout(d)
		if !ok {
			continue
		}
		resp, isResp := m.(AdminResp)
		if !isResp || resp.Op != req.Op {
			continue
		}
		// Node-scoped ops are matched on the responder; membership ops
		// are answered by the coordinator and matched on the subject.
		switch req.Op {
		case AdminChecksums, AdminFaultStats:
			if resp.Node != node {
				continue
			}
		case AdminJoin, AdminDrain:
			if resp.Node != req.Node {
				continue
			}
		}
		if !resp.OK && resp.Err != "" {
			return resp, fmt.Errorf("probe: %s: %s", req.Op, resp.Err)
		}
		return resp, nil
	}
}

// Checksums requests node's partition checksums and waits for the
// response. The node answers from its router between messages, so on a
// frozen, settled cluster the result is a stable fence-state snapshot.
func (p *Probe) Checksums(node int, timeout time.Duration) (NodeChecksums, error) {
	resp, err := p.do(node, AdminReq{Op: AdminChecksums, Node: node}, timeout)
	if err != nil {
		return NodeChecksums{}, err
	}
	return NodeChecksums{Node: resp.Node, Parts: resp.Parts, Sums: resp.Sums}, nil
}

// FaultStats requests node's per-fault-type injection counters — what
// that process's faultnet decorator (star-node -faults) actually
// injected. Nodes without an injecting transport answer an empty map.
func (p *Probe) FaultStats(node int, timeout time.Duration) (map[string]int64, error) {
	resp, err := p.do(node, AdminReq{Op: AdminFaultStats, Node: node}, timeout)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(resp.Keys))
	for i, k := range resp.Keys {
		out[k] = resp.Vals[i]
	}
	return out, nil
}

// Topology asks node for the installed topology: version, members,
// partition->master map, and the members' client front-door addresses.
func (p *Probe) Topology(node int, timeout time.Duration) (AdminResp, error) {
	return p.do(node, AdminReq{Op: AdminTopologyGet, Node: node}, timeout)
}

// Join asks the coordinator (via any node) to admit slot `joiner` at
// the next epoch fence and waits for the installed-topology response.
func (p *Probe) Join(via, joiner int, timeout time.Duration) (AdminResp, error) {
	return p.do(via, AdminReq{Op: AdminJoin, Node: joiner}, timeout)
}

// Drain asks the coordinator (via any node) to migrate slot `leaver`'s
// partitions away and remove it from the member set.
func (p *Probe) Drain(via, leaver int, timeout time.Duration) (AdminResp, error) {
	return p.do(via, AdminReq{Op: AdminDrain, Node: leaver}, timeout)
}

// Rebalance asks the coordinator (via any node) to reinstall the
// canonical mastership layout over the current member set.
func (p *Probe) Rebalance(via int, timeout time.Duration) (AdminResp, error) {
	return p.do(via, AdminReq{Op: AdminRebalance, Node: -1}, timeout)
}
