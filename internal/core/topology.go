package core

// Topology is the first-class cluster layout: which endpoint slots are
// live members, which of those are full replicas, and the planned
// partition->master / partition->secondary assignment. It replaces the
// scattered Config.Nodes / FullReplicas / LocalNodes reads inside the
// engine so membership can change at an epoch fence without rebuilding
// the world.
//
// Endpoint slots are fixed at construction (Capacity = Config.Nodes):
// the transport pre-provisions one endpoint per slot plus coordinator
// and probe, and membership toggles slots live or dark. Slot ids below
// Full are full replicas when live; the rest are partial replicas.
//
// The coordinator owns the committed Topology and installs new versions
// only between fences (msgTopology); nodes rebuild replication targets,
// storage residency, and client routing from the installed value.
type Topology struct {
	// Version increments on every installed change (join/drain/
	// rebalance). Version 1 is the boot layout derived from Config.
	Version uint64
	// Capacity is the number of provisioned endpoint slots (Config.Nodes).
	Capacity int
	// Full bounds the full-replica slots: ids [0,Full) hold every
	// partition when they are members.
	Full int
	// Partitions is the cluster partition count (fixed for life).
	Partitions int
	// Member[i] reports whether slot i is a live cluster member.
	Member []bool
	// Masters[p] is the planned master of partition p (always a member
	// that holds p). Failure re-mastering overlays this at runtime but
	// never changes the planned assignment.
	Masters []int32
	// Secondary[p] is the partial replica holding p in addition to the
	// full replicas, or -1 when the master itself is partial (then the
	// master is the extra copy) or no partial members exist.
	Secondary []int32
}

// workersPerSlot returns the canonical partitions-per-slot stripe width.
func (t *Topology) workersPerSlot() int { return t.Partitions / t.Capacity }

// IsMember reports whether slot i is a live member.
func (t *Topology) IsMember(i int) bool { return i >= 0 && i < t.Capacity && t.Member[i] }

// IsFull reports whether slot i is a live full replica.
func (t *Topology) IsFull(i int) bool { return i < t.Full && t.IsMember(i) }

// Members returns the live slot ids in ascending order.
func (t *Topology) Members() []int {
	out := make([]int, 0, t.Capacity)
	for i, m := range t.Member {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// NumMembers returns the live member count.
func (t *Topology) NumMembers() int {
	n := 0
	for _, m := range t.Member {
		if m {
			n++
		}
	}
	return n
}

// MasterOf returns the planned master of partition p.
func (t *Topology) MasterOf(p int) int { return int(t.Masters[p]) }

// SecondaryOf returns the partial replica holding p besides the full
// replicas, or -1 (see Secondary).
func (t *Topology) SecondaryOf(p int) int { return int(t.Secondary[p]) }

// Holds reports whether member i holds partition p under this layout.
func (t *Topology) Holds(i, p int) bool {
	if !t.IsMember(i) {
		return false
	}
	if i < t.Full {
		return true
	}
	return int(t.Masters[p]) == i || int(t.Secondary[p]) == i
}

// HoldersOf returns every member holding partition p: the full members,
// then the master if partial, then the secondary. Never empty on a
// valid topology (at least one full member is required).
func (t *Topology) HoldersOf(p int) []int {
	out := make([]int, 0, t.Full+2)
	for i := 0; i < t.Full; i++ {
		if t.Member[i] {
			out = append(out, i)
		}
	}
	if m := int(t.Masters[p]); m >= t.Full {
		out = append(out, m)
	}
	if s := int(t.Secondary[p]); s >= 0 && s != int(t.Masters[p]) {
		out = append(out, s)
	}
	return out
}

// HoldsMask returns the residency bitmap for slot i (all false for a
// non-member, all true for a full member).
func (t *Topology) HoldsMask(i int) []bool {
	mask := make([]bool, t.Partitions)
	for p := range mask {
		mask[p] = t.Holds(i, p)
	}
	return mask
}

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	c := *t
	c.Member = append([]bool(nil), t.Member...)
	c.Masters = append([]int32(nil), t.Masters...)
	c.Secondary = append([]int32(nil), t.Secondary...)
	return &c
}

// relayout recomputes the canonical master/secondary assignment for the
// current member set. Deterministic: every process computing the same
// member set derives the same layout. Each partition's preferred owner
// is its striped slot (p / workersPerSlot); orphaned stripes (owner not
// a member) spread round-robin over the members. Partitions mastered by
// a full replica get one partial secondary so the replication factor
// stays Full+1 everywhere partials exist.
func (t *Topology) relayout() {
	w := t.workersPerSlot()
	members := t.Members()
	partials := make([]int, 0, len(members))
	for _, m := range members {
		if m >= t.Full {
			partials = append(partials, m)
		}
	}
	for p := 0; p < t.Partitions; p++ {
		owner := p / w
		if !t.IsMember(owner) {
			owner = members[p%len(members)]
		}
		t.Masters[p] = int32(owner)
		if owner >= t.Full || len(partials) == 0 {
			t.Secondary[p] = -1
		} else {
			t.Secondary[p] = int32(partials[p%len(partials)])
		}
	}
}

// Joined returns the next topology version with slot id live. Data
// migration to the new layout is the coordinator's job.
func (t *Topology) Joined(id int) *Topology {
	n := t.Clone()
	n.Version++
	n.Member[id] = true
	n.relayout()
	return n
}

// Drained returns the next topology version with slot id removed.
func (t *Topology) Drained(id int) *Topology {
	n := t.Clone()
	n.Version++
	n.Member[id] = false
	n.relayout()
	return n
}

// Rebalanced returns the next version with the canonical layout
// recomputed over the unchanged member set — used to move mastership
// back to the planned owners after failure re-mastering skewed the
// live overlay, without any membership change.
func (t *Topology) Rebalanced() *Topology {
	n := t.Clone()
	n.Version++
	n.relayout()
	return n
}

// Validate rejects layouts the engine cannot run: fewer than two
// members or no live full replica (partitioned-phase re-mastering and
// the single-master phase both need one).
func (t *Topology) Validate() error {
	if t.NumMembers() < 2 {
		return errTopoMembers
	}
	for i := 0; i < t.Full; i++ {
		if t.Member[i] {
			return nil
		}
	}
	return errTopoNoFull
}

// firstFullMember returns the lowest live full-replica slot — the
// default designated master. Valid topologies always have one.
func firstFullMember(t *Topology) int {
	for i := 0; i < t.Full; i++ {
		if t.Member[i] {
			return i
		}
	}
	return 0
}

type topoError string

func (e topoError) Error() string { return string(e) }

const (
	errTopoMembers topoError = "topology: fewer than two members"
	errTopoNoFull  topoError = "topology: no live full replica"
)

// Topology builds the version-1 boot layout from the Config: capacity
// from Nodes, full set from FullReplicas, members from Members (nil =
// every slot). With every slot a member this reproduces the classic
// static layout (MasterOf = p/WorkersPerNode, SecondaryOf striped over
// the partials) exactly.
func (c Config) Topology() *Topology {
	c = c.withDefaults()
	t := &Topology{
		Version:    1,
		Capacity:   c.Nodes,
		Full:       c.FullReplicas,
		Partitions: c.NumPartitions(),
		Member:     make([]bool, c.Nodes),
		Masters:    make([]int32, c.NumPartitions()),
		Secondary:  make([]int32, c.NumPartitions()),
	}
	if len(c.Members) == 0 {
		for i := range t.Member {
			t.Member[i] = true
		}
	} else {
		for _, id := range c.Members {
			if id < 0 || id >= c.Nodes {
				panic("core: Config.Members id out of range")
			}
			t.Member[id] = true
		}
	}
	if err := t.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	t.relayout()
	return t
}

// topologyFromMsg reconstructs an installed Topology from the fence
// broadcast plus the fixed Config constants.
func topologyFromMsg(m msgTopology, cfg Config) *Topology {
	t := &Topology{
		Version:    m.Version,
		Capacity:   cfg.Nodes,
		Full:       cfg.FullReplicas,
		Partitions: cfg.NumPartitions(),
		Member:     make([]bool, cfg.Nodes),
		Masters:    append([]int32(nil), m.Masters...),
		Secondary:  append([]int32(nil), m.Secondary...),
	}
	for _, id := range m.Members {
		if int(id) >= 0 && int(id) < cfg.Nodes {
			t.Member[id] = true
		}
	}
	return t
}
