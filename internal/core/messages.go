package core

import (
	"time"

	"star/internal/replication"
	"star/internal/storage"
	"star/internal/txn"
	"star/internal/wire"
)

// msgReplBatch is the per-destination replication envelope: one worker's
// coalesced value/operation deltas for a single destination, flushed on
// a size boundary (Config.FlushBytes / FlushEvery) or at the epoch
// fence, so a partitioned-phase epoch ships O(destinations) messages
// instead of O(writes). The fence accounting stays per entry: the
// sender's Tracker.AddSent counts len(Entries) when the envelope ships,
// and the receiver's AddApplied counts entries as they are applied, so
// msgFenceDrain's Expected vector reconciles exactly however the
// entries were packed.
type msgReplBatch = replication.Batch

// Phase enumerates STAR's two execution phases.
type Phase uint8

const (
	// Partitioned: every node runs single-partition transactions on the
	// partitions it masters.
	Partitioned Phase = iota
	// SingleMaster: one full replica masters every record and runs the
	// deferred cross-partition transactions.
	SingleMaster
)

func (p Phase) String() string {
	if p == Partitioned {
		return "partitioned"
	}
	return "single-master"
}

// msgStartPhase begins a phase on every node (coordinator → nodes).
// Receiving it also commits the previous epoch: revert information is
// discarded and the group-committed transactions' results are released.
type msgStartPhase struct {
	Phase Phase
	Epoch uint64
	// Deadline is the phase budget, relative to the command's receipt
	// (the receiving node's router localises it against its own clock in
	// startPhase — processes do not share a clock origin, so an absolute
	// time would not survive the wire). Scripted phases ignore it.
	Deadline time.Duration
	Master   int   // the designated master node
	Failed   []int // currently failed nodes (empty normally)

	// Scripted-run fields (see RunScripted; zero on ordinary phases).
	// ScriptTxns bounds the partitioned phase by generator steps per
	// owned partition instead of by Deadline; ScriptDeferred is the
	// exact number of deferred requests the master must drain in the
	// single-master phase.
	ScriptTxns     int
	ScriptDeferred int64
}

func (msgStartPhase) Size() int { return 64 }

// InjectionEpoch lets a fault-injecting transport decorator key fault
// windows to cluster epochs (faultnet.EpochCarrier): the coordinator's
// phase commands announce the epoch on every process that sends them.
func (m msgStartPhase) InjectionEpoch() uint64 { return m.Epoch }

// msgPhaseDone reports a node's workers finished the phase; Sent carries
// the node's cumulative per-destination replication entry counts
// (the coordinator aggregates them for the fence, §4.3) and the phase
// monitors feeding the τp/τs equations.
type msgPhaseDone struct {
	Node  int
	Epoch uint64
	Sent  []int64
	// Monitors for equations (1)-(2): commits this phase, and the
	// single-/cross-partition generation counts estimating P.
	Committed int64
	GenSingle int64
	GenCross  int64
	// Queued is the node's master-queue backlog (deferred + forwarded
	// client requests) at the phase end. Client sessions submit out of
	// band of the generators, so they are invisible to the P estimate;
	// the coordinator uses the backlog to schedule a single-master drain
	// slice even when the generated workload alone tunes τs to zero.
	Queued int64
}

func (m msgPhaseDone) Size() int { return 56 + 8*len(m.Sent) }

// InjectionEpoch mirrors msgStartPhase's: phase reports carry the epoch
// on node-hosting processes, which never send phase commands.
func (m msgPhaseDone) InjectionEpoch() uint64 { return m.Epoch }

// msgFenceDrain tells a node how many replication entries to expect from
// each source before the fence may complete.
type msgFenceDrain struct {
	Epoch    uint64
	Expected []int64
}

func (m msgFenceDrain) Size() int { return 16 + 8*len(m.Expected) }

// msgFenceAck acknowledges a completed drain (node → coordinator).
type msgFenceAck struct {
	Node  int
	Epoch uint64
}

func (msgFenceAck) Size() int { return 24 }

// msgDefer routes a cross-partition request to the master node's queue
// (§4.3: "the system would re-route the request to the master node").
// One request per message, deliberately: see the defer path in
// worker.runPartitioned for why batching these is harmful.
type msgDefer struct {
	Req *txn.Request
}

// wireSizer is implemented by procedures that report their exact encoded
// parameter size (the workload wire codecs keep WireSize in lock-step
// with their encoders), so the modelled size below tracks the real frame
// length; TestModelledSizesTrackEncoding pins the drift.
type wireSizer interface{ WireSize() int }

// Size is the encoded frame length: frame overhead + request header +
// the procedure's parameters. Procedures without a wire codec fall back
// to the legacy footprint model.
func (m msgDefer) Size() int {
	if ws, ok := m.Req.Proc.(wireSizer); ok {
		return wire.FrameOverhead + wire.RequestOverhead(m.Req.GenAt) + ws.WireSize()
	}
	return 48 + 24*len(m.Req.Parts)
}

// msgReplAck acknowledges application of a synchronously replicated
// batch (SYNC STAR only).
type msgReplAck struct {
	Worker int
	Seq    uint64
}

func (msgReplAck) Size() int { return 24 }

// msgRevert orders a node to revert the in-flight epoch after a failure
// (coordinator → nodes) and describes the new cluster layout.
type msgRevert struct {
	Epoch uint64
	// Failed lists all currently failed nodes.
	Failed []int
	// NewMasters maps partition → new mastering node for partitions
	// whose master failed (re-mastering, §4.5.3 cases 1 and 3).
	NewMasters []int32
}

func (m msgRevert) Size() int { return 32 + 4*len(m.NewMasters) + 8*len(m.Failed) }

// msgSnapshotReq asks a healthy holder for a partition's records
// (recovering-node catch-up, §4.5.3 case 1).
type msgSnapshotReq struct {
	From int
	Part int
}

func (msgSnapshotReq) Size() int { return 24 }

// msgSnapshot carries one table's slice of a partition back to a
// recovering node as encoded row images: parallel key/TID/row columns
// with no in-process pointers, so the message crosses a real wire
// unchanged (recovering-node catch-up, §4.5.3 case 1).
type msgSnapshot struct {
	Table storage.TableID
	Part  int
	Keys  []storage.Key
	TIDs  []uint64
	Rows  [][]byte
}

// Size is the encoded frame length (see the codec in wire.go): header,
// table id, part, count, then a fixed key+TID plus a length-prefixed row
// per record.
func (m *msgSnapshot) Size() int {
	n := wire.FrameOverhead + 1 + wire.UvarintLen(uint64(m.Part)) +
		wire.UvarintLen(uint64(len(m.Keys)))
	n += len(m.Keys) * (wire.KeyLen + 8)
	for _, r := range m.Rows {
		n += wire.BytesLen(r)
	}
	return n
}

// msgHalt tells a node process the scripted run is over and it may exit
// (coordinator → nodes; multi-process clusters only).
type msgHalt struct{}

func (msgHalt) Size() int { return 8 }

// ClientStatus is the outcome of a client-submitted request.
type ClientStatus uint8

const (
	// StatusOK: the request committed (writes: after its fence completed
	// cluster-wide) or the read was served.
	StatusOK ClientStatus = iota + 1
	// StatusBusy: shed by admission control (the session window, the
	// master's deferred queue, or the front door) — retry later.
	StatusBusy
	// StatusAborted: the procedure aborted for application reasons;
	// engines do not retry user aborts.
	StatusAborted
)

func (s ClientStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusAborted:
		return "aborted"
	}
	return "unknown"
}

// ClientReq is a client-submitted transaction request — the star-client
// front door's unit of work. The socket handler decodes it off a client
// connection; the session gate serves read-only requests from the local
// epoch-fence snapshot when the freshness token allows, and forwards
// everything else (re-encoded, with the gate's Origin/Ticket stamped
// into Req) to the current master's deferred queue.
type ClientReq struct {
	// Token is the client session's freshness token: the fence epoch its
	// last acknowledged write committed in (0 = no freshness demand). A
	// replica may serve the read from its snapshot only when its own
	// in-flight epoch has advanced PAST the token — i.e. the token's
	// fence has completed locally (SCAR-style session guarantee:
	// read-your-own-writes with bounded staleness).
	Token uint64
	Req   *txn.Request
}

// Size mirrors msgDefer's encoded-length model plus the client header.
func (m ClientReq) Size() int {
	if ws, ok := m.Req.Proc.(wireSizer); ok {
		return wire.FrameOverhead + wire.RequestOverhead(m.Req.GenAt) + ws.WireSize() + 24
	}
	return 72 + 24*len(m.Req.Parts)
}

// ClientResp answers one ClientReq (master → origin gate → client).
type ClientResp struct {
	// Ticket echoes the request's correlation id.
	Ticket uint64
	Status ClientStatus
	// Token is the freshness token the operation established: the commit
	// epoch for writes (released only after that fence completed
	// cluster-wide), the observed fence epoch for snapshot-served reads.
	// Sessions keep the running maximum.
	Token uint64
	// Reads counts the record reads the procedure performed — a cheap
	// execution fingerprint for clients and tests. Zero for writes.
	Reads int64
}

func (ClientResp) Size() int { return 40 }
