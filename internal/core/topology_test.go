package core

import (
	"testing"
	"time"

	"star/internal/rt"
)

// TestTopologyBootMatchesStaticLayout pins that the version-1 Topology
// reproduces the classic Config-derived layout exactly when every slot
// is a member.
func TestTopologyBootMatchesStaticLayout(t *testing.T) {
	cfg := Config{Nodes: 4, WorkersPerNode: 3, FullReplicas: 2}
	cfg = cfg.withDefaults()
	topo := cfg.Topology()
	if topo.Version != 1 || topo.NumMembers() != 4 {
		t.Fatalf("boot topology: version %d, members %d", topo.Version, topo.NumMembers())
	}
	for p := 0; p < cfg.NumPartitions(); p++ {
		if topo.MasterOf(p) != cfg.MasterOf(p) {
			t.Fatalf("partition %d: topo master %d != config master %d", p, topo.MasterOf(p), cfg.MasterOf(p))
		}
		if topo.SecondaryOf(p) != cfg.SecondaryOf(p) {
			t.Fatalf("partition %d: topo secondary %d != config secondary %d", p, topo.SecondaryOf(p), cfg.SecondaryOf(p))
		}
		want := cfg.HoldersOf(p)
		got := topo.HoldersOf(p)
		if len(got) != len(want) {
			t.Fatalf("partition %d: holders %v != %v", p, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("partition %d: holders %v != %v", p, got, want)
			}
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		for p, h := range topo.HoldsMask(i) {
			if h != cfg.HoldsMask(i)[p] {
				t.Fatalf("node %d partition %d: residency mismatch", i, p)
			}
		}
	}
}

// TestTopologyJoinDrainRebalance pins the membership transitions:
// deterministic layouts, full coverage, version bumps, and validation.
func TestTopologyJoinDrainRebalance(t *testing.T) {
	cfg := Config{Nodes: 4, WorkersPerNode: 2, FullReplicas: 1, Members: []int{0, 1, 2}}
	cfg = cfg.withDefaults()
	topo := cfg.Topology()
	if topo.IsMember(3) {
		t.Fatal("slot 3 should boot dark")
	}
	// Every partition is owned by a member and has >=2 holders even with
	// slot 3's stripe orphaned.
	for p := 0; p < topo.Partitions; p++ {
		if !topo.IsMember(topo.MasterOf(p)) {
			t.Fatalf("partition %d mastered by non-member %d", p, topo.MasterOf(p))
		}
		if len(topo.HoldersOf(p)) < 2 {
			t.Fatalf("partition %d under-replicated: %v", p, topo.HoldersOf(p))
		}
	}

	joined := topo.Joined(3)
	if joined.Version != 2 || !joined.IsMember(3) {
		t.Fatalf("joined: version %d member %v", joined.Version, joined.IsMember(3))
	}
	// The joined layout is the canonical full-member layout: slot 3 takes
	// its own stripe back.
	for p := 6; p < 8; p++ {
		if joined.MasterOf(p) != 3 {
			t.Fatalf("partition %d: master %d after join, want 3", p, joined.MasterOf(p))
		}
	}
	// Determinism: the same transition computed twice is identical.
	again := topo.Joined(3)
	for p := 0; p < topo.Partitions; p++ {
		if joined.Masters[p] != again.Masters[p] || joined.Secondary[p] != again.Secondary[p] {
			t.Fatalf("partition %d: join relayout not deterministic", p)
		}
	}

	drained := joined.Drained(1)
	if drained.Version != 3 || drained.IsMember(1) {
		t.Fatal("drain bookkeeping")
	}
	for p := 0; p < drained.Partitions; p++ {
		if drained.MasterOf(p) == 1 || drained.SecondaryOf(p) == 1 {
			t.Fatalf("partition %d still assigned to drained slot", p)
		}
		if !drained.IsMember(drained.MasterOf(p)) {
			t.Fatalf("partition %d mastered by non-member", p)
		}
	}
	if drained.Holds(1, 0) {
		t.Fatal("drained slot still holds partitions")
	}

	// Rebalance bumps the version but keeps the canonical layout fixed.
	reb := joined.Rebalanced()
	if reb.Version != joined.Version+1 {
		t.Fatal("rebalance version")
	}
	for p := 0; p < reb.Partitions; p++ {
		if reb.Masters[p] != joined.Masters[p] || reb.Secondary[p] != joined.Secondary[p] {
			t.Fatalf("partition %d: rebalance moved a stable layout", p)
		}
	}

	// Validation: too few members, and no live full replica.
	if err := drained.Drained(2).Validate(); err != nil {
		t.Fatalf("2-member topology with a full replica must validate: %v", err)
	}
	if err := drained.Drained(2).Drained(3).Validate(); err != errTopoMembers {
		t.Fatal("1-member topology must not validate")
	}
	noFull := joined.Drained(0)
	if err := noFull.Validate(); err != errTopoNoFull {
		t.Fatalf("draining the only full replica: err %v", err)
	}
}

// TestSTARJoinDarkSlotAtFence boots a capacity-4 cluster with three
// members, joins the dark slot mid-run, and checks the new member
// carries its stripe and every replica converges byte-identically.
func TestSTARJoinDarkSlotAtFence(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, func(c *Config) { c.Members = []int{0, 1, 2} })
	s.Run(40 * time.Millisecond)
	before := e.Stats().Committed
	if before == 0 {
		t.Fatal("no commits before join")
	}
	if v := e.Topology().Version; v != 1 {
		t.Fatalf("boot topology version %d", v)
	}

	e.RequestJoin(3)
	s.Run(s.Now() + 60*time.Millisecond)
	topo := e.Topology()
	if !topo.IsMember(3) || topo.Version != 2 {
		t.Fatalf("join not installed: version %d member %v", topo.Version, topo.IsMember(3))
	}
	// The joiner owns its stripe again and the cluster keeps committing.
	w := e.cfg.WorkersPerNode
	for p := 3 * w; p < 4*w; p++ {
		if topo.MasterOf(p) != 3 {
			t.Fatalf("partition %d: master %d after join", p, topo.MasterOf(p))
		}
	}
	s.Run(s.Now() + 40*time.Millisecond)
	if after := e.Stats().Committed; after <= before {
		t.Fatalf("no progress after join: %d -> %d", before, after)
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatalf("replicas diverged after join: %v", err)
	}
	s.Stop()
}

// TestSTARDrainNodeAtFence drains a partial member out of a full
// cluster: its partitions migrate away, Engine.Drained fires, and the
// survivors stay consistent and live.
func TestSTARDrainNodeAtFence(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, nil)
	s.Run(40 * time.Millisecond)
	before := e.Stats().Committed

	e.RequestDrain(3)
	s.Run(s.Now() + 60*time.Millisecond)
	topo := e.Topology()
	if topo.IsMember(3) || topo.Version != 2 {
		t.Fatalf("drain not installed: version %d member %v", topo.Version, topo.IsMember(3))
	}
	select {
	case id := <-e.Drained():
		if id != 3 {
			t.Fatalf("drained signal for node %d", id)
		}
	default:
		t.Fatal("no drained signal")
	}
	for p := 0; p < topo.Partitions; p++ {
		if topo.MasterOf(p) == 3 || topo.SecondaryOf(p) == 3 {
			t.Fatalf("partition %d still assigned to drained node", p)
		}
	}
	s.Run(s.Now() + 40*time.Millisecond)
	if after := e.Stats().Committed; after <= before {
		t.Fatalf("no progress after drain: %d -> %d", before, after)
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatalf("replicas diverged after drain: %v", err)
	}
	s.Stop()
}

// TestSTARDrainThenRejoin cycles a member out and back in: the second
// join must realign replication counters with the node's persistent
// in-process tracker state.
func TestSTARDrainThenRejoin(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 10, nil)
	s.Run(40 * time.Millisecond)

	e.RequestDrain(3)
	s.Run(s.Now() + 60*time.Millisecond)
	if e.Topology().IsMember(3) {
		t.Fatal("drain not installed")
	}
	s.Run(s.Now() + 20*time.Millisecond)

	e.RequestJoin(3)
	s.Run(s.Now() + 60*time.Millisecond)
	topo := e.Topology()
	if !topo.IsMember(3) || topo.Version != 3 {
		t.Fatalf("rejoin not installed: version %d member %v", topo.Version, topo.IsMember(3))
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatalf("replicas diverged after drain+rejoin: %v", err)
	}
	s.Stop()
}

// TestSTARRebalanceInstallsNewVersion pins that a rebalance over a
// stable member set is a pure version bump with no layout movement and
// no consistency damage.
func TestSTARRebalanceInstallsNewVersion(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 3, 2, 10, nil)
	s.Run(40 * time.Millisecond)
	old := e.Topology()

	e.RequestRebalance()
	s.Run(s.Now() + 40*time.Millisecond)
	topo := e.Topology()
	if topo.Version != old.Version+1 {
		t.Fatalf("rebalance version: %d -> %d", old.Version, topo.Version)
	}
	for p := 0; p < topo.Partitions; p++ {
		if topo.Masters[p] != old.Masters[p] {
			t.Fatalf("partition %d: stable rebalance moved mastership", p)
		}
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

// TestSTARDrainRejectedWhenItWouldBreakReplication pins the validation
// path: the last full replica cannot drain.
func TestSTARDrainRejectedWhenItWouldBreakReplication(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 3, 2, 10, nil)
	s.Run(40 * time.Millisecond)

	e.RequestDrain(0) // the only full replica
	s.Run(s.Now() + 40*time.Millisecond)
	topo := e.Topology()
	if topo.Version != 1 || !topo.IsMember(0) {
		t.Fatalf("invalid drain was installed: version %d", topo.Version)
	}
	settle(s, e, 20*time.Millisecond)
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}
