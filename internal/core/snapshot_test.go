package core

import (
	"reflect"
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/transport"
	"star/internal/workload/tpcc"
)

// fullMixTPCC is the standard-weighted four-transaction mix at a small
// scale, with Stock-Level's cross-partition variant enabled.
func fullMixTPCC(nparts, crossSL int) *tpcc.Workload {
	cfg := tpcc.Config{
		Warehouses:           nparts,
		Districts:            2,
		CustomersPerDistrict: 100,
		Items:                1000,
		CrossPctStockLevel:   crossSL,
		CrossPctOrderStatus:  crossSL,
	}
	cfg.SetFullMix()
	return tpcc.New(cfg)
}

func runScriptedResult(t *testing.T, cfg Config, txns int) (ScriptResult, *Engine) {
	t.Helper()
	s := cfg.RT.(*rt.Sim)
	run := StartScripted(cfg, Script{TxnsPerPartition: txns})
	s.Run(s.Now() + time.Hour)
	select {
	case res := <-run.Done():
		if res.Err != "" {
			t.Fatalf("scripted run failed: %s", res.Err)
		}
		return res, run.E
	default:
		t.Fatal("scripted run did not finish in virtual time")
		return ScriptResult{}, nil
	}
}

// TestSnapshotReadsServeStockLevelWithoutMasterRouting is the pinned
// transport-accounting check for the read-only snapshot path: a pure
// cross-partition Stock-Level workload with SnapshotReads on completes
// every transaction without sending a single master-routed (Data class)
// message — every read is served from the generating node's fence
// snapshot. The same run with SnapshotReads off routes every one of
// them to the master. Both runs commit every generated transaction and
// leave identical (read-only) database state.
func TestSnapshotReadsServeStockLevelWithoutMasterRouting(t *testing.T) {
	const (
		nodes, workers = 2, 2
		txns           = 30
		nparts         = nodes * workers
	)
	mk := func(snapshot bool) (ScriptResult, int64, map[string]float64) {
		s := rt.NewSim()
		defer s.Stop()
		wcfg := tpcc.Config{
			Warehouses:           nparts,
			Districts:            2,
			CustomersPerDistrict: 100,
			Items:                1000,
			StockLevelPct:        100, // Stock-Level only...
			CrossPctStockLevel:   100, // ...always cross-partition
		}
		res, e := runScriptedResult(t, Config{
			RT: s, Nodes: nodes, WorkersPerNode: workers,
			Workload: tpcc.New(wcfg), Seed: 7, SnapshotReads: snapshot,
		}, txns)
		return res, e.Net().Messages(transport.Data), e.Stats().Extra
	}

	on, onData, onExtra := mk(true)
	off, offData, offExtra := mk(false)

	want := int64(nparts * txns)
	if on.Committed != want || off.Committed != want {
		t.Fatalf("committed on=%d off=%d, want %d each", on.Committed, off.Committed, want)
	}
	if onData != 0 {
		t.Fatalf("SnapshotReads on: %d master-routed Data messages, want 0", onData)
	}
	if onExtra["snapshot_reads"] != float64(want) || onExtra["deferred"] != 0 {
		t.Fatalf("SnapshotReads on: snapshot_reads=%v deferred=%v, want %d/0",
			onExtra["snapshot_reads"], onExtra["deferred"], want)
	}
	if offData == 0 || offExtra["deferred"] != float64(want) || offExtra["snapshot_reads"] != 0 {
		t.Fatalf("SnapshotReads off: data=%d deferred=%v snapshot_reads=%v, want all master-routed",
			offData, offExtra["deferred"], offExtra["snapshot_reads"])
	}
	// Read-only workload: both modes leave the loaded state untouched.
	if !reflect.DeepEqual(on.Checksums, off.Checksums) {
		t.Fatal("snapshot and master-routed runs diverged on read-only state")
	}
}

// TestSnapshotReadsServeOrderStatusWithoutMasterRouting is the same
// transport-accounting pin for the new by-name read-only class: a pure
// cross-partition Order-Status workload (60% by last name, resolved
// through the customer_by_name index at execution time) with
// SnapshotReads on completes every transaction with zero master-routed
// Data messages; with SnapshotReads off every one of them defers to the
// master. Both runs commit everything and leave the read-only state
// untouched.
func TestSnapshotReadsServeOrderStatusWithoutMasterRouting(t *testing.T) {
	const (
		nodes, workers = 2, 2
		txns           = 30
		nparts         = nodes * workers
	)
	mk := func(snapshot bool) (ScriptResult, int64, map[string]float64) {
		s := rt.NewSim()
		defer s.Stop()
		wcfg := tpcc.Config{
			Warehouses:           nparts,
			Districts:            2,
			CustomersPerDistrict: 100,
			Items:                1000,
			OrderStatusPct:       100, // Order-Status only...
			CrossPctOrderStatus:  100, // ...always about a remote customer
		}
		res, e := runScriptedResult(t, Config{
			RT: s, Nodes: nodes, WorkersPerNode: workers,
			Workload: tpcc.New(wcfg), Seed: 9, SnapshotReads: snapshot,
		}, txns)
		return res, e.Net().Messages(transport.Data), e.Stats().Extra
	}

	on, onData, onExtra := mk(true)
	off, offData, offExtra := mk(false)

	want := int64(nparts * txns)
	if on.Committed != want || off.Committed != want {
		t.Fatalf("committed on=%d off=%d, want %d each", on.Committed, off.Committed, want)
	}
	if onData != 0 {
		t.Fatalf("SnapshotReads on: %d master-routed Data messages, want 0", onData)
	}
	if onExtra["snapshot_reads"] != float64(want) || onExtra["deferred"] != 0 {
		t.Fatalf("SnapshotReads on: snapshot_reads=%v deferred=%v, want %d/0",
			onExtra["snapshot_reads"], onExtra["deferred"], want)
	}
	if offData == 0 || offExtra["deferred"] != float64(want) || offExtra["snapshot_reads"] != 0 {
		t.Fatalf("SnapshotReads off: data=%d deferred=%v snapshot_reads=%v, want all master-routed",
			offData, offExtra["deferred"], offExtra["snapshot_reads"])
	}
	// Read-only workload: both modes leave the loaded state untouched.
	if !reflect.DeepEqual(on.Checksums, off.Checksums) {
		t.Fatal("snapshot and master-routed order-status runs diverged on read-only state")
	}
}

// TestScriptedFullMixDeterministic extends the PR 3 determinism pin to
// the full five-table-touching TPC-C mix (45/43/4/4 with deferred
// Delivery) and to the snapshot-read path: committed counts and
// post-fence checksums are a pure function of config+seed across
// repeat runs and across runtimes.
func TestScriptedFullMixDeterministic(t *testing.T) {
	const (
		nodes, workers = 2, 2
		txns           = 40
		seed           = 11
	)
	cfg := func(r rt.Runtime, snapshot bool) Config {
		return Config{
			RT: r, Nodes: nodes, WorkersPerNode: workers,
			Workload: fullMixTPCC(nodes*workers, 50), Seed: seed,
			SnapshotReads: snapshot,
		}
	}
	runSim := func(snapshot bool) ScriptResult {
		s := rt.NewSim()
		defer s.Stop()
		res, _ := runScriptedResult(t, cfg(s, snapshot), txns)
		return res
	}

	a := runSim(false)
	if a.Committed == 0 {
		t.Fatal("full-mix run committed nothing")
	}
	if b := runSim(false); !reflect.DeepEqual(a, b) {
		t.Fatalf("two full-mix sim runs differ:\n%+v\nvs\n%+v", a, b)
	}

	// Real runtime, same config → same result.
	r := rt.NewReal()
	run := StartScripted(cfg(r, false), Script{TxnsPerPartition: txns})
	var c ScriptResult
	select {
	case c = <-run.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("real-runtime full-mix run did not finish")
	}
	r.Stop()
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("sim and real full-mix runs differ:\n%+v\nvs\n%+v", a, c)
	}

	// Snapshot reads stay deterministic too, and commit the same count
	// (read-only transactions commit on either path).
	sa := runSim(true)
	if sb := runSim(true); !reflect.DeepEqual(sa, sb) {
		t.Fatal("snapshot-read full-mix runs are not deterministic")
	}
	if sa.Committed != a.Committed {
		t.Fatalf("snapshot path changed the committed count: %d vs %d", sa.Committed, a.Committed)
	}

	// Replicas agree on every shared partition.
	for _, res := range []ScriptResult{a, sa} {
		sums := map[int32]map[int]uint64{}
		for _, nc := range res.Checksums {
			for i, p := range nc.Parts {
				if sums[p] == nil {
					sums[p] = map[int]uint64{}
				}
				sums[p][nc.Node] = nc.Sums[i]
			}
		}
		for p, byNode := range sums {
			var first uint64
			firstSet := false
			for _, s := range byNode {
				if !firstSet {
					first, firstSet = s, true
				} else if s != first {
					t.Fatalf("partition %d: replicas disagree: %v", p, byNode)
				}
			}
		}
	}
}

// TestSnapshotCtxReadsFenceVersion pins the snapshot semantics at the
// record level inside a live worker: a record written in the in-flight
// epoch reads as its pre-epoch version through the snapshot context,
// and as the new version once the next epoch begins.
func TestSnapshotCtxReadsFenceVersion(t *testing.T) {
	_, w := newHotPathHarness(128)
	req := singleReq(w)
	w.execSerial(req, 2)
	if len(w.set.Writes) == 0 {
		t.Fatal("harness transaction wrote nothing")
	}
	we := w.set.Writes[0]
	rec := w.n.db.Table(we.Table).Get(we.Part, we.Key)
	cur, _, _ := rec.ReadStable(nil)
	curCopy := append([]byte(nil), cur...)

	w.sctx.reset(2)
	atFence, ok := w.sctx.Read(we.Table, we.Part, we.Key)
	if !ok {
		t.Fatal("fence read missed an existing record")
	}
	if reflect.DeepEqual(atFence, curCopy) {
		t.Fatal("epoch-2 snapshot read returned the in-flight epoch-2 write")
	}

	// At epoch 3 the epoch-2 write IS the fence state.
	w.sctx.reset(3)
	atNext, ok := w.sctx.Read(we.Table, we.Part, we.Key)
	if !ok || !reflect.DeepEqual(atNext, curCopy) {
		t.Fatalf("epoch-3 snapshot read did not see the epoch-2 commit (ok=%v)", ok)
	}
}
