package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"star/internal/metrics"
	"star/internal/replication"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/wal"
)

// Engine is one STAR cluster: f full replicas, k partial replicas, a
// phase-switch coordinator, and the network between them.
type Engine struct {
	cfg   Config
	net   transport.Transport
	nodes []*node
	coord *coordinator

	committed    metrics.Counter
	aborted      metrics.Counter // concurrency-conflict retries
	userAborts   metrics.Counter
	deferred     metrics.Counter
	rejected     metrics.Counter // deferred requests dropped by admission control
	snapReads    metrics.Counter // read-only txns served from the local fence snapshot
	snapFallback metrics.Counter // read-only txns deferred anyway (partitions not held)
	latency      *metrics.Hist
	logBytes     atomic.Int64

	// reg is the live observability plane: every counter above plus the
	// metrics below register into it by name, AdminStats serves its
	// snapshot from any node, and star-node -http renders it at /metrics.
	// Hot paths keep their direct pointers/fields; the registry is only
	// walked at snapshot time.
	reg *metrics.Registry
	// partCommits counts committed transactions per partition (indexed by
	// partition id, incremented by the local workers' commit paths) — the
	// live skew signal the rebalance roadmap item consumes.
	partCommits []metrics.Gauge
	shedClient  metrics.Counter // front-door admission sheds (StatusBusy)
	checkpoints metrics.Counter // fuzzy checkpoints written
	// Coordinator-fed metrics (zero on processes not hosting it).
	epochsC      metrics.Counter // committed epochs
	phasePart    metrics.Counter // partitioned phases run
	phaseSingle  metrics.Counter // single-master phases run
	commitPart   metrics.Counter // txns committed in partitioned phases
	commitSingle metrics.Counter // txns committed in single-master phases
	fenceHist    *metrics.Hist   // fence duration per committed epoch
	drainHist    *metrics.Hist   // router wall time spent in fence drains

	logFiles   []string
	mu         sync.Mutex
	recoverReq []int      // nodes waiting to rejoin at the next fence
	adminQ     []AdminReq // engine-queued admin ops awaiting the next fence
	halted     atomic.Bool
	haltReason atomic.Value // string
	frozen     atomic.Bool

	// topo is the installed cluster topology. The coordinator commits
	// new versions between fences and every local node installs the
	// broadcast copy, so all stores within one process are equivalent;
	// readers (replication targets, checksum serving, consistency
	// checks) take whatever the latest install was.
	topo atomic.Pointer[Topology]

	// drainedCh reports node ids this process hosts that left the
	// member set (AdminDrain): star-node -serve exits cleanly on it.
	drainedCh chan int

	// scripted suppresses the time-driven coordinator (StartScripted
	// drives the phases instead); haltCh delivers the scripted run's
	// cluster-wide halt to node-only processes.
	scripted bool
	haltCh   rt.Chan
}

// New builds a STAR cluster: databases are created and loaded, processes
// are spawned, and the phase coordinator starts immediately.
func New(cfg Config) *Engine {
	e := build(cfg)
	e.start()
	return e
}

// build constructs the cluster without spawning any process; New starts
// it, and the hot-path benchmarks drive workers synchronously instead.
func build(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 2 {
		panic("core: need at least 2 nodes (one full replica, one partial)")
	}
	e := &Engine{cfg: cfg, latency: &metrics.Hist{}}
	e.buildRegistry()
	e.haltCh = cfg.RT.NewChan(1)
	e.drainedCh = make(chan int, cfg.Nodes)
	e.topo.Store(cfg.Topology())
	installSpinWait(cfg.RT)
	if cfg.Transport != nil {
		e.net = cfg.Transport
	} else {
		e.net = simnet.New(cfg.RT, cfg.Net)
	}

	hostsAll := cfg.LocalNodes == nil
	local := make(map[int]bool, len(cfg.LocalNodes))
	for _, id := range cfg.LocalNodes {
		local[id] = true
	}
	topo := e.topo.Load()
	masters := topo.Masters
	for i := 0; i < cfg.Nodes; i++ {
		if !hostsAll && !local[i] {
			// Remote node: hosted by another process, reachable only
			// through the transport.
			e.nodes = append(e.nodes, nil)
			continue
		}
		// Residency comes from the boot topology: full members hold
		// everything, partial members their master/secondary stripes, and
		// dark slots (capacity provisioned for a later join) nothing —
		// the workload loader skips partitions a node does not hold.
		holds := topo.HoldsMask(i)
		db := cfg.Workload.BuildDB(cfg.NumPartitions(), holds)
		cfg.Workload.Load(db)
		db.CommitEpoch()
		n := &node{
			e:       e,
			id:      i,
			db:      db,
			tracker: replication.NewTracker(cfg.Nodes),
			masters: append([]int32(nil), masters...),
			failed:  make([]bool, cfg.Nodes),
		}
		n.replLag = e.reg.Gauge(fmt.Sprintf(`repl_lag{node="%d"}`, i))
		n.masterQ = cfg.RT.NewChan(1 << 16)
		// Until the first phase command arrives, the designated master is
		// the first full member (the coordinator's own default).
		n.curMaster.Store(int32(firstFullMember(topo)))
		n.rebuildReplTargets()
		n.workers = make([]*worker, cfg.WorkersPerNode)
		for wi := range n.workers {
			n.workers[wi] = newWorker(n, wi)
		}
		n.gate = newClientGate(n)
		e.nodes = append(e.nodes, n)
	}
	if hostsAll || cfg.LocalCoordinator {
		e.coord = newCoordinator(e)
	}
	if cfg.LogDir != "" {
		e.openLogs()
	}
	return e
}

// buildRegistry publishes the engine's metric fields into the named
// registry. Hot paths keep incrementing their direct fields — the
// registry is only walked at snapshot time (AdminStats, /metrics), so
// registration costs the steady state nothing.
func (e *Engine) buildRegistry() {
	r := metrics.NewRegistry()
	e.reg = r
	r.RegisterCounter("committed", &e.committed)
	r.RegisterCounter("aborted", &e.aborted)
	r.RegisterCounter("user_aborts", &e.userAborts)
	r.RegisterCounter("deferred", &e.deferred)
	r.RegisterCounter("rejected", &e.rejected)
	r.RegisterCounter("snapshot_reads", &e.snapReads)
	r.RegisterCounter("snapshot_fallbacks", &e.snapFallback)
	r.RegisterCounter("shed_frontdoor", &e.shedClient)
	r.RegisterCounter("checkpoints", &e.checkpoints)
	r.RegisterCounter("epochs", &e.epochsC)
	r.RegisterCounter("phases_partitioned", &e.phasePart)
	r.RegisterCounter("phases_single_master", &e.phaseSingle)
	r.RegisterCounter("committed_partitioned", &e.commitPart)
	r.RegisterCounter("committed_single_master", &e.commitSingle)
	r.RegisterHist("latency", e.latency)
	e.fenceHist = r.Hist("fence")
	e.drainHist = r.Hist("drain_stall")
	e.partCommits = make([]metrics.Gauge, e.cfg.NumPartitions())
	for p := range e.partCommits {
		r.RegisterGauge(fmt.Sprintf(`partition_commits{partition="%d"}`, p), &e.partCommits[p])
	}
}

// StatsSnapshot captures the live metric registry, folding in process
// quantities tracked outside it: log bytes, the transport's byte and
// message accounting, and — when the transport injects faults
// (star-node -faults, chaos soaks) — the cumulative injection counters
// under a fault_ prefix. This is what AdminStats serves and what the
// -http /metrics endpoint renders.
func (e *Engine) StatsSnapshot() metrics.Snapshot {
	e.reg.Gauge("log_bytes").Set(e.logBytes.Load())
	e.reg.Gauge("net_bytes").Set(e.net.TotalBytes())
	e.reg.Gauge("repl_bytes").Set(e.net.Bytes(transport.Replication))
	e.reg.Gauge("repl_msgs").Set(e.net.Messages(transport.Replication))
	snap := e.reg.Snapshot()
	if fi, ok := e.net.(faultInjector); ok {
		for k, v := range fi.Injected() {
			if snap.Counters == nil {
				snap.Counters = map[string]int64{}
			}
			snap.Counters["fault_"+k] = v
		}
	}
	return snap
}

// openLogs creates the per-thread recovery-log files (§4.5.1).
func (e *Engine) openLogs() {
	mustCreate := func(path string) *wal.Logger {
		l, err := wal.Create(path)
		if err != nil {
			panic("core: open log: " + err.Error())
		}
		e.logFiles = append(e.logFiles, path)
		return l
	}
	for _, n := range e.nodes {
		if n == nil {
			continue
		}
		n.routerLog = mustCreate(filepath.Join(e.cfg.LogDir, fmt.Sprintf("node%d-router.log", n.id)))
		for a := 0; a < e.cfg.WorkersPerNode; a++ {
			n.applierLogs = append(n.applierLogs,
				mustCreate(filepath.Join(e.cfg.LogDir, fmt.Sprintf("node%d-applier%d.log", n.id, a))))
		}
		for _, w := range n.workers {
			w.logger = mustCreate(filepath.Join(e.cfg.LogDir, fmt.Sprintf("node%d-worker%d.log", n.id, w.idx)))
		}
	}
}

// LogFiles returns the live recovery-log paths written in LogDir mode
// (segments already covered by a checkpoint are truncated away). Node
// i's database can be rebuilt with wal.Recover from the subset of files
// whose name starts with "node<i>-" (a full replica's set covers the
// whole database).
func (e *Engine) LogFiles(node int) []string {
	var out []string
	prefix := fmt.Sprintf("node%d-", node)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, f := range e.logFiles {
		if strings.HasPrefix(filepath.Base(f), prefix) {
			out = append(out, f)
		}
	}
	return out
}

// CloseLogs flushes and closes the recovery logs (call after the runtime
// has stopped).
func (e *Engine) CloseLogs() error {
	var first error
	for _, n := range e.nodes {
		if n == nil {
			continue
		}
		logs := append([]*wal.Logger{n.routerLog}, n.applierLogs...)
		for _, w := range n.workers {
			logs = append(logs, w.logger)
		}
		for _, l := range logs {
			if l == nil {
				continue
			}
			if err := l.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (e *Engine) start() {
	for _, n := range e.nodes {
		if n == nil {
			continue
		}
		n := n
		e.cfg.RT.Go(fmt.Sprintf("star-node-%d", n.id), n.routerLoop)
		// Parallel replication replay, one applier per worker thread
		// (SiloR-style parallel value replay, §8 Recoverable Systems).
		for a := 0; a < e.cfg.WorkersPerNode; a++ {
			a := a
			ch := e.cfg.RT.NewChan(1 << 14)
			n.appliers = append(n.appliers, ch)
			e.cfg.RT.Go(fmt.Sprintf("star-applier-%d-%d", n.id, a), func() { n.applierLoop(a, ch) })
		}
		for _, w := range n.workers {
			w := w
			e.cfg.RT.Go(fmt.Sprintf("star-worker-%d-%d", n.id, w.idx), w.loop)
		}
	}
	if e.coord != nil && !e.scripted {
		e.cfg.RT.Go("star-coordinator", e.coord.loop)
	}
	if e.cfg.Checkpoint && e.cfg.LogDir != "" {
		for _, n := range e.nodes {
			if n == nil {
				continue
			}
			n := n
			e.cfg.RT.Go(fmt.Sprintf("star-ckpt-%d", n.id), func() { e.checkpointLoop(n) })
		}
	}
}

// checkpointLoop periodically writes a fuzzy checkpoint of the node's
// database (§4.5.1: "a checkpoint does not need to be a consistent
// snapshot ... on recovery, STAR uses the logs since the checkpoint to
// correct the inconsistent snapshot with the Thomas write rule") and
// truncates the recovery log behind it. Each round first rotates every
// logger onto a fresh segment, then checkpoints; a segment retired one
// full round earlier had all its writes applied to the database long
// before this round's scan began, so the new checkpoint covers it and
// the file — like the superseded checkpoint — is deleted. Restart
// replay is thereby bounded by checkpoint cadence, not run length.
func (e *Engine) checkpointLoop(n *node) {
	seq := 0
	var retired []string // segments closed at the previous round
	for {
		e.cfg.RT.Sleep(e.cfg.CheckpointEvery)
		epoch := n.epoch.Load()
		closed := e.rotateLogs(n, seq)
		path := filepath.Join(e.cfg.LogDir, fmt.Sprintf("node%d-ckpt%d", n.id, seq))
		if _, err := wal.WriteCheckpoint(n.db, path, epoch); err != nil {
			panic("core: checkpoint: " + err.Error())
		}
		e.checkpoints.Inc()
		n.mu.Lock()
		prevCkpt := n.lastCheckpoint
		n.lastCheckpoint = path
		n.mu.Unlock()
		e.dropLogFiles(retired)
		if prevCkpt != "" {
			os.Remove(prevCkpt)
		}
		retired = closed
		seq++
	}
}

// rotateLogs retires every recovery-log segment of n onto a fresh file
// and returns the closed segments' paths.
func (e *Engine) rotateLogs(n *node, seq int) []string {
	var closed []string
	rotate := func(l *wal.Logger) {
		if l == nil {
			return
		}
		old := l.Path()
		base := old
		if i := strings.LastIndex(base, ".log."); i >= 0 {
			base = base[:i+4]
		}
		next := fmt.Sprintf("%s.%d", base, seq+1)
		if err := l.Rotate(next); err != nil {
			panic("core: rotate log: " + err.Error())
		}
		closed = append(closed, old)
		e.mu.Lock()
		e.logFiles = append(e.logFiles, next)
		e.mu.Unlock()
	}
	rotate(n.routerLog)
	for _, l := range n.applierLogs {
		rotate(l)
	}
	for _, w := range n.workers {
		rotate(w.logger)
	}
	return closed
}

// dropLogFiles deletes retired log segments and forgets them.
func (e *Engine) dropLogFiles(paths []string) {
	if len(paths) == 0 {
		return
	}
	gone := make(map[string]bool, len(paths))
	for _, p := range paths {
		gone[p] = true
		os.Remove(p)
	}
	e.mu.Lock()
	kept := e.logFiles[:0]
	for _, f := range e.logFiles {
		if !gone[f] {
			kept = append(kept, f)
		}
	}
	e.logFiles = kept
	e.mu.Unlock()
}

// LastCheckpoint returns the most recent checkpoint file written for a
// node ("" when none yet).
func (e *Engine) LastCheckpoint(node int) string {
	n := e.nodes[node]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastCheckpoint
}

// installSpinWait redirects record-latch spinning to a virtual-time
// sleep on the simulation runtime (see storage.SpinWait).
func installSpinWait(r rt.Runtime) {
	if _, isSim := r.(*rt.Sim); isSim {
		storage.SpinWait = func() { r.Sleep(200 * time.Nanosecond) }
	}
}

// Net exposes the cluster network (tests and benches read its byte
// accounting; failure tests flip link state through the engine methods).
func (e *Engine) Net() transport.Transport { return e.net }

// Node returns node i's database (tests check replica consistency).
func (e *Engine) Node(i int) *node { return e.nodes[i] }

// Gate returns node i's client-session gate (the star-client front
// door's in-process half); nil for nodes this process does not host.
func (e *Engine) Gate(i int) *ClientGate {
	if n := e.nodes[i]; n != nil {
		return n.gate
	}
	return nil
}

// DB returns node i's database copy (read-only inspection).
func (e *Engine) DB(i int) *storage.DB { return e.nodes[i].db }

// Halted reports whether the cluster stopped processing (case 4: no
// complete replica remains).
func (e *Engine) Halted() (bool, string) {
	r, _ := e.haltReason.Load().(string)
	return e.halted.Load(), r
}

// FailNode simulates a fail-stop crash of a node: its traffic is dropped
// and the coordinator will detect it at the next replication fence.
func (e *Engine) FailNode(id int) { e.net.SetDown(id, true) }

// FailedNodes returns the coordinator's current view of evicted nodes
// (nil when this process does not host the coordinator). Chaos/soak
// harnesses poll it after healing injected faults to schedule rejoins;
// read it between run slices on the simulated runtime.
func (e *Engine) FailedNodes() []int {
	if e.coord == nil {
		return nil
	}
	return e.coord.failedList()
}

// RecoverNode schedules a failed node's rejoin: at the next fence the
// coordinator restores connectivity, the node copies partition state
// from healthy holders (Thomas write rule), and it rejoins the cluster.
func (e *Engine) RecoverNode(id int) {
	e.mu.Lock()
	e.recoverReq = append(e.recoverReq, id)
	e.mu.Unlock()
}

func (e *Engine) takeRecoverReqs() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.recoverReq
	e.recoverReq = nil
	return r
}

// Stats snapshots the run so far.
func (e *Engine) Stats() metrics.Stats {
	st := metrics.Stats{
		Engine:           e.name(),
		Duration:         e.cfg.RT.Now(),
		Committed:        e.committed.Load(),
		Aborted:          e.aborted.Load() + e.userAborts.Load(),
		Latency:          e.latency,
		ReplicationBytes: e.net.Bytes(transport.Replication),
		ReplicationMsgs:  e.net.Messages(transport.Replication),
		NetworkBytes:     e.net.TotalBytes(),
		LogBytes:         e.logBytes.Load(),
		Extra:            map[string]float64{},
	}
	st.Extra["user_aborts"] = float64(e.userAborts.Load())
	st.Extra["deferred"] = float64(e.deferred.Load())
	st.Extra["rejected"] = float64(e.rejected.Load())
	st.Extra["snapshot_reads"] = float64(e.snapReads.Load())
	st.Extra["snapshot_fallbacks"] = float64(e.snapFallback.Load())
	if e.coord != nil {
		st.Extra["fence_share"] = e.coord.fenceShare()
		tauP, tauS := e.coord.taus()
		st.Extra["tau_p_ms"] = tauP.Seconds() * 1000
		st.Extra["tau_s_ms"] = tauS.Seconds() * 1000
	}
	return st
}

func (e *Engine) name() string {
	switch {
	case e.cfg.SyncRepl:
		return "SYNC STAR"
	case e.cfg.HybridRepl:
		return "STAR w/ Hybrid Rep."
	default:
		return "STAR"
	}
}

// Freeze pauses workload generation (phase switching continues), letting
// in-flight replication settle; tests use it to compare replicas at a
// quiesced boundary. Unfreeze resumes.
func (e *Engine) Freeze() { e.frozen.Store(true) }

// Unfreeze resumes workload generation after Freeze.
func (e *Engine) Unfreeze() { e.frozen.Store(false) }

// Topology returns the currently installed cluster topology.
func (e *Engine) Topology() *Topology { return e.topo.Load() }

// Drained delivers node ids hosted by this process that left the
// member set via AdminDrain; star-node -serve exits cleanly on it.
func (e *Engine) Drained() <-chan int { return e.drainedCh }

// noteDrained reports a locally hosted node's exit from the member set.
// Non-blocking: the channel is sized for every hostable node, and a
// repeat drain of the same id (rejoin then drain again) may be dropped
// if nobody consumed the first signal — the consumer exits on one.
func (e *Engine) noteDrained(id int) {
	select {
	case e.drainedCh <- id:
	default:
	}
}

// RequestJoin queues an engine-internal membership change: admit node
// id at the next fence. Used by in-process tests and harnesses; remote
// processes submit AdminJoin through a front door or the transport.
func (e *Engine) RequestJoin(id int) { e.queueAdmin(AdminJoin, id) }

// RequestDrain queues node id's removal from the member set at the
// next fence (its partitions migrate to the remaining members first).
func (e *Engine) RequestDrain(id int) { e.queueAdmin(AdminDrain, id) }

// RequestRebalance queues a reinstall of the canonical mastership
// layout over the current member set at the next fence.
func (e *Engine) RequestRebalance() { e.queueAdmin(AdminRebalance, -1) }

func (e *Engine) queueAdmin(op AdminOp, node int) {
	e.mu.Lock()
	e.adminQ = append(e.adminQ, AdminReq{V: AdminProtoVersion, Op: op, Node: node})
	e.mu.Unlock()
}

func (e *Engine) takeAdminReqs() []AdminReq {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.adminQ
	e.adminQ = nil
	return r
}

// CheckReplicaConsistency verifies that every live holder of every
// partition agrees on its checksum. Meaningful only after Freeze has
// settled (a couple of iterations). Failed nodes are skipped.
func (e *Engine) CheckReplicaConsistency() error {
	topo := e.topo.Load()
	for p := 0; p < e.cfg.NumPartitions(); p++ {
		base := uint64(0)
		baseNode := -1
		for _, h := range topo.HoldersOf(p) {
			if e.nodes[h] == nil || e.net.IsDown(h) {
				continue
			}
			sum := e.nodes[h].db.PartitionChecksum(p)
			if baseNode == -1 {
				base, baseNode = sum, h
				continue
			}
			if sum != base {
				return fmt.Errorf("partition %d: node %d checksum %x != node %d checksum %x",
					p, h, sum, baseNode, base)
			}
		}
	}
	return nil
}
