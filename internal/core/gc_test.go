package core

import (
	"flag"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/storage"
	"star/internal/wal"
	"star/internal/workload/tpcc"
)

// gcSeed reruns the trim soak on a specific seed — the CI nightly
// gc-soak job sweeps a matrix with
//
//	go test ./internal/core -run TrimSoak -v -args -gc.seed=N
var gcSeed = flag.Int64("gc.seed", 21, "seed for the full-mix trim soak")

// trimMixWL is a full TPC-C mix whose Delivery share outpaces NewOrder
// per district (so the undelivered backlog drains) and whose trimmer
// reclaims delivered orders and history aggressively enough to keep the
// working set flat.
func trimMixWL(nparts int) *tpcc.Workload {
	return tpcc.New(tpcc.Config{
		Warehouses:           nparts,
		Districts:            2,
		CustomersPerDistrict: 32,
		Items:                64,
		DeliveryPct:          30,
		StockLevelPct:        4,
		OrderStatusPct:       4,
		TrimPct:              10,
		TrimRetain:           4,
	})
}

// countPresent counts present rows of a table across all partitions.
func countPresent(db *storage.DB, tb storage.TableID, nparts int) int {
	n := 0
	for p := 0; p < nparts; p++ {
		db.Table(tb).Partition(p).Range(func(storage.Key, uint64, []byte) bool {
			n++
			return true
		})
	}
	return n
}

func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestSTARFullMixTrimSoakFlatAndRecoverable is the sustained-load
// acceptance run for the delete/GC path: a full-mix soak with Delivery
// deletes, trimming and WAL checkpoint truncation must (a) keep the
// live row counts and the Go heap flat instead of growing with run
// length, (b) keep the delete-side TPC-C invariants intact on the
// frozen state, (c) bound the live recovery-log set (segments covered
// by a checkpoint are truncated away), and (d) rebuild a byte-identical
// database from the latest checkpoint plus only the surviving log
// suffix.
func TestSTARFullMixTrimSoakFlatAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	s := rt.NewSim()
	const nparts = 4
	wl := trimMixWL(nparts)
	e := New(Config{
		RT:              s,
		Nodes:           2,
		WorkersPerNode:  2,
		Workload:        wl,
		Iteration:       2 * time.Millisecond,
		LogDir:          dir,
		Checkpoint:      true,
		CheckpointEvery: 8 * time.Millisecond,
		Seed:            *gcSeed,
	})

	// Warm up until the trimmer has drained the initial backlog and the
	// working set is at steady state, then require the second (longer)
	// half of the soak to add almost nothing: neither rows nor heap may
	// track run length. Unbounded growth roughly triples the row count
	// over the second leg; steady-state jitter does not.
	s.Run(250 * time.Millisecond)
	rowsMid := countPresent(e.DB(0), tpcc.TOrder, nparts) +
		countPresent(e.DB(0), tpcc.TNewOrder, nparts) +
		countPresent(e.DB(0), tpcc.THistory, nparts)
	heapMid := heapAlloc()
	s.Run(s.Now() + 500*time.Millisecond)
	if halted, reason := e.Halted(); halted {
		t.Fatalf("soak halted: %s", reason)
	}
	rowsEnd := countPresent(e.DB(0), tpcc.TOrder, nparts) +
		countPresent(e.DB(0), tpcc.TNewOrder, nparts) +
		countPresent(e.DB(0), tpcc.THistory, nparts)
	heapEnd := heapAlloc()
	if rowsEnd > rowsMid*2+128 {
		t.Fatalf("live rows still growing under trim: %d at 250ms, %d at 750ms", rowsMid, rowsEnd)
	}
	if heapEnd > heapMid+heapMid/2+(16<<20) {
		t.Fatalf("heap not flat under sustained load: %dMB at 250ms, %dMB at 750ms",
			heapMid>>20, heapEnd>>20)
	}

	e.Freeze()
	s.Run(s.Now() + 30*time.Millisecond)
	s.Stop()
	if err := e.CloseLogs(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits")
	}
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}

	// Delete-side invariants on the frozen full replica.
	db := e.DB(0)
	sch := db.Table(tpcc.TDistrict).Schema()
	delivered, trimmed := false, false
	for wid := 0; wid < nparts; wid++ {
		for did := 0; did < 2; did++ {
			drow, _, ok := db.Table(tpcc.TDistrict).Get(wid, tpcc.DKey(wid, did)).ReadStable(nil)
			if !ok {
				t.Fatal("district missing")
			}
			next := sch.GetUint64(drow, tpcc.DNextOID)
			del := sch.GetUint64(drow, tpcc.DNextDelOID)
			trim := sch.GetUint64(drow, tpcc.DTrimOID)
			delivered = delivered || del > 1
			trimmed = trimmed || trim > 1
			for oid := uint64(1); oid < next; oid++ {
				rec := db.Table(tpcc.TNewOrder).Get(wid, tpcc.OKey(wid, did, int(oid)))
				no := rec != nil
				if no {
					_, _, no = rec.ReadStable(nil)
				}
				if oid < del && no {
					t.Fatalf("w%dd%d oid %d: NEW-ORDER survived delivery (cursor=%d)", wid, did, oid, del)
				}
				if oid >= del && !no {
					t.Fatalf("w%dd%d oid %d: undelivered NEW-ORDER missing (cursor=%d)", wid, did, oid, del)
				}
				orec := db.Table(tpcc.TOrder).Get(wid, tpcc.OKey(wid, did, int(oid)))
				ord := orec != nil
				if ord {
					_, _, ord = orec.ReadStable(nil)
				}
				if oid < trim && ord {
					t.Fatalf("w%dd%d oid %d: ORDER survived the trimmer (cursor=%d)", wid, did, oid, trim)
				}
				if oid >= trim && !ord {
					t.Fatalf("w%dd%d oid %d: live ORDER missing (trim cursor=%d)", wid, did, oid, trim)
				}
			}
		}
	}
	if !delivered || !trimmed {
		t.Fatalf("soak exercised too little: delivered=%v trimmed=%v", delivered, trimmed)
	}

	// Truncation: ~50 checkpoint rounds rotated every logger, so without
	// segment deletion node 0 would hold hundreds of files. The live set
	// must be a couple of generations per logger, and rotated names must
	// actually appear (the suffix proves rotation happened).
	logs := e.LogFiles(0)
	if len(logs) == 0 {
		t.Fatal("no live log files")
	}
	if len(logs) > 30 {
		t.Fatalf("%d live log segments: truncation is not dropping covered segments", len(logs))
	}
	rotated := false
	var liveBytes int64
	for _, p := range logs {
		if strings.Contains(p, ".log.") {
			rotated = true
		}
		if fi, err := os.Stat(p); err == nil {
			liveBytes += fi.Size()
		}
	}
	if !rotated {
		t.Fatal("no rotated segment in the live set; checkpointer never rotated")
	}
	if liveBytes == 0 || liveBytes >= st.LogBytes {
		t.Fatalf("live log bytes %d vs %d appended: replay is not bounded", liveBytes, st.LogBytes)
	}

	// Restart: checkpoint + surviving suffix onto an empty DB must equal
	// the live state byte for byte — deletes, tombstone reclamation and
	// index maintenance included.
	ckpt := e.LastCheckpoint(0)
	if ckpt == "" {
		t.Fatal("checkpointer never ran")
	}
	recovered := wl.BuildDB(nparts, nil)
	if _, _, err := wal.Recover(recovered, ckpt, logs); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < nparts; p++ {
		if got, want := recovered.PartitionChecksum(p), db.PartitionChecksum(p); got != want {
			t.Fatalf("partition %d: recovered %x != live %x", p, got, want)
		}
	}
}
