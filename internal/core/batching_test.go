package core

import (
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/transport"
)

// The replication fence reconciles per-entry counts (§4.3) while the
// wire carries coalesced msgReplBatch envelopes: after a quiesced
// boundary, every node must have applied exactly the entries each
// source claims to have sent it, and the envelope count must be far
// below the entry count (otherwise batching is inert). Pinned to the
// fixed flush policy: the adaptive default deliberately shrinks
// low-volume streams' envelopes to overlap application with the phase.
func TestFenceEntryCountsReconcileUnderBatching(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 20, func(c *Config) { c.FlushPolicy = FlushFixed })
	s.Run(60 * time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	settle(s, e, 30*time.Millisecond)

	var totalEntries int64
	for _, src := range e.nodes {
		sent := src.tracker.SentVector()
		for dst, want := range sent {
			totalEntries += want
			if got := e.nodes[dst].tracker.Applied(src.id); got != want {
				t.Fatalf("node %d applied %d entries from node %d, but source sent %d",
					dst, got, src.id, want)
			}
		}
	}
	if totalEntries == 0 {
		t.Fatal("no replication entries shipped")
	}
	msgs := e.net.Messages(transport.Replication)
	if msgs == 0 {
		t.Fatal("no replication envelopes")
	}
	// Byte-bounded batching must coalesce entries well beyond the seed's
	// 16-entry flushing even though fence-tail flushing deliberately
	// ships a few small envelopes at each phase boundary to shorten the
	// drain (bulk envelopes alone average 2x higher).
	if perMsg := totalEntries / msgs; perMsg < 20 {
		t.Fatalf("only %d entries per envelope (%d entries in %d messages); delta batching inert",
			perMsg, totalEntries, msgs)
	}
	s.Stop()
}

// The adaptive default must also reconcile exactly at the fence, and
// still coalesce entries into multi-entry envelopes (the thresholds move
// per destination, the per-entry accounting must not).
func TestFenceReconcilesUnderAdaptiveFlushing(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 20, nil) // FlushAdaptive is the default
	s.Run(60 * time.Millisecond)
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	settle(s, e, 30*time.Millisecond)
	var totalEntries int64
	for _, src := range e.nodes {
		for dst, want := range src.tracker.SentVector() {
			totalEntries += want
			if got := e.nodes[dst].tracker.Applied(src.id); got != want {
				t.Fatalf("node %d applied %d/%d entries from node %d", dst, got, want, src.id)
			}
		}
	}
	msgs := e.net.Messages(transport.Replication)
	if msgs == 0 || totalEntries == 0 {
		t.Fatal("no replication traffic")
	}
	if perMsg := totalEntries / msgs; perMsg < 4 {
		t.Fatalf("only %d entries per envelope under adaptive flushing; batching inert", perMsg)
	}
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

// An entry-bounded stream (the seed's configuration) must still
// reconcile — the fence accounting is per entry regardless of packing.
func TestFenceReconcilesWithEntryBoundedFlushing(t *testing.T) {
	s := rt.NewSim()
	e := ycsbCluster(t, s, 3, 2, 10, func(c *Config) {
		c.FlushEvery = 16
		c.FlushBytes = -1
	})
	s.Run(40 * time.Millisecond)
	settle(s, e, 20*time.Millisecond)
	for _, src := range e.nodes {
		for dst, want := range src.tracker.SentVector() {
			if got := e.nodes[dst].tracker.Applied(src.id); got != want {
				t.Fatalf("node %d applied %d/%d entries from node %d", dst, got, want, src.id)
			}
		}
	}
	if err := e.CheckReplicaConsistency(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

// Soak: interleave partial-replica failures and rejoins with frozen
// consistency checks on a seeded simulation. Batched envelopes in
// flight at a crash must never leave replicas diverged after the
// revert/recovery machinery runs.
func TestSTARSoakFailRecoverConsistencyUnderBatching(t *testing.T) {
	cycles := 3
	if testing.Short() {
		cycles = 1
	}
	s := rt.NewSim()
	e := ycsbCluster(t, s, 4, 2, 15, func(c *Config) { c.Seed = 99 })
	s.Run(20 * time.Millisecond)
	for cycle := 0; cycle < cycles; cycle++ {
		victim := 1 + (cycle % 3) // partial replicas only; node 0 is the full copy
		e.FailNode(victim)
		s.Run(s.Now() + 80*time.Millisecond)
		if halted, reason := e.Halted(); halted {
			t.Fatalf("cycle %d: cluster halted after partial failure: %s", cycle, reason)
		}
		before := e.Stats().Committed
		e.RecoverNode(victim)
		s.Run(s.Now() + 120*time.Millisecond)
		if e.Stats().Committed <= before {
			t.Fatalf("cycle %d: no progress after node %d rejoined", cycle, victim)
		}
		settle(s, e, 40*time.Millisecond)
		if err := e.CheckReplicaConsistency(); err != nil {
			t.Fatalf("cycle %d: replicas diverged after fail/recover of node %d: %v",
				cycle, victim, err)
		}
		e.Unfreeze()
	}
	s.Stop()
}
