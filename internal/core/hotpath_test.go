package core

import (
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/txn"
	"star/internal/workload/ycsb"
)

// newHotPathHarness builds an unstarted 2-node cluster on the real
// runtime so a test can drive node 0's worker 0 synchronously: no
// coordinator, no phase switching — just the per-transaction execution
// path the workers run in steady state. Node 1 is marked down so flushed
// envelopes are dropped at the network instead of piling up in an
// undrained inbox (the send path is still fully exercised).
func newHotPathHarness(records int) (*Engine, *worker) {
	wl := ycsb.New(ycsb.Config{
		Partitions:          2, // Nodes × WorkersPerNode
		RecordsPerPartition: records,
	})
	e := build(Config{
		RT:             rt.NewReal(),
		Nodes:          2,
		FullReplicas:   1,
		WorkersPerNode: 1,
		Workload:       wl,
		Seed:           1,
		Net:            simnet.Config{Nodes: 3},
	})
	e.net.SetDown(1, true)
	w := e.nodes[0].workers[0]
	w.strm.SetEpoch(2)
	return e, w
}

// singleReq pre-builds a single-partition request on partition 0 (the
// partition node 0's worker masters).
func singleReq(w *worker) *txn.Request {
	return txn.NewRequest(w.gen.Single(0), 0)
}

// TestExecSerialZeroAllocs pins the tentpole claim: a steady-state
// single-partition commit (no insert) allocates nothing — not in the
// context, the read/write set, the commit, the replication append, or
// the monitor bookkeeping. Request generation is measured separately
// (it builds a fresh procedure by design).
func TestExecSerialZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	_, w := newHotPathHarness(1024)
	req := singleReq(w)
	w.execSerial(req, 2) // warm the scratch buffers
	allocs := testing.AllocsPerRun(10_000, func() {
		w.execSerial(req, 2)
	})
	if allocs != 0 {
		t.Fatalf("execSerial allocates %v per committed transaction, want 0", allocs)
	}
	if w.committed == 0 {
		t.Fatal("no commits — the measurement exercised nothing")
	}
}

// TestExecOCCAllocBudget pins the single-master path: with the write-set
// sort, validation, apply and replication all reusing worker scratch, a
// steady-state OCC commit stays within a one-allocation budget
// (AllocsPerRun floors the average, so this allows only stray amortised
// growth, not per-commit allocation).
func TestExecOCCAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	_, w := newHotPathHarness(1024)
	cmd := msgStartPhase{Phase: SingleMaster, Epoch: 2, Master: 0, Deadline: time.Hour}
	reqs := make([]*txn.Request, 64)
	for i := range reqs {
		reqs[i] = txn.NewRequest(w.gen.Cross(i%2), 0)
	}
	for _, r := range reqs {
		w.execOCC(r, cmd)
	}
	i := 0
	allocs := testing.AllocsPerRun(10_000, func() {
		w.execOCC(reqs[i%len(reqs)], cmd)
		i++
	})
	if allocs > 1 {
		t.Fatalf("execOCC allocates %v per committed transaction, budget 1", allocs)
	}
}

// BenchmarkExecSerial measures the partitioned-phase commit path:
// generate-free, steady-state, single-partition YCSB transactions
// against the real runtime. Run with -benchmem; the acceptance bar is
// 0 allocs/op.
func BenchmarkExecSerial(b *testing.B) {
	_, w := newHotPathHarness(8192)
	reqs := make([]*txn.Request, 128)
	for i := range reqs {
		reqs[i] = singleReq(w)
	}
	for _, r := range reqs {
		w.execSerial(r, 2) // warm scratch + first-touch dirty marks
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.execSerial(reqs[i%len(reqs)], 2)
		if i%4096 == 4095 {
			w.strm.Flush() // bounded buffering; envelopes drop at the downed link
		}
	}
}

// BenchmarkExecSerialWithGen includes request generation and routing —
// the full runPartitioned loop body for a single-partition transaction.
func BenchmarkExecSerialWithGen(b *testing.B) {
	_, w := newHotPathHarness(8192)
	w.execSerial(singleReq(w), 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.req.ResetFor(w.gen.Single(0), 0)
		w.execSerial(&w.req, 2)
		if i%4096 == 4095 {
			w.strm.Flush()
		}
	}
}

// BenchmarkExecOCC measures the single-master OCC commit path (lock,
// validate, apply, release, replicate) on pre-generated cross-partition
// transactions with no concurrent conflicts.
func BenchmarkExecOCC(b *testing.B) {
	_, w := newHotPathHarness(8192)
	cmd := msgStartPhase{Phase: SingleMaster, Epoch: 2, Master: 0, Deadline: time.Hour}
	reqs := make([]*txn.Request, 128)
	for i := range reqs {
		reqs[i] = txn.NewRequest(w.gen.Cross(i%2), 0)
	}
	for _, r := range reqs {
		w.execOCC(r, cmd)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.execOCC(reqs[i%len(reqs)], cmd)
		if i%4096 == 4095 {
			w.strm.Flush()
		}
	}
}
