package core

import (
	"reflect"
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/workload/tpcc"
)

func scriptedTPCCConfig(r rt.Runtime, nodes, workers int, seed int64) Config {
	return Config{
		RT:             r,
		Nodes:          nodes,
		WorkersPerNode: workers,
		Workload: tpcc.New(tpcc.Config{
			Warehouses:           nodes * workers,
			Districts:            2,
			CustomersPerDistrict: 100,
			Items:                1000,
		}),
		Seed: seed,
	}
}

func runScriptedSim(t *testing.T, nodes, workers, txns int, seed int64) ScriptResult {
	t.Helper()
	s := rt.NewSim()
	defer s.Stop()
	run := StartScripted(scriptedTPCCConfig(s, nodes, workers, seed), Script{TxnsPerPartition: txns})
	s.Run(s.Now() + time.Hour)
	select {
	case res := <-run.Done():
		return res
	default:
		t.Fatal("scripted run did not finish in virtual time")
		return ScriptResult{}
	}
}

func runScriptedReal(t *testing.T, nodes, workers, txns int, seed int64) ScriptResult {
	t.Helper()
	r := rt.NewReal()
	defer r.Stop()
	run := StartScripted(scriptedTPCCConfig(r, nodes, workers, seed), Script{TxnsPerPartition: txns})
	select {
	case res := <-run.Done():
		return res
	case <-time.After(2 * time.Minute):
		t.Fatal("scripted run did not finish")
		return ScriptResult{}
	}
}

// TestScriptedRunDeterministic pins the property the loopback TCP
// integration test builds on: a scripted run's committed count and
// post-fence partition checksums are a pure function of config+seed —
// identical across repeat runs AND across runtimes (virtual simulation
// vs real goroutines), because per-partition execution is serial in
// generation order and the master drain is sorted by deterministic
// stamps.
func TestScriptedRunDeterministic(t *testing.T) {
	const (
		nodes, workers = 2, 2
		txns           = 60
		seed           = 42
	)
	a := runScriptedSim(t, nodes, workers, txns, seed)
	if a.Err != "" {
		t.Fatalf("run a failed: %s", a.Err)
	}
	if a.Committed == 0 {
		t.Fatal("scripted run committed nothing")
	}
	if len(a.Checksums) != nodes {
		t.Fatalf("checksums from %d nodes, want %d", len(a.Checksums), nodes)
	}
	b := runScriptedSim(t, nodes, workers, txns, seed)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two sim runs differ:\n%+v\nvs\n%+v", a, b)
	}
	c := runScriptedReal(t, nodes, workers, txns, seed)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("sim and real-runtime runs differ:\n%+v\nvs\n%+v", a, c)
	}

	// Replicas agree: both nodes hold every partition's data they share.
	// Node 0 is a full replica; every partition it reports must match the
	// owning node's copy.
	sums := map[int32]map[int]uint64{}
	for _, nc := range a.Checksums {
		for i, p := range nc.Parts {
			if sums[p] == nil {
				sums[p] = map[int]uint64{}
			}
			sums[p][nc.Node] = nc.Sums[i]
		}
	}
	for p, byNode := range sums {
		var first uint64
		firstSet := false
		for _, s := range byNode {
			if !firstSet {
				first, firstSet = s, true
				continue
			}
			if s != first {
				t.Fatalf("partition %d: replicas disagree: %v", p, byNode)
			}
		}
	}

	// A different seed must change the outcome (the test would otherwise
	// pass vacuously on constant results).
	d := runScriptedSim(t, nodes, workers, txns, seed+1)
	if reflect.DeepEqual(a.Checksums, d.Checksums) {
		t.Fatal("different seeds produced identical checksums")
	}
}
