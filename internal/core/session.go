package core

import (
	"sync"

	"star/internal/transport"
	"star/internal/txn"
)

// ClientGate is a node's client-session layer — the in-process half of
// the star-client front door. It owns the session bookkeeping the socket
// handlers share:
//
//   - Read-only requests carrying a freshness token are served inline
//     from the node's epoch-fence snapshot when the token's fence has
//     completed locally (TryRead) — the SCAR-style session guarantee:
//     read-your-own-writes with bounded staleness, without touching the
//     master.
//   - Everything else is forwarded to the current master with a
//     node-unique ticket stamped into the request (Submit); the matching
//     ClientResp is routed back to this node and rendezvoused with the
//     waiting handler (deliver).
//   - A dying connection abandons its outstanding tickets (dropConn), so
//     a client that disconnects mid-request can neither leak a pending
//     slot nor wedge the admission window: every waiter unblocks on its
//     closed channel, and a late response for a dropped ticket is
//     discarded.
//
// Why the freshness check is safe: the coordinator completes fence E on
// every node before broadcasting startPhase E+1, and a write's response
// (token E) is only released by that same startPhase. So any node whose
// in-flight epoch exceeds E has locally applied everything the token's
// session could have written. The check is conservative — a lagging
// replica falls back to the master — but never wrong.
type ClientGate struct {
	n *node

	mu      sync.Mutex
	next    uint64
	pending map[uint64]pendingTicket
	// pendingAdmin tracks forwarded admin envelopes (star-admin over the
	// front door) by server ticket — a namespace separate from the
	// transaction tickets above, since the response types differ.
	pendingAdmin map[uint64]pendingAdminTicket
	// sctx is the gate-owned snapshot-read context (guarded by mu; the
	// fence snapshot itself tolerates concurrent appliers, same as the
	// workers' snapshot path).
	sctx snapshotCtx

	// skipFreshness disables the token check. Test hook only: the
	// read-your-own-writes test proves the guarantee by showing stale
	// reads ARE served with the check off.
	skipFreshness bool
}

// pendingTicket is one forwarded request awaiting its response.
type pendingTicket struct {
	conn uint64
	ch   chan ClientResp
}

// pendingAdminTicket is one forwarded admin envelope awaiting its
// response.
type pendingAdminTicket struct {
	conn uint64
	ch   chan AdminResp
}

func newClientGate(n *node) *ClientGate {
	g := &ClientGate{n: n, pending: map[uint64]pendingTicket{}, pendingAdmin: map[uint64]pendingAdminTicket{}}
	g.sctx.n = n
	return g
}

// TryRead serves a read-only request from the node's last epoch fence if
// the session's freshness token allows it. Returns ok=false when the
// request must be forwarded to the master instead: snapshot reads are
// disabled, the procedure writes, this node does not hold the whole
// footprint, or the token's fence has not completed here yet. The
// returned response carries no ticket — the caller owns correlation.
func (g *ClientGate) TryRead(token uint64, req *txn.Request) (ClientResp, bool) {
	n := g.n
	e := n.e
	if !e.cfg.SnapshotReads || !txn.IsReadOnly(req.Proc) {
		return ClientResp{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	epoch := n.epoch.Load()
	if !g.skipFreshness && token >= epoch {
		// The token's fence has not completed on this replica: its
		// snapshot may predate the session's own writes.
		e.snapFallback.Inc()
		return ClientResp{}, false
	}
	for _, p := range req.Parts {
		if !n.db.Holds(p) {
			e.snapFallback.Inc()
			return ClientResp{}, false
		}
	}
	g.sctx.reset(epoch)
	err := req.Proc.Run(&g.sctx)
	if g.sctx.wrote {
		panic("core: read-only transaction wrote on the snapshot path")
	}
	if err != nil {
		e.userAborts.Inc()
		return ClientResp{Status: StatusAborted}, true
	}
	e.snapReads.Inc()
	e.committed.Inc()
	// The response's token is the fence the read observed: a session that
	// keeps its running maximum never travels back in time.
	return ClientResp{Status: StatusOK, Token: epoch - 1, Reads: int64(g.sctx.reads)}, true
}

// Submit forwards a request to the current master under a fresh ticket
// and returns the channel its response will arrive on. The channel is
// closed without a value if the connection is dropped first. conn
// identifies the submitting connection for dropConn.
func (g *ClientGate) Submit(conn, token uint64, req *txn.Request) (uint64, <-chan ClientResp) {
	g.mu.Lock()
	g.next++
	ticket := g.next
	ch := make(chan ClientResp, 1)
	g.pending[ticket] = pendingTicket{conn: conn, ch: ch}
	g.mu.Unlock()

	req.Origin = g.n.id
	req.Ticket = ticket
	g.n.e.net.Send(g.n.id, int(g.n.curMaster.Load()), transport.Data, ClientReq{Token: token, Req: req})
	return ticket, ch
}

// SubmitAdmin routes an admin envelope from a front-door connection
// into the cluster under a fresh ticket: the request is self-sent to
// this node's own router (actor order with everything else it serves),
// which answers local ops in place and forwards the rest — the
// response finds its way back here by ticket. The channel is closed
// without a value if the connection is dropped first.
func (g *ClientGate) SubmitAdmin(conn uint64, req AdminReq) (uint64, <-chan AdminResp) {
	g.mu.Lock()
	g.next++
	ticket := g.next
	ch := make(chan AdminResp, 1)
	g.pendingAdmin[ticket] = pendingAdminTicket{conn: conn, ch: ch}
	g.mu.Unlock()

	req.V = AdminProtoVersion
	req.From = g.n.id
	req.Ticket = ticket
	g.n.e.net.Send(g.n.id, g.n.id, transport.Control, req)
	return ticket, ch
}

// deliverAdmin rendezvouses an admin response with its waiting
// front-door handler. Called from the node router.
func (g *ClientGate) deliverAdmin(resp AdminResp) {
	g.mu.Lock()
	pt, ok := g.pendingAdmin[resp.Ticket]
	if ok {
		delete(g.pendingAdmin, resp.Ticket)
	}
	g.mu.Unlock()
	if ok {
		pt.ch <- resp
	}
}

// deliver rendezvouses a response with its waiting handler. Responses
// for unknown tickets (connection dropped before the master answered)
// are discarded. Called from the node router.
func (g *ClientGate) deliver(resp ClientResp) {
	g.mu.Lock()
	pt, ok := g.pending[resp.Ticket]
	if ok {
		delete(g.pending, resp.Ticket)
	}
	g.mu.Unlock()
	if ok {
		pt.ch <- resp // cap 1, sole producer: never blocks
	}
}

// dropConn abandons every outstanding ticket of a dead connection:
// waiters unblock on their closed channels and release their admission
// slots, and later responses for these tickets fall into deliver's
// unknown-ticket discard.
func (g *ClientGate) dropConn(conn uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for t, pt := range g.pending {
		if pt.conn == conn {
			delete(g.pending, t)
			close(pt.ch)
		}
	}
	for t, pt := range g.pendingAdmin {
		if pt.conn == conn {
			delete(g.pendingAdmin, t)
			close(pt.ch)
		}
	}
}

// Pending returns the number of outstanding forwarded requests (tests
// pin that a killed client leaks no session slots).
func (g *ClientGate) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}
